(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on the simulated substrate.

     dune exec bench/main.exe            -- all experiments
     dune exec bench/main.exe -- table4 fig6
     dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks only
     dune exec bench/main.exe -- json --trials 5 --seed 1 \
         --models alexnet,squeezenet --managers resbm,fhelipe --out B.json

   Compile-time rows are real wall-clock measurements; inference rows are
   simulated CPU milliseconds from the Table 2 latency oracle.  The
   paper's published values are printed alongside for shape comparison
   (see EXPERIMENTS.md).

   Flags (combine freely with experiment names):
     --models a,b     restrict model-driven experiments to these models
     --managers a,b   restrict the json experiment to these managers
     --trials N       compile-time trials per (model, manager) cell (json)
     --warmup N       discarded warmup compiles before the trials (json)
     --seed S         bootstrap-CI seed, for reproducible summaries (json)
     --out FILE       where the json experiment writes its report *)

open Fhe_ir

let prm = Ckks.Params.default

(* Knobs set by the command line before any experiment runs. *)
let trials = ref 3
let warmup = ref 1
let seed = ref 0x5EED
let out_path = ref "BENCH_resbm.json"
let models_filter : string list ref = ref []
let managers_filter : string list ref = ref []

let canon s =
  String.lowercase_ascii (String.map (function '_' | '-' -> '-' | c -> c) s)

let models () =
  match !models_filter with
  | [] -> Nn.Model.paper_models
  | names ->
      List.filter (fun m -> List.mem (canon m.Nn.Model.name) names) Nn.Model.paper_models

let managers () =
  match !managers_filter with
  | [] -> Resbm.Variants.all
  | names ->
      List.filter (fun m -> List.mem (canon m.Resbm.Variants.name) names) Resbm.Variants.all

(* The commit the numbers were measured at, so a bench file is traceable
   after the working tree moves on.  Informational only — Bench_diff never
   compares it. *)
let git_rev () =
  match Sys.getenv_opt "RESBM_GIT_REV" with
  | Some r when String.trim r <> "" -> String.trim r
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try String.trim (input_line ic) with End_of_file -> "" in
        ignore (Unix.close_process_in ic);
        if line = "" then "unknown" else line
      with _ -> "unknown")

let line = String.make 78 '-'

let section name description =
  Format.printf "@.%s@.== %s@.   %s@.%s@." line name description line

(* Lowered models and compiled variants are shared across experiments. *)
let lowered_cache : (string, Nn.Lowering.t) Hashtbl.t = Hashtbl.create 8

let lowered model =
  match Hashtbl.find_opt lowered_cache model.Nn.Model.name with
  | Some l -> l
  | None ->
      let l = Nn.Lowering.lower model in
      Hashtbl.add lowered_cache model.Nn.Model.name l;
      l

(* The real content-addressed plan cache, not an ad-hoc table: its key
   covers the graph, the FULL parameter value (experiments vary more than
   l_max — fig7 also changes input_level) and the manager identity, so a
   repeated (model, manager, params) compile anywhere in the suite is a
   warm hit returning a bit-identical plan.  Also the subject of the
   warm-compile bench axis below. *)
let plan_cache = Resbm.Plan_cache.create ~capacity:256 ()

let compile ?(params = prm) mgr model =
  Resbm.Variants.compile ~cache:plan_cache mgr params (lowered model).Nn.Lowering.dfg

(* --- Table 1: operation semantics ----------------------------------------- *)

let table1 () =
  section "Table 1" "scales and levels of FHE operation results (checked live)";
  let ev = Ckks.Evaluator.create prm in
  let ct = Ckks.Evaluator.encrypt ev ~level:8 [| 0.5 |] in
  let pt = Ckks.Evaluator.encode ev ~scale_bits:ct.Ckks.Ciphertext.scale_bits [| 0.25 |] in
  let ptw = Ckks.Evaluator.encode ev [| 0.25 |] in
  let row name (r : Ckks.Ciphertext.t) expect_scale expect_level =
    Format.printf "  %-22s scale 2^%-3d level %-2d  (expected 2^%d, L%d)  %s@." name
      r.Ckks.Ciphertext.scale_bits r.Ckks.Ciphertext.level expect_scale expect_level
      (if
         r.Ckks.Ciphertext.scale_bits = expect_scale
         && r.Ckks.Ciphertext.level = expect_level
       then "ok"
       else "MISMATCH")
  in
  let s = ct.Ckks.Ciphertext.scale_bits and l = ct.Ckks.Ciphertext.level in
  row "AddCP ct, pt" (Ckks.Evaluator.add_cp ev ct pt) s l;
  row "AddCC ct, ct" (Ckks.Evaluator.add_cc ev ct ct) s l;
  row "MulCP ct, pt" (Ckks.Evaluator.mul_cp ev ct ptw) (s + prm.Ckks.Params.waterline_bits) l;
  let m = Ckks.Evaluator.mul_cc ev ct ct in
  row "MulCC ct, ct" m (2 * s) l;
  row "Rotate ct, 3" (Ckks.Evaluator.rotate ev ct 3) s l;
  let r = Ckks.Evaluator.rescale ev (Ckks.Evaluator.relin ev m) in
  row "Rescale ct" r ((2 * s) - prm.Ckks.Params.scale_bits) (l - 1);
  row "Modswitch ct" (Ckks.Evaluator.modswitch ev ct) s (l - 1);
  row "Bootstrap ct, 12"
    (Ckks.Evaluator.bootstrap ev ct ~target_level:12)
    prm.Ckks.Params.scale_bits 12

(* --- Table 2: operation latencies ------------------------------------------ *)

let table2 () =
  section "Table 2" "RNS-CKKS operation latencies (ms) from the cost oracle";
  Format.printf "  %-16s" "Operation";
  List.iter
    (fun l -> Format.printf "%9s" (Printf.sprintf "l=%d" l))
    Ckks.Cost_model.table_levels;
  Format.printf "@.";
  List.iter
    (fun op ->
      Format.printf "  %-16s" (Ckks.Cost_model.op_name op);
      List.iter
        (fun l -> Format.printf "%9.3f" (Ckks.Cost_model.cost op ~level:l))
        Ckks.Cost_model.table_levels;
      Format.printf "@.")
    Ckks.Cost_model.all_ops

(* --- Table 3: compile times -------------------------------------------------- *)

let table3 () =
  section "Table 3" "compile times (s); paper columns quoted for comparison";
  let dacapo = function
    | "ResNet20" -> Some 15.8
    | "ResNet44" -> Some 79.4
    | "AlexNet" -> Some 1042.3
    | "VGG16" -> Some 230.1
    | "SqueezeNet" -> Some 89.1
    | "MobileNet" -> Some 222.8
    | _ -> None
  in
  let paper_resbm = function
    | "ResNet20" -> 0.128
    | "ResNet44" -> 0.290
    | "ResNet110" -> 0.773
    | "AlexNet" -> 0.050
    | "VGG16" -> 0.094
    | "SqueezeNet" -> 0.147
    | "MobileNet" -> 0.185
    | _ -> nan
  in
  Format.printf "  %-11s %11s %11s %13s %14s %9s@." "Model" "ReSBM" "Fhelipe"
    "ReSBM(paper)" "DaCapo(paper)" "speedup";
  List.iter
    (fun model ->
      let g = (lowered model).Nn.Lowering.dfg in
      let time mgr =
        Obs.Stat.median
          (List.init 3 (fun _ ->
               let _, r = Resbm.Variants.compile mgr prm g in
               r.Resbm.Report.compile_ms /. 1000.0))
      in
      let t_resbm = time Resbm.Variants.resbm and t_fhelipe = time Resbm.Variants.fhelipe in
      Format.printf "  %-11s %10.3fs %10.3fs %12.3fs %s %s@." model.Nn.Model.name t_resbm
        t_fhelipe
        (paper_resbm model.Nn.Model.name)
        (match dacapo model.Nn.Model.name with
        | Some d -> Printf.sprintf "%13.1fs" d
        | None -> "            -")
        (match dacapo model.Nn.Model.name with
        | Some d -> Printf.sprintf "%7.0fx" (d /. t_resbm)
        | None -> "       -"))
    (models ())

(* --- Table 4: executed rescaling operations ----------------------------------- *)

let table4 () =
  section "Table 4" "executed rescaling operations at l_max = 16";
  let paper = function
    | "ResNet20" -> (2627, 14495)
    | "ResNet44" -> (6063, 33767)
    | "ResNet110" -> (15512, 86765)
    | "AlexNet" -> (610, 28775)
    | "VGG16" -> (1026, 70917)
    | "SqueezeNet" -> (1458, 14868)
    | "MobileNet" -> (2035, 16337)
    | _ -> (0, 0)
  in
  Format.printf "  %-11s %9s %9s %7s | %9s %9s %7s@." "Model" "ReSBM" "Fhelipe" "ratio"
    "paper-R" "paper-F" "ratio";
  List.iter
    (fun model ->
      let _, r = compile Resbm.Variants.resbm model in
      let _, f = compile Resbm.Variants.fhelipe model in
      let nr = r.Resbm.Report.stats.Stats.executed_rescales
      and nf = f.Resbm.Report.stats.Stats.executed_rescales in
      let pr, pf = paper model.Nn.Model.name in
      Format.printf "  %-11s %9d %9d %6.1fx | %9d %9d %6.1fx@." model.Nn.Model.name nr nf
        (float_of_int nf /. float_of_int (max nr 1))
        pr pf
        (float_of_int pf /. float_of_int pr))
    (models ())

(* --- Table 5: bootstrapping levels ----------------------------------------------- *)

let table5 () =
  section "Table 5" "bootstrap counts and level histograms at l_max = 16";
  let paper_counts = function
    | "ResNet20" -> 20
    | "ResNet44" -> 44
    | "ResNet110" -> 110
    | "AlexNet" -> 9
    | "VGG16" -> 17
    | "SqueezeNet" -> 19
    | "MobileNet" -> 30
    | _ -> 0
  in
  Format.printf "  %-11s %5s %5s %7s  %s@." "Model" "ReSBM" "Fhel." "paper" "ReSBM levels";
  List.iter
    (fun model ->
      let _, r = compile Resbm.Variants.resbm model in
      let _, f = compile Resbm.Variants.fhelipe model in
      Format.printf "  %-11s %5d %5d %7d  %s@." model.Nn.Model.name
        r.Resbm.Report.stats.Stats.bootstrap_count
        f.Resbm.Report.stats.Stats.bootstrap_count
        (paper_counts model.Nn.Model.name)
        (String.concat " "
           (List.map
              (fun (l, c) -> Printf.sprintf "L%d:%d" l c)
              r.Resbm.Report.stats.Stats.bootstrap_levels)))
    (models ());
  Format.printf "  (Fhelipe bootstraps exclusively at l_max = 16, as in the paper)@."

(* --- Table 6: inference accuracy ---------------------------------------------------- *)

let table6 () =
  section "Table 6" "unencrypted vs simulated encrypted accuracy (synthetic data)";
  Format.printf "  %-11s %12s %10s %8s %10s %11s@." "Model" "Unencrypted" "Encrypted"
    "Loss" "Agreement" "max |err|";
  List.iter
    (fun model ->
      let l = lowered model in
      let managed, _ = compile Resbm.Variants.resbm model in
      let fid = Nn.Inference.fidelity ~samples:20 ~dim:64 ~seed:0xF1DE17L prm l ~managed in
      Format.printf "  %-11s %11.1f%% %9.1f%% %+7.1f%% %9.1f%% %11.2e@."
        model.Nn.Model.name
        (100.0 *. fid.Nn.Inference.unencrypted_acc)
        (100.0 *. fid.Nn.Inference.encrypted_acc)
        (100.0 *. fid.Nn.Inference.accuracy_loss)
        (100.0 *. fid.Nn.Inference.agreement)
        fid.Nn.Inference.max_abs_err)
    (models ());
  Format.printf "  (paper: losses between -0.2%% and 1.7%%, average 0.3%%)@."

(* --- Figure 1: the motivating example ------------------------------------------------ *)

let fig1_block () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let conv name v =
    let tap k w =
      let src = if k = 0 then v else Dfg.rotate g v k in
      Dfg.mul_cp g src (Dfg.const g (Printf.sprintf "%s_w%d" name w))
    in
    Dfg.add_cp g
      (Dfg.add_cc g (Dfg.add_cc g (tap 0 0) (tap (-1) 1)) (tap 1 2))
      (Dfg.const g (name ^ "_b"))
  in
  let u = conv "conv1" x in
  let u2 = Dfg.mul_cc g u u in
  let u3 = Dfg.mul_cc g u2 u in
  let relu =
    Dfg.add_cc g (Dfg.mul_cp g u3 (Dfg.const g "c3")) (Dfg.mul_cp g u (Dfg.const g "c1"))
  in
  let out = Dfg.mul_cc g (conv "conv2" relu) x in
  Dfg.set_outputs g [ out ];
  g

let fig1 () =
  section "Figure 1" "the simplified ResNet block under q = q_w = 2^40, l_max = 3";
  let p = Ckks.Params.fig1 in
  let g = fig1_block () in
  Format.printf "  unmanaged program: %s@."
    (match Scale_check.run p g with
    | Ok _ -> "legal (unexpected!)"
    | Error vs -> Printf.sprintf "rejected with %d violations (Figure 1a)" (List.length vs));
  Format.printf "  %-12s %12s %5s %-12s %9s@." "manager" "latency(ms)" "bts" "levels"
    "rescales";
  List.iter
    (fun mgr ->
      let _, r = Resbm.Variants.compile mgr p g in
      Format.printf "  %-12s %12.1f %5d %-12s %9d@." mgr.Resbm.Variants.name
        r.Resbm.Report.latency_ms r.Resbm.Report.stats.Stats.bootstrap_count
        (String.concat ","
           (List.map
              (fun (l, c) -> Printf.sprintf "L%d:%d" l c)
              r.Resbm.Report.stats.Stats.bootstrap_levels))
        r.Resbm.Report.stats.Stats.executed_rescales)
    Resbm.Variants.all;
  Format.printf
    "  (paper: ReSBM bootstraps at L3 and L1; Fhelipe/DaCapo at l_max = 3 twice)@."

(* --- Figure 3: region partition ------------------------------------------------------- *)

let fig3 () =
  section "Figure 3" "region partitions for a3*x^3 + a1*x";
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let x2 = Dfg.mul_cc g x x in
  let x3 = Dfg.mul_cc g x2 x in
  let a3x3 = Dfg.mul_cp g x3 (Dfg.const g "a3") in
  let a1x = Dfg.mul_cp g x (Dfg.const g "a1") in
  Dfg.set_outputs g [ Dfg.add_cc g a3x3 a1x ];
  let r = Resbm.Region.build g in
  Format.printf "  %a@." Resbm.Region.pp r;
  Format.printf "  a1*x placed in region %d (Figure 3b: multiply at the lower level)@."
    r.Resbm.Region.region_of.(a1x)

(* --- Figure 4: intra-region min-cut --------------------------------------------------- *)

let fig4 () =
  section "Figure 4" "SMO placement for the first convolution region of Figure 1";
  let p = Ckks.Params.fig1 in
  let g = fig1_block () in
  let r = Resbm.Region.build g in
  let cache = Resbm.Region_eval.create_cache () in
  let eval smo_mode =
    (Resbm.Region_eval.eval cache r p ~smo_mode ~bts_mode:Resbm.Region_eval.Bts_min_cut
       ~region:1 ~entry_level:1 ~rescales:1 ~bts:None)
      .Resbm.Region_eval.latency_ms
  in
  let mincut = eval Resbm.Region_eval.Smo_min_cut
  and eva = eval Resbm.Region_eval.Smo_eva
  and pars = eval Resbm.Region_eval.Smo_pars in
  Format.printf "  min-cut (ReSBM):      %8.3f ms@." mincut;
  Format.printf "  waterline (Fhelipe):  %8.3f ms@." eva;
  Format.printf "  lazy (DaCapo/PARS):   %8.3f ms@." pars;
  Format.printf "  (paper's Region 2: 131.832 vs 142.616 vs 143.860 ms)@.";
  let cut = Resbm.Smoplc.run r p ~region:1 ~level:1 in
  Format.printf "  chosen cut: %a@." Resbm.Cut.pp cut

(* --- Figure 5: sub-optimality ----------------------------------------------------------- *)

let fig5 () =
  section "Figure 5" "compiler pre/post-optimisation around management";
  let build () =
    let g = Dfg.create () in
    let x = Dfg.input g ~level:0 "x" in
    let x2 = Dfg.mul_cc g x x in
    let x3 = Dfg.mul_cc g x2 x in
    let y = Dfg.mul_cp g x3 (Dfg.const g "a3") in
    let a1x = Dfg.mul_cp g x (Dfg.const g "a1") in
    let a1x2 = Dfg.mul_cc g a1x a1x in
    let y2 = Dfg.mul_cc g y y in
    let y4 = Dfg.mul_cc g y2 y2 in
    Dfg.set_outputs g [ Dfg.mul_cp g (Dfg.add_cc g a1x2 y4) (Dfg.const g "a4") ];
    g
  in
  let p = { Ckks.Params.fig1 with input_level = 0 } in
  let naive = build () in
  let _, rn = Resbm.Driver.compile p naive in
  let opt = build () in
  let folds = Passes.Const_fold.run opt in
  let merged = Passes.Cse.run opt in
  ignore (Passes.Dce.run opt);
  let managed, _ = Resbm.Driver.compile p opt in
  ignore (Passes.Cse.run managed);
  ignore (Passes.Dce.run managed);
  Format.printf "  naive:     latency %8.1f ms, %d bootstraps@." rn.Resbm.Report.latency_ms
    rn.Resbm.Report.stats.Stats.bootstrap_count;
  Format.printf
    "  optimised: latency %8.1f ms after %d folds + %d CSE merges (pre-management)@."
    (Latency.total p managed) folds merged

(* --- Figure 6: encrypted inference efficiency --------------------------------------------- *)

let fig6 () =
  section "Figure 6" "inference latency by manager, normalised to ReSBM (l_max = 16)";
  Format.printf "  %-11s" "Model";
  List.iter (fun m -> Format.printf "%11s" m.Resbm.Variants.name) Resbm.Variants.figure6;
  Format.printf "%13s@." "vs Fhelipe";
  let improvements = ref [] in
  List.iter
    (fun model ->
      Format.printf "  %-11s" model.Nn.Model.name;
      let base =
        let _, r = compile Resbm.Variants.resbm model in
        r.Resbm.Report.latency_ms
      in
      List.iter
        (fun mgr ->
          let _, r = compile mgr model in
          Format.printf "%10.2fx" (r.Resbm.Report.latency_ms /. base))
        Resbm.Variants.figure6;
      let _, f = compile Resbm.Variants.fhelipe model in
      let gain = 100.0 *. (1.0 -. (base /. f.Resbm.Report.latency_ms)) in
      improvements := gain :: !improvements;
      Format.printf "%11.1f%%@." gain)
    (models ());
  let avg =
    List.fold_left ( +. ) 0.0 !improvements /. float_of_int (List.length !improvements)
  in
  Format.printf "  average improvement over Fhelipe: %.1f%% (paper: 12.1%%)@." avg

(* --- Figure 7: l_max sweep on ResNet-110 ---------------------------------------------------- *)

let fig7 () =
  section "Figure 7" "ResNet-110 latency and bootstrap count at varying l_max";
  Format.printf "  %5s %14s %14s %9s %8s %8s@." "l_max" "ReSBM(ms)" "Fhelipe(ms)" "gain"
    "bts-R" "bts-F";
  List.iter
    (fun l_max ->
      let p = Ckks.Params.with_l_max { prm with input_level = l_max } l_max in
      let _, r = compile ~params:p Resbm.Variants.resbm Nn.Model.resnet110 in
      let _, f = compile ~params:p Resbm.Variants.fhelipe Nn.Model.resnet110 in
      Format.printf "  %5d %14.0f %14.0f %8.1f%% %8d %8d@." l_max
        r.Resbm.Report.latency_ms f.Resbm.Report.latency_ms
        (100.0 *. (1.0 -. (r.Resbm.Report.latency_ms /. f.Resbm.Report.latency_ms)))
        r.Resbm.Report.stats.Stats.bootstrap_count
        f.Resbm.Report.stats.Stats.bootstrap_count)
    [ 16; 14; 12; 10 ];
  Format.printf "  (paper: 110/112/174/217 bootstraps; gains 8.8/5.0/26.0/36.6%%)@."

(* --- Ablations: the design choices DESIGN.md calls out ---------------------------------------- *)

let ablation () =
  section "Ablations"
    "disable individual ReSBM design choices and measure the damage";
  let compile_with ~sink ~price_transits model =
    let g = (lowered model).Nn.Lowering.dfg in
    let regioned = Resbm.Region.build ~sink g in
    let config = { Resbm.Btsmgr.resbm_config with price_transits } in
    let plan = Resbm.Btsmgr.plan ~config regioned prm in
    let outcome = Resbm.Plan.apply regioned prm plan in
    let managed = outcome.Resbm.Plan.dfg in
    let stats = Stats.collect managed in
    (Latency.total prm managed, stats.Stats.bootstrap_count, outcome.Resbm.Plan.repair_bootstraps)
  in
  Format.printf "  %-11s %-22s %14s %6s %8s %9s@." "Model" "configuration" "latency(ms)"
    "bts" "repairs" "overhead";
  List.iter
    (fun model ->
      let full, full_bts, full_rep = compile_with ~sink:true ~price_transits:true model in
      let rows =
        [
          ("full ReSBM", full, full_bts, full_rep);
          (let l, b, r = compile_with ~sink:false ~price_transits:true model in
           ("no region sinking", l, b, r));
          (let l, b, r = compile_with ~sink:true ~price_transits:false model in
           ("no transit pricing", l, b, r));
        ]
      in
      List.iter
        (fun (name, l, b, r) ->
          Format.printf "  %-11s %-22s %14.0f %6d %8d %+8.1f%%@." model.Nn.Model.name name
            l b r
            (100.0 *. ((l /. full) -. 1.0)))
        rows)
    [ Nn.Model.resnet20; Nn.Model.mobilenet ]

(* --- Memory: the working-set sizes behind the paper's 512 GB machine ------------------------- *)

let memory () =
  section "Memory" "ciphertext working sets of the managed programs (N = 2^16)";
  Format.printf "  %-11s %8s %10s %14s %12s@." "Model" "cts" "peak live" "peak MiB"
    "per-ct MiB";
  List.iter
    (fun model ->
      let managed, _ = compile Resbm.Variants.resbm model in
      let r = Liveness.analyse prm managed in
      Format.printf "  %-11s %8d %10d %14.1f %12.1f@." model.Nn.Model.name
        r.Liveness.total_ciphertexts r.Liveness.peak_live
        (r.Liveness.peak_bytes /. 1024.0 /. 1024.0)
        (Liveness.ciphertext_bytes prm ~level:prm.Ckks.Params.l_max /. 1024.0 /. 1024.0))
    (models ());
  Format.printf
    "  (one level-16 ciphertext is ~17 MiB; the paper's evaluation machine has 512 GB)@."

(* --- Bechamel micro-benchmarks ----------------------------------------------------------------- *)

let micro () =
  section "Micro-benchmarks" "wall-clock costs of the compiler itself (Bechamel)";
  let open Bechamel in
  let g20 = (lowered Nn.Model.resnet20).Nn.Lowering.dfg in
  let galex = (lowered Nn.Model.alexnet).Nn.Lowering.dfg in
  let tests =
    [
      Test.make ~name:"region-partition resnet20"
        (Staged.stage (fun () -> ignore (Resbm.Region.build g20)));
      Test.make ~name:"resbm-compile resnet20"
        (Staged.stage (fun () -> ignore (Resbm.Driver.compile prm g20)));
      Test.make ~name:"resbm-compile alexnet"
        (Staged.stage (fun () -> ignore (Resbm.Driver.compile prm galex)));
      Test.make ~name:"fhelipe-compile resnet20"
        (Staged.stage (fun () ->
             ignore (Resbm.Variants.compile Resbm.Variants.fhelipe prm g20)));
      Test.make ~name:"scale-check resnet20"
        (Staged.stage (fun () -> ignore (Scale_check.infer prm g20)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None () in
      let results = Benchmark.all cfg [ instance ] test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let stats = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "  %-28s %12.3f ms/run@." name (est /. 1e6)
          | _ -> Format.printf "  %-28s (no estimate)@." name)
        stats)
    tests

(* --- machine-readable trajectory: BENCH_resbm.json ------------------------------------------------ *)

(* Per-model per-manager phase timings and pipeline counters, so compile
   performance is tracked as data rather than read off Table 3 by hand.
   The rescale/bootstrap fields mirror Table 4/Table 5; rerunning after
   `sweep`-style parameter changes gives the Figure 7 trajectory.  Each
   manager entry also carries the static noise prediction, and each model
   a "runtime" section from one traced interpreter run — so a latency or
   precision regression shows up in the JSON diff, not just in Table 6. *)
let bench_json () =
  section "BENCH_resbm.json" "machine-readable per-model per-manager compile profile";
  let runtime_dim = 16 in
  let const_magnitude l name =
    Array.fold_left
      (fun acc v -> Float.max acc (Float.abs v))
      0.0
      (Nn.Lowering.resolver l ~dim:runtime_dim name)
  in
  let manager_entry model mgr =
    let managed, r = compile mgr model in
    let noise =
      Noise_check.analyse ~const_magnitude:(const_magnitude (lowered model)) prm managed
    in
    (* Multi-trial compile timing: the cached compile above provides the
       deterministic fields; the trials below (warmup discarded) make the
       wall-clock number stable enough to gate on.  compile_ms is the
       median, the full summary (median/MAD/bootstrap CI) rides along. *)
    let stat =
      Obs.Stat.sample ~warmup:!warmup ~seed:!seed ~trials:!trials (fun () ->
          let _, fresh =
            Resbm.Variants.compile mgr prm (lowered model).Nn.Lowering.dfg
          in
          fresh.Resbm.Report.compile_ms)
    in
    (* The warm axis: same compile through the plan cache (filled by the
       [compile] call above), so each trial times a cache hit.  Gated as
       warm_speedup = cold median / warm median by `resbm bench-diff`. *)
    let warm_stat =
      Obs.Stat.sample ~warmup:!warmup ~seed:!seed ~trials:!trials (fun () ->
          let _, warm =
            Resbm.Variants.compile ~cache:plan_cache mgr prm
              (lowered model).Nn.Lowering.dfg
          in
          warm.Resbm.Report.compile_ms)
    in
    (* GC telemetry around one fresh compile: informational cells in the
       bench schema — Bench_diff reports their drift but never gates on
       it, and diffs against baselines without them stay clean. *)
    let _, gc =
      Obs.Rt.gc_sample (fun () ->
          Resbm.Variants.compile mgr prm (lowered model).Nn.Lowering.dfg)
    in
    let profile = r.Resbm.Report.profile in
    let phases =
      List.filter_map
        (fun s ->
          if s.Obs.Profile.depth = 0 then
            Some (s.Obs.Profile.name, Obs.Json.Float s.Obs.Profile.dur_ms)
          else None)
        (Obs.Profile.spans profile)
    in
    Obs.Json.Obj
      [
        ("manager", Obs.Json.String mgr.Resbm.Variants.name);
        ("compile_ms", Obs.Json.Float stat.Obs.Stat.median);
        ("compile_stat", Obs.Stat.to_json stat);
        ("compile_warm_ms", Obs.Json.Float warm_stat.Obs.Stat.median);
        ("compile_warm_stat", Obs.Stat.to_json warm_stat);
        ("latency_ms", Obs.Json.Float r.Resbm.Report.latency_ms);
        ("bootstrap_count", Obs.Json.Int r.Resbm.Report.stats.Stats.bootstrap_count);
        ("executed_rescales", Obs.Json.Int r.Resbm.Report.stats.Stats.executed_rescales);
        ("ms_opt_hoists", Obs.Json.Int r.Resbm.Report.ms_opt_hoists);
        ("nodes", Obs.Json.Int r.Resbm.Report.stats.Stats.nodes);
        ("region_count", Obs.Json.Int r.Resbm.Report.region_count);
        ( "predicted_precision_bits",
          Obs.Json.Float noise.Noise_check.output_precision_bits );
        ("gc_minor_words", Obs.Json.Float gc.Obs.Rt.minor_words);
        ("gc_major_words", Obs.Json.Float gc.Obs.Rt.major_words);
        ("gc_top_heap_words", Obs.Json.Float (float_of_int gc.Obs.Rt.top_heap_words));
        ("phases", Obs.Json.Obj phases);
        ( "counters",
          Obs.Json.Obj
            (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (Obs.Profile.counters profile))
        );
        (* Renumbering-stable structural digest: bench-diff pairs it cell
           by cell, so a gated metric regression arrives with the plan-level
           change that caused it (see Obs.Bench_diff.plan_drift). *)
        ("plan_digest", Resbm.Explain.digest prm ~managed r);
      ]
  in
  (* One flight-recorded inference per model under the ReSBM manager: the
     interpreter's simulated latency, freq-weighted op count and noise
     floor, at a small image size so the whole suite stays fast. *)
  let runtime_entry model =
    let l = lowered model in
    let managed, r = compile Resbm.Variants.resbm model in
    let image = (Nn.Dataset.images ~seed:0xBE7CA5EL ~dim:runtime_dim ~count:1 ()).(0) in
    let env =
      {
        Interp.inputs = [ (l.Nn.Lowering.input_name, image) ];
        consts = Nn.Lowering.resolver l ~dim:runtime_dim;
      }
    in
    let region_of id =
      let attr = r.Resbm.Report.region_of in
      if id >= 0 && id < Array.length attr then attr.(id) else -1
    in
    let tr = Obs.Trace.create () in
    match Interp.run ~trace:tr ~region_of (Ckks.Evaluator.create prm) managed env with
    | res ->
        Obs.Json.Obj
          [
            ("manager", Obs.Json.String Resbm.Variants.resbm.Resbm.Variants.name);
            ("dim", Obs.Json.Int runtime_dim);
            ("latency_ms", Obs.Json.Float res.Interp.latency_ms);
            ("op_count", Obs.Json.Int res.Interp.op_count);
            ( "min_headroom_bits",
              Obs.Json.Float res.Interp.noise.Interp.min_headroom_bits );
            ("events_recorded", Obs.Json.Int (Obs.Trace.recorded tr));
          ]
    | exception Ckks.Evaluator.Fhe_error e ->
        Obs.Json.Obj [ ("error", Obs.Json.String (Ckks.Evaluator.error_message e)) ]
  in
  let json =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "resbm");
        ("schema_version", Obs.Json.Int Obs.Bench_diff.schema_version);
        ("git_rev", Obs.Json.String (git_rev ()));
        ("trials", Obs.Json.Int !trials);
        ("warmup", Obs.Json.Int !warmup);
        ("seed", Obs.Json.Int !seed);
        ("l_max", Obs.Json.Int prm.Ckks.Params.l_max);
        ( "models",
          Obs.Json.List
            (List.map
               (fun model ->
                 Obs.Json.Obj
                   [
                     ("model", Obs.Json.String model.Nn.Model.name);
                     ( "managers",
                       Obs.Json.List
                         (List.map (manager_entry model) (managers ())) );
                     ("runtime", runtime_entry model);
                   ])
               (models ())) );
      ]
  in
  let path = !out_path in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.printf "  wrote %s (%d models x %d managers, %d+%d compile trials each)@." path
    (List.length (models ()))
    (List.length (managers ()))
    !warmup !trials

(* --- serve: batching policy sweep ----------------------------------------------------------------- *)

(* Informational (not part of the gated [json] subset): sweep the batch
   cap under a fixed overloaded arrival trace and show how slot batching
   buys goodput — the SIMD amortisation argument (BTS, FAB) measured on
   the serving scheduler itself.  Deterministic in its pinned seed. *)
let serve_bench () =
  section "serve"
    "slot-batched serving under overload: goodput / SLO attainment vs batch cap";
  Format.printf
    "  tiny model, l_max 9, dim 16, Poisson 40 rps for 2000 simulated ms, chaos 0.05@.";
  Format.printf "  %-9s %9s %9s %12s %11s %10s %7s %6s@." "max-batch" "admitted"
    "completed" "goodput-rps" "attainment" "p99-ms" "shed%" "fill";
  List.iter
    (fun max_batch ->
      let cfg =
        {
          Serving.Scheduler.default with
          Serving.Scheduler.seed = 0xBA7C4L;
          model = "tiny";
          l_max = 9;
          dim = 16;
          arrival = Serving.Scheduler.Poisson 40.0;
          duration_ms = 2000.0;
          max_batch;
          chaos_rate = 0.05;
        }
      in
      let r = Serving.Scheduler.run ~cache:plan_cache cfg in
      let shed_pct =
        if r.Serving.Scheduler.arrivals = 0 then 0.0
        else
          100.0
          *. float_of_int r.Serving.Scheduler.shed
          /. float_of_int r.Serving.Scheduler.arrivals
      in
      Format.printf "  %-9d %9d %9d %12.2f %11.3f %10.1f %6.1f%% %6.2f@." max_batch
        r.Serving.Scheduler.admitted r.Serving.Scheduler.completed
        r.Serving.Scheduler.goodput_rps r.Serving.Scheduler.slo_attainment
        r.Serving.Scheduler.p99_service_ms shed_pct
        r.Serving.Scheduler.mean_batch_fill)
    [ 1; 2; 4; 8 ]

(* --- driver --------------------------------------------------------------------------------------- *)

let all_experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("fig1", fig1);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("ablation", ablation);
    ("memory", memory);
    ("micro", micro);
    ("serve", serve_bench);
    ("json", bench_json);
  ]

let usage () =
  Format.eprintf
    "usage: bench [EXPERIMENT...] [--models a,b] [--managers a,b]@\n\
    \       [--trials N] [--warmup N] [--seed S] [--out FILE]@\n\
     experiments: %s@."
    (String.concat " " (List.map fst all_experiments));
  exit 2

let die fmt = Format.kasprintf (fun msg -> Format.eprintf "bench: %s@." msg; exit 2) fmt

let split_names s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun n -> n <> "")
  |> List.map canon

(* Reject filters naming nothing we know: a typo'd --models would
   otherwise silently produce an empty (but valid-looking) report. *)
let validate_names kind known names =
  let known_canon = List.map canon known in
  List.iter
    (fun n ->
      if not (List.mem n known_canon) then
        die "unknown %s %s (known: %s)" kind n (String.concat " " known))
    names

let pos_int flag s =
  match int_of_string_opt s with
  | Some n when n > 0 -> n
  | _ -> die "%s wants a positive integer, got %s" flag s

let parse_args argv =
  let experiments = ref [] in
  let rec go = function
    | [] -> ()
    | flag :: rest when String.length flag > 2 && String.sub flag 0 2 = "--" -> (
        match (flag, rest) with
        | "--models", v :: rest ->
            let names = split_names v in
            validate_names "model"
              (List.map (fun m -> m.Nn.Model.name) Nn.Model.paper_models)
              names;
            models_filter := names;
            go rest
        | "--managers", v :: rest ->
            let names = split_names v in
            validate_names "manager"
              (List.map (fun m -> m.Resbm.Variants.name) Resbm.Variants.all)
              names;
            managers_filter := names;
            go rest
        | "--trials", v :: rest ->
            trials := pos_int "--trials" v;
            go rest
        | "--warmup", v :: rest ->
            (match int_of_string_opt v with
            | Some n when n >= 0 -> warmup := n
            | _ -> die "--warmup wants a non-negative integer, got %s" v);
            go rest
        | "--seed", v :: rest ->
            (match int_of_string_opt v with
            | Some n -> seed := n
            | None -> die "--seed wants an integer, got %s" v);
            go rest
        | "--out", v :: rest ->
            out_path := v;
            go rest
        | ("--models" | "--managers" | "--trials" | "--warmup" | "--seed" | "--out"), [] ->
            die "%s wants a value" flag
        | "--help", _ -> usage ()
        | _ -> die "unknown flag %s (try --help)" flag)
    | name :: rest ->
        if not (List.mem_assoc name all_experiments) then
          die "unknown experiment %s (known: %s)" name
            (String.concat " " (List.map fst all_experiments));
        experiments := name :: !experiments;
        go rest
  in
  go argv;
  match List.rev !experiments with [] -> List.map fst all_experiments | names -> names

let () =
  let requested = parse_args (List.tl (Array.to_list Sys.argv)) in
  Format.printf "ReSBM benchmark harness — every table and figure of the evaluation@.";
  Format.printf "parameters: %a@." Ckks.Params.pp prm;
  List.iter (fun name -> (List.assoc name all_experiments) ()) requested
