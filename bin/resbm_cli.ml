(* resbm — command-line front end for the ReSBM reproduction.

   Subcommands:
     list                      models and managers
     compile                   compile a model and print the plan report
     run                       simulated encrypted inference + fidelity
     trace                     flight-recorded execution -> Perfetto trace
     regions                   show the region partition of a model
     sweep                     l_max sweep for one model (Figure 7 style)
     lint                      verify + lint a compiled model
     certify                   re-check min-cut certificates + abstract-interpretation safety
     cache                     on-disk plan cache stats / clear
     bench-diff                gate a candidate bench file against a baseline
     explain                   cost waterfall + per-bootstrap min-cut rationale
     plan-diff                 renumbering-stable structural diff of compiled plans
     chaos                     seeded fault-injection campaign + recovery report
     serve                     simulated slot-batched serving campaign (deadlines, SLO)
     metrics                   aggregate-metrics dump (Prometheus text or JSON)
     health                    rule-based health verdict over a flight file or fresh run

   Exit codes: 0 success, 1 usage error, 2 verifier/lint/trace/gate failure.

   Examples:
     resbm compile --model resnet20 --manager fhelipe
     resbm run --model tiny --samples 10 --dim 32
     resbm trace --model resnet20 --out trace.json --summary
     resbm sweep --model resnet20 --l-max 16,14,12,10
     resbm lint --model resnet20 --deny-warnings
     resbm bench-diff bench/baseline/BENCH_small.json BENCH_resbm.json --json diff.json
     resbm metrics --model tiny --dim 16 --format prom *)

open Cmdliner

let model_arg =
  let doc =
    "Model to operate on (resnet20/44/110, alexnet, vgg16, squeezenet, mobilenet, \
     lenet5, tiny)."
  in
  Arg.(value & opt string "resnet20" & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let manager_arg =
  let doc = "Manager: resbm, resbm_max, resbm_eva, resbm_pm, fhelipe, dacapo-like." in
  Arg.(value & opt string "resbm" & info [ "manager" ] ~docv:"MANAGER" ~doc)

let l_max_arg =
  let doc = "Maximum bootstrapping level." in
  Arg.(value & opt int 16 & info [ "l-max" ] ~docv:"L" ~doc)

let resolve_model name =
  match Nn.Model.by_name name with
  | Some m -> Ok m
  | None -> Error (`Msg (Printf.sprintf "unknown model %S" name))

let resolve_manager name =
  let canon s =
    String.lowercase_ascii (String.map (function '_' | '-' -> '-' | c -> c) s)
  in
  match
    List.find_opt (fun m -> canon m.Resbm.Variants.name = canon name) Resbm.Variants.all
  with
  | Some m -> Ok m
  | None -> Error (`Msg (Printf.sprintf "unknown manager %S" name))

let params_for l_max =
  Ckks.Params.with_l_max { Ckks.Params.default with input_level = l_max } l_max

let or_die = function
  | Ok v -> v
  | Error (`Msg m) ->
      Format.eprintf "error: %s@." m;
      exit 1

let report_json ~model ~l_max report =
  match Resbm.Report.to_json report with
  | Obs.Json.Obj fields ->
      Obs.Json.Obj (("model", Obs.Json.String model) :: ("l_max", Obs.Json.Int l_max) :: fields)
  | j -> j

let write_json path json =
  let oc = open_out path in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

(* --- flight files (structured logs + metrics + worker telemetry) ----------- *)

(* One collector bundle for [--log-out]: a log sink, a metrics registry
   and a runtime-telemetry collector installed ambiently around the
   command's work and exported together as a "flight" file that [resbm
   health] can judge offline. *)
type flight = { fl_log : Obs.Log.t; fl_metrics : Obs.Metrics.t; fl_rt : Obs.Rt.t }

let with_flight log_out f =
  match log_out with
  | None -> f None
  | Some _ ->
      let fl =
        {
          fl_log = Obs.Log.create ();
          fl_metrics = Obs.Metrics.create ();
          fl_rt = Obs.Rt.create ();
        }
      in
      Obs.with_log fl.fl_log @@ fun () ->
      Obs.with_metrics fl.fl_metrics @@ fun () ->
      Obs.with_rt fl.fl_rt @@ fun () -> f (Some fl)

let flight_json fl =
  (* Stamp the drop gauge at export time so the flight file carries its
     own loss accounting (read back by Health's ring-overflow rule). *)
  Obs.Metrics.set fl.fl_metrics "log_dropped_records"
    (float_of_int (Obs.Log.dropped fl.fl_log));
  Obs.Json.Obj
    [
      ("resbm_flight", Obs.Json.Int 1);
      ( "records",
        Obs.Json.List (List.map Obs.Log.record_to_json (Obs.Log.records fl.fl_log)) );
      ("metrics", Obs.Metrics.to_json fl.fl_metrics);
      ("rt", Obs.Rt.to_json fl.fl_rt);
    ]

let write_flight path fl =
  write_json path (flight_json fl);
  Format.printf "wrote flight log (%d records, %d dropped) to %s@."
    (List.length (Obs.Log.records fl.fl_log))
    (Obs.Log.dropped fl.fl_log) path

let flight_chrome_events fl =
  Obs.Log.chrome_events (Obs.Log.records fl.fl_log) @ Obs.Rt.chrome_events fl.fl_rt

let load_flight path =
  let content =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Format.eprintf "error: cannot read %s: %s@." path msg;
      exit 1
  in
  match Obs.Json.of_string content with
  | Error msg ->
      Format.eprintf "error: %s: %s@." path msg;
      exit 1
  | Ok json ->
      (match Obs.Json.member "resbm_flight" json with
      | Some (Obs.Json.Int 1) -> ()
      | _ ->
          Format.eprintf "error: %s is not a resbm flight file@." path;
          exit 1);
      let records =
        match Obs.Json.member "records" json with
        | Some (Obs.Json.List rs) ->
            List.filter_map
              (fun r ->
                match Obs.Log.record_of_json r with
                | Ok r -> Some r
                | Error _ -> None)
              rs
        | _ -> []
      in
      let metrics =
        match Obs.Json.member "metrics" json with
        | Some j -> (
            match Obs.Metrics.of_json j with
            | Ok m -> m
            | Error msg ->
                Format.eprintf "error: %s: bad metrics section: %s@." path msg;
                exit 1)
        | None -> Obs.Metrics.create ()
      in
      (records, metrics)

let log_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-out" ] ~docv:"FILE"
        ~doc:
          "Collect structured logs, aggregate metrics and worker telemetry during \
           the command and write them as a flight file to $(docv) (judged offline \
           by $(b,resbm health --in)).  Chrome trace exports made by the same \
           invocation gain the log instants and per-domain worker tracks.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Write the compilation profile (per-phase wall times, min-cut and planner \
           counters) as JSON to $(docv).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Fan the planner's per-region work across $(docv) domains (default: \
           $(b,RESBM_JOBS), else 1).  The plan and report are bit-identical at \
           every job count.")

(* The CLI's plan cache honours RESBM_CACHE_DIR out of the box so that
   repeated compiles of unchanged models across processes are warm; an
   explicit [--cache DIR] overrides it. *)
let cache_dir_env () =
  match Sys.getenv_opt "RESBM_CACHE_DIR" with
  | Some d when String.trim d <> "" -> Some d
  | _ -> None

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Consult (and fill) an on-disk plan cache rooted at $(docv) — a warm hit \
           skips planning entirely and returns a bit-identical plan.  Defaults to \
           $(b,RESBM_CACHE_DIR) when set; without either, no cache is used.")

let cache_of ~flag =
  match (flag, cache_dir_env ()) with
  | Some dir, _ | None, Some dir -> Some (Resbm.Plan_cache.create ~dir ())
  | None, None -> None

(* --- traced execution (shared by `trace` and `run --trace`) ---------------- *)

let trace_seed = 0x7AB1E6L

(* One flight-recorded simulated inference on a deterministic synthetic
   image.  The trace is returned even when the execution dies with
   [Fhe_error] — the tail of a crashing run is the whole point of a flight
   recorder. *)
let traced_inference prm lowered ~managed ~(report : Resbm.Report.t) ~dim =
  let tr = Obs.Trace.create () in
  let region_of id =
    if id >= 0 && id < Array.length report.Resbm.Report.region_of then
      report.Resbm.Report.region_of.(id)
    else -1
  in
  let ev = Ckks.Evaluator.create ~seed:trace_seed prm in
  let image = (Nn.Dataset.images ~seed:trace_seed ~dim ~count:1 ()).(0) in
  let env =
    {
      Fhe_ir.Interp.inputs = [ (lowered.Nn.Lowering.input_name, image) ];
      consts = Nn.Lowering.resolver lowered ~dim;
    }
  in
  let outcome =
    try Ok (Fhe_ir.Interp.run ~trace:tr ~region_of ev managed env)
    with Ckks.Evaluator.Fhe_error e -> Error (Ckks.Evaluator.error_message e)
  in
  (tr, outcome)

(* Compile spans (pid 0) and the simulated execution (pid 1) in one
   Perfetto timeline; with [?flight], log instants and the planner-pool
   worker tracks (pid 2) join them. *)
let write_chrome_trace ?flight path (report : Resbm.Report.t) tr =
  let extra = match flight with None -> [] | Some fl -> flight_chrome_events fl in
  write_json path
    (Obs.chrome_trace
       (Obs.profile_chrome_events ~pid:0 report.Resbm.Report.profile
       @ Obs.Trace.chrome_events ~pid:1 tr
       @ extra));
  Format.printf "wrote Chrome trace to %s (open in https://ui.perfetto.dev)@." path

let write_jsonl path tr =
  let oc = open_out path in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (Obs.Trace.to_jsonl tr);
  close_out oc;
  Format.printf "wrote %d JSONL events to %s@." (Obs.Trace.recorded tr) path

let print_trace_summary (report : Resbm.Report.t) tr (result : Fhe_ir.Interp.result) =
  Format.printf "executed %d ops, %.1f ms simulated latency (static estimate %.1f ms)@."
    result.Fhe_ir.Interp.op_count result.Fhe_ir.Interp.latency_ms
    report.Resbm.Report.latency_ms;
  Format.printf "trace: %d events recorded, %d dropped by the ring buffer@."
    (Obs.Trace.recorded tr) (Obs.Trace.dropped tr);
  let n = result.Fhe_ir.Interp.noise in
  Format.printf "min noise headroom: %.1f bits (node %d)@."
    n.Fhe_ir.Interp.min_headroom_bits n.Fhe_ir.Interp.min_headroom_node;
  let bts = n.Fhe_ir.Interp.bootstrap_headroom in
  if bts <> [] then begin
    Format.printf "headroom at each bootstrap (%d executed):@." (List.length bts);
    List.iteri
      (fun i (node, bits) ->
        if i < 12 then Format.printf "  node %-6d %7.1f bits@." node bits)
      bts;
    if List.length bts > 12 then Format.printf "  ... (%d more)@." (List.length bts - 12)
  end;
  (* The noisiest table carries the node's region and its frequency-weighted
     Table 2 cost so a headroom scare can be triaged without cross-referencing
     the attribution table below. *)
  let region_name node =
    let ra = report.Resbm.Report.region_of in
    if node >= 0 && node < Array.length ra && ra.(node) >= 0 then
      Printf.sprintf "region %d" ra.(node)
    else "(unattributed)"
  in
  let node_cost = Hashtbl.create 64 in
  List.iter
    (fun (c : Fhe_ir.Interp.node_cost) ->
      Hashtbl.replace node_cost c.Fhe_ir.Interp.node c.Fhe_ir.Interp.cost_ms)
    result.Fhe_ir.Interp.node_costs;
  Format.printf "noisiest nodes (least headroom):@.";
  Format.printf "  %-11s %12s  %-14s %12s@." "node" "headroom" "region" "cost";
  List.iter
    (fun (node, bits) ->
      Format.printf "  node %-6d %7.1f bits  %-14s %9.3f ms@." node bits
        (region_name node)
        (Option.value ~default:0.0 (Hashtbl.find_opt node_cost node)))
    n.Fhe_ir.Interp.noisiest;
  (* Per-region latency attribution, consistent with Report.t's partition. *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (c : Fhe_ir.Interp.node_cost) ->
      let ms, ops =
        Option.value (Hashtbl.find_opt totals c.Fhe_ir.Interp.region) ~default:(0.0, 0)
      in
      Hashtbl.replace totals c.Fhe_ir.Interp.region
        (ms +. c.Fhe_ir.Interp.cost_ms, ops + 1))
    result.Fhe_ir.Interp.node_costs;
  let rows =
    Hashtbl.fold (fun r (ms, ops) acc -> (r, ms, ops) :: acc) totals []
    |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
  in
  Format.printf "per-region latency attribution (%d regions, top %d by latency):@."
    report.Resbm.Report.region_count
    (min 12 (List.length rows));
  List.iteri
    (fun i (r, ms, ops) ->
      if i < 12 then
        Format.printf "  %-14s %12.1f ms %6.1f%% %6d nodes@."
          (if r < 0 then "(unattributed)" else Printf.sprintf "region %d" r)
          ms
          (100.0 *. ms /. Float.max 1e-9 result.Fhe_ir.Interp.latency_ms)
          ops)
    rows;
  if List.length rows > 12 then
    Format.printf "  ... (%d more regions)@." (List.length rows - 12)

(* --- list ----------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Format.printf "models:@.";
    List.iter
      (fun m ->
        Format.printf "  %-12s depth %4d, %d classes@." m.Nn.Model.name (Nn.Model.depth m)
          m.Nn.Model.classes)
      (Nn.Model.paper_models @ [ Nn.Model.lenet5; Nn.Model.tiny ]);
    Format.printf "@.managers:@.";
    List.iter (fun m -> Format.printf "  %s@." m.Resbm.Variants.name) Resbm.Variants.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available models and managers.")
    Term.(const run $ const ())

(* --- compile --------------------------------------------------------------- *)

let compile_cmd =
  let run model manager l_max verify_each verbose emit_path profile_path trace_out robust
      fuel jobs cache_flag log_out =
    with_flight log_out @@ fun fl ->
    let model = or_die (resolve_model model) in
    let prm = params_for l_max in
    let lowered = Nn.Lowering.lower model in
    let cache = cache_of ~flag:cache_flag in
    let managed, report =
      try
        if robust then
          Resbm.Driver.compile_robust ?fuel_steps:fuel ~verify_each ?jobs ?cache prm
            lowered.Nn.Lowering.dfg
        else
          let manager = or_die (resolve_manager manager) in
          Resbm.Variants.compile ~verify_each ?jobs ?cache manager prm
            lowered.Nn.Lowering.dfg
      with
      | Resbm.Driver.Verification_failed (pass, diags) ->
          Format.eprintf "error: verification failed after pass %s:@." pass;
          List.iter (fun d -> Format.eprintf "%a@." Analysis.Diag.pp d) diags;
          exit 2
    in
    List.iter
      (fun (tier, reason) ->
        Format.printf "planner degraded: tier %s failed (%s)@." tier reason)
      report.Resbm.Report.fallbacks;
    let diags = Analysis.Verify.run prm managed in
    List.iter (fun d -> Format.eprintf "%a@." Analysis.Diag.pp d) diags;
    if Analysis.Diag.has_errors diags then begin
      Format.eprintf "error: managed graph is illegal@.";
      exit 2
    end;
    Format.printf "%a@." Resbm.Report.pp report;
    (match profile_path with
    | Some path ->
        write_json path (report_json ~model:model.Nn.Model.name ~l_max report);
        Format.printf "wrote profile to %s@." path
    | None -> ());
    (match trace_out with
    | Some path ->
        let extra =
          match fl with None -> [] | Some fl -> flight_chrome_events fl
        in
        write_json path
          (Obs.chrome_trace
             (Obs.profile_chrome_events ~pid:0 report.Resbm.Report.profile @ extra));
        Format.printf "wrote compile-pipeline Chrome trace to %s@." path
    | None -> ());
    (match (log_out, fl) with
    | Some path, Some fl -> write_flight path fl
    | _ -> ());
    if verbose then begin
      (* one scale/level inference shared by every analysis below *)
      let info = Fhe_ir.Scale_check.infer prm managed in
      Format.printf "@.latency by operation kind:@.";
      List.iter
        (fun (op, ms) -> Format.printf "  %-16s %14.1f ms@." (Ckks.Cost_model.op_name op) ms)
        (Fhe_ir.Latency.by_kind ~info prm managed);
      let const_magnitude name =
        Array.fold_left
          (fun acc v -> Float.max acc (Float.abs v))
          0.0
          (Nn.Lowering.resolver lowered ~dim:8 name)
      in
      let worst = Fhe_ir.Noise_check.analyse ~const_magnitude prm managed in
      let typical =
        Fhe_ir.Noise_check.analyse ~const_magnitude ~magnitude_cap:0.5 prm managed
      in
      Format.printf
        "@.predicted output precision: %.1f bits (typical activations), %.1f bits \
         (worst case)@."
        typical.Fhe_ir.Noise_check.output_precision_bits
        worst.Fhe_ir.Noise_check.output_precision_bits;
      Format.printf "memory: %a@." Fhe_ir.Liveness.pp (Fhe_ir.Liveness.analyse prm managed);
      let steps = Resbm.Driver.planner_steps report.Resbm.Report.profile in
      if steps > 0 then
        Format.printf
          "planner steps: %d (a robust fuel budget calibrated on this compile alone: \
           %d)@."
          steps
          (Resbm.Driver.calibrated_fuel_steps [ report ])
    end;
    match emit_path with
    | Some path ->
        Fhe_ir.Emit.write_file ~program_name:model.Nn.Model.name prm ~path managed;
        Format.printf "emitted C program to %s@." path
    | None -> ()
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print latency/noise/memory analyses.")
  in
  let emit_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit" ] ~docv:"FILE" ~doc:"Emit the managed program as C against the ACElib-style API.")
  in
  let verify_each =
    Arg.(
      value & flag
      & info [ "verify-each" ]
          ~doc:"Run the invariant verifier after every compiler pass (fail fast).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the compile-pipeline spans as Chrome trace-event JSON to $(docv) \
             (same dialect as `resbm trace`, so compile and run phases load into one \
             Perfetto timeline).")
  in
  let robust =
    Arg.(
      value & flag
      & info [ "robust" ]
          ~doc:
            "Compile through the graceful-degradation chain (resbm, then waterline, \
             then eager) instead of a single manager; planner dead-ends and budget \
             exhaustion downgrade to the next tier rather than failing.  Ignores \
             $(b,--manager).")
  in
  let fuel =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:
            "With $(b,--robust): per-tier planning step budget (segment evaluations \
             and min-cuts); exhausting it downgrades to the next tier.  The last tier \
             always runs unbounded.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a model and print the management report.")
    Term.(
      const run $ model_arg $ manager_arg $ l_max_arg $ verify_each $ verbose $ emit_path
      $ profile_arg $ trace_out $ robust $ fuel $ jobs_arg $ cache_arg $ log_out_arg)

(* --- run -------------------------------------------------------------------- *)

let run_cmd =
  let run model manager l_max samples dim trace_path =
    let model = or_die (resolve_model model) in
    let manager = or_die (resolve_manager manager) in
    let prm = params_for l_max in
    let lowered = Nn.Lowering.lower model in
    let managed, report = Resbm.Variants.compile manager prm lowered.Nn.Lowering.dfg in
    Format.printf "compiled %s with %s in %.1f ms@." model.Nn.Model.name
      manager.Resbm.Variants.name report.Resbm.Report.compile_ms;
    let fid = Nn.Inference.fidelity ~samples ~dim prm lowered ~managed in
    Format.printf "%a@." Nn.Inference.pp_fidelity fid;
    Format.printf "mean simulated latency per inference: %.1f s@."
      (fid.Nn.Inference.mean_latency_ms /. 1000.0);
    match trace_path with
    | None -> ()
    | Some path -> (
        let tr, outcome = traced_inference prm lowered ~managed ~report ~dim in
        write_chrome_trace path report tr;
        match outcome with
        | Ok _ -> ()
        | Error msg ->
            Format.eprintf "error: traced execution failed: %s@." msg;
            exit 2)
  in
  let samples = Arg.(value & opt int 10 & info [ "samples" ] ~docv:"N" ~doc:"Samples.") in
  let dim = Arg.(value & opt int 64 & info [ "dim" ] ~docv:"D" ~doc:"Slots per image.") in
  let trace_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Additionally flight-record one inference and write the Chrome \
             trace-event JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run simulated encrypted inference and report fidelity.")
    Term.(const run $ model_arg $ manager_arg $ l_max_arg $ samples $ dim $ trace_path)

(* --- trace ------------------------------------------------------------------- *)

let trace_cmd =
  let run model manager l_max dim out jsonl summary verify_each jobs log_out =
    with_flight log_out @@ fun fl ->
    let model = or_die (resolve_model model) in
    let manager = or_die (resolve_manager manager) in
    let prm = params_for l_max in
    let lowered = Nn.Lowering.lower model in
    let managed, report =
      try Resbm.Variants.compile ~verify_each ?jobs manager prm lowered.Nn.Lowering.dfg
      with Resbm.Driver.Verification_failed (pass, diags) ->
        Format.eprintf "error: verification failed after pass %s:@." pass;
        List.iter (fun d -> Format.eprintf "%a@." Analysis.Diag.pp d) diags;
        exit 2
    in
    Format.printf "compiled %s with %s in %.1f ms@." model.Nn.Model.name
      manager.Resbm.Variants.name report.Resbm.Report.compile_ms;
    let tr, outcome = traced_inference prm lowered ~managed ~report ~dim in
    (* The flight's metrics carry the traced per-op/per-region
       distributions too, so a health judgement of this flight can apply
       the noise-headroom rule. *)
    (match fl with
    | Some fl -> ignore (Obs.Metrics.of_trace ~into:fl.fl_metrics tr)
    | None -> ());
    (match out with
    | Some path -> write_chrome_trace ?flight:fl path report tr
    | None -> ());
    (match jsonl with Some path -> write_jsonl path tr | None -> ());
    (match (log_out, fl) with
    | Some path, Some fl -> write_flight path fl
    | _ -> ());
    match outcome with
    | Error msg ->
        Format.eprintf
          "error: execution failed (the trace above ends with the fhe_error \
           instant):@.%s@."
          msg;
        exit 2
    | Ok result ->
        if summary then print_trace_summary report tr result;
        if verify_each then begin
          let const_magnitude name =
            Array.fold_left
              (fun acc v -> Float.max acc (Float.abs v))
              0.0
              (Nn.Lowering.resolver lowered ~dim name)
          in
          let static = Fhe_ir.Noise_check.analyse ~const_magnitude prm managed in
          let mismatches =
            Fhe_ir.Noise_check.check_trace static (Obs.Trace.op_events tr)
          in
          if mismatches = [] then
            Format.printf "noise cross-validation: traced noise within the static \
                           estimate on every attributed op@."
          else begin
            Format.eprintf "error: traced noise exceeds the static estimate:@.";
            List.iter
              (fun m -> Format.eprintf "  %a@." Fhe_ir.Noise_check.pp_trace_mismatch m)
              mismatches;
            exit 2
          end
        end
  in
  let dim =
    Arg.(value & opt int 64 & info [ "dim" ] ~docv:"D" ~doc:"Slots per synthetic image.")
  in
  let out =
    Arg.(
      value
      & opt (some string) (Some "trace.json")
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the combined compile+execute Chrome trace-event JSON to $(docv) \
             (loadable in Perfetto).")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:"Also write the raw event stream as JSON Lines to $(docv).")
  in
  let summary =
    Arg.(
      value & flag
      & info [ "summary" ]
          ~doc:
            "Print the noise-budget summary (min headroom, headroom at each \
             bootstrap, noisiest nodes) and per-region latency attribution.")
  in
  let verify_each =
    Arg.(
      value & flag
      & info [ "verify-each" ]
          ~doc:
            "Verify after every compiler pass, then cross-validate the trace's \
             recorded noise against the static estimate (exit 2 on mismatch).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one flight-recorded simulated inference and export the execution \
          timeline (per-op events, noise/level/scale counter tracks) for Perfetto.")
    Term.(
      const run $ model_arg $ manager_arg $ l_max_arg $ dim $ out $ jsonl $ summary
      $ verify_each $ jobs_arg $ log_out_arg)

(* --- regions ------------------------------------------------------------------ *)

let regions_cmd =
  let run model limit =
    let model = or_die (resolve_model model) in
    let lowered = Nn.Lowering.lower model in
    let regioned = Resbm.Region.build lowered.Nn.Lowering.dfg in
    Format.printf "%s: %d regions (multiplicative depth %d)@." model.Nn.Model.name
      regioned.Resbm.Region.count
      (Fhe_ir.Depth.max_depth lowered.Nn.Lowering.dfg);
    for r = 0 to min (limit - 1) (regioned.Resbm.Region.count - 1) do
      let members = Resbm.Region.members regioned r in
      Format.printf "  R%-4d %3d nodes, %d muls, %d live-outs@." r (Array.length members)
        (List.length (Resbm.Region.muls regioned r))
        (List.length (Resbm.Region.live_out regioned r))
    done;
    if regioned.Resbm.Region.count > limit then
      Format.printf "  ... (%d more regions)@." (regioned.Resbm.Region.count - limit)
  in
  let limit = Arg.(value & opt int 24 & info [ "limit" ] ~docv:"N" ~doc:"Regions to show.") in
  Cmd.v
    (Cmd.info "regions" ~doc:"Show the region partition of a model's DFG.")
    Term.(const run $ model_arg $ limit)

(* --- export ---------------------------------------------------------------------- *)

let export_cmd =
  let run model manager l_max managed_flag output =
    let model = or_die (resolve_model model) in
    let prm = params_for l_max in
    let lowered = Nn.Lowering.lower model in
    let g = lowered.Nn.Lowering.dfg in
    let regioned = Resbm.Region.build g in
    let graph, annotate =
      if managed_flag then begin
        let manager = or_die (resolve_manager manager) in
        let managed, _ = Resbm.Variants.compile manager prm g in
        let info = Fhe_ir.Scale_check.infer prm managed in
        let annotate id =
          if id < Array.length info && info.(id).Fhe_ir.Scale_check.is_ct then
            Some
              (Printf.sprintf "L%d, 2^%d" info.(id).Fhe_ir.Scale_check.level
                 info.(id).Fhe_ir.Scale_check.scale_bits)
          else None
        in
        (managed, annotate)
      end
      else (g, fun _ -> None)
    in
    let cluster id =
      if id < Array.length regioned.Resbm.Region.region_of then
        Some regioned.Resbm.Region.region_of.(id)
      else None
    in
    Fhe_ir.Dot.write_file ~name:model.Nn.Model.name ~cluster ~annotate ~path:output graph;
    Format.printf "wrote %s (%d nodes); render with: dot -Tsvg %s -o graph.svg@." output
      (List.length (Fhe_ir.Dfg.live_nodes graph))
      output
  in
  let managed_flag =
    Arg.(value & flag & info [ "managed" ] ~doc:"Export the managed graph with levels.")
  in
  let output =
    Arg.(value & opt string "dfg.dot" & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a model's DFG as Graphviz, clustered by region.")
    Term.(const run $ model_arg $ manager_arg $ l_max_arg $ managed_flag $ output)

(* --- lint ------------------------------------------------------------------------ *)

let lint_cmd =
  let run model manager l_max json_path deny_warnings sources =
    let model = or_die (resolve_model model) in
    let manager = or_die (resolve_manager manager) in
    let prm = params_for l_max in
    let lowered = Nn.Lowering.lower model in
    let managed, _report =
      try Resbm.Variants.compile ~verify_each:true manager prm lowered.Nn.Lowering.dfg
      with Resbm.Driver.Verification_failed (pass, diags) ->
        Format.eprintf "error: verification failed after pass %s:@." pass;
        List.iter (fun d -> Format.eprintf "%a@." Analysis.Diag.pp d) diags;
        exit 2
    in
    (* typical-activation noise prediction, as in compile -v: the lowering
       knows the weight amplitudes, and activations stay inside the
       polynomial domain *)
    let const_magnitude name =
      Array.fold_left
        (fun acc v -> Float.max acc (Float.abs v))
        0.0
        (Nn.Lowering.resolver lowered ~dim:8 name)
    in
    let source_diags =
      List.concat_map (fun dir -> Analysis.Lint.scan_planner_sources ~dir) sources
    in
    let diags =
      Analysis.Diag.sort
        (Analysis.Verify.run prm managed
        @ Analysis.Lint.run ~magnitude_cap:0.5 ~const_magnitude prm managed
        @ source_diags)
    in
    List.iter (fun d -> Format.printf "%a@." Analysis.Diag.pp_verbose d) diags;
    let errors = Analysis.Diag.count Analysis.Diag.Error diags in
    let warnings = Analysis.Diag.count Analysis.Diag.Warning diags in
    let hints = Analysis.Diag.count Analysis.Diag.Hint diags in
    Format.printf "%s %s: %d error%s, %d warning%s, %d hint%s@." model.Nn.Model.name
      manager.Resbm.Variants.name errors
      (if errors = 1 then "" else "s")
      warnings
      (if warnings = 1 then "" else "s")
      hints
      (if hints = 1 then "" else "s");
    (match json_path with
    | Some path ->
        let json =
          match Analysis.Diag.list_to_json diags with
          | Obs.Json.Obj fields ->
              Obs.Json.Obj
                (("model", Obs.Json.String model.Nn.Model.name)
                :: ("manager", Obs.Json.String manager.Resbm.Variants.name)
                :: ("l_max", Obs.Json.Int l_max)
                :: fields)
          | j -> j
        in
        write_json path json;
        Format.printf "wrote diagnostics to %s@." path
    | None -> ());
    if errors > 0 || (deny_warnings && warnings > 0) then exit 2
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the diagnostics as JSON to $(docv).")
  in
  let deny_warnings =
    Arg.(
      value & flag
      & info [ "deny-warnings" ]
          ~doc:"Exit with code 2 when any warning-severity diagnostic fires.")
  in
  let sources =
    Arg.(
      value
      & opt_all string []
      & info [ "sources" ] ~docv:"DIR"
          ~doc:
            "Additionally run the source-level determinism lint over the planner \
             sources in $(docv) (repeatable): flags Hashtbl.iter/fold call sites, \
             whose hash-order iteration breaks plan reproducibility — planner code \
             drains hashtables through Det.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Compile a model with per-pass verification, then run the verifier and lint \
          suite on the managed graph (plus the source-level determinism lint with \
          $(b,--sources)).")
    Term.(
      const run $ model_arg $ manager_arg $ l_max_arg $ json_path $ deny_warnings
      $ sources)

(* --- certify --------------------------------------------------------------------- *)

let certify_cmd =
  let run models managers l_max jobs cache_flag json_path =
    let all_models = Nn.Model.paper_models @ [ Nn.Model.lenet5; Nn.Model.tiny ] in
    let split s =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    in
    let models =
      if String.lowercase_ascii (String.trim models) = "all" then all_models
      else List.map (fun m -> or_die (resolve_model m)) (split models)
    in
    let managers =
      if String.lowercase_ascii (String.trim managers) = "all" then Resbm.Variants.all
      else List.map (fun m -> or_die (resolve_manager m)) (split managers)
    in
    if models = [] then or_die (Error (`Msg "no models given"));
    if managers = [] then or_die (Error (`Msg "no managers given"));
    let cache = cache_of ~flag:cache_flag in
    let prm = params_for l_max in
    let refuted = ref 0 in
    let cases = ref [] in
    List.iter
      (fun model ->
        let lowered = Nn.Lowering.lower model in
        List.iter
          (fun manager ->
            let managed, report =
              Resbm.Variants.compile ?jobs ?cache manager prm lowered.Nn.Lowering.dfg
            in
            (* Re-enter the compile's profile so the certify.* spans land
               next to the phases the <15% overhead budget is measured
               against. *)
            let groups =
              Obs.with_profile report.Resbm.Report.profile (fun () ->
                  Resbm.Driver.certify_diags prm managed report)
            in
            let diags = List.concat_map snd groups in
            let errors = Analysis.Diag.count Analysis.Diag.Error diags in
            let warnings = Analysis.Diag.count Analysis.Diag.Warning diags in
            if errors > 0 then incr refuted;
            let span_ms name =
              List.fold_left
                (fun acc (s : Obs.Profile.span) ->
                  if s.Obs.Profile.name = name then acc +. s.Obs.Profile.dur_ms
                  else acc)
                0.0
                (Obs.Profile.spans report.Resbm.Report.profile)
            in
            let certify_ms = span_ms "certify" in
            Format.printf
              "%-12s %-12s %3d certificates: %-9s (%d error%s, %d warning%s, certify \
               %.2f ms, compile %.2f ms)@."
              model.Nn.Model.name manager.Resbm.Variants.name
              (List.length report.Resbm.Report.certificates)
              (if errors = 0 then "certified" else "REFUTED")
              errors
              (if errors = 1 then "" else "s")
              warnings
              (if warnings = 1 then "" else "s")
              certify_ms report.Resbm.Report.compile_ms;
            List.iter
              (fun (group, ds) ->
                List.iter
                  (fun (d : Analysis.Diag.t) ->
                    if d.Analysis.Diag.severity <> Analysis.Diag.Hint then
                      Format.printf "  [%s] %a@." group Analysis.Diag.pp_verbose d)
                  ds)
              groups;
            cases :=
              Obs.Json.Obj
                [
                  ("model", Obs.Json.String model.Nn.Model.name);
                  ("manager", Obs.Json.String manager.Resbm.Variants.name);
                  ("l_max", Obs.Json.Int l_max);
                  ( "certificates",
                    Obs.Json.Int (List.length report.Resbm.Report.certificates) );
                  ("certified", Obs.Json.Bool (errors = 0));
                  ("certify_ms", Obs.Json.Float certify_ms);
                  ("certify_cuts_ms", Obs.Json.Float (span_ms "certify.cuts"));
                  ("certify_levels_ms", Obs.Json.Float (span_ms "certify.levels"));
                  ("certify_noise_ms", Obs.Json.Float (span_ms "certify.noise"));
                  ("compile_ms", Obs.Json.Float report.Resbm.Report.compile_ms);
                  ( "groups",
                    Obs.Json.Obj
                      (List.map
                         (fun (group, ds) -> (group, Analysis.Diag.list_to_json ds))
                         groups) );
                ]
              :: !cases)
          managers)
      models;
    Format.printf "%d/%d plans certified@."
      (List.length !cases - !refuted)
      (List.length !cases);
    (match json_path with
    | Some path ->
        write_json path (Obs.Json.Obj [ ("cases", Obs.Json.List (List.rev !cases)) ]);
        Format.printf "wrote certification report to %s@." path
    | None -> ());
    if !refuted > 0 then exit 2
  in
  let models =
    Arg.(
      value & opt string "all"
      & info [ "models" ] ~docv:"M1,M2,.."
          ~doc:"Comma-separated model names, or $(b,all) (the default).")
  in
  let managers =
    Arg.(
      value & opt string "all"
      & info [ "managers" ] ~docv:"M1,M2,.."
          ~doc:"Comma-separated manager names, or $(b,all) (the default).")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the per-case certification diagnostics (grouped by certify.cuts / \
             certify.levels / certify.noise) as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Compile the model/manager matrix and check every plan's evidence: re-verify \
          each min-cut optimality certificate (LP duality), prove level/capacity \
          safety by interval abstract interpretation, and prove noise safety by a \
          sound noise-bound analysis.  Warm plan-cache hits re-check their stored \
          certificates, so a corrupted cache entry is refuted rather than served.  \
          Exit 2 when any plan is refuted.")
    Term.(
      const run $ models $ managers $ l_max_arg $ jobs_arg $ cache_arg $ json_path)

(* --- sweep ----------------------------------------------------------------------- *)

let sweep_cmd =
  let run model levels profile_path jobs =
    let model = or_die (resolve_model model) in
    let lowered = Nn.Lowering.lower model in
    let g = lowered.Nn.Lowering.dfg in
    let levels =
      String.split_on_char ',' levels
      |> List.filter_map (fun s -> int_of_string_opt (String.trim s))
    in
    let profiled = ref [] in
    Format.printf "%5s %14s %14s %8s %7s %7s@." "l_max" "ReSBM(ms)" "Fhelipe(ms)" "gain"
      "bts-R" "bts-F";
    List.iter
      (fun l_max ->
        let prm = params_for l_max in
        let _, r = Resbm.Variants.compile ?jobs Resbm.Variants.resbm prm g in
        let _, f = Resbm.Variants.compile ?jobs Resbm.Variants.fhelipe prm g in
        if profile_path <> None then
          profiled :=
            report_json ~model:model.Nn.Model.name ~l_max f
            :: report_json ~model:model.Nn.Model.name ~l_max r
            :: !profiled;
        Format.printf "%5d %14.0f %14.0f %7.1f%% %7d %7d@." l_max
          r.Resbm.Report.latency_ms f.Resbm.Report.latency_ms
          (100.0 *. (1.0 -. (r.Resbm.Report.latency_ms /. f.Resbm.Report.latency_ms)))
          r.Resbm.Report.stats.Fhe_ir.Stats.bootstrap_count
          f.Resbm.Report.stats.Fhe_ir.Stats.bootstrap_count)
      levels;
    match profile_path with
    | Some path ->
        write_json path (Obs.Json.List (List.rev !profiled));
        Format.printf "wrote %d profiles to %s@." (List.length !profiled) path
    | None -> ()
  in
  let levels =
    Arg.(
      value & opt string "16,14,12,10" & info [ "l-max" ] ~docv:"L1,L2,.." ~doc:"Levels.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep l_max for one model (Figure 7 style).")
    Term.(const run $ model_arg $ levels $ profile_arg $ jobs_arg)

(* --- cache ----------------------------------------------------------------------- *)

let cache_cmd =
  let run action dir_flag =
    match (dir_flag, cache_dir_env ()) with
    | None, None ->
        Format.eprintf
          "error: no cache directory; pass --dir or set RESBM_CACHE_DIR@.";
        exit 1
    | Some dir, _ | None, Some dir -> (
        let c = Resbm.Plan_cache.create ~dir () in
        match action with
        | "stats" ->
            Format.printf "%s@."
              (Obs.Json.to_string
                 (Resbm.Plan_cache.stats_json (Resbm.Plan_cache.stats c)))
        | "clear" ->
            let before = (Resbm.Plan_cache.stats c).Resbm.Plan_cache.disk_entries in
            Resbm.Plan_cache.clear c;
            Format.printf "cleared %d cached plan%s under %s@." before
              (if before = 1 then "" else "s")
              dir
        | other ->
            Format.eprintf "error: unknown cache action %S (stats or clear)@." other;
            exit 1)
  in
  let action =
    Arg.(
      value
      & pos 0 string "stats"
      & info [] ~docv:"ACTION" ~doc:"$(b,stats) (default) or $(b,clear).")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Cache directory (default: $(b,RESBM_CACHE_DIR)).")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the on-disk plan cache: $(b,stats) prints the entry \
          counts and hit/miss counters as JSON, $(b,clear) deletes every cached \
          plan.")
    Term.(const run $ action $ dir)

(* --- bench-diff ------------------------------------------------------------------ *)

let bench_diff_cmd =
  let run base_path cand_path json_path fail_on noise_mult min_tolerance strict_wallclock
      all =
    let load path =
      let content =
        try
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        with Sys_error msg ->
          Format.eprintf "error: cannot read %s: %s@." path msg;
          exit 1
      in
      match Obs.Bench_diff.load content with
      | Ok src -> src
      | Error msg ->
          Format.eprintf "error: %s: %s@." path msg;
          exit 1
    in
    let base = load base_path and cand = load cand_path in
    match
      Obs.Bench_diff.diff ~noise_mult ~min_tolerance_ms:min_tolerance ~base ~cand ()
    with
    | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 1
    | Ok outcome ->
        Format.printf "%a@." (Obs.Bench_diff.pp_outcome ~all) outcome;
        (match json_path with
        | Some path ->
            write_json path (Obs.Bench_diff.outcome_to_json outcome);
            Format.printf "wrote diff report to %s@." path
        | None -> ());
        exit (Obs.Bench_diff.exit_code ~fail_on ~strict_wallclock outcome)
  in
  let base_path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")
  in
  let cand_path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CANDIDATE" ~doc:"Candidate bench JSON.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the per-cell diff report as JSON to $(docv).")
  in
  let fail_on =
    let when_c =
      Arg.enum [ ("changed", `Changed); ("regressed", `Regressed); ("never", `Never) ]
    in
    Arg.(
      value & opt when_c `Changed
      & info [ "fail-on" ] ~docv:"WHEN"
          ~doc:
            "When to exit non-zero: $(b,changed) (default) on any deterministic drift \
             — improvements too, since they invalidate the committed baseline — or \
             misaligned rows; $(b,regressed) only on deterministic regressions; \
             $(b,never) to always report and exit 0.")
  in
  let noise_mult =
    Arg.(
      value & opt float 4.0
      & info [ "noise-mult" ] ~docv:"X"
          ~doc:"Wall-clock tolerance multiplier over the runs' summed MADs.")
  in
  let min_tolerance =
    Arg.(
      value & opt float 0.5
      & info [ "min-tolerance" ] ~docv:"MS"
          ~doc:"Wall-clock tolerance floor in milliseconds.")
  in
  let strict_wallclock =
    Arg.(
      value & flag
      & info [ "strict-wallclock" ]
          ~doc:"Let out-of-tolerance wall-clock regressions fail the gate too.")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Print every cell, not just the changed ones.")
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench JSON files cell by cell: deterministic planner metrics \
          exactly, wall-clock compile times within a MAD-derived noise band.  Exit 0 \
          when the gate passes, 2 when it fails, 1 on unreadable input.")
    Term.(
      const run $ base_path $ cand_path $ json_path $ fail_on $ noise_mult
      $ min_tolerance $ strict_wallclock $ all)

(* --- explain ---------------------------------------------------------------------- *)

let top_arg =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"K"
        ~doc:
          "Individually-listed nodes per op-kind bucket; the rest fold into an \
           explicit remainder row (never dropped).")

let explain_cmd =
  let run model manager l_max jobs cache_flag top trace_path json_path =
    let model = or_die (resolve_model model) in
    let manager = or_die (resolve_manager manager) in
    let prm = params_for l_max in
    let lowered = Nn.Lowering.lower model in
    let orig_nodes = Fhe_ir.Dfg.node_count lowered.Nn.Lowering.dfg in
    let cache = cache_of ~flag:cache_flag in
    let managed, report =
      Resbm.Variants.compile ?jobs ?cache manager prm lowered.Nn.Lowering.dfg
    in
    let wf = Resbm.Explain.attribution ~top prm ~managed report in
    let rationales = Resbm.Explain.rationales prm ~orig_nodes ~managed report in
    Format.printf "%a@."
      (Obs.Explain.pp
         ~title:
           (Printf.sprintf "%s / %s @ l_max %d — predicted cost attribution"
              model.Nn.Model.name manager.Resbm.Variants.name l_max))
      wf;
    Format.printf "@.bootstrap rationale (%d placed):@." (List.length rationales);
    List.iter
      (fun r -> Format.printf "  %a@." (Resbm.Explain.pp_rationale managed) r)
      rationales;
    (* Cross-check the static attribution against a flight-recorded run:
       [resbm trace --jsonl FILE] writes per-op events carrying each node's
       freq-weighted cost; any node whose traced cost disagrees with the
       Table 2 attribution means the plan the explainer describes is not
       the plan that executed. *)
    let trace_check =
      match trace_path with
      | None -> None
      | Some path ->
          let lines =
            let ic =
              try open_in path
              with Sys_error msg ->
                Format.eprintf "error: cannot read %s: %s@." path msg;
                exit 1
            in
            let acc = ref [] in
            (try
               while true do
                 acc := input_line ic :: !acc
               done
             with End_of_file -> close_in ic);
            List.rev !acc
          in
          let traced = Hashtbl.create 256 in
          List.iter
            (fun line ->
              if String.trim line <> "" then
                match Obs.Json.of_string line with
                | Ok j when Obs.Json.member "type" j = Some (Obs.Json.String "op") -> (
                    match (Obs.Json.member "node" j, Obs.Json.member "dur_ms" j) with
                    | Some (Obs.Json.Int node), Some dur when node >= 0 ->
                        let ms =
                          match dur with
                          | Obs.Json.Float f -> f
                          | Obs.Json.Int i -> float_of_int i
                          | _ -> 0.0
                        in
                        (* Every event of a node carries the node's full
                           freq-weighted cost, so keep-one (not sum). *)
                        Hashtbl.replace traced node ms
                    | _ -> ())
                | _ -> ())
            lines;
          let info = Fhe_ir.Scale_check.infer prm managed in
          let compared = ref 0 and max_dev = ref 0.0 and worst = ref (-1) in
          Hashtbl.iter
            (fun node traced_ms ->
              if node < Fhe_ir.Dfg.node_count managed then begin
                let predicted = Fhe_ir.Latency.node_cost prm managed info node in
                incr compared;
                let dev = Float.abs (traced_ms -. predicted) in
                if dev > !max_dev then begin
                  max_dev := dev;
                  worst := node
                end
              end)
            traced;
          Format.printf
            "@.traced cross-check (%s): %d nodes compared, max |traced - predicted| \
             %.6f ms%s@."
            path !compared !max_dev
            (if !worst >= 0 && !max_dev > 1e-6 then
               Printf.sprintf " (node %d)" !worst
             else "");
          Some (!compared, !max_dev)
    in
    (match json_path with
    | Some path ->
        let open Obs.Json in
        write_json path
          (Obj
             ([
                ("model", String model.Nn.Model.name);
                ("manager", String manager.Resbm.Variants.name);
                ("l_max", Int l_max);
                ("attribution", Obs.Explain.to_json wf);
                ( "rationales",
                  List (List.map Resbm.Explain.rationale_to_json rationales) );
                ("digest", Resbm.Explain.digest prm ~managed report);
              ]
             @
             match trace_check with
             | None -> []
             | Some (compared, max_dev) ->
                 [
                   ( "trace_check",
                     Obj
                       [
                         ("nodes_compared", Int compared);
                         ("max_deviation_ms", Float max_dev);
                       ] );
                 ]));
        Format.printf "wrote explain report to %s@." path
    | None -> ());
    (* An attribution that misses real cost is an explainability bug. *)
    let attributed = Obs.Explain.attributed wf in
    if wf.Obs.Explain.total > 0.0 && attributed < 0.99 *. wf.Obs.Explain.total then begin
      Format.eprintf "error: only %.1f%% of the predicted latency is attributed@."
        (100.0 *. attributed /. wf.Obs.Explain.total);
      exit 2
    end
  in
  let trace_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Cross-check the static attribution against the flight-recorded JSONL \
             trace in $(docv) (written by $(b,resbm trace --jsonl)): compares every \
             traced node's freq-weighted cost with the Table 2 prediction.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the waterfall, per-bootstrap rationales and the structural plan \
             digest as JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a compiled plan: a deterministic hierarchical cost waterfall \
          (total -> region -> op kind -> top-k nodes, plus bootstrap / rescale / \
          modswitch shares), and, for every placed bootstrap, the min-cut \
          certificate evidence pinning it there with a counterfactual cost of \
          moving it (the region's next-best cut).  Exit 2 when less than 99% of \
          the predicted latency is attributed.")
    Term.(
      const run $ model_arg $ manager_arg $ l_max_arg $ jobs_arg $ cache_arg $ top_arg
      $ trace_path $ json_path)

(* --- plan-diff -------------------------------------------------------------------- *)

let plan_snapshot_schema = 1

let plan_snapshot_json ~l_max cells =
  Obs.Json.Obj
    [
      ("plan_snapshot", Obs.Json.String "resbm");
      ("schema_version", Obs.Json.Int plan_snapshot_schema);
      ("l_max", Obs.Json.Int l_max);
      ( "cells",
        Obs.Json.List
          (List.map
             (fun (model, manager, digest) ->
               Obs.Json.Obj
                 [
                   ("model", Obs.Json.String model);
                   ("manager", Obs.Json.String manager);
                   ("digest", digest);
                 ])
             cells) );
    ]

let load_plan_snapshot path =
  let content =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Format.eprintf "error: cannot read %s: %s@." path msg;
      exit 2
  in
  match Obs.Json.of_string content with
  | Error msg ->
      Format.eprintf "error: %s: %s@." path msg;
      exit 2
  | Ok json ->
      (match Obs.Json.member "plan_snapshot" json with
      | Some (Obs.Json.String "resbm") -> ()
      | _ ->
          Format.eprintf "error: %s is not a resbm plan snapshot@." path;
          exit 2);
      (match Obs.Json.member "schema_version" json with
      | Some (Obs.Json.Int v) when v = plan_snapshot_schema -> ()
      | Some (Obs.Json.Int v) ->
          Format.eprintf "error: %s: snapshot schema %d is not supported@." path v;
          exit 2
      | _ ->
          Format.eprintf "error: %s: unversioned plan snapshot@." path;
          exit 2);
      let l_max =
        match Obs.Json.member "l_max" json with
        | Some (Obs.Json.Int l) -> l
        | _ ->
            Format.eprintf "error: %s: snapshot lacks l_max@." path;
            exit 2
      in
      let cells =
        match Obs.Json.member "cells" json with
        | Some (Obs.Json.List cs) ->
            List.filter_map
              (fun c ->
                match
                  ( Obs.Json.member "model" c,
                    Obs.Json.member "manager" c,
                    Obs.Json.member "digest" c )
                with
                | Some (Obs.Json.String m), Some (Obs.Json.String g), Some d ->
                    Some (m, g, d)
                | _ -> None)
              cs
        | _ -> []
      in
      (l_max, cells)

let plan_diff_cmd =
  let run base_path cand_path write_path models managers l_max jobs cache_flag
      json_path perfetto_path =
    let cache = cache_of ~flag:cache_flag in
    let split s =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")
    in
    let compute_cells ~l_max pairs =
      let prm = params_for l_max in
      let lowered_tbl = Hashtbl.create 8 in
      List.map
        (fun (model_name, manager_name) ->
          let model = or_die (resolve_model model_name) in
          let manager = or_die (resolve_manager manager_name) in
          let lowered =
            match Hashtbl.find_opt lowered_tbl model.Nn.Model.name with
            | Some l -> l
            | None ->
                let l = Nn.Lowering.lower model in
                Hashtbl.add lowered_tbl model.Nn.Model.name l;
                l
          in
          let managed, report =
            Resbm.Variants.compile ?jobs ?cache manager prm
              lowered.Nn.Lowering.dfg
          in
          ( model.Nn.Model.name,
            manager.Resbm.Variants.name,
            Resbm.Explain.digest prm ~managed report ))
        pairs
    in
    match (write_path, base_path, cand_path) with
    | Some out, None, None ->
        (* Snapshot mode: compile the matrix and commit its digests. *)
        let pairs =
          List.concat_map
            (fun m -> List.map (fun g -> (m, g)) (split managers))
            (split models)
        in
        if pairs = [] then or_die (Error (`Msg "no model/manager cells given"));
        let cells = compute_cells ~l_max pairs in
        write_json out (plan_snapshot_json ~l_max cells);
        Format.printf "wrote plan snapshot (%d cells, l_max %d) to %s@."
          (List.length cells) l_max out
    | Some _, _, _ ->
        or_die (Error (`Msg "--write takes no positional snapshot arguments"))
    | None, None, _ ->
        or_die
          (Error (`Msg "pass a BASELINE snapshot (and optionally a CANDIDATE)"))
    | None, Some base_path, cand ->
        let base_l_max, base_cells = load_plan_snapshot base_path in
        let cand_label, cand_l_max, cand_cells =
          match cand with
          | Some p ->
              let l, cs = load_plan_snapshot p in
              (p, l, cs)
          | None ->
              (* Drift mode: recompute the baseline's matrix from source. *)
              let pairs = List.map (fun (m, g, _) -> (m, g)) base_cells in
              ("(recomputed)", base_l_max, compute_cells ~l_max:base_l_max pairs)
        in
        if base_l_max <> cand_l_max then begin
          Format.eprintf "error: snapshots are from different sweeps (l_max %d vs %d)@."
            base_l_max cand_l_max;
          exit 2
        end;
        let key (m, g, _) = (m, g) in
        let missing =
          List.filter (fun c -> not (List.exists (fun c' -> key c' = key c) cand_cells))
            base_cells
        and added =
          List.filter (fun c -> not (List.exists (fun c' -> key c' = key c) base_cells))
            cand_cells
        in
        let drift = ref [] in
        List.iter
          (fun (m, g, base_digest) ->
            match
              List.find_opt (fun (m', g', _) -> m' = m && g' = g) cand_cells
            with
            | None -> ()
            | Some (_, _, cand_digest) -> (
                match Obs.Explain.diff_json base_digest cand_digest with
                | [] -> ()
                | changes -> drift := ((m, g), changes) :: !drift))
          base_cells;
        let drift = List.rev !drift in
        List.iter
          (fun (m, g, _) -> Format.printf "%s/%s: missing from candidate@." m g)
          missing;
        List.iter
          (fun (m, g, _) -> Format.printf "%s/%s: added in candidate@." m g)
          added;
        List.iter
          (fun ((m, g), changes) ->
            Format.printf "%s/%s: %d structural change%s@." m g (List.length changes)
              (if List.length changes = 1 then "" else "s");
            List.iter
              (fun c -> Format.printf "  %a@." Obs.Explain.pp_change c)
              changes)
          drift;
        let clean = missing = [] && added = [] && drift = [] in
        if clean then
          Format.printf "%d cells compared against %s: plans are structurally identical@."
            (List.length base_cells) cand_label
        else
          Format.printf "plan drift: %d cell%s changed, %d missing, %d added@."
            (List.length drift)
            (if List.length drift = 1 then "" else "s")
            (List.length missing) (List.length added);
        let all_changes =
          List.concat_map
            (fun ((m, g), changes) ->
              List.map
                (fun (c : Obs.Explain.change) ->
                  { c with Obs.Explain.path = m :: g :: c.Obs.Explain.path })
                changes)
            drift
        in
        (match json_path with
        | Some path ->
            let open Obs.Json in
            write_json path
              (Obj
                 [
                   ("plan_diff", String "resbm");
                   ("l_max", Int base_l_max);
                   ("base", String base_path);
                   ("candidate", String cand_label);
                   ( "missing",
                     List (List.map (fun (m, g, _) -> List [ String m; String g ]) missing)
                   );
                   ( "added",
                     List (List.map (fun (m, g, _) -> List [ String m; String g ]) added)
                   );
                   ("changes", List (List.map Obs.Explain.change_to_json all_changes));
                   ( "summary",
                     Obj
                       [
                         ("cells", Int (List.length base_cells));
                         ("drifted", Int (List.length drift));
                         ("missing", Int (List.length missing));
                         ("added", Int (List.length added));
                       ] );
                 ]);
            Format.printf "wrote plan diff to %s@." path
        | None -> ());
        (match perfetto_path with
        | Some path ->
            write_json path (Obs.Explain.perfetto_overlay all_changes);
            Format.printf
              "wrote Perfetto overlay to %s (load on top of an execution trace)@." path
        | None -> ());
        if not clean then exit 1
  in
  let base_path =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline plan snapshot JSON.")
  in
  let cand_path =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"CANDIDATE"
          ~doc:
            "Candidate plan snapshot JSON; when omitted, the baseline's matrix is \
             recompiled from source and compared against the file (drift mode).")
  in
  let write_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "write" ] ~docv:"FILE"
          ~doc:
            "Snapshot mode: compile the $(b,--models) x $(b,--managers) matrix at \
             $(b,--l-max) and write the digests to $(docv) instead of diffing.")
  in
  let models =
    Arg.(
      value & opt string "resnet20,squeezenet"
      & info [ "models" ] ~docv:"M1,M2,.." ~doc:"Models for $(b,--write).")
  in
  let managers =
    Arg.(
      value & opt string "all"
      & info [ "managers" ] ~docv:"G1,G2,.." ~doc:"Managers for $(b,--write).")
  in
  let managers =
    Term.(
      const (fun s -> if String.lowercase_ascii (String.trim s) = "all" then
               String.concat "," (List.map (fun m -> m.Resbm.Variants.name) Resbm.Variants.all)
             else s)
      $ managers)
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the structural diff as JSON to $(docv).")
  in
  let perfetto_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write the changes as a Perfetto instant-event overlay to $(docv), \
             loadable on top of a $(b,resbm trace) timeline.")
  in
  Cmd.v
    (Cmd.info "plan-diff"
       ~doc:
         "Structurally diff compiled plans.  Digests are keyed by content (node \
          and region hashes), so the comparison is stable under node renumbering: \
          only real placement, level/scale, boundary or cut-value changes count.  \
          $(b,--write) records a snapshot; one positional recompiles the matrix \
          and diffs against it (CI drift gate); two positionals diff two \
          snapshots.  Exit 0 when identical, 1 on drift, 2 on unreadable input.")
    Term.(
      const run $ base_path $ cand_path $ write_path $ models $ managers $ l_max_arg
      $ jobs_arg $ cache_arg $ json_path $ perfetto_path)

(* --- chaos ------------------------------------------------------------------------ *)

let chaos_cmd =
  let run models trials seed l_max dim rate budget max_attempts backoff max_backoff
      floor no_retries from_trace json_path min_recovery log_out =
    with_flight log_out @@ fun fl ->
    let models =
      String.split_on_char ',' models
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if models = [] then or_die (Error (`Msg "no models given"));
    List.iter (fun m -> ignore (or_die (resolve_model m))) models;
    let seed =
      match Int64.of_string_opt seed with
      | Some s -> s
      | None -> or_die (Error (`Msg (Printf.sprintf "bad seed %S" seed)))
    in
    let cfg =
      {
        Resilience.Chaos.seed;
        trials;
        models;
        l_max;
        dim;
        rate;
        budget;
        max_attempts;
        backoff_ms = backoff;
        max_backoff_ms = max_backoff;
        noise_floor_bits = floor;
        no_retries;
        from_trace;
      }
    in
    let report =
      Resilience.Chaos.run ?metrics:(Option.map (fun f -> f.fl_metrics) fl) cfg
    in
    List.iter
      (fun (m : Resilience.Chaos.model_summary) ->
        Format.printf
          "%-12s %d trials, %d faulted (%d faults): %d recovered (rate %.3f), %d \
           retries, %d panic refreshes, tolerance %.2e@."
          m.Resilience.Chaos.model m.Resilience.Chaos.trials_run
          m.Resilience.Chaos.faulted_trials m.Resilience.Chaos.injected_faults
          m.Resilience.Chaos.recovered_trials m.Resilience.Chaos.recovery_rate
          m.Resilience.Chaos.total_retries m.Resilience.Chaos.total_panic_refreshes
          m.Resilience.Chaos.tolerance;
        List.iter
          (fun (tier, reason) ->
            Format.printf "  planner degraded: tier %s failed (%s)@." tier reason)
          m.Resilience.Chaos.compile_fallbacks;
        List.iter
          (fun (kind, count) ->
            let ms =
              Option.value ~default:0.0
                (List.assoc_opt kind m.Resilience.Chaos.recovery_ms_by_kind)
            in
            Format.printf "  %-14s %4d injected, %10.1f ms simulated recovery@." kind
              count ms)
          m.Resilience.Chaos.faults_by_kind;
        if m.Resilience.Chaos.fault_targets <> [] then begin
          Format.printf "  targeted %d trace hot-spots:@."
            (List.length m.Resilience.Chaos.fault_targets);
          List.iteri
            (fun i (node, ratio) ->
              if i < 8 then
                Format.printf "    node %-6d traced/predicted noise x%.2f@." node ratio)
            m.Resilience.Chaos.fault_targets
        end)
      report.Resilience.Chaos.models;
    Format.printf "overall: %d/%d faulted trials recovered (rate %.3f)@."
      report.Resilience.Chaos.total_recovered report.Resilience.Chaos.total_faulted
      report.Resilience.Chaos.overall_recovery_rate;
    (match json_path with
    | Some path ->
        write_json path (Resilience.Chaos.to_json report);
        Format.printf "wrote campaign report to %s@." path
    | None -> ());
    (match (log_out, fl) with
    | Some path, Some fl -> write_flight path fl
    | _ -> ());
    let clean_broken =
      List.filter
        (fun (m : Resilience.Chaos.model_summary) ->
          not m.Resilience.Chaos.clean_identical)
        report.Resilience.Chaos.models
    in
    if clean_broken <> [] then begin
      List.iter
        (fun (m : Resilience.Chaos.model_summary) ->
          Format.eprintf
            "error: %s: an injection-free trial diverged from the reference (fault-off \
             runs must be bit-identical)@."
            m.Resilience.Chaos.model)
        clean_broken;
      exit 2
    end;
    match min_recovery with
    | Some r when report.Resilience.Chaos.overall_recovery_rate < r ->
        Format.eprintf "error: recovery rate %.3f below required %.3f@."
          report.Resilience.Chaos.overall_recovery_rate r;
        exit 2
    | _ -> ()
  in
  let models =
    Arg.(
      value & opt string "tiny"
      & info [ "models" ] ~docv:"M1,M2,.."
          ~doc:"Comma-separated model names to subject to the campaign.")
  in
  let trials =
    Arg.(value & opt int 25 & info [ "trials" ] ~docv:"N" ~doc:"Trials per model.")
  in
  let seed =
    Arg.(
      value & opt string "0xC4A05"
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign master seed (decimal or 0x hex).  Fault plans, the evaluator \
             noise stream and the report are all deterministic in it.")
  in
  let dim =
    Arg.(value & opt int 64 & info [ "dim" ] ~docv:"D" ~doc:"Slots per synthetic image.")
  in
  let rate =
    Arg.(
      value & opt float 0.02
      & info [ "rate" ] ~docv:"P"
          ~doc:"Base per-op injection probability (scaled per fault kind).")
  in
  let budget =
    Arg.(
      value & opt int 3
      & info [ "budget" ] ~docv:"N"
          ~doc:"Max injections per trial (negative for unlimited).")
  in
  let max_attempts =
    Arg.(
      value & opt int 3
      & info [ "max-attempts" ] ~docv:"N"
          ~doc:"Rollback-retries per checkpoint interval before escalating.")
  in
  let backoff =
    Arg.(
      value & opt float 5.0
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base retry backoff charged to the simulated clock (doubles per attempt).")
  in
  let max_backoff =
    Arg.(
      value & opt float 80.0
      & info [ "max-backoff-ms" ] ~docv:"MS"
          ~doc:
            "Ceiling on a single retry backoff delay; capped backoffs are counted in \
             the report's recovery accounting.")
  in
  let floor =
    Arg.(
      value & opt float 6.0
      & info [ "floor" ] ~docv:"BITS"
          ~doc:
            "Noise-headroom floor: a ciphertext observed below it at a region boundary \
             — though statically predicted safe — triggers retry, then panic \
             re-bootstrap.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the campaign report as JSON to $(docv) (byte-identical across runs \
             with the same seed and config).")
  in
  let no_retries =
    Arg.(
      value & flag
      & info [ "no-retries" ]
          ~doc:
            "Retry-less campaign: recovery runs with zero rollback attempts and fault \
             plans inject only noise spikes, driving every detected fault through the \
             panic re-bootstrap repair path instead of rollback-retry.")
  in
  let min_recovery =
    Arg.(
      value
      & opt (some float) None
      & info [ "min-recovery" ] ~docv:"RATE"
          ~doc:"Exit with code 2 when the overall recovery rate falls below $(docv).")
  in
  let from_trace =
    Arg.(
      value & flag
      & info [ "from-trace" ]
          ~doc:
            "Aim fault injection at trace hot-spots: flight-record the fault-free \
             reference run, rank each node's traced noise against the static \
             estimate, and boost injection probability on the top divergers.  The \
             reference outputs are unchanged (tracing is pure instrumentation), \
             so the fault-off identity check still holds.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded fault-injection campaign: N trials per model under randomized \
          fault plans, each executed by the recovery-aware interpreter and compared \
          against a fault-free reference run.  Injection-free trials must match the \
          reference bit-for-bit (exit 2 otherwise).")
    Term.(
      const run $ models $ trials $ seed $ l_max_arg $ dim $ rate $ budget $ max_attempts
      $ backoff $ max_backoff $ floor $ no_retries $ from_trace $ json_path
      $ min_recovery $ log_out_arg)

(* --- serve ------------------------------------------------------------------------ *)

let serve_cmd =
  let run model l_max dim seed arrival_rate duration slo_ms max_batch max_wait
      queue_depth chaos_rate chaos_budget max_retries retry_backoff max_backoff
      recovery_attempts breaker_window breaker_threshold breaker_cooldown json_path
      min_goodput min_attainment jobs cache_flag log_out =
    with_flight log_out @@ fun fl ->
    ignore (or_die (resolve_model model));
    let seed =
      match Int64.of_string_opt seed with
      | Some s -> s
      | None -> or_die (Error (`Msg (Printf.sprintf "bad seed %S" seed)))
    in
    let cfg =
      {
        Serving.Scheduler.seed;
        model;
        l_max;
        dim;
        arrival = Serving.Scheduler.Poisson arrival_rate;
        duration_ms = duration;
        slo_ms;
        max_batch;
        max_wait_ms = max_wait;
        queue_depth;
        chaos_rate;
        chaos_budget;
        recovery =
          {
            Resilience.Recovery.default with
            Resilience.Recovery.max_attempts = recovery_attempts;
            max_backoff_ms = max_backoff;
          };
        max_retries;
        retry_backoff_ms = retry_backoff;
        breaker_window;
        breaker_threshold;
        breaker_cooldown_ms = breaker_cooldown;
      }
    in
    let cache = cache_of ~flag:cache_flag in
    let report = Serving.Scheduler.run ?jobs ?cache cfg in
    let r = report in
    Format.printf
      "serve %s: %d arrivals -> %d admitted, %d completed, %d shed, %d failed@."
      r.Serving.Scheduler.model r.Serving.Scheduler.arrivals
      r.Serving.Scheduler.admitted r.Serving.Scheduler.completed
      r.Serving.Scheduler.shed r.Serving.Scheduler.failed;
    Format.printf
      "  batch: capacity %d, est %.2f ms, slo %.1f ms, max wait %.1f ms, mean fill \
       %.2f@."
      r.Serving.Scheduler.slot_capacity r.Serving.Scheduler.est_batch_ms
      r.Serving.Scheduler.slo_ms r.Serving.Scheduler.max_wait_ms
      r.Serving.Scheduler.mean_batch_fill;
    Format.printf
      "  service: goodput %.2f rps, attainment %.3f, p50 %.1f ms, p99 %.1f ms, queue \
       peak %d@."
      r.Serving.Scheduler.goodput_rps r.Serving.Scheduler.slo_attainment
      r.Serving.Scheduler.p50_service_ms r.Serving.Scheduler.p99_service_ms
      r.Serving.Scheduler.queue_depth_peak;
    Format.printf
      "  resilience: %d batches (%d re-dispatches), %d breaker opens, backoff %.1f ms \
       (%d capped)@."
      r.Serving.Scheduler.batches_run r.Serving.Scheduler.batch_retries
      r.Serving.Scheduler.breaker_opens r.Serving.Scheduler.backoff_ms_total
      r.Serving.Scheduler.capped_backoffs;
    List.iter
      (fun (reason, n) -> Format.printf "  shed %-16s %d@." reason n)
      r.Serving.Scheduler.shed_by_reason;
    List.iter
      (fun (cause, n) -> Format.printf "  failed %-14s %d@." cause n)
      r.Serving.Scheduler.failed_by_cause;
    (match json_path with
    | Some path ->
        write_json path (Serving.Scheduler.to_json report);
        Format.printf "wrote campaign report to %s@." path
    | None -> ());
    (match (log_out, fl) with
    | Some path, Some fl -> write_flight path fl
    | _ -> ());
    let breached = ref false in
    if r.Serving.Scheduler.goodput_rps < min_goodput then begin
      Format.eprintf "error: goodput %.2f rps below required %.2f@."
        r.Serving.Scheduler.goodput_rps min_goodput;
      breached := true
    end;
    if r.Serving.Scheduler.slo_attainment < min_attainment then begin
      Format.eprintf "error: SLO attainment %.3f below required %.3f@."
        r.Serving.Scheduler.slo_attainment min_attainment;
      breached := true
    end;
    if !breached then exit 2
  in
  let model =
    Arg.(
      value & opt string "tiny"
      & info [ "model" ] ~docv:"NAME" ~doc:"Model to serve.")
  in
  let dim =
    Arg.(
      value & opt int 16
      & info [ "dim" ] ~docv:"D" ~doc:"Slots per request payload.")
  in
  let seed =
    Arg.(
      value & opt string "0x5E17E"
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Campaign master seed (decimal or 0x hex).  Arrivals, payloads, fault \
             plans, evaluator noise and the report are all deterministic in it.")
  in
  let arrival_rate =
    Arg.(
      value & opt float 40.0
      & info [ "arrival-rate" ] ~docv:"RPS"
          ~doc:"Mean Poisson arrival rate, requests per second (simulated).")
  in
  let duration =
    Arg.(
      value & opt float 1000.0
      & info [ "duration" ] ~docv:"MS" ~doc:"Arrival-window length (simulated ms).")
  in
  let slo_ms =
    Arg.(
      value & opt float 0.0
      & info [ "slo-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline after arrival; 0 derives 3x the fault-free \
             reference batch latency.")
  in
  let max_batch =
    Arg.(
      value & opt int 4
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Requests packed per batch (also capped by the slot count / dim).")
  in
  let max_wait =
    Arg.(
      value & opt float 0.0
      & info [ "max-wait-ms" ] ~docv:"MS"
          ~doc:"Longest the oldest pending request waits for a batch to fill; 0 \
                derives slo/4.")
  in
  let queue_depth =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Bounded queue: arrivals beyond it are shed.")
  in
  let chaos_rate =
    Arg.(
      value & opt float 0.0
      & info [ "chaos-rate" ] ~docv:"P"
          ~doc:"Per-op fault-injection probability per dispatch (0 disables).")
  in
  let chaos_budget =
    Arg.(
      value & opt int 2
      & info [ "chaos-budget" ] ~docv:"N" ~doc:"Max injections per dispatch.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Batch re-dispatches after a retryable failure.")
  in
  let retry_backoff =
    Arg.(
      value & opt float 5.0
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base batch-retry backoff (doubles per attempt, capped).")
  in
  let max_backoff =
    Arg.(
      value & opt float 80.0
      & info [ "max-backoff-ms" ] ~docv:"MS"
          ~doc:
            "Ceiling on a single backoff delay — both the supervisor's rollback \
             backoff and the scheduler's batch-retry backoff.")
  in
  let recovery_attempts =
    Arg.(
      value & opt int 3
      & info [ "recovery-attempts" ] ~docv:"N"
          ~doc:"In-batch rollback-retries per checkpoint interval.")
  in
  let breaker_window =
    Arg.(
      value & opt int 6
      & info [ "breaker-window" ] ~docv:"N"
          ~doc:"Recent batches the circuit breaker judges.")
  in
  let breaker_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "breaker-threshold" ] ~docv:"RATE"
          ~doc:
            "Bad fraction (faults or deadline misses) of the window that degrades \
             the breaker a stage: full batches -> half batches -> reject.")
  in
  let breaker_cooldown =
    Arg.(
      value & opt float 0.0
      & info [ "breaker-cooldown-ms" ] ~docv:"MS"
          ~doc:"Open-state hold time before probing again; 0 derives 2x the SLO.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the campaign report as JSON to $(docv) (byte-identical across \
             runs and across $(b,--jobs) values with the same seed and config).")
  in
  let min_goodput =
    Arg.(
      value & opt float 0.0
      & info [ "min-goodput" ] ~docv:"RPS"
          ~doc:"Exit with code 2 when goodput falls below $(docv).")
  in
  let min_attainment =
    Arg.(
      value & opt float 0.9
      & info [ "min-attainment" ] ~docv:"RATE"
          ~doc:
            "Exit with code 2 when SLO attainment (completed/admitted) falls below \
             $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a deterministic simulated serving campaign: a seeded Poisson arrival \
          trace through a bounded queue with per-request deadlines, slot-batched \
          execution under recovery supervision, load shedding, retry with capped \
          backoff, and a circuit breaker.  Exit 2 when the goodput or SLO-attainment \
          floor is breached.")
    Term.(
      const run $ model $ l_max_arg $ dim $ seed $ arrival_rate $ duration $ slo_ms
      $ max_batch $ max_wait $ queue_depth $ chaos_rate $ chaos_budget $ max_retries
      $ retry_backoff $ max_backoff $ recovery_attempts $ breaker_window
      $ breaker_threshold $ breaker_cooldown $ json_path $ min_goodput
      $ min_attainment $ jobs_arg $ cache_arg $ log_out_arg)

(* --- metrics ---------------------------------------------------------------------- *)

let metrics_cmd =
  let run model manager l_max dim format out serve =
    let model_name = model in
    let m = Obs.Metrics.create () in
    (* Everything below runs with the registry installed, so the Driver and
       Evaluator hot paths publish into it; the flight-recorded trace is
       folded in afterwards for the per-op and per-region distributions. *)
    let failure =
      if serve then begin
        (* A small pinned serving campaign under light chaos: populates the
           serve_* counters, the service_latency_ms / serve_queue_depth
           histograms (whose stats carry p50/p99) and the queue-depth-peak
           gauge, so the dump shows the serving schema end to end. *)
        ignore (or_die (resolve_model model_name));
        let cfg =
          {
            Serving.Scheduler.default with
            Serving.Scheduler.model = model_name;
            l_max;
            dim;
            arrival = Serving.Scheduler.Poisson 24.0;
            duration_ms = 500.0;
            chaos_rate = 0.05;
          }
        in
        Obs.with_metrics m (fun () ->
            ignore (Serving.Scheduler.run cfg);
            None)
      end
      else begin
        let model = or_die (resolve_model model) in
        let manager = or_die (resolve_manager manager) in
        let prm = params_for l_max in
        let lowered = Nn.Lowering.lower model in
        Obs.with_metrics m (fun () ->
            let managed, report =
              Resbm.Variants.compile manager prm lowered.Nn.Lowering.dfg
            in
            let tr, outcome = traced_inference prm lowered ~managed ~report ~dim in
            ignore (Obs.Metrics.of_trace ~into:m tr);
            match outcome with Ok _ -> None | Error msg -> Some msg)
      end
    in
    let rendered =
      match format with
      | `Prometheus -> Obs.Metrics.to_prometheus m
      | `Json -> Obs.Json.to_string (Obs.Metrics.to_json m) ^ "\n"
    in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc rendered;
        close_out oc;
        Format.printf "wrote metrics to %s@." path
    | None -> print_string rendered);
    match failure with
    | None -> ()
    | Some msg ->
        Format.eprintf
          "error: traced execution failed (metrics above cover the run up to the \
           failure): %s@."
          msg;
        exit 2
  in
  let dim =
    Arg.(value & opt int 64 & info [ "dim" ] ~docv:"D" ~doc:"Slots per synthetic image.")
  in
  let format =
    let fmt_c = Arg.enum [ ("prom", `Prometheus); ("json", `Json) ] in
    Arg.(
      value & opt fmt_c `Prometheus
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: $(b,prom) (Prometheus text exposition) or $(b,json).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let serve =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Run a small pinned-seed serving campaign (light chaos) instead of a \
             traced inference, populating the serve_* counters and the \
             service-latency / queue-depth histograms (p50/p99 in their stats).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Compile a model and run one flight-recorded simulated inference with the \
          aggregate-metrics registry installed (or, with $(b,--serve), a small \
          serving campaign), then dump every counter, gauge and latency/noise \
          histogram as Prometheus text or JSON.")
    Term.(const run $ model_arg $ manager_arg $ l_max_arg $ dim $ format $ out $ serve)

(* --- health ----------------------------------------------------------------------- *)

let health_cmd =
  let run in_file model manager l_max dim json headroom_floor recovery_floor slo_floor
      max_fallbacks max_refutations gc_ceiling =
    let thresholds =
      {
        Obs.Health.headroom_floor_bits = headroom_floor;
        recovery_rate_floor = recovery_floor;
        slo_attainment_floor = slo_floor;
        max_fallbacks;
        max_refutations;
        gc_major_words_ceiling = gc_ceiling;
      }
    in
    let records, metrics =
      match in_file with
      | Some path -> load_flight path
      | None ->
          (* No flight file: compile + one flight-recorded inference
             in-process with every collector installed, and judge that. *)
          let model = or_die (resolve_model model) in
          let manager = or_die (resolve_manager manager) in
          let prm = params_for l_max in
          let lowered = Nn.Lowering.lower model in
          let log = Obs.Log.create () in
          let m = Obs.Metrics.create () in
          let rt = Obs.Rt.create () in
          Obs.with_log log @@ fun () ->
          Obs.with_metrics m @@ fun () ->
          Obs.with_rt rt @@ fun () ->
          let managed, report =
            try Resbm.Variants.compile manager prm lowered.Nn.Lowering.dfg
            with Resbm.Driver.Verification_failed (pass, diags) ->
              Format.eprintf "error: verification failed after pass %s:@." pass;
              List.iter (fun d -> Format.eprintf "%a@." Analysis.Diag.pp d) diags;
              exit 2
          in
          let tr, outcome = traced_inference prm lowered ~managed ~report ~dim in
          ignore (Obs.Metrics.of_trace ~into:m tr);
          (match outcome with
          | Ok _ -> ()
          | Error msg -> Obs.log_error ~event:"run.failed" msg);
          Obs.Metrics.set m "log_dropped_records" (float_of_int (Obs.Log.dropped log));
          (Obs.Log.records log, m)
    in
    let verdict = Obs.Health.evaluate ~thresholds ~records metrics in
    if json then print_string (Obs.Json.to_string (Obs.Health.to_json verdict) ^ "\n")
    else Format.printf "%a@." Obs.Health.pp verdict;
    exit (Obs.Health.exit_code verdict)
  in
  let in_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "in" ] ~docv:"FILE"
          ~doc:
            "Judge a flight file written by $(b,--log-out) instead of running \
             anything; its records and metrics feed every rule.")
  in
  let dim =
    Arg.(value & opt int 64 & info [ "dim" ] ~docv:"D" ~doc:"Slots per synthetic image.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the verdict as JSON.")
  in
  let headroom_floor =
    Arg.(
      value & opt float 4.0
      & info [ "headroom-floor" ] ~docv:"BITS"
          ~doc:"Fail when the worst traced noise headroom falls below $(docv) bits.")
  in
  let recovery_floor =
    Arg.(
      value & opt float 0.9
      & info [ "recovery-floor" ] ~docv:"RATE"
          ~doc:
            "Fail when the chaos recovered/faulted ratio falls below $(docv) \
             (vacuous without chaos counters in the flight).")
  in
  let slo_floor =
    Arg.(
      value & opt float 0.95
      & info [ "slo-floor" ] ~docv:"RATE"
          ~doc:
            "Fail when the serving completed/admitted ratio falls below $(docv) \
             (vacuous without serving counters in the flight).")
  in
  let max_fallbacks =
    Arg.(
      value & opt int 0
      & info [ "max-fallbacks" ] ~docv:"N"
          ~doc:"Fail when more than $(docv) planner tier fallbacks were recorded.")
  in
  let max_refutations =
    Arg.(
      value & opt int 0
      & info [ "max-refutations" ] ~docv:"N"
          ~doc:
            "Fail when more than $(docv) certificate or plan-cache refutations were \
             recorded (counters or error-level log records).")
  in
  let gc_ceiling =
    Arg.(
      value & opt float 2e9
      & info [ "gc-ceiling" ] ~docv:"WORDS"
          ~doc:"Fail when major-heap promotion across compile phases exceeds $(docv).")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Evaluate rule-based health checks (noise headroom, chaos recovery rate, \
          planner fallbacks, refutations, GC pressure, log anomalies) over a flight \
          file ($(b,--in)) or over a fresh in-process compile + traced inference.  \
          Exit 0 when healthy, 2 when any rule fails.")
    Term.(
      const run $ in_file $ model_arg $ manager_arg $ l_max_arg $ dim $ json
      $ headroom_floor $ recovery_floor $ slo_floor $ max_fallbacks $ max_refutations
      $ gc_ceiling)

let () =
  let info =
    Cmd.info "resbm" ~version:"1.0.0"
      ~doc:"Region-based scale and minimal-level bootstrapping management for RNS-CKKS."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            compile_cmd;
            run_cmd;
            trace_cmd;
            regions_cmd;
            sweep_cmd;
            export_cmd;
            lint_cmd;
            certify_cmd;
            cache_cmd;
            bench_diff_cmd;
            explain_cmd;
            plan_diff_cmd;
            chaos_cmd;
            serve_cmd;
            metrics_cmd;
            health_cmd;
          ]))
