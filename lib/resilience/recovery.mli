(** Recovery-aware execution: checkpoint, retry, panic re-bootstrap.

    Wraps {!Fhe_ir.Interp.Session} with a supervisor that makes a run
    survive the faults {!Ckks.Fault} injects (and, more generally, any
    retryable divergence between the runtime ciphertext state and the
    static plan):

    - {b Checkpoints} are taken at region boundaries (the managed graph's
      {!Resbm.Report.t.region_of} attribution), holding only the values
      still live there; the set of retained checkpoints is bounded by a
      liveness-derived byte budget (default: twice the program's
      {!Fhe_ir.Liveness} peak working set), evicting the checkpoint of
      minimum marginal re-execution value (the {!Fhe_ir.Latency} cost of
      the span it saves replaying, ties oldest-first; the newest — the
      rollback target — is never evicted) but always keeping at least
      one.
    - {b Retry with rollback}: a retryable failure (an
      [Injected_transient] {!Ckks.Evaluator.Fhe_error}, or any error when
      faults were injected since the newest checkpoint) rolls back to the
      newest checkpoint and re-executes, up to [max_attempts] per
      checkpoint interval, charging an exponential backoff delay to the
      {e simulated} clock — determinism is preserved because no wall
      clock is involved.
    - {b Boundary validation}: at each boundary the live ciphertexts are
      checked for slot integrity ({!Ckks.Ciphertext.integrity_ok} — the
      only validator that can see a corrupted slot sitting below the
      noise floor), against the scale checker's static level/scale
      contract, and against a noise floor; a violation (e.g. an
      undetected scale drift or a sub-floor slot corruption) triggers a
      retry, and {!Ckks.Evaluator.State_divergence} when retries are
      exhausted.
    - {b Panic re-bootstrap}: a ciphertext whose observed noise headroom
      fell below [noise_floor_bits] at a boundary {e although the static
      noise analysis} ({!Fhe_ir.Noise_check}) {e predicted it safe} is —
      once retries are exhausted or pointless — refreshed in place
      ({!Fhe_ir.Interp.Session.refresh}): a bootstrap-priced noise reset
      that keeps the plan's level/scale bookkeeping intact.

    With no injector installed and no divergence, a run is bit-identical
    to {!Fhe_ir.Interp.run}: the supervisor only reads state between
    nodes and never touches the evaluator's PRNG. *)

type config = {
  max_attempts : int;
      (** Rollback-retries per checkpoint interval before escalating
          (re-raising, or panic-refreshing a noise violation). *)
  backoff_ms : float;
      (** Base retry delay, charged to the simulated clock; attempt [k]
          waits [backoff_ms * 2^(k-1)], clipped to [max_backoff_ms]. *)
  max_backoff_ms : float;
      (** Ceiling on a single backoff delay.  Unbounded doubling can blow
          past any request deadline; serving callers set this from their
          SLO.  Clipped backoffs are counted in {!stats.capped_backoffs}
          and in the [recovery_backoff_capped_total] metric. *)
  checkpoint_budget_bytes : float option;
      (** Total bytes of retained checkpoints; [None] derives
          [2 * Liveness.peak_bytes] from the graph.  At least one
          checkpoint is always kept. *)
  noise_floor_bits : float;
      (** Headroom floor (bits) under which a ciphertext the static
          analysis predicted safe is considered fault-damaged. *)
  noise_slack_bits : float;
      (** Relative trigger: a ciphertext whose observed headroom is more
          than this many bits below its static prediction is damaged even
          above the absolute floor.  Must exceed the noise model's
          validated error ({!Fhe_ir.Noise_check.check_trace}'s 10-bit
          tolerance) or clean runs would false-positive. *)
}

val default : config
(** [max_attempts = 3], [backoff_ms = 5.0], [max_backoff_ms = 80.0] (never
    reached by the default three attempts, whose largest delay is 20 ms —
    existing pinned campaigns are unchanged), derived budget,
    [noise_floor_bits = 6.0], [noise_slack_bits = 12.0]. *)

type stats = {
  retries : int;  (** Rollback-retries performed. *)
  rollbacks : int;  (** = [retries]; kept separate for future policies. *)
  panic_refreshes : int;  (** In-place re-bootstraps of noisy ciphertexts. *)
  checkpoints : int;  (** Checkpoints taken. *)
  evictions : int;  (** Checkpoints dropped to stay under the budget. *)
  checkpoint_bytes_peak : float;  (** Peak retained checkpoint bytes. *)
  backoff_ms_total : float;  (** Simulated backoff charged by retries. *)
  capped_backoffs : int;
      (** Backoff delays clipped by {!config.max_backoff_ms}. *)
  recovery_ms_by_kind : (string * float) list;
      (** Simulated latency spent recovering (wasted re-execution +
          backoff), attributed to the fault kind blamed for each retry
          (or the error cause when no injection explains it), sorted. *)
  faults_by_kind : (string * int) list;
      (** Injections observed during this run, by kind, sorted. *)
  injected_faults : int;  (** Total injections observed during this run. *)
  held_checkpoints : int list;
      (** Execution-order positions of the checkpoints still retained when
          the run finished, ascending — shows which spans the value-based
          eviction chose to keep guarding. *)
}

val accounting_json :
  recovery_ms_by_kind:(string * float) list ->
  backoff_ms_total:float ->
  capped_backoffs:int ->
  Obs.Json.t
(** The shared recovery-accounting JSON schema:
    [{"recovery_ms_by_kind": {...}, "backoff_ms_total": f,
    "capped_backoffs": n}].  Chaos campaign reports and serving campaign
    reports both render their (possibly merged) recovery accounting
    through this one function, so the two stay field-compatible. *)

val run :
  ?config:config ->
  ?trace:Obs.Trace.t ->
  ?region_of:(int -> int) ->
  ?noise:Fhe_ir.Noise_check.report ->
  Ckks.Evaluator.t ->
  Fhe_ir.Dfg.t ->
  Fhe_ir.Interp.env ->
  Fhe_ir.Interp.result * stats
(** Supervised execution of [g].  [region_of] defines the checkpoint
    boundaries (default: none, so only the initial checkpoint exists).
    [noise] is the static per-node prediction the boundary validator
    compares observed headroom against; it defaults to the {e sound}
    uncapped estimate ([Noise_check.analyse ~magnitude_cap:infinity]),
    which can never flag a fault-free run — pass a sharper analysis
    (e.g. with the lowering's constant amplitudes) to widen the
    detection window.  Rollbacks and panic refreshes are marked as
    ["rollback"] / ["panic_refresh"] trace instants when a trace is
    installed.

    @raise Ckks.Evaluator.Fhe_error when recovery is exhausted: a
    non-retryable error, a retryable one out of attempts, or
    [State_divergence] when the runtime state cannot be reconciled with
    the plan.
    @raise Fhe_ir.Interp.Missing_input as {!Fhe_ir.Interp.run}. *)
