(** Seeded chaos campaigns: randomized fault-injection trials with
    recovery measurement.

    A campaign runs [trials] supervised inferences ({!Recovery}) per
    model, each under a fault plan drawn from the campaign's SplitMix64
    stream (per-kind probabilities scaled by [rate], magnitudes drawn from
    kind-appropriate ranges, a per-trial fault budget), and compares every
    output against a fault-free reference run of the same compiled graph
    with the same evaluator seed.  Everything — fault plans, evaluator
    noise, backoff (simulated clock) — is deterministic in [seed], so a
    campaign report serialises byte-for-byte identically across runs; no
    wall-clock value enters the report.

    A trial {e recovers} when it completes and its worst output deviation
    from the reference stays within the campaign tolerance (derived from
    the reference's own noise estimate).  Trials whose injector never
    fired must match the reference bit-for-bit — that is the fault-off
    identity check running continuously inside every campaign. *)

type config = {
  seed : int64;  (** Master seed: fault plans and the evaluator stream. *)
  trials : int;  (** Trials per model. *)
  models : string list;  (** {!Nn.Model.by_name} names. *)
  l_max : int;  (** Scheme max level for compilation. *)
  dim : int;  (** Slot count of the synthetic input image. *)
  rate : float;  (** Base per-op injection probability, scaled per kind. *)
  budget : int;  (** Max injections per trial (negative = unlimited). *)
  max_attempts : int;  (** {!Recovery.config.max_attempts}. *)
  backoff_ms : float;  (** {!Recovery.config.backoff_ms}. *)
  max_backoff_ms : float;  (** {!Recovery.config.max_backoff_ms}. *)
  noise_floor_bits : float;  (** {!Recovery.config.noise_floor_bits}. *)
  no_retries : bool;
      (** Retry-less campaign: recovery runs with [max_attempts = 0]
          (overriding [max_attempts]) and fault plans inject only noise
          spikes, so every detected fault goes straight to the panic
          re-bootstrap repair path instead of rollback-retry — the
          coverage mode for that branch. *)
  from_trace : bool;
      (** Divergence-targeted campaign: the fault-free reference run is
          flight-recorded ({!Obs.Trace}), its per-node noise divergence
          against the static estimate ranked
          ({!Fhe_ir.Noise_check.trace_hotspots}), and every fault rule
          gets a node-restricted copy with boosted probability aimed at
          the hot spots.  Tracing is pure instrumentation, so the
          reference outputs (and the fault-off identity check) are
          unchanged. *)
}

val default : config
(** seed 0xC4A05, 25 trials, [tiny] model, l_max 9, dim 64, rate 0.02,
    budget 3, recovery defaults, retries enabled, untargeted. *)

type trial = {
  trial_index : int;
  injected : int;  (** Faults the injector fired during the trial. *)
  kinds : (string * int) list;  (** Injections by kind, sorted. *)
  completed : bool;  (** The run produced outputs (recovery held). *)
  recovered : bool;
      (** [completed] and the output deviation is within tolerance. *)
  max_abs_delta : float;  (** Worst |output - reference| ([nan] if failed). *)
  error : string option;  (** Structured cause name when the run failed. *)
  retries : int;
  panic_refreshes : int;
  recovery_ms_by_kind : (string * float) list;
  backoff_ms_total : float;  (** {!Recovery.stats.backoff_ms_total}. *)
  capped_backoffs : int;  (** {!Recovery.stats.capped_backoffs}. *)
}

type model_summary = {
  model : string;
  compile_manager : string;  (** Surviving planner tier. *)
  compile_fallbacks : (string * string) list;
  tolerance : float;  (** |delta| bound for "recovered". *)
  trials_run : int;
  faulted_trials : int;  (** Trials with at least one injection. *)
  injected_faults : int;
  completed_trials : int;
  recovered_trials : int;  (** Faulted trials that recovered. *)
  clean_identical : bool;
      (** Every injection-free trial matched the reference exactly. *)
  recovery_rate : float;  (** recovered / faulted; 1.0 when none faulted. *)
  faults_by_kind : (string * int) list;
  recovery_ms_by_kind : (string * float) list;
      (** Total simulated recovery latency attributed per fault kind. *)
  backoff_ms_total : float;  (** Summed over trials. *)
  capped_backoffs : int;  (** Summed over trials. *)
  total_retries : int;
  total_panic_refreshes : int;
  fault_targets : (int * float) list;
      (** Hot-spot [(node, traced/predicted ratio)] targets the campaign
          aimed at ([from_trace] only; empty otherwise). *)
  trials : trial list;
}

type report = {
  config_seed : int64;
  models : model_summary list;
  total_faulted : int;
  total_recovered : int;
  overall_recovery_rate : float;
  recovery_ms_by_kind : (string * float) list;
      (** Per-kind recovery latency merged across all models, sorted. *)
  backoff_ms_total : float;
  capped_backoffs : int;
}

val run : ?metrics:Obs.Metrics.t -> config -> report
(** Runs the campaign.  When [metrics] is given, folds campaign counters
    into it: [chaos_trials_total{model}], [chaos_faults_total{model,kind}],
    [chaos_faulted_total{model}], [chaos_recovered_total{model}],
    [chaos_retries_total{model}] — the faulted/recovered pair is what
    {!Obs.Health}'s recovery-rate rule reads.
    @raise Invalid_argument on an unknown model name. *)

val to_json : report -> Obs.Json.t
(** Deterministic serialisation: identical seeds and configs produce
    byte-identical strings via {!Obs.Json.to_string}.  Trial, model, and
    report levels each carry a ["recovery"] object rendered through
    {!Recovery.accounting_json} — the same schema serving campaign
    reports use. *)
