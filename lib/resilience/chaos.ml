type config = {
  seed : int64;
  trials : int;
  models : string list;
  l_max : int;
  dim : int;
  rate : float;
  budget : int;
  max_attempts : int;
  backoff_ms : float;
  max_backoff_ms : float;
  noise_floor_bits : float;
  no_retries : bool;
  from_trace : bool;
}

let default =
  {
    seed = 0xC4A05L;
    trials = 25;
    models = [ "tiny" ];
    l_max = 9;
    dim = 64;
    rate = 0.02;
    budget = 3;
    max_attempts = Recovery.default.Recovery.max_attempts;
    backoff_ms = Recovery.default.Recovery.backoff_ms;
    max_backoff_ms = Recovery.default.Recovery.max_backoff_ms;
    noise_floor_bits = Recovery.default.Recovery.noise_floor_bits;
    no_retries = false;
    from_trace = false;
  }

type trial = {
  trial_index : int;
  injected : int;
  kinds : (string * int) list;
  completed : bool;
  recovered : bool;
  max_abs_delta : float;
  error : string option;
  retries : int;
  panic_refreshes : int;
  recovery_ms_by_kind : (string * float) list;
  backoff_ms_total : float;
  capped_backoffs : int;
}

type model_summary = {
  model : string;
  compile_manager : string;
  compile_fallbacks : (string * string) list;
  tolerance : float;
  trials_run : int;
  faulted_trials : int;
  injected_faults : int;
  completed_trials : int;
  recovered_trials : int;
  clean_identical : bool;
  recovery_rate : float;
  faults_by_kind : (string * int) list;
  recovery_ms_by_kind : (string * float) list;
  backoff_ms_total : float;
  capped_backoffs : int;
  total_retries : int;
  total_panic_refreshes : int;
  fault_targets : (int * float) list;
  trials : trial list;
}

type report = {
  config_seed : int64;
  models : model_summary list;
  total_faulted : int;
  total_recovered : int;
  overall_recovery_rate : float;
  recovery_ms_by_kind : (string * float) list;
  backoff_ms_total : float;
  capped_backoffs : int;
}

(* Deterministic per-model salt so each model gets an independent fault
   stream regardless of its position in [config.models]. *)
let name_salt name =
  String.fold_left
    (fun a c -> Int64.add (Int64.mul a 131L) (Int64.of_int (Char.code c)))
    7L name

(* One fault plan per trial, every parameter drawn from the campaign
   stream: a retryable transient, a large noise spike (caught by the
   noise-floor validator), a bookkeeping scale drift (caught as
   structural divergence), and a large slot corruption (its quadrature
   noise bump drops the observed headroom below the floor).  Small silent
   slot corruptions are deliberately not generated — see ROADMAP. *)
let trial_plan rng ~rate ~budget ~no_retries ~targets =
  let u lo hi = Ckks.Prng.uniform rng ~lo ~hi in
  let seed = Ckks.Prng.int64 rng in
  let rules =
    if no_retries then
      (* Retry-less campaigns inject only noise spikes: with
         [max_attempts = 0] every other kind raises unretried, while a
         spike drives the boundary validator straight into the panic
         re-bootstrap repair path — the branch this mode exists to
         exercise at scale. *)
      [
        Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:(rate *. u 0.25 1.0)
          ~mag:(u 18.0 28.0);
      ]
    else
      [
        Ckks.Fault.rule Ckks.Fault.Transient ~prob:(rate *. u 0.5 1.5) ~mag:0.0;
        Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:(rate *. u 0.25 1.0) ~mag:(u 18.0 28.0);
        Ckks.Fault.rule Ckks.Fault.Scale_drift ~prob:(rate *. u 0.1 0.5) ~mag:3.0;
        Ckks.Fault.rule Ckks.Fault.Slot_corrupt ~prob:(rate *. u 0.25 1.0)
          ~mag:(u (-4.0) (-1.0));
      ]
  in
  let rules =
    if targets = [] then rules
    else
      (* Divergence-targeted campaign ([from_trace]): every rule gets a
         node-restricted copy with a 4x probability boost, placed first so
         it wins plan-order matching on hot-spot nodes.  The base rules
         stay behind it — the rest of the graph still sees background
         fire, just less of it. *)
      List.map
        (fun (r : Ckks.Fault.rule) ->
          {
            r with
            Ckks.Fault.nodes = targets;
            prob = Float.min 1.0 (4.0 *. r.Ckks.Fault.prob);
          })
        rules
      @ rules
  in
  { Ckks.Fault.seed; rules; budget }

let max_abs_delta reference outputs =
  List.fold_left2
    (fun acc (a : Ckks.Ciphertext.t) (b : Ckks.Ciphertext.t) ->
      let d = ref acc in
      Array.iteri
        (fun i v -> d := Float.max !d (Float.abs (v -. b.Ckks.Ciphertext.slots.(i))))
        a.Ckks.Ciphertext.slots;
      !d)
    0.0 reference outputs

let run_model cfg name =
  let model =
    match Nn.Model.by_name name with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Chaos.run: unknown model %S" name)
  in
  let lowered = Nn.Lowering.lower model in
  let prm =
    Ckks.Params.with_l_max
      { Ckks.Params.default with Ckks.Params.input_level = cfg.l_max }
      cfg.l_max
  in
  let managed, report = Resbm.Driver.compile_robust prm lowered.Nn.Lowering.dfg in
  let region_of =
    let attr = report.Resbm.Report.region_of in
    fun id -> if id >= 0 && id < Array.length attr then attr.(id) else -1
  in
  let image = (Nn.Dataset.images ~seed:cfg.seed ~dim:cfg.dim ~count:1 ()).(0) in
  let env =
    {
      Fhe_ir.Interp.inputs = [ (lowered.Nn.Lowering.input_name, image) ];
      consts = Nn.Lowering.resolver lowered ~dim:cfg.dim;
    }
  in
  (* Same evaluator seed for the reference and for every trial: an
     injection-free trial replays the exact reference noise stream, so its
     outputs must be bit-identical. *)
  let ev_seed = Int64.logxor cfg.seed 0x9E3779B97F4A7C15L in
  let ref_trace = if cfg.from_trace then Some (Obs.Trace.create ()) else None in
  let reference =
    match ref_trace with
    | None -> Fhe_ir.Interp.run (Ckks.Evaluator.create ~seed:ev_seed prm) managed env
    | Some tr ->
        (* Tracing is pure instrumentation, so the flight-recorded
           reference produces the same outputs bit-for-bit — the fault-off
           identity check below still holds under [from_trace]. *)
        Fhe_ir.Interp.run ~trace:tr ~region_of
          (Ckks.Evaluator.create ~seed:ev_seed prm)
          managed env
  in
  let ref_outputs = reference.Fhe_ir.Interp.outputs in
  let max_err =
    List.fold_left
      (fun a (c : Ckks.Ciphertext.t) -> Float.max a c.Ckks.Ciphertext.err)
      0.0 ref_outputs
  in
  let tolerance = Float.max 1e-6 (32.0 *. max_err) in
  let rcfg =
    {
      Recovery.max_attempts = (if cfg.no_retries then 0 else cfg.max_attempts);
      backoff_ms = cfg.backoff_ms;
      max_backoff_ms = cfg.max_backoff_ms;
      checkpoint_budget_bytes = None;
      noise_floor_bits = cfg.noise_floor_bits;
      noise_slack_bits = Recovery.default.Recovery.noise_slack_bits;
    }
  in
  (* Sharp static noise prediction — the lowering knows its constant
     amplitudes exactly, which widens the boundary validator's spike
     detection window well beyond the sound default. *)
  let noise =
    let const_magnitude name =
      Array.fold_left
        (fun acc v -> Float.max acc (Float.abs v))
        0.0
        (Nn.Lowering.resolver lowered ~dim:cfg.dim name)
    in
    Fhe_ir.Noise_check.analyse ~const_magnitude prm managed
  in
  let fault_targets =
    match ref_trace with
    | None -> []
    | Some tr -> Fhe_ir.Noise_check.trace_hotspots noise (Obs.Trace.op_events tr)
  in
  let targets = List.map fst fault_targets in
  if fault_targets <> [] then
    Obs.log_info ~event:"chaos.targets"
      ~fields:
        [
          ("model", Obs.Json.String name);
          ("targets", Obs.Json.List (List.map (fun n -> Obs.Json.Int n) targets));
        ]
      (Printf.sprintf "aiming fault injection at %d trace hot-spots"
         (List.length targets));
  let rng = Ckks.Prng.create (Int64.logxor cfg.seed (name_salt name)) in
  let trials =
    List.init cfg.trials (fun t ->
        let plan =
          trial_plan rng ~rate:cfg.rate ~budget:cfg.budget ~no_retries:cfg.no_retries
            ~targets
        in
        let injector = Ckks.Fault.create plan in
        let ev = Ckks.Evaluator.create ~seed:ev_seed prm in
        let outcome =
          match
            Ckks.Fault.with_faults injector (fun () ->
                Recovery.run ~config:rcfg ~region_of ~noise ev managed env)
          with
          | result, stats -> Ok (result, stats)
          | exception Ckks.Evaluator.Fhe_error e -> Error e
        in
        let injected = Ckks.Fault.injected injector in
        let kinds =
          let tbl = Hashtbl.create 4 in
          List.iter
            (fun (i : Ckks.Fault.injection) ->
              let k = Ckks.Fault.kind_name i.Ckks.Fault.inj_kind in
              Hashtbl.replace tbl k
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
            (Ckks.Fault.injections injector);
          List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *))
        in
        match outcome with
        | Ok (result, stats) ->
            let delta = max_abs_delta ref_outputs result.Fhe_ir.Interp.outputs in
            {
              trial_index = t;
              injected;
              kinds;
              completed = true;
              recovered = delta <= tolerance;
              max_abs_delta = delta;
              error = None;
              retries = stats.Recovery.retries;
              panic_refreshes = stats.Recovery.panic_refreshes;
              recovery_ms_by_kind = stats.Recovery.recovery_ms_by_kind;
              backoff_ms_total = stats.Recovery.backoff_ms_total;
              capped_backoffs = stats.Recovery.capped_backoffs;
            }
        | Error e ->
            {
              trial_index = t;
              injected;
              kinds;
              completed = false;
              recovered = false;
              max_abs_delta = Float.nan;
              error = Some (Ckks.Evaluator.cause_name e.Ckks.Evaluator.cause);
              retries = 0;
              panic_refreshes = 0;
              recovery_ms_by_kind = [];
              backoff_ms_total = 0.0;
              capped_backoffs = 0;
            })
  in
  let faulted = List.filter (fun t -> t.injected > 0) trials in
  let clean = List.filter (fun t -> t.injected = 0) trials in
  let recovered = List.filter (fun t -> t.recovered) faulted in
  let merge_counts get =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun t ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          (get t))
      trials;
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *))
  in
  let merge_ms get =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun t ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k
              (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k)))
          (get t))
      trials;
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *))
  in
  {
    model = name;
    compile_manager = report.Resbm.Report.manager;
    compile_fallbacks = report.Resbm.Report.fallbacks;
    tolerance;
    trials_run = List.length trials;
    faulted_trials = List.length faulted;
    injected_faults = List.fold_left (fun a t -> a + t.injected) 0 trials;
    completed_trials = List.length (List.filter (fun t -> t.completed) trials);
    recovered_trials = List.length recovered;
    clean_identical =
      List.for_all (fun t -> t.completed && t.max_abs_delta = 0.0) clean;
    recovery_rate =
      (if faulted = [] then 1.0
       else float_of_int (List.length recovered) /. float_of_int (List.length faulted));
    faults_by_kind = merge_counts (fun t -> t.kinds);
    recovery_ms_by_kind = merge_ms (fun t -> t.recovery_ms_by_kind);
    backoff_ms_total =
      List.fold_left (fun a (t : trial) -> a +. t.backoff_ms_total) 0.0 trials;
    capped_backoffs =
      List.fold_left (fun a (t : trial) -> a + t.capped_backoffs) 0 trials;
    total_retries = List.fold_left (fun a t -> a + t.retries) 0 trials;
    total_panic_refreshes = List.fold_left (fun a t -> a + t.panic_refreshes) 0 trials;
    fault_targets;
    trials;
  }

let run ?metrics cfg =
  let models = List.map (run_model cfg) cfg.models in
  let total_faulted = List.fold_left (fun a m -> a + m.faulted_trials) 0 models in
  let total_recovered = List.fold_left (fun a m -> a + m.recovered_trials) 0 models in
  (match metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun ms ->
          let labels = [ ("model", ms.model) ] in
          Obs.Metrics.incr m ~labels ~by:ms.trials_run "chaos_trials_total";
          Obs.Metrics.incr m ~labels ~by:ms.faulted_trials "chaos_faulted_total";
          Obs.Metrics.incr m ~labels ~by:ms.recovered_trials "chaos_recovered_total";
          Obs.Metrics.incr m ~labels ~by:ms.total_retries "chaos_retries_total";
          List.iter
            (fun (k, v) ->
              Obs.Metrics.incr m
                ~labels:(labels @ [ ("kind", k) ])
                ~by:v "chaos_faults_total")
            ms.faults_by_kind)
        models);
  let recovery_ms_by_kind =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun (m : model_summary) ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k
              (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k)))
          m.recovery_ms_by_kind)
      models;
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *))
  in
  {
    config_seed = cfg.seed;
    models;
    total_faulted;
    total_recovered;
    overall_recovery_rate =
      (if total_faulted = 0 then 1.0
       else float_of_int total_recovered /. float_of_int total_faulted);
    recovery_ms_by_kind;
    backoff_ms_total =
      List.fold_left (fun a (m : model_summary) -> a +. m.backoff_ms_total) 0.0 models;
    capped_backoffs =
      List.fold_left (fun a (m : model_summary) -> a + m.capped_backoffs) 0 models;
  }

let json_kv_counts kvs =
  Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) kvs)

let trial_to_json t =
  Obs.Json.Obj
    [
      ("trial", Obs.Json.Int t.trial_index);
      ("injected", Obs.Json.Int t.injected);
      ("kinds", json_kv_counts t.kinds);
      ("completed", Obs.Json.Bool t.completed);
      ("recovered", Obs.Json.Bool t.recovered);
      ( "max_abs_delta",
        if Float.is_nan t.max_abs_delta then Obs.Json.Null
        else Obs.Json.Float t.max_abs_delta );
      ( "error",
        match t.error with None -> Obs.Json.Null | Some e -> Obs.Json.String e );
      ("retries", Obs.Json.Int t.retries);
      ("panic_refreshes", Obs.Json.Int t.panic_refreshes);
      ( "recovery",
        Recovery.accounting_json ~recovery_ms_by_kind:t.recovery_ms_by_kind
          ~backoff_ms_total:t.backoff_ms_total ~capped_backoffs:t.capped_backoffs );
    ]

let model_to_json m =
  Obs.Json.Obj
    [
      ("model", Obs.Json.String m.model);
      ("compile_manager", Obs.Json.String m.compile_manager);
      ( "compile_fallbacks",
        Obs.Json.List
          (List.map
             (fun (tier, reason) ->
               Obs.Json.Obj
                 [
                   ("tier", Obs.Json.String tier);
                   ("reason", Obs.Json.String reason);
                 ])
             m.compile_fallbacks) );
      ("tolerance", Obs.Json.Float m.tolerance);
      ("trials_run", Obs.Json.Int m.trials_run);
      ("faulted_trials", Obs.Json.Int m.faulted_trials);
      ("injected_faults", Obs.Json.Int m.injected_faults);
      ("completed_trials", Obs.Json.Int m.completed_trials);
      ("recovered_trials", Obs.Json.Int m.recovered_trials);
      ("clean_identical", Obs.Json.Bool m.clean_identical);
      ("recovery_rate", Obs.Json.Float m.recovery_rate);
      ("faults_by_kind", json_kv_counts m.faults_by_kind);
      ( "recovery",
        Recovery.accounting_json ~recovery_ms_by_kind:m.recovery_ms_by_kind
          ~backoff_ms_total:m.backoff_ms_total ~capped_backoffs:m.capped_backoffs );
      ("total_retries", Obs.Json.Int m.total_retries);
      ("total_panic_refreshes", Obs.Json.Int m.total_panic_refreshes);
      ( "fault_targets",
        Obs.Json.List
          (List.map
             (fun (n, r) ->
               Obs.Json.Obj
                 [ ("node", Obs.Json.Int n); ("ratio", Obs.Json.Float r) ])
             m.fault_targets) );
      ("trials", Obs.Json.List (List.map trial_to_json m.trials));
    ]

let to_json r =
  Obs.Json.Obj
    [
      ("seed", Obs.Json.String (Int64.to_string r.config_seed));
      ("models", Obs.Json.List (List.map model_to_json r.models));
      ("total_faulted", Obs.Json.Int r.total_faulted);
      ("total_recovered", Obs.Json.Int r.total_recovered);
      ("overall_recovery_rate", Obs.Json.Float r.overall_recovery_rate);
      ( "recovery",
        Recovery.accounting_json ~recovery_ms_by_kind:r.recovery_ms_by_kind
          ~backoff_ms_total:r.backoff_ms_total ~capped_backoffs:r.capped_backoffs );
    ]
