module Session = Fhe_ir.Interp.Session

type config = {
  max_attempts : int;
  backoff_ms : float;
  max_backoff_ms : float;
  checkpoint_budget_bytes : float option;
  noise_floor_bits : float;
  noise_slack_bits : float;
}

let default =
  {
    max_attempts = 3;
    backoff_ms = 5.0;
    max_backoff_ms = 80.0;
    checkpoint_budget_bytes = None;
    noise_floor_bits = 6.0;
    noise_slack_bits = 12.0;
  }

type stats = {
  retries : int;
  rollbacks : int;
  panic_refreshes : int;
  checkpoints : int;
  evictions : int;
  checkpoint_bytes_peak : float;
  backoff_ms_total : float;
  capped_backoffs : int;
  recovery_ms_by_kind : (string * float) list;
  faults_by_kind : (string * int) list;
  injected_faults : int;
  held_checkpoints : int list;
}

let headroom = Obs.Trace.headroom_bits

(* One recovery-accounting schema shared by every report that aggregates
   supervised runs (chaos campaigns, the serving scheduler): per-kind
   simulated recovery latency, total backoff, and how many backoffs the
   [max_backoff_ms] cap clipped. *)
let accounting_json ~recovery_ms_by_kind ~backoff_ms_total ~capped_backoffs =
  Obs.Json.Obj
    [
      ( "recovery_ms_by_kind",
        Obs.Json.Obj
          (List.map (fun (k, v) -> (k, Obs.Json.Float v)) recovery_ms_by_kind) );
      ("backoff_ms_total", Obs.Json.Float backoff_ms_total);
      ("capped_backoffs", Obs.Json.Int capped_backoffs);
    ]

(* Injection progress of the ambient injector; 0 when none is installed.
   Recovery compares marks of this counter to tell fault-tainted execution
   spans from clean ones. *)
let injected_now () =
  match Ckks.Fault.current () with None -> 0 | Some f -> Ckks.Fault.injected f

(* The fault kind blamed for a retry: the most recent injection at or
   after [mark] when there is one, otherwise [fallback] (the structured
   error cause, or the boundary check that fired). *)
let blame ~mark ~fallback =
  match Ckks.Fault.current () with
  | None -> fallback
  | Some f ->
      let recent =
        List.filter (fun i -> i.Ckks.Fault.index >= mark) (Ckks.Fault.injections f)
      in
      let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl in
      (match last recent with
      | Some i -> Ckks.Fault.kind_name i.Ckks.Fault.inj_kind
      | None -> fallback)

let run ?(config = default) ?trace ?region_of ?noise ev g env =
  let prm = Ckks.Evaluator.params ev in
  let s = Session.create ?trace ?region_of ev g in
  let order = Session.order s in
  let n = Array.length order in
  let info = Session.static_info s in
  (* Default to the sound (uncapped) static estimate: it never predicts
     less noise than the run accumulates, so the noise validator cannot
     false-positive — a fault-free supervised run stays bit-identical to
     {!Fhe_ir.Interp.run}.  Callers with real magnitude knowledge (the
     chaos harness knows the lowering's constant amplitudes) pass a
     sharper [?noise] for a wider detection window. *)
  let predicted =
    (match noise with
    | Some report -> report
    | None -> Fhe_ir.Noise_check.analyse ~magnitude_cap:Float.infinity prm g)
      .Fhe_ir.Noise_check.per_node
  in
  let budget =
    match config.checkpoint_budget_bytes with
    | Some b -> b
    | None ->
        Float.max (2.0 *. (Fhe_ir.Liveness.analyse prm g).Fhe_ir.Liveness.peak_bytes) 1.0
  in
  (* Position [i] is a boundary when the next node starts a new region (or
     the run is complete).  With no [region_of] only 0 and [n] qualify. *)
  let boundary i =
    i = n || i = 0 || Session.region_of s order.(i - 1) <> Session.region_of s order.(i)
  in
  (* Lazy prefix sums of simulated node cost over the execution order:
     [exec_prefix.(i)] is the cost of executing [order.(0 .. i-1)], so the
     re-execution saved by a checkpoint at position [p] over its next-older
     retained neighbour at [q] is [exec_prefix.(p) -. exec_prefix.(q)].
     Lazy because fault-free runs under a generous budget never evict. *)
  let exec_prefix =
    lazy
      (let p = Array.make (n + 1) 0.0 in
       for i = 0 to n - 1 do
         p.(i + 1) <- p.(i) +. Fhe_ir.Latency.node_cost prm g info order.(i)
       done;
       p)
  in
  let retries = ref 0 and refreshes = ref 0 in
  let n_checkpoints = ref 0 and evictions = ref 0 in
  let bytes_peak = ref 0.0 and backoff_total = ref 0.0 in
  let capped = ref 0 in
  let recovery_ms : (string, float) Hashtbl.t = Hashtbl.create 7 in
  let start_mark = injected_now () in
  let fault_mark = ref start_mark in
  let attempts = ref 0 in
  let checkpoints = ref [] (* newest first *) in
  let pos = ref 0 in
  let instant name detail =
    match trace with
    | Some tr -> Obs.Trace.instant tr ~name ~detail ()
    | None -> ()
  in
  let take_checkpoint i =
    (match !checkpoints with
    | cp :: _ when Session.snapshot_at cp = i -> ()
    | _ ->
        checkpoints := Session.snapshot s ~at:i :: !checkpoints;
        incr n_checkpoints;
        let total =
          List.fold_left (fun a c -> a +. Session.snapshot_bytes c) 0.0 !checkpoints
        in
        bytes_peak := Float.max !bytes_peak total;
        (* Evict down to the budget by MINIMUM marginal re-execution
           value, never touching the newest (it is the rollback target).
           A checkpoint's value is the simulated latency of the span it
           saves re-executing: its position's prefix cost minus that of
           the next-older retained checkpoint (position 0 past the
           oldest).  Oldest-first eviction could discard the checkpoint
           guarding the most expensive suffix of the run; value-based
           eviction keeps it and sheds the cheapest span instead.  Ties
           evict the oldest, matching the previous policy. *)
        let rec evict_to_budget lst total =
          if total <= budget then lst
          else
            match lst with
            | [] | [ _ ] -> lst
            | newest :: rest ->
                let prefix = Lazy.force exec_prefix in
                let arr = Array.of_list rest (* newest first *) in
                let m = Array.length arr in
                let best = ref 0 and best_value = ref infinity in
                for j = 0 to m - 1 do
                  let p = Session.snapshot_at arr.(j) in
                  let q = if j + 1 < m then Session.snapshot_at arr.(j + 1) else 0 in
                  let value = prefix.(p) -. prefix.(q) in
                  if value <= !best_value then begin
                    best := j;
                    best_value := value
                  end
                done;
                incr evictions;
                let rest' = List.filteri (fun j _ -> j <> !best) rest in
                evict_to_budget (newest :: rest')
                  (total -. Session.snapshot_bytes arr.(!best))
        in
        checkpoints := evict_to_budget !checkpoints total);
    attempts := 0;
    fault_mark := injected_now ()
  in
  let do_rollback ~why =
    match !checkpoints with
    | [] -> assert false
    | cp :: _ ->
        let kind = blame ~mark:!fault_mark ~fallback:why in
        incr retries;
        let before = Session.latency_ms s in
        let resume = Session.rollback s cp in
        let wasted = before -. Session.latency_ms s in
        incr attempts;
        let raw = config.backoff_ms *. (2.0 ** float_of_int (!attempts - 1)) in
        let delay = Float.min raw config.max_backoff_ms in
        if delay < raw then begin
          incr capped;
          Obs.metric_incr "recovery_backoff_capped_total"
        end;
        Session.charge_ms s delay;
        backoff_total := !backoff_total +. delay;
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt recovery_ms kind) in
        Hashtbl.replace recovery_ms kind (prev +. wasted +. delay);
        instant "rollback"
          [
            ("to", Obs.Json.Int resume);
            ("attempt", Obs.Json.Int !attempts);
            ("blame", Obs.Json.String kind);
            ("backoff_ms", Obs.Json.Float delay);
          ];
        Obs.log_warn ~event:"recovery.rollback"
          ~fields:
            [
              ("to", Obs.Json.Int resume);
              ("attempt", Obs.Json.Int !attempts);
              ("blame", Obs.Json.String kind);
              ("backoff_ms", Obs.Json.Float delay);
            ]
          (Printf.sprintf "rolled back to node %d (%s)" resume kind);
        fault_mark := injected_now ();
        pos := resume
  in
  let handle_exec_error e =
    let faults_since = injected_now () > !fault_mark in
    let retryable = Ckks.Evaluator.transient e || faults_since in
    if retryable && !attempts < config.max_attempts then
      do_rollback ~why:(Ckks.Evaluator.cause_name e.Ckks.Evaluator.cause)
    else raise (Ckks.Evaluator.Fhe_error e)
  in
  let handle_boundary i =
    let live = Session.live_cts s ~at:i in
    (* Slot-integrity first: a corrupted slot far below the noise floor
       changes neither level, scale nor the bookkept noise estimate, so
       the structural and noise validators wave it through — only the
       checksum carried from construction time can expose it. *)
    let corrupt =
      List.filter
        (fun ((_ : int), (ct : Ckks.Ciphertext.t)) ->
          not (Ckks.Ciphertext.integrity_ok ct))
        live
    in
    let structural =
      List.filter
        (fun (id, (ct : Ckks.Ciphertext.t)) ->
          info.(id).Fhe_ir.Scale_check.is_ct
          && (ct.Ckks.Ciphertext.level <> info.(id).Fhe_ir.Scale_check.level
             || ct.Ckks.Ciphertext.scale_bits <> info.(id).Fhe_ir.Scale_check.scale_bits))
        live
    in
    let noisy =
      List.filter
        (fun (id, (ct : Ckks.Ciphertext.t)) ->
          id < Array.length predicted
          &&
          let actual = headroom ct.Ckks.Ciphertext.err in
          let pred = headroom predicted.(id).Fhe_ir.Noise_check.noise in
          (* Damaged iff the observed headroom fell below a floor the
             static analysis predicted safe — either the absolute floor,
             or the node's own predicted headroom minus the validated
             model slack (a spike can hurt precision long before the
             absolute floor is near). *)
          (actual < config.noise_floor_bits && pred >= config.noise_floor_bits)
          || pred -. actual > config.noise_slack_bits)
        live
    in
    let faults_since = injected_now () > !fault_mark in
    if corrupt <> [] then
      if faults_since && !attempts < config.max_attempts then
        do_rollback ~why:"slot_integrity"
      else
        let id, (ct : Ckks.Ciphertext.t) = List.hd corrupt in
        Ckks.Evaluator.raise_error
          (Ckks.Evaluator.error ~node:id ~level:ct.Ckks.Ciphertext.level
             ~scale_bits:ct.Ckks.Ciphertext.scale_bits ~noise:ct.Ckks.Ciphertext.err
             Ckks.Evaluator.State_divergence ~op:"recovery"
             (Printf.sprintf
                "recovery: node %d failed slot-integrity validation (checksum \
                 mismatch) beyond repair"
                id))
    else if structural <> [] then
      if faults_since && !attempts < config.max_attempts then
        do_rollback ~why:"state_divergence"
      else
        let id, (ct : Ckks.Ciphertext.t) = List.hd structural in
        Ckks.Evaluator.raise_error
          (Ckks.Evaluator.error ~node:id ~level:ct.Ckks.Ciphertext.level
             ~scale_bits:ct.Ckks.Ciphertext.scale_bits ~noise:ct.Ckks.Ciphertext.err
             Ckks.Evaluator.State_divergence ~op:"recovery"
             (Printf.sprintf
                "recovery: node %d diverged from the plan (level %d scale %d, expected \
                 level %d scale %d) beyond repair"
                id ct.Ckks.Ciphertext.level ct.Ckks.Ciphertext.scale_bits
                info.(id).Fhe_ir.Scale_check.level info.(id).Fhe_ir.Scale_check.scale_bits))
    else if noisy <> [] then
      if faults_since && !attempts < config.max_attempts then
        do_rollback ~why:"noise_floor"
      else begin
        (* Retries exhausted (or nothing to retry against): re-bootstrap
           the damaged ciphertexts in place and move on. *)
        List.iter
          (fun (id, (ct : Ckks.Ciphertext.t)) ->
            let before = headroom ct.Ckks.Ciphertext.err in
            let c' = Session.refresh s id in
            incr refreshes;
            instant "panic_refresh"
              [
                ("node", Obs.Json.Int id);
                ("headroom_before_bits", Obs.Json.Float before);
                ("headroom_after_bits", Obs.Json.Float (headroom c'.Ckks.Ciphertext.err));
              ];
            Obs.log_warn ~event:"recovery.panic_refresh"
              ~fields:
                [
                  ("node", Obs.Json.Int id);
                  ("headroom_before_bits", Obs.Json.Float before);
                  ( "headroom_after_bits",
                    Obs.Json.Float (headroom c'.Ckks.Ciphertext.err) );
                ]
              (Printf.sprintf "panic-refreshed node %d" id))
          noisy;
        if i < n then take_checkpoint i
      end
    else if i < n then take_checkpoint i
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Session.clear_ctx s)
      (fun () ->
        take_checkpoint 0;
        while !pos < n do
          let i = !pos in
          (match Session.exec s env order.(i) with
          | () -> pos := i + 1
          | exception Ckks.Evaluator.Fhe_error e -> handle_exec_error e);
          if !pos > i && boundary !pos then handle_boundary !pos
        done;
        (* Empty graphs still get their output validation pass. *)
        if n = 0 then handle_boundary 0;
        Session.finish s)
  in
  let faults, total_faults =
    match Ckks.Fault.current () with
    | None -> ([], 0)
    | Some f ->
        let mine =
          List.filter (fun i -> i.Ckks.Fault.index >= start_mark) (Ckks.Fault.injections f)
        in
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun i ->
            let k = Ckks.Fault.kind_name i.Ckks.Fault.inj_kind in
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          mine;
        ( List.sort compare
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *)),
          List.length mine )
  in
  ( result,
    {
      retries = !retries;
      rollbacks = !retries;
      panic_refreshes = !refreshes;
      checkpoints = !n_checkpoints;
      evictions = !evictions;
      checkpoint_bytes_peak = !bytes_peak;
      backoff_ms_total = !backoff_total;
      capped_backoffs = !capped;
      recovery_ms_by_kind =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) recovery_ms [] (* det-ok: sorted *));
      faults_by_kind = faults;
      injected_faults = total_faults;
      held_checkpoints =
        List.sort compare (List.map Session.snapshot_at !checkpoints);
    } )
