module Session = Fhe_ir.Interp.Session

type config = {
  max_attempts : int;
  backoff_ms : float;
  checkpoint_budget_bytes : float option;
  noise_floor_bits : float;
  noise_slack_bits : float;
}

let default =
  {
    max_attempts = 3;
    backoff_ms = 5.0;
    checkpoint_budget_bytes = None;
    noise_floor_bits = 6.0;
    noise_slack_bits = 12.0;
  }

type stats = {
  retries : int;
  rollbacks : int;
  panic_refreshes : int;
  checkpoints : int;
  evictions : int;
  checkpoint_bytes_peak : float;
  backoff_ms_total : float;
  recovery_ms_by_kind : (string * float) list;
  faults_by_kind : (string * int) list;
  injected_faults : int;
}

let headroom = Obs.Trace.headroom_bits

(* Injection progress of the ambient injector; 0 when none is installed.
   Recovery compares marks of this counter to tell fault-tainted execution
   spans from clean ones. *)
let injected_now () =
  match Ckks.Fault.current () with None -> 0 | Some f -> Ckks.Fault.injected f

(* The fault kind blamed for a retry: the most recent injection at or
   after [mark] when there is one, otherwise [fallback] (the structured
   error cause, or the boundary check that fired). *)
let blame ~mark ~fallback =
  match Ckks.Fault.current () with
  | None -> fallback
  | Some f ->
      let recent =
        List.filter (fun i -> i.Ckks.Fault.index >= mark) (Ckks.Fault.injections f)
      in
      let rec last = function [] -> None | [ x ] -> Some x | _ :: tl -> last tl in
      (match last recent with
      | Some i -> Ckks.Fault.kind_name i.Ckks.Fault.inj_kind
      | None -> fallback)

let run ?(config = default) ?trace ?region_of ?noise ev g env =
  let prm = Ckks.Evaluator.params ev in
  let s = Session.create ?trace ?region_of ev g in
  let order = Session.order s in
  let n = Array.length order in
  let info = Session.static_info s in
  (* Default to the sound (uncapped) static estimate: it never predicts
     less noise than the run accumulates, so the noise validator cannot
     false-positive — a fault-free supervised run stays bit-identical to
     {!Fhe_ir.Interp.run}.  Callers with real magnitude knowledge (the
     chaos harness knows the lowering's constant amplitudes) pass a
     sharper [?noise] for a wider detection window. *)
  let predicted =
    (match noise with
    | Some report -> report
    | None -> Fhe_ir.Noise_check.analyse ~magnitude_cap:Float.infinity prm g)
      .Fhe_ir.Noise_check.per_node
  in
  let budget =
    match config.checkpoint_budget_bytes with
    | Some b -> b
    | None ->
        Float.max (2.0 *. (Fhe_ir.Liveness.analyse prm g).Fhe_ir.Liveness.peak_bytes) 1.0
  in
  (* Position [i] is a boundary when the next node starts a new region (or
     the run is complete).  With no [region_of] only 0 and [n] qualify. *)
  let boundary i =
    i = n || i = 0 || Session.region_of s order.(i - 1) <> Session.region_of s order.(i)
  in
  let retries = ref 0 and refreshes = ref 0 in
  let n_checkpoints = ref 0 and evictions = ref 0 in
  let bytes_peak = ref 0.0 and backoff_total = ref 0.0 in
  let recovery_ms : (string, float) Hashtbl.t = Hashtbl.create 7 in
  let start_mark = injected_now () in
  let fault_mark = ref start_mark in
  let attempts = ref 0 in
  let checkpoints = ref [] (* newest first *) in
  let pos = ref 0 in
  let instant name detail =
    match trace with
    | Some tr -> Obs.Trace.instant tr ~name ~detail ()
    | None -> ()
  in
  let take_checkpoint i =
    (match !checkpoints with
    | cp :: _ when Session.snapshot_at cp = i -> ()
    | _ ->
        checkpoints := Session.snapshot s ~at:i :: !checkpoints;
        incr n_checkpoints;
        let total =
          List.fold_left (fun a c -> a +. Session.snapshot_bytes c) 0.0 !checkpoints
        in
        bytes_peak := Float.max !bytes_peak total;
        (* Evict oldest-first down to the budget, always keeping one. *)
        let rec drop_oldest lst total =
          if total <= budget then lst
          else
            match List.rev lst with
            | [] | [ _ ] -> lst
            | oldest :: newer_rev ->
                incr evictions;
                drop_oldest (List.rev newer_rev)
                  (total -. Session.snapshot_bytes oldest)
        in
        checkpoints := drop_oldest !checkpoints total);
    attempts := 0;
    fault_mark := injected_now ()
  in
  let do_rollback ~why =
    match !checkpoints with
    | [] -> assert false
    | cp :: _ ->
        let kind = blame ~mark:!fault_mark ~fallback:why in
        incr retries;
        let before = Session.latency_ms s in
        let resume = Session.rollback s cp in
        let wasted = before -. Session.latency_ms s in
        incr attempts;
        let delay = config.backoff_ms *. (2.0 ** float_of_int (!attempts - 1)) in
        Session.charge_ms s delay;
        backoff_total := !backoff_total +. delay;
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt recovery_ms kind) in
        Hashtbl.replace recovery_ms kind (prev +. wasted +. delay);
        instant "rollback"
          [
            ("to", Obs.Json.Int resume);
            ("attempt", Obs.Json.Int !attempts);
            ("blame", Obs.Json.String kind);
            ("backoff_ms", Obs.Json.Float delay);
          ];
        fault_mark := injected_now ();
        pos := resume
  in
  let handle_exec_error e =
    let faults_since = injected_now () > !fault_mark in
    let retryable = Ckks.Evaluator.transient e || faults_since in
    if retryable && !attempts < config.max_attempts then
      do_rollback ~why:(Ckks.Evaluator.cause_name e.Ckks.Evaluator.cause)
    else raise (Ckks.Evaluator.Fhe_error e)
  in
  let handle_boundary i =
    let live = Session.live_cts s ~at:i in
    let structural =
      List.filter
        (fun (id, (ct : Ckks.Ciphertext.t)) ->
          info.(id).Fhe_ir.Scale_check.is_ct
          && (ct.Ckks.Ciphertext.level <> info.(id).Fhe_ir.Scale_check.level
             || ct.Ckks.Ciphertext.scale_bits <> info.(id).Fhe_ir.Scale_check.scale_bits))
        live
    in
    let noisy =
      List.filter
        (fun (id, (ct : Ckks.Ciphertext.t)) ->
          id < Array.length predicted
          &&
          let actual = headroom ct.Ckks.Ciphertext.err in
          let pred = headroom predicted.(id).Fhe_ir.Noise_check.noise in
          (* Damaged iff the observed headroom fell below a floor the
             static analysis predicted safe — either the absolute floor,
             or the node's own predicted headroom minus the validated
             model slack (a spike can hurt precision long before the
             absolute floor is near). *)
          (actual < config.noise_floor_bits && pred >= config.noise_floor_bits)
          || pred -. actual > config.noise_slack_bits)
        live
    in
    let faults_since = injected_now () > !fault_mark in
    if structural <> [] then
      if faults_since && !attempts < config.max_attempts then
        do_rollback ~why:"state_divergence"
      else
        let id, (ct : Ckks.Ciphertext.t) = List.hd structural in
        Ckks.Evaluator.raise_error
          (Ckks.Evaluator.error ~node:id ~level:ct.Ckks.Ciphertext.level
             ~scale_bits:ct.Ckks.Ciphertext.scale_bits ~noise:ct.Ckks.Ciphertext.err
             Ckks.Evaluator.State_divergence ~op:"recovery"
             (Printf.sprintf
                "recovery: node %d diverged from the plan (level %d scale %d, expected \
                 level %d scale %d) beyond repair"
                id ct.Ckks.Ciphertext.level ct.Ckks.Ciphertext.scale_bits
                info.(id).Fhe_ir.Scale_check.level info.(id).Fhe_ir.Scale_check.scale_bits))
    else if noisy <> [] then
      if faults_since && !attempts < config.max_attempts then
        do_rollback ~why:"noise_floor"
      else begin
        (* Retries exhausted (or nothing to retry against): re-bootstrap
           the damaged ciphertexts in place and move on. *)
        List.iter
          (fun (id, (ct : Ckks.Ciphertext.t)) ->
            let before = headroom ct.Ckks.Ciphertext.err in
            let c' = Session.refresh s id in
            incr refreshes;
            instant "panic_refresh"
              [
                ("node", Obs.Json.Int id);
                ("headroom_before_bits", Obs.Json.Float before);
                ("headroom_after_bits", Obs.Json.Float (headroom c'.Ckks.Ciphertext.err));
              ])
          noisy;
        if i < n then take_checkpoint i
      end
    else if i < n then take_checkpoint i
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Session.clear_ctx s)
      (fun () ->
        take_checkpoint 0;
        while !pos < n do
          let i = !pos in
          (match Session.exec s env order.(i) with
          | () -> pos := i + 1
          | exception Ckks.Evaluator.Fhe_error e -> handle_exec_error e);
          if !pos > i && boundary !pos then handle_boundary !pos
        done;
        (* Empty graphs still get their output validation pass. *)
        if n = 0 then handle_boundary 0;
        Session.finish s)
  in
  let faults, total_faults =
    match Ckks.Fault.current () with
    | None -> ([], 0)
    | Some f ->
        let mine =
          List.filter (fun i -> i.Ckks.Fault.index >= start_mark) (Ckks.Fault.injections f)
        in
        let tbl = Hashtbl.create 4 in
        List.iter
          (fun i ->
            let k = Ckks.Fault.kind_name i.Ckks.Fault.inj_kind in
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          mine;
        ( List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []),
          List.length mine )
  in
  ( result,
    {
      retries = !retries;
      rollbacks = !retries;
      panic_refreshes = !refreshes;
      checkpoints = !n_checkpoints;
      evictions = !evictions;
      checkpoint_bytes_peak = !bytes_peak;
      backoff_ms_total = !backoff_total;
      recovery_ms_by_kind =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) recovery_ms []);
      faults_by_kind = faults;
      injected_faults = total_faults;
    } )
