(* Deterministic hashtable draining for planner code.

   [Hashtbl.iter]/[Hashtbl.fold] enumerate buckets in hash order: stable
   for a fixed population history, but a landmine once planning is
   domain-parallel (population order races) and for any content hash that
   folds over the result.  Planner code must drain hashtables through
   these sorted helpers; `Analysis.Lint.scan_planner_sources` flags raw
   iteration as a lint violation. *)

(* det-ok: this module is the one sanctioned home of raw hashtable folds. *)

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let iter_sorted f tbl = List.iter (fun (k, v) -> f k v) (sorted_bindings tbl)
