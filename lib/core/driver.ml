exception Verification_failed of string * Analysis.Diag.t list

let () =
  Printexc.register_printer (function
    | Verification_failed (pass, diags) ->
        Some
          (Format.asprintf "Verification_failed after %s:@,%a" pass
             (Format.pp_print_list Analysis.Diag.pp_verbose)
             diags)
    | _ -> None)

let compile ?(config = Btsmgr.resbm_config) ?(name = "ReSBM") ?(ms_opt = false)
    ?(verify_each = false) ?profile prm g =
  let profile = match profile with Some p -> p | None -> Obs.Profile.create () in
  Obs.with_profile profile @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let verify pass ?regions ?(scale = true) graph =
    if verify_each then begin
      let diags =
        Obs.span ("verify." ^ pass) (fun () ->
            Analysis.Verify.run ?regions ~scale prm graph)
      in
      if Analysis.Diag.has_errors diags then raise (Verification_failed (pass, diags))
    end
  in
  let regioned = Obs.span "region_build" (fun () -> Region.build g) in
  Obs.incr ~by:regioned.Region.count "driver.regions";
  (* The input graph is legal only after management: check structure and
     the region invariants here, the scale rules after the plan lands. *)
  verify "region_build" ~scale:false
    ~regions:
      {
        Analysis.Verify.region_of = regioned.Region.region_of;
        count = regioned.Region.count;
      }
    g;
  let plan = Obs.span "plan" (fun () -> Btsmgr.plan ~config regioned prm) in
  let outcome = Obs.span "apply" (fun () -> Plan.apply regioned prm plan) in
  let managed = outcome.Plan.dfg in
  verify "plan_apply" managed;
  let ms_opt_hoists =
    if ms_opt then Obs.span "ms_opt" (fun () -> Passes.Ms_opt.run prm managed) else 0
  in
  if ms_opt then begin
    Obs.incr ~by:ms_opt_hoists "ms_opt.hoists";
    verify "ms_opt" managed
  end;
  let latency_ms =
    Obs.span "latency" (fun () ->
        (* Legalisation's closing analysis is current unless ms_opt rewrote
           the graph afterwards. *)
        let info =
          if ms_opt_hoists > 0 then Fhe_ir.Scale_check.infer prm managed
          else outcome.Plan.final_info
        in
        Fhe_ir.Latency.total ~info prm managed)
  in
  let stats = Obs.span "stats" (fun () -> Fhe_ir.Stats.collect managed) in
  let compile_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let report =
    {
      Report.manager = name;
      compile_ms;
      latency_ms;
      stats;
      segments = plan.Btsmgr.segments;
      repair_bootstraps = outcome.Plan.repair_bootstraps;
      ms_opt_hoists;
      profile;
    }
  in
  (managed, report)
