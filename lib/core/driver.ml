let compile ?(config = Btsmgr.resbm_config) ?(name = "ReSBM") ?(ms_opt = false) ?profile
    prm g =
  let profile = match profile with Some p -> p | None -> Obs.Profile.create () in
  Obs.with_profile profile @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let regioned = Obs.span "region_build" (fun () -> Region.build g) in
  Obs.incr ~by:regioned.Region.count "driver.regions";
  let plan = Obs.span "plan" (fun () -> Btsmgr.plan ~config regioned prm) in
  let outcome = Obs.span "apply" (fun () -> Plan.apply regioned prm plan) in
  let managed = outcome.Plan.dfg in
  let ms_opt_hoists =
    if ms_opt then Obs.span "ms_opt" (fun () -> Passes.Ms_opt.run prm managed) else 0
  in
  if ms_opt then Obs.incr ~by:ms_opt_hoists "ms_opt.hoists";
  let latency_ms =
    Obs.span "latency" (fun () ->
        let info = Fhe_ir.Scale_check.infer prm managed in
        Fhe_ir.Latency.total ~info prm managed)
  in
  let stats = Obs.span "stats" (fun () -> Fhe_ir.Stats.collect managed) in
  let compile_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let report =
    {
      Report.manager = name;
      compile_ms;
      latency_ms;
      stats;
      segments = plan.Btsmgr.segments;
      repair_bootstraps = outcome.Plan.repair_bootstraps;
      ms_opt_hoists;
      profile;
    }
  in
  (managed, report)
