exception Verification_failed of string * Analysis.Diag.t list

let () =
  Printexc.register_printer (function
    | Verification_failed (pass, diags) ->
        Some
          (Format.asprintf "Verification_failed after %s:@,%a" pass
             (Format.pp_print_list Analysis.Diag.pp_verbose)
             diags)
    | _ -> None)

(* Process-wide compile sequence: attached to every log record emitted
   during one compile so interleaved compiles (parallel sweeps, warm
   benches) stay separable in a merged log stream. *)
let compile_seq = Atomic.make 0

let compile_cold ~config ~name ~ms_opt ~verify_each ~profile ~fuel ~segment_scan
    ~fallbacks ~jobs ~cache prm g =
  let profile = match profile with Some p -> p | None -> Obs.Profile.create () in
  Obs.with_profile profile @@ fun () ->
  Obs.with_log_ctx ~compile_id:(Atomic.fetch_and_add compile_seq 1) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (* A pipeline phase: timed span, pass context on every log record
     emitted inside, GC pressure published to the ambient metrics. *)
  let phase pname f = Obs.with_log_ctx ~pass:pname (fun () -> Obs.gc_span pname f) in
  Obs.log_info ~event:"compile.start"
    ~fields:
      [
        ("manager", Obs.Json.String name);
        ("jobs", Obs.Json.Int jobs);
        ("nodes", Obs.Json.Int (Fhe_ir.Dfg.node_count g));
      ]
    "compiling";
  let verify pass ?regions ?(scale = true) graph =
    if verify_each then begin
      let diags =
        Obs.span ("verify." ^ pass) (fun () ->
            Analysis.Verify.run ?regions ~scale prm graph)
      in
      if Analysis.Diag.has_errors diags then begin
        Obs.log_error ~event:"verify.failed"
          ~fields:[ ("pass", Obs.Json.String pass) ]
          (Printf.sprintf "per-pass verification failed after %s" pass);
        raise (Verification_failed (pass, diags))
      end
    end
  in
  let regioned = phase "region_build" (fun () -> Region.build g) in
  Obs.incr ~by:regioned.Region.count "driver.regions";
  (* The input graph is legal only after management: check structure and
     the region invariants here, the scale rules after the plan lands. *)
  verify "region_build" ~scale:false
    ~regions:
      {
        Analysis.Verify.region_of = regioned.Region.region_of;
        count = regioned.Region.count;
      }
    g;
  let plan =
    phase "plan" (fun () ->
        (* The incremental tier: thread the cache's region-solution memo,
           keyed by per-region content hashes, into the DP's evals. *)
        let memo =
          Option.map
            (fun c ->
              let hashes = Plan_cache.region_hashes prm regioned in
              (Plan_cache.memo c, fun r -> hashes.(r)))
            cache
        in
        Btsmgr.plan ~config ~fuel ~segment_scan ~jobs ?memo regioned prm)
  in
  let outcome = phase "apply" (fun () -> Plan.apply regioned prm plan) in
  let managed = outcome.Plan.dfg in
  verify "plan_apply" managed;
  let ms_opt_hoists =
    if ms_opt then phase "ms_opt" (fun () -> Passes.Ms_opt.run prm managed) else 0
  in
  if ms_opt then begin
    Obs.incr ~by:ms_opt_hoists "ms_opt.hoists";
    verify "ms_opt" managed
  end;
  let latency_ms =
    phase "latency" (fun () ->
        (* Legalisation's closing analysis is current unless ms_opt rewrote
           the graph afterwards. *)
        let info =
          if ms_opt_hoists > 0 then Fhe_ir.Scale_check.infer prm managed
          else outcome.Plan.final_info
        in
        Fhe_ir.Latency.total ~info prm managed)
  in
  let stats = phase "stats" (fun () -> Fhe_ir.Stats.collect managed) in
  (* Region attribution of the managed graph, for runtime traces and the
     trace summary: plan application copies the input graph (ids are
     preserved), so original nodes keep their partition assignment, and
     every inserted management node — created after its tail, hence with a
     larger id — inherits its tail's region in one increasing-id pass. *)
  let region_of =
    phase "region_attr" (fun () ->
        let attr = Array.make (Fhe_ir.Dfg.node_count managed) (-1) in
        let orig = Array.length regioned.Region.region_of in
        let live = Fhe_ir.Dfg.live_nodes managed in
        List.iter
          (fun (node : Fhe_ir.Dfg.node) ->
            if node.Fhe_ir.Dfg.id < orig then
              attr.(node.Fhe_ir.Dfg.id) <- regioned.Region.region_of.(node.Fhe_ir.Dfg.id))
          live;
        (* Inserted chains usually point backwards (a node is created after
           its tail), but retargeting can leave an inserted node reading a
           newer one, so iterate to a fixpoint; chains are short, two or
           three rounds settle everything. *)
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun (node : Fhe_ir.Dfg.node) ->
              if attr.(node.Fhe_ir.Dfg.id) < 0 then
                Array.iter
                  (fun a ->
                    if attr.(node.Fhe_ir.Dfg.id) < 0 && attr.(a) >= 0 then begin
                      attr.(node.Fhe_ir.Dfg.id) <- attr.(a);
                      changed := true
                    end)
                  node.Fhe_ir.Dfg.args)
            live
        done;
        attr)
  in
  let compile_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  (* Publish into the ambient aggregate-metrics registry, when one is
     installed: the whole compile profile (phase durations, pipeline
     counters) plus the headline planner outputs, labelled by manager so
     multi-manager sweeps keep their distributions apart. *)
  (match Obs.current_metrics () with
  | None -> ()
  | Some m ->
      let labels = [ ("manager", name) ] in
      ignore (Obs.Metrics.of_profile ~into:m profile);
      Obs.Metrics.observe m ~labels "compile_ms" compile_ms;
      Obs.Metrics.observe m ~labels "plan_latency_ms" latency_ms;
      Obs.Metrics.incr m ~labels ~by:stats.Fhe_ir.Stats.bootstrap_count
        "bootstraps_planned_total";
      Obs.Metrics.incr m ~labels ~by:stats.Fhe_ir.Stats.executed_rescales
        "rescales_planned_total";
      Obs.Metrics.incr m ~labels ~by:regioned.Region.count "regions_total");
  (* Harvest the min-cut optimality certificates the placements attached
     to their cuts, in region order: the checkable evidence behind the
     plan, preserved through the plan cache. *)
  let certificates =
    let acc = ref [] in
    let entry pass r (cut : Cut.t) c =
      {
        Report.ce_pass = pass;
        ce_region = r;
        ce_cert = c;
        ce_node_of = Array.copy cut.Cut.node_of;
      }
    in
    Array.iteri
      (fun r (a : Btsmgr.region_action) ->
        (match a.Btsmgr.smo_cut with
        | Some ({ Cut.cert = Some c; _ } as cut) ->
            acc := entry "smoplc" r cut c :: !acc
        | _ -> ());
        match a.Btsmgr.bts with
        | Some { Btsmgr.cut = Some ({ Cut.cert = Some c; _ } as cut); _ } ->
            acc := entry "btsplc" r cut c :: !acc
        | _ -> ())
      plan.Btsmgr.actions;
    List.rev !acc
  in
  let report =
    {
      Report.manager = name;
      compile_ms;
      latency_ms;
      stats;
      segments = plan.Btsmgr.segments;
      repair_bootstraps = outcome.Plan.repair_bootstraps;
      ms_opt_hoists;
      profile;
      region_count = regioned.Region.count;
      region_of;
      fallbacks;
      certificates;
    }
  in
  Obs.log_info ~event:"compile.done"
    ~fields:
      [
        ("manager", Obs.Json.String name);
        ("compile_ms", Obs.Json.Float compile_ms);
        ("latency_ms", Obs.Json.Float latency_ms);
        ("bootstraps", Obs.Json.Int stats.Fhe_ir.Stats.bootstrap_count);
        ("regions", Obs.Json.Int regioned.Region.count);
      ]
    "compiled";
  (managed, report)

(* --- Certification -------------------------------------------------------- *)

let certify_diags prm managed (report : Report.t) =
  Obs.span "certify" @@ fun () ->
  let cuts =
    Obs.span "certify.cuts" @@ fun () ->
    List.concat_map
      (fun (e : Report.certificate_entry) ->
        (* The cut value the placement recorded IS the certificate value
           (the cut is built from it), so the internal duality check is
           the value cross-check. *)
        Analysis.Certify.check ~pass:e.Report.ce_pass ~region:e.Report.ce_region
          e.Report.ce_cert)
      report.Report.certificates
  in
  (* One concrete scale pass feeds both abstract checks' cross-validation. *)
  let scales = Fhe_ir.Scale_check.infer prm managed in
  let levels =
    Obs.span "certify.levels" (fun () -> Analysis.Absint.check_levels ~scales prm managed)
  in
  let noise =
    Obs.span "certify.noise" (fun () -> Analysis.Absint.check_noise ~scales prm managed)
  in
  [ ("certify.cuts", cuts); ("certify.levels", levels); ("certify.noise", noise) ]

let run_certify prm managed (report : Report.t) =
  (* Re-enter the compile's profile so certification cost shows up as
     [certify.*] spans next to the phases it is measured against. *)
  Obs.with_profile report.Report.profile @@ fun () ->
  List.iter
    (fun (pass, diags) ->
      if Analysis.Diag.has_errors diags then begin
        Obs.metric_incr ~labels:[ ("pass", pass) ] "plan_refutations_total";
        Obs.log_error ~event:"certify.refuted"
          ~fields:
            [
              ("pass", Obs.Json.String pass);
              ("manager", Obs.Json.String report.Report.manager);
            ]
          (Printf.sprintf "certification refuted the %s evidence" pass);
        raise (Verification_failed (pass, diags))
      end)
    (certify_diags prm managed report)

let compile ?(config = Btsmgr.resbm_config) ?(name = "ReSBM") ?(ms_opt = false)
    ?(verify_each = false) ?(certify = false) ?profile ?(fuel = Fuel.unlimited)
    ?(segment_scan = `Full) ?(fallbacks = []) ?jobs ?cache prm g =
  let jobs = Par.resolve jobs in
  let certified (managed, report) =
    if certify then run_certify prm managed report;
    (managed, report)
  in
  match cache with
  | None ->
      certified
        (compile_cold ~config ~name ~ms_opt ~verify_each ~profile ~fuel ~segment_scan
           ~fallbacks ~jobs ~cache:None prm g)
  | Some c -> (
      let ckey = Plan_cache.key ~config ~name ~ms_opt ~segment_scan prm g in
      match Plan_cache.find c ckey with
      | Some (managed, report) -> (
          (* Warm hit: the stored plan and report are bit-identical to
             what the cold path would produce (fallbacks belong to this
             call, compile_ms was already replaced by the lookup time).
             Certification re-runs on the cached certificates — a corrupt
             or stale cache entry is refuted, not served. *)
          Obs.log_info ~event:"plan_cache.hit"
            ~fields:[ ("manager", Obs.Json.String name) ]
            "serving plan from cache";
          try certified (managed, { report with Report.fallbacks })
          with Verification_failed _ as e ->
            Obs.metric_incr "plan_cache_refutations_total";
            Obs.log_error ~event:"plan_cache.refuted"
              ~fields:[ ("manager", Obs.Json.String name) ]
              "cached plan failed re-certification";
            raise e)
      | None ->
          Obs.log_info ~event:"plan_cache.miss"
            ~fields:[ ("manager", Obs.Json.String name) ]
            "plan not cached, compiling cold";
          let managed, report =
            compile_cold ~config ~name ~ms_opt ~verify_each ~profile ~fuel
              ~segment_scan ~fallbacks ~jobs ~cache:(Some c) prm g
          in
          (* Certify before storing so a refuted plan never persists. *)
          let managed, report = certified (managed, report) in
          Plan_cache.store c ckey managed report;
          (managed, report))

(* --- Graceful degradation ------------------------------------------------- *)

(* The fuel-metered work a compile performed, read back from its profile:
   exactly the counters incremented alongside each [Fuel.spend] (DP
   segment evaluations and the two placement solvers' min-cuts). *)
let planner_steps profile =
  List.fold_left
    (fun acc -> function
      | ("btsmgr.segment_evals" | "smoplc.cuts" | "btsplc.cuts"), v -> acc + v
      | _ -> acc)
    0
    (Obs.Profile.counters profile)

let calibrated_fuel_steps ?percentile ?headroom reports =
  Fuel.calibrate ?percentile ?headroom
    (List.map (fun (r : Report.t) -> planner_steps r.Report.profile) reports)

type tier = {
  tier_name : string;
  tier_config : Btsmgr.config;
  tier_scan : [ `Full | `Adjacent ];
}

let waterline_config =
  {
    Btsmgr.min_level_bts = false;
    smo_mode = Region_eval.Smo_eva;
    bts_mode = Region_eval.Bts_region_end;
    price_transits = false;
  }

(* resbm → waterline → eager: from the paper's full min-cut DP down to
   EVA-style waterline rescaling with region-end bootstraps (no min-cut,
   still a full segment scan), down to the linear eager strategy (one
   region per segment, a full-elevation bootstrap at every boundary) —
   each tier strictly cheaper and more conservative than the previous. *)
let default_chain =
  [
    { tier_name = "resbm"; tier_config = Btsmgr.resbm_config; tier_scan = `Full };
    { tier_name = "waterline"; tier_config = waterline_config; tier_scan = `Full };
    { tier_name = "eager"; tier_config = waterline_config; tier_scan = `Adjacent };
  ]

(* Exceptions that mean "this tier failed" rather than "the input is
   broken": planning dead-ends, budget exhaustion, plan application bugs
   and per-stage verification failures all degrade; anything else (e.g.
   Invalid_argument from a malformed graph) escapes untouched. *)
let degrade_reason = function
  | Btsmgr.No_plan msg -> Some ("no plan: " ^ msg)
  | Plan.Apply_error msg -> Some ("apply error: " ^ msg)
  | Fuel.Exhausted stage -> Some ("fuel exhausted in " ^ stage)
  | Region_eval.Infeasible msg -> Some ("infeasible region: " ^ msg)
  | Verification_failed (pass, _) -> Some ("verification failed after " ^ pass)
  | _ -> None

let compile_robust ?(chain = default_chain) ?fuel_steps ?(ms_opt = false)
    ?(verify_each = false) ?profile ?jobs ?cache prm g =
  if chain = [] then invalid_arg "Driver.compile_robust: empty chain";
  let rec go fallbacks = function
    | [] -> assert false
    | [ tier ] ->
        (* Terminal tier: unlimited fuel — it must either plan or raise
           the real failure for the caller. *)
        compile ~config:tier.tier_config ~name:tier.tier_name ~ms_opt ~verify_each
          ?profile ~segment_scan:tier.tier_scan ~fallbacks:(List.rev fallbacks) ?jobs
          ?cache prm g
    | tier :: rest -> (
        let fuel =
          match fuel_steps with
          | None -> Fuel.unlimited
          | Some n -> Fuel.create ~stage:tier.tier_name n
        in
        match
          compile ~config:tier.tier_config ~name:tier.tier_name ~ms_opt ~verify_each
            ?profile ~fuel ~segment_scan:tier.tier_scan
            ~fallbacks:(List.rev fallbacks) ?jobs ?cache prm g
        with
        | result -> result
        | exception e -> (
            match degrade_reason e with
            | None -> raise e
            | Some reason ->
                Obs.metric_incr
                  ~labels:[ ("tier", tier.tier_name) ]
                  "planner_fallbacks_total";
                Obs.log_warn ~event:"planner.degraded"
                  ~fields:
                    [
                      ("tier", Obs.Json.String tier.tier_name);
                      ("reason", Obs.Json.String reason);
                    ]
                  (Printf.sprintf "tier %s failed (%s), degrading" tier.tier_name reason);
                Obs.trace_instant ~name:"planner_fallback"
                  ~detail:
                    [
                      ("tier", Obs.Json.String tier.tier_name);
                      ("reason", Obs.Json.String reason);
                    ]
                  ();
                go ((tier.tier_name, reason) :: fallbacks) rest))
  in
  go [] chain
