type manager = { name : string; config : Btsmgr.config; ms_opt : bool }

let resbm = { name = "ReSBM"; config = Btsmgr.resbm_config; ms_opt = false }

let resbm_max =
  {
    name = "ReSBM_max";
    config = { Btsmgr.resbm_config with min_level_bts = false };
    ms_opt = true;
  }

let resbm_eva =
  {
    name = "ReSBM_eva";
    config = { Btsmgr.resbm_config with smo_mode = Region_eval.Smo_eva };
    ms_opt = false;
  }

let resbm_pm =
  {
    name = "ReSBM_pm";
    config =
      {
        Btsmgr.resbm_config with
        min_level_bts = false;
        smo_mode = Region_eval.Smo_pars;
      };
    ms_opt = true;
  }

let fhelipe =
  {
    name = "Fhelipe";
    config =
      {
        min_level_bts = false;
        smo_mode = Region_eval.Smo_eva;
        bts_mode = Region_eval.Bts_region_end;
        price_transits = true;
      };
    ms_opt = true;
  }

let dacapo_like =
  {
    name = "DaCapo-like";
    config =
      {
        min_level_bts = false;
        smo_mode = Region_eval.Smo_pars;
        bts_mode = Region_eval.Bts_region_end;
        price_transits = true;
      };
    ms_opt = true;
  }

let all = [ resbm; resbm_eva; resbm_max; resbm_pm; fhelipe; dacapo_like ]
let figure6 = [ resbm; resbm_eva; resbm_max; resbm_pm; fhelipe ]

let by_name name =
  List.find_opt (fun m -> String.lowercase_ascii m.name = String.lowercase_ascii name) all

let compile ?verify_each ?certify ?jobs ?cache m prm g =
  Driver.compile ~config:m.config ~name:m.name ~ms_opt:m.ms_opt ?verify_each ?certify
    ?jobs ?cache prm g
