(** Plan application — [InsertScaleAndBootstrappingPlan] of Algorithm 1.

    Materialises a {!Btsmgr.plan} into a fresh DFG: rescale chains are
    inserted on the SMO cut edges (one shared rescale per cut tail),
    bootstraps on the bootstrap cut edges, program outputs are rewired,
    and two repair passes run afterwards:

    - {e level-deficit repair}: a ciphertext produced before a bootstrap
      point but consumed after it arrives below the consumer's planned
      level; such operands are bootstrapped up to exactly the planned
      level of the consuming join (the minimal-level principle applied to
      transiting values);
    - {e legalisation}: remaining downward mismatches are closed with
      shared modswitch chains ({!Fhe_ir.Legalize}).

    The result passes {!Fhe_ir.Scale_check.run}. *)

type outcome = {
  dfg : Fhe_ir.Dfg.t;  (** Fresh managed graph (the input is not mutated). *)
  repair_bootstraps : int;  (** Bootstraps added by level-deficit repair. *)
  final_info : Fhe_ir.Scale_check.info array;
      (** The closing {!Fhe_ir.Scale_check} analysis of [dfg] (from
          {!Fhe_ir.Legalize.run}) — reuse it instead of re-inferring. *)
}

exception Apply_error of string

val apply : Region.t -> Ckks.Params.t -> Btsmgr.plan -> outcome
(** @raise Apply_error when the managed graph still violates a scale or
    level constraint (a planner bug or an ill-structured input graph). *)
