(* A bounded Domain work-pool for planner fan-out.

   Tasks are indices [0, n); workers pull the next index from a shared
   atomic cursor and write results into a slot array, so results always
   come back in input order regardless of which domain ran what — the
   planner's bit-identity contract reduces to "each task is a pure
   function of its index", which the segment scans and region evals
   guarantee once the shared caches are lock-protected.

   Ambient observability: worker domains start with no ambient handles
   (Obs state is domain-local).  The pool re-installs the parent's
   metrics registry and log sink in every worker (both are
   mutex-protected, so fuel metering, cache counters and log records
   stay exact across domains) and gives each worker a private profile,
   merged into the parent's in worker order after the join — spans land
   deterministically even though the work interleaved.  Traces are not
   propagated: the planner does not trace, and the recorder is not safe
   to share.

   When an Obs.Rt collector is ambient, each worker additionally
   accounts for itself — tasks executed, busy vs idle wall time,
   spawn-to-first-task queue wait, per-task spans — and the pool records
   one Obs.Rt.pool entry after the join (plus par_* metrics when a
   registry is also ambient).  Without a collector the drain loop is the
   exact pre-telemetry code path: no clock reads per task. *)

let max_jobs = 64

(* Per-task spans kept per worker; beyond this the totals still
   accumulate but individual spans stop, bounding memory on huge scans. *)
let span_cap = 2048

let default_jobs () =
  match Sys.getenv_opt "RESBM_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_jobs
      | _ -> 1)

let resolve jobs =
  match jobs with Some n when n >= 1 -> min n max_jobs | Some _ -> 1 | None -> default_jobs ()

let tabulate ?(jobs = 1) ?(label = "par") n f =
  if n < 0 then invalid_arg "Par.tabulate: negative size";
  let workers = min jobs n in
  if workers <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let parent_metrics = Obs.current_metrics () in
    let parent_log = Obs.current_log () in
    let rt = Obs.current_rt () in
    let has_profile = Obs.current () <> None in
    let worker_profiles =
      Array.init workers (fun _ -> if has_profile then Some (Obs.Profile.create ()) else None)
    in
    (* Telemetry slots: each written only by its owning worker, read
       after the join. *)
    let telemetry = Array.make workers None in
    let pool_t0 = Unix.gettimeofday () in
    let body wi () =
      let rec drain () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          drain ()
        end
      in
      let timed_drain () =
        let domain = (Domain.self () :> int) in
        let now_ms () = 1000.0 *. (Unix.gettimeofday () -. pool_t0) in
        let spawned_ms = now_ms () in
        let tasks = ref 0 in
        let busy = ref 0.0 in
        let first_start = ref nan in
        let spans = ref [] in
        let rec go () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let start = now_ms () in
            (match f i with
            | v -> results.(i) <- Some v
            | exception e -> errors.(i) <- Some e);
            let dur = now_ms () -. start in
            incr tasks;
            busy := !busy +. dur;
            if Float.is_nan !first_start then first_start := start;
            if !tasks <= span_cap then
              spans := { Obs.Rt.t_index = i; t_start_ms = start; t_dur_ms = dur } :: !spans;
            go ()
          end
        in
        Fun.protect go ~finally:(fun () ->
            let total = now_ms () in
            let queue_wait =
              if Float.is_nan !first_start then total -. spawned_ms
              else !first_start -. spawned_ms
            in
            telemetry.(wi) <-
              Some
                {
                  Obs.Rt.w_id = wi;
                  w_domain = domain;
                  w_tasks = !tasks;
                  w_busy_ms = !busy;
                  w_idle_ms = Float.max 0.0 (total -. spawned_ms -. !busy);
                  w_queue_wait_ms = Float.max 0.0 queue_wait;
                  w_spans = List.rev !spans;
                })
      in
      let run = match rt with None -> drain | Some _ -> timed_drain in
      let with_parent_metrics g =
        match parent_metrics with Some m -> Obs.with_metrics m g | None -> g ()
      in
      let with_parent_log g =
        match parent_log with Some s -> Obs.with_log s g | None -> g ()
      in
      let with_worker_profile g =
        match worker_profiles.(wi) with Some p -> Obs.with_profile p g | None -> g ()
      in
      with_parent_metrics (fun () -> with_parent_log (fun () -> with_worker_profile run))
    in
    let domains = Array.init workers (fun wi -> Domain.spawn (body wi)) in
    Array.iter Domain.join domains;
    (match Obs.current () with
    | Some parent ->
        Array.iter
          (function Some wp -> Obs.Profile.merge ~into:parent wp | None -> ())
          worker_profiles
    | None -> ());
    (match rt with
    | Some r ->
        let wall_ms = 1000.0 *. (Unix.gettimeofday () -. pool_t0) in
        let ws = List.filter_map Fun.id (Array.to_list telemetry) in
        Obs.Rt.record_pool r ~label ~jobs:workers ~tasks:n ~wall_ms ws;
        (match parent_metrics with
        | Some m ->
            List.iter
              (fun (w : Obs.Rt.worker) ->
                let labels =
                  [ ("pool", label); ("worker", string_of_int w.Obs.Rt.w_id) ]
                in
                Obs.Metrics.incr ~by:w.Obs.Rt.w_tasks ~labels m "par_tasks_total";
                Obs.Metrics.observe ~labels m "par_busy_ms" w.Obs.Rt.w_busy_ms;
                Obs.Metrics.observe ~labels m "par_idle_ms" w.Obs.Rt.w_idle_ms;
                Obs.Metrics.observe ~labels m "par_queue_wait_ms" w.Obs.Rt.w_queue_wait_ms)
              ws
        | None -> ())
    | None -> ());
    (* Re-raise the smallest-index failure — the one a sequential run
       would have hit first. *)
    Array.iteri (fun i e -> match e with Some e -> ignore i; raise e | None -> ()) errors;
    Array.map
      (function Some v -> v | None -> invalid_arg "Par.tabulate: missing result")
      results
  end

let map ?jobs ?label f a = tabulate ?jobs ?label (Array.length a) (fun i -> f a.(i))
