(* A bounded Domain work-pool for planner fan-out.

   Tasks are indices [0, n); workers pull the next index from a shared
   atomic cursor and write results into a slot array, so results always
   come back in input order regardless of which domain ran what — the
   planner's bit-identity contract reduces to "each task is a pure
   function of its index", which the segment scans and region evals
   guarantee once the shared caches are lock-protected.

   Ambient observability: worker domains start with no ambient handles
   (Obs state is domain-local).  The pool re-installs the parent's
   metrics registry in every worker (the registry is mutex-protected, so
   fuel metering and cache counters stay exact across domains) and gives
   each worker a private profile, merged into the parent's in worker
   order after the join — spans land deterministically even though the
   work interleaved.  Traces are not propagated: the planner does not
   trace, and the recorder is not safe to share. *)

let max_jobs = 64

let default_jobs () =
  match Sys.getenv_opt "RESBM_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_jobs
      | _ -> 1)

let resolve jobs =
  match jobs with Some n when n >= 1 -> min n max_jobs | Some _ -> 1 | None -> default_jobs ()

let tabulate ?(jobs = 1) n f =
  if n < 0 then invalid_arg "Par.tabulate: negative size";
  let workers = min jobs n in
  if workers <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let parent_metrics = Obs.current_metrics () in
    let has_profile = Obs.current () <> None in
    let worker_profiles =
      Array.init workers (fun _ -> if has_profile then Some (Obs.Profile.create ()) else None)
    in
    let body wi () =
      let rec drain () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          drain ()
        end
      in
      let with_parent_metrics g =
        match parent_metrics with Some m -> Obs.with_metrics m g | None -> g ()
      in
      let with_worker_profile g =
        match worker_profiles.(wi) with Some p -> Obs.with_profile p g | None -> g ()
      in
      with_parent_metrics (fun () -> with_worker_profile drain)
    in
    let domains = Array.init workers (fun wi -> Domain.spawn (body wi)) in
    Array.iter Domain.join domains;
    (match Obs.current () with
    | Some parent ->
        Array.iter
          (function Some wp -> Obs.Profile.merge ~into:parent wp | None -> ())
          worker_profiles
    | None -> ());
    (* Re-raise the smallest-index failure — the one a sequential run
       would have hit first. *)
    Array.iteri (fun i e -> match e with Some e -> ignore i; raise e | None -> ()) errors;
    Array.map
      (function Some v -> v | None -> invalid_arg "Par.tabulate: missing result")
      results
  end

let map ?jobs f a = tabulate ?jobs (Array.length a) (fun i -> f a.(i))
