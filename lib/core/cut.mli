(** Cuts produced by the placement algorithms.

    A cut is a set of DFG edges on which an operation (rescale or
    bootstrap) will be inserted.  Edges are classified by which side of the
    region boundary they touch:

    - [Internal]: both endpoints are region members;
    - [Boundary_in]: the insertion point is on [head]'s incoming edges from
      outside the analysed subgraph (e.g. a bootstrap placed directly after
      the rescale that opens a source region);
    - [Boundary_out]: the insertion point is on [tail]'s edges to consumers
      outside the region (or on its way to the program outputs). *)

type edge =
  | Internal of { tail : int; head : int }
  | Boundary_in of { head : int }
  | Boundary_out of { tail : int }

type t = {
  edges : edge list;
  value : float;  (** Total weight of the minimum cut. *)
  sink_side : int list;  (** Region members strictly below the cut. *)
  cert : Graphlib.Maxflow.certificate option;
      (** Optimality certificate — the max-flow assignment whose value
          matches [value], exported by the min-cut solve and checkable
          with {!Analysis.Certify}.  [None] for cuts that are forced
          rather than optimised (EVA waterline, parallel-msc, region-end
          bootstraps), which have nothing to prove. *)
  node_of : int array;
      (** Flow-network node id -> DFG node id, for reading [cert] back in
          DFG terms ([-1] for the super source/sink; [[||]] for forced
          cuts, which carry no network).  BTSPLC's boundary-producer
          helper nodes map to the producing DFG node outside the
          subgraph. *)
}

val pp : Format.formatter -> t -> unit

val sink_side_mem : t -> int -> bool
