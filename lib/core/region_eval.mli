(** Latency evaluation of a region under a candidate management plan.

    Produces the [L] terms accumulated by Algorithm 2 (line 15): the sum
    of the region's operation latencies once a rescaling plan and, for a
    source region, a bootstrap plan have been applied.  Nodes above the
    rescale cut run at the entry level, nodes between the cuts at
    [entry - rescales], and nodes below the bootstrap cut at the bootstrap
    target.  Results are memoised — the paper's "caching min-cut results"
    — since the DP revisits regions once per candidate entry level.

    Placement {e modes} select how the cuts are chosen, which is how the
    paper's substitution variants and baselines are realised on one
    engine:

    - rescale: [Smo_min_cut] (SMOPLC), [Smo_eva] (EVA's waterline —
      rescale immediately after every multiplication unit), [Smo_pars]
      (PARS — lazy rescale at the region's end);
    - bootstrap: [Bts_min_cut] (BTSPLC), [Bts_region_end] (Fhelipe and
      DaCapo — bootstrap the live-out ciphertexts of the region). *)

type smo_mode = Smo_min_cut | Smo_eva | Smo_pars
type bts_mode = Bts_min_cut | Bts_region_end

type result = {
  latency_ms : float;
  smo_cut : Cut.t option;
  bts_cut : Cut.t option;
      (** [None] while [bts] was requested means the level-0 subgraph was
          empty and the bootstrap goes directly after the rescale chain. *)
  bts_subgraph : int list;  (** Level-0 members used for bootstrap planning. *)
}

type cache
(** Per-compile memo, keyed by region index and candidate plan.
    Lock-protected: safe to share across the worker domains of one
    parallel segment scan. *)

val create_cache : unit -> cache

(** Cross-compile memo keyed by region {e content} hash instead of region
    index, so entries survive model edits for all regions whose hash did
    not change — the incremental tier of the plan cache.  The hash is
    supplied by the caller per region (see {!Plan_cache.region_hashes}). *)
module Memo : sig
  type t

  val create : unit -> t

  val stats : t -> int * int
  (** [(hits, misses)] so far. *)

  val size : t -> int
  (** Number of memoised region solutions. *)
end

exception Infeasible of string

val eval :
  ?fuel:Fuel.t ->
  ?memo:Memo.t * (int -> int64) ->
  cache ->
  Region.t ->
  Ckks.Params.t ->
  smo_mode:smo_mode ->
  bts_mode:bts_mode ->
  region:int ->
  entry_level:int ->
  rescales:int ->
  bts:int option ->
  result
(** [fuel] (default unlimited) is spent by the min-cut solvers on a cache
    miss; hits are free, and fuel is not part of the memo key, so degraded
    compiles remain deterministic.  [memo] is an optional cross-compile
    memo plus the content hash of each region index; consulted after the
    per-compile [cache], populated on compute.
    @raise Infeasible when the region cannot run at the requested level
    (e.g. rescaling at level 0).
    @raise Fuel.Exhausted when the step budget runs out. *)
