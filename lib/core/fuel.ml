type t = { stage : string; mutable remaining : int }

exception Exhausted of string

let () =
  Printexc.register_printer (function
    | Exhausted stage -> Some (Printf.sprintf "Fuel.Exhausted(%s)" stage)
    | _ -> None)

let create ?(stage = "plan") remaining = { stage; remaining }
let unlimited = { stage = "unlimited"; remaining = -1 }
let remaining t = t.remaining
let stage t = t.stage

let spend ?(cost = 1) t =
  if t.remaining >= 0 then begin
    if t.remaining < cost then begin
      Obs.metric_incr ~labels:[ ("stage", t.stage) ] "planner_fuel_exhausted_total";
      raise (Exhausted t.stage)
    end;
    t.remaining <- t.remaining - cost;
    Obs.metric_incr ~by:cost ~labels:[ ("stage", t.stage) ] "planner_fuel_spent_total"
  end
