(* The budget lives in an [Atomic] so the same counter can be shared by
   worker domains during parallel planning: spends race on a CAS loop, so
   accounting stays exact (never over- or under-counted) and a failed
   spend consumes nothing — identical to the old single-domain semantics.
   Under parallelism the *order* of spends is nondeterministic, so a
   finite budget may exhaust at a different step than a sequential run;
   bit-identity contracts therefore only cover unlimited-fuel compiles. *)
type t = { stage : string; capacity : int; used : int Atomic.t }

exception Exhausted of string

let () =
  Printexc.register_printer (function
    | Exhausted stage -> Some (Printf.sprintf "Fuel.Exhausted(%s)" stage)
    | _ -> None)

let create ?(stage = "plan") capacity = { stage; capacity; used = Atomic.make 0 }
let unlimited = { stage = "unlimited"; capacity = -1; used = Atomic.make 0 }

let remaining t =
  if t.capacity < 0 then -1 else max 0 (t.capacity - Atomic.get t.used)

let stage t = t.stage

(* Nearest-rank percentile over observed step counts, padded by a
   multiplicative headroom: the calibrated budget admits the chosen
   fraction of historical compiles outright and survives modest growth
   before degrading.  Deliberately integer-in, integer-out so calibrated
   budgets stay deterministic across platforms. *)
let calibrate ?(percentile = 0.95) ?(headroom = 1.5) observations =
  if observations = [] then invalid_arg "Fuel.calibrate: no observations";
  if not (percentile >= 0.0 && percentile <= 1.0) then
    invalid_arg "Fuel.calibrate: percentile outside [0, 1]";
  if headroom < 1.0 then invalid_arg "Fuel.calibrate: headroom below 1";
  let arr = Array.of_list (List.sort compare observations) in
  let n = Array.length arr in
  let rank = int_of_float (ceil (percentile *. float_of_int n)) in
  let p = arr.(max 0 (min (n - 1) (rank - 1))) in
  int_of_float (ceil (float_of_int (max p 0) *. headroom))

let spend ?(cost = 1) t =
  if t.capacity >= 0 then begin
    let rec take () =
      let u = Atomic.get t.used in
      if u + cost > t.capacity then begin
        Obs.metric_incr ~labels:[ ("stage", t.stage) ] "planner_fuel_exhausted_total";
        Obs.log_warn ~event:"fuel.exhausted"
          ~fields:
            [
              ("stage", Obs.Json.String t.stage);
              ("capacity", Obs.Json.Int t.capacity);
            ]
          (Printf.sprintf "planner fuel exhausted in %s" t.stage);
        raise (Exhausted t.stage)
      end;
      if not (Atomic.compare_and_set t.used u (u + cost)) then take ()
    in
    take ();
    Obs.metric_incr ~by:cost ~labels:[ ("stage", t.stage) ] "planner_fuel_spent_total"
  end
