(** The substitution-analysis variants of Section 5 and the two baseline
    configurations, all expressed over the same region engine:

    - [resbm]: minimal-level bootstrapping, SCALEMGR + SMOPLC rescaling,
      BTSPLC bootstrap placement;
    - [resbm_max]: like ReSBM but every bootstrap is raised to [l_max]
      (Fhelipe/DaCapo elevation policy);
    - [resbm_eva]: ReSBM's bootstrapping with EVA's waterline rescaling
      in place of SCALEMGR/SMOPLC;
    - [resbm_pm]: [resbm_max] with PARS's lazy rescaling (the DaCapo-style
      configuration);
    - [fhelipe]: max-level bootstrapping at the region live-outs (depth
      based dynamic programming) with EVA rescaling — the paper's own
      re-implementation of Fhelipe used for RQ2;
    - [dacapo_like]: max-level bootstrapping at the region live-outs with
      PARS rescaling (compile-time shape of DaCapo). *)

type manager = {
  name : string;
  config : Btsmgr.config;
  ms_opt : bool;  (** Post-pass modswitch hoisting (the max-level managers). *)
}

val resbm : manager
val resbm_max : manager
val resbm_eva : manager
val resbm_pm : manager
val fhelipe : manager
val dacapo_like : manager

val all : manager list
(** The five managers of Figure 6 plus [dacapo_like]. *)

val figure6 : manager list
(** [resbm; resbm_eva; resbm_max; resbm_pm; fhelipe] — the Figure 6 bars. *)

val by_name : string -> manager option

val compile :
  ?verify_each:bool ->
  ?certify:bool ->
  ?jobs:int ->
  ?cache:Plan_cache.t ->
  manager ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  Fhe_ir.Dfg.t * Report.t
(** [verify_each], [certify], [jobs] and [cache] are forwarded to
    {!Driver.compile}. *)
