(** SMOPLC — optimal intra-region SMO placement via min-cut (Algorithm 4).

    Given a region whose multiplications execute at [level], SMOPLC finds
    where to insert the rescale so that the region's total latency is
    minimal.  Every region edge [(n, m)] is weighted with the rescale cost
    after [n] plus the cumulative latency increase of running [n] and its
    in-region predecessors at [level] instead of [level - 1], divided by
    [n]'s out-degree (one shared rescale node serves all of [n]'s cut
    successors).  A super-source feeds the region's entry nodes (the
    multiplications) with infinite capacity; live-out producers connect to
    a super-sink with finite capacity so that rescaling at the region's
    end remains a candidate.  Infinite reverse arcs force the source side
    to be closed under predecessors, guaranteeing that every path from a
    multiplication to a live-out crosses the cut exactly once.

    Edges from [Mul_cc] to its mandatory [Relin] are uncuttable. *)

val run : ?fuel:Fuel.t -> Region.t -> Ckks.Params.t -> region:int -> level:int -> Cut.t
(** Each call spends one unit of [fuel] (default {!Fuel.unlimited}).
    @raise Invalid_argument on an empty region or [level < 1].
    @raise Fuel.Exhausted when the step budget runs out. *)

val region_latency_terms :
  Region.t -> Ckks.Params.t -> region:int -> level:int -> (int * float) list
(** Per-node latency (node id, ms) of the region at a uniform [level] —
    exposed for tests and the examples that reproduce Figure 4. *)
