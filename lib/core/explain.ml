(* Plan explainability: where the predicted milliseconds go, why each
   bootstrap landed where it did, and a renumbering-stable structural
   digest two plans can be diffed by.

   The graph-aware producers live here; all rendering (waterfall folding,
   JSON diffing, Perfetto overlays) is delegated to [Obs.Explain] so the
   same presentation serves future subsystems. *)

open Fhe_ir

(* --- canonical content labels -------------------------------------------- *)

(* FNV-1a, as in [Plan_cache] — but over the node's *content* rather than
   its id: label(n) = H(kind, freq, ordered labels of its arguments).
   Two nodes get the same label iff their entire upstream computations are
   structurally identical, so labels are invariant under node renumbering
   — the property every digest key below inherits.  ([Plan_cache]'s
   region hashes deliberately hash raw ids for speed; these labels are
   the slow-but-stable counterpart for cross-plan comparison.) *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical v (i * 8)))
  done;
  !h

let mix_int h i = mix_int64 h (Int64.of_int i)

let mix_string h s =
  let h = ref (mix_int h (String.length s)) in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h

let kind_key (k : Op.kind) =
  match k with
  | Op.Input { name; level; scale_bits } ->
      Printf.sprintf "input:%s:%s:%s" name
        (match level with Some l -> string_of_int l | None -> "-")
        (match scale_bits with Some s -> string_of_int s | None -> "-")
  | Op.Const { name } -> "const:" ^ name
  | Op.Rotate k -> Printf.sprintf "rotate:%d" k
  | Op.Bootstrap t -> Printf.sprintf "bootstrap:%d" t
  | k -> Op.name k

let labels g =
  let labels = Array.make (Dfg.node_count g) 0L in
  List.iter
    (fun id ->
      let n = Dfg.node g id in
      let h = mix_string fnv_offset (kind_key n.Dfg.kind) in
      let h = mix_int h n.Dfg.freq in
      let h =
        Array.fold_left (fun h a -> mix_int64 h labels.(a)) h n.Dfg.args
      in
      labels.(id) <- h)
    (Dfg.topo_order g);
  labels

let hex l = Printf.sprintf "%016Lx" l

(* --- cost attribution ----------------------------------------------------- *)

let share_of info prm g kinds =
  List.fold_left
    (fun acc (n : Dfg.node) ->
      if List.exists (fun k -> k (n.Dfg.kind)) kinds then
        acc +. Latency.node_cost prm g info n.Dfg.id
      else acc)
    0.0 (Dfg.live_nodes g)

(* Waterfall buckets are coarse op kinds: attributing each rotation offset
   or bootstrap target its own bucket would shatter the hierarchy into
   hundreds of one-node rows. *)
let bucket_name (k : Op.kind) =
  match k with
  | Op.Input _ -> "input"
  | Op.Const _ -> "const"
  | Op.Rotate _ -> "rotate"
  | Op.Bootstrap _ -> "bootstrap"
  | k -> Op.name k

let attribution ?top prm ~(managed : Dfg.t) (report : Report.t) =
  let info = Scale_check.infer prm managed in
  let region_of id =
    if id < Array.length report.Report.region_of then report.Report.region_of.(id)
    else -1
  in
  let rows =
    List.filter_map
      (fun (n : Dfg.node) ->
        let cost = Latency.node_cost prm managed info n.Dfg.id in
        if cost = 0.0 then None
        else
          let r = region_of n.Dfg.id in
          Some
            {
              Obs.Explain.group =
                (if r < 0 then "(unattributed)" else Printf.sprintf "region %03d" r);
              bucket = bucket_name n.Dfg.kind;
              label = Printf.sprintf "%%%d %s" n.Dfg.id (Op.name n.Dfg.kind);
              cost;
            })
      (Dfg.live_nodes managed)
  in
  let is k n = n = k in
  let shares =
    [
      ("bootstrap", share_of info prm managed [ (function Op.Bootstrap _ -> true | _ -> false) ]);
      ("rescale", share_of info prm managed [ is Op.Rescale ]);
      ("modswitch", share_of info prm managed [ is Op.Modswitch ]);
    ]
  in
  let total = Latency.total ~info prm managed in
  Obs.Explain.waterfall ?top ~shares ~total rows

(* --- bootstrap rationale --------------------------------------------------- *)

type counterfactual = {
  cf_value : float;  (* next-best cut value; [infinity] = no alternative *)
  cf_delta : float;  (* cf_value - cut value: the cost of moving this bootstrap *)
  cf_anchors : int list;  (* next-best placement: insert-after nodes *)
}

type rationale = {
  ra_bootstrap : int;  (* managed-graph node id *)
  ra_anchor : int;  (* original-graph node the bootstrap hangs off; -1 unknown *)
  ra_region : int;
  ra_target : int;
  ra_cost_ms : float;
  ra_cut_value : float option;  (* the region's certified min-cut value *)
  ra_saturated : (int * int) list;  (* saturated crossing arcs, DFG ids (-1 = s/t) *)
  ra_counterfactual : counterfactual option;
  ra_note : string;
}

(* The insertion point recorded by [Plan.apply] is always reachable from a
   bootstrap by following first arguments through the management nodes it
   stacked on top (rescale tips, earlier bootstraps): the first id below
   the original node count is the cut tail / boundary producer the
   certificate talks about. *)
let anchor_of managed ~orig_nodes id =
  let rec go id fuel =
    if id < orig_nodes || fuel = 0 then id
    else
      let n = Dfg.node managed id in
      if Array.length n.Dfg.args = 0 then id else go n.Dfg.args.(0) (fuel - 1)
  in
  go id (Dfg.node_count managed)

let crossing_arcs (cert : Graphlib.Maxflow.certificate) =
  Array.to_list cert.Graphlib.Maxflow.cert_arcs
  |> List.filter (fun (a : Graphlib.Maxflow.flow_arc) ->
         cert.Graphlib.Maxflow.cert_source_side.(a.Graphlib.Maxflow.fa_src)
         && not cert.Graphlib.Maxflow.cert_source_side.(a.Graphlib.Maxflow.fa_dst))

let node_of_flow (e : Report.certificate_entry) i =
  if i >= 0 && i < Array.length e.Report.ce_node_of then e.Report.ce_node_of.(i)
  else -1

(* The DFG node a crossing arc pins a bootstrap after: the arc tail for
   internal and live-out arcs, the boundary producer for source arcs. *)
let arc_anchor (e : Report.certificate_entry) (a : Graphlib.Maxflow.flow_arc) =
  if a.Graphlib.Maxflow.fa_src = e.Report.ce_cert.Graphlib.Maxflow.cert_source then
    node_of_flow e a.Graphlib.Maxflow.fa_dst
  else node_of_flow e a.Graphlib.Maxflow.fa_src

let counterfactual (e : Report.certificate_entry) ~anchor =
  let cert = e.Report.ce_cert in
  let mine = List.filter (fun a -> arc_anchor e a = anchor) (crossing_arcs cert) in
  if mine = [] then None
  else begin
    let forbid =
      List.map
        (fun (a : Graphlib.Maxflow.flow_arc) ->
          (a.Graphlib.Maxflow.fa_src, a.Graphlib.Maxflow.fa_dst))
        mine
    in
    let net = Graphlib.Maxflow.of_certificate ~forbid cert in
    let cut =
      Graphlib.Maxflow.min_cut net ~source:cert.Graphlib.Maxflow.cert_source
        ~sink:cert.Graphlib.Maxflow.cert_sink
    in
    let cf_anchors =
      List.filter_map
        (fun (u, v) ->
          let a =
            if u = cert.Graphlib.Maxflow.cert_source then node_of_flow e v
            else node_of_flow e u
          in
          if a < 0 || a = anchor then None else Some a)
        cut.Graphlib.Maxflow.edges
      |> List.sort_uniq compare
    in
    Some
      {
        cf_value = cut.Graphlib.Maxflow.value;
        cf_delta = cut.Graphlib.Maxflow.value -. cert.Graphlib.Maxflow.cert_value;
        cf_anchors;
      }
  end

let rationales prm ~orig_nodes ~(managed : Dfg.t) (report : Report.t) =
  let info = Scale_check.infer prm managed in
  (* anchor -> owning certificate entry, first region wins.  BTSPLC
     certificates take precedence; a bootstrap whose anchor only appears
     in an SMOPLC cut rides a rescale tip (the bts cut was degenerate), so
     the rescale min-cut is the evidence pinning it there. *)
  let by_anchor = Hashtbl.create 16 in
  List.iter
    (fun pass ->
      List.iter
        (fun e ->
          if e.Report.ce_pass = pass then
            List.iter
              (fun a ->
                let anchor = arc_anchor e a in
                if anchor >= 0 && not (Hashtbl.mem by_anchor anchor) then
                  Hashtbl.add by_anchor anchor e)
              (crossing_arcs e.Report.ce_cert))
        report.Report.certificates)
    [ "btsplc"; "smoplc" ];
  List.filter_map
    (fun (n : Dfg.node) ->
      match n.Dfg.kind with
      | Op.Bootstrap target ->
          let id = n.Dfg.id in
          let anchor =
            if Array.length n.Dfg.args > 0 then
              anchor_of managed ~orig_nodes n.Dfg.args.(0)
            else -1
          in
          let region_of_node =
            if id < Array.length report.Report.region_of then
              report.Report.region_of.(id)
            else -1
          in
          let cost = Latency.node_cost prm managed info id in
          let base =
            {
              ra_bootstrap = id;
              ra_anchor = anchor;
              ra_region = region_of_node;
              ra_target = target;
              ra_cost_ms = cost;
              ra_cut_value = None;
              ra_saturated = [];
              ra_counterfactual = None;
              ra_note = "";
            }
          in
          let r =
            match Hashtbl.find_opt by_anchor anchor with
            | Some e ->
                let saturated =
                  List.filter_map
                    (fun (a : Graphlib.Maxflow.flow_arc) ->
                      if arc_anchor e a = anchor then
                        Some
                          ( node_of_flow e a.Graphlib.Maxflow.fa_src,
                            node_of_flow e a.Graphlib.Maxflow.fa_dst )
                      else None)
                    (crossing_arcs e.Report.ce_cert)
                in
                {
                  base with
                  ra_region = e.Report.ce_region;
                  ra_cut_value = Some e.Report.ce_cert.Graphlib.Maxflow.cert_value;
                  ra_saturated = saturated;
                  ra_counterfactual = counterfactual e ~anchor;
                  ra_note =
                    (if e.Report.ce_pass = "btsplc" then "min-cut"
                     else "rides rescale min-cut");
                }
            | None ->
                {
                  base with
                  ra_note =
                    (if anchor < 0 then "synthetic (no original anchor)"
                     else "forced (region-end or level repair; no certificate)");
                }
          in
          Some r
      | _ -> None)
    (Dfg.live_nodes managed)

(* --- structural plan digest ------------------------------------------------ *)

(* Floats in the digest are planner outputs whose last few bits depend on
   summation order (which node renumbering permutes); the digest compares
   plans, not float pipelines, so round to a microsecond. *)
let round6 v =
  if Float.is_finite v then Float.round (v *. 1e6) /. 1e6 else v

let digest prm ~(managed : Dfg.t) (report : Report.t) =
  let open Obs.Json in
  let info = Scale_check.infer prm managed in
  let lbl = labels managed in
  let live = Dfg.live_nodes managed in
  let hist add ns =
    let t = Hashtbl.create 16 in
    List.iter
      (fun n ->
        let k = add n in
        Hashtbl.replace t k (1 + Option.value (Hashtbl.find_opt t k) ~default:0))
      ns;
    Obj
      (List.sort compare (Hashtbl.fold (fun k c acc -> (string_of_int k, Int c) :: acc) t []))
  in
  let region_of id =
    if id < Array.length report.Report.region_of then report.Report.region_of.(id)
    else -1
  in
  (* cut values by region index, for attachment to content-keyed regions *)
  let cut_values r =
    List.filter_map
      (fun e ->
        if e.Report.ce_region = r then
          Some
            ( e.Report.ce_pass ^ "_cut_ms",
              Float (round6 e.Report.ce_cert.Graphlib.Maxflow.cert_value) )
        else None)
      report.Report.certificates
  in
  let region_ids =
    List.sort_uniq compare (List.map (fun (n : Dfg.node) -> region_of n.Dfg.id) live)
  in
  let region_objs =
    List.map
      (fun r ->
        let members =
          List.filter (fun (n : Dfg.node) -> region_of n.Dfg.id = r) live
        in
        let member_labels =
          List.sort compare (List.map (fun (n : Dfg.node) -> lbl.(n.Dfg.id)) members)
        in
        let signature = hex (List.fold_left mix_int64 fnv_offset member_labels) in
        let of_kind p = List.filter (fun (n : Dfg.node) -> p n.Dfg.kind) members in
        let sorted_labels ns =
          List.sort compare (List.map (fun (n : Dfg.node) -> hex lbl.(n.Dfg.id)) ns)
        in
        let obj =
          Obj
            ([
               ("members", Int (List.length members));
               ( "level_hist",
                 hist
                   (fun (n : Dfg.node) -> info.(n.Dfg.id).Scale_check.level)
                   (List.filter
                      (fun (n : Dfg.node) -> info.(n.Dfg.id).Scale_check.is_ct)
                      members) );
               ( "scale_hist",
                 hist
                   (fun (n : Dfg.node) -> info.(n.Dfg.id).Scale_check.scale_bits)
                   (List.filter
                      (fun (n : Dfg.node) -> info.(n.Dfg.id).Scale_check.is_ct)
                      members) );
               ( "bootstraps",
                 List
                   (List.sort compare
                      (List.filter_map
                         (fun (n : Dfg.node) ->
                           match n.Dfg.kind with
                           | Op.Bootstrap t ->
                               Some (String (Printf.sprintf "%s->L%d" (hex lbl.(n.Dfg.id)) t))
                           | _ -> None)
                         members)) );
               ( "rescales",
                 List
                   (List.map
                      (fun l -> String l)
                      (sorted_labels (of_kind (fun k -> k = Op.Rescale)))) );
               ( "modswitches",
                 Int (List.length (of_kind (fun k -> k = Op.Modswitch))) );
             ]
            @ cut_values r)
        in
        (signature, obj))
      region_ids
  in
  (* Content-keyed: identical plans produce identical keys regardless of
     region numbering.  Signature collisions (structurally identical
     regions) get a deterministic ordinal suffix. *)
  let region_objs =
    List.sort
      (fun (s1, o1) (s2, o2) ->
        match compare s1 s2 with 0 -> compare (to_string o1) (to_string o2) | c -> c)
      region_objs
  in
  let seen = Hashtbl.create 16 in
  let regions =
    List.map
      (fun (s, o) ->
        let k = Option.value (Hashtbl.find_opt seen s) ~default:0 in
        Hashtbl.replace seen s (k + 1);
        ((if k = 0 then s else Printf.sprintf "%s#%d" s k), o))
      region_objs
  in
  (* Per-node detail for every management node: level and scale at the
     exact placement point, keyed by content label. *)
  let mgmt = Hashtbl.create 32 in
  List.iter
    (fun (n : Dfg.node) ->
      match n.Dfg.kind with
      | Op.Bootstrap _ | Op.Rescale | Op.Modswitch ->
          let key = hex lbl.(n.Dfg.id) in
          let v =
            List
              [
                String (Op.name n.Dfg.kind);
                Int info.(n.Dfg.id).Scale_check.level;
                Int info.(n.Dfg.id).Scale_check.scale_bits;
              ]
          in
          let count, _ = Option.value (Hashtbl.find_opt mgmt key) ~default:(0, v) in
          Hashtbl.replace mgmt key (count + 1, v)
      | _ -> ())
    live;
  let management =
    List.sort compare
      (Hashtbl.fold
         (fun k (count, v) acc -> (k, List [ v; Int count ]) :: acc)
         mgmt [])
  in
  let stats = report.Report.stats in
  Obj
    [
      ( "headline",
        Obj
          [
            ("manager", String report.Report.manager);
            ("latency_ms", Float (round6 report.Report.latency_ms));
            ("bootstrap_count", Int stats.Fhe_ir.Stats.bootstrap_count);
            ("executed_rescales", Int stats.Fhe_ir.Stats.executed_rescales);
            ("executed_modswitches", Int stats.Fhe_ir.Stats.executed_modswitches);
            ("max_depth", Int stats.Fhe_ir.Stats.max_depth);
            ("nodes", Int stats.Fhe_ir.Stats.nodes);
            ("region_count", Int report.Report.region_count);
            ("repair_bootstraps", Int report.Report.repair_bootstraps);
            ("ms_opt_hoists", Int report.Report.ms_opt_hoists);
          ] );
      ("regions", Obj regions);
      ("management", Obj management);
    ]

(* --- rendering ------------------------------------------------------------- *)

let pp_node managed ppf id =
  if id < 0 then Format.fprintf ppf "(boundary)"
  else Format.fprintf ppf "%%%d %s" id (Op.name (Dfg.node managed id).Dfg.kind)

let pp_rationale managed ppf r =
  Format.fprintf ppf "@[<v2>%%%d bootstrap->L%d  region %d  %.3f ms  after %a  [%s]"
    r.ra_bootstrap r.ra_target r.ra_region r.ra_cost_ms (pp_node managed)
    r.ra_anchor r.ra_note;
  (match r.ra_cut_value with
  | Some v ->
      Format.fprintf ppf "@,cut value %.3f ms, %d saturated arc%s this placement" v
        (List.length r.ra_saturated)
        (if List.length r.ra_saturated = 1 then " pins" else "s pin")
  | None -> ());
  (match r.ra_counterfactual with
  | Some cf when cf.cf_value = infinity ->
      Format.fprintf ppf "@,forbidding this edge leaves no finite cut: placement is forced"
  | Some cf ->
      Format.fprintf ppf "@,moving this bootstrap costs +%.3f ms (next best: %a)"
        cf.cf_delta
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (pp_node managed))
        (if cf.cf_anchors = [] then [ -1 ] else cf.cf_anchors)
  | None -> ());
  Format.fprintf ppf "@]"

let rationale_to_json r =
  let open Obs.Json in
  Obj
    [
      ("bootstrap", Int r.ra_bootstrap);
      ("anchor", Int r.ra_anchor);
      ("region", Int r.ra_region);
      ("target_level", Int r.ra_target);
      ("cost_ms", Float r.ra_cost_ms);
      ("note", String r.ra_note);
      ( "cut_value_ms",
        match r.ra_cut_value with Some v -> Float v | None -> Null );
      ( "saturated_arcs",
        List (List.map (fun (u, v) -> List [ Int u; Int v ]) r.ra_saturated) );
      ( "counterfactual",
        match r.ra_counterfactual with
        | None -> Null
        | Some cf ->
            Obj
              [
                ( "value_ms",
                  if Float.is_finite cf.cf_value then Float cf.cf_value else Null );
                ( "delta_ms",
                  if Float.is_finite cf.cf_delta then Float cf.cf_delta else Null );
                ("forced", Bool (cf.cf_value = infinity));
                ("next_best", List (List.map (fun a -> Int a) cf.cf_anchors));
              ] );
    ]
