(** Step budgets for planner stages.

    A fuel counter bounds how much work a planning stage may do before it
    gives up: the bootstrapping manager spends one unit per DP segment
    evaluation, the placement solvers one per min-cut.  When the budget
    runs out the stage raises {!Exhausted}, which {!Driver.compile_robust}
    catches to fall back to a cheaper manager tier instead of letting the
    compile run unbounded — the graceful-degradation analogue of a
    deadline.

    A budget is deliberately a {e step} count, not wall-clock: step counts
    are deterministic, so whether a compile degrades — and to which tier —
    is reproducible across machines and runs.

    The counter is atomic: one budget may be shared across the worker
    domains of a parallel plan and total accounting stays exact.  Note
    that with [jobs > 1] the {e order} of spends depends on scheduling,
    so a finite budget can exhaust at a different planning step than the
    sequential run would — bit-identity guarantees between sequential and
    parallel compiles only hold for unlimited fuel. *)

type t

exception Exhausted of string
(** Argument is the stage label of the counter that ran dry. *)

val create : ?stage:string -> int -> t
(** [create ~stage n] allows [n] spends; a negative [n] never exhausts.
    [stage] (default ["plan"]) names the budget in {!Exhausted} and in the
    [planner_fuel_spent_total] metric. *)

val unlimited : t
(** A shared counter that never exhausts (and never counts). *)

val spend : ?cost:int -> t -> unit
(** Consume [cost] (default 1) units.
    @raise Exhausted when the remaining budget is smaller than [cost]. *)

val remaining : t -> int
(** Units left; negative = unlimited. *)

val stage : t -> string

val calibrate : ?percentile:float -> ?headroom:float -> int list -> int
(** [calibrate observations] turns historical planner step counts (one
    per compile, e.g. {!Driver.planner_steps} over archived compile
    profiles) into a budget for {!Driver.compile_robust}'s [fuel_steps]:
    the nearest-rank [percentile] (default 0.95) of the observations,
    multiplied by [headroom] (default 1.5, must be >= 1) and rounded up.
    A budget calibrated this way admits the chosen fraction of historical
    compiles without degradation while still bounding a runaway plan.
    Deterministic: same observations, same budget, on every platform.
    @raise Invalid_argument on an empty list, a percentile outside
    [0, 1], or headroom below 1. *)
