open Fhe_ir

type smo_mode = Smo_min_cut | Smo_eva | Smo_pars
type bts_mode = Bts_min_cut | Bts_region_end

type result = {
  latency_ms : float;
  smo_cut : Cut.t option;
  bts_cut : Cut.t option;
  bts_subgraph : int list;
}

type key = {
  region : int;
  entry_level : int;
  rescales : int;
  bts : int option;
  smo_mode : smo_mode;
  bts_mode : bts_mode;
}

(* The per-compile cache is lock-protected so parallel segment scans can
   share it.  Concurrent misses may compute the same entry twice; both
   computes are deterministic and equal, so first-add-wins is safe. *)
type cache = { tbl : (key, result) Hashtbl.t; lock : Mutex.t }

let create_cache () = { tbl = Hashtbl.create 256; lock = Mutex.create () }

(* A cross-compile memo keyed by region *content* rather than region
   index: entries survive model edits for every region whose hash is
   unchanged, which is what makes re-planning after a single-layer edit
   incremental.  The hash (supplied by the caller, see
   {!Plan_cache.region_hashes}) covers the region's members, their
   external producers and live-out shape, the CKKS parameters and the
   cost-model fingerprint — everything [compute] reads besides the
   explicit key fields below. *)
module Memo = struct
  type mkey = {
    m_hash : int64;
    m_entry_level : int;
    m_rescales : int;
    m_bts : int option;
    m_smo : smo_mode;
    m_bts_mode : bts_mode;
  }

  type t = {
    tbl : (mkey, result) Hashtbl.t;
    lock : Mutex.t;
    mutable hits : int;
    mutable misses : int;
  }

  let create () = { tbl = Hashtbl.create 512; lock = Mutex.create (); hits = 0; misses = 0 }
  let stats t = Mutex.protect t.lock (fun () -> (t.hits, t.misses))
  let size t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)
end

exception Infeasible of string

let infeasible fmt = Format.kasprintf (fun m -> raise (Infeasible m)) fmt

let node_cost g ~level id =
  let node = Dfg.node g id in
  match Op.cost_op node.Dfg.kind with
  | None -> 0.0
  | Some op -> float_of_int node.Dfg.freq *. Ckks.Cost_model.cost op ~level

(* Distinct tails of a cut (one inserted operation serves all cut edges
   sharing a tail), with the external producers of boundary-in heads. *)
let cut_tails g cut ~subgraph_mem =
  let tails = Hashtbl.create 8 in
  List.iter
    (fun edge ->
      match edge with
      | Cut.Internal { tail; _ } | Cut.Boundary_out { tail } ->
          Hashtbl.replace tails tail ()
      | Cut.Boundary_in { head } ->
          List.iter
            (fun p ->
              if Op.produces_ct (Dfg.node g p).Dfg.kind && not (subgraph_mem p) then
                Hashtbl.replace tails p ())
            (Dfg.preds g head))
    cut.Cut.edges;
  Det.sorted_keys tails

let liveout regioned region id =
  let g = regioned.Region.dfg in
  List.mem id (Dfg.outputs g)
  || List.exists (fun u -> regioned.Region.region_of.(u) <> region) (Dfg.succs g id)

(* Forced cut of EVA's waterline strategy: a rescale immediately after
   every multiplication unit (Mul_cp directly; Mul_cc through its relin). *)
let eva_cut regioned ~region =
  let g = regioned.Region.dfg in
  let members = Region.ct_members regioned region in
  let unit_output id =
    let node = Dfg.node g id in
    match node.Dfg.kind with
    | Op.Mul_cp -> true
    | Op.Relin -> true
    | _ -> false
  in
  let in_region id = regioned.Region.region_of.(id) = region && Op.produces_ct (Dfg.node g id).Dfg.kind in
  let edges =
    List.concat_map
      (fun id ->
        if not (unit_output id) then []
        else
          let internal =
            Dfg.succs g id |> List.filter in_region
            |> List.map (fun head -> Cut.Internal { tail = id; head })
          in
          if liveout regioned region id then Cut.Boundary_out { tail = id } :: internal
          else internal)
      members
  in
  let sink_side =
    List.filter
      (fun id ->
        not (unit_output id) && not (Op.is_mul (Dfg.node g id).Dfg.kind))
      members
  in
  { Cut.edges; value = 0.0; sink_side; cert = None; node_of = [||] }

(* Forced cut of PARS's lazy strategy: rescale the region's live-out
   ciphertexts only, so (almost) every region operation runs at the entry
   level.  Joins with cross-region operands (residual adds) still need
   their in-region operand rescaled first for the scales to match, so they
   and their descendants sit below the cut. *)
let pars_cut regioned ~region =
  let g = regioned.Region.dfg in
  let members = Region.ct_members regioned region in
  let in_region id =
    regioned.Region.region_of.(id) = region && Op.produces_ct (Dfg.node g id).Dfg.kind
  in
  let forced = Hashtbl.create 8 in
  List.iter
    (fun id ->
      let cross_join =
        (Dfg.node g id).Dfg.kind = Op.Add_cc
        && List.exists
             (fun p -> Op.produces_ct (Dfg.node g p).Dfg.kind && not (in_region p))
             (Dfg.preds g id)
      in
      let pred_forced = List.exists (Hashtbl.mem forced) (Dfg.preds g id) in
      if cross_join || pred_forced then Hashtbl.add forced id ())
    members;
  let edges =
    List.concat_map
      (fun id ->
        if Hashtbl.mem forced id then []
        else
          let internal =
            Dfg.succs g id
            |> List.filter (fun u -> in_region u && Hashtbl.mem forced u)
            |> List.map (fun head -> Cut.Internal { tail = id; head })
          in
          if liveout regioned region id then Cut.Boundary_out { tail = id } :: internal
          else internal)
      members
  in
  { Cut.edges; value = 0.0; sink_side = List.filter (Hashtbl.mem forced) members; cert = None; node_of = [||] }

(* Forced bootstrap placement at the region's end (Fhelipe / DaCapo):
   bootstrap every live-out of the level-0 subgraph. *)
let region_end_bts_cut regioned ~region ~subgraph =
  let in_sub = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.add in_sub id ()) subgraph;
  let g = regioned.Region.dfg in
  let edges =
    List.filter_map
      (fun id ->
        let out =
          List.mem id (Dfg.outputs g)
          || List.exists (fun u -> not (Hashtbl.mem in_sub u)) (Dfg.succs g id)
        in
        if out then Some (Cut.Boundary_out { tail = id }) else None)
      subgraph
  in
  ignore region;
  { Cut.edges; value = 0.0; sink_side = []; cert = None; node_of = [||] }

let compute ?fuel regioned prm ~smo_mode ~bts_mode ~region ~entry_level ~rescales ~bts =
  let g = regioned.Region.dfg in
  let members = Region.ct_members regioned region in
  if members = [] && rescales = 0 && bts = None then
    { latency_ms = 0.0; smo_cut = None; bts_cut = None; bts_subgraph = [] }
  else begin
    if entry_level < 0 then infeasible "region %d: negative entry level" region;
    if rescales > entry_level then
      infeasible "region %d: %d rescales exceed entry level %d" region rescales
        entry_level;
    let low_level = entry_level - rescales in
    let smo_cut =
      if rescales = 0 then None
      else
        match smo_mode with
        | Smo_min_cut -> Some (Smoplc.run ?fuel regioned prm ~region ~level:entry_level)
        | Smo_eva -> Some (eva_cut regioned ~region)
        | Smo_pars -> Some (pars_cut regioned ~region)
    in
    let member_level id =
      match smo_cut with
      | None -> entry_level
      | Some cut -> if Cut.sink_side_mem cut id then low_level else entry_level
    in
    let bts_subgraph =
      match bts with
      | None -> []
      | Some _ -> (
          match smo_cut with
          | Some cut -> cut.Cut.sink_side
          | None ->
              (* No rescale in this region: the bootstrap must still sit
                 strictly below the multiplications, otherwise it would
                 reset the scale to q *before* a multiplication and shift
                 the whole downstream scale chain (visible when the entry
                 scale differs from q, i.e. q_w < q). *)
              let muls = Region.muls regioned region in
              if muls = [] then members
              else begin
                let below = Hashtbl.create 16 in
                List.iter (fun m -> Hashtbl.add below m ()) muls;
                let member id = List.mem id members in
                List.iter
                  (fun id ->
                    if
                      (not (Hashtbl.mem below id))
                      && List.exists (Hashtbl.mem below) (Dfg.preds g id)
                    then Hashtbl.add below id ())
                  members;
                List.filter (fun id -> Hashtbl.mem below id && not (List.mem id muls) && member id) members
              end)
    in
    let bts_cut =
      match bts with
      | None -> None
      | Some lbts -> (
          if bts_subgraph = [] then None
          else
            match bts_mode with
            | Bts_min_cut ->
                Some (Btsplc.run ?fuel regioned prm ~region ~lbts ~subgraph:bts_subgraph)
            | Bts_region_end ->
                Some (region_end_bts_cut regioned ~region ~subgraph:bts_subgraph))
    in
    let final_level id =
      match (bts, bts_cut) with
      | Some lbts, Some cut when Cut.sink_side_mem cut id -> lbts
      | _ -> member_level id
    in
    let op_latency =
      List.fold_left
        (fun acc id -> acc +. node_cost g ~level:(final_level id) id)
        0.0 members
    in
    let rescale_latency =
      match smo_cut with
      | None -> 0.0
      | Some cut ->
          let tails = cut_tails g cut ~subgraph_mem:(fun _ -> true) in
          List.fold_left
            (fun acc tail ->
              let freq = float_of_int (Dfg.node g tail).Dfg.freq in
              let stacked = ref 0.0 in
              for i = 0 to rescales - 1 do
                stacked :=
                  !stacked
                  +. Ckks.Cost_model.cost Ckks.Cost_model.Rescale ~level:(entry_level - i)
              done;
              acc +. (freq *. !stacked))
            0.0 tails
    in
    let bts_latency =
      match bts with
      | None -> 0.0
      | Some lbts -> (
          let unit_cost = Ckks.Cost_model.cost Ckks.Cost_model.Bootstrap ~level:lbts in
          let tails_cost tails =
            List.fold_left
              (fun acc tail -> acc +. (float_of_int (Dfg.node g tail).Dfg.freq *. unit_cost))
              0.0 tails
          in
          match bts_cut with
          | Some cut ->
              let subgraph_mem id = List.mem id bts_subgraph in
              let base = tails_cost (cut_tails g cut ~subgraph_mem) in
              (* Rescale tips whose live-out branch bypasses the subgraph
                 carry their own bootstrap, unless the bootstrap cut sits
                 directly on the boundary (then the insertion is shared). *)
              let all_boundary_in =
                List.for_all
                  (function Cut.Boundary_in _ -> true | _ -> false)
                  cut.Cut.edges
              in
              let boundary_extra =
                match smo_cut with
                | Some sc when not all_boundary_in ->
                    let outs =
                      List.filter_map
                        (function Cut.Boundary_out { tail } -> Some tail | _ -> None)
                        sc.Cut.edges
                    in
                    tails_cost outs
                | _ -> 0.0
              in
              base +. boundary_extra
          | None -> (
              match smo_cut with
              | Some cut -> tails_cost (cut_tails g cut ~subgraph_mem:(fun _ -> true))
              | None ->
                  (* neither a rescale nor a level-0 subgraph: the
                     bootstrap lands on the region's live-out edges *)
                  let outs =
                    List.filter (fun id -> liveout regioned region id) members
                  in
                  if outs = [] then unit_cost else tails_cost outs))
    in
    {
      latency_ms = op_latency +. rescale_latency +. bts_latency;
      smo_cut;
      bts_cut;
      bts_subgraph;
    }
  end

let eval ?fuel ?memo cache regioned prm ~smo_mode ~bts_mode ~region ~entry_level
    ~rescales ~bts =
  let key = { region; entry_level; rescales; bts; smo_mode; bts_mode } in
  let cache_add r =
    Mutex.protect cache.lock (fun () ->
        if not (Hashtbl.mem cache.tbl key) then Hashtbl.add cache.tbl key r)
  in
  match Mutex.protect cache.lock (fun () -> Hashtbl.find_opt cache.tbl key) with
  | Some r -> r
  | None -> (
      let mkey =
        Option.map
          (fun (m, hash_of) ->
            ( m,
              {
                Memo.m_hash = hash_of region;
                m_entry_level = entry_level;
                m_rescales = rescales;
                m_bts = bts;
                m_smo = smo_mode;
                m_bts_mode = bts_mode;
              } ))
          memo
      in
      let from_memo =
        match mkey with
        | None -> None
        | Some (m, k) ->
            Mutex.protect m.Memo.lock (fun () ->
                match Hashtbl.find_opt m.Memo.tbl k with
                | Some r ->
                    m.Memo.hits <- m.Memo.hits + 1;
                    Some r
                | None ->
                    m.Memo.misses <- m.Memo.misses + 1;
                    None)
      in
      match from_memo with
      | Some r ->
          Obs.incr "region_eval.memo_hits";
          cache_add r;
          r
      | None ->
          (* Fuel is deliberately absent from both keys: a hit costs no
             steps, and cache population order is deterministic, so
             degraded compiles stay reproducible. *)
          Obs.incr "region_eval.computes";
          let r =
            compute ?fuel regioned prm ~smo_mode ~bts_mode ~region ~entry_level
              ~rescales ~bts
          in
          cache_add r;
          (match mkey with
          | Some (m, k) ->
              Mutex.protect m.Memo.lock (fun () ->
                  if not (Hashtbl.mem m.Memo.tbl k) then Hashtbl.add m.Memo.tbl k r)
          | None -> ());
          r)
