type config = {
  min_level_bts : bool;
  smo_mode : Region_eval.smo_mode;
  bts_mode : Region_eval.bts_mode;
  price_transits : bool;
}

let resbm_config =
  {
    min_level_bts = true;
    smo_mode = Region_eval.Smo_min_cut;
    bts_mode = Region_eval.Bts_min_cut;
    price_transits = true;
  }

type bts_action = { target : int; cut : Cut.t option; subgraph : int list }

type region_action = {
  rescales : int;
  entry_level : int;
  entry_scale : int;
  smo_cut : Cut.t option;
  bts : bts_action option;
}

type plan = {
  actions : region_action array;
  segments : (int * int) list;
  dp_latency_ms : float;
}

exception No_plan of string

type segment_eval = {
  seg_src : int;
  seg_bts : int option;  (* bootstrap target at src, if any *)
  seg_infos : Scalemgr.region_info array;  (* [src, dst] *)
  seg_levels : int array;  (* entry level per region in [src, dst] *)
  seg_latency : float;
}

(* Ciphertext edges that fly over region boundaries: producer region,
   consumer region, frequency.  When a bootstrap raises the main chain
   above such a producer's level, the plan application must bootstrap the
   flying value too ("level-deficit repair"); the DP charges that cost so
   segment boundaries gravitate away from live residual spans.  Edges are
   grouped by consumer region for incremental accumulation in the DP's
   inner loop. *)
let cross_edges_by_consumer regioned =
  let g = regioned.Region.dfg in
  let count = regioned.Region.count in
  let by_rb = Array.make count [] in
  List.iter
    (fun node ->
      let id = node.Fhe_ir.Dfg.id in
      if Fhe_ir.Op.produces_ct node.Fhe_ir.Dfg.kind then begin
        let ra = regioned.Region.region_of.(id) in
        let consumer_regions =
          List.sort_uniq compare
            (List.filter_map
               (fun u ->
                 let rb = regioned.Region.region_of.(u) in
                 if rb > ra + 1 then Some rb else None)
               (Fhe_ir.Dfg.succs g id))
        in
        List.iter
          (fun rb -> by_rb.(rb) <- (ra, node.Fhe_ir.Dfg.freq) :: by_rb.(rb))
          consumer_regions
      end)
    (Fhe_ir.Dfg.live_nodes g);
  by_rb

let plan ?(config = resbm_config) ?(fuel = Fuel.unlimited) ?(segment_scan = `Full)
    ?(jobs = 1) ?memo regioned prm =
  let count = regioned.Region.count in
  let last = count - 1 in
  let cache = Region_eval.create_cache () in
  let l_max = prm.Ckks.Params.l_max in
  let cross_by_rb = cross_edges_by_consumer regioned in
  let eval ~region ~entry_level ~rescales ~bts =
    Region_eval.eval ~fuel ?memo cache regioned prm ~smo_mode:config.smo_mode
      ~bts_mode:config.bts_mode ~region ~entry_level ~rescales ~bts
  in
  (* DP table dimensions: one row per region boundary, l_max + 1 candidate
     bootstrap targets per segment evaluation. *)
  Obs.observe "btsmgr.dp_regions" (float_of_int count);
  Obs.observe "btsmgr.dp_levels" (float_of_int (l_max + 1));
  if count = 1 then
    {
      actions =
        [|
          {
            rescales = 0;
            entry_level = prm.Ckks.Params.input_level;
            entry_scale = prm.Ckks.Params.input_scale_bits;
            smo_cut = None;
            bts = None;
          };
        |];
      segments = [];
      dp_latency_ms =
        (eval ~region:0 ~entry_level:prm.Ckks.Params.input_level ~rescales:0 ~bts:None)
          .Region_eval.latency_ms;
    }
  else begin
    let min_lat = Array.make count infinity in
    let best : segment_eval option array = Array.make count None in
    let boundary_scale = Array.make count 0 in
    let boundary_level = Array.make count 0 in
    (* Production level of each region's live-out values under the best
       chain found so far: bootstrap target for source regions, entry
       minus rescales otherwise.  Filled as the outer loop finalises each
       boundary; used to price transits exactly as the repair pass will. *)
    let prod_level = Array.make count prm.Ckks.Params.input_level in
    min_lat.(0) <- 0.0;
    boundary_scale.(0) <- prm.Ckks.Params.input_scale_bits;
    boundary_level.(0) <- prm.Ckks.Params.input_level;
    (* Evaluate a candidate segment; raises Not_found when infeasible. *)
    let try_segment ~src ~dst ~no_bts =
      Fuel.spend fuel;
      Obs.incr "btsmgr.segment_evals";
      let sp =
        Scalemgr.plan regioned prm ~src ~dst ~src_entry_scale:boundary_scale.(src)
          ~bts_at_src:(not no_bts)
      in
      let src_entry = boundary_level.(src) in
      let k_src = sp.Scalemgr.infos.(0).rescales in
      (* The final region's own rescales are never applied (there is no
         following segment to spend them in); it only needs enough level
         for its multiplications' capacity. *)
      let is_final = dst = last in
      let lbts_req =
        if is_final then begin
          let info_dst = sp.Scalemgr.infos.(dst - src) in
          let q = prm.Ckks.Params.scale_bits in
          let cap_need = max 0 (((info_dst.Scalemgr.peak_scale + q - 1) / q) - 1) in
          sp.Scalemgr.lbts - info_dst.Scalemgr.rescales + cap_need
        end
        else sp.Scalemgr.lbts
      in
      let budget = if no_bts then src_entry - k_src else l_max in
      if lbts_req > budget then None
      else if k_src > src_entry then None
      else begin
        let bts_target =
          if no_bts then None
          else Some (if config.min_level_bts then max lbts_req 1 else max l_max 1)
        in
        let top = match bts_target with Some t -> t | None -> src_entry - k_src in
        let levels = Array.make (dst - src + 1) 0 in
        levels.(0) <- src_entry;
        let cur = ref top in
        (try
           for r = src + 1 to dst do
             levels.(r - src) <- !cur;
             let k = sp.Scalemgr.infos.(r - src).rescales in
             if k > !cur && not (is_final && r = dst) then raise Exit;
             if
               not
                 (Ckks.Evaluator.capacity_ok prm
                    ~scale_bits:sp.Scalemgr.infos.(r - src).peak_scale ~level:!cur)
             then raise Exit;
             cur := !cur - k
           done;
           if
             not
               (Ckks.Evaluator.capacity_ok prm
                  ~scale_bits:sp.Scalemgr.infos.(0).peak_scale ~level:src_entry)
           then raise Exit
         with Exit -> raise_notrace Not_found);
        (* Latency of the regions [src, dst). *)
        let latency = ref 0.0 in
        (try
           for r = src to dst - 1 do
             let res =
               eval ~region:r ~entry_level:levels.(r - src)
                 ~rescales:sp.Scalemgr.infos.(r - src).rescales
                 ~bts:(if r = src then bts_target else None)
             in
             latency := !latency +. res.Region_eval.latency_ms
           done
         with Region_eval.Infeasible _ -> raise_notrace Not_found);
        (* Exact repair pricing: values produced before [src] (levels
           already final) and consumed inside [(src, dst]] above their
           production level will be bootstrapped by the repair pass. *)
        if config.price_transits then
        for rb = src + 1 to dst do
          let need = levels.(rb - src) in
          List.iter
            (fun (ra, freq) ->
              if ra < src && prod_level.(ra) < need && need <= l_max then
                latency :=
                  !latency
                  +. float_of_int freq
                     *. Ckks.Cost_model.cost Ckks.Cost_model.Bootstrap ~level:need)
            cross_by_rb.(rb)
        done;
        Some
          {
            seg_src = src;
            seg_bts = bts_target;
            seg_infos = sp.Scalemgr.infos;
            seg_levels = levels;
            seg_latency = !latency;
          }
      end
    in
    for src = 0 to last - 1 do
      if min_lat.(src) < infinity then begin
        (* The chain to [src] is final: rebuild the production levels of
           every region it covers (a fresh walk — intermediate boundaries
           belong to other chains and must not leak in). *)
        Array.fill prod_level 0 count prm.Ckks.Params.input_level;
        let at = ref src in
        while !at > 0 do
          match best.(!at) with
          | None -> at := 0
          | Some seg ->
              Array.iteri
                (fun i info ->
                  let r = seg.seg_src + i in
                  if r < !at then begin
                    let base = seg.seg_levels.(i) - info.Scalemgr.rescales in
                    prod_level.(r) <-
                      (if r = seg.seg_src then
                         match seg.seg_bts with Some t -> max t base | None -> base
                       else base)
                  end)
                seg.seg_infos;
              at := seg.seg_src
        done;
        let continue_scan = ref true in
        let dst = ref (src + 1) in
        (* `Adjacent: every boundary is a segment boundary (one region per
           segment, a bootstrap at each source) — the O(regions) eager
           scan used by the last fallback tier. *)
        let scan_last = match segment_scan with `Full -> last | `Adjacent -> src + 1 in
        (* Candidate evaluation at a given [dst] reads only src-indexed DP
           state (boundary scale/level, prod_level), all fixed for the
           whole dst scan — so a chunk of destinations can be evaluated on
           worker domains and folded sequentially in dst order, with the
           exact early-stop of the sequential scan.  The lookahead may
           evaluate (and meter) a few segments past the stopping dst; the
           DP folds none of them, so the resulting plan is bit-identical. *)
        let fold_candidates d candidates =
          Obs.incr ~by:(List.length candidates) "btsmgr.candidates";
          List.iter
            (fun seg ->
              let cand = min_lat.(src) +. seg.seg_latency in
              if cand < min_lat.(d) then begin
                min_lat.(d) <- cand;
                best.(d) <- Some seg;
                boundary_scale.(d) <- seg.seg_infos.(d - src).Scalemgr.entry_scale;
                boundary_level.(d) <- seg.seg_levels.(d - src)
              end)
            candidates
        in
        if jobs <= 1 then
          while !continue_scan && !dst <= scan_last do
            let candidates =
              (if src = 0 then
                 match try_segment ~src ~dst:!dst ~no_bts:true with
                 | Some s -> [ s ]
                 | None | (exception Not_found) -> []
               else [])
              @
              match try_segment ~src ~dst:!dst ~no_bts:false with
              | Some s -> [ s ]
              | None ->
                  continue_scan := false;
                  []
              | exception Not_found -> []
            in
            fold_candidates !dst candidates;
            incr dst
          done
        else
          while !continue_scan && !dst <= scan_last do
            let base = !dst in
            let chunk = min jobs (scan_last - base + 1) in
            (* Slot 2i = no-bts candidate for dst base+i, slot 2i+1 = bts
               candidate; deterministic order regardless of scheduling. *)
            let evald =
              Par.tabulate ~jobs ~label:"segment_scan" (2 * chunk) (fun t ->
                  let d = base + (t / 2) in
                  let no_bts = t land 1 = 0 in
                  if no_bts && src <> 0 then `Skip
                  else
                    match try_segment ~src ~dst:d ~no_bts with
                    | Some s -> `Seg s
                    | None -> `Stop
                    | exception Not_found -> `Infeasible)
            in
            for i = 0 to chunk - 1 do
              if !continue_scan then begin
                let d = base + i in
                let candidates =
                  (match evald.(2 * i) with `Seg s -> [ s ] | _ -> [])
                  @
                  match evald.((2 * i) + 1) with
                  | `Seg s -> [ s ]
                  | `Stop ->
                      continue_scan := false;
                      []
                  | `Infeasible | `Skip -> []
                in
                fold_candidates d candidates
              end
            done;
            dst := base + chunk
          done
      end
    done;
    if min_lat.(last) = infinity then
      raise
        (No_plan
           (Printf.sprintf
              "no feasible bootstrapping plan (l_max = %d too small for some region \
               sequence)"
              l_max));
    (* Backtrack the chosen segments. *)
    let segments = ref [] in
    let at = ref last in
    while !at > 0 do
      match best.(!at) with
      | None ->
          raise (No_plan (Printf.sprintf "region %d unreachable in DP backtrack" !at))
      | Some seg ->
          segments := (seg.seg_src, !at, seg) :: !segments;
          at := seg.seg_src
    done;
    (* Materialise per-region actions. *)
    let actions =
      Array.make count
        {
          rescales = 0;
          entry_level = 0;
          entry_scale = prm.Ckks.Params.input_scale_bits;
          smo_cut = None;
          bts = None;
        }
    in
    List.iter
      (fun (src, dst, seg) ->
        for r = src to dst - 1 do
          let k = seg.seg_infos.(r - src).Scalemgr.rescales in
          let entry_level = seg.seg_levels.(r - src) in
          let bts_here = if r = src then seg.seg_bts else None in
          let res = eval ~region:r ~entry_level ~rescales:k ~bts:bts_here in
          actions.(r) <-
            {
              rescales = k;
              entry_level;
              entry_scale = seg.seg_infos.(r - src).Scalemgr.entry_scale;
              smo_cut = res.Region_eval.smo_cut;
              bts =
                (match bts_here with
                | None -> None
                | Some target ->
                    Some
                      {
                        target;
                        cut = res.Region_eval.bts_cut;
                        subgraph = res.Region_eval.bts_subgraph;
                      });
            }
        done)
      !segments;
    let final_eval =
      eval ~region:last ~entry_level:boundary_level.(last) ~rescales:0 ~bts:None
    in
    actions.(last) <-
      {
        rescales = 0;
        entry_level = boundary_level.(last);
        entry_scale = boundary_scale.(last);
        smo_cut = None;
        bts = None;
      };
    {
      actions;
      segments = List.map (fun (s, d, _) -> (s, d)) !segments;
      dp_latency_ms = min_lat.(last) +. final_eval.Region_eval.latency_ms;
    }
  end
