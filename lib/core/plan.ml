open Fhe_ir

type outcome = {
  dfg : Dfg.t;
  repair_bootstraps : int;
  final_info : Scale_check.info array;
}

exception Apply_error of string

let apply_error fmt = Format.kasprintf (fun m -> raise (Apply_error m)) fmt

(* Group cut edges by insertion tail.  Returns
   [(tail, internal_heads, boundary_out)] and the boundary-in heads. *)
let group_cut cut =
  let tails : (int, int list * bool) Hashtbl.t = Hashtbl.create 8 in
  let boundary_in = ref [] in
  List.iter
    (fun edge ->
      match edge with
      | Cut.Internal { tail; head } ->
          let heads, out = Option.value (Hashtbl.find_opt tails tail) ~default:([], false) in
          Hashtbl.replace tails tail (head :: heads, out)
      | Cut.Boundary_out { tail } ->
          let heads, _ = Option.value (Hashtbl.find_opt tails tail) ~default:([], false) in
          Hashtbl.replace tails tail (heads, true)
      | Cut.Boundary_in { head } -> boundary_in := head :: !boundary_in)
    cut.Cut.edges;
  ( List.map (fun (tail, (heads, out)) -> (tail, heads, out)) (Det.sorted_bindings tails),
    !boundary_in )

let apply regioned prm (plan : Btsmgr.plan) =
  let g = Dfg.copy regioned.Region.dfg in
  let orig_count = Dfg.node_count g in
  let region_of id = if id < orig_count then Some regioned.Region.region_of.(id) else None in
  let replace_output old_id new_id =
    Dfg.set_outputs g
      (List.map (fun o -> if o = old_id then new_id else o) (Dfg.outputs g))
  in
  (* Users of [tail] that live outside region [r] (crossing edges). *)
  let outside_users r tail =
    List.filter
      (fun u -> match region_of u with Some ru -> ru <> r | None -> true)
      (Dfg.succs g tail)
  in
  let insert_chain ~kind_of ~count ~tail ~heads ~fix_output =
    let cur = ref tail in
    for i = 0 to count - 1 do
      cur := Dfg.insert_after g ~tail:!cur ~heads (kind_of i)
    done;
    if fix_output then replace_output tail !cur;
    !cur
  in
  Array.iteri
    (fun r (act : Btsmgr.region_action) ->
      (* 1. Rescale chains on the SMO cut. *)
      let rs_tips = ref [] in
      (match act.Btsmgr.smo_cut with
      | Some cut when act.Btsmgr.rescales >= 1 ->
          let groups, boundary_in = group_cut cut in
          if boundary_in <> [] then apply_error "region %d: SMO cut has boundary-in edges" r;
          List.iter
            (fun (tail, heads, out) ->
              let heads = if out then heads @ outside_users r tail else heads in
              let is_out = out && List.mem tail (Dfg.outputs g) in
              let tip =
                insert_chain
                  ~kind_of:(fun _ -> Op.Rescale)
                  ~count:act.Btsmgr.rescales ~tail ~heads ~fix_output:is_out
              in
              rs_tips := tip :: !rs_tips)
            groups
      | _ -> ());
      (* 2. Bootstrap insertion.  All insertions share one bootstrap node
         per tail: a boundary branch and a boundary-in group landing on
         the same rescale tip must not bootstrap it twice. *)
      match act.Btsmgr.bts with
      | None -> ()
      | Some { Btsmgr.target; cut; subgraph } -> (
          let kind_of _ = Op.Bootstrap target in
          let bootstrap_after ~tail ~heads ~fix_output =
            let existing =
              List.find_opt
                (fun u ->
                  let un = Dfg.node g u in
                  un.Dfg.kind = Op.Bootstrap target && un.Dfg.args = [| tail |])
                (Dfg.succs g tail)
            in
            match existing with
            | Some b ->
                List.iter
                  (fun h ->
                    let hn = Dfg.node g h in
                    Array.iteri
                      (fun i a -> if a = tail then Dfg.set_arg g ~user:h ~arg_index:i b)
                      hn.Dfg.args)
                  heads;
                if fix_output then replace_output tail b;
                b
            | None -> insert_chain ~kind_of ~count:1 ~tail ~heads ~fix_output
          in
          (* Live-out branches of the rescale tips that leave the region
             without passing the level-0 subgraph (a source-side live-out
             rescaled on its boundary edge) still need a bootstrap: the
             bootstrap cut below only covers subgraph paths. *)
          let bootstrap_boundary_branches () =
            List.iter
              (fun tip ->
                let heads =
                  List.filter
                    (fun u ->
                      (match (Dfg.node g u).Dfg.kind with
                      | Op.Bootstrap _ -> false
                      | _ -> true)
                      && match region_of u with Some ru -> ru <> r | None -> true)
                    (Dfg.succs g tip)
                in
                let is_out = List.mem tip (Dfg.outputs g) in
                if heads <> [] || is_out then
                  ignore (bootstrap_after ~tail:tip ~heads ~fix_output:is_out))
              !rs_tips
          in
          match cut with
          | Some cut ->
              let groups, boundary_in = group_cut cut in
              List.iter
                (fun (tail, heads, out) ->
                  let heads = if out then heads @ outside_users r tail else heads in
                  let is_out = out && List.mem tail (Dfg.outputs g) in
                  ignore (bootstrap_after ~tail ~heads ~fix_output:is_out))
                groups;
              (* Boundary-in: bootstrap the external producers feeding the
                 cut heads (typically the freshly inserted rescale). *)
              if boundary_in <> [] then begin
                let in_sub = Hashtbl.create 16 in
                List.iter (fun id -> Hashtbl.add in_sub id ()) subgraph;
                let producer_heads = Hashtbl.create 8 in
                List.iter
                  (fun head ->
                    List.iter
                      (fun p ->
                        if Op.produces_ct (Dfg.node g p).Dfg.kind && not (Hashtbl.mem in_sub p)
                        then
                          Hashtbl.replace producer_heads p
                            (head
                            :: Option.value (Hashtbl.find_opt producer_heads p) ~default:[]))
                      (Dfg.preds g head))
                  boundary_in;
                Det.iter_sorted
                  (fun p heads -> ignore (bootstrap_after ~tail:p ~heads ~fix_output:false))
                  producer_heads
              end;
              bootstrap_boundary_branches ()
          | None ->
              (* Bootstrap directly after the rescale chains; with no
                 rescales either (an unrescaled source region whose
                 multiplications are its live-outs), bootstrap the
                 region's live-out edges. *)
              let tips =
                if !rs_tips <> [] then !rs_tips
                else
                  List.filter
                    (fun id ->
                      List.mem id (Dfg.outputs g)
                      || List.exists
                           (fun u ->
                             match region_of u with Some ru -> ru <> r | None -> true)
                           (Dfg.succs g id))
                    (Region.ct_members regioned r)
              in
              List.iter
                (fun tip ->
                  let heads =
                    List.filter
                      (fun u ->
                        (match (Dfg.node g u).Dfg.kind with
                        | Op.Bootstrap _ -> false
                        | _ -> true)
                        && match region_of u with Some ru -> ru <> r | None -> true)
                      (Dfg.succs g tip)
                  in
                  let is_out = List.mem tip (Dfg.outputs g) in
                  if heads <> [] || is_out then
                    ignore (bootstrap_after ~tail:tip ~heads ~fix_output:is_out))
                tips))
    plan.Btsmgr.actions;
  (* 3. Level-deficit repair: operands arriving below the planned level of
     their consuming join are bootstrapped up to exactly that level. *)
  let intended_level id =
    match region_of id with
    | None -> None
    | Some r ->
        let act = plan.Btsmgr.actions.(r) in
        let below_smo =
          match act.Btsmgr.smo_cut with Some c -> Cut.sink_side_mem c id | None -> false
        in
        let below_bts =
          match act.Btsmgr.bts with
          | Some { Btsmgr.cut = Some c; _ } -> Cut.sink_side_mem c id
          | _ -> false
        in
        let l =
          if below_bts then
            match act.Btsmgr.bts with Some b -> b.Btsmgr.target | None -> assert false
          else if below_smo then act.Btsmgr.entry_level - act.Btsmgr.rescales
          else act.Btsmgr.entry_level
        in
        Some l
  in
  (* Single forward pass: propagate (level, scale) incrementally so each
     repair is visible to everything downstream — otherwise one genuine
     deficit cascades into spurious repairs against stale levels. *)
  let repair_count = ref 0 in
  let repair_cache = Hashtbl.create 8 in
  let levels : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let scales : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let level_of id = Option.value (Hashtbl.find_opt levels id) ~default:0 in
  let scale_of id =
    Option.value (Hashtbl.find_opt scales id) ~default:prm.Ckks.Params.scale_bits
  in
  let q = prm.Ckks.Params.scale_bits and qw = prm.Ckks.Params.waterline_bits in
  let snapshot = Dfg.topo_order g in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      (* Repair deficient operands against the planned level: joins need
         matching levels, and multiplications additionally need capacity
         for their product scale. *)
      (match node.Dfg.kind with
      | Op.Add_cc | Op.Mul_cc | Op.Mul_cp -> (
          match intended_level id with
          | Some want when want >= 1 && want <= prm.Ckks.Params.l_max ->
              Array.iteri
                (fun i a ->
                  if
                    Op.produces_ct (Dfg.node g a).Dfg.kind
                    && level_of a < want
                    && scale_of a = q
                  then begin
                    let bts =
                      match Hashtbl.find_opt repair_cache (a, want) with
                      | Some b -> b
                      | None ->
                          let b = Dfg.insert_after g ~tail:a ~heads:[] (Op.Bootstrap want) in
                          Hashtbl.add repair_cache (a, want) b;
                          Hashtbl.replace levels b want;
                          Hashtbl.replace scales b q;
                          incr repair_count;
                          if Sys.getenv_opt "RESBM_DEBUG" <> None then
                            Format.eprintf
                              "repair: %%%d (%s, region %s, have L%d) -> L%d for join %%%d \
                               (region %s)@."
                              a
                              (Op.name (Dfg.node g a).Dfg.kind)
                              (match region_of a with
                              | Some r -> string_of_int r
                              | None -> "?")
                              (level_of a) want id
                              (match region_of id with
                              | Some r -> string_of_int r
                              | None -> "?");
                          b
                    in
                    Dfg.set_arg g ~user:id ~arg_index:i bts
                  end)
                node.Dfg.args
          | _ -> ())
      | _ -> ());
      (* Propagate level and scale through this node. *)
      let arg i = node.Dfg.args.(i) in
      let l, s =
        match node.Dfg.kind with
        | Op.Input { level; scale_bits; _ } ->
            ( Option.value level ~default:prm.Ckks.Params.input_level,
              Option.value scale_bits ~default:prm.Ckks.Params.input_scale_bits )
        | Op.Const _ -> (max_int, qw)
        | Op.Add_cc -> (min (level_of (arg 0)) (level_of (arg 1)), scale_of (arg 0))
        | Op.Add_cp -> (level_of (arg 0), scale_of (arg 0))
        | Op.Mul_cc ->
            (min (level_of (arg 0)) (level_of (arg 1)), scale_of (arg 0) + scale_of (arg 1))
        | Op.Mul_cp -> (level_of (arg 0), scale_of (arg 0) + qw)
        | Op.Rotate _ | Op.Relin -> (level_of (arg 0), scale_of (arg 0))
        | Op.Rescale -> (max (level_of (arg 0) - 1) 0, max (scale_of (arg 0) - q) 1)
        | Op.Modswitch -> (max (level_of (arg 0) - 1) 0, scale_of (arg 0))
        | Op.Bootstrap target -> (target, q)
      in
      Hashtbl.replace levels id l;
      Hashtbl.replace scales id s)
    snapshot;
  (* 4. Close the remaining (downward) mismatches with modswitch chains.
     Legalisation's closing validation is the managed graph's scale/level
     analysis — hand it to the caller so Driver need not re-infer. *)
  let final_info =
    match Legalize.run prm g with
    | Ok info -> info
    | Error (v :: _) ->
        apply_error "managed graph is not legal: %a" Scale_check.pp_violation v
    | Error [] -> assert false
  in
  { dfg = g; repair_bootstraps = !repair_count; final_info }
