(** Content-addressed plan cache.

    A compile is a pure function of (program structure, CKKS parameters,
    manager configuration, cost model); {!key} hashes exactly those
    inputs (FNV-1a, 64-bit, canonical node order), so equal keys mean the
    sequential cold compile would produce a bit-identical plan and
    report.  Three tiers:

    - an in-memory LRU of compiled plans (graph + {!Report.t});
    - an optional on-disk tier (one JSON file per key under [dir]),
      surviving processes — reports loaded from disk carry an empty
      profile and recomputed stats, deterministic fields identical;
    - an incremental tier: a {!Region_eval.Memo} keyed by region
      {e content} hash ({!region_hashes}), so re-planning an edited model
      re-solves only regions whose hash changed.

    Hits and misses are counted on the ambient {!Obs} metrics as
    [plan_cache_{hits,misses,evictions}_total] and on the ambient profile
    as [plan_cache.*] counters.  All operations are mutex-protected. *)

type t

val default_capacity : int
(** LRU capacity from [RESBM_CACHE_CAP] (default 64). *)

val create : ?capacity:int -> ?dir:string -> unit -> t
(** [create ()] is a process-local cache; pass [dir] to add the on-disk
    tier (the directory is created on demand). *)

val key :
  config:Btsmgr.config ->
  name:string ->
  ms_opt:bool ->
  segment_scan:[ `Full | `Adjacent ] ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  string
(** Stable content hash of one compile's inputs, as 16 hex digits.  Any
    change to the graph (kinds, args, freqs, outputs), the parameters,
    the manager identity or the compiled-in cost model changes the key. *)

val find : t -> string -> (Fhe_ir.Dfg.t * Report.t) option
(** Cache lookup.  A hit returns a private copy of the managed graph and
    the stored report with [compile_ms] replaced by the lookup time (the
    honest cost of the warm compile); all deterministic fields are
    bit-identical to the cold compile's. *)

val store : t -> string -> Fhe_ir.Dfg.t -> Report.t -> unit
(** Insert a compile result (copies are taken).  Evicts least-recently
    used entries above capacity; writes through to the disk tier. *)

val memo : t -> Region_eval.Memo.t
(** The incremental region-solution memo, to thread into
    {!Driver.compile} / {!Btsmgr.plan}. *)

val region_hashes : Ckks.Params.t -> Region.t -> int64 array
(** Per-region content hashes for the incremental tier: members (ids,
    kinds, freqs, args), external producer kind/freq, live-out shape,
    plus parameters and cost-model fingerprint.  Node ids are included
    deliberately — memoised cuts name nodes by id and only transfer when
    the region's ids are unchanged. *)

val dir : t -> string option

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  disk_hits : int;  (** Subset of [hits] served from the disk tier. *)
  disk_entries : int;
  memo_entries : int;
  memo_hits : int;
  memo_misses : int;
}

val stats : t -> stats
val stats_json : stats -> Obs.Json.t

val clear : t -> unit
(** Drop every in-memory entry and delete the disk tier's files. *)
