open Fhe_ir

let cost_of g prm ~level id =
  ignore prm;
  let node = Dfg.node g id in
  match Op.cost_op node.Dfg.kind with
  | None -> 0.0
  | Some op -> float_of_int node.Dfg.freq *. Ckks.Cost_model.cost op ~level

let region_latency_terms regioned prm ~region ~level =
  let g = regioned.Region.dfg in
  List.map (fun id -> (id, cost_of g prm ~level id)) (Region.ct_members regioned region)

let run ?(fuel = Fuel.unlimited) regioned prm ~region ~level =
  Fuel.spend fuel;
  if level < 1 then invalid_arg "Smoplc.run: rescaling needs level >= 1";
  let g = regioned.Region.dfg in
  let nodes = Region.ct_members regioned region in
  if nodes = [] then invalid_arg "Smoplc.run: empty region";
  let index = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.add index id i) nodes;
  let in_region id = Hashtbl.mem index id in
  let k = List.length nodes in
  let net = Graphlib.Maxflow.create (k + 2) in
  let s = k and t = k + 1 in
  let rs_cost id =
    float_of_int (Dfg.node g id).Dfg.freq *. Ckks.Cost_model.cost Ckks.Cost_model.Rescale ~level
  in
  (* Cumulative latency increase relative to rescaling right after the
     sources (Algorithm 4, lines 5-10).  Members are already topological.

     Flow sources are the multiplications — the only nodes where the scale
     increases (Table 1) — so paths that merely pass through the region
     (rotations of live-ins sunk next to their use) are never rescaled:
     their scale is already the region's entry scale.  Regions without
     multiplications (e.g. the input region when fresh ciphertexts exceed
     the waterline) fall back to their entry nodes. *)
  let linc = Hashtbl.create 32 in
  let is_entry =
    let muls = Region.muls regioned region in
    if muls <> [] then fun id -> List.mem id muls
    else fun id -> not (List.exists in_region (Dfg.preds g id))
  in
  List.iter
    (fun id ->
      let v =
        if is_entry id then 0.0
        else
          let own = cost_of g prm ~level id -. cost_of g prm ~level:(level - 1) id in
          List.fold_left
            (fun acc p ->
              acc +. Option.value (Hashtbl.find_opt linc p) ~default:0.0)
            own (Dfg.preds g id)
      in
      Hashtbl.add linc id v)
    nodes;
  let is_liveout id =
    List.mem id (Dfg.outputs g)
    || List.exists (fun u -> not (in_region u)) (Dfg.succs g id)
  in
  (* A member consuming a ciphertext produced outside the region (e.g. a
     residual add) sees that operand at the region's entry scale, which is
     the post-rescale scale: force such nodes below the cut so the scales
     on both sides of the join agree. *)
  let forces_sink id =
    match (Dfg.node g id).Dfg.kind with
    | Op.Add_cc ->
        List.exists
          (fun p -> Op.produces_ct (Dfg.node g p).Dfg.kind && not (in_region p))
          (Dfg.preds g id)
    | _ -> false
  in
  (* Build the flow network. *)
  List.iter
    (fun id ->
      let i = Hashtbl.find index id in
      if is_entry id then Maxflow_util.add_with_reverse net ~src:s ~dst:i ~cap:infinity;
      let internal_heads = List.filter in_region (Dfg.succs g id) in
      let degree = List.length internal_heads + if is_liveout id then 1 else 0 in
      if degree > 0 then begin
        let weight =
          if (Dfg.node g id).Dfg.kind = Op.Mul_cc then infinity
          else (rs_cost id +. Hashtbl.find linc id) /. float_of_int degree
        in
        List.iter
          (fun h ->
            Maxflow_util.add_with_reverse net ~src:i ~dst:(Hashtbl.find index h)
              ~cap:weight)
          internal_heads;
        if is_liveout id then Maxflow_util.add_with_reverse net ~src:i ~dst:t ~cap:weight
      end;
      if forces_sink id then Graphlib.Maxflow.add_edge net ~src:i ~dst:t ~cap:infinity)
    nodes;
  let mc = Graphlib.Maxflow.min_cut net ~source:s ~sink:t in
  let cert = Graphlib.Maxflow.certificate net ~source:s ~sink:t mc in
  Obs.incr "smoplc.cuts";
  Obs.observe "smoplc.cut_value" mc.Graphlib.Maxflow.value;
  Obs.observe "smoplc.region_nodes" (float_of_int k);
  let node_at = Array.of_list nodes in
  let edges =
    List.filter_map
      (fun (u, v) ->
        if u = s then None (* infinite source arcs never appear *)
        else if v = t then Some (Cut.Boundary_out { tail = node_at.(u) })
        else Some (Cut.Internal { tail = node_at.(u); head = node_at.(v) }))
      mc.Graphlib.Maxflow.edges
  in
  let sink_side =
    List.filteri (fun i _ -> not mc.Graphlib.Maxflow.source_side.(i)) nodes
  in
  let node_of = Array.append node_at [| -1; -1 |] in
  { Cut.edges; value = mc.Graphlib.Maxflow.value; sink_side; cert = Some cert; node_of }
