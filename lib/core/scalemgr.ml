type region_info = {
  entry_scale : int;
  peak_scale : int;
  out_scale : int;
  rescales : int;
}

type seq_plan = {
  infos : region_info array;
  rescaling : int list;
  lbts : int;
}

let scale_increment regioned prm ~region ~entry_scale =
  let cc = if Region.has_mul_cc regioned region then entry_scale else 0
  and cp = if Region.has_mul_cp regioned region then prm.Ckks.Params.waterline_bits else 0 in
  max cc cp

let plan regioned prm ~src ~dst ~src_entry_scale ~bts_at_src =
  if src < 0 || dst >= regioned.Region.count || src > dst then
    invalid_arg "Scalemgr.plan: bad sequence bounds";
  Obs.incr "scalemgr.plans";
  let q = prm.Ckks.Params.scale_bits and qw = prm.Ckks.Params.waterline_bits in
  let infos = Array.make (dst - src + 1) { entry_scale = 0; peak_scale = 0; out_scale = 0; rescales = 0 } in
  let rescaling = ref [] and lbts = ref 0 in
  let scale = ref src_entry_scale in
  for r = src to dst do
    let entry_scale = !scale in
    let peak_scale = entry_scale + scale_increment regioned prm ~region:r ~entry_scale in
    (* Early rescaling: shed levels as soon as the scale is eligible. *)
    let out = ref peak_scale and k = ref 0 in
    while !out >= q + qw do
      out := !out - q;
      incr k
    done;
    if !k > 0 then begin
      rescaling := r :: !rescaling;
      if r <> src then lbts := !lbts + !k
    end;
    infos.(r - src) <- { entry_scale; peak_scale; out_scale = !out; rescales = !k };
    scale := if r = src && bts_at_src then q else !out
  done;
  { infos; rescaling = List.rev !rescaling; lbts = !lbts }
