type edge =
  | Internal of { tail : int; head : int }
  | Boundary_in of { head : int }
  | Boundary_out of { tail : int }

type t = {
  edges : edge list;
  value : float;
  sink_side : int list;
  cert : Graphlib.Maxflow.certificate option;
  node_of : int array;
}

let pp_edge ppf = function
  | Internal { tail; head } -> Format.fprintf ppf "%%%d->%%%d" tail head
  | Boundary_in { head } -> Format.fprintf ppf "in->%%%d" head
  | Boundary_out { tail } -> Format.fprintf ppf "%%%d->out" tail

let pp ppf t =
  Format.fprintf ppf "@[<h>cut(%.3f ms): %a@]" t.value
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_edge)
    t.edges

let sink_side_mem t id = List.mem id t.sink_side
