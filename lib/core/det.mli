(** Deterministic (sorted) hashtable draining for planner code.

    Raw [Hashtbl.iter]/[Hashtbl.fold] visit buckets in hash order — a
    nondeterminism hazard under domain-parallel planning and a landmine
    for content-addressed plan hashing.  Planner modules drain tables
    through these helpers instead; the source lint
    ({!Analysis.Lint.scan_planner_sources}) flags raw iteration. *)

val sorted_keys : ('a, 'b) Hashtbl.t -> 'a list
(** All keys, ascending ({!compare} order). *)

val sorted_bindings : ('a, 'b) Hashtbl.t -> ('a * 'b) list
(** All bindings, ascending by key. *)

val iter_sorted : ('a -> 'b -> unit) -> ('a, 'b) Hashtbl.t -> unit
(** [iter f tbl] in ascending key order. *)
