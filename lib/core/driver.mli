(** The ReSBM compiler driver — Algorithm 1.

    [compile prm g] partitions the DFG of the FHE program [g] into regions
    ({!Region}), has {!Btsmgr} derive a rescaling and minimal-level
    bootstrapping plan with {!Scalemgr}, {!Smoplc} and {!Btsplc}, and
    applies the plan ({!Plan}), returning a managed graph that satisfies
    every RNS-CKKS scale and level constraint, plus a {!Report}.

    The input graph must contain no SMOs or bootstraps yet. *)

val compile :
  ?config:Btsmgr.config ->
  ?name:string ->
  ?ms_opt:bool ->
  ?profile:Obs.Profile.t ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  Fhe_ir.Dfg.t * Report.t
(** [ms_opt] (default false) runs {!Passes.Ms_opt} after legalisation —
    the modswitch optimisation the paper grants the max-level managers for
    lowering excessively bootstrapped ciphertexts; the number of hoists it
    performs lands in {!Report.t.ms_opt_hoists}.

    Every phase (region build, plan, apply, ms_opt, latency, stats) is
    timed as a span, and the min-cut / planner counters are collected, in
    the ambient {!Obs} profile: a caller-supplied [?profile], or a fresh
    one otherwise.  Either way it is returned in {!Report.t.profile}.
    @raise Btsmgr.No_plan when no feasible plan exists for [l_max].
    @raise Plan.Apply_error when plan materialisation fails. *)
