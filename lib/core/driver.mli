(** The ReSBM compiler driver — Algorithm 1.

    [compile prm g] partitions the DFG of the FHE program [g] into regions
    ({!Region}), has {!Btsmgr} derive a rescaling and minimal-level
    bootstrapping plan with {!Scalemgr}, {!Smoplc} and {!Btsplc}, and
    applies the plan ({!Plan}), returning a managed graph that satisfies
    every RNS-CKKS scale and level constraint, plus a {!Report}.

    The input graph must contain no SMOs or bootstraps yet. *)

exception Verification_failed of string * Analysis.Diag.t list
(** Raised under [~verify_each:true] when a pass leaves the graph in an
    illegal state; carries the name of the offending pass
    ("region_build", "plan_apply" or "ms_opt") and the error-severity
    diagnostics that fired. *)

val certify_diags :
  Ckks.Params.t -> Fhe_ir.Dfg.t -> Report.t -> (string * Analysis.Diag.t list) list
(** Run the full certification battery on a compile result without
    raising: re-check every min-cut optimality certificate in
    {!Report.t.certificates} with {!Analysis.Certify} (group
    ["certify.cuts"]), prove level/capacity safety with
    {!Analysis.Absint.check_levels} (["certify.levels"]) and noise safety
    with {!Analysis.Absint.check_noise} (["certify.noise"]).  Returns the
    groups in that order; all lists empty means the plan is certified.
    Each group is timed as a [certify.*] span on the ambient profile. *)

val compile :
  ?config:Btsmgr.config ->
  ?name:string ->
  ?ms_opt:bool ->
  ?verify_each:bool ->
  ?certify:bool ->
  ?profile:Obs.Profile.t ->
  ?fuel:Fuel.t ->
  ?segment_scan:[ `Full | `Adjacent ] ->
  ?fallbacks:(string * string) list ->
  ?jobs:int ->
  ?cache:Plan_cache.t ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  Fhe_ir.Dfg.t * Report.t
(** [ms_opt] (default false) runs {!Passes.Ms_opt} after legalisation —
    the modswitch optimisation the paper grants the max-level managers for
    lowering excessively bootstrapped ciphertexts; the number of hoists it
    performs lands in {!Report.t.ms_opt_hoists}.

    [certify] (default false) runs {!certify_diags} on the result —
    including warm {!Plan_cache} hits, whose stored certificates are
    re-checked before being served, and before a cold result is stored,
    so a refuted plan never persists — raising {!Verification_failed}
    with the failing group name (["certify.cuts"], ["certify.levels"] or
    ["certify.noise"]) on any error-severity refutation.

    [verify_each] (default false) runs the {!Analysis.Verify} invariant
    verifier after every pass — region build (structural and region
    invariants; the graph is not yet scale-legal there), plan application
    and [ms_opt] (full legality) — failing fast with
    {!Verification_failed} naming the offending pass instead of letting a
    planner bug surface as a confusing downstream failure or a silently
    wrong latency.  Each verification is timed as a [verify.<pass>] span
    (with per-rule [verify.<rule>] children) in the ambient profile.

    [fuel] and [segment_scan] are forwarded to {!Btsmgr.plan};
    [fallbacks] (default empty) is recorded verbatim in the report —
    {!compile_robust} uses both; plain callers leave them alone.

    Every phase (region build, plan, apply, ms_opt, latency, stats) is
    timed as a span, and the min-cut / planner counters are collected, in
    the ambient {!Obs} profile: a caller-supplied [?profile], or a fresh
    one otherwise.  Either way it is returned in {!Report.t.profile}.

    [jobs] (default: {!Par.resolve}, i.e. [RESBM_JOBS] or 1) fans the
    DP's candidate-segment evaluations and min-cut solves across a
    domain pool; the plan and every deterministic report field are
    bit-identical to [jobs = 1] (only [compile_ms] and the profile,
    which measure wall clock, differ).

    [cache] consults a {!Plan_cache} before planning and stores the
    result after: a hit returns a bit-identical plan and report (with
    [compile_ms] set to the lookup time, and [fallbacks] to this call's
    argument) without running any phase — including [verify_each] —
    while a miss also threads the cache's incremental region memo into
    the DP so unchanged regions of edited models are not re-solved.
    @raise Btsmgr.No_plan when no feasible plan exists for [l_max].
    @raise Plan.Apply_error when plan materialisation fails.
    @raise Fuel.Exhausted when a caller-supplied step budget runs out.
    @raise Verification_failed under [~verify_each:true], see above. *)

(** One rung of a {!compile_robust} fallback chain. *)
type tier = {
  tier_name : string;  (** Lands in {!Report.t.manager} / [fallbacks]. *)
  tier_config : Btsmgr.config;
  tier_scan : [ `Full | `Adjacent ];
}

val waterline_config : Btsmgr.config
(** EVA-style degraded planning: waterline rescaling, region-end
    bootstraps at [l_max], no min-cuts, no transit pricing. *)

val default_chain : tier list
(** [resbm → waterline → eager]: the paper's full min-cut DP, then
    waterline planning over a full segment scan, then the linear eager
    strategy (one region per segment, [`Adjacent]). *)

val planner_steps : Obs.Profile.t -> int
(** The fuel-metered planning work a compile performed, read back from
    its {!Report.t.profile}: the sum of the [btsmgr.segment_evals],
    [smoplc.cuts] and [btsplc.cuts] counters — exactly the steps a
    {!Fuel} budget meters.  0 for a warm plan-cache hit (no planning
    ran). *)

val calibrated_fuel_steps :
  ?percentile:float -> ?headroom:float -> Report.t list -> int
(** [calibrated_fuel_steps reports] derives a [fuel_steps] budget for
    {!compile_robust} from the compile profiles of past runs:
    {!Fuel.calibrate} (nearest-rank [percentile], default 0.95, padded by
    [headroom], default 1.5) over {!planner_steps} of each report.
    Feed it cold-compile reports of the workload mix you expect; the
    returned budget admits the chosen fraction of them without
    degradation.  @raise Invalid_argument on an empty list. *)

val compile_robust :
  ?chain:tier list ->
  ?fuel_steps:int ->
  ?ms_opt:bool ->
  ?verify_each:bool ->
  ?profile:Obs.Profile.t ->
  ?jobs:int ->
  ?cache:Plan_cache.t ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  Fhe_ir.Dfg.t * Report.t
(** Graceful planner degradation: try each tier of [chain] (default
    {!default_chain}) in order; a tier failing with {!Btsmgr.No_plan},
    {!Plan.Apply_error}, {!Fuel.Exhausted}, {!Region_eval.Infeasible} or
    {!Verification_failed} falls through to the next instead of raising.
    [fuel_steps] bounds every non-terminal tier's planning steps
    (segment evaluations + min-cuts); the terminal tier always runs with
    unlimited fuel.  Each downgrade is recorded in
    {!Report.t.fallbacks} (tier name, reason), counted in the
    [planner_fallbacks_total{tier}] metric and marked as a
    ["planner_fallback"] trace instant.  Exceptions that indicate a
    broken input rather than a planner dead-end (e.g.
    [Invalid_argument]) are not caught; the terminal tier's failure, if
    any, escapes as-is.
    @raise Invalid_argument on an empty [chain]. *)
