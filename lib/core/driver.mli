(** The ReSBM compiler driver — Algorithm 1.

    [compile prm g] partitions the DFG of the FHE program [g] into regions
    ({!Region}), has {!Btsmgr} derive a rescaling and minimal-level
    bootstrapping plan with {!Scalemgr}, {!Smoplc} and {!Btsplc}, and
    applies the plan ({!Plan}), returning a managed graph that satisfies
    every RNS-CKKS scale and level constraint, plus a {!Report}.

    The input graph must contain no SMOs or bootstraps yet. *)

exception Verification_failed of string * Analysis.Diag.t list
(** Raised under [~verify_each:true] when a pass leaves the graph in an
    illegal state; carries the name of the offending pass
    ("region_build", "plan_apply" or "ms_opt") and the error-severity
    diagnostics that fired. *)

val compile :
  ?config:Btsmgr.config ->
  ?name:string ->
  ?ms_opt:bool ->
  ?verify_each:bool ->
  ?profile:Obs.Profile.t ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  Fhe_ir.Dfg.t * Report.t
(** [ms_opt] (default false) runs {!Passes.Ms_opt} after legalisation —
    the modswitch optimisation the paper grants the max-level managers for
    lowering excessively bootstrapped ciphertexts; the number of hoists it
    performs lands in {!Report.t.ms_opt_hoists}.

    [verify_each] (default false) runs the {!Analysis.Verify} invariant
    verifier after every pass — region build (structural and region
    invariants; the graph is not yet scale-legal there), plan application
    and [ms_opt] (full legality) — failing fast with
    {!Verification_failed} naming the offending pass instead of letting a
    planner bug surface as a confusing downstream failure or a silently
    wrong latency.  Each verification is timed as a [verify.<pass>] span
    (with per-rule [verify.<rule>] children) in the ambient profile.

    Every phase (region build, plan, apply, ms_opt, latency, stats) is
    timed as a span, and the min-cut / planner counters are collected, in
    the ambient {!Obs} profile: a caller-supplied [?profile], or a fresh
    one otherwise.  Either way it is returned in {!Report.t.profile}.
    @raise Btsmgr.No_plan when no feasible plan exists for [l_max].
    @raise Plan.Apply_error when plan materialisation fails.
    @raise Verification_failed under [~verify_each:true], see above. *)
