(** Compilation report — the measurements behind Tables 3–5 and Figures
    6–7, plus the per-phase profile behind the perf trajectory. *)

type certificate_entry = {
  ce_pass : string;  (** ["smoplc"] or ["btsplc"]. *)
  ce_region : int;
  ce_cert : Graphlib.Maxflow.certificate;
  ce_node_of : int array;
      (** Flow-network node -> DFG node id of the graph the placement ran
          on ([-1] for super source/sink); see {!Cut.t.node_of}.  This is
          what lets {!Explain} read the certificate's saturated arcs back
          as DFG edges and re-solve counterfactuals per bootstrap. *)
}

type t = {
  manager : string;
  compile_ms : float;  (** Wall-clock time of {!Driver.compile}. *)
  latency_ms : float;  (** Static Table 2 latency of the managed graph. *)
  stats : Fhe_ir.Stats.t;
  segments : (int * int) list;  (** Chosen bootstrap segments. *)
  repair_bootstraps : int;
  ms_opt_hoists : int;
      (** Modswitch hoists performed by {!Passes.Ms_opt} (0 unless the
          manager enables it). *)
  profile : Obs.Profile.t;
      (** Per-phase wall times and pipeline counters collected during the
          compile; see README "Profiling" for the JSON schema. *)
  region_count : int;  (** Regions of the partition the plan was built on. *)
  region_of : int array;
      (** Region attribution of the {e managed} graph, indexed by node id:
          original nodes keep their {!Region.t} assignment, management
          nodes inserted by plan application / legalisation / ms_opt
          inherit the region of the value they were inserted after; [-1]
          when unattributable.  This is what gives runtime traces
          ({!Fhe_ir.Interp.run}) their per-region tracks. *)
  fallbacks : (string * string) list;
      (** Planner tiers that failed before the one that produced this
          report, in attempt order, with the downgrade reason (e.g.
          [("resbm", "fuel exhausted in plan")]).  Empty for a first-try
          compile; non-empty means {!Driver.compile_robust} degraded and
          [manager] names the surviving tier. *)
  certificates : certificate_entry list;
      (** Min-cut optimality certificates collected from the plan, in
          region order.  Every min-cut the placement algorithms solved
          carries one; forced (non-optimised) cuts do not.  Checked by
          {!Analysis.Certify} under [Driver.compile ~certify:true] and
          [resbm certify]; preserved verbatim by {!Plan_cache}, so warm
          hits stay checkable. *)
}

val pp : Format.formatter -> t -> unit

val to_json : t -> Obs.Json.t
(** Machine-readable report: scalar fields, stats, and the full profile
    (spans, counters, series). *)
