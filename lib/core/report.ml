type certificate_entry = {
  ce_pass : string;
  ce_region : int;
  ce_cert : Graphlib.Maxflow.certificate;
  ce_node_of : int array;
}

type t = {
  manager : string;
  compile_ms : float;
  latency_ms : float;
  stats : Fhe_ir.Stats.t;
  segments : (int * int) list;
  repair_bootstraps : int;
  ms_opt_hoists : int;
  profile : Obs.Profile.t;
  region_count : int;
  region_of : int array;
  fallbacks : (string * string) list;
  certificates : certificate_entry list;
}

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: compiled in %.3f ms, estimated latency %.1f ms@,%a@,segments: %s%s%s@]"
    t.manager t.compile_ms t.latency_ms Fhe_ir.Stats.pp t.stats
    (String.concat " " (List.map (fun (s, d) -> Printf.sprintf "[%d,%d]" s d) t.segments))
    (if t.repair_bootstraps > 0 then
       Printf.sprintf " (+%d repair bootstraps)" t.repair_bootstraps
     else "")
    (if t.ms_opt_hoists > 0 then
       Printf.sprintf " (%d modswitch hoists)" t.ms_opt_hoists
     else "");
  let phases = List.filter (fun s -> s.Obs.Profile.depth = 0) (Obs.Profile.spans t.profile) in
  if phases <> [] then begin
    Format.fprintf ppf "@,phases:";
    List.iter
      (fun s -> Format.fprintf ppf " %s %.3fms" s.Obs.Profile.name s.Obs.Profile.dur_ms)
      phases
  end;
  if t.fallbacks <> [] then begin
    Format.fprintf ppf "@,degraded:";
    List.iter
      (fun (tier, reason) -> Format.fprintf ppf "@,  %s failed: %s" tier reason)
      t.fallbacks
  end

let to_json t =
  let open Obs.Json in
  Obj
    [
      ("manager", String t.manager);
      ("compile_ms", Float t.compile_ms);
      ("latency_ms", Float t.latency_ms);
      ("region_count", Int t.region_count);
      ("ms_opt_hoists", Int t.ms_opt_hoists);
      ("repair_bootstraps", Int t.repair_bootstraps);
      ( "segments",
        List (List.map (fun (s, d) -> List [ Int s; Int d ]) t.segments) );
      ( "stats",
        Obj
          [
            ("nodes", Int t.stats.Fhe_ir.Stats.nodes);
            ("bootstrap_count", Int t.stats.Fhe_ir.Stats.bootstrap_count);
            ( "bootstrap_levels",
              List
                (List.map
                   (fun (l, c) -> List [ Int l; Int c ])
                   t.stats.Fhe_ir.Stats.bootstrap_levels) );
            ("executed_rescales", Int t.stats.Fhe_ir.Stats.executed_rescales);
            ("executed_modswitches", Int t.stats.Fhe_ir.Stats.executed_modswitches);
            ("max_depth", Int t.stats.Fhe_ir.Stats.max_depth);
          ] );
      ( "fallbacks",
        List
          (List.map
             (fun (tier, reason) ->
               Obj [ ("tier", String tier); ("reason", String reason) ])
             t.fallbacks) );
      ("certificates", Int (List.length t.certificates));
      ("profile", Obs.Profile.to_json t.profile);
    ]
