(** Plan explainability: cost attribution, per-bootstrap rationale mined
    from min-cut optimality certificates, and a renumbering-stable
    structural plan digest.

    This is the graph-aware producer half of the explain stack; the
    generic rendering half (waterfall folding, JSON diffing, Perfetto
    overlays) is {!Obs.Explain}.  Surfaced by [resbm explain] and
    [resbm plan-diff], and embedded per bench cell as [plan_digest] so
    [resbm bench-diff] can explain a gated metric regression at the plan
    level. *)

val labels : Fhe_ir.Dfg.t -> int64 array
(** Canonical content labels, indexed by node id: [label(n)] hashes the
    node's kind, frequency and the labels of its arguments (in order), so
    two nodes agree iff their entire upstream computations are
    structurally identical.  Invariant under node renumbering — the
    anchor of every digest key. *)

val hex : int64 -> string
(** Label rendering used in digests ([%016Lx]). *)

val attribution :
  ?top:int -> Ckks.Params.t -> managed:Fhe_ir.Dfg.t -> Report.t -> Obs.Explain.waterfall
(** Fold the frequency-weighted Table 2 cost of every managed-graph node
    into a region -> op-kind -> node waterfall.  The total is
    {!Fhe_ir.Latency.total} over the same analysis, so the waterfall
    attributes 100% of the predicted latency; [shares] carry the
    bootstrap / rescale / modswitch headline split.  [top] bounds the
    individually-listed nodes per bucket (default 5, remainder folded,
    never dropped). *)

type counterfactual = {
  cf_value : float;
      (** Value of the cheapest cut that avoids this bootstrap's arcs;
          [infinity] when no alternative exists (the placement is forced). *)
  cf_delta : float;  (** [cf_value - cut value]: the cost of moving it. *)
  cf_anchors : int list;
      (** The next-best placement: DFG nodes the alternative cut would
          bootstrap after. *)
}

type rationale = {
  ra_bootstrap : int;  (** Managed-graph bootstrap node id. *)
  ra_anchor : int;
      (** Original-graph node the bootstrap was inserted after (the cut
          tail or boundary producer); [-1] if unresolvable. *)
  ra_region : int;  (** Region of the owning cut (or of the node itself). *)
  ra_target : int;  (** Bootstrap target level. *)
  ra_cost_ms : float;  (** Freq-weighted Table 2 cost of this bootstrap. *)
  ra_cut_value : float option;  (** The region's certified min-cut value. *)
  ra_saturated : (int * int) list;
      (** The certificate's saturated crossing arcs pinning this
          placement, as DFG (tail, head) pairs ([-1] = super source/sink). *)
  ra_counterfactual : counterfactual option;
  ra_note : string;  (** ["min-cut"], or why no certificate applies. *)
}

val rationales :
  Ckks.Params.t ->
  orig_nodes:int ->
  managed:Fhe_ir.Dfg.t ->
  Report.t ->
  rationale list
(** One rationale per live bootstrap of the managed graph, in node-id
    order.  [orig_nodes] is the node count of the graph the planner ran
    on (management nodes have ids [>= orig_nodes]); each bootstrap is
    anchored back to its original insertion point, matched to the
    {!Report.certificate_entry} whose cut crosses that anchor, and — when
    matched — given a counterfactual by re-solving the region's min-cut
    with its arcs forbidden ({!Graphlib.Maxflow.of_certificate}). *)

val digest : Ckks.Params.t -> managed:Fhe_ir.Dfg.t -> Report.t -> Obs.Json.t
(** Structural plan digest, stable under node renumbering: headline
    planner metrics, regions keyed by content signature (sorted member
    labels) with level/scale histograms, placement label lists and
    certified cut values, and per-management-node levels/scales keyed by
    content label.  Floats are rounded to a microsecond so summation
    order cannot leak into the comparison.  Two digests are structurally
    equal ({!Obs.Explain.diff_json} returns []) iff the plans are the
    same up to node renumbering. *)

val pp_rationale : Fhe_ir.Dfg.t -> Format.formatter -> rationale -> unit
(** Render one rationale against the managed graph (for op-kind names). *)

val rationale_to_json : rationale -> Obs.Json.t
