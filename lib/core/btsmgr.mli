(** BTSMGR — minimal-level bootstrapping management across the DFG
    (Algorithm 2).

    Dynamic programming over the region sequence.  A segment [(src, dst)]
    models: the ciphertexts enter [src] with just enough levels for its
    rescales, rescale to level 0, bootstrap to
    [l_bts = |RescalingRegions \ {src}|] — the {e minimal} level that
    reaches [dst] at level 0 — and descend one level per rescaling region
    of [(src, dst]].  Segment latency sums the {!Region_eval} cost of
    every region in [[src, dst)] (the [dst] region is excluded: it becomes
    the source region of the following segment).  The first segment may
    run on the fresh input levels without a bootstrap.

    Setting [min_level_bts = false] forces every bootstrap to [l_max],
    reproducing the elevation policy of Fhelipe and DaCapo (the
    [ReSBM_max] substitution variant). *)

type config = {
  min_level_bts : bool;
  smo_mode : Region_eval.smo_mode;
  bts_mode : Region_eval.bts_mode;
  price_transits : bool;
      (** Charge the DP the exact repair cost of ciphertexts flying over a
          bootstrap boundary below their consumer's level (default true;
          disabling it is an ablation — boundaries then ignore liveness). *)
}

val resbm_config : config
(** Minimal-level bootstrapping with min-cut SMO and bootstrap placement. *)

type bts_action = {
  target : int;  (** Bootstrap target level. *)
  cut : Cut.t option;  (** [None]: directly after the rescale chain. *)
  subgraph : int list;
}

type region_action = {
  rescales : int;
  entry_level : int;
  entry_scale : int;
  smo_cut : Cut.t option;  (** [None] when [rescales = 0]. *)
  bts : bts_action option;
}

type plan = {
  actions : region_action array;  (** Indexed by region. *)
  segments : (int * int) list;  (** Chosen [(src, dst)] pairs in order. *)
  dp_latency_ms : float;  (** The DP objective [minLAT] plus the final
                              region's cost (before legalisation). *)
}

exception No_plan of string

val plan :
  ?config:config ->
  ?fuel:Fuel.t ->
  ?segment_scan:[ `Full | `Adjacent ] ->
  ?jobs:int ->
  ?memo:Region_eval.Memo.t * (int -> int64) ->
  Region.t ->
  Ckks.Params.t ->
  plan
(** [fuel] (default unlimited) is spent one unit per DP segment evaluation
    and one per min-cut inside {!Region_eval} — the budget that lets
    {!Driver.compile_robust} bound a tier's planning work.

    [segment_scan] (default [`Full]) controls the DP's destination scan:
    [`Adjacent] restricts every segment to one region ([dst = src + 1]),
    the linear-time eager strategy of the last fallback tier — no search,
    a bootstrap at every boundary.

    [jobs] (default 1) fans candidate-segment evaluations — and through
    them the per-region min-cut solves — across a {!Par} domain pool in
    dst-ordered chunks.  The resulting plan is bit-identical to the
    sequential scan for any [jobs]; with a {e finite} [fuel] the lookahead
    may meter a few extra segment evaluations past the DP's stopping
    point, so exhaustion can trigger at a different step than at [jobs=1].

    [memo] is a cross-compile {!Region_eval.Memo} plus per-region content
    hashes (see {!Plan_cache}): region solutions are reused across
    compiles for regions whose hash is unchanged.

    @raise No_plan when no feasible bootstrapping plan exists (e.g. a
    single region consumes more than [l_max] levels).
    @raise Fuel.Exhausted when the step budget runs out. *)
