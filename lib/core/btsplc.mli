(** BTSPLC — optimal intra-region bootstrap placement via min-cut
    (Algorithm 5).

    Operates on the level-0 portion of a region: the nodes below the
    rescale cut chosen by SMOPLC (or the whole region when no rescale was
    needed).  The construction mirrors SMOPLC but runs in reverse: placing
    the bootstrap {e early} (right after the rescale) makes every
    downstream node execute at the bootstrap target level [l_bts] instead
    of level 0, so edge [(m, n)] is weighted with the bootstrap cost
    before [n] plus the cumulative latency increase of [n] and its
    in-subgraph successors at [l_bts] versus level 0, divided by [n]'s
    in-degree.  Bootstrapping at the region's end (after the live-out
    producers) is the zero-increase baseline. *)

val run :
  ?fuel:Fuel.t ->
  Region.t ->
  Ckks.Params.t ->
  region:int ->
  lbts:int ->
  subgraph:int list ->
  Cut.t
(** [subgraph] lists the level-0 member ids (topological order).  Each
    call spends one unit of [fuel] (default {!Fuel.unlimited}).
    @raise Invalid_argument on an empty subgraph or [lbts < 1].
    @raise Fuel.Exhausted when the step budget runs out. *)
