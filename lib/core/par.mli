(** A bounded [Domain] work-pool for planner fan-out.

    Results are returned in input order regardless of scheduling, worker
    domains inherit the parent's (mutex-protected) metrics registry so
    counters like fuel metering stay exact, and each worker gets a
    private {!Obs.Profile} merged back deterministically after the join.
    With [jobs <= 1] (the default) everything runs sequentially on the
    calling domain — no pool, no overhead, byte-identical behavior to
    pre-parallel code. *)

val max_jobs : int
(** Upper bound on the domain count (64). *)

val default_jobs : unit -> int
(** Domain count from the [RESBM_JOBS] environment variable (clamped to
    [1, max_jobs]); 1 when unset or unparsable. *)

val resolve : int option -> int
(** [resolve jobs] is the effective domain count: an explicit request
    (clamped) wins over [RESBM_JOBS], which wins over 1. *)

val tabulate : ?jobs:int -> ?label:string -> int -> (int -> 'a) -> 'a array
(** [tabulate ~jobs n f] is [Array.init n f] evaluated by up to [jobs]
    domains.  If several tasks raise, the exception of the {e smallest}
    index is re-raised (the one a sequential run would hit first); other
    tasks may or may not have run — side effects beyond the result array
    are the caller's business.

    Worker domains inherit the parent's ambient metrics registry and log
    sink.  When an {!Obs.Rt} collector is ambient ({!Obs.with_rt}), each
    pool run records per-worker telemetry (tasks, busy/idle ms, queue
    wait, per-task spans) under [label] (default ["par"]) — and
    [par_tasks_total] / [par_busy_ms] / [par_idle_ms] /
    [par_queue_wait_ms] metrics labelled by pool and worker when a
    registry is also ambient.  Without a collector the drain loop reads
    no clocks, and with [jobs <= 1] nothing here runs at all. *)

val map : ?jobs:int -> ?label:string -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] is [Array.map f a] via {!tabulate}. *)
