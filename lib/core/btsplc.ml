open Fhe_ir

let op_cost g ~level id =
  let node = Dfg.node g id in
  match Op.cost_op node.Dfg.kind with
  | None -> 0.0
  | Some op -> float_of_int node.Dfg.freq *. Ckks.Cost_model.cost op ~level

let run ?(fuel = Fuel.unlimited) regioned prm ~region ~lbts ~subgraph =
  Fuel.spend fuel;
  ignore region;
  if lbts < 1 then invalid_arg "Btsplc.run: bootstrap target below 1";
  if subgraph = [] then invalid_arg "Btsplc.run: empty subgraph";
  ignore prm;
  let g = regioned.Region.dfg in
  let index = Hashtbl.create 32 in
  List.iteri (fun i id -> Hashtbl.add index id i) subgraph;
  let in_sub id = Hashtbl.mem index id in
  let k = List.length subgraph in
  let unit_cost = Ckks.Cost_model.cost Ckks.Cost_model.Bootstrap ~level:lbts in
  let bts_cost id = float_of_int (Dfg.node g id).Dfg.freq *. unit_cost in
  let internal_succs id = List.filter in_sub (Dfg.succs g id) in
  let is_sink id = internal_succs id = [] in
  let is_liveout id =
    List.mem id (Dfg.outputs g)
    || List.exists (fun u -> not (in_sub u)) (Dfg.succs g id)
  in
  (* Cumulative increase of running a node and its in-subgraph successors
     at l_bts instead of level 0 (Algorithm 5, lines 5-10, reverse topo). *)
  let linc = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let v =
        if is_sink id then 0.0
        else
          let own = op_cost g ~level:lbts id -. op_cost g ~level:0 id in
          List.fold_left
            (fun acc m -> acc +. Option.value (Hashtbl.find_opt linc m) ~default:0.0)
            own (internal_succs id)
      in
      Hashtbl.add linc id v)
    (List.rev subgraph);
  (* External ciphertext producers feeding the subgraph.  A bootstrap on a
     boundary edge is inserted once after the producer and serves every
     head it feeds, so each producer becomes one flow node whose
     source-side arc carries the full (grouped) insertion cost. *)
  let external_preds id =
    List.filter
      (fun p -> Op.produces_ct (Dfg.node g p).Dfg.kind && not (in_sub p))
      (Dfg.preds g id)
  in
  let producers = Hashtbl.create 8 in
  (* producer id -> (flow node, heads) *)
  let next_flow = ref (k + 2) in
  List.iter
    (fun h ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt producers p with
          | Some (fn, heads) -> Hashtbl.replace producers p (fn, h :: heads)
          | None ->
              Hashtbl.add producers p (!next_flow, [ h ]);
              incr next_flow)
        (external_preds h))
    subgraph;
  let net = Graphlib.Maxflow.create !next_flow in
  let s = k and t = k + 1 in
  (* Source-side arcs through the producer nodes, in producer-id order:
     arc insertion order steers the augmenting-path search, so bucket
     order would leak into min-cut tie-breaks. *)
  Det.iter_sorted
    (fun p (fn, heads) ->
      let share =
        List.fold_left
          (fun acc h ->
            let indeg =
              List.length (external_preds h)
              + List.length (List.filter in_sub (Dfg.preds g h))
            in
            acc +. (Hashtbl.find linc h /. float_of_int (max indeg 1)))
          0.0 heads
      in
      Maxflow_util.add_with_reverse net ~src:s ~dst:fn ~cap:(bts_cost p +. share);
      List.iter
        (fun h -> Graphlib.Maxflow.add_edge net ~src:fn ~dst:(Hashtbl.find index h) ~cap:infinity)
        heads)
    producers;
  List.iter
    (fun id ->
      let i = Hashtbl.find index id in
      let int_preds = List.filter in_sub (Dfg.preds g id) in
      let indeg = List.length (external_preds id) + List.length int_preds in
      (* Entry nodes with no inputs at all still anchor to the source so
         their downstream paths get covered. *)
      if indeg = 0 then Maxflow_util.add_with_reverse net ~src:s ~dst:i ~cap:infinity;
      let weight_in =
        if indeg = 0 then infinity
        else if (Dfg.node g id).Dfg.kind = Op.Relin then infinity
          (* never separate a relin from its multiplication *)
        else (bts_cost id +. Hashtbl.find linc id) /. float_of_int indeg
      in
      List.iter
        (fun p ->
          let wp = if (Dfg.node g p).Dfg.kind = Op.Mul_cc then infinity else weight_in in
          Maxflow_util.add_with_reverse net ~src:(Hashtbl.find index p) ~dst:i ~cap:wp)
        int_preds;
      (* Baseline: bootstrap after the live-out producers (region end). *)
      if is_sink id || is_liveout id then
        Maxflow_util.add_with_reverse net ~src:i ~dst:t ~cap:(bts_cost id))
    subgraph;
  let mc = Graphlib.Maxflow.min_cut net ~source:s ~sink:t in
  let cert = Graphlib.Maxflow.certificate net ~source:s ~sink:t mc in
  Obs.incr "btsplc.cuts";
  Obs.observe "btsplc.cut_value" mc.Graphlib.Maxflow.value;
  Obs.observe "btsplc.subgraph_nodes" (float_of_int k);
  let node_at = Array.of_list subgraph in
  let producer_heads = Hashtbl.create 8 in
  Det.iter_sorted (fun _ (fn, heads) -> Hashtbl.add producer_heads fn heads) producers;
  let edges =
    List.concat_map
      (fun (u, v) ->
        if u = s then
          (* Arc into a producer node: bootstrap its boundary edges. *)
          match Hashtbl.find_opt producer_heads v with
          | Some heads -> List.map (fun h -> Cut.Boundary_in { head = h }) heads
          | None -> [ Cut.Boundary_in { head = node_at.(v) } ]
        else if v = t then [ Cut.Boundary_out { tail = node_at.(u) } ]
        else [ Cut.Internal { tail = node_at.(u); head = node_at.(v) } ])
      mc.Graphlib.Maxflow.edges
  in
  let sink_side =
    List.filteri (fun i _ -> not mc.Graphlib.Maxflow.source_side.(i)) subgraph
  in
  let node_of = Array.make !next_flow (-1) in
  Array.iteri (fun i id -> node_of.(i) <- id) node_at;
  Hashtbl.iter (fun p (fn, _) -> node_of.(fn) <- p) producers;
  { Cut.edges; value = mc.Graphlib.Maxflow.value; sink_side; cert = Some cert; node_of }
