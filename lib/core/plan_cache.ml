open Fhe_ir

(* Content-addressed plan cache.

   A compile is a pure function of (program structure, CKKS parameters,
   manager configuration, cost model) — everything else (wall clock,
   profiling) is incidental.  We hash exactly those inputs with FNV-1a
   (64-bit) over a canonical serialisation: live nodes in id order, then
   outputs, then parameter fields, then the manager identity, then a
   fingerprint of the cost-model tables.  The determinism fixes in
   btsplc/plan/region_eval (sorted hashtable drains) are what make "equal
   hash input" imply "equal plan output".

   Three tiers:
   - in-memory LRU of compiled plans (graph + report), exact-key;
   - optional on-disk tier (one JSON file per key) surviving processes;
   - an incremental tier: a {!Region_eval.Memo} keyed by region *content*
     hash, so re-planning an edited model re-solves only regions whose
     hash changed. *)

(* ---------- FNV-1a ---------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let mix_byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let mix_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := mix_byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let mix_int h v = mix_int64 h (Int64.of_int v)
let mix_bool h b = mix_byte h (if b then 1 else 0)
let mix_float h v = mix_int64 h (Int64.bits_of_float v)

let mix_string h s =
  let h = ref (mix_int h (String.length s)) in
  String.iter (fun c -> h := mix_byte !h (Char.code c)) s;
  !h

let mix_opt_int h = function None -> mix_byte h 0xfe | Some v -> mix_int (mix_byte h 1) v

let mix_kind h (k : Op.kind) =
  match k with
  | Op.Input { name; level; scale_bits } ->
      mix_opt_int (mix_opt_int (mix_string (mix_byte h 0) name) level) scale_bits
  | Op.Const { name } -> mix_string (mix_byte h 1) name
  | Op.Add_cc -> mix_byte h 2
  | Op.Add_cp -> mix_byte h 3
  | Op.Mul_cc -> mix_byte h 4
  | Op.Mul_cp -> mix_byte h 5
  | Op.Rotate k -> mix_int (mix_byte h 6) k
  | Op.Relin -> mix_byte h 7
  | Op.Rescale -> mix_byte h 8
  | Op.Modswitch -> mix_byte h 9
  | Op.Bootstrap t -> mix_int (mix_byte h 10) t

let hex h = Printf.sprintf "%016Lx" h

(* ---------- fingerprints ---------- *)

let fingerprint_levels = 24

(* The cost model is compiled in, but hashing its sampled surface means a
   rebuilt binary with different Table 2 numbers cannot resurrect stale
   disk entries. *)
let cost_fingerprint =
  lazy
    (let h = ref fnv_offset in
     List.iteri
       (fun i op ->
         h := mix_int !h i;
         for level = 0 to fingerprint_levels do
           h := mix_float !h (Ckks.Cost_model.cost op ~level)
         done)
       Ckks.Cost_model.all_ops;
     !h)

let mix_params h (prm : Ckks.Params.t) =
  h
  |> Fun.flip mix_int prm.Ckks.Params.log2_degree
  |> Fun.flip mix_int prm.Ckks.Params.scale_bits
  |> Fun.flip mix_int prm.Ckks.Params.waterline_bits
  |> Fun.flip mix_int prm.Ckks.Params.q0_bits
  |> Fun.flip mix_int prm.Ckks.Params.l_max
  |> Fun.flip mix_int prm.Ckks.Params.input_level
  |> Fun.flip mix_int prm.Ckks.Params.input_scale_bits
  |> Fun.flip mix_int prm.Ckks.Params.bootstrap_depth

let ctx_hash prm = mix_int64 (mix_params fnv_offset prm) (Lazy.force cost_fingerprint)

let mix_graph h g =
  let h = ref (mix_int h (Dfg.node_count g)) in
  List.iter
    (fun (n : Dfg.node) ->
      h := mix_int !h n.Dfg.id;
      h := mix_kind !h n.Dfg.kind;
      h := mix_int !h n.Dfg.freq;
      h := mix_int !h (Array.length n.Dfg.args);
      Array.iter (fun a -> h := mix_int !h a) n.Dfg.args)
    (Dfg.live_nodes g);
  List.iter (fun o -> h := mix_int !h o) (Dfg.outputs g);
  !h

let smo_tag = function
  | Region_eval.Smo_min_cut -> 0
  | Region_eval.Smo_eva -> 1
  | Region_eval.Smo_pars -> 2

let bts_tag = function Region_eval.Bts_min_cut -> 0 | Region_eval.Bts_region_end -> 1

let key ~(config : Btsmgr.config) ~name ~ms_opt ~segment_scan prm g =
  let h =
    fnv_offset |> Fun.flip mix_string name
    |> Fun.flip mix_bool config.Btsmgr.min_level_bts
    |> Fun.flip mix_byte (smo_tag config.Btsmgr.smo_mode)
    |> Fun.flip mix_byte (bts_tag config.Btsmgr.bts_mode)
    |> Fun.flip mix_bool config.Btsmgr.price_transits
    |> Fun.flip mix_bool ms_opt
    |> Fun.flip mix_byte (match segment_scan with `Full -> 0 | `Adjacent -> 1)
  in
  let h = mix_params h prm in
  let h = mix_int64 h (Lazy.force cost_fingerprint) in
  hex (mix_graph h g)

(* Per-region content hash: everything {!Region_eval.compute} reads about
   a region besides the explicit memo-key fields — members (ids, kinds,
   freqs, args), the kind/freq of external producers feeding them, each
   member's live-out shape — plus the parameter/cost context.  Actual
   node ids are hashed on purpose: memoised cut results name nodes by id,
   so they may only transfer between graphs where the region's ids are
   identical (true for prefix-preserving model edits). *)
let region_hashes prm (regioned : Region.t) =
  let g = regioned.Region.dfg in
  let outputs = Dfg.outputs g in
  let ctx = ctx_hash prm in
  Array.init regioned.Region.count (fun r ->
      let members = Region.members regioned r in
      let h = ref (mix_int (mix_int64 fnv_offset ctx) (Array.length members)) in
      Array.iter
        (fun id ->
          let n = Dfg.node g id in
          h := mix_int !h id;
          h := mix_kind !h n.Dfg.kind;
          h := mix_int !h n.Dfg.freq;
          Array.iter (fun a -> h := mix_int !h a) n.Dfg.args;
          List.iter
            (fun p ->
              if regioned.Region.region_of.(p) <> r then begin
                let pn = Dfg.node g p in
                h := mix_int !h p;
                h := mix_kind !h pn.Dfg.kind;
                h := mix_int !h pn.Dfg.freq
              end)
            (Dfg.preds g id);
          let out =
            List.mem id outputs
            || List.exists (fun u -> regioned.Region.region_of.(u) <> r) (Dfg.succs g id)
          in
          h := mix_bool !h out)
        members;
      !h)

(* ---------- the cache ---------- *)

type entry = { e_graph : Dfg.t; e_report : Report.t; mutable e_tick : int }

type t = {
  capacity : int;
  dir : string option;
  tbl : (string, entry) Hashtbl.t;
  lock : Mutex.t;
  memo : Region_eval.Memo.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable disk_hits : int;
}

let default_capacity =
  match Option.bind (Sys.getenv_opt "RESBM_CACHE_CAP") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> 64

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ?(capacity = default_capacity) ?dir () =
  Option.iter mkdir_p dir;
  {
    capacity = max 1 capacity;
    dir;
    tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    memo = Region_eval.Memo.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    disk_hits = 0;
  }

let memo t = t.memo
let dir t = t.dir

(* ---------- disk tier ---------- *)

(* Schema 2 added min-cut optimality certificates; schema 3 added the
   flow-node -> DFG-node mapping per certificate (the basis of the
   explain subcommand's counterfactual rationale).  Entries with an older
   schema are treated as misses and recompiled rather than served without
   their evidence. *)
let disk_schema = 3

let path_of t k = Option.map (fun d -> Filename.concat d (k ^ ".json")) t.dir

let kind_json (k : Op.kind) =
  let open Obs.Json in
  match k with
  | Op.Input { name; level; scale_bits } ->
      Obj
        [
          ("op", String "input");
          ("name", String name);
          ("level", match level with Some l -> Int l | None -> Null);
          ("scale", match scale_bits with Some s -> Int s | None -> Null);
        ]
  | Op.Const { name } -> Obj [ ("op", String "const"); ("name", String name) ]
  | Op.Add_cc -> Obj [ ("op", String "add_cc") ]
  | Op.Add_cp -> Obj [ ("op", String "add_cp") ]
  | Op.Mul_cc -> Obj [ ("op", String "mul_cc") ]
  | Op.Mul_cp -> Obj [ ("op", String "mul_cp") ]
  | Op.Rotate k -> Obj [ ("op", String "rotate"); ("k", Int k) ]
  | Op.Relin -> Obj [ ("op", String "relin") ]
  | Op.Rescale -> Obj [ ("op", String "rescale") ]
  | Op.Modswitch -> Obj [ ("op", String "modswitch") ]
  | Op.Bootstrap t -> Obj [ ("op", String "bootstrap"); ("target", Int t) ]

let kind_of_json j =
  let open Obs.Json in
  let str k = match member k j with Some (String s) -> Some s | _ -> None in
  let int k = match member k j with Some (Int i) -> Some i | _ -> None in
  match str "op" with
  | Some "input" ->
      Option.map
        (fun name -> Op.Input { name; level = int "level"; scale_bits = int "scale" })
        (str "name")
  | Some "const" -> Option.map (fun name -> Op.Const { name }) (str "name")
  | Some "add_cc" -> Some Op.Add_cc
  | Some "add_cp" -> Some Op.Add_cp
  | Some "mul_cc" -> Some Op.Mul_cc
  | Some "mul_cp" -> Some Op.Mul_cp
  | Some "rotate" -> Option.map (fun k -> Op.Rotate k) (int "k")
  | Some "relin" -> Some Op.Relin
  | Some "rescale" -> Some Op.Rescale
  | Some "modswitch" -> Some Op.Modswitch
  | Some "bootstrap" -> Option.map (fun t -> Op.Bootstrap t) (int "target")
  | _ -> None

(* Infinite capacities are legal in certificates (source arcs, grouped
   producer arcs); Json.to_string prints every non-finite float as [null],
   so encode them explicitly as Null and decode Null back to [infinity]. *)
let cap_json c = if Float.is_finite c then Obs.Json.Float c else Obs.Json.Null

let cap_of_json = function
  | Obs.Json.Float f -> Some f
  | Obs.Json.Int i -> Some (float_of_int i)
  | Obs.Json.Null -> Some infinity
  | _ -> None

let cert_json (c : Graphlib.Maxflow.certificate) =
  let open Obs.Json in
  Obj
    [
      ("n", Int c.Graphlib.Maxflow.cert_nodes);
      ("s", Int c.Graphlib.Maxflow.cert_source);
      ("t", Int c.Graphlib.Maxflow.cert_sink);
      ("v", Float c.Graphlib.Maxflow.cert_value);
      ( "side",
        List
          (Array.to_list
             (Array.map (fun b -> Bool b) c.Graphlib.Maxflow.cert_source_side)) );
      ( "arcs",
        List
          (Array.to_list
             (Array.map
                (fun (a : Graphlib.Maxflow.flow_arc) ->
                  List
                    [
                      Int a.Graphlib.Maxflow.fa_src;
                      Int a.Graphlib.Maxflow.fa_dst;
                      cap_json a.Graphlib.Maxflow.fa_cap;
                      Float a.Graphlib.Maxflow.fa_flow;
                    ])
                c.Graphlib.Maxflow.cert_arcs)) );
    ]

let cert_of_json j =
  let open Obs.Json in
  let int k = match member k j with Some (Int i) -> Some i | _ -> None in
  let ( let* ) = Option.bind in
  let* cert_nodes = int "n" in
  let* cert_source = int "s" in
  let* cert_sink = int "t" in
  let* cert_value =
    match member "v" j with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let* side =
    let* raw = match member "side" j with Some (List l) -> Some l | _ -> None in
    List.fold_right
      (fun x acc -> match (x, acc) with Bool b, Some tl -> Some (b :: tl) | _ -> None)
      raw (Some [])
  in
  let* arcs =
    let* raw = match member "arcs" j with Some (List l) -> Some l | _ -> None in
    List.fold_right
      (fun x acc ->
        let* tl = acc in
        match x with
        | List [ Int fa_src; Int fa_dst; cap; Float fa_flow ] ->
            let* fa_cap = cap_of_json cap in
            Some ({ Graphlib.Maxflow.fa_src; fa_dst; fa_cap; fa_flow } :: tl)
        | List [ Int fa_src; Int fa_dst; cap; Int flow ] ->
            let* fa_cap = cap_of_json cap in
            Some
              ({ Graphlib.Maxflow.fa_src; fa_dst; fa_cap; fa_flow = float_of_int flow }
              :: tl)
        | _ -> None)
      raw (Some [])
  in
  Some
    {
      Graphlib.Maxflow.cert_nodes;
      cert_source;
      cert_sink;
      cert_value;
      cert_source_side = Array.of_list side;
      cert_arcs = Array.of_list arcs;
    }

let entry_json k (g : Dfg.t) (r : Report.t) =
  let open Obs.Json in
  let nodes, outs = Dfg.export g in
  Obj
    [
      ("schema", Int disk_schema);
      ("key", String k);
      ("manager", String r.Report.manager);
      ("compile_ms", Float r.Report.compile_ms);
      ("latency_ms", Float r.Report.latency_ms);
      ("repair_bootstraps", Int r.Report.repair_bootstraps);
      ("ms_opt_hoists", Int r.Report.ms_opt_hoists);
      ("region_count", Int r.Report.region_count);
      ( "segments",
        List (List.map (fun (s, d) -> List [ Int s; Int d ]) r.Report.segments) );
      ( "region_of",
        List (Array.to_list (Array.map (fun x -> Int x) r.Report.region_of)) );
      ( "fallbacks",
        List
          (List.map
             (fun (tier, reason) -> List [ String tier; String reason ])
             r.Report.fallbacks) );
      ( "certificates",
        List
          (List.map
             (fun (e : Report.certificate_entry) ->
               Obj
                 [
                   ("pass", String e.Report.ce_pass);
                   ("region", Int e.Report.ce_region);
                   ("cert", cert_json e.Report.ce_cert);
                   ( "node_of",
                     List
                       (Array.to_list (Array.map (fun x -> Int x) e.Report.ce_node_of))
                   );
                 ])
             r.Report.certificates) );
      ("outputs", List (List.map (fun o -> Int o) outs));
      ( "nodes",
        List
          (Array.to_list
             (Array.map
                (fun en ->
                  Obj
                    [
                      ("k", kind_json en.Dfg.ex_kind);
                      ( "a",
                        List (Array.to_list (Array.map (fun a -> Int a) en.Dfg.ex_args))
                      );
                      ("f", Int en.Dfg.ex_freq);
                      ("d", Bool en.Dfg.ex_dead);
                    ])
                nodes)) );
    ]

let entry_of_json j =
  let open Obs.Json in
  let int k = match member k j with Some (Int i) -> Some i | _ -> None in
  let float_ k =
    match member k j with Some (Float f) -> Some f | Some (Int i) -> Some (float_of_int i) | _ -> None
  in
  let str k = match member k j with Some (String s) -> Some s | _ -> None in
  let list k = match member k j with Some (List l) -> Some l | _ -> None in
  let ( let* ) = Option.bind in
  let* schema = int "schema" in
  if schema <> disk_schema then None
  else
    let* manager = str "manager" in
    let* compile_ms = float_ "compile_ms" in
    let* latency_ms = float_ "latency_ms" in
    let* repair_bootstraps = int "repair_bootstraps" in
    let* ms_opt_hoists = int "ms_opt_hoists" in
    let* region_count = int "region_count" in
    let* segments =
      let* raw = list "segments" in
      List.fold_right
        (fun x acc ->
          match (x, acc) with
          | List [ Int s; Int d ], Some tl -> Some ((s, d) :: tl)
          | _ -> None)
        raw (Some [])
    in
    let* region_of =
      let* raw = list "region_of" in
      List.fold_right
        (fun x acc -> match (x, acc) with Int i, Some tl -> Some (i :: tl) | _ -> None)
        raw (Some [])
    in
    let* fallbacks =
      let* raw = list "fallbacks" in
      List.fold_right
        (fun x acc ->
          match (x, acc) with
          | List [ String t; String r ], Some tl -> Some ((t, r) :: tl)
          | _ -> None)
        raw (Some [])
    in
    let* certificates =
      let* raw = list "certificates" in
      List.fold_right
        (fun x acc ->
          let* tl = acc in
          let* pass =
            match member "pass" x with Some (String s) -> Some s | _ -> None
          in
          let* region = match member "region" x with Some (Int i) -> Some i | _ -> None in
          let* cert = Option.bind (member "cert" x) cert_of_json in
          let* node_of =
            let* raw = match member "node_of" x with Some (List l) -> Some l | _ -> None in
            List.fold_right
              (fun e acc ->
                match (e, acc) with Int i, Some tl -> Some (i :: tl) | _ -> None)
              raw (Some [])
          in
          Some
            ({
               Report.ce_pass = pass;
               ce_region = region;
               ce_cert = cert;
               ce_node_of = Array.of_list node_of;
             }
            :: tl))
        raw (Some [])
    in
    let* outputs =
      let* raw = list "outputs" in
      List.fold_right
        (fun x acc -> match (x, acc) with Int i, Some tl -> Some (i :: tl) | _ -> None)
        raw (Some [])
    in
    let* nodes =
      let* raw = list "nodes" in
      List.fold_right
        (fun nj acc ->
          let* tl = acc in
          let* kind = Option.bind (member "k" nj) (fun kj -> kind_of_json kj) in
          let* args =
            match member "a" nj with
            | Some (List l) ->
                List.fold_right
                  (fun x acc ->
                    match (x, acc) with Int i, Some tl -> Some (i :: tl) | _ -> None)
                  l (Some [])
            | _ -> None
          in
          let* freq = match member "f" nj with Some (Int f) -> Some f | _ -> None in
          let* dead = match member "d" nj with Some (Bool d) -> Some d | _ -> None in
          Some
            ({
               Dfg.ex_kind = kind;
               ex_args = Array.of_list args;
               ex_freq = freq;
               ex_dead = dead;
             }
            :: tl))
        raw (Some [])
    in
    let g = Dfg.import (Array.of_list nodes, outputs) in
    let report =
      {
        Report.manager;
        compile_ms;
        latency_ms;
        stats = Stats.collect g;
        segments;
        repair_bootstraps;
        ms_opt_hoists;
        profile = Obs.Profile.create ();
        region_count;
        region_of = Array.of_list region_of;
        fallbacks;
        certificates;
      }
    in
    Some (g, report)

let disk_write t k g r =
  match path_of t k with
  | None -> ()
  | Some path -> (
      try
        Option.iter mkdir_p t.dir;
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Obs.Json.to_string (entry_json k g r)));
        Sys.rename tmp path
      with Sys_error _ -> ())

let disk_load t k =
  match path_of t k with
  | None -> None
  | Some path -> (
      match
        if Sys.file_exists path then (
          try
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> Some (really_input_string ic (in_channel_length ic)))
          with Sys_error _ | End_of_file -> None)
        else None
      with
      | None -> None
      | Some body -> (
          match Obs.Json.of_string body with
          | Error _ -> None
          | Ok j -> entry_of_json j))

(* ---------- memory tier ---------- *)

(* Caller holds the lock.  O(entries) eviction scan — capacities are
   small, and Det keeps the victim deterministic on tick ties. *)
let evict_locked t =
  while Hashtbl.length t.tbl > t.capacity do
    let victim =
      List.fold_left
        (fun acc (k, e) ->
          match acc with
          | Some (_, best) when best.e_tick <= e.e_tick -> acc
          | _ -> Some (k, e))
        None
        (Det.sorted_bindings t.tbl)
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1;
        Obs.metric_incr "plan_cache_evictions_total";
        Obs.log_debug ~event:"plan_cache.evicted" "evicted the least-recently-used plan";
        Obs.incr "plan_cache.evictions"
  done

let insert_mem t k g r =
  Mutex.protect t.lock (fun () ->
      if not (Hashtbl.mem t.tbl k) then begin
        t.tick <- t.tick + 1;
        Hashtbl.add t.tbl k { e_graph = g; e_report = r; e_tick = t.tick };
        evict_locked t
      end)

let checkout timer (g, (r : Report.t)) =
  ( Dfg.copy g,
    {
      r with
      Report.compile_ms = Obs.Timer.elapsed_ms timer;
      region_of = Array.copy r.Report.region_of;
    } )

let find t k =
  let timer = Obs.Timer.start () in
  let mem =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl k with
        | Some e ->
            t.tick <- t.tick + 1;
            e.e_tick <- t.tick;
            t.hits <- t.hits + 1;
            Some (e.e_graph, e.e_report)
        | None -> None)
  in
  match mem with
  | Some hit ->
      Obs.metric_incr "plan_cache_hits_total";
      Obs.incr "plan_cache.hits";
      Some (checkout timer hit)
  | None -> (
      match disk_load t k with
      | Some (g, r) ->
          Mutex.protect t.lock (fun () ->
              t.hits <- t.hits + 1;
              t.disk_hits <- t.disk_hits + 1);
          insert_mem t k g r;
          Obs.metric_incr "plan_cache_hits_total";
          Obs.incr "plan_cache.hits";
          Obs.log_debug ~event:"plan_cache.disk_hit" "plan loaded from the disk tier";
          Obs.incr "plan_cache.disk_hits";
          Some (checkout timer (g, r))
      | None ->
          Mutex.protect t.lock (fun () -> t.misses <- t.misses + 1);
          Obs.metric_incr "plan_cache_misses_total";
          Obs.incr "plan_cache.misses";
          None)

let store t k g (r : Report.t) =
  let g = Dfg.copy g in
  let r = { r with Report.region_of = Array.copy r.Report.region_of } in
  insert_mem t k g r;
  disk_write t k g r

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  disk_hits : int;
  disk_entries : int;
  memo_entries : int;
  memo_hits : int;
  memo_misses : int;
}

let disk_entries t =
  match t.dir with
  | None -> 0
  | Some d ->
      if Sys.file_exists d && Sys.is_directory d then
        Array.fold_left
          (fun acc f -> if Filename.check_suffix f ".json" then acc + 1 else acc)
          0 (Sys.readdir d)
      else 0

let stats t =
  let memo_hits, memo_misses = Region_eval.Memo.stats t.memo in
  Mutex.protect t.lock (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        disk_hits = t.disk_hits;
        disk_entries = disk_entries t;
        memo_entries = Region_eval.Memo.size t.memo;
        memo_hits;
        memo_misses;
      })

let clear t =
  Mutex.protect t.lock (fun () -> Hashtbl.reset t.tbl);
  match t.dir with
  | None -> ()
  | Some d ->
      if Sys.file_exists d && Sys.is_directory d then
        Array.iter
          (fun f ->
            if Filename.check_suffix f ".json" then
              try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
          (Sys.readdir d)

let stats_json (s : stats) =
  let open Obs.Json in
  Obj
    [
      ("entries", Int s.entries);
      ("capacity", Int s.capacity);
      ("hits", Int s.hits);
      ("misses", Int s.misses);
      ("evictions", Int s.evictions);
      ("disk_hits", Int s.disk_hits);
      ("disk_entries", Int s.disk_entries);
      ("memo_entries", Int s.memo_entries);
      ("memo_hits", Int s.memo_hits);
      ("memo_misses", Int s.memo_misses);
    ]
