(** Maximum flow / minimum s-t cut with real-valued capacities (Dinic).

    This is the min-cut engine behind the paper's SMOPLC (Algorithm 4) and
    BTSPLC (Algorithm 5).  Capacities are floats; [infinity] is a legal
    capacity and is used both for super-source/super-sink arcs and for the
    reverse arcs that make the source side of the cut closed under
    predecessors (so every source-to-sink path crosses the cut exactly
    once — the property SMO/bootstrap insertion relies on). *)

type t

val create : int -> t
(** [create n] is an empty flow network over nodes [0 .. n-1]. *)

val add_node : t -> int
(** Allocate a fresh node (useful for super source/sink). *)

val add_edge : t -> src:int -> dst:int -> cap:float -> unit
(** Add a directed arc in O(1) (adjacency lists are materialised once by
    the first [max_flow]).  Negative capacities raise [Invalid_argument]. *)

type stats = {
  nodes : int;
  arcs : int;  (** Arc records, i.e. 2 per [add_edge] (forward + residual). *)
  bfs_phases : int;  (** Level-graph constructions run by Dinic so far. *)
  aug_paths : int;  (** Augmenting paths pushed so far. *)
}

val stats : t -> stats
(** Counters of the work done on this network.  [bfs_phases] and
    [aug_paths] are 0 until [max_flow] runs.  The same counters are also
    reported to the ambient {!Obs} profile under ["maxflow.*"]. *)

val max_flow : t -> source:int -> sink:int -> float
(** Run Dinic's algorithm and return the max-flow value.  Consumes the
    capacities; call at most once per network. *)

type cut = {
  value : float;  (** Total capacity crossing the cut. *)
  source_side : bool array;  (** [source_side.(v)] iff [v] is on the source side. *)
  edges : (int * int) list;  (** Saturated arcs from source side to sink side. *)
}

val min_cut : t -> source:int -> sink:int -> cut
(** Max-flow followed by a residual-graph reachability pass.  Only arcs
    that were added with a finite capacity are reported in [edges]. *)
