(** Maximum flow / minimum s-t cut with real-valued capacities (Dinic).

    This is the min-cut engine behind the paper's SMOPLC (Algorithm 4) and
    BTSPLC (Algorithm 5).  Capacities are floats; [infinity] is a legal
    capacity and is used both for super-source/super-sink arcs and for the
    reverse arcs that make the source side of the cut closed under
    predecessors (so every source-to-sink path crosses the cut exactly
    once — the property SMO/bootstrap insertion relies on). *)

type t

val create : int -> t
(** [create n] is an empty flow network over nodes [0 .. n-1]. *)

val add_node : t -> int
(** Allocate a fresh node (useful for super source/sink). *)

val add_edge : t -> src:int -> dst:int -> cap:float -> unit
(** Add a directed arc in O(1) (adjacency lists are materialised once by
    the first [max_flow]).  Negative capacities raise [Invalid_argument]. *)

type stats = {
  nodes : int;
  arcs : int;  (** Arc records, i.e. 2 per [add_edge] (forward + residual). *)
  bfs_phases : int;  (** Level-graph constructions run by Dinic so far. *)
  aug_paths : int;  (** Augmenting paths pushed so far. *)
}

val stats : t -> stats
(** Counters of the work done on this network.  [bfs_phases] and
    [aug_paths] are 0 until [max_flow] runs.  The same counters are also
    reported to the ambient {!Obs} profile under ["maxflow.*"]. *)

val max_flow : t -> source:int -> sink:int -> float
(** Run Dinic's algorithm and return the max-flow value.  Consumes the
    capacities; call at most once per network. *)

type cut = {
  value : float;  (** Total capacity crossing the cut. *)
  source_side : bool array;  (** [source_side.(v)] iff [v] is on the source side. *)
  edges : (int * int) list;  (** Saturated arcs from source side to sink side. *)
}

val min_cut : t -> source:int -> sink:int -> cut
(** Max-flow followed by a residual-graph reachability pass.  Only arcs
    that were added with a finite capacity are reported in [edges]. *)

(** One user arc of the network with its final flow assignment.  [fa_cap]
    is the capacity as added ([infinity] is legal); [fa_flow] is the net
    flow Dinic routed through it (always [>= 0] and [<= fa_cap]). *)
type flow_arc = { fa_src : int; fa_dst : int; fa_cap : float; fa_flow : float }

(** A self-contained optimality certificate for a min cut: the full flow
    assignment plus the cut it allegedly saturates.  A checker that
    verifies (a) the flow is feasible and conserved, (b) its value equals
    [cert_value], (c) every arc crossing the cut source-to-sink is
    saturated and no crossing arc carries flow sink-to-source, has — by
    max-flow/min-cut LP duality — proved the cut minimal without trusting
    this module. *)
type certificate = {
  cert_nodes : int;
  cert_source : int;
  cert_sink : int;
  cert_value : float;  (** The claimed max-flow = min-cut value. *)
  cert_source_side : bool array;  (** Copy of the cut's [source_side]. *)
  cert_arcs : flow_arc array;
      (** Every user-added arc (including infinite ones), in deterministic
          (source node, insertion order) order. *)
}

val certificate : t -> source:int -> sink:int -> cut -> certificate
(** Export the flow assignment left behind by {!min_cut} together with the
    returned cut.  Call after {!min_cut} on the same network; raises
    [Invalid_argument] if the network was never run. *)

val of_certificate : ?forbid:(int * int) list -> certificate -> t
(** Rebuild a fresh, unsolved network from a certificate's arc list: same
    node count, same arcs in the same insertion order, capacities reset to
    the initial [fa_cap].  Arcs whose [(src, dst)] pair appears in [forbid]
    are re-added with infinite capacity, so no cut through them is ever
    minimal.  Running {!min_cut} on the result answers the counterfactual
    "what is the cheapest cut that avoids these arcs?" — the basis of the
    per-bootstrap rationale in [Resbm.Explain].  A counterfactual value of
    [infinity] means the forbidden arcs were forced: no alternative cut
    exists. *)
