(* Dinic's algorithm with adjacency lists of arc records.  Each arc stores
   its residual capacity; the paired reverse arc is at [rev] in the
   destination's list.  Float capacities terminate because each phase
   saturates at least one arc on a shortest path and the level graph depth
   strictly increases across phases (at most [n] phases). *)

type arc = {
  dst : int;
  mutable cap : float;
  rev : int;  (* index of the reverse arc in [adj.(dst)] *)
  original : bool;  (* true for arcs added by the user with finite cap *)
  user : bool;  (* true for every arc added by the user, finite or not *)
  init_cap : float;
}

type stats = { nodes : int; arcs : int; bfs_phases : int; aug_paths : int }

(* Declared after [stats] so the label names below shadow its fields. *)
type t = {
  mutable adj : arc array array;  (* built lazily from [pending] *)
  mutable pending : arc list array;  (* per-node arcs, reverse insertion order *)
  mutable deg : int array;  (* arcs inserted so far per node *)
  mutable n : int;
  mutable built : bool;
  mutable edges_added : int;
  mutable bfs_phases : int;
  mutable aug_paths : int;
}

let eps = 1e-9

let create n =
  if n < 0 then invalid_arg "Maxflow.create";
  {
    adj = [||];
    pending = Array.make (max n 1) [];
    deg = Array.make (max n 1) 0;
    n;
    built = false;
    edges_added = 0;
    bfs_phases = 0;
    aug_paths = 0;
  }

let add_node net =
  if net.built then invalid_arg "Maxflow.add_node: network already built";
  if net.n >= Array.length net.pending then begin
    let capacity = (2 * net.n) + 1 in
    let pending' = Array.make capacity [] and deg' = Array.make capacity 0 in
    Array.blit net.pending 0 pending' 0 net.n;
    Array.blit net.deg 0 deg' 0 net.n;
    net.pending <- pending';
    net.deg <- deg'
  end;
  let id = net.n in
  net.n <- net.n + 1;
  id

(* Arcs are prepended (O(1)) and the lists reversed once in [build], so a
   node's final adjacency index is its degree at insertion time. *)
let add_edge net ~src ~dst ~cap =
  if net.built then invalid_arg "Maxflow.add_edge: network already built";
  if cap < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src < 0 || src >= net.n || dst < 0 || dst >= net.n then
    invalid_arg "Maxflow.add_edge: node out of range";
  let fwd_pos = net.deg.(src) in
  net.deg.(src) <- fwd_pos + 1;
  let bwd_pos = net.deg.(dst) in
  net.deg.(dst) <- bwd_pos + 1;
  let fwd =
    { dst; cap; rev = bwd_pos; original = cap < infinity; user = true; init_cap = cap }
  and bwd =
    { dst = src; cap = 0.0; rev = fwd_pos; original = false; user = false; init_cap = 0.0 }
  in
  net.pending.(src) <- fwd :: net.pending.(src);
  net.pending.(dst) <- bwd :: net.pending.(dst);
  net.edges_added <- net.edges_added + 1

let build net =
  if not net.built then begin
    net.adj <-
      Array.map (fun arcs -> Array.of_list (List.rev arcs)) (Array.sub net.pending 0 net.n);
    net.built <- true
  end

let stats net : stats =
  {
    nodes = net.n;
    arcs = 2 * net.edges_added;
    bfs_phases = net.bfs_phases;
    aug_paths = net.aug_paths;
  }

let bfs net ~source ~sink level =
  net.bfs_phases <- net.bfs_phases + 1;
  Array.fill level 0 net.n (-1);
  level.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun a ->
        if a.cap > eps && level.(a.dst) < 0 then begin
          level.(a.dst) <- level.(u) + 1;
          Queue.add a.dst queue
        end)
      net.adj.(u)
  done;
  level.(sink) >= 0

let rec dfs net level iter u sink pushed =
  if u = sink then pushed
  else begin
    let res = ref 0.0 in
    while !res = 0.0 && iter.(u) < Array.length net.adj.(u) do
      let a = net.adj.(u).(iter.(u)) in
      if a.cap > eps && level.(a.dst) = level.(u) + 1 then begin
        let d = dfs net level iter a.dst sink (min pushed a.cap) in
        if d > eps then begin
          a.cap <- a.cap -. d;
          let back = net.adj.(a.dst).(a.rev) in
          back.cap <- back.cap +. d;
          res := d
        end
        else iter.(u) <- iter.(u) + 1
      end
      else iter.(u) <- iter.(u) + 1
    done;
    !res
  end

let max_flow net ~source ~sink =
  if source = sink then invalid_arg "Maxflow.max_flow: source = sink";
  build net;
  let level = Array.make net.n (-1) in
  let flow = ref 0.0 in
  (try
     while bfs net ~source ~sink level do
       let iter = Array.make net.n 0 in
       let pushed = ref (dfs net level iter source sink infinity) in
       while !pushed > eps do
         flow := !flow +. !pushed;
         net.aug_paths <- net.aug_paths + 1;
         if !flow = infinity then raise Exit;
         pushed := dfs net level iter source sink infinity
       done
     done
   with Exit -> ());
  Obs.incr "maxflow.runs";
  Obs.incr ~by:net.bfs_phases "maxflow.bfs_phases";
  Obs.incr ~by:net.aug_paths "maxflow.aug_paths";
  !flow

type cut = {
  value : float;
  source_side : bool array;
  edges : (int * int) list;
}

let min_cut net ~source ~sink =
  let value = max_flow net ~source ~sink in
  (* Residual reachability from the source identifies the source side. *)
  let side = Array.make net.n false in
  side.(source) <- true;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun a ->
        if a.cap > eps && not side.(a.dst) then begin
          side.(a.dst) <- true;
          Queue.add a.dst queue
        end)
      net.adj.(u)
  done;
  let edges = ref [] in
  for u = 0 to net.n - 1 do
    if side.(u) then
      Array.iter
        (fun a -> if a.original && not side.(a.dst) then edges := (u, a.dst) :: !edges)
        net.adj.(u)
  done;
  let edges = List.rev !edges in
  Obs.observe "maxflow.cut_value" value;
  Obs.incr ~by:(List.length edges) "maxflow.cut_edges";
  { value; source_side = side; edges }

type flow_arc = { fa_src : int; fa_dst : int; fa_cap : float; fa_flow : float }

type certificate = {
  cert_nodes : int;
  cert_source : int;
  cert_sink : int;
  cert_value : float;
  cert_source_side : bool array;
  cert_arcs : flow_arc array;
}

(* The net flow routed through a user arc is exactly its residual
   companion's final capacity: the companion starts at 0.0, every forward
   push adds to it and every cancellation subtracts, and it never goes
   negative.  This also works for infinite-capacity user arcs, whose own
   residual capacity stays [infinity]. *)
let certificate net ~source ~sink (c : cut) =
  if not net.built then invalid_arg "Maxflow.certificate: network not built";
  let arcs = ref [] in
  for u = net.n - 1 downto 0 do
    let row = net.adj.(u) in
    for i = Array.length row - 1 downto 0 do
      let a = row.(i) in
      if a.user then
        arcs :=
          {
            fa_src = u;
            fa_dst = a.dst;
            fa_cap = a.init_cap;
            fa_flow = net.adj.(a.dst).(a.rev).cap;
          }
          :: !arcs
    done
  done;
  {
    cert_nodes = net.n;
    cert_source = source;
    cert_sink = sink;
    cert_value = c.value;
    cert_source_side = Array.copy c.source_side;
    cert_arcs = Array.of_list !arcs;
  }

(* Counterfactual replay: rebuild the network a certificate was exported
   from (same nodes, same arcs in the same insertion order, initial
   capacities), optionally lifting some arcs to infinite capacity so they
   can no longer be cut.  Re-running [min_cut] then yields the best cut
   that avoids the forbidden arcs — the "next-best placement" and its
   cost penalty relative to [cert_value]. *)
let of_certificate ?(forbid = []) (cert : certificate) =
  let net = create cert.cert_nodes in
  Array.iter
    (fun (a : flow_arc) ->
      let cap =
        if List.exists (fun (s, d) -> s = a.fa_src && d = a.fa_dst) forbid then
          infinity
        else a.fa_cap
      in
      add_edge net ~src:a.fa_src ~dst:a.fa_dst ~cap)
    cert.cert_arcs;
  net
