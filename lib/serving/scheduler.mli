(** Deterministic simulated-clock request serving: arrivals, deadlines,
    admission control, slot-batched execution, retries, and a circuit
    breaker — the subsystem that turns one-shot inference into a service
    with an SLO.

    A campaign replays a seeded arrival trace (Poisson or recorded)
    through a bounded queue.  Each arrival is admitted or shed (breaker
    open, queue full, or predicted completion past its deadline); the
    {!Batcher} packs admitted requests into the unused CKKS slots of one
    inference, which executes under {!Resilience.Recovery} supervision —
    optionally with a per-dispatch {!Ckks.Fault} plan at [chaos_rate] —
    so mid-batch faults are rolled back and re-charged to the simulated
    clock.  A batch that still fails with a retryable error is retried
    with capped exponential backoff, shedding members whose deadlines
    cannot fit a clean re-execution; a bad recent window (faults or
    deadline misses) degrades the breaker from full batches to half-size
    batches to rejecting arrivals outright until a cooldown passes.

    Everything — arrivals, payloads, fault plans, evaluator noise,
    backoff — is deterministic in [seed] over the simulated clock, so a
    campaign report serialises byte-for-byte identically across runs and
    across planner [jobs] values.  Recovery latency is accounted {e per
    request}: each successful batch's recovery cost is split across its
    members (the per-request sum equals the batch total exactly), and
    every arrival terminates as completed, shed, or failed exactly
    once. *)

type arrival =
  | Poisson of float  (** Mean arrival rate, requests per second. *)
  | Replay of float list  (** Recorded arrival times (ms); unsorted ok. *)

type config = {
  seed : int64;  (** Master seed; every stream below is salted from it. *)
  model : string;  (** {!Nn.Model.by_name} name. *)
  l_max : int;  (** Scheme max level for compilation. *)
  dim : int;  (** Slots per request payload. *)
  arrival : arrival;
  duration_ms : float;  (** Arrival-window length (simulated). *)
  slo_ms : float;
      (** Per-request deadline after arrival; [<= 0] derives
          [3 * est_batch_ms] from the fault-free reference run. *)
  max_batch : int;  (** Requests per batch cap (also capped by slots). *)
  max_wait_ms : float;
      (** Batch fill wait bound; [<= 0] derives [slo / 4]. *)
  queue_depth : int;  (** Bounded queue: arrivals beyond it are shed. *)
  chaos_rate : float;  (** Per-op fault injection rate; 0 = no faults. *)
  chaos_budget : int;  (** Max injections per dispatch. *)
  recovery : Resilience.Recovery.config;
      (** Supervisor config for batch execution; its [max_backoff_ms]
          also caps the scheduler's own batch-retry backoff. *)
  max_retries : int;  (** Batch re-dispatches after a retryable failure. *)
  retry_backoff_ms : float;  (** Base batch-retry delay (doubles, capped). *)
  breaker_window : int;  (** Recent batches the breaker judges. *)
  breaker_threshold : float;
      (** Bad fraction of the window that trips the breaker a stage. *)
  breaker_cooldown_ms : float;  (** Open hold time; [<= 0] derives [2 * slo]. *)
}

val default : config
(** tiny model, l_max 9, dim 16, Poisson 40 rps for 1 s, derived SLO,
    max_batch 4, queue 16, no chaos, recovery defaults, 2 retries,
    breaker 6-window at 0.5. *)

type outcome =
  | Completed  (** Finished within its deadline. *)
  | Shed of string
      (** Never executed: ["breaker_open"], ["queue_full"],
          ["predicted_miss"], or ["retry_wont_fit"]. *)
  | Failed of string
      (** Executed but lost: ["deadline_missed"], or the structured
          error cause that exhausted its retries. *)

val outcome_name : outcome -> string

type request_report = {
  rid : int;
  arrival_ms : float;
  deadline_ms : float;
  outcome : outcome;
  completion_ms : float option;  (** Set iff a batch produced outputs. *)
  service_ms : float option;  (** [completion - arrival]. *)
  batch : int option;  (** Last batch that carried the request. *)
  attempts : int;  (** Dispatches the request rode (0 if shed unqueued). *)
  recovery_ms : float;
      (** This request's share of its batches' recovery latency; summing
          over a batch's members reproduces the batch total exactly. *)
}

type batch_report = {
  batch_id : int;
  formed_ms : float;
  size : int;
  attempt : int;  (** 1 for first dispatch, +1 per retry. *)
  members : int list;  (** Request ids, queue order. *)
  ok : bool;
  error : string option;
  exec_ms : float;  (** Simulated execution latency this attempt charged. *)
  injected_faults : int;
  retries : int;  (** In-batch supervisor rollbacks (not re-dispatches). *)
  panic_refreshes : int;
  recovery_ms_by_kind : (string * float) list;
  backoff_ms_total : float;
  capped_backoffs : int;
}

type report = {
  config_seed : int64;
  model : string;
  slot_capacity : int;  (** Requests one batch can pack. *)
  est_batch_ms : float;  (** Fault-free full-batch reference latency. *)
  slo_ms : float;  (** Resolved (possibly derived) SLO. *)
  max_wait_ms : float;  (** Resolved batch-fill wait. *)
  arrivals : int;
  admitted : int;
  completed : int;
  shed : int;
  failed : int;
  shed_by_reason : (string * int) list;  (** Sorted. *)
  failed_by_cause : (string * int) list;  (** Sorted. *)
  deadline_misses : int;
  goodput_rps : float;  (** Completed per second of campaign duration. *)
  slo_attainment : float;  (** completed / admitted; 1.0 when none. *)
  p50_service_ms : float;  (** Nearest-rank; [nan] with no completions. *)
  p99_service_ms : float;
  queue_depth_peak : int;
  batches_run : int;
  batch_retries : int;  (** Batches that were re-dispatches. *)
  mean_batch_fill : float;  (** Mean size/capacity; 1.0 with no batches. *)
  breaker_opens : int;
  recovery_ms_by_kind : (string * float) list;  (** Merged over batches. *)
  backoff_ms_total : float;
  capped_backoffs : int;
  requests : request_report list;  (** Every arrival, id order. *)
  batches : batch_report list;  (** Dispatch order. *)
}

val run : ?jobs:int -> ?cache:Resbm.Plan_cache.t -> config -> report
(** Run a campaign.  [jobs]/[cache] feed the planner
    ({!Resbm.Driver.compile_robust}), whose plans are bit-identical at
    any job count — the report does not depend on them.  Metrics
    ([serve_*] counters, [service_latency_ms] / [serve_queue_depth] /
    [serve_batch_size] histograms, [serve_queue_depth_peak] gauge), log
    events ([serve.admit] / [serve.shed] / [serve.batch.formed] /
    [serve.deadline.missed] / [serve.breaker.open]) and trace instants
    go to the ambient {!Obs} collectors when installed; the report is
    computed from plain state, so it is identical either way.

    Invariants (asserted or test-enforced): every arrival terminates as
    completed, shed, or failed exactly once;
    [completed + failed + shed = arrivals]; the per-request recovery
    latency of a successful batch sums to that batch's recovery total.

    @raise Invalid_argument on an unknown model or degenerate config. *)

val to_json : report -> Obs.Json.t
(** Deterministic serialisation — byte-identical across runs with the
    same config (via {!Obs.Json.to_string}).  Batch and campaign levels
    carry ["recovery"] objects rendered through
    {!Resilience.Recovery.accounting_json}, the schema chaos reports
    share. *)
