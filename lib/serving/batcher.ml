type request = {
  rid : int;
  arrival_ms : float;
  deadline_ms : float;
  payload : float array;
}

type t = { capacity : int; max_wait_ms : float }

let create ~capacity ~max_wait_ms =
  if capacity < 1 then invalid_arg "Batcher.create: capacity below 1";
  if max_wait_ms < 0.0 then invalid_arg "Batcher.create: negative max_wait_ms";
  { capacity; max_wait_ms }

let capacity prm ~dim ~max_batch =
  if dim < 1 then invalid_arg "Batcher.capacity: dim below 1";
  max 1 (min max_batch (Ckks.Params.slot_count prm / dim))

type decision =
  | Dispatch of request list * request list
  | Wait_until of float
  | Idle

let rec take n = function
  | [] -> ([], [])
  | l when n = 0 -> ([], l)
  | x :: tl ->
      let hd, rest = take (n - 1) tl in
      (x :: hd, rest)

let decide t ~now ?cap ~next_arrival pending =
  let cap =
    match cap with None -> t.capacity | Some c -> max 1 (min c t.capacity)
  in
  match pending with
  | [] -> Idle
  | oldest :: _ ->
      if List.length pending >= cap then
        let members, rest = take cap pending in
        Dispatch (members, rest)
      else
        let due = oldest.arrival_ms +. t.max_wait_ms in
        if now >= due then Dispatch (pending, [])
        else
          (* A new arrival before the due time may top the batch up, so
             wake at whichever comes first. *)
          Wait_until
            (match next_arrival with
            | Some a when a <= due -> a
            | _ -> due)

let pack ~dim ~slots requests =
  let wide = Array.make slots 0.0 in
  List.iteri
    (fun i r ->
      if (i + 1) * dim > slots then
        invalid_arg "Batcher.pack: batch does not fit the slot vector";
      Array.blit r.payload 0 wide (i * dim) (min dim (Array.length r.payload)))
    requests;
  wide

let unpack ~dim ~count ct =
  List.init count (fun i -> Ckks.Ciphertext.slice ct ~off:(i * dim) ~len:dim)
