(** Slot batching: packing pending requests into the unused CKKS slots of
    one inference.

    The paper's packing model is one image per ciphertext; the serving
    layer exploits the slots that model leaves empty (a 16-pixel request
    uses 16 of 32768 slots) by laying requests out in blocks — request
    [b]'s [dim]-length payload occupies slots [[b*dim, (b+1)*dim)] of a
    shared input vector — so one supervised inference serves a whole
    batch at the simulated cost of a solo run.  This is the SIMD
    amortisation BTS and FAB build FHE serving economics on.

    The block layout is an accounting-grade simulation: rotations inside
    the evaluated graph cross block boundaries, which a production
    deployment would mask off per block.  Latency, scheduling, and
    recovery accounting — what the serving layer measures — are
    unaffected; per-request numerical fidelity is out of scope (see
    ROADMAP). *)

type request = {
  rid : int;  (** Dense request id, also the index into campaign arrays. *)
  arrival_ms : float;  (** Simulated arrival time. *)
  deadline_ms : float;  (** Absolute completion deadline ([arrival + SLO]). *)
  payload : float array;  (** The [dim]-length input image. *)
}

type t = { capacity : int; max_wait_ms : float }

val create : capacity:int -> max_wait_ms:float -> t
(** [capacity] is the most requests one batch packs; [max_wait_ms] bounds
    how long the oldest pending request waits for the batch to fill.
    @raise Invalid_argument on a capacity below 1 or a negative wait. *)

val capacity : Ckks.Params.t -> dim:int -> max_batch:int -> int
(** How many [dim]-slot blocks fit: [max 1 (min max_batch (slot_count / dim))]. *)

type decision =
  | Dispatch of request list * request list
      (** [(members, still_pending)]: run [members] now. *)
  | Wait_until of float
      (** Nothing to run yet; the next decision point (the batch's due
          time, or an earlier arrival that may top the batch up).  Always
          strictly after [now] when the queue was drained first. *)
  | Idle  (** No pending requests. *)

val decide :
  t -> now:float -> ?cap:int -> next_arrival:float option -> request list -> decision
(** Batch-formation policy over the pending queue (oldest first): dispatch
    a full batch immediately; dispatch a partial batch once the oldest
    request has waited [max_wait_ms]; otherwise wait.  [cap] shrinks the
    effective capacity (clamped to [[1, capacity]]) — the circuit
    breaker's degraded mode. *)

val pack : dim:int -> slots:int -> request list -> float array
(** Block-layout the payloads into a [slots]-length vector (zero-padded).
    @raise Invalid_argument when the batch does not fit. *)

val unpack : dim:int -> count:int -> Ckks.Ciphertext.t -> float array list
(** Extract the [count] per-request result blocks from a shared output
    ciphertext ({!Ckks.Ciphertext.slice}). *)
