type arrival = Poisson of float | Replay of float list

type config = {
  seed : int64;
  model : string;
  l_max : int;
  dim : int;
  arrival : arrival;
  duration_ms : float;
  slo_ms : float;
  max_batch : int;
  max_wait_ms : float;
  queue_depth : int;
  chaos_rate : float;
  chaos_budget : int;
  recovery : Resilience.Recovery.config;
  max_retries : int;
  retry_backoff_ms : float;
  breaker_window : int;
  breaker_threshold : float;
  breaker_cooldown_ms : float;
}

let default =
  {
    seed = 0x5E17EL;
    model = "tiny";
    l_max = 9;
    dim = 16;
    arrival = Poisson 40.0;
    duration_ms = 1000.0;
    slo_ms = 0.0;
    max_batch = 4;
    max_wait_ms = 0.0;
    queue_depth = 16;
    chaos_rate = 0.0;
    chaos_budget = 2;
    recovery = Resilience.Recovery.default;
    max_retries = 2;
    retry_backoff_ms = 5.0;
    breaker_window = 6;
    breaker_threshold = 0.5;
    breaker_cooldown_ms = 0.0;
  }

type outcome = Completed | Shed of string | Failed of string

let outcome_name = function
  | Completed -> "completed"
  | Shed _ -> "shed"
  | Failed _ -> "failed"

type request_report = {
  rid : int;
  arrival_ms : float;
  deadline_ms : float;
  outcome : outcome;
  completion_ms : float option;
  service_ms : float option;
  batch : int option;
  attempts : int;
  recovery_ms : float;
}

type batch_report = {
  batch_id : int;
  formed_ms : float;
  size : int;
  attempt : int;
  members : int list;
  ok : bool;
  error : string option;
  exec_ms : float;
  injected_faults : int;
  retries : int;
  panic_refreshes : int;
  recovery_ms_by_kind : (string * float) list;
  backoff_ms_total : float;
  capped_backoffs : int;
}

type report = {
  config_seed : int64;
  model : string;
  slot_capacity : int;
  est_batch_ms : float;
  slo_ms : float;
  max_wait_ms : float;
  arrivals : int;
  admitted : int;
  completed : int;
  shed : int;
  failed : int;
  shed_by_reason : (string * int) list;
  failed_by_cause : (string * int) list;
  deadline_misses : int;
  goodput_rps : float;
  slo_attainment : float;
  p50_service_ms : float;
  p99_service_ms : float;
  queue_depth_peak : int;
  batches_run : int;
  batch_retries : int;
  mean_batch_fill : float;
  breaker_opens : int;
  recovery_ms_by_kind : (string * float) list;
  backoff_ms_total : float;
  capped_backoffs : int;
  requests : request_report list;
  batches : batch_report list;
}

(* Deterministic stream salts: each concern draws from its own SplitMix64
   stream so adding observations to one never perturbs another. *)
let arrival_salt = 0xA881DA7E5L
let payload_salt = 0x1A6E5L
let chaos_salt = 0xFA017L
let reference_salt = 0x5107BA7CL
let ev_salt = 0x9E3779B97F4A7C15L

let sorted_counts kvs =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    kvs;
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *))

let merge_ms lists =
  let tbl = Hashtbl.create 4 in
  List.iter
    (List.iter (fun (k, v) ->
         Hashtbl.replace tbl k (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k))))
    lists;
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *))

(* Nearest-rank percentile over an ascending list. *)
let percentile sorted p =
  match sorted with
  | [] -> Float.nan
  | l ->
      let n = List.length l in
      let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
      List.nth l (max 0 (min (n - 1) (rank - 1)))

let run ?jobs ?cache cfg =
  if cfg.dim < 1 then invalid_arg "Scheduler.run: dim below 1";
  if cfg.duration_ms < 0.0 then invalid_arg "Scheduler.run: negative duration";
  if cfg.queue_depth < 1 then invalid_arg "Scheduler.run: queue_depth below 1";
  let model =
    match Nn.Model.by_name cfg.model with
    | Some m -> m
    | None -> invalid_arg (Printf.sprintf "Scheduler.run: unknown model %S" cfg.model)
  in
  let lowered = Nn.Lowering.lower model in
  let prm =
    Ckks.Params.with_l_max
      { Ckks.Params.default with Ckks.Params.input_level = cfg.l_max }
      cfg.l_max
  in
  let managed, plan_report =
    Resbm.Driver.compile_robust ?jobs ?cache prm lowered.Nn.Lowering.dfg
  in
  let region_of =
    let attr = plan_report.Resbm.Report.region_of in
    fun id -> if id >= 0 && id < Array.length attr then attr.(id) else -1
  in
  let slot_capacity = Batcher.capacity prm ~dim:cfg.dim ~max_batch:cfg.max_batch in
  let wide = slot_capacity * cfg.dim in
  let consts = Nn.Lowering.resolver lowered ~dim:wide in
  (* Sharp static noise prediction for the recovery supervisor's boundary
     validator, as the chaos harness does. *)
  let noise =
    let const_magnitude name =
      Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 (consts name)
    in
    Fhe_ir.Noise_check.analyse ~const_magnitude prm managed
  in
  let ev_base = Int64.logxor cfg.seed ev_salt in
  (* One fault-free full-width reference run prices a batch: slot batching
     is SIMD, so a full batch costs the same simulated latency as a solo
     inference — this estimate drives admission control and the auto-SLO. *)
  let est_batch_ms =
    let image =
      (Nn.Dataset.images ~seed:(Int64.logxor cfg.seed reference_salt) ~dim:wide
         ~count:1 ()).(0)
    in
    let env =
      { Fhe_ir.Interp.inputs = [ (lowered.Nn.Lowering.input_name, image) ]; consts }
    in
    (Fhe_ir.Interp.run (Ckks.Evaluator.create ~seed:ev_base prm) managed env)
      .Fhe_ir.Interp.latency_ms
  in
  let slo_ms = if cfg.slo_ms > 0.0 then cfg.slo_ms else 3.0 *. est_batch_ms in
  let max_wait_ms = if cfg.max_wait_ms > 0.0 then cfg.max_wait_ms else slo_ms /. 4.0 in
  let cooldown_ms =
    if cfg.breaker_cooldown_ms > 0.0 then cfg.breaker_cooldown_ms else 2.0 *. slo_ms
  in
  let batcher = Batcher.create ~capacity:slot_capacity ~max_wait_ms in
  (* Arrival trace: sorted absolute times in [0, duration]. *)
  let arrival_times =
    match cfg.arrival with
    | Replay ts ->
        List.sort compare
          (List.filter (fun t -> t >= 0.0 && t <= cfg.duration_ms) ts)
    | Poisson rate ->
        if rate <= 0.0 then []
        else begin
          let rng = Ckks.Prng.create (Int64.logxor cfg.seed arrival_salt) in
          let rec gen acc t =
            let u = Ckks.Prng.float rng in
            let t = t +. (-.log (1.0 -. u) /. rate *. 1000.0) in
            if t > cfg.duration_ms then List.rev acc else gen (t :: acc) t
          in
          gen [] 0.0
        end
  in
  let n_arrivals = List.length arrival_times in
  let payloads =
    if n_arrivals = 0 then [||]
    else
      Nn.Dataset.images ~seed:(Int64.logxor cfg.seed payload_salt) ~dim:cfg.dim
        ~count:n_arrivals ()
  in
  let requests =
    Array.of_list
      (List.mapi
         (fun i t ->
           {
             Batcher.rid = i;
             arrival_ms = t;
             deadline_ms = t +. slo_ms;
             payload = payloads.(i);
           })
         arrival_times)
  in
  (* Dense per-request terminal accounting: exactly one outcome per
     admitted (indeed per arrived) request, asserted at the end. *)
  let out_outcome : outcome option array = Array.make n_arrivals None in
  let out_completion = Array.make n_arrivals Float.nan in
  let out_batch = Array.make n_arrivals (-1) in
  let out_attempts = Array.make n_arrivals 0 in
  let out_recovery = Array.make n_arrivals 0.0 in
  let chaos_rng = Ckks.Prng.create (Int64.logxor cfg.seed chaos_salt) in
  (* Per-dispatch fault plan, the chaos harness's rule mix at the
     campaign's [chaos_rate]. *)
  let draw_fault_plan () =
    let u lo hi = Ckks.Prng.uniform chaos_rng ~lo ~hi in
    let seed = Ckks.Prng.int64 chaos_rng in
    let rate = cfg.chaos_rate in
    {
      Ckks.Fault.seed;
      rules =
        [
          Ckks.Fault.rule Ckks.Fault.Transient ~prob:(rate *. u 0.5 1.5) ~mag:0.0;
          Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:(rate *. u 0.25 1.0)
            ~mag:(u 18.0 28.0);
          Ckks.Fault.rule Ckks.Fault.Scale_drift ~prob:(rate *. u 0.1 0.5) ~mag:3.0;
          Ckks.Fault.rule Ckks.Fault.Slot_corrupt ~prob:(rate *. u 0.25 1.0)
            ~mag:(u (-4.0) (-1.0));
        ];
      budget = cfg.chaos_budget;
    }
  in
  (* Circuit breaker: Closed -> Degraded (half batches) -> Open (shed
     arrivals) on a bad recent window; Open cools down to Degraded, a
     clean window closes Degraded. *)
  let breaker = ref `Closed in
  let open_until = ref 0.0 in
  let window = ref [] (* newest first; true = fault or deadline miss *) in
  let breaker_opens = ref 0 in
  let eff_cap () =
    match !breaker with `Closed -> slot_capacity | _ -> max 1 (slot_capacity / 2)
  in
  let refresh_breaker now =
    if !breaker = `Open && now >= !open_until then breaker := `Degraded
  in
  let note_breaker now bad =
    window := bad :: !window;
    if List.length !window >= cfg.breaker_window then begin
      let trimmed = List.filteri (fun i _ -> i < cfg.breaker_window) !window in
      let bads = List.length (List.filter Fun.id trimmed) in
      let rate = float_of_int bads /. float_of_int cfg.breaker_window in
      if rate >= cfg.breaker_threshold then begin
        (match !breaker with
        | `Closed -> breaker := `Degraded
        | `Degraded | `Open ->
            breaker := `Open;
            open_until := now +. cooldown_ms;
            incr breaker_opens;
            Obs.metric_incr "serve_breaker_open_total";
            Obs.log_warn ~event:"serve.breaker.open"
              ~fields:[ ("until_ms", Obs.Json.Float !open_until) ]
              (Printf.sprintf "circuit breaker opened until %.1f ms" !open_until));
        window := []
      end
      else if !breaker = `Degraded && rate < cfg.breaker_threshold /. 2.0 then begin
        breaker := `Closed;
        window := []
      end
      else window := trimmed
    end
  in
  let now = ref 0.0 in
  let queue = ref [] (* oldest first *) in
  let pending_arrivals = ref (Array.to_list requests) in
  let qpeak = ref 0 in
  let admitted = ref 0 in
  let batch_reports = ref [] (* newest first *) in
  let next_batch_id = ref 0 in
  let shed_request (r : Batcher.request) reason =
    out_outcome.(r.Batcher.rid) <- Some (Shed reason);
    Obs.metric_incr ~labels:[ ("reason", reason) ] "serve_shed_total";
    Obs.log_warn ~event:"serve.shed"
      ~fields:
        [ ("rid", Obs.Json.Int r.Batcher.rid); ("reason", Obs.Json.String reason) ]
      (Printf.sprintf "shed request %d (%s)" r.Batcher.rid reason)
  in
  let admit (r : Batcher.request) =
    refresh_breaker !now;
    Obs.metric_observe "serve_queue_depth" (float_of_int (List.length !queue));
    if !breaker = `Open then shed_request r "breaker_open"
    else if List.length !queue >= cfg.queue_depth then shed_request r "queue_full"
    else begin
      (* Predicted completion: the queue ahead drains in ceil-ish batches
         of the current effective capacity, then this request's own batch
         runs.  Admitting a request that cannot make its deadline only
         wastes slots it would fail in. *)
      let cap = eff_cap () in
      let batches_ahead = (List.length !queue / cap) + 1 in
      let predicted = !now +. (float_of_int batches_ahead *. est_batch_ms) in
      if predicted > r.Batcher.deadline_ms then shed_request r "predicted_miss"
      else begin
        incr admitted;
        Obs.metric_incr "serve_admitted_total";
        Obs.log_debug ~event:"serve.admit"
          ~fields:[ ("rid", Obs.Json.Int r.Batcher.rid) ]
          (Printf.sprintf "admitted request %d" r.Batcher.rid);
        queue := !queue @ [ r ];
        qpeak := max !qpeak (List.length !queue)
      end
    end
  in
  let rec run_batch ~attempt members =
    let bid = !next_batch_id in
    incr next_batch_id;
    let size = List.length members in
    let formed = !now in
    Obs.metric_incr "serve_batches_total";
    Obs.metric_observe "serve_batch_size" (float_of_int size);
    Obs.log_info ~event:"serve.batch.formed"
      ~fields:
        [
          ("batch", Obs.Json.Int bid);
          ("size", Obs.Json.Int size);
          ("attempt", Obs.Json.Int attempt);
        ]
      (Printf.sprintf "formed batch %d (%d requests, attempt %d)" bid size attempt);
    List.iter
      (fun (r : Batcher.request) ->
        out_batch.(r.Batcher.rid) <- bid;
        out_attempts.(r.Batcher.rid) <- out_attempts.(r.Batcher.rid) + 1)
      members;
    let wide_input = Batcher.pack ~dim:cfg.dim ~slots:wide members in
    let env =
      { Fhe_ir.Interp.inputs = [ (lowered.Nn.Lowering.input_name, wide_input) ]; consts }
    in
    (* A fresh evaluator stream per (batch, attempt): retries replay
       deterministically but not identically, and no batch's noise depends
       on how many batches ran before it. *)
    let ev_seed = Int64.logxor ev_base (Int64.of_int ((bid * 257) + attempt)) in
    let ev = Ckks.Evaluator.create ~seed:ev_seed prm in
    let exec () =
      Resilience.Recovery.run ~config:cfg.recovery ~region_of ~noise ev managed env
    in
    let outcome, injected =
      if cfg.chaos_rate > 0.0 then begin
        let injector = Ckks.Fault.create (draw_fault_plan ()) in
        let o =
          match Ckks.Fault.with_faults injector exec with
          | result, stats -> Ok (result, stats)
          | exception Ckks.Evaluator.Fhe_error e -> Error e
        in
        (o, Ckks.Fault.injected injector)
      end
      else
        ( (match exec () with
          | result, stats -> Ok (result, stats)
          | exception Ckks.Evaluator.Fhe_error e -> Error e),
          0 )
    in
    match outcome with
    | Ok (result, stats) ->
        let completion = formed +. result.Fhe_ir.Interp.latency_ms in
        now := completion;
        (* Per-request recovery attribution: the batch's recovery cost is
           split evenly (every member waited through the same rollbacks),
           with the last member absorbing the rounding residue so the
           per-request sum equals the batch total exactly. *)
        let total_rec =
          List.fold_left
            (fun a (_, v) -> a +. v)
            0.0 stats.Resilience.Recovery.recovery_ms_by_kind
        in
        let share = total_rec /. float_of_int size in
        List.iteri
          (fun i (r : Batcher.request) ->
            let amount =
              if i = size - 1 then total_rec -. (share *. float_of_int (size - 1))
              else share
            in
            out_recovery.(r.Batcher.rid) <- out_recovery.(r.Batcher.rid) +. amount)
          members;
        let misses = ref 0 in
        List.iter
          (fun (r : Batcher.request) ->
            out_completion.(r.Batcher.rid) <- completion;
            Obs.metric_observe "service_latency_ms" (completion -. r.Batcher.arrival_ms);
            if completion <= r.Batcher.deadline_ms then begin
              out_outcome.(r.Batcher.rid) <- Some Completed;
              Obs.metric_incr "serve_completed_total"
            end
            else begin
              incr misses;
              out_outcome.(r.Batcher.rid) <- Some (Failed "deadline_missed");
              Obs.metric_incr "serve_failed_total";
              Obs.log_warn ~event:"serve.deadline.missed"
                ~fields:
                  [
                    ("rid", Obs.Json.Int r.Batcher.rid);
                    ("completion_ms", Obs.Json.Float completion);
                    ("deadline_ms", Obs.Json.Float r.Batcher.deadline_ms);
                  ]
                (Printf.sprintf "request %d finished %.1f ms past its deadline"
                   r.Batcher.rid (completion -. r.Batcher.deadline_ms))
            end)
          members;
        note_breaker !now (!misses > 0);
        batch_reports :=
          {
            batch_id = bid;
            formed_ms = formed;
            size;
            attempt;
            members = List.map (fun (r : Batcher.request) -> r.Batcher.rid) members;
            ok = true;
            error = None;
            exec_ms = result.Fhe_ir.Interp.latency_ms;
            injected_faults = injected;
            retries = stats.Resilience.Recovery.retries;
            panic_refreshes = stats.Resilience.Recovery.panic_refreshes;
            recovery_ms_by_kind = stats.Resilience.Recovery.recovery_ms_by_kind;
            backoff_ms_total = stats.Resilience.Recovery.backoff_ms_total;
            capped_backoffs = stats.Resilience.Recovery.capped_backoffs;
          }
          :: !batch_reports
    | Error e ->
        (* The failed attempt still occupied the pipeline for about one
           batch's worth of simulated time.  The supervisor's partial
           recovery accounting dies with the exception, so a failed
           attempt contributes zeros — the per-request recovery invariant
           is over successful batches. *)
        now := formed +. est_batch_ms;
        let cause = Ckks.Evaluator.cause_name e.Ckks.Evaluator.cause in
        Obs.metric_incr "serve_batch_failures_total";
        batch_reports :=
          {
            batch_id = bid;
            formed_ms = formed;
            size;
            attempt;
            members = List.map (fun (r : Batcher.request) -> r.Batcher.rid) members;
            ok = false;
            error = Some cause;
            exec_ms = est_batch_ms;
            injected_faults = injected;
            retries = 0;
            panic_refreshes = 0;
            recovery_ms_by_kind = [];
            backoff_ms_total = 0.0;
            capped_backoffs = 0;
          }
          :: !batch_reports;
        note_breaker !now true;
        let retryable = Ckks.Evaluator.transient e || injected > 0 in
        if retryable && attempt <= cfg.max_retries then begin
          Obs.metric_incr "serve_batch_retries_total";
          let raw = cfg.retry_backoff_ms *. (2.0 ** float_of_int (attempt - 1)) in
          let delay = Float.min raw cfg.recovery.Resilience.Recovery.max_backoff_ms in
          now := !now +. delay;
          (* Deadline-aware retry: a member whose deadline cannot fit even
             a clean re-execution is shed now rather than retried past its
             SLO. *)
          let fits, misfits =
            List.partition
              (fun (r : Batcher.request) ->
                !now +. est_batch_ms <= r.Batcher.deadline_ms)
              members
          in
          List.iter (fun r -> shed_request r "retry_wont_fit") misfits;
          if fits <> [] then run_batch ~attempt:(attempt + 1) fits
        end
        else
          List.iter
            (fun (r : Batcher.request) ->
              out_outcome.(r.Batcher.rid) <- Some (Failed cause);
              Obs.metric_incr "serve_failed_total")
            members
  in
  (* Discrete-event loop over the simulated clock.  Batches execute
     synchronously (arrivals during a batch are admitted when it
     completes — a single-worker pipeline); every branch strictly
     advances [now] or consumes an arrival, so the loop terminates with
     every request terminal. *)
  let continue_loop = ref true in
  while !continue_loop do
    match !pending_arrivals with
    | r :: rest when r.Batcher.arrival_ms <= !now ->
        pending_arrivals := rest;
        Obs.metric_incr "serve_arrivals_total";
        admit r
    | pending -> (
        match !queue with
        | [] -> (
            match pending with
            | [] -> continue_loop := false
            | r :: _ -> now := Float.max !now r.Batcher.arrival_ms)
        | q -> (
            refresh_breaker !now;
            let next_arrival =
              match pending with [] -> None | r :: _ -> Some r.Batcher.arrival_ms
            in
            match Batcher.decide batcher ~now:!now ~cap:(eff_cap ()) ~next_arrival q with
            | Batcher.Dispatch (members, rest) ->
                queue := rest;
                run_batch ~attempt:1 members
            | Batcher.Wait_until t -> now := Float.max !now t
            | Batcher.Idle -> assert false))
  done;
  Obs.metric_set "serve_queue_depth_peak" (float_of_int !qpeak);
  let requests =
    Array.to_list
      (Array.mapi
         (fun rid (r : Batcher.request) ->
           let outcome =
             match out_outcome.(rid) with
             | Some o -> o
             | None -> assert false (* every request terminates exactly once *)
           in
           let completion =
             if Float.is_nan out_completion.(rid) then None
             else Some out_completion.(rid)
           in
           {
             rid;
             arrival_ms = r.Batcher.arrival_ms;
             deadline_ms = r.Batcher.deadline_ms;
             outcome;
             completion_ms = completion;
             service_ms = Option.map (fun c -> c -. r.Batcher.arrival_ms) completion;
             batch = (if out_batch.(rid) < 0 then None else Some out_batch.(rid));
             attempts = out_attempts.(rid);
             recovery_ms = out_recovery.(rid);
           })
         requests)
  in
  let batches = List.rev !batch_reports in
  let count f = List.length (List.filter f requests) in
  let completed = count (fun r -> r.outcome = Completed) in
  let shed = count (fun r -> match r.outcome with Shed _ -> true | _ -> false) in
  let failed = count (fun r -> match r.outcome with Failed _ -> true | _ -> false) in
  let services =
    List.sort compare (List.filter_map (fun r -> r.service_ms) requests)
  in
  {
    config_seed = cfg.seed;
    model = cfg.model;
    slot_capacity;
    est_batch_ms;
    slo_ms;
    max_wait_ms;
    arrivals = n_arrivals;
    admitted = !admitted;
    completed;
    shed;
    failed;
    shed_by_reason =
      sorted_counts
        (List.filter_map
           (fun r -> match r.outcome with Shed why -> Some why | _ -> None)
           requests);
    failed_by_cause =
      sorted_counts
        (List.filter_map
           (fun r -> match r.outcome with Failed c -> Some c | _ -> None)
           requests);
    deadline_misses = count (fun r -> r.outcome = Failed "deadline_missed");
    goodput_rps =
      (if cfg.duration_ms <= 0.0 then 0.0
       else float_of_int completed /. (cfg.duration_ms /. 1000.0));
    slo_attainment =
      (if !admitted = 0 then 1.0
       else float_of_int completed /. float_of_int !admitted);
    p50_service_ms = percentile services 0.50;
    p99_service_ms = percentile services 0.99;
    queue_depth_peak = !qpeak;
    batches_run = List.length batches;
    batch_retries =
      List.length (List.filter (fun (b : batch_report) -> b.attempt > 1) batches);
    mean_batch_fill =
      (match batches with
      | [] -> 1.0
      | bs ->
          List.fold_left
            (fun a (b : batch_report) ->
              a +. (float_of_int b.size /. float_of_int slot_capacity))
            0.0 bs
          /. float_of_int (List.length bs));
    breaker_opens = !breaker_opens;
    recovery_ms_by_kind =
      merge_ms (List.map (fun (b : batch_report) -> b.recovery_ms_by_kind) batches);
    backoff_ms_total =
      List.fold_left (fun a (b : batch_report) -> a +. b.backoff_ms_total) 0.0 batches;
    capped_backoffs =
      List.fold_left (fun a (b : batch_report) -> a + b.capped_backoffs) 0 batches;
    requests;
    batches;
  }

let opt_float = function
  | None -> Obs.Json.Null
  | Some v -> Obs.Json.Float v

let nan_null v = if Float.is_nan v then Obs.Json.Null else Obs.Json.Float v

let request_to_json r =
  Obs.Json.Obj
    [
      ("rid", Obs.Json.Int r.rid);
      ("arrival_ms", Obs.Json.Float r.arrival_ms);
      ("deadline_ms", Obs.Json.Float r.deadline_ms);
      ("outcome", Obs.Json.String (outcome_name r.outcome));
      ( "detail",
        match r.outcome with
        | Completed -> Obs.Json.Null
        | Shed why -> Obs.Json.String why
        | Failed cause -> Obs.Json.String cause );
      ("completion_ms", opt_float r.completion_ms);
      ("service_ms", opt_float r.service_ms);
      ( "batch",
        match r.batch with None -> Obs.Json.Null | Some b -> Obs.Json.Int b );
      ("attempts", Obs.Json.Int r.attempts);
      ("recovery_ms", Obs.Json.Float r.recovery_ms);
    ]

let batch_to_json (b : batch_report) =
  Obs.Json.Obj
    [
      ("batch", Obs.Json.Int b.batch_id);
      ("formed_ms", Obs.Json.Float b.formed_ms);
      ("size", Obs.Json.Int b.size);
      ("attempt", Obs.Json.Int b.attempt);
      ("members", Obs.Json.List (List.map (fun r -> Obs.Json.Int r) b.members));
      ("ok", Obs.Json.Bool b.ok);
      ( "error",
        match b.error with None -> Obs.Json.Null | Some e -> Obs.Json.String e );
      ("exec_ms", Obs.Json.Float b.exec_ms);
      ("injected_faults", Obs.Json.Int b.injected_faults);
      ("retries", Obs.Json.Int b.retries);
      ("panic_refreshes", Obs.Json.Int b.panic_refreshes);
      ( "recovery",
        Resilience.Recovery.accounting_json ~recovery_ms_by_kind:b.recovery_ms_by_kind
          ~backoff_ms_total:b.backoff_ms_total ~capped_backoffs:b.capped_backoffs );
    ]

let json_kv_counts kvs =
  Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) kvs)

let to_json r =
  Obs.Json.Obj
    [
      ("seed", Obs.Json.String (Int64.to_string r.config_seed));
      ("model", Obs.Json.String r.model);
      ("slot_capacity", Obs.Json.Int r.slot_capacity);
      ("est_batch_ms", Obs.Json.Float r.est_batch_ms);
      ("slo_ms", Obs.Json.Float r.slo_ms);
      ("max_wait_ms", Obs.Json.Float r.max_wait_ms);
      ("arrivals", Obs.Json.Int r.arrivals);
      ("admitted", Obs.Json.Int r.admitted);
      ("completed", Obs.Json.Int r.completed);
      ("shed", Obs.Json.Int r.shed);
      ("failed", Obs.Json.Int r.failed);
      ("shed_by_reason", json_kv_counts r.shed_by_reason);
      ("failed_by_cause", json_kv_counts r.failed_by_cause);
      ("deadline_misses", Obs.Json.Int r.deadline_misses);
      ("goodput_rps", Obs.Json.Float r.goodput_rps);
      ("slo_attainment", Obs.Json.Float r.slo_attainment);
      ("p50_service_ms", nan_null r.p50_service_ms);
      ("p99_service_ms", nan_null r.p99_service_ms);
      ("queue_depth_peak", Obs.Json.Int r.queue_depth_peak);
      ("batches_run", Obs.Json.Int r.batches_run);
      ("batch_retries", Obs.Json.Int r.batch_retries);
      ("mean_batch_fill", Obs.Json.Float r.mean_batch_fill);
      ("breaker_opens", Obs.Json.Int r.breaker_opens);
      ( "recovery",
        Resilience.Recovery.accounting_json ~recovery_ms_by_kind:r.recovery_ms_by_kind
          ~backoff_ms_total:r.backoff_ms_total ~capped_backoffs:r.capped_backoffs );
      ("requests", Obs.Json.List (List.map request_to_json r.requests));
      ("batches", Obs.Json.List (List.map batch_to_json r.batches));
    ]
