(** Simulated homomorphic evaluator for RNS-CKKS.

    Implements exactly the operation semantics of Table 1 and enforces the
    operation constraints of Section 2.2:

    - levels are non-negative and match for binary operations;
    - scales match for additions;
    - the scale stays within the modulus capacity
      [level >= ceil(scale / q) - 1];
    - rescaling requires [scale >= q * q_w] and a level to spend;
    - bootstrapping targets a level in [1, l_max] and resets the scale
      to [q].

    A violated constraint raises {!Fhe_error} carrying a structured
    {!error}: the {!cause}, the op name, the DFG node ({!Fault.site}) when
    the interpreter attributed one, and the scheme state at the raise site
    (level, scale, noise headroom) — so recovery policies and diagnostics
    dispatch on the cause rather than on message substrings.
    {!error_message} recovers the legacy human-readable string; messages
    are unchanged from the unstructured era.  This is how the test suite
    proves that unmanaged programs fail (Figure 1a) while compiled ones
    run.  The evaluator also injects deterministic noise so the Table 6
    fidelity experiment measures a real end-to-end error.

    When an ambient {!Obs.Trace} is installed ({!Obs.with_trace}), every
    Table 1 operation records an op event (result level/scale/size, noise
    before/after, Table 2 cost); rescale, modswitch and bootstrap add
    level-transition instants; and a constraint failure leaves a final
    ["fhe_error"] instant before {!Fhe_error} is raised.  Tracing never
    changes results (the noise PRNG is untouched) and costs one option
    check per operation when disabled.

    When an ambient {!Fault} injector is installed ({!Fault.with_faults}),
    every operation's result passes through the injector, which may spike
    its noise, drift its scale bookkeeping, corrupt a slot, or fail the
    operation with a retryable [Injected_transient] error.  Injection
    draws use the injector's private PRNG stream, so a run with no
    injector installed is bit-identical to one before this layer existed
    (one option check per operation). *)

(** Why a runtime constraint failed — the dispatch key for recovery. *)
type cause =
  | Scale_overflow  (** scale exceeds the modulus capacity at this level *)
  | Scale_mismatch  (** addition operands at different scales *)
  | Level_mismatch  (** binary-op operands at different levels *)
  | Level_underflow  (** rescale/modswitch with no level to spend *)
  | Scale_underflow  (** rescale below [q * q_w] *)
  | Size_mismatch  (** not relinearised (or relin of a size-2 ct) *)
  | Slot_mismatch  (** slot-count mismatch or empty ciphertext *)
  | Target_out_of_range  (** bootstrap target outside [1, l_max] *)
  | Negative_level  (** encrypt at a negative level *)
  | Illegal_graph  (** statically illegal DFG (raised by {!Fhe_ir.Interp}) *)
  | State_divergence
      (** runtime state diverged from the static plan beyond repair
          (raised by recovery, not by the evaluator itself) *)
  | Injected_transient  (** a {!Fault.Transient} injection; retryable *)

val cause_name : cause -> string
(** Stable snake_case name, e.g. ["scale_overflow"] — used as the metric
    label and in trace instants. *)

type error = {
  cause : cause;
  op : string;  (** operation that raised, e.g. ["mul_cc"] *)
  node : int;  (** DFG node ({!Fault.site}) at raise time; [-1] = none *)
  level : int;  (** operand/result level at the raise site; [-1] unknown *)
  scale_bits : int;  (** scale at the raise site; [-1] unknown *)
  headroom_bits : float;  (** noise headroom at the raise site; [nan] unknown *)
  message : string;  (** legacy human-readable message *)
}

exception Fhe_error of error

val error_message : error -> string
(** The legacy string payload — byte-identical to the messages raised
    before the structured change. *)

val transient : error -> bool
(** [true] exactly for [Injected_transient]: retrying the computation may
    succeed without any state repair. *)

val error :
  ?node:int ->
  ?level:int ->
  ?scale_bits:int ->
  ?noise:float ->
  cause ->
  op:string ->
  string ->
  error
(** Build an error; [node] defaults to the current {!Fault.site},
    [headroom_bits] is derived from [noise] when given. *)

val raise_error : error -> 'a
(** The single raise funnel: records one ["fhe_error"] trace instant and
    one [fhe_errors_total] count (labelled by cause), then raises
    {!Fhe_error}.  Every raise path in the evaluator and the interpreter
    goes through here, so errors are counted exactly once. *)

type t

val create : ?seed:int64 -> Params.t -> t

val params : t -> Params.t

val op_count : t -> int
(** Number of homomorphic operations executed so far. *)

val encode : t -> ?scale_bits:int -> float array -> Plaintext.t
(** Encode at [scale_bits] (default: the waterline, as EVA encodes weights
    and biases). *)

val encrypt : t -> ?level:int -> ?scale_bits:int -> float array -> Ciphertext.t
(** Fresh ciphertext (defaults from the parameters' input level/scale). *)

val decrypt : t -> Ciphertext.t -> float array

val add_cc : t -> Ciphertext.t -> Ciphertext.t -> Ciphertext.t
val add_cp : t -> Ciphertext.t -> Plaintext.t -> Ciphertext.t
val mul_cc : t -> Ciphertext.t -> Ciphertext.t -> Ciphertext.t
(** Result has [size = 3]; relinearise before using it elsewhere. *)

val mul_cp : t -> Ciphertext.t -> Plaintext.t -> Ciphertext.t
val rotate : t -> Ciphertext.t -> int -> Ciphertext.t
val relin : t -> Ciphertext.t -> Ciphertext.t
val rescale : t -> Ciphertext.t -> Ciphertext.t
val modswitch : t -> Ciphertext.t -> Ciphertext.t
val bootstrap : t -> Ciphertext.t -> target_level:int -> Ciphertext.t

val refresh : t -> Ciphertext.t -> Ciphertext.t
(** Panic re-bootstrap for recovery: a bootstrap-priced noise reset that
    keeps the level and scale unchanged (so the static plan's bookkeeping
    still holds) while resetting the error estimate to the bootstrap
    output precision.  In a real backend this is a bootstrap to the same
    level; the simulator separates it from {!bootstrap} because Table 1's
    bootstrap also rewrites scale and level, which recovery must not. *)

val capacity_ok : Params.t -> scale_bits:int -> level:int -> bool
(** The paper's capacity constraint
    [level >= ceil(scale_bits / q_bits) - 1]. *)
