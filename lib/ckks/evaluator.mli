(** Simulated homomorphic evaluator for RNS-CKKS.

    Implements exactly the operation semantics of Table 1 and enforces the
    operation constraints of Section 2.2:

    - levels are non-negative and match for binary operations;
    - scales match for additions;
    - the scale stays within the modulus capacity
      [level >= ceil(scale / q) - 1];
    - rescaling requires [scale >= q * q_w] and a level to spend;
    - bootstrapping targets a level in [1, l_max] and resets the scale
      to [q].

    A violated constraint raises {!Fhe_error} — this is how the test suite
    proves that unmanaged programs fail (Figure 1a) while compiled ones
    run.  The evaluator also injects deterministic noise so the Table 6
    fidelity experiment measures a real end-to-end error.

    When an ambient {!Obs.Trace} is installed ({!Obs.with_trace}), every
    Table 1 operation records an op event (result level/scale/size, noise
    before/after, Table 2 cost); rescale, modswitch and bootstrap add
    level-transition instants; and a constraint failure leaves a final
    ["fhe_error"] instant before {!Fhe_error} is raised.  Tracing never
    changes results (the noise PRNG is untouched) and costs one option
    check per operation when disabled. *)

exception Fhe_error of string

type t

val create : ?seed:int64 -> Params.t -> t

val params : t -> Params.t

val op_count : t -> int
(** Number of homomorphic operations executed so far. *)

val encode : t -> ?scale_bits:int -> float array -> Plaintext.t
(** Encode at [scale_bits] (default: the waterline, as EVA encodes weights
    and biases). *)

val encrypt : t -> ?level:int -> ?scale_bits:int -> float array -> Ciphertext.t
(** Fresh ciphertext (defaults from the parameters' input level/scale). *)

val decrypt : t -> Ciphertext.t -> float array

val add_cc : t -> Ciphertext.t -> Ciphertext.t -> Ciphertext.t
val add_cp : t -> Ciphertext.t -> Plaintext.t -> Ciphertext.t
val mul_cc : t -> Ciphertext.t -> Ciphertext.t -> Ciphertext.t
(** Result has [size = 3]; relinearise before using it elsewhere. *)

val mul_cp : t -> Ciphertext.t -> Plaintext.t -> Ciphertext.t
val rotate : t -> Ciphertext.t -> int -> Ciphertext.t
val relin : t -> Ciphertext.t -> Ciphertext.t
val rescale : t -> Ciphertext.t -> Ciphertext.t
val modswitch : t -> Ciphertext.t -> Ciphertext.t
val bootstrap : t -> Ciphertext.t -> target_level:int -> Ciphertext.t

val capacity_ok : Params.t -> scale_bits:int -> level:int -> bool
(** The paper's capacity constraint
    [level >= ceil(scale_bits / q_bits) - 1]. *)
