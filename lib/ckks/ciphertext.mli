(** Simulated RNS-CKKS ciphertexts.

    A ciphertext carries the decoded slot values, the scale (in bits), the
    level, the number of polynomial components ([size] — 2 normally, 3
    right after a ciphertext-ciphertext multiplication until
    relinearisation), and a running absolute-error bound standing in for
    cryptographic noise.  The evaluator is the only producer of
    ciphertexts with interesting states. *)

type t = {
  slots : float array;
  scale_bits : int;
  level : int;
  size : int;
  err : float;  (** Absolute per-slot error bound (noise estimate). *)
  chk : int64;
      (** Slot integrity checksum, computed by {!make}.  Every legitimate
          operation rebuilds its result through {!make}, so [chk] always
          matches the slots — except after an injected [Slot_corrupt]
          fault, which deliberately preserves the pre-fault checksum so
          boundary validation ({!integrity_ok}) can detect silent
          corruption that sits below the noise floor. *)
}

val make :
  slots:float array -> scale_bits:int -> level:int -> size:int -> err:float -> t

val checksum : float array -> int64
(** Order-independent XOR of the slot bit patterns — exact, so any
    representable change to any slot changes the checksum. *)

val integrity_ok : t -> bool
(** Recompute the checksum of the current slots and compare with [chk].
    False means the slots were mutated outside {!make} — in this
    simulator, only injected slot corruption does that. *)

val slice : t -> off:int -> len:int -> float array
(** [slice ct ~off ~len] copies the slot block [[off, off+len)] — how a
    slot-batched serving layer extracts one packed request's result from a
    shared ciphertext.  @raise Invalid_argument when the block falls
    outside the slot vector. *)

val max_abs : t -> float

val pp : Format.formatter -> t -> unit
