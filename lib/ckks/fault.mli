(** Deterministic seeded fault injection for the simulated evaluator.

    A fault {!plan} describes what can go wrong — noise spikes, scale
    drift, transient op failures, slot corruption — as a list of {!rule}s
    (per-op-kind probability, optional per-node targeting) under a global
    fault budget.  An injector {!t} instantiates a plan with its own
    SplitMix64 stream, so fault decisions never touch the evaluator's
    noise PRNG: running with no injector installed is bit-identical to a
    build without this module.

    The injector is installed ambiently ({!with_faults}), with the same
    option-check discipline as {!Obs.with_trace}: the fault-off fast path
    in the evaluator is a single option check per operation.  Every
    injection is recorded as a ["fault"] trace instant (when a trace is
    installed) and counted in the [fhe_faults_total] metric, labelled by
    fault kind and op.

    The module also owns the ambient {e site} context: the interpreter
    publishes the DFG node id it is about to execute ({!set_site}) so
    injections and structured evaluator errors can be attributed to a
    node even when no trace is installed. *)

type kind =
  | Noise_spike  (** multiply the noise estimate by [2^mag] and jitter slots *)
  | Scale_drift  (** silently add [int mag] bits to the bookkept scale *)
  | Transient  (** the operation fails with a retryable error *)
  | Slot_corrupt  (** perturb one slot by ~[2^mag]; noise bumped in quadrature *)

val kind_name : kind -> string
(** ["noise_spike"], ["scale_drift"], ["transient"], ["slot_corrupt"]. *)

type rule = {
  kind : kind;
  prob : float;  (** per-op injection probability in [0, 1] *)
  mag : float;  (** magnitude in bits; interpretation depends on [kind] *)
  ops : string list;  (** op names the rule applies to; [[]] = every op *)
  nodes : int list;  (** node ids the rule applies to; [[]] = every node *)
}

val rule : ?ops:string list -> ?nodes:int list -> kind -> prob:float -> mag:float -> rule

type plan = {
  seed : int64;
  rules : rule list;
  budget : int;  (** max total injections; negative = unlimited *)
}

type injection = {
  index : int;  (** 0-based injection ordinal within the run *)
  inj_kind : kind;
  inj_op : string;
  inj_node : int;  (** site at injection time; -1 when unattributed *)
  inj_mag : float;
}

type t

val create : plan -> t
(** Fresh injector with its own PRNG stream seeded from [plan.seed]. *)

val rng : t -> Prng.t
(** The injector's private stream — used for fault-effect draws (slot
    choice, perturbation sign) so the evaluator's noise PRNG is never
    consumed by injection. *)

val draw : t -> op:string -> (kind * float) option
(** Decide whether a fault fires for the operation [op] at the current
    {!site}.  Rules are tried in plan order; the first that matches the
    op/node filters and wins its probability draw fires.  A firing is
    logged, traced and counted before this returns.  Returns the kind and
    magnitude, or [None] (no matching rule won, or budget exhausted). *)

val injected : t -> int
(** Number of injections so far (recovery snapshots this at checkpoints
    to tell fault-tainted re-execution spans from clean ones). *)

val injections : t -> injection list
(** All injections so far, in firing order. *)

val with_faults : t -> (unit -> 'a) -> 'a
(** Install the injector ambiently for the callback (exception-safe). *)

val current : unit -> t option

val set_site : int -> unit
(** Publish the DFG node about to execute ([-1] = none).  Read by
    {!draw} for per-node rule targeting and by the evaluator for error
    attribution. *)

val site : unit -> int
