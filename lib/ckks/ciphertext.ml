type t = {
  slots : float array;
  scale_bits : int;
  level : int;
  size : int;
  err : float;
  chk : int64;
}

(* Order-independent XOR of the slot bit patterns: exact (no float
   rounding, no absorption), so any corruption that changes a slot's
   representable value changes the checksum — including single-slot
   deltas far below the noise floor, which the err-based boundary
   validator cannot see. *)
let checksum slots =
  Array.fold_left (fun acc v -> Int64.logxor acc (Int64.bits_of_float v)) 0L slots

let make ~slots ~scale_bits ~level ~size ~err =
  if scale_bits <= 0 then invalid_arg "Ciphertext.make: scale must be positive";
  if level < 0 then invalid_arg "Ciphertext.make: negative level";
  if size < 2 then invalid_arg "Ciphertext.make: size below 2";
  { slots; scale_bits; level; size; err; chk = checksum slots }

let integrity_ok ct = Int64.equal (checksum ct.slots) ct.chk

let slice ct ~off ~len =
  if off < 0 || len < 0 || off + len > Array.length ct.slots then
    invalid_arg
      (Printf.sprintf "Ciphertext.slice: block [%d, %d) outside %d slots" off (off + len)
         (Array.length ct.slots));
  Array.sub ct.slots off len

let max_abs ct = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 ct.slots

let pp ppf ct =
  Format.fprintf ppf "@[<h>ct(%d slots, scale 2^%d, L%d, size %d, err %.3g)@]"
    (Array.length ct.slots) ct.scale_bits ct.level ct.size ct.err
