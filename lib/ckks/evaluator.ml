type cause =
  | Scale_overflow
  | Scale_mismatch
  | Level_mismatch
  | Level_underflow
  | Scale_underflow
  | Size_mismatch
  | Slot_mismatch
  | Target_out_of_range
  | Negative_level
  | Illegal_graph
  | State_divergence
  | Injected_transient

let cause_name = function
  | Scale_overflow -> "scale_overflow"
  | Scale_mismatch -> "scale_mismatch"
  | Level_mismatch -> "level_mismatch"
  | Level_underflow -> "level_underflow"
  | Scale_underflow -> "scale_underflow"
  | Size_mismatch -> "size_mismatch"
  | Slot_mismatch -> "slot_mismatch"
  | Target_out_of_range -> "target_out_of_range"
  | Negative_level -> "negative_level"
  | Illegal_graph -> "illegal_graph"
  | State_divergence -> "state_divergence"
  | Injected_transient -> "injected_transient"

type error = {
  cause : cause;
  op : string;
  node : int;
  level : int;
  scale_bits : int;
  headroom_bits : float;
  message : string;
}

exception Fhe_error of error

let error_message e = e.message
let transient e = match e.cause with Injected_transient -> true | _ -> false

let () =
  Printexc.register_printer (function
    | Fhe_error e ->
        Some
          (Format.asprintf "Fhe_error(%s: %s%s)" (cause_name e.cause) e.message
             (if e.node >= 0 then Format.asprintf " [node %d]" e.node else ""))
    | _ -> None)

let error ?node ?(level = -1) ?(scale_bits = -1) ?(noise = nan) cause ~op message =
  let node = match node with Some n -> n | None -> Fault.site () in
  let headroom_bits =
    if Float.is_nan noise then nan else Obs.Trace.headroom_bits noise
  in
  { cause; op; node; level; scale_bits; headroom_bits; message }

(* The single funnel for every runtime-constraint failure: one final
   "fhe_error" instant on the ambient trace (so a crashing unmanaged run —
   Figure 1a — ends its flight record with the faulting node and message)
   and exactly one [fhe_errors_total] count per raise. *)
let raise_error e =
  Obs.trace_instant ~name:"fhe_error"
    ?node:(if e.node >= 0 then Some e.node else None)
    ~detail:
      [
        ("message", Obs.Json.String e.message);
        ("cause", Obs.Json.String (cause_name e.cause));
        ("op", Obs.Json.String e.op);
      ]
    ();
  Obs.metric_incr ~labels:[ ("cause", cause_name e.cause) ] "fhe_errors_total";
  raise (Fhe_error e)

let failc cause ~op ?level ?scale_bits ?noise fmt =
  Format.kasprintf
    (fun message -> raise_error (error ?level ?scale_bits ?noise cause ~op message))
    fmt

type t = { prm : Params.t; rng : Prng.t; mutable ops : int }

let create ?(seed = 0x5EEDL) prm =
  (match Params.validate prm with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Evaluator.create: " ^ msg));
  { prm; rng = Prng.create seed; ops = 0 }

let params t = t.prm
let op_count t = t.ops

let pow2 bits = 2.0 ** bits

(* The error estimate is a root-mean-square propagation, not a worst-case
   interval bound: the operands' errors are already embodied in the slot
   values (they propagate through the arithmetic automatically), so only
   the *fresh* noise of each operation is injected into the slots, and the
   [err] field combines contributions in quadrature as independent noise
   does.  A worst-case bound would grow exponentially with the
   multiplicative depth and say nothing about real behaviour. *)
let rms2 a b = sqrt ((a *. a) +. (b *. b))

(* Apply an injected fault to the result of an operation.  Every draw —
   the firing decision in [Fault.draw] and the effect parameters here —
   comes from the injector's private stream, never from [t.rng], so the
   evaluator's noise sequence (and hence any fault-free re-execution) is
   untouched by the injector's presence. *)
let apply_fault f op (ct : Ciphertext.t) =
  match Fault.draw f ~op with
  | None -> ct
  | Some (Fault.Noise_spike, mag) ->
      let err = ct.Ciphertext.err *. pow2 mag in
      let slots =
        Array.map
          (fun v -> v +. Prng.uniform (Fault.rng f) ~lo:(-.err) ~hi:err)
          ct.Ciphertext.slots
      in
      Ciphertext.make ~slots ~scale_bits:ct.scale_bits ~level:ct.level ~size:ct.size
        ~err
  | Some (Fault.Scale_drift, mag) ->
      Ciphertext.make ~slots:ct.Ciphertext.slots
        ~scale_bits:(ct.scale_bits + int_of_float mag)
        ~level:ct.level ~size:ct.size ~err:ct.err
  | Some (Fault.Transient, _) ->
      failc Injected_transient ~op ~level:ct.Ciphertext.level
        ~scale_bits:ct.Ciphertext.scale_bits ~noise:ct.Ciphertext.err
        "%s: injected transient backend fault" op
  | Some (Fault.Slot_corrupt, mag) ->
      let n = Array.length ct.Ciphertext.slots in
      if n = 0 then ct
      else begin
        let i = Prng.int (Fault.rng f) ~bound:n in
        let amp = pow2 mag in
        let delta = Prng.uniform (Fault.rng f) ~lo:(amp /. 2.0) ~hi:amp in
        let sign = if Prng.float (Fault.rng f) < 0.5 then -1.0 else 1.0 in
        let slots = Array.copy ct.Ciphertext.slots in
        slots.(i) <- slots.(i) +. (sign *. delta);
        (* Bump the bookkept noise in quadrature so the corruption is
           visible to headroom monitoring, not only at decryption.  Keep
           the PRE-fault checksum: real memory corruption mutates slots
           behind the scheme's back, so the stored [chk] no longer
           matches — that mismatch is exactly what boundary integrity
           validation uses to catch corruption too small for the noise
           monitors. *)
        let corrupted =
          Ciphertext.make ~slots ~scale_bits:ct.scale_bits ~level:ct.level
            ~size:ct.size ~err:(rms2 ct.err amp)
        in
        { corrupted with Ciphertext.chk = ct.Ciphertext.chk }
      end

(* Per-op tracing: when an ambient trace is installed, record the result's
   scheme state (level/scale/size/noise) plus the operand noise, charging
   the Table 2 cost at [charge_level] (the operand level, or the target
   level for bootstrap — the same convention as Fhe_ir.Latency).  An
   interpreter-installed context overrides the cost with the node's
   freq-weighted attribution.  Without a trace this is one option check.
   An ambient fault injector, when installed, intercepts the result first
   (and may raise for a transient fault) so the recorded event reflects
   what the backend actually delivered. *)
let traced op cost_op ~charge_level ?(noise_before = 0.0) (ct : Ciphertext.t) =
  let ct = match Fault.current () with None -> ct | Some f -> apply_fault f op ct in
  (match Obs.current_trace () with
  | None -> ()
  | Some tr ->
      let cost_ms =
        match cost_op with
        | Some o -> Cost_model.cost o ~level:charge_level
        | None -> 0.0
      in
      Obs.Trace.record tr ~op ~cost_ms ~noise_before ~level:ct.Ciphertext.level
        ~scale_bits:ct.Ciphertext.scale_bits ~size:ct.Ciphertext.size
        ~noise:ct.Ciphertext.err ());
  (* Aggregate-metrics tier: per-op-kind execution counts and the
     noise-headroom distribution, independent of any flight recorder. *)
  (match Obs.current_metrics () with
  | None -> ()
  | Some m ->
      let labels = [ ("op", op) ] in
      Obs.Metrics.incr m ~labels "fhe_ops_total";
      Obs.Metrics.observe m ~labels "fhe_noise_headroom_bits"
        (Obs.Trace.headroom_bits ct.Ciphertext.err));
  ct

let level_transition name ~from_level ~to_level =
  Obs.trace_instant ~name
    ~detail:
      [ ("from_level", Obs.Json.Int from_level); ("to_level", Obs.Json.Int to_level) ]
    ()

let capacity_ok prm ~scale_bits ~level =
  (* ct.level >= ceil(log(ct.scale)/log(q)) - 1, in bits *)
  let q = prm.Params.scale_bits in
  level >= ((scale_bits + q - 1) / q) - 1

let check_capacity t ~what ~scale_bits ~level =
  if not (capacity_ok t.prm ~scale_bits ~level) then
    failc Scale_overflow ~op:what ~level ~scale_bits
      "%s: scale overflow (scale 2^%d exceeds capacity at level %d)" what scale_bits
      level

let check_size ~what (ct : Ciphertext.t) =
  if ct.size <> 2 then
    failc Size_mismatch ~op:what ~level:ct.level ~scale_bits:ct.scale_bits
      ~noise:ct.err "%s: operand not relinearised (size %d)" what ct.size

(* Perturb a value by a deterministic pseudo-random amount bounded by
   [bound]; this turns the error *bound* bookkeeping into an actual
   end-to-end error measurable at decryption. *)
let jitter t ~bound v = v +. Prng.uniform t.rng ~lo:(-.bound) ~hi:bound

let fresh_noise_bits = 10.0
let rotate_noise_bits = 12.0
let bootstrap_precision_bits = 22.0

let encode t ?scale_bits slots =
  let scale_bits = Option.value scale_bits ~default:t.prm.Params.waterline_bits in
  Plaintext.encode ~scale_bits slots

let encrypt t ?level ?scale_bits slots =
  t.ops <- t.ops + 1;
  let level = Option.value level ~default:t.prm.Params.input_level
  and scale_bits = Option.value scale_bits ~default:t.prm.Params.input_scale_bits in
  if level < 0 then failc Negative_level ~op:"encrypt" ~level "encrypt: negative level";
  check_capacity t ~what:"encrypt" ~scale_bits ~level;
  let err = pow2 (fresh_noise_bits -. float_of_int scale_bits) in
  let slots = Array.map (jitter t ~bound:err) slots in
  traced "encrypt" None ~charge_level:level
    (Ciphertext.make ~slots ~scale_bits ~level ~size:2 ~err)

let decrypt _t (ct : Ciphertext.t) =
  if ct.size <> 2 then
    failc Size_mismatch ~op:"decrypt" ~level:ct.level ~scale_bits:ct.scale_bits
      ~noise:ct.err "decrypt: ciphertext not relinearised";
  Array.copy ct.slots

let binary_slots ~what a b f =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then
    failc Slot_mismatch ~op:what "%s: slot count mismatch (%d vs %d)" what la lb;
  Array.init la (fun i -> f a.(i) b.(i))

let add_cc t (a : Ciphertext.t) (b : Ciphertext.t) =
  t.ops <- t.ops + 1;
  check_size ~what:"add_cc" a;
  check_size ~what:"add_cc" b;
  if a.level <> b.level then
    failc Level_mismatch ~op:"add_cc" ~level:a.level ~scale_bits:a.scale_bits
      ~noise:a.err "add_cc: level mismatch (%d vs %d)" a.level b.level;
  if a.scale_bits <> b.scale_bits then
    failc Scale_mismatch ~op:"add_cc" ~level:a.level ~scale_bits:a.scale_bits
      ~noise:a.err "add_cc: scale mismatch (2^%d vs 2^%d)" a.scale_bits b.scale_bits;
  let slots = binary_slots ~what:"add_cc" a.slots b.slots ( +. ) in
  traced "add_cc" (Some Cost_model.Add_cc) ~charge_level:a.level
    ~noise_before:(Float.max a.err b.err)
    (Ciphertext.make ~slots ~scale_bits:a.scale_bits ~level:a.level ~size:2
       ~err:(rms2 a.err b.err))

let add_cp t (a : Ciphertext.t) (pt : Plaintext.t) =
  t.ops <- t.ops + 1;
  check_size ~what:"add_cp" a;
  if a.scale_bits <> pt.scale_bits then
    failc Scale_mismatch ~op:"add_cp" ~level:a.level ~scale_bits:a.scale_bits
      ~noise:a.err "add_cp: scale mismatch (ct 2^%d vs pt 2^%d)" a.scale_bits
      pt.scale_bits;
  let slots = binary_slots ~what:"add_cp" a.slots pt.slots ( +. ) in
  traced "add_cp" (Some Cost_model.Add_cp) ~charge_level:a.level ~noise_before:a.err
    (Ciphertext.make ~slots ~scale_bits:a.scale_bits ~level:a.level ~size:2
       ~err:(rms2 a.err pt.err))

let mul_err ~a_max ~b_max ~a_err ~b_err ~fresh =
  rms2 (rms2 (a_max *. b_err) (b_max *. a_err)) fresh

let mul_cc t (a : Ciphertext.t) (b : Ciphertext.t) =
  t.ops <- t.ops + 1;
  check_size ~what:"mul_cc" a;
  check_size ~what:"mul_cc" b;
  if a.level <> b.level then
    failc Level_mismatch ~op:"mul_cc" ~level:a.level ~scale_bits:a.scale_bits
      ~noise:a.err "mul_cc: level mismatch (%d vs %d)" a.level b.level;
  let scale_bits = a.scale_bits + b.scale_bits in
  check_capacity t ~what:"mul_cc" ~scale_bits ~level:a.level;
  let fresh = pow2 (fresh_noise_bits -. float_of_int scale_bits) in
  let err =
    mul_err ~a_max:(Ciphertext.max_abs a) ~b_max:(Ciphertext.max_abs b) ~a_err:a.err
      ~b_err:b.err ~fresh
  in
  let slots =
    binary_slots ~what:"mul_cc" a.slots b.slots (fun x y -> jitter t ~bound:fresh (x *. y))
  in
  traced "mul_cc" (Some Cost_model.Mul_cc) ~charge_level:a.level
    ~noise_before:(Float.max a.err b.err)
    (Ciphertext.make ~slots ~scale_bits ~level:a.level ~size:3 ~err)

let mul_cp t (a : Ciphertext.t) (pt : Plaintext.t) =
  t.ops <- t.ops + 1;
  check_size ~what:"mul_cp" a;
  let scale_bits = a.scale_bits + pt.scale_bits in
  check_capacity t ~what:"mul_cp" ~scale_bits ~level:a.level;
  let fresh = pow2 (fresh_noise_bits -. float_of_int scale_bits) in
  let err =
    mul_err ~a_max:(Ciphertext.max_abs a) ~b_max:(Plaintext.max_abs pt) ~a_err:a.err
      ~b_err:pt.err ~fresh
  in
  let slots =
    binary_slots ~what:"mul_cp" a.slots pt.slots (fun x y -> jitter t ~bound:fresh (x *. y))
  in
  traced "mul_cp" (Some Cost_model.Mul_cp) ~charge_level:a.level ~noise_before:a.err
    (Ciphertext.make ~slots ~scale_bits ~level:a.level ~size:2 ~err)

let rotate t (ct : Ciphertext.t) k =
  t.ops <- t.ops + 1;
  check_size ~what:"rotate" ct;
  let n = Array.length ct.slots in
  if n = 0 then
    failc Slot_mismatch ~op:"rotate" ~level:ct.level ~scale_bits:ct.scale_bits
      ~noise:ct.err "rotate: empty ciphertext";
  let k = ((k mod n) + n) mod n in
  let extra = pow2 (rotate_noise_bits -. float_of_int ct.scale_bits) in
  let slots = Array.init n (fun i -> jitter t ~bound:extra ct.slots.((i + k) mod n)) in
  traced "rotate" (Some Cost_model.Rotate) ~charge_level:ct.level ~noise_before:ct.err
    (Ciphertext.make ~slots ~scale_bits:ct.scale_bits ~level:ct.level ~size:2
       ~err:(rms2 ct.err extra))

let relin t (ct : Ciphertext.t) =
  t.ops <- t.ops + 1;
  if ct.size <> 3 then
    failc Size_mismatch ~op:"relin" ~level:ct.level ~scale_bits:ct.scale_bits
      ~noise:ct.err "relin: expected size-3 ciphertext (got %d)" ct.size;
  let extra = pow2 (rotate_noise_bits -. float_of_int ct.scale_bits) in
  let slots = Array.map (jitter t ~bound:extra) ct.slots in
  traced "relin" (Some Cost_model.Relin) ~charge_level:ct.level ~noise_before:ct.err
    (Ciphertext.make ~slots ~scale_bits:ct.scale_bits ~level:ct.level ~size:2
       ~err:(rms2 ct.err extra))

let rescale t (ct : Ciphertext.t) =
  t.ops <- t.ops + 1;
  check_size ~what:"rescale" ct;
  let q = t.prm.Params.scale_bits and qw = t.prm.Params.waterline_bits in
  if ct.level < 1 then
    failc Level_underflow ~op:"rescale" ~level:ct.level ~scale_bits:ct.scale_bits
      ~noise:ct.err "rescale: no level to spend (level %d)" ct.level;
  if ct.scale_bits < q + qw then
    failc Scale_underflow ~op:"rescale" ~level:ct.level ~scale_bits:ct.scale_bits
      ~noise:ct.err "rescale: scale 2^%d below q*q_w = 2^%d" ct.scale_bits (q + qw);
  let scale_bits = ct.scale_bits - q in
  let extra = pow2 (fresh_noise_bits -. float_of_int scale_bits) in
  let slots = Array.map (jitter t ~bound:extra) ct.slots in
  level_transition "rescale" ~from_level:ct.level ~to_level:(ct.level - 1);
  traced "rescale" (Some Cost_model.Rescale) ~charge_level:ct.level ~noise_before:ct.err
    (Ciphertext.make ~slots ~scale_bits ~level:(ct.level - 1) ~size:2
       ~err:(rms2 ct.err extra))

let modswitch t (ct : Ciphertext.t) =
  t.ops <- t.ops + 1;
  check_size ~what:"modswitch" ct;
  if ct.level < 1 then
    failc Level_underflow ~op:"modswitch" ~level:ct.level ~scale_bits:ct.scale_bits
      ~noise:ct.err "modswitch: no level to drop (level %d)" ct.level;
  check_capacity t ~what:"modswitch" ~scale_bits:ct.scale_bits ~level:(ct.level - 1);
  level_transition "modswitch" ~from_level:ct.level ~to_level:(ct.level - 1);
  traced "modswitch" (Some Cost_model.Modswitch) ~charge_level:ct.level
    ~noise_before:ct.err
    (Ciphertext.make ~slots:(Array.copy ct.slots) ~scale_bits:ct.scale_bits
       ~level:(ct.level - 1) ~size:2 ~err:ct.err)

let bootstrap t (ct : Ciphertext.t) ~target_level =
  t.ops <- t.ops + 1;
  check_size ~what:"bootstrap" ct;
  if target_level < 1 || target_level > t.prm.Params.l_max then
    failc Target_out_of_range ~op:"bootstrap" ~level:ct.level
      ~scale_bits:ct.scale_bits ~noise:ct.err
      "bootstrap: target level %d outside [1, %d]" target_level t.prm.Params.l_max;
  let extra = pow2 (-.bootstrap_precision_bits) in
  let slots = Array.map (jitter t ~bound:extra) ct.slots in
  level_transition "bootstrap" ~from_level:ct.level ~to_level:target_level;
  traced "bootstrap" (Some Cost_model.Bootstrap) ~charge_level:target_level
    ~noise_before:ct.err
    (Ciphertext.make ~slots ~scale_bits:t.prm.Params.scale_bits ~level:target_level
       ~size:2 ~err:(rms2 ct.err extra))

let refresh t (ct : Ciphertext.t) =
  t.ops <- t.ops + 1;
  check_size ~what:"refresh" ct;
  let extra = pow2 (-.bootstrap_precision_bits) in
  let slots = Array.map (jitter t ~bound:extra) ct.slots in
  level_transition "refresh" ~from_level:ct.level ~to_level:ct.level;
  traced "refresh" (Some Cost_model.Bootstrap) ~charge_level:ct.level
    ~noise_before:ct.err
    (Ciphertext.make ~slots ~scale_bits:ct.scale_bits ~level:ct.level ~size:2
       ~err:extra)
