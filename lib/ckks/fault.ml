type kind = Noise_spike | Scale_drift | Transient | Slot_corrupt

let kind_name = function
  | Noise_spike -> "noise_spike"
  | Scale_drift -> "scale_drift"
  | Transient -> "transient"
  | Slot_corrupt -> "slot_corrupt"

type rule = {
  kind : kind;
  prob : float;
  mag : float;
  ops : string list;
  nodes : int list;
}

let rule ?(ops = []) ?(nodes = []) kind ~prob ~mag = { kind; prob; mag; ops; nodes }

type plan = { seed : int64; rules : rule list; budget : int }

type injection = {
  index : int;
  inj_kind : kind;
  inj_op : string;
  inj_node : int;
  inj_mag : float;
}

type t = {
  plan : plan;
  prng : Prng.t;
  mutable count : int;
  mutable log : injection list;  (* reversed *)
}

let create plan = { plan; prng = Prng.create plan.seed; count = 0; log = [] }
let rng t = t.prng
let injected t = t.count
let injections t = List.rev t.log

(* Ambient install: a plain global, same discipline as Obs.with_trace —
   the evaluator's fault-off path is one option check per op. *)
let installed : t option ref = ref None

let with_faults t f =
  let saved = !installed in
  installed := Some t;
  Fun.protect ~finally:(fun () -> installed := saved) f

let current () = !installed

(* The execution-site context is independent of any installed injector:
   the interpreter publishes it unconditionally (one int store per node)
   so structured errors are node-attributed even in fault-free runs. *)
let site_ctx = ref (-1)
let set_site node = site_ctx := node
let site () = !site_ctx

let budget_left t = t.plan.budget < 0 || t.count < t.plan.budget

let record t kind ~op ~node ~mag =
  let inj =
    { index = t.count; inj_kind = kind; inj_op = op; inj_node = node; inj_mag = mag }
  in
  t.count <- t.count + 1;
  t.log <- inj :: t.log;
  Obs.trace_instant ~name:"fault" ?node:(if node >= 0 then Some node else None)
    ~detail:
      [
        ("kind", Obs.Json.String (kind_name kind));
        ("op", Obs.Json.String op);
        ("node", Obs.Json.Int node);
        ("mag", Obs.Json.Float mag);
        ("index", Obs.Json.Int inj.index);
      ]
    ();
  Obs.metric_incr
    ~labels:[ ("kind", kind_name kind); ("op", op) ]
    "fhe_faults_total"

let rule_applies r ~op ~node =
  (match r.ops with [] -> true | ops -> List.mem op ops)
  && match r.nodes with [] -> true | nodes -> List.mem node nodes

let draw t ~op =
  if not (budget_left t) then None
  else begin
    let node = site () in
    (* Try rules in plan order; the probability draw happens only for
       rules whose filters match, so the stream consumption — and hence
       the whole campaign — is a deterministic function of the executed
       op/site sequence. *)
    let rec go = function
      | [] -> None
      | r :: rest ->
          if rule_applies r ~op ~node && Prng.float t.prng < r.prob then begin
            record t r.kind ~op ~node ~mag:r.mag;
            Some (r.kind, r.mag)
          end
          else go rest
    in
    go t.plan.rules
  end
