(** Static latency model of a DFG.

    Each node is charged its Table 2 latency at the level assigned by
    {!Scale_check.infer}, multiplied by its loop frequency — exactly the
    objective ReSBM's planner minimises (the "latency of a region is the
    sum of the latencies of all FHE operations within it").  Bootstraps are
    charged at their target level; every other operation at its operand
    level. *)

val node_cost : Ckks.Params.t -> Dfg.t -> Scale_check.info array -> int -> float
(** Latency (ms) of a single node given the analysis result. *)

val total : ?info:Scale_check.info array -> Ckks.Params.t -> Dfg.t -> float
(** Freq-weighted latency of the whole graph, ms.  Pass [?info] to reuse
    an existing {!Scale_check.infer} result instead of re-running the
    analysis — callers wanting both [total] and [by_kind] should infer
    once and share it. *)

val by_kind :
  ?info:Scale_check.info array ->
  Ckks.Params.t ->
  Dfg.t ->
  (Ckks.Cost_model.op * float) list
(** Latency decomposition per Table 2 row.  [?info] as in {!total}. *)
