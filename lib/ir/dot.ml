let node_style kind =
  match kind with
  | Op.Input _ -> "shape=invhouse, style=filled, fillcolor=\"#d5e8d4\""
  | Op.Const _ -> "shape=note, style=filled, fillcolor=\"#f5f5f5\""
  | Op.Mul_cc | Op.Mul_cp -> "shape=box, style=filled, fillcolor=\"#dae8fc\""
  | Op.Rescale -> "shape=diamond, style=filled, fillcolor=\"#ffe6cc\""
  | Op.Modswitch -> "shape=diamond, style=filled, fillcolor=\"#fff2cc\""
  | Op.Bootstrap _ -> "shape=doubleoctagon, style=filled, fillcolor=\"#f8cecc\""
  | Op.Add_cc | Op.Add_cp | Op.Rotate _ | Op.Relin -> "shape=ellipse"

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_string ?(name = "dfg") ?(cluster = fun _ -> None) ?(annotate = fun _ -> None) g =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph %s {\n  rankdir=TB;\n  node [fontsize=10];\n" name;
  (* bucket nodes by cluster *)
  let clusters : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let free = ref [] in
  List.iter
    (fun n ->
      let id = n.Dfg.id in
      match cluster id with
      | Some c ->
          Hashtbl.replace clusters c (id :: Option.value (Hashtbl.find_opt clusters c) ~default:[])
      | None -> free := id :: !free)
    (Dfg.live_nodes g);
  let emit_node id =
    let n = Dfg.node g id in
    let label =
      let base = Op.name n.Dfg.kind in
      let base = if n.Dfg.freq > 1 then Printf.sprintf "%s x%d" base n.Dfg.freq else base in
      match annotate id with
      | Some extra -> Printf.sprintf "%%%d %s\\n%s" id base extra
      | None -> Printf.sprintf "%%%d %s" id base
    in
    pf "    n%d [label=\"%s\", %s];\n" id (escape label) (node_style n.Dfg.kind)
  in
  Hashtbl.fold (fun c ids acc -> (c, ids) :: acc) clusters [] (* det-ok: sorted *)
  |> List.sort compare
  |> List.iter (fun (c, ids) ->
         pf "  subgraph cluster_%d {\n    label=\"region %d\";\n    color=gray;\n" c c;
         List.iter emit_node (List.rev ids);
         pf "  }\n");
  List.iter emit_node (List.rev !free);
  List.iter
    (fun n ->
      Array.iter (fun a -> pf "  n%d -> n%d;\n" a n.Dfg.id) n.Dfg.args)
    (Dfg.live_nodes g);
  (* mark outputs *)
  List.iteri
    (fun i o ->
      pf "  out%d [label=\"output %d\", shape=plaintext];\n  n%d -> out%d [style=dashed];\n"
        i i o i)
    (Dfg.outputs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?name ?cluster ?annotate ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?cluster ?annotate g))
