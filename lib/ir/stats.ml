type t = {
  nodes : int;
  static_by_op : (Ckks.Cost_model.op * int) list;
  executed_by_op : (Ckks.Cost_model.op * int) list;
  executed_rescales : int;
  executed_modswitches : int;
  bootstrap_count : int;
  bootstrap_levels : (int * int) list;
  max_depth : int;
}

let collect g =
  let static = Hashtbl.create 16 and executed = Hashtbl.create 16 in
  let bump table key k =
    Hashtbl.replace table key (k + Option.value (Hashtbl.find_opt table key) ~default:0)
  in
  let bts_levels = Hashtbl.create 8 in
  let nodes = ref 0 in
  List.iter
    (fun n ->
      incr nodes;
      (match Op.cost_op n.Dfg.kind with
      | None -> ()
      | Some op ->
          bump static op 1;
          bump executed op n.Dfg.freq);
      match n.Dfg.kind with
      | Op.Bootstrap target -> bump bts_levels target 1
      | _ -> ())
    (Dfg.live_nodes g);
  let dump table =
    List.filter_map
      (fun op -> Option.map (fun c -> (op, c)) (Hashtbl.find_opt table op))
      Ckks.Cost_model.all_ops
  in
  let get table op = Option.value (Hashtbl.find_opt table op) ~default:0 in
  {
    nodes = !nodes;
    static_by_op = dump static;
    executed_by_op = dump executed;
    executed_rescales = get executed Ckks.Cost_model.Rescale;
    executed_modswitches = get executed Ckks.Cost_model.Modswitch;
    bootstrap_count = get static Ckks.Cost_model.Bootstrap;
    bootstrap_levels =
      Hashtbl.fold (fun l c acc -> (l, c) :: acc) bts_levels [] (* det-ok: sorted *)
      |> List.sort (fun (a, _) (b, _) -> compare b a);
    max_depth = Depth.max_depth g;
  }

let executed t op =
  Option.value (List.assoc_opt op t.executed_by_op) ~default:0

let pp ppf t =
  Format.fprintf ppf "@[<v>%d nodes, depth %d" t.nodes t.max_depth;
  List.iter
    (fun (op, c) ->
      Format.fprintf ppf "@,  %-16s static %6d  executed %8d" (Ckks.Cost_model.op_name op)
        (Option.value (List.assoc_opt op t.static_by_op) ~default:0)
        c)
    t.executed_by_op;
  if t.bootstrap_levels <> [] then begin
    Format.fprintf ppf "@,  bootstrap levels:";
    List.iter (fun (l, c) -> Format.fprintf ppf " L%d:%d" l c) t.bootstrap_levels
  end;
  Format.fprintf ppf "@]"
