(** Level legalisation.

    After a management plan has inserted rescales and bootstraps, edges
    that cross regions (e.g. residual connections) can connect ciphertexts
    at different levels.  Following the compilers in the paper (the
    modswitch chains visible in Figures 1b–1d), this pass drops the
    higher-level operand of every binary operation down to the lower level
    with [Modswitch] nodes, sharing chains between uses.

    Scale mismatches are not repairable by modswitch and are reported as
    errors. *)

val run : Ckks.Params.t -> Dfg.t -> (Scale_check.info array, Scale_check.violation list) result
(** Mutates the graph in place.  On success the graph passes
    {!Scale_check.run} and the returned array is that final analysis
    (indexed by node id) — callers wanting the managed graph's scales and
    levels should reuse it instead of re-running {!Scale_check.infer},
    mirroring the [?info] sharing of {!Latency}. *)
