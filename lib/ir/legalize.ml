(* Levels after legalisation equal the lenient analysis' min-rule levels,
   so a single pass over the original topological order with the inferred
   info is sufficient: inserted modswitch chains only affect the edges they
   are placed on. *)
let run prm g =
  let info = Scale_check.infer prm g in
  let level_of = Hashtbl.create 16 in
  let level id =
    match Hashtbl.find_opt level_of id with
    | Some l -> l
    | None -> info.(id).Scale_check.level
  in
  (* Shared modswitch chains: (source node, target level) -> chain head. *)
  let cache = Hashtbl.create 16 in
  let rec lower id target =
    let l = level id in
    if l <= target then id
    else
      match Hashtbl.find_opt cache (id, target) with
      | Some c -> c
      | None ->
          let step = lower id (target + 1) in
          let ms = Dfg.insert_after g ~tail:step ~heads:[] Op.Modswitch in
          Hashtbl.add level_of ms target;
          Hashtbl.add cache (id, target) ms;
          ms
  in
  let order = Dfg.topo_order g in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      match node.Dfg.kind with
      | Op.Add_cc | Op.Mul_cc ->
          let a = node.Dfg.args.(0) and b = node.Dfg.args.(1) in
          let la = level a and lb = level b in
          if la <> lb then begin
            let target = min la lb in
            if la > target then Dfg.set_arg g ~user:id ~arg_index:0 (lower a target)
            else Dfg.set_arg g ~user:id ~arg_index:1 (lower b target)
          end
      | _ -> ())
    order;
  (* The closing validation doubles as the caller's scale/level analysis:
     return its info array so Driver and Plan need not re-infer. *)
  Scale_check.run prm g
