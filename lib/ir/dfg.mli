(** Data-flow graphs of FHE programs.

    Nodes are numbered densely in creation order; edges are implied by the
    [args] arrays (use-def) with maintained use lists (def-use).  As in the
    FHE compilers the paper builds on, the graph is a static circuit: no
    control flow, but a node may carry a [freq] multiplier standing for a
    rolled loop with a compile-time trip count (Section 4.1 keeps loops of
    multiplicative depth one rolled and scales their latency by the trip
    count). *)

type node = private {
  id : int;
  mutable kind : Op.kind;
  mutable args : int array;
  mutable users : int list;  (** def-use: ids of nodes consuming this one. *)
  mutable freq : int;
  mutable dead : bool;
}

type t

val create : unit -> t

val node_count : t -> int
(** Total ids allocated, including dead nodes. *)

val node : t -> int -> node

val live_nodes : t -> node list
(** All non-dead nodes in id order. *)

val outputs : t -> int list
val set_outputs : t -> int list -> unit

(** {1 Builders}

    All builders return the id of the created node.  Binary builders check
    ciphertext/plaintext positions.  [mul_cc] appends the mandatory
    relinearisation and returns the relin node. *)

val input : t -> ?level:int -> ?scale_bits:int -> string -> int
val const : t -> string -> int
val add_cc : t -> ?freq:int -> int -> int -> int
val add_cp : t -> ?freq:int -> int -> int -> int
val mul_cc : t -> ?freq:int -> int -> int -> int
val mul_cc_raw : t -> ?freq:int -> int -> int -> int
(** [Mul_cc] without the relin — for tests that exercise the validator. *)

val mul_cp : t -> ?freq:int -> int -> int -> int
val rotate : t -> ?freq:int -> int -> int -> int
val relin : t -> ?freq:int -> int -> int
val rescale : t -> ?freq:int -> int -> int
val modswitch : t -> ?freq:int -> int -> int
val bootstrap : t -> ?freq:int -> target_level:int -> int -> int

(** {1 Mutation} *)

val insert_after : t -> tail:int -> heads:int list -> Op.kind -> int
(** [insert_after g ~tail ~heads kind] creates a node [n'] with argument
    [tail] and frequency [tail.freq], and rewires every occurrence of
    [tail] in the [args] of each node in [heads] to [n'].  If [heads] is
    empty the node is created as a new user of [tail] without rewiring
    (used to tap live-out edges).  Returns [n']. *)

val wrap_operand : t -> user:int -> arg_index:int -> Op.kind -> int
(** Interpose a new node on one specific operand position of [user]. *)

val set_arg : t -> user:int -> arg_index:int -> int -> unit
(** Retarget one operand of [user], maintaining use lists. *)

val replace_uses : t -> old_id:int -> new_id:int -> unit
(** Redirect every use of [old_id] (args and outputs) to [new_id]. *)

val kill : t -> int -> unit
(** Mark a node dead.  It must have no remaining users and not be an
    output. *)

(** {1 Queries} *)

val preds : t -> int -> int list
(** Unique argument ids, in argument order. *)

val succs : t -> int -> int list
(** Unique user ids. *)

val topo_order : t -> int list
(** Live nodes in topological (def-before-use) order.
    @raise Graphlib.Topo.Cycle on malformed graphs. *)

val validate : t -> (unit, string list) result
(** Structural well-formedness: args in range and alive, ct/pt positions
    respected, outputs alive and ciphertext, acyclic, [Mul_cc] consumed
    only by [Relin]. *)

val copy : t -> t

type exported_node = {
  ex_kind : Op.kind;
  ex_args : int array;
  ex_freq : int;
  ex_dead : bool;
}
(** One node of a structural snapshot: everything that defines the graph
    except the derived use lists. *)

val export : t -> exported_node array * int list
(** Structural snapshot [(nodes, outputs)], nodes indexed by id.  Two
    graphs with equal exports are the same program (use lists are derived
    state and deliberately excluded) — the equality used by the plan
    cache and the bit-identity tests. *)

val import : exported_node array * int list -> t
(** Rebuild a graph from {!export}: identical ids, kinds, args, freqs and
    outputs; use lists are recomputed (set-equal to the original's, order
    within a node's list may differ).  Forward argument references are
    accepted — managed graphs have them after plan application rewires
    consumers onto appended SMO/bootstrap nodes.
    @raise Invalid_argument when an arg or output id is outside the node
    array. *)

val pp : Format.formatter -> t -> unit
