type info = { scale_bits : int; level : int; is_ct : bool }

let pp_info ppf i =
  if i.is_ct then Format.fprintf ppf "ct(2^%d, L%d)" i.scale_bits i.level
  else Format.fprintf ppf "pt(2^%d)" i.scale_bits

type violation = { node : int; message : string }

let pp_violation ppf v = Format.fprintf ppf "node %d: %s" v.node v.message

let dummy = { scale_bits = 0; level = 0; is_ct = false }

(* Shared propagation engine.  In strict mode every constraint violation is
   recorded; in lenient mode propagation continues with clamped values so
   planners can inspect partial graphs. *)
let analyse ~strict (prm : Ckks.Params.t) g =
  let n = Dfg.node_count g in
  let info = Array.make n dummy in
  let violations = ref [] in
  let report id fmt =
    Format.kasprintf (fun message -> violations := { node = id; message } :: !violations) fmt
  in
  let q = prm.scale_bits and qw = prm.waterline_bits in
  (* Constant scales are decided by their consumers; resolve each constant
     from its ciphertext-bearing uses and verify they agree.  Conflicting
     demands resolve to the smallest wanted scale so the result is a
     function of the graph, not of node numbering (the topological order
     visits consumers in id-dependent order).  Only genuine [Const] nodes
     enter the table: on malformed graphs a plaintext slot can hold a
     ciphertext, and back-patching that node would clobber its inferred
     level with the [max_int] constant sentinel. *)
  let const_scale = Hashtbl.create 16 in
  let resolve_const id ~wanted ~user =
    match (Dfg.node g id).Dfg.kind with
    | Op.Const _ -> (
        match Hashtbl.find_opt const_scale id with
        | None -> Hashtbl.add const_scale id wanted
        | Some s when s = wanted -> ()
        | Some s ->
            if strict then
              report id "constant needs two encoding scales (2^%d for node %d, already 2^%d)"
                wanted user s;
            if wanted < s then Hashtbl.replace const_scale id wanted)
    | _ -> () (* ciphertext in a plaintext slot: Dfg.validate reports it *)
  in
  let order = Dfg.topo_order g in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      let arg i = info.((node.args).(i)) in
      let capacity_ok ~scale_bits ~level =
        Ckks.Evaluator.capacity_ok prm ~scale_bits ~level
      in
      (* The ciphertext operand of a ct x pt operation.  Well-formed graphs
         keep it in slot 0; on malformed graphs (lenient analysis of a
         partially rewritten DFG) fall back to whichever slot carries a
         ciphertext so the constant's [max_int] level sentinel never leaks
         into downstream level arithmetic. *)
      let ct_operand () =
        let a = arg 0 in
        if a.is_ct then a else let b = arg 1 in if b.is_ct then b else a
      in
      (* Join level of a binary ct operation, from ct operands only. *)
      let join_level a b =
        match (a.is_ct, b.is_ct) with
        | true, true -> min a.level b.level
        | true, false -> a.level
        | false, true -> b.level
        | false, false -> 0
      in
      let i =
        match node.kind with
        | Op.Input { level; scale_bits; _ } ->
            let level = Option.value level ~default:prm.input_level
            and scale_bits = Option.value scale_bits ~default:prm.input_scale_bits in
            if strict && not (capacity_ok ~scale_bits ~level) then
              report id "input scale 2^%d overflows capacity at level %d" scale_bits level;
            { scale_bits; level; is_ct = true }
        | Op.Const _ ->
            (* Scale filled in lazily by consumers; default to waterline. *)
            { scale_bits = qw; level = max_int; is_ct = false }
        | Op.Add_cc ->
            let a = arg 0 and b = arg 1 in
            if strict && a.level <> b.level then
              report id "add_cc level mismatch (L%d vs L%d)" a.level b.level;
            if strict && a.scale_bits <> b.scale_bits then
              report id "add_cc scale mismatch (2^%d vs 2^%d)" a.scale_bits b.scale_bits;
            { scale_bits = (ct_operand ()).scale_bits; level = join_level a b; is_ct = true }
        | Op.Add_cp ->
            let a = ct_operand () in
            Array.iter (fun c -> resolve_const c ~wanted:a.scale_bits ~user:id) node.args;
            { a with is_ct = true }
        | Op.Mul_cc ->
            let a = arg 0 and b = arg 1 in
            if strict && a.level <> b.level then
              report id "mul_cc level mismatch (L%d vs L%d)" a.level b.level;
            let scale_bits = a.scale_bits + b.scale_bits in
            let level = join_level a b in
            if strict && not (capacity_ok ~scale_bits ~level) then
              report id "mul_cc scale overflow (2^%d at level %d)" scale_bits level;
            { scale_bits; level; is_ct = true }
        | Op.Mul_cp ->
            let a = ct_operand () in
            Array.iter (fun c -> resolve_const c ~wanted:qw ~user:id) node.args;
            let scale_bits = a.scale_bits + qw in
            if strict && not (capacity_ok ~scale_bits ~level:a.level) then
              report id "mul_cp scale overflow (2^%d at level %d)" scale_bits a.level;
            { scale_bits; level = a.level; is_ct = true }
        | Op.Rotate _ | Op.Relin -> { (arg 0) with is_ct = true }
        | Op.Rescale ->
            let a = arg 0 in
            if strict && a.level < 1 then report id "rescale at level %d" a.level;
            if strict && a.scale_bits < q + qw then
              report id "rescale of scale 2^%d below q*q_w = 2^%d" a.scale_bits (q + qw);
            { scale_bits = max (a.scale_bits - q) 1; level = max (a.level - 1) 0; is_ct = true }
        | Op.Modswitch ->
            let a = arg 0 in
            if strict && a.level < 1 then report id "modswitch at level %d" a.level;
            let level = max (a.level - 1) 0 in
            if strict && not (capacity_ok ~scale_bits:a.scale_bits ~level) then
              report id "modswitch would overflow capacity (2^%d at level %d)" a.scale_bits
                level;
            { a with level }
        | Op.Bootstrap target ->
            if strict && (target < 1 || target > prm.l_max) then
              report id "bootstrap target %d outside [1, %d]" target prm.l_max;
            { scale_bits = q; level = target; is_ct = true }
      in
      info.(id) <- i)
    order;
  (* Back-patch the resolved constant scales.  Only [Const] nodes are in
     the table, so the [max_int] level sentinel stays confined to
     plaintexts ([is_ct = false] entries). *)
  Hashtbl.iter (* det-ok: independent per-key array writes *)
    (fun id scale_bits -> info.(id) <- { info.(id) with scale_bits })
    const_scale;
  (info, List.rev !violations)

let run prm g =
  match Dfg.validate g with
  | Error msgs -> Error (List.map (fun m -> { node = -1; message = m }) msgs)
  | Ok () -> (
      let info, violations = analyse ~strict:true prm g in
      match violations with [] -> Ok info | vs -> Error vs)

let infer prm g = fst (analyse ~strict:false prm g)
