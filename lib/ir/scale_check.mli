(** Static scale and level analysis.

    Propagates (scale, level) through a DFG following Table 1 and validates
    every operation constraint of Section 2.2.  This is the compile-time
    mirror of the simulated evaluator: a DFG that passes [run] executes on
    {!Ckks.Evaluator} without [Fhe_error], and vice versa.

    Plaintext ([Const]) scales are resolved from their uses: a constant
    multiplied into a ciphertext is encoded at the waterline (EVA's
    convention for weights); a constant added to a ciphertext is encoded at
    the ciphertext's scale. *)

type info = {
  scale_bits : int;
  level : int;
  is_ct : bool;
}

val pp_info : Format.formatter -> info -> unit

type violation = { node : int; message : string }

val pp_violation : Format.formatter -> violation -> unit

val run : Ckks.Params.t -> Dfg.t -> (info array, violation list) result
(** Full validation.  On success the array is indexed by node id (dead
    nodes carry a dummy entry). *)

val analyse : strict:bool -> Ckks.Params.t -> Dfg.t -> info array * violation list
(** The propagation engine behind {!run} and {!infer}.  In strict mode
    every constraint violation of Table 1 is recorded; in lenient mode
    propagation continues with clamped values.  Unlike {!run} this does
    not check well-formedness first: callers analysing arbitrary graphs
    must run {!Dfg.validate} themselves (argument ids must at least be in
    range).  [Analysis.Verify] uses it to report scale violations under
    its own rule ids after its well-formedness pass. *)

val infer : Ckks.Params.t -> Dfg.t -> info array
(** Best-effort propagation that never fails: constraint violations are
    ignored and levels are clamped at 0.  Used by planners and the latency
    model on graphs that are not yet fully legalised. *)
