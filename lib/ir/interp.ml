type env = { inputs : (string * float array) list; consts : string -> float array }

type node_cost = { node : int; op : string; region : int; cost_ms : float }

type noise_summary = {
  min_headroom_bits : float;
  min_headroom_node : int;
  bootstrap_headroom : (int * float) list;
  noisiest : (int * float) list;
}

type result = {
  outputs : Ckks.Ciphertext.t list;
  latency_ms : float;
  op_count : int;
  node_costs : node_cost list;
  noise : noise_summary;
}

exception Missing_input of string

type value = Ct of Ckks.Ciphertext.t | Pt of Ckks.Plaintext.t

let headroom = Obs.Trace.headroom_bits

(* Noise-budget summary over the executed ciphertexts: min headroom across
   the run, headroom of each bootstrap's operand (the budget left at the
   moment the manager spends a refresh — how close the plan cut it), and
   the [top_k] nodes with the least headroom. *)
let summarise_noise g values ~top_k =
  let ct_err id =
    match Hashtbl.find_opt values id with Some (Ct c) -> Some c.Ckks.Ciphertext.err | _ -> None
  in
  let min_bits = ref Float.infinity and min_node = ref (-1) in
  let bts = ref [] and all = ref [] in
  List.iter
    (fun id ->
      match ct_err id with
      | None -> ()
      | Some err ->
          let bits = headroom err in
          all := (id, bits) :: !all;
          if bits < !min_bits then begin
            min_bits := bits;
            min_node := id
          end;
          (match (Dfg.node g id).Dfg.kind with
          | Op.Bootstrap _ -> (
              match (Dfg.node g id).Dfg.args with
              | [| a |] -> (
                  match ct_err a with
                  | Some e -> bts := (id, headroom e) :: !bts
                  | None -> ())
              | _ -> ())
          | _ -> ()))
    (Dfg.topo_order g);
  let noisiest =
    List.filteri
      (fun i _ -> i < top_k)
      (List.sort (fun (_, a) (_, b) -> compare a b) !all)
  in
  {
    min_headroom_bits = (if !min_node < 0 then Float.infinity else !min_bits);
    min_headroom_node = !min_node;
    bootstrap_headroom = List.rev !bts;
    noisiest;
  }

module Session = struct
  type session = {
    ev : Ckks.Evaluator.t;
    g : Dfg.t;
    info : Scale_check.info array;
    trace : Obs.Trace.t option;
    region_of : int -> int;
    values : (int, value) Hashtbl.t;
    sched : Liveness.schedule;
    mutable latency : float;
    mutable ops : int;
    mutable costs : node_cost list;  (* reversed *)
  }

  type t = session

  type snapshot = {
    snap_at : int;
    saved : (int * value) list;
    snap_bytes : float;
    s_latency : float;
    s_ops : int;
    s_costs : node_cost list;
  }

  let create ?trace ?(region_of = fun _ -> -1) ev g =
    let prm = Ckks.Evaluator.params ev in
    let info =
      match Scale_check.run prm g with
      | Ok info -> info
      | Error vs ->
          let failing = match vs with v :: _ -> [ v ] | [] -> [] in
          let msg =
            Format.asprintf "Interp.run: graph not legal:@ %a"
              (Format.pp_print_list Scale_check.pp_violation)
              failing
          in
          (* A statically illegal graph is the compile-time face of
             Figure 1a: leave the same final flight-recorder marker a
             runtime failure would, naming the faulting node — and count
             it in [fhe_errors_total] like every other raise (the
             [raise_error] funnel does both). *)
          let node = match failing with v :: _ -> v.Scale_check.node | [] -> -1 in
          let err =
            Ckks.Evaluator.error ~node Ckks.Evaluator.Illegal_graph ~op:"interp" msg
          in
          let do_raise () = Ckks.Evaluator.raise_error err in
          (match trace with
          | Some tr -> Obs.with_trace tr do_raise
          | None -> do_raise ())
    in
    {
      ev;
      g;
      info;
      trace;
      region_of;
      values = Hashtbl.create (Dfg.node_count g);
      sched = Liveness.schedule g;
      latency = 0.0;
      ops = 0;
      costs = [];
    }

  let order s = s.sched.Liveness.order
  let schedule s = s.sched
  let static_info s = s.info
  let graph s = s.g
  let evaluator s = s.ev
  let region_of s id = s.region_of id
  let latency_ms s = s.latency

  let ct_opt s id =
    match Hashtbl.find_opt s.values id with Some (Ct c) -> Some c | _ -> None

  let set_ct s id c = Hashtbl.replace s.values id (Ct c)

  let ct s id =
    match Hashtbl.find_opt s.values id with
    | Some (Ct c) -> c
    | _ -> invalid_arg "Interp: expected ciphertext value"

  let pt s id =
    match Hashtbl.find_opt s.values id with
    | Some (Pt p) -> p
    | _ -> invalid_arg "Interp: expected plaintext value"

  let exec_raw s env id =
    let node = Dfg.node s.g id in
    (* Attribution for the events the evaluator is about to record: node
       identity, region, loop frequency and the freq-weighted Table 2
       cost of this node.  The execution site is published even when no
       trace is installed, so structured errors and fault injections are
       node-attributed on untraced runs too. *)
    Ckks.Fault.set_site id;
    let cost =
      match node.Dfg.kind with
      | Op.Input _ | Op.Const _ -> 0.0
      | _ -> Latency.node_cost (Ckks.Evaluator.params s.ev) s.g s.info id
    in
    (match s.trace with
    | Some tr ->
        Obs.Trace.set_ctx tr
          (Some
             {
               Obs.Trace.node = id;
               region = s.region_of id;
               freq = node.Dfg.freq;
               cost_ms = cost;
             })
    | None -> ());
    let v =
      match node.Dfg.kind with
      | Op.Input { name; level; scale_bits } ->
          let data =
            match List.assoc_opt name env.inputs with
            | Some d -> d
            | None -> raise (Missing_input name)
          in
          Ct (Ckks.Evaluator.encrypt s.ev ?level ?scale_bits data)
      | Op.Const { name } ->
          let scale_bits = s.info.(id).Scale_check.scale_bits in
          Pt (Ckks.Evaluator.encode s.ev ~scale_bits (env.consts name))
      | Op.Add_cc -> Ct (Ckks.Evaluator.add_cc s.ev (ct s node.Dfg.args.(0)) (ct s node.Dfg.args.(1)))
      | Op.Add_cp -> Ct (Ckks.Evaluator.add_cp s.ev (ct s node.Dfg.args.(0)) (pt s node.Dfg.args.(1)))
      | Op.Mul_cc -> Ct (Ckks.Evaluator.mul_cc s.ev (ct s node.Dfg.args.(0)) (ct s node.Dfg.args.(1)))
      | Op.Mul_cp -> Ct (Ckks.Evaluator.mul_cp s.ev (ct s node.Dfg.args.(0)) (pt s node.Dfg.args.(1)))
      | Op.Rotate k -> Ct (Ckks.Evaluator.rotate s.ev (ct s node.Dfg.args.(0)) k)
      | Op.Relin -> Ct (Ckks.Evaluator.relin s.ev (ct s node.Dfg.args.(0)))
      | Op.Rescale -> Ct (Ckks.Evaluator.rescale s.ev (ct s node.Dfg.args.(0)))
      | Op.Modswitch -> Ct (Ckks.Evaluator.modswitch s.ev (ct s node.Dfg.args.(0)))
      | Op.Bootstrap target_level ->
          Ct (Ckks.Evaluator.bootstrap s.ev (ct s node.Dfg.args.(0)) ~target_level)
    in
    (match node.Dfg.kind with
    | Op.Input _ | Op.Const _ -> ()
    | kind ->
        s.latency <- s.latency +. cost;
        s.ops <- s.ops + node.Dfg.freq;
        s.costs <-
          { node = id; op = Op.name kind; region = s.region_of id; cost_ms = cost }
          :: s.costs);
    Hashtbl.replace s.values id v

  let exec s env id =
    match s.trace with
    | Some tr -> Obs.with_trace tr (fun () -> exec_raw s env id)
    | None -> exec_raw s env id

  let refresh s id =
    let c = ct s id in
    let go () =
      Ckks.Fault.set_site id;
      (match s.trace with
      | Some tr ->
          Obs.Trace.set_ctx tr
            (Some
               {
                 Obs.Trace.node = id;
                 region = s.region_of id;
                 freq = 1;
                 cost_ms = Ckks.Cost_model.cost Ckks.Cost_model.Bootstrap ~level:c.Ckks.Ciphertext.level;
               })
      | None -> ());
      let c' = Ckks.Evaluator.refresh s.ev c in
      s.latency <-
        s.latency +. Ckks.Cost_model.cost Ckks.Cost_model.Bootstrap ~level:c.Ckks.Ciphertext.level;
      s.ops <- s.ops + 1;
      set_ct s id c';
      c'
    in
    match s.trace with Some tr -> Obs.with_trace tr go | None -> go ()

  let is_live s ~at id = Liveness.live_at s.sched ~at id

  let live_cts s ~at =
    List.sort compare
      (Hashtbl.fold (* det-ok: result is sorted by node id *)
         (fun id v acc ->
           match v with
           | Ct c when is_live s ~at id -> (id, c) :: acc
           | _ -> acc)
         s.values [])

  (* A checkpoint keeps only the values still needed at position [at]:
     outputs, plus any value with a use at or after [at].  Everything
     downstream of [at] is recomputed on rollback, so dead values need
     not be retained — this is what makes the liveness-derived memory
     budget meaningful. *)
  let snapshot s ~at =
    let prm = Ckks.Evaluator.params s.ev in
    let saved =
      (* Sorted by node id so [snap_bytes] (a float sum) and the saved
         list are independent of hash order. *)
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (* det-ok: result is sorted by node id *)
           (fun id v acc -> if is_live s ~at id then (id, v) :: acc else acc)
           s.values [])
    in
    let snap_bytes =
      List.fold_left
        (fun acc (_, v) ->
          match v with
          | Ct c -> acc +. Liveness.ciphertext_bytes prm ~level:c.Ckks.Ciphertext.level
          | Pt _ -> acc)
        0.0 saved
    in
    {
      snap_at = at;
      saved;
      snap_bytes;
      s_latency = s.latency;
      s_ops = s.ops;
      s_costs = s.costs;
    }

  let snapshot_at snap = snap.snap_at
  let snapshot_bytes snap = snap.snap_bytes

  let rollback s snap =
    Hashtbl.reset s.values;
    List.iter (fun (id, v) -> Hashtbl.replace s.values id v) snap.saved;
    s.latency <- snap.s_latency;
    s.ops <- snap.s_ops;
    s.costs <- snap.s_costs;
    snap.snap_at

  let charge_ms s ms =
    s.latency <- s.latency +. ms;
    (match s.trace with
    | Some tr -> Obs.Trace.advance_clock tr ms
    | None -> ())

  let clear_ctx s =
    Ckks.Fault.set_site (-1);
    match s.trace with Some tr -> Obs.Trace.set_ctx tr None | None -> ()

  let finish s =
    {
      outputs = List.map (ct s) (Dfg.outputs s.g);
      latency_ms = s.latency;
      op_count = s.ops;
      node_costs = List.rev s.costs;
      noise = summarise_noise s.g s.values ~top_k:5;
    }
end

let run ?trace ?region_of ev g env =
  let s = Session.create ?trace ?region_of ev g in
  Fun.protect
    ~finally:(fun () -> Session.clear_ctx s)
    (fun () ->
      Array.iter (fun id -> Session.exec s env id) (Session.order s);
      Session.finish s)
