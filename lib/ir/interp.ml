type env = { inputs : (string * float array) list; consts : string -> float array }

type node_cost = { node : int; op : string; region : int; cost_ms : float }

type noise_summary = {
  min_headroom_bits : float;
  min_headroom_node : int;
  bootstrap_headroom : (int * float) list;
  noisiest : (int * float) list;
}

type result = {
  outputs : Ckks.Ciphertext.t list;
  latency_ms : float;
  op_count : int;
  node_costs : node_cost list;
  noise : noise_summary;
}

exception Missing_input of string

type value = Ct of Ckks.Ciphertext.t | Pt of Ckks.Plaintext.t

let headroom = Obs.Trace.headroom_bits

(* Noise-budget summary over the executed ciphertexts: min headroom across
   the run, headroom of each bootstrap's operand (the budget left at the
   moment the manager spends a refresh — how close the plan cut it), and
   the [top_k] nodes with the least headroom. *)
let summarise_noise g values ~top_k =
  let ct_err id =
    match Hashtbl.find_opt values id with Some (Ct c) -> Some c.Ckks.Ciphertext.err | _ -> None
  in
  let min_bits = ref Float.infinity and min_node = ref (-1) in
  let bts = ref [] and all = ref [] in
  List.iter
    (fun id ->
      match ct_err id with
      | None -> ()
      | Some err ->
          let bits = headroom err in
          all := (id, bits) :: !all;
          if bits < !min_bits then begin
            min_bits := bits;
            min_node := id
          end;
          (match (Dfg.node g id).Dfg.kind with
          | Op.Bootstrap _ -> (
              match (Dfg.node g id).Dfg.args with
              | [| a |] -> (
                  match ct_err a with
                  | Some e -> bts := (id, headroom e) :: !bts
                  | None -> ())
              | _ -> ())
          | _ -> ()))
    (Dfg.topo_order g);
  let noisiest =
    List.filteri
      (fun i _ -> i < top_k)
      (List.sort (fun (_, a) (_, b) -> compare a b) !all)
  in
  {
    min_headroom_bits = (if !min_node < 0 then Float.infinity else !min_bits);
    min_headroom_node = !min_node;
    bootstrap_headroom = List.rev !bts;
    noisiest;
  }

let run ?trace ?(region_of = fun _ -> -1) ev g env =
  let prm = Ckks.Evaluator.params ev in
  let info =
    match Scale_check.run prm g with
    | Ok info -> info
    | Error vs ->
        let failing = match vs with v :: _ -> [ v ] | [] -> [] in
        let msg =
          Format.asprintf "Interp.run: graph not legal:@ %a"
            (Format.pp_print_list Scale_check.pp_violation)
            failing
        in
        (* A statically illegal graph is the compile-time face of Figure 1a:
           leave the same final flight-recorder marker a runtime failure
           would, naming the faulting node. *)
        (match trace with
        | Some tr ->
            Obs.Trace.instant tr ~name:"fhe_error"
              ~node:(match failing with v :: _ -> v.Scale_check.node | [] -> -1)
              ~detail:[ ("message", Obs.Json.String msg) ]
              ()
        | None -> ());
        raise (Ckks.Evaluator.Fhe_error msg)
  in
  let values = Hashtbl.create (Dfg.node_count g) in
  let ct id =
    match Hashtbl.find_opt values id with
    | Some (Ct c) -> c
    | _ -> invalid_arg "Interp: expected ciphertext value"
  in
  let pt id =
    match Hashtbl.find_opt values id with
    | Some (Pt p) -> p
    | _ -> invalid_arg "Interp: expected plaintext value"
  in
  let latency = ref 0.0 and ops = ref 0 and costs = ref [] in
  let exec () =
    List.iter
      (fun id ->
        let node = Dfg.node g id in
        (* Attribution for the events the evaluator is about to record:
           node identity, region, loop frequency and the freq-weighted
           Table 2 cost of this node. *)
        let cost =
          match node.Dfg.kind with
          | Op.Input _ | Op.Const _ -> 0.0
          | _ -> Latency.node_cost prm g info id
        in
        (match trace with
        | Some tr ->
            Obs.Trace.set_ctx tr
              (Some
                 {
                   Obs.Trace.node = id;
                   region = region_of id;
                   freq = node.Dfg.freq;
                   cost_ms = cost;
                 })
        | None -> ());
        let v =
          match node.Dfg.kind with
          | Op.Input { name; level; scale_bits } ->
              let data =
                match List.assoc_opt name env.inputs with
                | Some d -> d
                | None -> raise (Missing_input name)
              in
              Ct (Ckks.Evaluator.encrypt ev ?level ?scale_bits data)
          | Op.Const { name } ->
              let scale_bits = info.(id).Scale_check.scale_bits in
              Pt (Ckks.Evaluator.encode ev ~scale_bits (env.consts name))
          | Op.Add_cc -> Ct (Ckks.Evaluator.add_cc ev (ct node.Dfg.args.(0)) (ct node.Dfg.args.(1)))
          | Op.Add_cp -> Ct (Ckks.Evaluator.add_cp ev (ct node.Dfg.args.(0)) (pt node.Dfg.args.(1)))
          | Op.Mul_cc -> Ct (Ckks.Evaluator.mul_cc ev (ct node.Dfg.args.(0)) (ct node.Dfg.args.(1)))
          | Op.Mul_cp -> Ct (Ckks.Evaluator.mul_cp ev (ct node.Dfg.args.(0)) (pt node.Dfg.args.(1)))
          | Op.Rotate k -> Ct (Ckks.Evaluator.rotate ev (ct node.Dfg.args.(0)) k)
          | Op.Relin -> Ct (Ckks.Evaluator.relin ev (ct node.Dfg.args.(0)))
          | Op.Rescale -> Ct (Ckks.Evaluator.rescale ev (ct node.Dfg.args.(0)))
          | Op.Modswitch -> Ct (Ckks.Evaluator.modswitch ev (ct node.Dfg.args.(0)))
          | Op.Bootstrap target_level ->
              Ct (Ckks.Evaluator.bootstrap ev (ct node.Dfg.args.(0)) ~target_level)
        in
        (match node.Dfg.kind with
        | Op.Input _ | Op.Const _ -> ()
        | kind ->
            latency := !latency +. cost;
            ops := !ops + node.Dfg.freq;
            costs :=
              { node = id; op = Op.name kind; region = region_of id; cost_ms = cost }
              :: !costs);
        Hashtbl.replace values id v)
      (Dfg.topo_order g)
  in
  (match trace with
  | Some tr ->
      Fun.protect
        (fun () -> Obs.with_trace tr exec)
        ~finally:(fun () -> Obs.Trace.set_ctx tr None)
  | None -> exec ());
  {
    outputs = List.map ct (Dfg.outputs g);
    latency_ms = !latency;
    op_count = !ops;
    node_costs = List.rev !costs;
    noise = summarise_noise g values ~top_k:5;
  }
