type info = { magnitude : float; noise : float }

type report = {
  per_node : info array;
  output_noise : float;
  output_precision_bits : float;
}

let rms2 a b = sqrt ((a *. a) +. (b *. b))
let pow2 bits = 2.0 ** bits

(* Mirrors Ckks.Evaluator's noise constants. *)
let fresh_noise_bits = 10.0
let rotate_noise_bits = 12.0
let bootstrap_precision_bits = 22.0

let analyse ?(input_magnitude = 1.0) ?(magnitude_cap = 1.0)
    ?(const_magnitude = fun _ -> 1.0) prm g =
  let scales = Scale_check.infer prm g in
  let cap m = Float.min m magnitude_cap in
  let per_node = Array.make (Dfg.node_count g) { magnitude = 0.0; noise = 0.0 } in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      let arg i = per_node.(node.Dfg.args.(i)) in
      let scale_bits id = float_of_int scales.(id).Scale_check.scale_bits in
      let fresh = pow2 (fresh_noise_bits -. scale_bits id) in
      let v =
        match node.Dfg.kind with
        | Op.Input _ -> { magnitude = input_magnitude; noise = fresh }
        | Op.Const { name } ->
            (* encoding quantisation only *)
            { magnitude = const_magnitude name; noise = pow2 (-.scale_bits id) }
        | Op.Add_cc | Op.Add_cp ->
            let a = arg 0 and b = arg 1 in
            { magnitude = cap (a.magnitude +. b.magnitude); noise = rms2 a.noise b.noise }
        | Op.Mul_cc | Op.Mul_cp ->
            let a = arg 0 and b = arg 1 in
            {
              magnitude = cap (a.magnitude *. b.magnitude);
              noise =
                rms2 (rms2 (a.magnitude *. b.noise) (b.magnitude *. a.noise)) fresh;
            }
        | Op.Rotate _ | Op.Relin ->
            let a = arg 0 in
            { a with noise = rms2 a.noise (pow2 (rotate_noise_bits -. scale_bits id)) }
        | Op.Rescale ->
            let a = arg 0 in
            { a with noise = rms2 a.noise fresh }
        | Op.Modswitch -> arg 0
        | Op.Bootstrap _ ->
            let a = arg 0 in
            { a with noise = rms2 a.noise (pow2 (-.bootstrap_precision_bits)) }
      in
      per_node.(id) <- v)
    (Dfg.topo_order g);
  let output_noise =
    List.fold_left (fun acc o -> Float.max acc per_node.(o).noise) 0.0 (Dfg.outputs g)
  in
  {
    per_node;
    output_noise;
    output_precision_bits =
      (if output_noise > 0.0 then -.Float.log2 output_noise else Float.infinity);
  }

let predicts report ~measured =
  measured <= report.output_noise *. 100.0

type trace_mismatch = {
  node : int;
  op : string;
  traced_bits : float;
  predicted_bits : float;
}

let pp_trace_mismatch ppf m =
  Format.fprintf ppf "node %d (%s): traced headroom %.1f bits, predicted %.1f bits"
    m.node m.op m.traced_bits m.predicted_bits

(* Cross-validate a flight recording against the static estimate: an op
   event whose measured noise exceeds the per-node prediction by more than
   [tolerance_bits] means the static model no longer tracks the evaluator
   (or the plan ran the program outside the analysed magnitude domain).
   The static analysis is an estimate, not a bound, so the default
   tolerance mirrors [predicts]'s two orders of magnitude. *)
let check_trace ?(tolerance_bits = 10.0) report events =
  List.filter_map
    (fun (e : Obs.Trace.op_event) ->
      if e.Obs.Trace.node < 0 || e.Obs.Trace.node >= Array.length report.per_node then
        None
      else begin
        let predicted = report.per_node.(e.Obs.Trace.node).noise in
        let traced = e.Obs.Trace.noise_after in
        if predicted > 0.0 && traced > predicted *. (2.0 ** tolerance_bits) then
          Some
            {
              node = e.Obs.Trace.node;
              op = e.Obs.Trace.op;
              traced_bits = Obs.Trace.headroom_bits traced;
              predicted_bits = Obs.Trace.headroom_bits predicted;
            }
        else None
      end)
    events

(* Rank nodes by how hot the recorded noise ran against the static
   estimate: the worst traced/predicted ratio seen per node, largest
   first.  Unlike [check_trace] this applies no tolerance — a clean run
   still yields a ranking, pointing fault campaigns at the nodes with the
   least validated headroom. *)
let trace_hotspots ?(top = 16) report events =
  let tbl : (int, float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Obs.Trace.op_event) ->
      if e.Obs.Trace.node >= 0 && e.Obs.Trace.node < Array.length report.per_node
      then
        let predicted = report.per_node.(e.Obs.Trace.node).noise in
        if predicted > 0.0 && e.Obs.Trace.noise_after > 0.0 then
          let ratio = e.Obs.Trace.noise_after /. predicted in
          match Hashtbl.find_opt tbl e.Obs.Trace.node with
          | Some prev when prev >= ratio -> ()
          | _ -> Hashtbl.replace tbl e.Obs.Trace.node ratio)
    events;
  let ranked =
    List.sort
      (fun (n1, r1) (n2, r2) ->
        if r1 <> r2 then compare (r2 : float) r1 else compare (n1 : int) n2)
      (Hashtbl.fold (fun n r acc -> (n, r) :: acc) tbl [] (* det-ok: sorted *))
  in
  List.filteri (fun i _ -> i < top) ranked

