type node = {
  id : int;
  mutable kind : Op.kind;
  mutable args : int array;
  mutable users : int list;
  mutable freq : int;
  mutable dead : bool;
}

type t = { mutable nodes : node array; mutable len : int; mutable outs : int list }

let create () = { nodes = [||]; len = 0; outs = [] }

let node_count g = g.len

let node g id =
  if id < 0 || id >= g.len then invalid_arg (Printf.sprintf "Dfg.node: id %d" id);
  g.nodes.(id)

let live_nodes g =
  let acc = ref [] in
  for i = g.len - 1 downto 0 do
    if not g.nodes.(i).dead then acc := g.nodes.(i) :: !acc
  done;
  !acc

let outputs g = g.outs
let set_outputs g outs = g.outs <- outs

let push g n =
  if g.len >= Array.length g.nodes then begin
    let cap = max 16 (2 * Array.length g.nodes) in
    let nodes' = Array.make cap n in
    Array.blit g.nodes 0 nodes' 0 g.len;
    g.nodes <- nodes'
  end;
  g.nodes.(g.len) <- n;
  g.len <- g.len + 1

let add_user g arg id =
  let n = node g arg in
  if not (List.mem id n.users) then n.users <- id :: n.users

let remove_user g arg id =
  let n = node g arg in
  (* Only drop the use if no argument slot still references [arg]. *)
  let still_used = Array.exists (fun a -> a = arg) (node g id).args in
  if not still_used then n.users <- List.filter (fun u -> u <> id) n.users

let mk g ?(freq = 1) kind args =
  if freq < 1 then invalid_arg "Dfg: freq must be at least 1";
  Array.iter
    (fun a ->
      if a < 0 || a >= g.len then invalid_arg "Dfg: argument out of range";
      if (node g a).dead then invalid_arg "Dfg: argument is dead")
    args;
  let id = g.len in
  push g { id; kind; args; users = []; freq; dead = false };
  Array.iter (fun a -> add_user g a id) args;
  id

let is_ct g id = Op.produces_ct (node g id).kind

let check_ct g ~what id =
  if not (is_ct g id) then
    invalid_arg (Printf.sprintf "Dfg.%s: operand %d is a plaintext" what id)

let check_pt g ~what id =
  if is_ct g id then
    invalid_arg (Printf.sprintf "Dfg.%s: operand %d is a ciphertext" what id)

let input g ?level ?scale_bits name = mk g (Op.Input { name; level; scale_bits }) [||]
let const g name = mk g (Op.Const { name }) [||]

let add_cc g ?freq a b =
  check_ct g ~what:"add_cc" a;
  check_ct g ~what:"add_cc" b;
  mk g ?freq Op.Add_cc [| a; b |]

let add_cp g ?freq a b =
  check_ct g ~what:"add_cp" a;
  check_pt g ~what:"add_cp" b;
  mk g ?freq Op.Add_cp [| a; b |]

let mul_cc_raw g ?freq a b =
  check_ct g ~what:"mul_cc" a;
  check_ct g ~what:"mul_cc" b;
  mk g ?freq Op.Mul_cc [| a; b |]

let relin g ?freq a =
  check_ct g ~what:"relin" a;
  mk g ?freq Op.Relin [| a |]

let mul_cc g ?freq a b =
  let m = mul_cc_raw g ?freq a b in
  relin g ?freq m

let mul_cp g ?freq a b =
  check_ct g ~what:"mul_cp" a;
  check_pt g ~what:"mul_cp" b;
  mk g ?freq Op.Mul_cp [| a; b |]

let rotate g ?freq a k =
  check_ct g ~what:"rotate" a;
  mk g ?freq (Op.Rotate k) [| a |]

let rescale g ?freq a =
  check_ct g ~what:"rescale" a;
  mk g ?freq Op.Rescale [| a |]

let modswitch g ?freq a =
  check_ct g ~what:"modswitch" a;
  mk g ?freq Op.Modswitch [| a |]

let bootstrap g ?freq ~target_level a =
  check_ct g ~what:"bootstrap" a;
  mk g ?freq (Op.Bootstrap target_level) [| a |]

let insert_after g ~tail ~heads kind =
  check_ct g ~what:"insert_after" tail;
  let freq = (node g tail).freq in
  let n' = mk g ~freq kind [| tail |] in
  List.iter
    (fun h ->
      let hn = node g h in
      let changed = ref false in
      Array.iteri
        (fun i a ->
          if a = tail then begin
            hn.args.(i) <- n';
            changed := true
          end)
        hn.args;
      if !changed then begin
        remove_user g tail h;
        add_user g n' h
      end)
    heads;
  n'

let wrap_operand g ~user ~arg_index kind =
  let un = node g user in
  if arg_index < 0 || arg_index >= Array.length un.args then
    invalid_arg "Dfg.wrap_operand: bad argument index";
  let tail = un.args.(arg_index) in
  let n' = mk g ~freq:un.freq kind [| tail |] in
  un.args.(arg_index) <- n';
  remove_user g tail user;
  add_user g n' user;
  n'

let set_arg g ~user ~arg_index new_arg =
  let un = node g user in
  if arg_index < 0 || arg_index >= Array.length un.args then
    invalid_arg "Dfg.set_arg: bad argument index";
  if new_arg < 0 || new_arg >= g.len || (node g new_arg).dead then
    invalid_arg "Dfg.set_arg: bad target";
  let old_arg = un.args.(arg_index) in
  if old_arg <> new_arg then begin
    un.args.(arg_index) <- new_arg;
    remove_user g old_arg user;
    add_user g new_arg user
  end

let replace_uses g ~old_id ~new_id =
  if old_id <> new_id then begin
    let old_users = (node g old_id).users in
    List.iter
      (fun u ->
        let un = node g u in
        Array.iteri (fun i a -> if a = old_id then un.args.(i) <- new_id) un.args;
        add_user g new_id u)
      old_users;
    (node g old_id).users <- [];
    g.outs <- List.map (fun o -> if o = old_id then new_id else o) g.outs
  end

let kill g id =
  let n = node g id in
  if n.users <> [] then invalid_arg "Dfg.kill: node still has users";
  if List.mem id g.outs then invalid_arg "Dfg.kill: node is an output";
  Array.iter (fun a -> (node g a).users <- List.filter (fun u -> u <> id) (node g a).users) n.args;
  n.dead <- true;
  n.args <- [||]

let uniq ids =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun id ->
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    ids

let preds g id = uniq (Array.to_list (node g id).args)
let succs g id = uniq (List.rev (node g id).users)

let to_digraph g =
  let dg = Graphlib.Digraph.create ~capacity:(max 1 g.len) () in
  Graphlib.Digraph.add_nodes dg g.len;
  for id = 0 to g.len - 1 do
    let n = g.nodes.(id) in
    if not n.dead then Array.iter (fun a -> Graphlib.Digraph.add_edge dg a id) n.args
  done;
  dg

let topo_order g =
  let order = Graphlib.Topo.sort (to_digraph g) in
  List.filter (fun id -> not (node g id).dead) order

let validate g =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  for id = 0 to g.len - 1 do
    let n = g.nodes.(id) in
    if not n.dead then begin
      Array.iter
        (fun a ->
          if a < 0 || a >= g.len then err "node %d: argument %d out of range" id a
          else if (node g a).dead then err "node %d: argument %d is dead" id a
          else if not (List.mem id (node g a).users) then
            err "node %d: missing from use list of %d" id a)
        n.args;
      let arity = Array.length n.args in
      let expect k = if arity <> k then err "node %d (%s): arity %d, expected %d" id (Op.name n.kind) arity k in
      (match n.kind with
      | Op.Input _ | Op.Const _ -> expect 0
      | Op.Add_cc | Op.Add_cp | Op.Mul_cc | Op.Mul_cp -> expect 2
      | Op.Rotate _ | Op.Relin | Op.Rescale | Op.Modswitch | Op.Bootstrap _ -> expect 1);
      (match n.kind with
      | Op.Mul_cc ->
          List.iter
            (fun u ->
              if (node g u).kind <> Op.Relin then
                err "node %d: mul_cc consumed by non-relin node %d" id u)
            n.users
      | Op.Relin -> (
          match n.args with
          | [| a |] when (node g a).kind <> Op.Mul_cc ->
              err "node %d: relin of non-mul_cc node %d" id a
          | _ -> ())
      | _ -> ());
      (match n.kind with
      | Op.Add_cp | Op.Mul_cp when arity = 2 ->
          if not (is_ct g n.args.(0)) then err "node %d: first operand must be ct" id;
          if is_ct g n.args.(1) then err "node %d: second operand must be pt" id
      | Op.Add_cc | Op.Mul_cc when arity = 2 ->
          Array.iter (fun a -> if not (is_ct g a) then err "node %d: pt operand in ct op" id) n.args
      | _ -> ())
    end
  done;
  List.iter
    (fun o ->
      if o < 0 || o >= g.len || (node g o).dead then err "dead or invalid output %d" o
      else if not (is_ct g o) then err "output %d is a plaintext" o)
    g.outs;
  if not (Graphlib.Topo.is_dag (to_digraph g)) then err "graph has a cycle";
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let copy g =
  {
    nodes =
      Array.init g.len (fun i ->
          let n = g.nodes.(i) in
          { n with args = Array.copy n.args });
    len = g.len;
    outs = g.outs;
  }

type exported_node = {
  ex_kind : Op.kind;
  ex_args : int array;
  ex_freq : int;
  ex_dead : bool;
}

let export g =
  ( Array.init g.len (fun i ->
        let n = g.nodes.(i) in
        { ex_kind = n.kind; ex_args = Array.copy n.args; ex_freq = n.freq; ex_dead = n.dead }),
    g.outs )

let import (nodes, outs) =
  let g = create () in
  let n = Array.length nodes in
  Array.iteri
    (fun i en ->
      (* Args may legitimately point FORWARD: plan application appends
         SMO/bootstrap nodes and rewires earlier consumers onto them, so
         only the total range is checkable here. *)
      Array.iter
        (fun a ->
          if a < 0 || a >= n then invalid_arg "Dfg.import: argument out of range")
        en.ex_args;
      push g
        {
          id = i;
          kind = en.ex_kind;
          args = Array.copy en.ex_args;
          users = [];
          freq = en.ex_freq;
          dead = en.ex_dead;
        })
    nodes;
  for i = 0 to g.len - 1 do
    let n = g.nodes.(i) in
    if not n.dead then Array.iter (fun a -> add_user g a i) n.args
  done;
  List.iter
    (fun o -> if o < 0 || o >= n then invalid_arg "Dfg.import: output out of range")
    outs;
  g.outs <- outs;
  g

let pp ppf g =
  Format.fprintf ppf "@[<v>dfg (%d nodes)" g.len;
  List.iter
    (fun n ->
      Format.fprintf ppf "@,  %%%d = %s(%s)%s" n.id (Op.name n.kind)
        (String.concat ", " (List.map (Printf.sprintf "%%%d") (Array.to_list n.args)))
        (if n.freq > 1 then Printf.sprintf " x%d" n.freq else ""))
    (live_nodes g);
  Format.fprintf ppf "@,  outputs: %s@]"
    (String.concat ", " (List.map (Printf.sprintf "%%%d") g.outs))
