(** Static noise estimation.

    Propagates the same RMS error model the simulated evaluator injects at
    run time ({!Ckks.Evaluator}) through a DFG at compile time, using
    magnitude bounds instead of concrete slot values.  The result predicts
    the output precision of a managed program before executing it — the
    compile-time counterpart of the paper's RQ3 accuracy validation, and a
    guard rail for choosing scheme parameters: a plan whose predicted
    precision collapses (e.g. a scale too small for the multiplicative
    depth) can be rejected without running an inference.

    Magnitudes are tracked as per-node upper bounds: inputs and constants
    are assumed bounded by a caller-provided magnitude (default 1.0, the
    domain of the polynomial activation). *)

type info = {
  magnitude : float;  (** Upper bound on the slot values. *)
  noise : float;  (** RMS error estimate (absolute). *)
}

type report = {
  per_node : info array;
  output_noise : float;  (** Worst output error estimate. *)
  output_precision_bits : float;  (** [-log2 output_noise]. *)
}

(** {1 Model constants}

    The RMS noise constants mirrored from {!Ckks.Evaluator}, exported so
    independent analyses (e.g. {!Analysis.Absint}) can prove themselves
    against the same model rather than duplicating magic numbers. *)

val fresh_noise_bits : float
val rotate_noise_bits : float
val bootstrap_precision_bits : float

val analyse :
  ?input_magnitude:float ->
  ?magnitude_cap:float ->
  ?const_magnitude:(string -> float) ->
  Ckks.Params.t ->
  Dfg.t ->
  report
(** [magnitude_cap] (default 1.0) bounds the tracked magnitudes: FHE
    machine-learning programs keep activations inside the domain of the
    polynomial approximation ([-1, 1]), and without the cap a worst-case
    sum over a deep network diverges and predicts nothing.  Pass
    [infinity] for a sound worst-case analysis of shallow programs.
    [const_magnitude] bounds named plaintexts (weights, masks); the model
    lowering knows its amplitudes exactly, so passing its resolver's
    maxima makes the prediction sharp. *)

val predicts : report -> measured:float -> bool
(** Sanity predicate used by tests: the measured end-to-end error is
    within two orders of magnitude of the prediction (the model is an
    estimate, not a bound). *)

(** {1 Trace cross-validation}

    The runtime flight recorder ({!Obs.Trace}) records the noise the
    simulated evaluator actually accumulated; [check_trace] compares it
    against this module's static per-node estimate.  [resbm trace
    --verify-each] runs it after a traced execution, completing the
    verify-each story across the compile/run boundary. *)

type trace_mismatch = {
  node : int;
  op : string;
  traced_bits : float;  (** {!Obs.Trace.headroom_bits} of the recorded noise. *)
  predicted_bits : float;  (** Headroom of the static estimate. *)
}

val pp_trace_mismatch : Format.formatter -> trace_mismatch -> unit

val check_trace :
  ?tolerance_bits:float ->
  report ->
  Obs.Trace.op_event list ->
  trace_mismatch list
(** Events whose recorded noise exceeds the static per-node estimate by
    more than [tolerance_bits] (default 10.0 — two orders of magnitude,
    the same slack as {!predicts}).  Events without node attribution are
    skipped.  The [report] must come from {!analyse} on the {e same} graph
    the trace was recorded from. *)

val trace_hotspots :
  ?top:int -> report -> Obs.Trace.op_event list -> (int * float) list
(** [(node, ratio)] pairs ranking where the recorded run ran hottest
    against the static estimate: for each attributed node, the worst
    [noise_after / predicted] ratio over its events, the [top] (default
    16) largest first (node id breaks ties).  Unlike {!check_trace} this
    applies no tolerance, so a clean run still yields a ranking — used by
    chaos campaigns ([--from-trace]) to aim fault injection at the nodes
    with the least validated headroom. *)
