(** Ciphertext liveness and memory-pressure analysis.

    FHE ciphertexts are large — [2 * (level + 1) * N * 8] bytes in RNS
    form — and the paper's evaluation machine carries 512 GB of RAM for a
    reason.  This analysis walks the schedule (topological order), tracks
    which ciphertexts are live, and reports the peak working set, sizing
    each ciphertext at the level assigned by the scale checker.  It also
    exposes the per-boundary live counts that DaCapo's liveness-based
    bootstrapping keys on. *)

type report = {
  total_ciphertexts : int;  (** Ciphertext values allocated over the run. *)
  peak_live : int;  (** Largest number of simultaneously live ciphertexts. *)
  peak_bytes : float;  (** Working-set size at the peak (bytes). *)
  final_live : int;  (** Live at the end (the program outputs). *)
}

val analyse : Ckks.Params.t -> Dfg.t -> report

(** A materialised execution schedule with liveness bounds — the shared
    substrate for every position-based liveness query ({!analyse}, the
    interpreter's checkpointing, recovery's boundary validation).  All
    arrays are indexed by node id. *)
type schedule = {
  order : int array;  (** Node ids in execution (topological) order. *)
  order_index : int array;  (** Node id -> position in [order]; [-1] if dead. *)
  last_use : int array;
      (** Position of the value's last use; [max_int] for program outputs
          (live forever), [-1] for values never used. *)
  is_output : bool array;
}

val schedule : Dfg.t -> schedule

val live_at : schedule -> at:int -> int -> bool
(** [live_at sched ~at id]: is [id]'s value still needed at position [at]
    of the schedule — an output, or used at or after [at]?  O(1). *)

val ciphertext_bytes : Ckks.Params.t -> level:int -> float
(** Size of one RNS ciphertext at [level]. *)

val pp : Format.formatter -> report -> unit
