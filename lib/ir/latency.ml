let charge_level (g : Dfg.t) (info : Scale_check.info array) id =
  let node = Dfg.node g id in
  match node.Dfg.kind with
  | Op.Bootstrap target -> target
  | _ ->
      if Array.length node.Dfg.args = 0 then 0
      else
        (* Charge at the ciphertext operand's level. *)
        Array.fold_left
          (fun acc a -> if info.(a).Scale_check.is_ct then max acc info.(a).level else acc)
          0 node.Dfg.args

let node_cost _prm g info id =
  let node = Dfg.node g id in
  match Op.cost_op node.Dfg.kind with
  | None -> 0.0
  | Some op ->
      let level = charge_level g info id in
      float_of_int node.Dfg.freq *. Ckks.Cost_model.cost op ~level

let infer_or ~info prm g =
  match info with Some i -> i | None -> Scale_check.infer prm g

let total ?info prm g =
  let info = infer_or ~info prm g in
  List.fold_left (fun acc n -> acc +. node_cost prm g info n.Dfg.id) 0.0 (Dfg.live_nodes g)

let by_kind ?info prm g =
  let info = infer_or ~info prm g in
  let table = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Op.cost_op n.Dfg.kind with
      | None -> ()
      | Some op ->
          let c = node_cost prm g info n.Dfg.id in
          let cur = Option.value (Hashtbl.find_opt table op) ~default:0.0 in
          Hashtbl.replace table op (cur +. c))
    (Dfg.live_nodes g);
  List.filter_map
    (fun op -> Option.map (fun c -> (op, c)) (Hashtbl.find_opt table op))
    Ckks.Cost_model.all_ops
