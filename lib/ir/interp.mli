(** DFG interpreter over the simulated CKKS evaluator.

    Runs a (legalised) DFG end to end: inputs are encrypted, constants are
    encoded at the scales resolved by the scale checker, and each node
    executes on {!Ckks.Evaluator}, enforcing every runtime constraint and
    accumulating simulated latency from the Table 2 cost model.

    Nodes with [freq > 1] (rolled loops) execute once as a representative
    iteration; their latency is charged [freq] times, exactly as the
    paper's cost model does for rolled loops.

    Passing [?trace] turns the run into a flight-recorded execution: the
    interpreter installs the trace as ambient ({!Obs.with_trace}) and, for
    each node, a {!Obs.Trace.ctx} carrying the node id, its region
    ([?region_of], e.g. {!Resbm.Report.t}'s attribution), the loop
    frequency and the freq-weighted {!Latency.node_cost} — so every event
    the evaluator records is fully attributed and the trace's simulated
    clock ends at [result.latency_ms].  Without [?trace] no event is
    recorded and results are bit-identical (tracing never touches the
    noise PRNG). *)

type env = {
  inputs : (string * float array) list;
  consts : string -> float array;  (** Resolver for constant payloads. *)
}

type node_cost = {
  node : int;
  op : string;  (** {!Op.name} of the node kind. *)
  region : int;  (** From [?region_of]; [-1] when unattributed. *)
  cost_ms : float;  (** Freq-weighted simulated latency. *)
}

type noise_summary = {
  min_headroom_bits : float;
      (** Minimum {!Obs.Trace.headroom_bits} over every ciphertext produced
          by the run — how close the execution came to drowning the
          message in noise.  [infinity] when no ciphertext was produced. *)
  min_headroom_node : int;  (** Node achieving the minimum; [-1] if none. *)
  bootstrap_headroom : (int * float) list;
      (** For each executed bootstrap, its node id and the headroom of its
          {e operand} — the budget left at the refresh point, execution
          order. *)
  noisiest : (int * float) list;
      (** The (up to) five nodes with the least headroom, ascending. *)
}

type result = {
  outputs : Ckks.Ciphertext.t list;
  latency_ms : float;  (** Simulated execution latency. *)
  op_count : int;  (** Freq-weighted number of executed FHE operations. *)
  node_costs : node_cost list;
      (** Per-node latency attribution, execution (topological) order;
          [Input]/[Const] nodes are omitted (they charge nothing). *)
  noise : noise_summary;
}

exception Missing_input of string

val run :
  ?trace:Obs.Trace.t ->
  ?region_of:(int -> int) ->
  Ckks.Evaluator.t ->
  Dfg.t ->
  env ->
  result
(** [region_of] (default [fun _ -> -1]) maps node ids of [g] to region ids
    for event attribution and [node_costs].

    @raise Ckks.Evaluator.Fhe_error when the program violates a runtime
    constraint (e.g. an unmanaged program as in Figure 1a); with [?trace]
    the trace then ends with an ["fhe_error"] instant naming the faulting
    node.
    @raise Missing_input when [env] lacks a named input. *)
