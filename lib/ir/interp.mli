(** DFG interpreter over the simulated CKKS evaluator.

    Runs a (legalised) DFG end to end: inputs are encrypted, constants are
    encoded at the scales resolved by the scale checker, and each node
    executes on {!Ckks.Evaluator}, enforcing every runtime constraint and
    accumulating simulated latency from the Table 2 cost model.

    Nodes with [freq > 1] (rolled loops) execute once as a representative
    iteration; their latency is charged [freq] times, exactly as the
    paper's cost model does for rolled loops.

    Passing [?trace] turns the run into a flight-recorded execution: the
    interpreter installs the trace as ambient ({!Obs.with_trace}) and, for
    each node, a {!Obs.Trace.ctx} carrying the node id, its region
    ([?region_of], e.g. {!Resbm.Report.t}'s attribution), the loop
    frequency and the freq-weighted {!Latency.node_cost} — so every event
    the evaluator records is fully attributed and the trace's simulated
    clock ends at [result.latency_ms].  Without [?trace] no event is
    recorded and results are bit-identical (tracing never touches the
    noise PRNG).

    {!run} drives a whole graph in one call.  {!Session} exposes the same
    execution one node at a time — create, step through {!Session.order},
    finish — so a supervisor (the resilience layer's recovery interpreter)
    can interleave checkpointing, validation, rollback and repair between
    nodes.  [run] is implemented on [Session] and is bit-identical to the
    single-loop interpreter it replaced. *)

type env = {
  inputs : (string * float array) list;
  consts : string -> float array;  (** Resolver for constant payloads. *)
}

type node_cost = {
  node : int;
  op : string;  (** {!Op.name} of the node kind. *)
  region : int;  (** From [?region_of]; [-1] when unattributed. *)
  cost_ms : float;  (** Freq-weighted simulated latency. *)
}

type noise_summary = {
  min_headroom_bits : float;
      (** Minimum {!Obs.Trace.headroom_bits} over every ciphertext produced
          by the run — how close the execution came to drowning the
          message in noise.  [infinity] when no ciphertext was produced. *)
  min_headroom_node : int;  (** Node achieving the minimum; [-1] if none. *)
  bootstrap_headroom : (int * float) list;
      (** For each executed bootstrap, its node id and the headroom of its
          {e operand} — the budget left at the refresh point, execution
          order. *)
  noisiest : (int * float) list;
      (** The (up to) five nodes with the least headroom, ascending. *)
}

type result = {
  outputs : Ckks.Ciphertext.t list;
  latency_ms : float;  (** Simulated execution latency. *)
  op_count : int;  (** Freq-weighted number of executed FHE operations. *)
  node_costs : node_cost list;
      (** Per-node latency attribution, execution (topological) order;
          [Input]/[Const] nodes are omitted (they charge nothing). *)
  noise : noise_summary;
}

exception Missing_input of string

(** Stepwise execution with checkpoint/rollback, for supervised runs. *)
module Session : sig
  type t

  type snapshot
  (** A checkpoint: the values still live at a given execution position
      (everything downstream is recomputed on rollback) plus the latency
      and op counters at that point. *)

  val create :
    ?trace:Obs.Trace.t -> ?region_of:(int -> int) -> Ckks.Evaluator.t -> Dfg.t -> t
  (** Validates the graph with {!Scale_check} (raising the same structured
      [Illegal_graph] {!Ckks.Evaluator.Fhe_error} as {!run}) and prepares
      the execution order.  Nothing executes yet. *)

  val order : t -> int array
  (** Node ids in execution (topological) order; {!exec} them in sequence. *)

  val schedule : t -> Liveness.schedule
  (** The session's materialised {!Liveness.schedule} — [order] plus the
      O(1) last-use/liveness bounds that checkpointing keys on. *)

  val static_info : t -> Scale_check.info array
  (** The scale checker's per-node level/scale — the static contract a
      supervisor validates the runtime state against. *)

  val graph : t -> Dfg.t
  val evaluator : t -> Ckks.Evaluator.t
  val region_of : t -> int -> int
  val latency_ms : t -> float
  (** Simulated latency accumulated so far (including charged backoff). *)

  val exec : t -> env -> int -> unit
  (** Execute one node: publishes the {!Ckks.Fault.site}, installs trace
      attribution, runs the evaluator op, accumulates latency/op counts.
      @raise Ckks.Evaluator.Fhe_error as the evaluator does.
      @raise Missing_input when [env] lacks a named input. *)

  val ct_opt : t -> int -> Ckks.Ciphertext.t option
  (** The ciphertext computed for a node, when there is one. *)

  val live_cts : t -> at:int -> (int * Ckks.Ciphertext.t) list
  (** Computed ciphertexts still needed at position [at] of {!order}
      (outputs, or used at or after [at]), ascending node id — the state a
      supervisor validates at a region boundary. *)

  val set_ct : t -> int -> Ckks.Ciphertext.t -> unit
  (** Replace a node's computed ciphertext (recovery writes repaired
      values back this way). *)

  val refresh : t -> int -> Ckks.Ciphertext.t
  (** Panic re-bootstrap of node's ciphertext in place
      ({!Ckks.Evaluator.refresh}): bootstrap-priced, level/scale
      preserved, noise estimate reset.  Returns the refreshed ct. *)

  val snapshot : t -> at:int -> snapshot
  (** Checkpoint for resuming at position [at] of {!order} (the index of
      the next node to execute).  Keeps outputs and every value with a
      use at or after [at]; dead values are dropped, which is what makes
      a liveness-derived checkpoint budget meaningful. *)

  val snapshot_at : snapshot -> int
  val snapshot_bytes : snapshot -> float
  (** Estimated ciphertext bytes held by the checkpoint
      ({!Liveness.ciphertext_bytes} per live ct). *)

  val rollback : t -> snapshot -> int
  (** Restore values and counters from the checkpoint; returns the
      position to resume {!exec} from. *)

  val charge_ms : t -> float -> unit
  (** Add [ms] to the simulated latency (and the trace clock, when one is
      installed) — retry backoff is charged this way. *)

  val clear_ctx : t -> unit
  (** Clear the published fault site and trace attribution; call when
      abandoning or finishing a session ({!run} does this on all paths). *)

  val finish : t -> result
  (** Collect outputs and summaries.  The session must have executed every
      node in {!order}. *)
end

val run :
  ?trace:Obs.Trace.t ->
  ?region_of:(int -> int) ->
  Ckks.Evaluator.t ->
  Dfg.t ->
  env ->
  result
(** [region_of] (default [fun _ -> -1]) maps node ids of [g] to region ids
    for event attribution and [node_costs].

    @raise Ckks.Evaluator.Fhe_error when the program violates a runtime
    constraint (e.g. an unmanaged program as in Figure 1a); with [?trace]
    the trace then ends with an ["fhe_error"] instant naming the faulting
    node.
    @raise Missing_input when [env] lacks a named input. *)
