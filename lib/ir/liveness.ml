type report = {
  total_ciphertexts : int;
  peak_live : int;
  peak_bytes : float;
  final_live : int;
}

let ciphertext_bytes prm ~level =
  let n = float_of_int (1 lsl prm.Ckks.Params.log2_degree) in
  2.0 *. float_of_int (level + 1) *. n *. 8.0

type schedule = {
  order : int array;
  order_index : int array;
  last_use : int array;
  is_output : bool array;
}

let schedule g =
  let n = Dfg.node_count g in
  let order = Array.of_list (Dfg.topo_order g) in
  let order_index = Array.make n (-1) in
  Array.iteri (fun i id -> order_index.(id) <- i) order;
  (* Walking [order] forwards, a plain overwrite leaves each value's
     maximum user position — its last use.  Outputs stay live forever. *)
  let last_use = Array.make n (-1) in
  Array.iteri
    (fun pos id -> Array.iter (fun a -> last_use.(a) <- pos) (Dfg.node g id).Dfg.args)
    order;
  let is_output = Array.make n false in
  List.iter
    (fun o ->
      is_output.(o) <- true;
      last_use.(o) <- max_int)
    (Dfg.outputs g);
  { order; order_index; last_use; is_output }

let live_at sched ~at id = sched.is_output.(id) || sched.last_use.(id) >= at

let analyse prm g =
  let info = Scale_check.infer prm g in
  let sched = schedule g in
  let live = Hashtbl.create 64 in
  let live_bytes = ref 0.0 and live_count = ref 0 in
  let peak_live = ref 0 and peak_bytes = ref 0.0 and total = ref 0 in
  Array.iteri
    (fun pos id ->
      let node = Dfg.node g id in
      if Op.produces_ct node.Dfg.kind then begin
        incr total;
        let bytes = ciphertext_bytes prm ~level:(max info.(id).Scale_check.level 0) in
        Hashtbl.replace live id bytes;
        live_bytes := !live_bytes +. bytes;
        incr live_count;
        if !live_count > !peak_live then peak_live := !live_count;
        if !live_bytes > !peak_bytes then peak_bytes := !live_bytes
      end;
      (* free operands at their last use *)
      List.iter
        (fun a ->
          if sched.last_use.(a) = pos then
            match Hashtbl.find_opt live a with
            | Some bytes ->
                Hashtbl.remove live a;
                live_bytes := !live_bytes -. bytes;
                decr live_count
            | None -> ())
        (Dfg.preds g id))
    sched.order;
  {
    total_ciphertexts = !total;
    peak_live = !peak_live;
    peak_bytes = !peak_bytes;
    final_live = !live_count;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<h>%d ciphertexts allocated, peak %d live (%.1f MiB working set), %d at exit@]"
    r.total_ciphertexts r.peak_live
    (r.peak_bytes /. 1024.0 /. 1024.0)
    r.final_live
