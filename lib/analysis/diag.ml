type severity = Error | Warning | Hint

type t = {
  rule : string;
  severity : severity;
  node : int option;
  message : string;
  hint : string option;
}

let make severity ?node ?hint rule fmt =
  Format.kasprintf (fun message -> { rule; severity; node; message; hint }) fmt

let error ?node ?hint rule fmt = make Error ?node ?hint rule fmt
let warning ?node ?hint rule fmt = make Warning ?node ?hint rule fmt
let hint ?node ?hint rule fmt = make Hint ?node ?hint rule fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Hint -> "hint"
let severity_rank = function Error -> 0 | Warning -> 1 | Hint -> 2

let compare a b =
  match Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match Stdlib.compare a.node b.node with
      | 0 -> Stdlib.compare (a.rule, a.message) (b.rule, b.message)
      | c -> c)
  | c -> c

let sort ds = List.sort compare ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let has_warnings ds = List.exists (fun d -> d.severity = Warning) ds

let pp ppf d =
  (match d.node with
  | Some n -> Format.fprintf ppf "node %d: " n
  | None -> ());
  Format.fprintf ppf "%s: %s" d.rule d.message

let pp_verbose ppf d =
  Format.fprintf ppf "%s: %a" (severity_name d.severity) pp d;
  match d.hint with
  | Some h -> Format.fprintf ppf " (hint: %s)" h
  | None -> ()

let to_json d =
  let open Obs.Json in
  let fields =
    [ ("rule", String d.rule); ("severity", String (severity_name d.severity)) ]
    @ (match d.node with Some n -> [ ("node", Int n) ] | None -> [])
    @ [ ("message", String d.message) ]
    @ match d.hint with Some h -> [ ("hint", String h) ] | None -> []
  in
  Obj fields

let list_to_json ds =
  let open Obs.Json in
  Obj
    [
      ("diagnostics", List (List.map to_json (sort ds)));
      ("errors", Int (count Error ds));
      ("warnings", Int (count Warning ds));
      ("hints", Int (count Hint ds));
    ]
