(** Structured compiler diagnostics.

    Every check in {!Verify} and {!Lint} reports findings as [Diag.t]
    values: a stable rule id, a severity, the offending node (when one
    exists), a human-readable message and an optional fix-it hint.  The
    CLI prints them one per line ([node %d: rule: message]) and can emit
    them as JSON (via {!Obs.Json}, dependency-free) for tooling. *)

type severity = Error | Warning | Hint
(** [Error]: a hard invariant is broken — the graph must not be executed.
    [Warning]: the graph is legal but something is almost certainly wrong
    or wasteful.  [Hint]: a missed-optimisation opportunity. *)

type t = {
  rule : string;  (** Stable kebab-case rule id, e.g. ["scale"]. *)
  severity : severity;
  node : int option;  (** Offending DFG node, when attributable. *)
  message : string;
  hint : string option;  (** Optional fix-it suggestion. *)
}

val error : ?node:int -> ?hint:string -> string -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [error rule fmt ...] builds an [Error] diagnostic.  The first argument
    is the rule id. *)

val warning : ?node:int -> ?hint:string -> string -> ('a, Format.formatter, unit, t) format4 -> 'a
val hint : ?node:int -> ?hint:string -> string -> ('a, Format.formatter, unit, t) format4 -> 'a

val severity_name : severity -> string
(** ["error"], ["warning"], ["hint"]. *)

val compare : t -> t -> int
(** Orders by severity (errors first), then node id, then rule. *)

val sort : t list -> t list

val count : severity -> t list -> int
val has_errors : t list -> bool
val has_warnings : t list -> bool

val pp : Format.formatter -> t -> unit
(** [node 12: scale: message] — the node prefix is omitted for
    graph-level diagnostics.  No severity, no hint: the stable format
    scripts can grep. *)

val pp_verbose : Format.formatter -> t -> unit
(** [pp] prefixed with the severity and suffixed with the hint when
    present: [error: node 12: scale: message (hint: ...)]. *)

val to_json : t -> Obs.Json.t
(** [{"rule", "severity", "message"}] plus ["node"] and ["hint"] when
    present. *)

val list_to_json : t list -> Obs.Json.t
(** [{"diagnostics": [...], "errors": n, "warnings": n, "hints": n}]. *)
