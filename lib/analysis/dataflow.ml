(* A classic worklist fixpoint engine over the FHE DFG.

   The graph is a static circuit (a DAG), so a single sweep in (reverse)
   topological order reaches the fixpoint; the worklist and the widening
   hook keep the engine sound for frequency-weighted rolled loops and for
   domains of unbounded height.  Nodes are revisited only when a
   dependency's output actually changes, so the engine is linear in
   (nodes + edges) on DAGs regardless of the domain. *)

open Fhe_ir

type direction = Forward | Backward

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
end

module Make (D : DOMAIN) = struct
  type result = { input : D.t array; output : D.t array; steps : int }

  let solve ?(direction = Forward) ?(widen_after = max_int) g ~init ~transfer =
    let n = Dfg.node_count g in
    let order = Dfg.topo_order g in
    let order = match direction with Forward -> order | Backward -> List.rev order in
    let sources = match direction with Forward -> Dfg.preds | Backward -> Dfg.succs
    and targets = match direction with Forward -> Dfg.succs | Backward -> Dfg.preds in
    let input = Array.make n D.bottom and output = Array.make n D.bottom in
    let visits = Array.make n 0 in
    let queued = Array.make n false in
    let queue = Queue.create () in
    let push id =
      if not queued.(id) then begin
        queued.(id) <- true;
        Queue.add id queue
      end
    in
    List.iter push order;
    let get id = output.(id) in
    let steps = ref 0 in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      queued.(u) <- false;
      incr steps;
      visits.(u) <- visits.(u) + 1;
      let node = Dfg.node g u in
      let flowed =
        List.fold_left (fun acc p -> D.join acc output.(p)) (init node) (sources g u)
      in
      let combine = if visits.(u) > widen_after then D.widen else D.join in
      let in_v = combine input.(u) flowed in
      input.(u) <- in_v;
      let out = transfer node ~get in_v in
      if not (D.equal out output.(u)) then begin
        output.(u) <- out;
        List.iter push (targets g u)
      end
    done;
    Obs.incr ~by:!steps "dataflow.steps";
    { input; output; steps = !steps }
end
