(** Min-cut optimality certificates, independently re-checked.

    ReSBM's placements (SMOPLC, Algorithm 4; BTSPLC, Algorithm 5) come out
    of {!Graphlib.Maxflow} as cuts.  {!Graphlib.Maxflow.certificate}
    exports the final flow assignment alongside the cut; this module
    re-verifies the pair from scratch — without trusting Dinic — and, when
    every check passes, max-flow/min-cut LP duality proves the cut
    {e minimal}: any feasible s-t flow's value lower-bounds every s-t
    cut's capacity, so a saturated cut whose capacity equals a feasible
    flow's value meets the bound exactly.

    Checks and their rule ids:
    - ["cert-shape"] — node indices in range, side array well-sized;
    - ["cert-capacity"] — [0 <= flow <= cap] on every arc (finite flow);
    - ["cert-conservation"] — zero net flow at every non-terminal node;
    - ["cert-source-side"] — source on the source side, sink off it;
    - ["cert-closure"] — no infinite arc crosses the cut (the reverse
      arcs of [Maxflow_util.add_with_reverse] make the source side closed
      under predecessors; an infinite crossing arc refutes both the cut
      and that closure);
    - ["cert-unsaturated"] — every finite source-to-sink crossing arc is
      saturated;
    - ["cert-backflow"] — no flow crosses the cut sink-to-source;
    - ["cert-flow-value"] — the source's net outflow equals the claimed
      value;
    - ["cert-duality"] — the crossing arcs' capacities sum to the claimed
      value (flow value = cut value, the LP duality equality);
    - ["cert-value"] / ["cert-cut-value"] — the claimed value is finite
      and, when [?value] is given, matches the placement's recorded cut
      value.

    All comparisons use a tolerance proportional to the cut value
    (capacities are cost sums divided by degrees, so exact float equality
    is not available). *)

val check :
  ?pass:string ->
  ?region:int ->
  ?value:float ->
  Graphlib.Maxflow.certificate ->
  Diag.t list
(** [check ?pass ?region ?value cert] re-verifies [cert], returning the
    refuting diagnostics sorted most severe first ([[]] means the cut is
    proved minimal).  [pass] (default ["maxflow"]) and [region] prefix
    every message so a refutation names the placement that produced the
    certificate; [value] cross-checks the placement's own recorded cut
    value against the certificate's. *)

val ok : Diag.t list -> bool
(** [ok (check ... cert)] — no error-severity refutation. *)
