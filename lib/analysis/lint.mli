(** Lint analyses over legal managed graphs.

    Where {!Verify} rejects illegal graphs, the lints look for legal but
    wasteful or suspicious shapes — the compile-time cousins of the
    paper's motivation (Section 3): SMOs and bootstraps that burn levels
    or latency without need.  Six rules:

    - ["redundant-modswitch"] ({e hint}) — a modswitch that
      {!Passes.Ms_opt} could hoist above its single-use producer to run
      the producer at a lower level, or one whose entire effect is
      discarded by a bootstrap;
    - ["rescale-before-bootstrap"] ({e hint}) — a rescale whose only
      consumers are bootstraps: bootstrapping resets both scale and
      level, so the rescale's latency and the level it burns are wasted;
    - ["bootstrap-above-minimal"] ({e hint}) — a bootstrap targeting more
      levels than the remaining cone can consume before the next
      bootstrap or output, contradicting Algorithm 5's minimal-level
      objective (every extra level makes each downstream operation
      slower);
    - ["unused-node"] ({e warning}) — an [Input] or [Const] with no uses;
    - ["relin-placement"] ({e warning}) — a [Mul_cc] whose result is
      never relinearised, or relinearised more than once (the relin
      should be shared);
    - ["noise-margin"] ({e warning}) — the {!Fhe_ir.Noise_check}
      predicted output precision falls below a margin (default 8 bits).

    Opportunity rules report as [Hint] severity, anomalies as [Warning]:
    a compiled graph can legitimately contain opportunities (e.g. ReSBM
    rescales live-outs before bootstrapping them by construction), so
    only warnings and errors gate [--deny-warnings] CI runs.

    The lints assume a graph that passes {!Verify.run}; run the verifier
    first.  Each rule is timed as an [Obs] span named [lint.<rule>]. *)

type rule =
  | Redundant_modswitch
  | Rescale_before_bootstrap
  | Bootstrap_above_minimal
  | Unused_node
  | Relin_placement
  | Noise_margin

val all : rule list

val rule_id : rule -> string
(** The stable kebab-case id used in diagnostics, e.g.
    ["redundant-modswitch"]. *)

val of_rule_id : string -> rule option

val scan_planner_sources : dir:string -> Diag.t list
(** Source-level lint over the planner sources in [dir], recursing into
    subdirectories in sorted order ([_build] and dot directories
    skipped); a missing or unreadable [dir] yields [].  Two rules, both
    warnings with root-relative file:line in the message:

    - ["unsorted-hashtbl-drain"] — a [Hashtbl.iter] / [Hashtbl.fold] call
      site in a [.ml] file: hash-order iteration makes planner decisions
      depend on insertion history and seed, breaking plan reproducibility
      and the parallel/cached bit-identity contract; planner code drains
      through [Det].  [det.ml] itself and lines marked [(* det-ok *)] are
      exempt.
    - ["stdout-in-lib"] — a raw stdout call ([print_*],
      [Printf.printf], [Format.printf]) at an identifier boundary:
      library output flows through structured channels ([Obs.Log], Json
      writers, caller-supplied formatters), and stray prints corrupt the
      CLI's stdout contract ([--json] piping).  Lines marked
      [(* log-ok *)] are exempt. *)

val run :
  ?rules:rule list ->
  ?min_precision_bits:float ->
  ?magnitude_cap:float ->
  ?const_magnitude:(string -> float) ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  Diag.t list
(** Run the selected lints (default: all) and return the findings sorted
    most severe first.  [min_precision_bits] (default [8.0]) is the
    ["noise-margin"] threshold; [magnitude_cap] and [const_magnitude] are
    forwarded to {!Fhe_ir.Noise_check.analyse} — without the real weight
    magnitudes the worst-case prediction over a deep network is far too
    pessimistic, so pass the model's resolver maxima when available. *)
