(** Concrete abstract-interpretation analyses.

    Instantiations of the generic {!Dataflow} engine that certify managed
    graphs without executing them:

    - {b level/scale intervals} — a sound interval abstraction of the
      Table 1 scale algebra, proving every ciphertext fits its level's
      modulus capacity and no SMO underflows level 0;
    - {b noise bounds} — a sound over-approximation of {!Fhe_ir.Noise_check}'s
      RMS model (every rule is monotone, so upper bounds propagate to
      upper bounds), proving the scaled signal plus noise fits the RNS
      modulus chain at every node;
    - {b liveness} — backward def-use liveness sets, the declarative
      specification that {!Fhe_ir.Liveness} schedules and
      {!Fhe_ir.Interp.Session} queries are validated against.

    Each check returns {!Diag} diagnostics ([[]] means proved) and both
    interval and noise checks cross-validate the abstraction against the
    corresponding concrete propagation (rule ["absint-diverged"]), so a
    bug in either side surfaces as a refutation rather than silence. *)

(** One node's (scale, level) abstraction: closed integer intervals. *)
type interval = { s_lo : int; s_hi : int; l_lo : int; l_hi : int; is_ct : bool }

type scale_value = Bot | Iv of interval

module Scale_domain : Dataflow.DOMAIN with type t = scale_value
module Scale_solver : module type of Dataflow.Make (Scale_domain)

val solve_intervals : Ckks.Params.t -> Fhe_ir.Dfg.t -> Scale_solver.result
(** The raw interval fixpoint (exposed for tests and tooling). *)

val check_levels :
  ?scales:Fhe_ir.Scale_check.info array -> Ckks.Params.t -> Fhe_ir.Dfg.t -> Diag.t list
(** Prove capacity and level safety.  [scales] supplies a precomputed
    {!Fhe_ir.Scale_check.infer} result to cross-validate against (it is
    recomputed when absent — pass it when the caller also runs
    {!check_noise} so the concrete pass happens once).
    Rules: ["absint-capacity"] (a scale
    interval's upper bound overflows the modulus at the level interval's
    lower bound), ["absint-level"] (an SMO's operand level interval
    reaches 0), ["absint-bottom"] (unreachable ciphertext),
    ["absint-diverged"] (the concrete {!Fhe_ir.Scale_check.infer} value
    escapes the abstraction — an analysis bug, never a graph bug). *)

(** One node's noise abstraction: upper bounds on slot magnitude and RMS
    error, mirroring {!Fhe_ir.Noise_check.info}. *)
type noise_bound = { mag : float; noise : float }

type noise_value = NBot | Nv of noise_bound

module Noise_domain : Dataflow.DOMAIN with type t = noise_value
module Noise_solver : module type of Dataflow.Make (Noise_domain)

val encoding_slack_bits : float
(** Headroom allowed on top of the scaled signal (sign and rounding). *)

val check_noise :
  ?input_magnitude:float ->
  ?magnitude_cap:float ->
  ?const_magnitude:(string -> float) ->
  ?scales:Fhe_ir.Scale_check.info array ->
  Ckks.Params.t ->
  Fhe_ir.Dfg.t ->
  Diag.t list
(** Certify the noise analysis itself: errors when the abstraction fails
    to dominate the concrete {!Fhe_ir.Noise_check.analyse} estimate at
    some node (["absint-diverged"]), when a bound is NaN
    (["absint-noise-nan"]) or when a ciphertext is never reached
    (["absint-bottom"]).  Cannot-prove findings are warnings: one
    graph-level ["absint-noise-overflow"] summarising the ciphertexts
    whose worst-case [|value| + noise] at scale [2^scale_bits] cannot be
    shown to fit the modulus chain [q0 * q^level] (the bound is a loose
    over-approximation on deep circuits — scale-capacity fit is the
    {!check_levels} invariant), and ["absint-precision"] when an
    output's noise bound reaches its signal bound.  The optional
    parameters match {!Fhe_ir.Noise_check.analyse}. *)

module Int_set : Set.S with type elt = int

type liveness = {
  live_in : Int_set.t array;
      (** [live_in.(id)]: ciphertexts (other than [id]'s own result)
          that node [id] or some transitive user of anything it feeds
          still needs — the values live just before [id] in any valid
          schedule. *)
  live_out : Int_set.t array;
      (** [live_out.(id)]: union of the users' [live_in] — the values
          def-use liveness keeps alive after [id]. *)
}

val liveness : Fhe_ir.Dfg.t -> liveness
(** Backward liveness over def-use chains.  Output persistence is not
    modelled (a value appears only while some consumer still needs it),
    so these sets are a lower bound on any schedule-based live set —
    {!Fhe_ir.Liveness} and {!Fhe_ir.Interp.Session.is_live} must contain
    them, which is exactly what the cross-validation tests assert. *)
