(** Generic abstract-interpretation dataflow engine.

    A worklist fixpoint solver over {!Fhe_ir.Dfg} graphs, parameterised by
    a join-semilattice abstract domain.  Concrete analyses (level/scale
    intervals, sound noise bounds, liveness — see {!Absint}) are a domain
    plus a transfer function; the engine handles ordering, joins,
    convergence and widening.

    The DFG is a static circuit (a DAG), so the fixpoint is reached in one
    sweep; the worklist re-queues a node only when a dependency's output
    changes, and [widen_after] keeps termination guaranteed for domains of
    unbounded height (e.g. interval bounds driven by frequency-weighted
    rolled loops). *)

type direction =
  | Forward  (** Information flows def → use; sources are {!Fhe_ir.Dfg.preds}. *)
  | Backward  (** Information flows use → def; sources are {!Fhe_ir.Dfg.succs}. *)

(** A join-semilattice with a widening operator. *)
module type DOMAIN = sig
  type t

  val bottom : t
  (** Least element; the identity of [join]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old new]: an upper bound of both that guarantees every
      ascending chain stabilises.  Domains of finite height may use
      [join]. *)
end

module Make (D : DOMAIN) : sig
  type result = {
    input : D.t array;  (** Fixpoint value flowing {e into} each node id. *)
    output : D.t array;  (** [transfer] applied to [input], per node id. *)
    steps : int;  (** Node evaluations until convergence. *)
  }

  val solve :
    ?direction:direction ->
    ?widen_after:int ->
    Fhe_ir.Dfg.t ->
    init:(Fhe_ir.Dfg.node -> D.t) ->
    transfer:(Fhe_ir.Dfg.node -> get:(int -> D.t) -> D.t -> D.t) ->
    result
  (** [solve g ~init ~transfer] runs to fixpoint over the live nodes of
      [g].  A node's flowed-in value is [init node] joined with the
      outputs of its sources (arguments under [Forward], users under
      [Backward]) — boundary nodes have no sources, so [init] is their
      whole input.  [transfer] receives the joined input plus [get], the
      current output of any node id — use it to read {e source} values
      individually (e.g. per-argument scales for a multiplication);
      reading non-source nodes is unsound, since only source changes
      re-queue the node.  After a node has been evaluated [widen_after]
      times (default: never) its input is widened instead of joined.
      Dead nodes keep [D.bottom].  The work done is reported to the
      ambient {!Obs} profile as ["dataflow.steps"]. *)
end
