open Fhe_ir

type rule =
  | Redundant_modswitch
  | Rescale_before_bootstrap
  | Bootstrap_above_minimal
  | Unused_node
  | Relin_placement
  | Noise_margin

let all =
  [
    Redundant_modswitch;
    Rescale_before_bootstrap;
    Bootstrap_above_minimal;
    Unused_node;
    Relin_placement;
    Noise_margin;
  ]

let rule_id = function
  | Redundant_modswitch -> "redundant-modswitch"
  | Rescale_before_bootstrap -> "rescale-before-bootstrap"
  | Bootstrap_above_minimal -> "bootstrap-above-minimal"
  | Unused_node -> "unused-node"
  | Relin_placement -> "relin-placement"
  | Noise_margin -> "noise-margin"

let of_rule_id id = List.find_opt (fun r -> rule_id r = id) all

let is_bootstrap g id =
  match (Dfg.node g id).Dfg.kind with Op.Bootstrap _ -> true | _ -> false

(* Mirrors Passes.Ms_opt's hoisting candidacy without mutating: a
   modswitch under a single-use producer whose operands all have a level
   to spend.  A modswitch consumed exclusively by bootstraps is also
   redundant: the bootstrap resets the level it just dropped. *)
let redundant_modswitch prm info g =
  let outs = Dfg.outputs g in
  List.concat_map
    (fun n ->
      if n.Dfg.kind <> Op.Modswitch then []
      else begin
        let m = n.Dfg.id in
        let discarded =
          n.Dfg.users <> []
          && List.for_all (is_bootstrap g) n.Dfg.users
          && not (List.mem m outs)
        in
        if discarded then
          [
            Diag.hint ~node:m ~hint:"drop the modswitch; bootstrap from the higher level"
              "redundant-modswitch"
              "modswitch feeds only bootstrap nodes, which discard the dropped level";
          ]
        else begin
          let producer = n.Dfg.args.(0) in
          let p = Dfg.node g producer in
          if p.Dfg.users <> [ m ] || List.mem producer outs then []
          else begin
            let level = info.(producer).Scale_check.level in
            let ok_levels target =
              level >= 1
              && Array.for_all
                   (fun a ->
                     (not (Op.produces_ct (Dfg.node g a).Dfg.kind))
                     || info.(a).Scale_check.level >= 1)
                   (Dfg.node g target).Dfg.args
              && Ckks.Evaluator.capacity_ok prm
                   ~scale_bits:info.(producer).Scale_check.scale_bits ~level:(level - 1)
            in
            let candidate =
              match p.Dfg.kind with
              | Op.Rotate _ | Op.Add_cc | Op.Add_cp | Op.Mul_cp ->
                  if ok_levels producer then Some producer else None
              | Op.Relin ->
                  let mul = p.Dfg.args.(0) in
                  let mn = Dfg.node g mul in
                  if
                    mn.Dfg.kind = Op.Mul_cc
                    && mn.Dfg.users = [ producer ]
                    && (not (List.mem mul outs))
                    && ok_levels mul
                  then Some mul
                  else None
              | _ -> None
            in
            match candidate with
            | Some target ->
                [
                  Diag.hint ~node:m ~hint:"compile with ms_opt to hoist it"
                    "redundant-modswitch"
                    "modswitch can be hoisted above %s node %d to run it one level lower"
                    (Op.name p.Dfg.kind) target;
                ]
            | None -> []
          end
        end
      end)
    (Dfg.live_nodes g)

let rescale_before_bootstrap g =
  let outs = Dfg.outputs g in
  List.concat_map
    (fun n ->
      if
        n.Dfg.kind = Op.Rescale
        && n.Dfg.users <> []
        && List.for_all (is_bootstrap g) n.Dfg.users
        && not (List.mem n.Dfg.id outs)
      then
        [
          Diag.hint ~node:n.Dfg.id
            ~hint:"bootstrap directly from the unrescaled value"
            "rescale-before-bootstrap"
            "rescale feeds only bootstrap nodes, which reset scale and level; its latency \
             and the level it burns are wasted";
        ]
      else [])
    (Dfg.live_nodes g)

(* Minimal capacity floor of a ciphertext: the smallest level at which its
   scale still fits the modulus (Ckks.Evaluator.capacity_ok). *)
let level_floor prm info id =
  let q = prm.Ckks.Params.scale_bits in
  max (((info.(id).Scale_check.scale_bits + q - 1) / q) - 1) 0

(* A bootstrap targeting level t when the remaining cone — everything
   reachable before the next bootstrap — keeps a positive level margin
   everywhere could have targeted t - margin (Algorithm 5's objective). *)
let bootstrap_above_minimal prm info g =
  List.concat_map
    (fun n ->
      match n.Dfg.kind with
      | Op.Bootstrap target when target > 1 ->
          let b = n.Dfg.id in
          let visited = Hashtbl.create 16 in
          let slack = ref (info.(b).Scale_check.level - level_floor prm info b) in
          let rec walk id =
            if not (Hashtbl.mem visited id) then begin
              Hashtbl.add visited id ();
              List.iter
                (fun u ->
                  if (not (is_bootstrap g u)) && Op.produces_ct (Dfg.node g u).Dfg.kind
                  then begin
                    slack := min !slack (info.(u).Scale_check.level - level_floor prm info u);
                    walk u
                  end)
                (Dfg.succs g id)
            end
          in
          walk b;
          let minimal = max 1 (target - max !slack 0) in
          if minimal < target then
            [
              Diag.hint ~node:b
                ~hint:
                  (Printf.sprintf
                     "retarget to L%d and re-legalise; every extra level slows the cone"
                     minimal)
                "bootstrap-above-minimal"
                "bootstrap targets L%d but its cone only needs L%d before the next \
                 bootstrap or output"
                target minimal;
            ]
          else []
      | _ -> [])
    (Dfg.live_nodes g)

let unused_node g =
  let outs = Dfg.outputs g in
  List.concat_map
    (fun n ->
      match n.Dfg.kind with
      | (Op.Input _ | Op.Const _) when n.Dfg.users = [] && not (List.mem n.Dfg.id outs) ->
          [
            Diag.warning ~node:n.Dfg.id ~hint:"remove it, or run dead-code elimination"
              "unused-node" "%s has no uses" (Op.name n.Dfg.kind);
          ]
      | _ -> [])
    (Dfg.live_nodes g)

let relin_placement g =
  let outs = Dfg.outputs g in
  List.concat_map
    (fun n ->
      if n.Dfg.kind <> Op.Mul_cc then []
      else begin
        let relins =
          List.filter (fun u -> (Dfg.node g u).Dfg.kind = Op.Relin) n.Dfg.users
        in
        match relins with
        | [] ->
            [
              Diag.warning ~node:n.Dfg.id ~hint:"relinearise the product"
                "relin-placement" "mul_cc result is never relinearised%s"
                (if List.mem n.Dfg.id outs then " (size-3 program output)" else "");
            ]
        | [ _ ] -> []
        | _ ->
            [
              Diag.warning ~node:n.Dfg.id ~hint:"share a single relin between the uses"
                "relin-placement" "mul_cc is relinearised %d times"
                (List.length relins);
            ]
      end)
    (Dfg.live_nodes g)

let noise_margin ?magnitude_cap ?const_magnitude ~min_precision_bits prm g =
  let r = Noise_check.analyse ?magnitude_cap ?const_magnitude prm g in
  if r.Noise_check.output_precision_bits < min_precision_bits then
    [
      Diag.warning
        ~hint:"raise scale_bits or bootstrap more often to restore precision"
        "noise-margin" "predicted output precision %.1f bits is below the %.1f-bit margin"
        r.Noise_check.output_precision_bits min_precision_bits;
    ]
  else []

(* Source-level determinism lint: planner code must never drain a
   hashtable in physical (hash) order — OCaml hashtable iteration order
   depends on insertion history and the random seed, and a planner
   decision taken in that order silently breaks plan reproducibility and
   the parallel/cached bit-identity contract.  Planner sources drain
   through [Det] instead (det.ml itself is the sanctioned wrapper and is
   exempt, as is any line carrying a [det-ok] marker). *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

(* Like [contains], but only at an identifier boundary: a needle preceded
   by an identifier character is part of a longer name (e.g. the stdlib
   call [Format.pp_print_string] is not a raw stdout print). *)
let contains_call hay needle =
  let nh = String.length hay and nn = String.length needle in
  let ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '\''
  in
  let rec at i =
    i + nn <= nh
    && ((String.sub hay i nn = needle && (i = 0 || not (ident hay.[i - 1])))
       || at (i + 1))
  in
  nn > 0 && at 0

(* Stdout calls library code must never make: reports flow through the
   structured channels (Json writers, Obs.Log, formatters handed in by
   the caller), and a stray print interleaves with the CLI's own stdout
   contract (e.g. [--json] output piped to a file).  Built by
   concatenation so this scanner never flags its own source. *)
let stdout_callees =
  List.map (( ^ ) "print_") [ "endline"; "string"; "newline"; "char"; "int"; "float" ]
  @ List.map (fun m -> m ^ ".printf") [ "Printf"; "Format" ]

let scan_planner_file ~rel path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let diags = ref [] in
          let lnum = ref 0 in
          (try
             while true do
               let line = input_line ic in
               incr lnum;
               if not (contains line "det-ok") then
                 List.iter
                   (fun callee ->
                     if contains line ("Hashtbl." ^ callee) then
                       diags :=
                         Diag.warning
                           ~hint:
                             "drain through Det.sorted_bindings / \
                              Det.iter_sorted, or mark the line (* det-ok *)"
                           "unsorted-hashtbl-drain"
                           "%s:%d: Hashtbl.%s visits bindings in \
                            nondeterministic hash order inside planner code"
                           rel !lnum callee
                         :: !diags)
                   [ "iter"; "fold" ];
               if not (contains line "log-ok") then
                 match List.find_opt (contains_call line) stdout_callees with
                 | Some callee ->
                     diags :=
                       Diag.warning
                         ~hint:
                           "emit through Obs.log_* / Json writers / a \
                            caller-supplied formatter, or mark the line (* \
                            log-ok *)"
                         "stdout-in-lib"
                         "%s:%d: %s writes raw stdout inside library code"
                         rel !lnum callee
                       :: !diags
                 | None -> ()
             done
           with End_of_file -> ());
          List.rev !diags)

let scan_planner_sources ~dir =
  (* Recursive, deterministic walk: entries sorted at every level, build
     directories skipped, messages relative to the scanned root. *)
  let rec walk ~rel dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> []
    | entries ->
        List.concat_map
          (fun e ->
            let path = Filename.concat dir e in
            let rel = if rel = "" then e else Filename.concat rel e in
            if (try Sys.is_directory path with Sys_error _ -> false) then
              if e = "_build" || String.length e > 0 && e.[0] = '.' then []
              else walk ~rel path
            else if Filename.check_suffix e ".ml" && e <> "det.ml" then
              scan_planner_file ~rel path
            else [])
          (List.sort compare (Array.to_list entries))
  in
  walk ~rel:"" dir

let run ?(rules = all) ?(min_precision_bits = 8.0) ?magnitude_cap ?const_magnitude prm g =
  let info = Scale_check.infer prm g in
  let lint rule =
    Obs.span ("lint." ^ rule_id rule) @@ fun () ->
    match rule with
    | Redundant_modswitch -> redundant_modswitch prm info g
    | Rescale_before_bootstrap -> rescale_before_bootstrap g
    | Bootstrap_above_minimal -> bootstrap_above_minimal prm info g
    | Unused_node -> unused_node g
    | Relin_placement -> relin_placement g
    | Noise_margin -> noise_margin ?magnitude_cap ?const_magnitude ~min_precision_bits prm g
  in
  Diag.sort (List.concat_map lint rules)
