(* Concrete abstract-interpretation analyses on top of the generic
   Dataflow engine: level/scale intervals, a sound noise bound, and
   def-use liveness.  Each is a DOMAIN plus a transfer function; the
   engine supplies ordering, joins and convergence. *)

open Fhe_ir

(* ------------------------------------------------------------------ *)
(* Level / scale intervals.                                            *)
(* ------------------------------------------------------------------ *)

type interval = { s_lo : int; s_hi : int; l_lo : int; l_hi : int; is_ct : bool }

type scale_value = Bot | Iv of interval

(* Widening blows a still-moving bound to its extreme; scales are bounded
   by [max_scale_bits] rather than [max_int] so arithmetic on widened
   values cannot overflow. *)
let max_scale_bits = 1 lsl 20

let max_level_bound = 1 lsl 20

module Scale_domain = struct
  type t = scale_value

  let bottom = Bot
  let equal (a : t) (b : t) = a = b

  let join_iv a b =
    {
      s_lo = min a.s_lo b.s_lo;
      s_hi = max a.s_hi b.s_hi;
      l_lo = min a.l_lo b.l_lo;
      l_hi = max a.l_hi b.l_hi;
      is_ct = a.is_ct || b.is_ct;
    }

  let join a b =
    match (a, b) with
    | Bot, v | v, Bot -> v
    | Iv a, Iv b -> Iv (join_iv a b)

  let widen old v =
    match (old, v) with
    | Bot, v -> v
    | v, Bot -> v
    | Iv o, Iv n ->
        Iv
          {
            s_lo = (if n.s_lo < o.s_lo then 0 else o.s_lo);
            s_hi = (if n.s_hi > o.s_hi then max_scale_bits else o.s_hi);
            l_lo = (if n.l_lo < o.l_lo then 0 else o.l_lo);
            l_hi = (if n.l_hi > o.l_hi then max_level_bound else o.l_hi);
            is_ct = o.is_ct || n.is_ct;
          }
end

module Scale_solver = Dataflow.Make (Scale_domain)

let exact ~s ~l ~is_ct = Iv { s_lo = s; s_hi = s; l_lo = l; l_hi = l; is_ct }

(* Mirrors the lenient Scale_check propagation (Table 1 with clamping) on
   intervals.  Constants are plaintexts: their encoding scale is the
   waterline for multiplications and the ciphertext's scale for additions,
   so consumers never read a constant's own entry beyond [is_ct]. *)
let scale_transfer (prm : Ckks.Params.t) (node : Dfg.node) ~get _joined =
  let q = prm.scale_bits and qw = prm.waterline_bits in
  let arg i =
    match get node.args.(i) with
    | Iv v -> v
    | Bot -> { s_lo = qw; s_hi = qw; l_lo = 0; l_hi = 0; is_ct = false }
  in
  let ct_operand () =
    let a = arg 0 in
    if a.is_ct || Array.length node.args < 2 then a
    else
      let b = arg 1 in
      if b.is_ct then b else a
  in
  (* Level interval of a binary ct operation: min over ct operands,
     bound by bound. *)
  let join_level a b =
    match (a.is_ct, b.is_ct) with
    | true, true -> (min a.l_lo b.l_lo, min a.l_hi b.l_hi)
    | true, false -> (a.l_lo, a.l_hi)
    | false, true -> (b.l_lo, b.l_hi)
    | false, false -> (0, 0)
  in
  match node.kind with
  | Op.Input { level; scale_bits; _ } ->
      let l = Option.value level ~default:prm.input_level
      and s = Option.value scale_bits ~default:prm.input_scale_bits in
      exact ~s ~l ~is_ct:true
  | Op.Const _ -> exact ~s:qw ~l:0 ~is_ct:false
  | Op.Add_cc ->
      let a = arg 0 and b = arg 1 in
      let l_lo, l_hi = join_level a b in
      (* Sound for mismatched operand scales: cover both. *)
      let c = ct_operand () in
      let s_lo = min c.s_lo (if a.is_ct && b.is_ct then min a.s_lo b.s_lo else c.s_lo)
      and s_hi = max c.s_hi (if a.is_ct && b.is_ct then max a.s_hi b.s_hi else c.s_hi) in
      Iv { s_lo; s_hi; l_lo; l_hi; is_ct = true }
  | Op.Add_cp -> Iv { (ct_operand ()) with is_ct = true }
  | Op.Mul_cc ->
      let a = arg 0 and b = arg 1 in
      let l_lo, l_hi = join_level a b in
      Iv { s_lo = a.s_lo + b.s_lo; s_hi = a.s_hi + b.s_hi; l_lo; l_hi; is_ct = true }
  | Op.Mul_cp ->
      let a = ct_operand () in
      Iv { a with s_lo = a.s_lo + qw; s_hi = a.s_hi + qw; is_ct = true }
  | Op.Rotate _ | Op.Relin -> Iv { (arg 0) with is_ct = true }
  | Op.Rescale ->
      let a = arg 0 in
      Iv
        {
          s_lo = max (a.s_lo - q) 1;
          s_hi = max (a.s_hi - q) 1;
          l_lo = max (a.l_lo - 1) 0;
          l_hi = max (a.l_hi - 1) 0;
          is_ct = true;
        }
  | Op.Modswitch ->
      let a = arg 0 in
      Iv { a with l_lo = max (a.l_lo - 1) 0; l_hi = max (a.l_hi - 1) 0; is_ct = true }
  | Op.Bootstrap target -> exact ~s:q ~l:target ~is_ct:true

let solve_intervals prm g =
  Scale_solver.solve g ~init:(fun _ -> Bot) ~transfer:(scale_transfer prm)

let check_levels ?scales prm g =
  Obs.span "absint.levels" @@ fun () ->
  let r = solve_intervals prm g in
  let concrete =
    match scales with Some s -> s | None -> Scale_check.infer prm g
  in
  let ds = ref [] in
  let err ~node rule fmt = Format.kasprintf (fun m -> ds := Diag.error ~node rule "%s" m :: !ds) fmt in
  List.iter
    (fun (n : Dfg.node) ->
      let id = n.id in
      if Op.produces_ct n.kind then begin
        match r.Scale_solver.output.(id) with
        | Bot -> err ~node:id "absint-bottom" "ciphertext never reached by the analysis"
        | Iv v ->
            (* Worst corner: highest scale at lowest level. *)
            if not (Ckks.Evaluator.capacity_ok prm ~scale_bits:v.s_hi ~level:v.l_lo) then
              err ~node:id "absint-capacity"
                "cannot prove capacity: scale interval reaches 2^%d at level %d" v.s_hi
                v.l_lo;
            (match n.kind with
            | Op.Rescale | Op.Modswitch -> (
                match r.Scale_solver.output.(n.args.(0)) with
                | Iv a when a.l_lo < 1 ->
                    err ~node:id "absint-level" "level may underflow: operand level interval reaches %d"
                      a.l_lo
                | _ -> ())
            | _ -> ());
            (* The concrete lenient propagation must lie inside the
               abstraction — this is the soundness cross-check. *)
            let c = concrete.(id) in
            if c.Scale_check.is_ct
               && (c.Scale_check.scale_bits < v.s_lo
                  || c.Scale_check.scale_bits > v.s_hi
                  || c.Scale_check.level < v.l_lo
                  || c.Scale_check.level > v.l_hi)
            then
              err ~node:id "absint-diverged"
                "concrete (2^%d, L%d) escapes the abstract interval ([%d,%d], [L%d,L%d])"
                c.Scale_check.scale_bits c.Scale_check.level v.s_lo v.s_hi v.l_lo v.l_hi
      end)
    (Dfg.live_nodes g);
  Diag.sort !ds

(* ------------------------------------------------------------------ *)
(* Sound noise bound.                                                  *)
(* ------------------------------------------------------------------ *)

type noise_bound = { mag : float; noise : float }

type noise_value = NBot | Nv of noise_bound

module Noise_domain = struct
  type t = noise_value

  let bottom = NBot
  let equal (a : t) (b : t) = a = b

  let join a b =
    match (a, b) with
    | NBot, v | v, NBot -> v
    | Nv a, Nv b -> Nv { mag = Float.max a.mag b.mag; noise = Float.max a.noise b.noise }

  let widen old v =
    match (old, v) with
    | NBot, v -> v
    | v, NBot -> v
    | Nv o, Nv n ->
        Nv
          {
            mag = (if n.mag > o.mag then infinity else o.mag);
            noise = (if n.noise > o.noise then infinity else o.noise);
          }
end

module Noise_solver = Dataflow.Make (Noise_domain)

let rms2 a b = sqrt ((a *. a) +. (b *. b))
let pow2 bits = 2.0 ** bits

(* Mirrors Noise_check's RMS model on upper bounds.  Every rule is
   monotone in both components, so propagating per-node upper bounds
   yields a sound over-approximation of the concrete estimate. *)
let noise_transfer ~input_magnitude ~magnitude_cap ~const_magnitude
    (scales : Scale_check.info array) (node : Dfg.node) ~get _joined =
  let arg i = match get node.args.(i) with Nv v -> v | NBot -> { mag = 0.0; noise = 0.0 } in
  let cap m = Float.min m magnitude_cap in
  let scale_bits id = float_of_int scales.(id).Scale_check.scale_bits in
  let fresh = pow2 (Noise_check.fresh_noise_bits -. scale_bits node.id) in
  let v =
    match node.kind with
    | Op.Input _ -> { mag = input_magnitude; noise = fresh }
    | Op.Const { name } ->
        { mag = const_magnitude name; noise = pow2 (-.scale_bits node.id) }
    | Op.Add_cc | Op.Add_cp ->
        let a = arg 0 and b = arg 1 in
        { mag = cap (a.mag +. b.mag); noise = rms2 a.noise b.noise }
    | Op.Mul_cc | Op.Mul_cp ->
        let a = arg 0 and b = arg 1 in
        {
          mag = cap (a.mag *. b.mag);
          noise = rms2 (rms2 (a.mag *. b.noise) (b.mag *. a.noise)) fresh;
        }
    | Op.Rotate _ | Op.Relin ->
        let a = arg 0 in
        {
          a with
          noise = rms2 a.noise (pow2 (Noise_check.rotate_noise_bits -. scale_bits node.id));
        }
    | Op.Rescale ->
        let a = arg 0 in
        { a with noise = rms2 a.noise fresh }
    | Op.Modswitch -> arg 0
    | Op.Bootstrap _ ->
        let a = arg 0 in
        { a with noise = rms2 a.noise (pow2 (-.Noise_check.bootstrap_precision_bits)) }
  in
  Nv v

(* Headroom the encoding needs on top of the scaled signal: sign bit plus
   rounding conventions — small, but not zero (a full-capacity scale with
   magnitude exactly 1.0 is legal for the evaluator). *)
let encoding_slack_bits = 2.0

let check_noise ?(input_magnitude = 1.0) ?(magnitude_cap = 1.0)
    ?(const_magnitude = fun _ -> 1.0) ?scales prm g =
  Obs.span "absint.noise" @@ fun () ->
  let scales =
    match scales with Some s -> s | None -> Scale_check.infer prm g
  in
  let r =
    Noise_solver.solve g
      ~init:(fun _ -> NBot)
      ~transfer:(noise_transfer ~input_magnitude ~magnitude_cap ~const_magnitude scales)
  in
  let reference =
    Noise_check.analyse ~input_magnitude ~magnitude_cap ~const_magnitude prm g
  in
  let q = prm.Ckks.Params.scale_bits and q0 = prm.Ckks.Params.q0_bits in
  let ds = ref [] in
  let err ~node rule fmt = Format.kasprintf (fun m -> ds := Diag.error ~node rule "%s" m :: !ds) fmt in
  let is_output = Array.make (Dfg.node_count g) false in
  List.iter (fun o -> is_output.(o) <- true) (Dfg.outputs g);
  (* Modulus-fit is a cannot-prove finding, not a refutation: the bound
     is a worst-case over-approximation (on deep circuits it is orders of
     magnitude above the run — {!Fhe_ir.Noise_check.check_trace}'s own
     tolerance is two orders), and scale-capacity fit is already proven
     by {!check_levels}.  Summarised as one graph-level warning naming
     the worst node.  Error severity is reserved for soundness breaks:
     a bound below the concrete estimate, a NaN bound, or an unreached
     ciphertext. *)
  let unproven = ref 0 and worst_node = ref (-1) and worst_bits = ref neg_infinity in
  let worst_modulus = ref 0 in
  List.iter
    (fun (n : Dfg.node) ->
      let id = n.id in
      if Op.produces_ct n.kind then begin
        match r.Noise_solver.output.(id) with
        | NBot -> err ~node:id "absint-bottom" "ciphertext never reached by the noise analysis"
        | Nv v ->
            let s = scales.(id).Scale_check.scale_bits
            and l = scales.(id).Scale_check.level in
            if Float.is_nan v.mag || Float.is_nan v.noise then
              err ~node:id "absint-noise-nan" "noise bound is NaN (mag %g, noise %g)"
                v.mag v.noise
            else begin
              (* Scaled signal plus noise fitting the RNS modulus chain
                 q0 * q^level at this level. *)
              let modulus_bits = float_of_int (q0 + (l * q)) in
              let signal_bits =
                if v.mag +. v.noise <= 0.0 then neg_infinity
                else Float.log2 (v.mag +. v.noise) +. float_of_int s
              in
              if signal_bits > modulus_bits +. encoding_slack_bits then begin
                incr unproven;
                if signal_bits -. modulus_bits > !worst_bits then begin
                  worst_bits := signal_bits -. modulus_bits;
                  worst_node := id;
                  worst_modulus := q0 + (l * q)
                end
              end
            end;
            (* The abstraction must dominate the concrete estimate. *)
            let c = reference.Noise_check.per_node.(id) in
            if
              v.mag +. 1e-12 < c.Noise_check.magnitude
              || v.noise +. 1e-12 < c.Noise_check.noise *. (1.0 -. 1e-9)
            then
              err ~node:id "absint-diverged"
                "abstract bound (mag %g, noise %g) below the concrete estimate (mag %g, noise %g)"
                v.mag v.noise c.Noise_check.magnitude c.Noise_check.noise;
            if is_output.(id) && v.noise >= v.mag && v.mag > 0.0 then
              ds :=
                Diag.warning ~node:id "absint-precision"
                  "output noise bound %g reaches the signal bound %g" v.noise v.mag
                :: !ds
      end)
    (Dfg.live_nodes g);
  if !unproven > 0 then
    ds :=
      Diag.warning ~node:!worst_node "absint-noise-overflow"
        "cannot prove modulus fit for %d ciphertext%s under the worst-case noise bound \
         (worst: node %d needs %.1f bits over its %d-bit modulus, slack %.0f)"
        !unproven
        (if !unproven = 1 then "" else "s")
        !worst_node !worst_bits !worst_modulus encoding_slack_bits
      :: !ds;
  Diag.sort !ds

(* ------------------------------------------------------------------ *)
(* Liveness.                                                           *)
(* ------------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

module Live_domain = struct
  type t = Int_set.t

  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
  let widen = Int_set.union
end

module Live_solver = Dataflow.Make (Live_domain)

type liveness = { live_in : Int_set.t array; live_out : Int_set.t array }

let liveness g =
  let uses (node : Dfg.node) =
    Array.fold_left
      (fun acc a ->
        if Op.produces_ct (Dfg.node g a).Dfg.kind then Int_set.add a acc else acc)
      Int_set.empty node.args
  in
  let r =
    Live_solver.solve ~direction:Dataflow.Backward g
      ~init:(fun _ -> Int_set.empty)
      ~transfer:(fun node ~get:_ after -> Int_set.union (uses node) (Int_set.remove node.id after))
  in
  { live_in = r.Live_solver.output; live_out = r.Live_solver.input }
