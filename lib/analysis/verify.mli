(** The pass verifier: every hard ReSBM invariant composed into one check.

    [run] re-derives, over a whole DFG, the invariants that every pass of
    the pipeline must preserve, and reports violations as {!Diag}
    diagnostics with stable rule ids:

    - ["wellformed"] — {!Fhe_ir.Dfg.validate} structural well-formedness
      (argument ranges, use lists, arities, ct/pt positions, mandatory
      relinearisation, acyclicity);
    - ["topo"] — topological-order consistency: every live node appears
      exactly once in {!Fhe_ir.Dfg.topo_order} and after its arguments;
    - ["scale"] — the strict Table 1 scale/level rules
      ({!Fhe_ir.Scale_check});
    - ["capacity"] — every live ciphertext fits its level's modulus
      capacity ({!Ckks.Evaluator.capacity_ok}), re-checked independently
      of the propagation rules;
    - ["waterline"] — warning when a ciphertext scale drops below the
      waterline [q_w] (EVA's lower bound on usable precision);
    - ["bootstrap-target"] — every bootstrap target is within
      [\[1, l_max\]];
    - ["region-cover"], ["region-monotone"], ["region-mul-anchor"],
      ["region-smo-boundary"] — region invariants (only when [?regions]
      is given, see below).

    Scale-dependent rules only run when the well-formedness pass found no
    errors: strict propagation over a malformed graph is meaningless (and
    out-of-range arguments would fault). *)

type regions = {
  region_of : int array;  (** Region index per original node id. *)
  count : int;  (** Number of regions. *)
}
(** A structural view of {!Resbm.Region.t} (re-declared here so the
    analysis library does not depend on the planner).  Nodes with ids
    beyond [region_of] — e.g. management nodes inserted by a later pass —
    are skipped by the region rules. *)

val run :
  ?regions:regions -> ?scale:bool -> Ckks.Params.t -> Fhe_ir.Dfg.t -> Diag.t list
(** Verify [g], returning all findings sorted most severe first ([[]]
    means every invariant holds).

    [scale] (default [true]) controls the Table 1 legality rules
    (["scale"], ["capacity"], ["waterline"]); pass [false] for
    pre-management graphs, which are legal only after rescales and
    bootstraps have been planned in.  Structural rules and
    ["bootstrap-target"] always run.

    [regions] enables the region invariants of Section 4.1 against a
    {!Resbm.Region.build} partition: every node is covered by exactly the
    region recorded for it, edges never go backwards in region order,
    multiplications only consume operands from strictly earlier regions
    (regions are one multiplicative level), and — the RMR property — the
    pre-plan graph carries no SMO or bootstrap nodes at all, since scale
    management operations are introduced only by the plan, as one shared
    group per region boundary.

    Every rule is timed as an [Obs] span named [verify.<rule>] on the
    ambient profile. *)
