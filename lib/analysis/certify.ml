(* Independent re-checking of Maxflow's min-cut certificates.

   The checker trusts nothing about Dinic's implementation: given the
   exported flow assignment and the claimed cut, it re-derives feasibility,
   conservation, the flow value, cut saturation and the cut capacity from
   the arc list alone.  If every check passes, max-flow/min-cut LP duality
   proves the cut minimal: the flow value lower-bounds every cut, and a
   saturated cut of equal capacity meets that bound. *)

module Mf = Graphlib.Maxflow

(* Capacities are sums of per-edge costs divided by degrees, so the checks
   need a tolerance proportional to the magnitudes involved. *)
let tolerance value = 1e-6 *. (1.0 +. abs_float value)

let where ~pass ~region =
  match region with
  | Some r -> Printf.sprintf "%s region %d" pass r
  | None -> pass

let check ?(pass = "maxflow") ?region ?value (c : Mf.certificate) =
  let ctx = where ~pass ~region in
  let diags = ref [] in
  let err rule msg = diags := Diag.error rule "%s: %s" ctx msg :: !diags in
  let n = c.Mf.cert_nodes in
  let s = c.Mf.cert_source and t = c.Mf.cert_sink in
  let tol = tolerance c.Mf.cert_value in
  if not (Float.is_finite c.Mf.cert_value) then
    err "cert-value" (Printf.sprintf "claimed cut value %g is not finite" c.Mf.cert_value);
  if s < 0 || s >= n || t < 0 || t >= n || s = t then
    err "cert-shape" (Printf.sprintf "source %d / sink %d invalid for %d nodes" s t n)
  else if Array.length c.Mf.cert_source_side <> n then
    err "cert-shape"
      (Printf.sprintf "source-side array has %d entries for %d nodes"
         (Array.length c.Mf.cert_source_side) n)
  else begin
    let side = c.Mf.cert_source_side in
    if not side.(s) then err "cert-source-side" "source is not on the source side";
    if side.(t) then err "cert-source-side" "sink is on the source side";
    let excess = Array.make n 0.0 in
    let cut_cap = ref 0.0 in
    Array.iter
      (fun (a : Mf.flow_arc) ->
        let u = a.Mf.fa_src and v = a.Mf.fa_dst in
        if u < 0 || u >= n || v < 0 || v >= n then
          err "cert-shape" (Printf.sprintf "arc %d->%d out of node range" u v)
        else if not (Float.is_finite a.Mf.fa_flow) then
          err "cert-capacity" (Printf.sprintf "arc %d->%d carries non-finite flow" u v)
        else begin
          if a.Mf.fa_flow < -.tol then
            err "cert-capacity"
              (Printf.sprintf "arc %d->%d carries negative flow %g" u v a.Mf.fa_flow);
          if a.Mf.fa_flow > a.Mf.fa_cap +. tol then
            err "cert-capacity"
              (Printf.sprintf "arc %d->%d overflows capacity: flow %g > cap %g" u v
                 a.Mf.fa_flow a.Mf.fa_cap);
          excess.(u) <- excess.(u) -. a.Mf.fa_flow;
          excess.(v) <- excess.(v) +. a.Mf.fa_flow;
          if side.(u) && not side.(v) then
            if a.Mf.fa_cap = infinity then
              err "cert-closure"
                (Printf.sprintf
                   "infinite arc %d->%d crosses the cut: the source side is not closed"
                   u v)
            else begin
              cut_cap := !cut_cap +. a.Mf.fa_cap;
              if a.Mf.fa_flow < a.Mf.fa_cap -. tol then
                err "cert-unsaturated"
                  (Printf.sprintf "cut arc %d->%d not saturated: flow %g < cap %g" u v
                     a.Mf.fa_flow a.Mf.fa_cap)
            end
          else if side.(v) && not side.(u) && a.Mf.fa_flow > tol then
            err "cert-backflow"
              (Printf.sprintf "arc %d->%d carries %g back across the cut" u v
                 a.Mf.fa_flow)
        end)
      c.Mf.cert_arcs;
    for v = 0 to n - 1 do
      if v <> s && v <> t && abs_float excess.(v) > tol then
        err "cert-conservation"
          (Printf.sprintf "node %d violates flow conservation by %g" v excess.(v))
    done;
    let flow_value = -.excess.(s) in
    if Float.is_finite c.Mf.cert_value then begin
      if abs_float (flow_value -. c.Mf.cert_value) > tol then
        err "cert-flow-value"
          (Printf.sprintf "flow value %g does not match claimed value %g" flow_value
             c.Mf.cert_value);
      if abs_float (!cut_cap -. c.Mf.cert_value) > tol then
        err "cert-duality"
          (Printf.sprintf "cut capacity %g does not match flow value %g (duality gap)"
             !cut_cap c.Mf.cert_value)
    end;
    match value with
    | Some v when abs_float (v -. c.Mf.cert_value) > tol ->
        err "cert-cut-value"
          (Printf.sprintf "placement cut value %g disagrees with certificate value %g" v
             c.Mf.cert_value)
    | _ -> ()
  end;
  Obs.incr "certify.certificates";
  let diags = Diag.sort (List.rev !diags) in
  if Diag.has_errors diags then Obs.incr "certify.refuted";
  diags

let ok diags = not (Diag.has_errors diags)
