open Fhe_ir

type regions = { region_of : int array; count : int }

let span name f = Obs.span ("verify." ^ name) f

let wellformed g =
  span "wellformed" @@ fun () ->
  match Dfg.validate g with
  | Ok () -> []
  | Error msgs -> List.map (fun m -> Diag.error "wellformed" "%s" m) msgs

let topo g =
  span "topo" @@ fun () ->
  let order = Dfg.topo_order g in
  let pos = Hashtbl.create (Dfg.node_count g) in
  let ds = ref [] in
  List.iteri
    (fun i id ->
      if Hashtbl.mem pos id then
        ds := Diag.error ~node:id "topo" "node appears twice in the topological order" :: !ds;
      if (Dfg.node g id).Dfg.dead then
        ds := Diag.error ~node:id "topo" "dead node in the topological order" :: !ds;
      Hashtbl.replace pos id i)
    order;
  List.iter
    (fun n ->
      match Hashtbl.find_opt pos n.Dfg.id with
      | None ->
          ds :=
            Diag.error ~node:n.Dfg.id "topo" "live node missing from the topological order"
            :: !ds
      | Some p ->
          Array.iter
            (fun a ->
              match Hashtbl.find_opt pos a with
              | Some pa when pa < p -> ()
              | _ ->
                  ds :=
                    Diag.error ~node:n.Dfg.id "topo"
                      "argument %d does not precede its user in the topological order" a
                    :: !ds)
            n.Dfg.args)
    (Dfg.live_nodes g);
  List.rev !ds

let contains s sub =
  let ls = String.length sub and ln = String.length s in
  let rec go i = i + ls <= ln && (String.sub s i ls = sub || go (i + 1)) in
  go 0

(* Strict Table 1 propagation.  Bootstrap-range violations are dropped
   here: they are re-reported under the dedicated "bootstrap-target" rule
   below, which also runs on pre-management graphs. *)
let scale_rules prm g =
  span "scale" @@ fun () ->
  let info, violations = Scale_check.analyse ~strict:true prm g in
  let ds =
    List.filter_map
      (fun v ->
        if contains v.Scale_check.message "bootstrap target" then None
        else Some (Diag.error ~node:v.Scale_check.node "scale" "%s" v.Scale_check.message))
      violations
  in
  (info, ds)

let capacity prm info g =
  span "capacity" @@ fun () ->
  List.filter_map
    (fun n ->
      let i = info.(n.Dfg.id) in
      if
        i.Scale_check.is_ct
        && not
             (Ckks.Evaluator.capacity_ok prm ~scale_bits:i.Scale_check.scale_bits
                ~level:i.Scale_check.level)
      then
        Some
          (Diag.error ~node:n.Dfg.id "capacity"
             "ciphertext scale 2^%d exceeds the modulus capacity at level %d"
             i.Scale_check.scale_bits i.Scale_check.level)
      else None)
    (Dfg.live_nodes g)

let waterline prm info g =
  span "waterline" @@ fun () ->
  let qw = prm.Ckks.Params.waterline_bits in
  List.filter_map
    (fun n ->
      let i = info.(n.Dfg.id) in
      if i.Scale_check.is_ct && i.Scale_check.scale_bits < qw then
        Some
          (Diag.warning ~node:n.Dfg.id "waterline"
             "ciphertext scale 2^%d is below the waterline 2^%d" i.Scale_check.scale_bits qw)
      else None)
    (Dfg.live_nodes g)

let bootstrap_target prm g =
  span "bootstrap-target" @@ fun () ->
  List.filter_map
    (fun n ->
      match n.Dfg.kind with
      | Op.Bootstrap t when t < 1 || t > prm.Ckks.Params.l_max ->
          Some
            (Diag.error ~node:n.Dfg.id "bootstrap-target"
               "bootstrap target level %d outside [1, %d]" t prm.Ckks.Params.l_max)
      | _ -> None)
    (Dfg.live_nodes g)

let region_rules { region_of; count } g =
  span "regions" @@ fun () ->
  let known id = id >= 0 && id < Array.length region_of in
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter
    (fun n ->
      let id = n.Dfg.id in
      if known id then begin
        let r = region_of.(id) in
        if r < 0 || r >= count then
          add
            (Diag.error ~node:id "region-cover"
               "region index %d outside the %d-region sequence" r count);
        (match n.Dfg.kind with
        | k when Op.is_smo k ->
            add
              (Diag.error ~node:id "region-smo-boundary"
                 "%s present before planning: SMOs are introduced only by the plan, once \
                  per region boundary (RMR)"
                 (Op.name k))
        | Op.Bootstrap _ ->
            add
              (Diag.error ~node:id "region-smo-boundary"
                 "bootstrap present before planning: bootstraps are introduced only by the \
                  plan at region boundaries")
        | _ -> ());
        Array.iter
          (fun a ->
            if known a then begin
              if region_of.(a) > r then
                add
                  (Diag.error ~node:id "region-monotone"
                     "argument %d lives in region %d, after its user's region %d" a
                     region_of.(a) r);
              if Op.is_mul n.Dfg.kind && region_of.(a) >= r then
                add
                  (Diag.error ~node:id "region-mul-anchor"
                     "multiplication consumes operand %d from its own region %d \
                      (multiplications open a region: operands must come from earlier \
                      regions)"
                     a r)
            end)
          n.Dfg.args
      end)
    (Dfg.live_nodes g);
  List.rev !ds

let run ?regions ?(scale = true) prm g =
  let wf = wellformed g in
  let structural_ok = not (Diag.has_errors wf) in
  let topo_ds = if structural_ok then topo g else [] in
  let region_ds =
    match regions with Some r when structural_ok -> region_rules r g | _ -> []
  in
  let target_ds = if structural_ok then bootstrap_target prm g else [] in
  let scale_ds =
    if scale && structural_ok then begin
      let info, ds = scale_rules prm g in
      ds @ capacity prm info g @ waterline prm info g
    end
    else []
  in
  Diag.sort (wf @ topo_ds @ region_ds @ target_ds @ scale_ds)
