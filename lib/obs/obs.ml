(* Lightweight observability for the compile pipeline: wall-clock spans,
   monotonic counters, float series, and dependency-free JSON.  A profile
   is installed as the ambient collector for the dynamic extent of one
   compile; instrumentation sites record through the conveniences at the
   bottom, which are no-ops when no profile is installed. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* Shortest decimal representation that parses back to the same float;
     non-finite values have no JSON spelling and degrade to null. *)
  let float_repr f =
    if Float.is_nan f || Float.abs f = infinity then "null"
    else begin
      let repr = ref (Printf.sprintf "%.17g" f) in
      (try
         for p = 1 to 16 do
           let c = Printf.sprintf "%.*g" p f in
           if float_of_string c = f then begin
             repr := c;
             raise Exit
           end
         done
       with Exit -> ());
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') !repr then !repr
      else !repr ^ ".0"
    end

  let rec to_buf buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            to_buf buf v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            to_buf buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    to_buf buf v;
    Buffer.contents buf

  let pp ppf v = Format.pp_print_string ppf (to_string v)

  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail "expected %c at offset %d" c !pos
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail "bad literal at offset %d" !pos
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* encode the BMP code point as UTF-8 *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail "bad escape \\%c" c);
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_frac = ref false in
      if peek () = Some '-' then advance ();
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' -> true
        | '.' | 'e' | 'E' | '+' | '-' ->
            is_frac := true;
            true
        | _ -> false
      do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if !is_frac then Float (float_of_string text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> Float (float_of_string text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or } at offset %d" !pos
            in
            members ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ] at offset %d" !pos
            in
            elements ();
            List (List.rev !items)
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail "unexpected %c at offset %d" c !pos
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
        else Ok v
    | exception Parse m -> Error m
    | exception Failure m -> Error m

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Timer = struct
  type t = float

  let start () = Unix.gettimeofday ()
  let elapsed_ms t = 1000.0 *. (Unix.gettimeofday () -. t)
end

module Profile = struct
  type span = { name : string; depth : int; start_ms : float; dur_ms : float }

  type t = {
    epoch : float;
    mutable finished : span list;  (* reverse completion order *)
    mutable stack : (string * float) list;  (* open spans *)
    counters : (string, int) Hashtbl.t;
    series : (string, float list ref) Hashtbl.t;  (* reverse order *)
  }

  let create () =
    {
      epoch = Unix.gettimeofday ();
      finished = [];
      stack = [];
      counters = Hashtbl.create 16;
      series = Hashtbl.create 16;
    }

  let now_ms t = 1000.0 *. (Unix.gettimeofday () -. t.epoch)

  let incr ?(by = 1) t name =
    Hashtbl.replace t.counters name
      (by + Option.value (Hashtbl.find_opt t.counters name) ~default:0)

  let counter t name = Option.value (Hashtbl.find_opt t.counters name) ~default:0

  let observe t name v =
    match Hashtbl.find_opt t.series name with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add t.series name (ref [ v ])

  let series t name =
    match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

  let span t name f =
    let start = now_ms t in
    let depth = List.length t.stack in
    t.stack <- (name, start) :: t.stack;
    Fun.protect f ~finally:(fun () ->
        (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
        t.finished <-
          { name; depth; start_ms = start; dur_ms = now_ms t -. start } :: t.finished)

  let spans t =
    List.sort
      (fun a b -> compare (a.start_ms, a.depth) (b.start_ms, b.depth))
      (List.rev t.finished)

  let counters t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let all_series t =
    Hashtbl.fold (fun k r acc -> (k, List.rev !r) :: acc) t.series []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let to_json t =
    let span_json s =
      Json.Obj
        [
          ("name", Json.String s.name);
          ("depth", Json.Int s.depth);
          ("start_ms", Json.Float s.start_ms);
          ("dur_ms", Json.Float s.dur_ms);
        ]
    in
    let series_json (name, values) =
      let count = List.length values in
      let sum = List.fold_left ( +. ) 0.0 values in
      ( name,
        Json.Obj
          [
            ("count", Json.Int count);
            ("sum", Json.Float sum);
            ("min", Json.Float (List.fold_left Float.min infinity values));
            ("max", Json.Float (List.fold_left Float.max neg_infinity values));
            ("values", Json.List (List.map (fun v -> Json.Float v) values));
          ] )
    in
    Json.Obj
      [
        ("spans", Json.List (List.map span_json (spans t)));
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
        ("series", Json.Obj (List.map series_json (all_series t)));
      ]

  let pp ppf t =
    let top = List.filter (fun s -> s.depth = 0) (spans t) in
    Format.fprintf ppf "@[<v>phases:";
    List.iter (fun s -> Format.fprintf ppf "@ %-14s %10.3f ms" s.name s.dur_ms) top;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "@ %-32s %10d" k v)
      (counters t);
    Format.fprintf ppf "@]"
end

module Trace = struct
  (* Runtime execution tracing: a ring-buffered flight recorder of per-op
     CKKS events.  The simulated evaluator records the scheme-state facts
     (level, scale, size, noise before/after); the DFG interpreter supplies
     attribution (node id, region, loop frequency, Table 2 cost) through a
     mutable context set before each node executes.  Timestamps live on a
     *simulated* timeline: the clock advances by each op's freq-weighted
     Table 2 cost, so the exported trace shows where the modelled latency
     goes, not where the host CPU went. *)

  type op_event = {
    seq : int;
    op : string;
    node : int;
    region : int;
    freq : int;
    level : int;
    scale_bits : int;
    size : int;
    noise_before : float;
    noise_after : float;
    start_ms : float;
    dur_ms : float;
  }

  type instant = {
    iseq : int;
    iname : string;
    inode : int;
    iregion : int;
    its_ms : float;
    detail : (string * Json.t) list;
  }

  type event = Op of op_event | Instant of instant

  type ctx = { node : int; region : int; freq : int; cost_ms : float }

  type t = {
    capacity : int;
    buf : event option array;
    mutable next : int;  (* total events recorded, including overwritten *)
    mutable clock : float;  (* simulated timeline, ms *)
    mutable ctx : ctx option;
  }

  let create ?(capacity = 65536) () =
    if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
    { capacity; buf = Array.make capacity None; next = 0; clock = 0.0; ctx = None }

  let recorded t = t.next
  let dropped t = max 0 (t.next - t.capacity)
  let clock_ms t = t.clock
  let set_ctx t ctx = t.ctx <- ctx

  let push t e =
    t.buf.(t.next mod t.capacity) <- Some e;
    t.next <- t.next + 1

  let record t ~op ?(cost_ms = 0.0) ?(noise_before = 0.0) ~level ~scale_bits ~size
      ~noise () =
    let node, region, freq, cost_ms =
      match t.ctx with
      | Some c -> (c.node, c.region, c.freq, c.cost_ms)
      | None -> (-1, -1, 1, cost_ms)
    in
    let start_ms = t.clock in
    t.clock <- t.clock +. cost_ms;
    push t
      (Op
         {
           seq = t.next;
           op;
           node;
           region;
           freq;
           level;
           scale_bits;
           size;
           noise_before;
           noise_after = noise;
           start_ms;
           dur_ms = cost_ms;
         })

  let instant t ~name ?node ?(detail = []) () =
    let inode, iregion =
      match (node, t.ctx) with
      | Some n, Some c -> (n, c.region)
      | Some n, None -> (n, -1)
      | None, Some c -> (c.node, c.region)
      | None, None -> (-1, -1)
    in
    push t
      (Instant { iseq = t.next; iname = name; inode; iregion; its_ms = t.clock; detail })

  let events t =
    let stored = min t.next t.capacity in
    let first = t.next - stored in
    List.filter_map
      (fun i -> t.buf.((first + i) mod t.capacity))
      (List.init stored (fun i -> i))

  let op_events t =
    List.filter_map (function Op e -> Some e | Instant _ -> None) (events t)

  (* Noise is an absolute per-slot RMS error estimate; headroom is how many
     bits of precision remain before that error reaches magnitude 1.  Zero
     (never produced by the evaluator — every op injects fresh noise) and
     sub-2^-200 errors are clamped so the exported counters stay finite. *)
  let headroom_bits err =
    if err <= 0.0 then 200.0 else Float.max 0.0 (Float.min 200.0 (-.Float.log2 err))

  let usec ms = Float.round (ms *. 1000.0)

  (* Chrome trace-event JSON (Perfetto-loadable).  One process holds the
     execution: ops are "X" complete events on per-region threads, noise /
     level / scale are process-wide counter tracks sampled at each op's end,
     and rescale/modswitch/bootstrap/fhe_error markers are instants. *)
  let tid_of_region r = if r < 0 then 1 else r + 2

  let chrome_events ?(pid = 1) ?(name = "resbm execute") t =
    let evs = events t in
    let meta =
      Json.Obj
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int pid);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String name) ]);
        ]
    in
    let regions =
      List.sort_uniq compare
        (List.map (function Op e -> e.region | Instant i -> i.iregion) evs)
    in
    let threads =
      List.concat_map
        (fun r ->
          let tid = tid_of_region r in
          let tname = if r < 0 then "(unattributed)" else Printf.sprintf "region %d" r in
          [
            Json.Obj
              [
                ("name", Json.String "thread_name");
                ("ph", Json.String "M");
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("args", Json.Obj [ ("name", Json.String tname) ]);
              ];
            Json.Obj
              [
                ("name", Json.String "thread_sort_index");
                ("ph", Json.String "M");
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("args", Json.Obj [ ("sort_index", Json.Int tid) ]);
              ];
          ])
        regions
    in
    let body =
      List.concat_map
        (function
          | Op e ->
              let op =
                Json.Obj
                  [
                    ("name", Json.String e.op);
                    ("cat", Json.String "op");
                    ("ph", Json.String "X");
                    ("ts", Json.Float (usec e.start_ms));
                    ("dur", Json.Float (usec e.dur_ms));
                    ("pid", Json.Int pid);
                    ("tid", Json.Int (tid_of_region e.region));
                    ( "args",
                      Json.Obj
                        [
                          ("node", Json.Int e.node);
                          ("region", Json.Int e.region);
                          ("freq", Json.Int e.freq);
                          ("level", Json.Int e.level);
                          ("scale_bits", Json.Int e.scale_bits);
                          ("size", Json.Int e.size);
                          ("noise_before_bits", Json.Float (headroom_bits e.noise_before));
                          ("noise_after_bits", Json.Float (headroom_bits e.noise_after));
                        ] );
                  ]
              in
              let counter cname value =
                Json.Obj
                  [
                    ("name", Json.String cname);
                    ("cat", Json.String "state");
                    ("ph", Json.String "C");
                    ("ts", Json.Float (usec (e.start_ms +. e.dur_ms)));
                    ("pid", Json.Int pid);
                    ("args", Json.Obj [ (cname, value) ]);
                  ]
              in
              [
                op;
                counter "noise_headroom_bits" (Json.Float (headroom_bits e.noise_after));
                counter "level" (Json.Int e.level);
                counter "scale_bits" (Json.Int e.scale_bits);
              ]
          | Instant i ->
              [
                Json.Obj
                  [
                    ("name", Json.String i.iname);
                    ("cat", Json.String "instant");
                    ("ph", Json.String "i");
                    ("ts", Json.Float (usec i.its_ms));
                    ("pid", Json.Int pid);
                    ("tid", Json.Int (tid_of_region i.iregion));
                    ("s", Json.String "t");
                    ("args", Json.Obj (("node", Json.Int i.inode) :: i.detail));
                  ];
              ])
        evs
    in
    (meta :: threads) @ body

  let event_to_json = function
    | Op e ->
        Json.Obj
          [
            ("type", Json.String "op");
            ("seq", Json.Int e.seq);
            ("op", Json.String e.op);
            ("node", Json.Int e.node);
            ("region", Json.Int e.region);
            ("freq", Json.Int e.freq);
            ("level", Json.Int e.level);
            ("scale_bits", Json.Int e.scale_bits);
            ("size", Json.Int e.size);
            ("noise_before", Json.Float e.noise_before);
            ("noise_after", Json.Float e.noise_after);
            ("start_ms", Json.Float e.start_ms);
            ("dur_ms", Json.Float e.dur_ms);
          ]
    | Instant i ->
        Json.Obj
          ([
             ("type", Json.String "instant");
             ("seq", Json.Int i.iseq);
             ("name", Json.String i.iname);
             ("node", Json.Int i.inode);
             ("region", Json.Int i.iregion);
             ("ts_ms", Json.Float i.its_ms);
           ]
          @ match i.detail with [] -> [] | d -> [ ("detail", Json.Obj d) ])

  let to_jsonl t = List.map (fun e -> Json.to_string (event_to_json e)) (events t)
end

(* Profile spans in the same Chrome trace-event dialect, so one Perfetto
   timeline can hold the compile pipeline (one pid) next to the simulated
   execution (another). *)
let profile_chrome_events ?(pid = 0) ?(name = "resbm compile") p =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  meta
  :: List.map
       (fun (s : Profile.span) ->
         Json.Obj
           [
             ("name", Json.String s.name);
             ("cat", Json.String "compile");
             ("ph", Json.String "X");
             ("ts", Json.Float (Trace.usec s.start_ms));
             ("dur", Json.Float (Trace.usec s.dur_ms));
             ("pid", Json.Int pid);
             ("tid", Json.Int 0);
             ("args", Json.Obj [ ("depth", Json.Int s.depth) ]);
           ])
       (Profile.spans p)

let chrome_trace events =
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

let current_profile : Profile.t option ref = ref None
let current () = !current_profile

let with_profile p f =
  let saved = !current_profile in
  current_profile := Some p;
  Fun.protect f ~finally:(fun () -> current_profile := saved)

let incr ?by name =
  match !current_profile with Some p -> Profile.incr ?by p name | None -> ()

let observe name v =
  match !current_profile with Some p -> Profile.observe p name v | None -> ()

let span name f = match !current_profile with Some p -> Profile.span p name f | None -> f ()

let current_trace_ref : Trace.t option ref = ref None
let current_trace () = !current_trace_ref

let with_trace tr f =
  let saved = !current_trace_ref in
  current_trace_ref := Some tr;
  Fun.protect f ~finally:(fun () -> current_trace_ref := saved)

let trace_instant ~name ?node ?detail () =
  match !current_trace_ref with
  | Some tr -> Trace.instant tr ~name ?node ?detail ()
  | None -> ()
