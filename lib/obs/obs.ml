(* Lightweight observability for the compile pipeline: wall-clock spans,
   monotonic counters, float series, and dependency-free JSON.  A profile
   is installed as the ambient collector for the dynamic extent of one
   compile; instrumentation sites record through the conveniences at the
   bottom, which are no-ops when no profile is installed. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* Shortest decimal representation that parses back to the same float;
     non-finite values have no JSON spelling and degrade to null. *)
  let float_repr f =
    if Float.is_nan f || Float.abs f = infinity then "null"
    else begin
      let repr = ref (Printf.sprintf "%.17g" f) in
      (try
         for p = 1 to 16 do
           let c = Printf.sprintf "%.*g" p f in
           if float_of_string c = f then begin
             repr := c;
             raise Exit
           end
         done
       with Exit -> ());
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') !repr then !repr
      else !repr ^ ".0"
    end

  let rec to_buf buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            to_buf buf v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            to_buf buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    to_buf buf v;
    Buffer.contents buf

  let pp ppf v = Format.pp_print_string ppf (to_string v)

  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail "expected %c at offset %d" c !pos
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail "bad literal at offset %d" !pos
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape");
          let e = s.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* encode the BMP code point as UTF-8 *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail "bad escape \\%c" c);
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_frac = ref false in
      if peek () = Some '-' then advance ();
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' -> true
        | '.' | 'e' | 'E' | '+' | '-' ->
            is_frac := true;
            true
        | _ -> false
      do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if !is_frac then Float (float_of_string text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> Float (float_of_string text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let fields = ref [] in
            let rec members () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              fields := (k, v) :: !fields;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or } at offset %d" !pos
            in
            members ();
            Obj (List.rev !fields)
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let items = ref [] in
            let rec elements () =
              let v = parse_value () in
              items := v :: !items;
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ] at offset %d" !pos
            in
            elements ();
            List (List.rev !items)
          end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail "unexpected %c at offset %d" c !pos
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
        else Ok v
    | exception Parse m -> Error m
    | exception Failure m -> Error m

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Timer = struct
  type t = float

  let start () = Unix.gettimeofday ()
  let elapsed_ms t = 1000.0 *. (Unix.gettimeofday () -. t)
end

module Profile = struct
  type span = { name : string; depth : int; start_ms : float; dur_ms : float }

  type t = {
    epoch : float;
    mutable finished : span list;  (* reverse completion order *)
    mutable stack : (string * float) list;  (* open spans *)
    counters : (string, int) Hashtbl.t;
    series : (string, float list ref) Hashtbl.t;  (* reverse order *)
  }

  let create () =
    {
      epoch = Unix.gettimeofday ();
      finished = [];
      stack = [];
      counters = Hashtbl.create 16;
      series = Hashtbl.create 16;
    }

  let now_ms t = 1000.0 *. (Unix.gettimeofday () -. t.epoch)

  let incr ?(by = 1) t name =
    Hashtbl.replace t.counters name
      (by + Option.value (Hashtbl.find_opt t.counters name) ~default:0)

  let counter t name = Option.value (Hashtbl.find_opt t.counters name) ~default:0

  let observe t name v =
    match Hashtbl.find_opt t.series name with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add t.series name (ref [ v ])

  let series t name =
    match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

  let span t name f =
    let start = now_ms t in
    let depth = List.length t.stack in
    t.stack <- (name, start) :: t.stack;
    Fun.protect f ~finally:(fun () ->
        (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
        t.finished <-
          { name; depth; start_ms = start; dur_ms = now_ms t -. start } :: t.finished)

  let spans t =
    List.sort
      (fun a b -> compare (a.start_ms, a.depth) (b.start_ms, b.depth))
      (List.rev t.finished)

  let counters t =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counters [] (* det-ok: sorted *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let all_series t =
    Hashtbl.fold (fun k r acc -> (k, List.rev !r) :: acc) t.series [] (* det-ok: sorted *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let to_json t =
    let span_json s =
      Json.Obj
        [
          ("name", Json.String s.name);
          ("depth", Json.Int s.depth);
          ("start_ms", Json.Float s.start_ms);
          ("dur_ms", Json.Float s.dur_ms);
        ]
    in
    let series_json (name, values) =
      let count = List.length values in
      let sum = List.fold_left ( +. ) 0.0 values in
      ( name,
        Json.Obj
          [
            ("count", Json.Int count);
            ("sum", Json.Float sum);
            ("min", Json.Float (List.fold_left Float.min infinity values));
            ("max", Json.Float (List.fold_left Float.max neg_infinity values));
            ("values", Json.List (List.map (fun v -> Json.Float v) values));
          ] )
    in
    Json.Obj
      [
        ("spans", Json.List (List.map span_json (spans t)));
        ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
        ("series", Json.Obj (List.map series_json (all_series t)));
      ]

  let pp ppf t =
    let top = List.filter (fun s -> s.depth = 0) (spans t) in
    Format.fprintf ppf "@[<v>phases:";
    List.iter (fun s -> Format.fprintf ppf "@ %-14s %10.3f ms" s.name s.dur_ms) top;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "@ %-32s %10d" k v)
      (counters t);
    Format.fprintf ppf "@]"

  (* Fold a worker domain's profile into [into]: spans are re-anchored to
     [into]'s epoch, counters and series merge by name.  Call after the
     worker has joined — neither profile may be concurrently mutated. *)
  let merge ~into src =
    let offset = 1000.0 *. (src.epoch -. into.epoch) in
    let adjusted =
      List.rev_map (fun s -> { s with start_ms = s.start_ms +. offset }) src.finished
    in
    into.finished <- List.rev_append adjusted into.finished;
    List.iter (fun (k, v) -> incr ~by:v into k) (counters src);
    List.iter (fun (k, vs) -> List.iter (observe into k) vs) (all_series src)
end

module Trace = struct
  (* Runtime execution tracing: a ring-buffered flight recorder of per-op
     CKKS events.  The simulated evaluator records the scheme-state facts
     (level, scale, size, noise before/after); the DFG interpreter supplies
     attribution (node id, region, loop frequency, Table 2 cost) through a
     mutable context set before each node executes.  Timestamps live on a
     *simulated* timeline: the clock advances by each op's freq-weighted
     Table 2 cost, so the exported trace shows where the modelled latency
     goes, not where the host CPU went. *)

  type op_event = {
    seq : int;
    op : string;
    node : int;
    region : int;
    freq : int;
    level : int;
    scale_bits : int;
    size : int;
    noise_before : float;
    noise_after : float;
    start_ms : float;
    dur_ms : float;
  }

  type instant = {
    iseq : int;
    iname : string;
    inode : int;
    iregion : int;
    its_ms : float;
    detail : (string * Json.t) list;
  }

  type event = Op of op_event | Instant of instant

  type ctx = { node : int; region : int; freq : int; cost_ms : float }

  type t = {
    capacity : int;
    buf : event option array;
    mutable next : int;  (* total events recorded, including overwritten *)
    mutable clock : float;  (* simulated timeline, ms *)
    mutable ctx : ctx option;
  }

  let create ?(capacity = 65536) () =
    if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
    { capacity; buf = Array.make capacity None; next = 0; clock = 0.0; ctx = None }

  let recorded t = t.next
  let dropped t = max 0 (t.next - t.capacity)
  let clock_ms t = t.clock
  let advance_clock t ms = t.clock <- t.clock +. ms
  let set_ctx t ctx = t.ctx <- ctx

  let push t e =
    t.buf.(t.next mod t.capacity) <- Some e;
    t.next <- t.next + 1

  let record t ~op ?(cost_ms = 0.0) ?(noise_before = 0.0) ~level ~scale_bits ~size
      ~noise () =
    let node, region, freq, cost_ms =
      match t.ctx with
      | Some c -> (c.node, c.region, c.freq, c.cost_ms)
      | None -> (-1, -1, 1, cost_ms)
    in
    let start_ms = t.clock in
    t.clock <- t.clock +. cost_ms;
    push t
      (Op
         {
           seq = t.next;
           op;
           node;
           region;
           freq;
           level;
           scale_bits;
           size;
           noise_before;
           noise_after = noise;
           start_ms;
           dur_ms = cost_ms;
         })

  let instant t ~name ?node ?(detail = []) () =
    let inode, iregion =
      match (node, t.ctx) with
      | Some n, Some c -> (n, c.region)
      | Some n, None -> (n, -1)
      | None, Some c -> (c.node, c.region)
      | None, None -> (-1, -1)
    in
    push t
      (Instant { iseq = t.next; iname = name; inode; iregion; its_ms = t.clock; detail })

  let events t =
    let stored = min t.next t.capacity in
    let first = t.next - stored in
    List.filter_map
      (fun i -> t.buf.((first + i) mod t.capacity))
      (List.init stored (fun i -> i))

  let op_events t =
    List.filter_map (function Op e -> Some e | Instant _ -> None) (events t)

  (* Noise is an absolute per-slot RMS error estimate; headroom is how many
     bits of precision remain before that error reaches magnitude 1.  Zero
     (never produced by the evaluator — every op injects fresh noise) and
     sub-2^-200 errors are clamped so the exported counters stay finite. *)
  let headroom_bits err =
    if err <= 0.0 then 200.0 else Float.max 0.0 (Float.min 200.0 (-.Float.log2 err))

  let usec ms = Float.round (ms *. 1000.0)

  (* Chrome trace-event JSON (Perfetto-loadable).  One process holds the
     execution: ops are "X" complete events on per-region threads, noise /
     level / scale are process-wide counter tracks sampled at each op's end,
     and rescale/modswitch/bootstrap/fhe_error markers are instants. *)
  let tid_of_region r = if r < 0 then 1 else r + 2

  let chrome_events ?(pid = 1) ?(name = "resbm execute") t =
    let evs = events t in
    let meta =
      Json.Obj
        [
          ("name", Json.String "process_name");
          ("ph", Json.String "M");
          ("pid", Json.Int pid);
          ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String name) ]);
        ]
    in
    let regions =
      List.sort_uniq compare
        (List.map (function Op e -> e.region | Instant i -> i.iregion) evs)
    in
    let threads =
      List.concat_map
        (fun r ->
          let tid = tid_of_region r in
          let tname = if r < 0 then "(unattributed)" else Printf.sprintf "region %d" r in
          [
            Json.Obj
              [
                ("name", Json.String "thread_name");
                ("ph", Json.String "M");
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("args", Json.Obj [ ("name", Json.String tname) ]);
              ];
            Json.Obj
              [
                ("name", Json.String "thread_sort_index");
                ("ph", Json.String "M");
                ("pid", Json.Int pid);
                ("tid", Json.Int tid);
                ("args", Json.Obj [ ("sort_index", Json.Int tid) ]);
              ];
          ])
        regions
    in
    let body =
      List.concat_map
        (function
          | Op e ->
              let op =
                Json.Obj
                  [
                    ("name", Json.String e.op);
                    ("cat", Json.String "op");
                    ("ph", Json.String "X");
                    ("ts", Json.Float (usec e.start_ms));
                    ("dur", Json.Float (usec e.dur_ms));
                    ("pid", Json.Int pid);
                    ("tid", Json.Int (tid_of_region e.region));
                    ( "args",
                      Json.Obj
                        [
                          ("node", Json.Int e.node);
                          ("region", Json.Int e.region);
                          ("freq", Json.Int e.freq);
                          ("level", Json.Int e.level);
                          ("scale_bits", Json.Int e.scale_bits);
                          ("size", Json.Int e.size);
                          ("noise_before_bits", Json.Float (headroom_bits e.noise_before));
                          ("noise_after_bits", Json.Float (headroom_bits e.noise_after));
                        ] );
                  ]
              in
              let counter cname value =
                Json.Obj
                  [
                    ("name", Json.String cname);
                    ("cat", Json.String "state");
                    ("ph", Json.String "C");
                    ("ts", Json.Float (usec (e.start_ms +. e.dur_ms)));
                    ("pid", Json.Int pid);
                    ("args", Json.Obj [ (cname, value) ]);
                  ]
              in
              [
                op;
                counter "noise_headroom_bits" (Json.Float (headroom_bits e.noise_after));
                counter "level" (Json.Int e.level);
                counter "scale_bits" (Json.Int e.scale_bits);
              ]
          | Instant i ->
              [
                Json.Obj
                  [
                    ("name", Json.String i.iname);
                    ("cat", Json.String "instant");
                    ("ph", Json.String "i");
                    ("ts", Json.Float (usec i.its_ms));
                    ("pid", Json.Int pid);
                    ("tid", Json.Int (tid_of_region i.iregion));
                    ("s", Json.String "t");
                    ("args", Json.Obj (("node", Json.Int i.inode) :: i.detail));
                  ];
              ])
        evs
    in
    (meta :: threads) @ body

  let event_to_json = function
    | Op e ->
        Json.Obj
          [
            ("type", Json.String "op");
            ("seq", Json.Int e.seq);
            ("op", Json.String e.op);
            ("node", Json.Int e.node);
            ("region", Json.Int e.region);
            ("freq", Json.Int e.freq);
            ("level", Json.Int e.level);
            ("scale_bits", Json.Int e.scale_bits);
            ("size", Json.Int e.size);
            ("noise_before", Json.Float e.noise_before);
            ("noise_after", Json.Float e.noise_after);
            ("start_ms", Json.Float e.start_ms);
            ("dur_ms", Json.Float e.dur_ms);
          ]
    | Instant i ->
        Json.Obj
          ([
             ("type", Json.String "instant");
             ("seq", Json.Int i.iseq);
             ("name", Json.String i.iname);
             ("node", Json.Int i.inode);
             ("region", Json.Int i.iregion);
             ("ts_ms", Json.Float i.its_ms);
           ]
          @ match i.detail with [] -> [] | d -> [ ("detail", Json.Obj d) ])

  let to_jsonl t = List.map (fun e -> Json.to_string (event_to_json e)) (events t)
end

(* Multi-trial measurement statistics: wall-clock timings are noisy, so a
   single-shot number is useless as a regression baseline.  Everything
   here is deterministic given the input sample and the seed — the
   bootstrap confidence interval uses its own splitmix64 stream, never the
   global Random state — so two runs over the same data produce
   byte-identical summaries. *)
module Stat = struct
  let sorted xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    a

  let median_sorted a =
    let n = Array.length a in
    if n = 0 then nan
    else if n land 1 = 1 then a.(n / 2)
    else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

  let median xs = median_sorted (sorted xs)

  let mean xs =
    match xs with
    | [] -> nan
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

  (* Median absolute deviation around [center] (default: the median).
     Unscaled — this is a tolerance band, not a sigma estimate. *)
  let mad ?center xs =
    match xs with
    | [] -> nan
    | _ ->
        let c = match center with Some c -> c | None -> median xs in
        median (List.map (fun v -> Float.abs (v -. c)) xs)

  (* splitmix64: tiny, seedable, and good enough for bootstrap resampling. *)
  let splitmix_next state =
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let rand_int state ~bound =
    Int64.to_int (Int64.rem (Int64.shift_right_logical (splitmix_next state) 1)
                    (Int64.of_int bound))

  type summary = {
    trials : int;
    warmup : int;
    mean : float;
    median : float;
    mad : float;
    min : float;
    max : float;
    ci95 : float * float;
    values : float list;
  }

  (* Percentile bootstrap of the median: resample with replacement
     [resamples] times, take the 2.5th/97.5th percentiles of the resampled
     medians. *)
  let bootstrap_ci ~seed ~resamples values =
    match values with
    | [] -> (nan, nan)
    | [ v ] -> (v, v)
    | _ ->
        let a = Array.of_list values in
        let n = Array.length a in
        let state = ref (Int64.of_int seed) in
        let medians =
          Array.init resamples (fun _ ->
              median_sorted
                (let r = Array.init n (fun _ -> a.(rand_int state ~bound:n)) in
                 Array.sort compare r;
                 r))
        in
        Array.sort compare medians;
        let pick q =
          let i = int_of_float (Float.round (q *. float_of_int (resamples - 1))) in
          medians.(max 0 (min (resamples - 1) i))
        in
        (pick 0.025, pick 0.975)

  let summarise ?(seed = 0x5EED) ?(resamples = 200) ?(warmup = 0) values =
    let a = sorted values in
    let n = Array.length a in
    {
      trials = n;
      warmup;
      mean = mean values;
      median = median_sorted a;
      mad = mad values;
      min = (if n = 0 then nan else a.(0));
      max = (if n = 0 then nan else a.(n - 1));
      ci95 = bootstrap_ci ~seed ~resamples values;
      values;
    }

  (* [sample ~trials f] runs [f] warmup + trials times and summarises the
     measurements [f] returns (e.g. a compile's self-reported wall time).
     Warmup runs are discarded: they absorb cold caches and allocator
     ramp-up so the retained trials are comparable. *)
  let sample ?(warmup = 1) ?seed ?resamples ~trials f =
    if trials < 1 then invalid_arg "Stat.sample: trials must be >= 1";
    for _ = 1 to warmup do
      ignore (f ())
    done;
    let values = List.init trials (fun _ -> f ()) in
    summarise ?seed ?resamples ~warmup values

  let time ?warmup ?seed ?resamples ~trials f =
    sample ?warmup ?seed ?resamples ~trials (fun () ->
        let t = Timer.start () in
        f ();
        Timer.elapsed_ms t)

  let to_json s =
    let lo, hi = s.ci95 in
    Json.Obj
      [
        ("trials", Json.Int s.trials);
        ("warmup", Json.Int s.warmup);
        ("mean", Json.Float s.mean);
        ("median", Json.Float s.median);
        ("mad", Json.Float s.mad);
        ("min", Json.Float s.min);
        ("max", Json.Float s.max);
        ("ci95", Json.List [ Json.Float lo; Json.Float hi ]);
        ("values", Json.List (List.map (fun v -> Json.Float v) s.values));
      ]

  let number = function
    | Json.Int i -> Some (float_of_int i)
    | Json.Float f -> Some f
    | Json.Null -> Some nan
    | _ -> None

  let of_json j =
    let num field =
      match Option.bind (Json.member field j) number with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "summary field %S missing or not a number" field)
    in
    let int field =
      match Json.member field j with
      | Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "summary field %S missing or not an int" field)
    in
    let ( let* ) = Result.bind in
    let* trials = int "trials" in
    let* warmup = int "warmup" in
    let* mean = num "mean" in
    let* median = num "median" in
    let* mad = num "mad" in
    let* min = num "min" in
    let* max = num "max" in
    let* ci95 =
      match Json.member "ci95" j with
      | Some (Json.List [ a; b ]) -> (
          match (number a, number b) with
          | Some lo, Some hi -> Ok (lo, hi)
          | _ -> Error "ci95 entries not numbers")
      | _ -> Error "summary field \"ci95\" missing or malformed"
    in
    let* values =
      match Json.member "values" j with
      | Some (Json.List vs) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | v :: rest -> (
                match number v with
                | Some f -> go (f :: acc) rest
                | None -> Error "values entry not a number")
          in
          go [] vs
      | _ -> Error "summary field \"values\" missing or malformed"
    in
    Ok { trials; warmup; mean; median; mad; min; max; ci95; values }
end

(* Leveled structured logging: a ring-buffered flight recorder of log
   records, the narrative companion to Trace's op events.  Records carry
   automatic context (compile id, pass, region, node, domain id — filled
   in by the ambient helpers at the bottom of this file) plus free-form
   structured fields, and a simulated-clock stamp when a trace was
   ambient at emission time so the record lands as an instant on the
   execution timeline.  The sink is mutex-protected: parallel-planner
   workers share their parent's sink the same way they share the metrics
   registry. *)
module Log = struct
  type level = Debug | Info | Warn | Error

  let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
  let level_name = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let level_of_name = function
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  type record = {
    lseq : int;
    level : level;
    event : string;
    msg : string;
    ts_ms : float;  (* host wall clock, relative to sink creation *)
    sim_ms : float option;  (* simulated trace clock at emission, if traced *)
    compile_id : int;  (* -1 = outside any compile *)
    pass : string;  (* "" = no pass context *)
    region : int;  (* -1 = unattributed *)
    node : int;  (* -1 = unattributed *)
    domain : int;  (* emitting domain id *)
    fields : (string * Json.t) list;
  }

  type t = {
    capacity : int;
    min_level : level;
    epoch : float;
    buf : record option array;
    mutable next : int;  (* total records kept, including overwritten *)
    mutable nfiltered : int;  (* records rejected below min_level *)
    lock : Mutex.t;
  }

  let create ?(capacity = 8192) ?(min_level = Debug) () =
    if capacity < 1 then invalid_arg "Log.create: capacity must be >= 1";
    {
      capacity;
      min_level;
      epoch = Unix.gettimeofday ();
      buf = Array.make capacity None;
      next = 0;
      nfiltered = 0;
      lock = Mutex.create ();
    }

  let record t ~level ~event ?(msg = "") ?sim_ms ?(compile_id = -1) ?(pass = "")
      ?(region = -1) ?(node = -1) ?(fields = []) () =
    if level_rank level < level_rank t.min_level then
      Mutex.protect t.lock (fun () -> t.nfiltered <- t.nfiltered + 1)
    else begin
      let ts_ms = 1000.0 *. (Unix.gettimeofday () -. t.epoch) in
      let domain = (Domain.self () :> int) in
      Mutex.protect t.lock (fun () ->
          let r =
            {
              lseq = t.next;
              level;
              event;
              msg;
              ts_ms;
              sim_ms;
              compile_id;
              pass;
              region;
              node;
              domain;
              fields;
            }
          in
          t.buf.(t.next mod t.capacity) <- Some r;
          t.next <- t.next + 1)
    end

  let recorded t = Mutex.protect t.lock (fun () -> t.next)
  let dropped t = Mutex.protect t.lock (fun () -> max 0 (t.next - t.capacity))
  let filtered t = Mutex.protect t.lock (fun () -> t.nfiltered)

  let records t =
    Mutex.protect t.lock (fun () ->
        let stored = min t.next t.capacity in
        let first = t.next - stored in
        List.filter_map
          (fun i -> t.buf.((first + i) mod t.capacity))
          (List.init stored (fun i -> i)))

  let record_to_json r =
    Json.Obj
      ([
         ("seq", Json.Int r.lseq);
         ("level", Json.String (level_name r.level));
         ("event", Json.String r.event);
         ("msg", Json.String r.msg);
         ("ts_ms", Json.Float r.ts_ms);
       ]
      @ (match r.sim_ms with None -> [] | Some s -> [ ("sim_ms", Json.Float s) ])
      @ [
          ("compile_id", Json.Int r.compile_id);
          ("pass", Json.String r.pass);
          ("region", Json.Int r.region);
          ("node", Json.Int r.node);
          ("domain", Json.Int r.domain);
        ]
      @ match r.fields with [] -> [] | fs -> [ ("fields", Json.Obj fs) ])

  let record_of_json j =
    let ( let* ) = Result.bind in
    let str field =
      match Json.member field j with
      | Some (Json.String s) -> Ok s
      | _ -> Error (Printf.sprintf "log record field %S missing or not a string" field)
    in
    let int field =
      match Json.member field j with
      | Some (Json.Int i) -> Ok i
      | _ -> Error (Printf.sprintf "log record field %S missing or not an int" field)
    in
    let num field =
      match Json.member field j with
      | Some (Json.Float f) -> Ok f
      | Some (Json.Int i) -> Ok (float_of_int i)
      | _ -> Error (Printf.sprintf "log record field %S missing or not a number" field)
    in
    let* lseq = int "seq" in
    let* level =
      let* name = str "level" in
      match level_of_name name with
      | Some l -> Ok l
      | None -> Error (Printf.sprintf "unknown log level %S" name)
    in
    let* event = str "event" in
    let* msg = str "msg" in
    let* ts_ms = num "ts_ms" in
    let* sim_ms =
      match Json.member "sim_ms" j with
      | None -> Ok None
      | Some (Json.Float f) -> Ok (Some f)
      | Some (Json.Int i) -> Ok (Some (float_of_int i))
      | Some _ -> Error "log record field \"sim_ms\" not a number"
    in
    let* compile_id = int "compile_id" in
    let* pass = str "pass" in
    let* region = int "region" in
    let* node = int "node" in
    let* domain = int "domain" in
    let* fields =
      match Json.member "fields" j with
      | None -> Ok []
      | Some (Json.Obj fs) -> Ok fs
      | Some _ -> Error "log record field \"fields\" not an object"
    in
    Ok { lseq; level; event; msg; ts_ms; sim_ms; compile_id; pass; region; node; domain; fields }

  let to_jsonl t = List.map (fun r -> Json.to_string (record_to_json r)) (records t)

  let of_jsonl lines =
    let ( let* ) = Result.bind in
    let* rev =
      List.fold_left
        (fun acc line ->
          let* acc = acc in
          if String.trim line = "" then Ok acc
          else
            let* j = Json.of_string line in
            let* r = record_of_json j in
            Ok (r :: acc))
        (Ok []) lines
    in
    Ok (List.rev rev)

  (* Log records as Perfetto instants.  A record stamped with a simulated
     clock lands on the execution process at that simulated time, on the
     thread of the region it is attributed to; a compile-side record
     (no [sim_ms]) lands on the compile process at its host timestamp, so
     both correlate with the spans already on those timelines. *)
  let chrome_events ?(compile_pid = 0) ?(exec_pid = 1) rs =
    List.map
      (fun r ->
        let pid, ts, tid =
          match r.sim_ms with
          | Some s -> (exec_pid, Trace.usec s, Trace.tid_of_region r.region)
          | None -> (compile_pid, Trace.usec r.ts_ms, 0)
        in
        let ctx =
          (if r.compile_id >= 0 then [ ("compile_id", Json.Int r.compile_id) ] else [])
          @ (if r.pass <> "" then [ ("pass", Json.String r.pass) ] else [])
          @ (if r.region >= 0 then [ ("region", Json.Int r.region) ] else [])
          @ if r.node >= 0 then [ ("node", Json.Int r.node) ] else []
        in
        Json.Obj
          [
            ("name", Json.String r.event);
            ("cat", Json.String ("log." ^ level_name r.level));
            ("ph", Json.String "i");
            ("ts", Json.Float ts);
            ("pid", Json.Int pid);
            ("tid", Json.Int tid);
            ("s", Json.String "t");
            ( "args",
              Json.Obj
                ((("level", Json.String (level_name r.level))
                  :: (if r.msg <> "" then [ ("msg", Json.String r.msg) ] else []))
                @ [ ("seq", Json.Int r.lseq); ("domain", Json.Int r.domain) ]
                @ ctx @ r.fields) );
          ])
      rs
end

(* Runtime telemetry: GC pressure deltas around a computation, and
   per-worker accounting for the parallel planner's domain pool — tasks
   executed, busy vs idle wall time, queue wait — exported as one
   Perfetto track per worker domain so pool utilization is visible next
   to the compile and execution timelines. *)
module Rt = struct
  type gc_delta = {
    minor_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
    top_heap_words : int;
  }

  let gc_sample f =
    let a = Gc.quick_stat () in
    let r = f () in
    let b = Gc.quick_stat () in
    ( r,
      {
        minor_words = b.Gc.minor_words -. a.Gc.minor_words;
        major_words = b.Gc.major_words -. a.Gc.major_words;
        minor_collections = b.Gc.minor_collections - a.Gc.minor_collections;
        major_collections = b.Gc.major_collections - a.Gc.major_collections;
        top_heap_words = b.Gc.top_heap_words;
      } )

  type task_span = { t_index : int; t_start_ms : float; t_dur_ms : float }

  type worker = {
    w_id : int;  (* slot in the pool, 0-based *)
    w_domain : int;  (* OCaml domain id the worker ran on *)
    w_tasks : int;
    w_busy_ms : float;
    w_idle_ms : float;  (* pool wall time not spent inside tasks *)
    w_queue_wait_ms : float;  (* spawn-to-first-task latency *)
    w_spans : task_span list;  (* per-task spans, start relative to pool start *)
  }

  type pool = {
    p_seq : int;
    p_label : string;
    p_jobs : int;
    p_tasks : int;
    p_start_ms : float;  (* relative to collector creation *)
    p_wall_ms : float;
    p_workers : worker list;
  }

  type t = {
    epoch : float;
    lock : Mutex.t;
    mutable seq : int;
    mutable rpools : pool list;  (* reverse completion order *)
  }

  let create () =
    { epoch = Unix.gettimeofday (); lock = Mutex.create (); seq = 0; rpools = [] }

  let now_ms t = 1000.0 *. (Unix.gettimeofday () -. t.epoch)

  let record_pool t ~label ~jobs ~tasks ~wall_ms workers =
    Mutex.protect t.lock (fun () ->
        let p =
          {
            p_seq = t.seq;
            p_label = label;
            p_jobs = jobs;
            p_tasks = tasks;
            p_start_ms = Float.max 0.0 (now_ms t -. wall_ms);
            p_wall_ms = wall_ms;
            p_workers = workers;
          }
        in
        t.seq <- t.seq + 1;
        t.rpools <- p :: t.rpools)

  let pools t = Mutex.protect t.lock (fun () -> List.rev t.rpools)

  let worker_to_json w =
    Json.Obj
      [
        ("id", Json.Int w.w_id);
        ("domain", Json.Int w.w_domain);
        ("tasks", Json.Int w.w_tasks);
        ("busy_ms", Json.Float w.w_busy_ms);
        ("idle_ms", Json.Float w.w_idle_ms);
        ("queue_wait_ms", Json.Float w.w_queue_wait_ms);
      ]

  let to_json t =
    Json.List
      (List.map
         (fun p ->
           Json.Obj
             [
               ("seq", Json.Int p.p_seq);
               ("label", Json.String p.p_label);
               ("jobs", Json.Int p.p_jobs);
               ("tasks", Json.Int p.p_tasks);
               ("start_ms", Json.Float p.p_start_ms);
               ("wall_ms", Json.Float p.p_wall_ms);
               ("workers", Json.List (List.map worker_to_json p.p_workers));
             ])
         (pools t))

  (* One Perfetto thread per (pool, worker): task spans as "X" events so
     gaps — idle workers, a straggler task — are visually obvious. *)
  let chrome_events ?(pid = 2) ?(name = "resbm planner pool") t =
    match pools t with
    | [] -> []
    | ps ->
        let meta =
          Json.Obj
            [
              ("name", Json.String "process_name");
              ("ph", Json.String "M");
              ("pid", Json.Int pid);
              ("tid", Json.Int 0);
              ("args", Json.Obj [ ("name", Json.String name) ]);
            ]
        in
        let per_pool p =
          let tid w = (p.p_seq * 64) + w.w_id + 1 in
          List.concat_map
            (fun w ->
              let tname =
                Printf.sprintf "%s#%d w%d (domain %d)" p.p_label p.p_seq w.w_id
                  w.w_domain
              in
              Json.Obj
                [
                  ("name", Json.String "thread_name");
                  ("ph", Json.String "M");
                  ("pid", Json.Int pid);
                  ("tid", Json.Int (tid w));
                  ("args", Json.Obj [ ("name", Json.String tname) ]);
                ]
              :: Json.Obj
                   [
                     ("name", Json.String "thread_sort_index");
                     ("ph", Json.String "M");
                     ("pid", Json.Int pid);
                     ("tid", Json.Int (tid w));
                     ("args", Json.Obj [ ("sort_index", Json.Int (tid w)) ]);
                   ]
              :: List.map
                   (fun s ->
                     Json.Obj
                       [
                         ("name", Json.String (Printf.sprintf "task %d" s.t_index));
                         ("cat", Json.String "pool");
                         ("ph", Json.String "X");
                         ("ts", Json.Float (Trace.usec (p.p_start_ms +. s.t_start_ms)));
                         ("dur", Json.Float (Trace.usec s.t_dur_ms));
                         ("pid", Json.Int pid);
                         ("tid", Json.Int (tid w));
                         ( "args",
                           Json.Obj
                             [
                               ("index", Json.Int s.t_index);
                               ("pool", Json.String p.p_label);
                             ] );
                       ])
                   w.w_spans)
            p.p_workers
        in
        meta :: List.concat_map per_pool ps
end

(* Aggregate metrics: a registry of counters, gauges and log-bucketed
   histograms, exposable as Prometheus text or JSON.  Unlike Profile
   (which keeps every observation of a series), a histogram is constant
   space: observations land in log2-spaced buckets with half-step
   resolution, and quantiles are estimated by interpolating inside the
   covering bucket — exact min/max are tracked so the estimate is always
   clamped into the observed range. *)
module Metrics = struct
  type labels = (string * string) list

  (* Bucket [i] holds observations v with bound(i-1) < v <= bound(i),
     bound(i) = 2^((i-40)/2): ~1e-6 ms .. ~5e11, enough for every latency
     and noise-bits quantity in the system.  Index [finite_buckets] is the
     overflow (+Inf) bucket. *)
  let finite_buckets = 119
  let bound i = Float.pow 2.0 ((float_of_int i -. 40.0) /. 2.0)

  let bucket_of v =
    if Float.is_nan v then finite_buckets
    else if v <= bound 0 then 0
    else if v > bound (finite_buckets - 1) then finite_buckets
    else
      let i = int_of_float (Float.ceil (2.0 *. Float.log2 v)) + 40 in
      (* guard against log2 rounding right at a boundary *)
      let i = max 0 (min (finite_buckets - 1) i) in
      if v <= bound i then if i > 0 && v <= bound (i - 1) then i - 1 else i else i + 1

  type hist = {
    mutable count : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
    counts : int array;  (* finite_buckets + 1 *)
  }

  type t = {
    counters : (string * labels, int ref) Hashtbl.t;
    gauges : (string * labels, float ref) Hashtbl.t;
    hists : (string * labels, hist) Hashtbl.t;
    (* Mutators take this lock: a registry is shared with worker domains
       during parallel planning so exact counters (fuel metering, cache
       traffic) survive the fan-out. *)
    lock : Mutex.t;
  }

  let create () =
    {
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 16;
      hists = Hashtbl.create 32;
      lock = Mutex.create ();
    }

  let key name labels = (name, List.sort compare labels)

  let incr ?(by = 1) ?(labels = []) t name =
    let k = key name labels in
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.counters k with
        | Some r -> r := !r + by
        | None -> Hashtbl.add t.counters k (ref by))

  let set ?(labels = []) t name v =
    let k = key name labels in
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.gauges k with
        | Some r -> r := v
        | None -> Hashtbl.add t.gauges k (ref v))

  let observe ?(labels = []) t name v =
    let k = key name labels in
    Mutex.protect t.lock (fun () ->
        let h =
          match Hashtbl.find_opt t.hists k with
          | Some h -> h
          | None ->
              let h =
                {
                  count = 0;
                  sum = 0.0;
                  minv = infinity;
                  maxv = neg_infinity;
                  counts = Array.make (finite_buckets + 1) 0;
                }
              in
              Hashtbl.add t.hists k h;
              h
        in
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if v < h.minv then h.minv <- v;
        if v > h.maxv then h.maxv <- v;
        let b = bucket_of v in
        h.counts.(b) <- h.counts.(b) + 1)

  let counter_value ?(labels = []) t name =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.counters (key name labels) with Some r -> !r | None -> 0)

  let gauge ?(labels = []) t name =
    Mutex.protect t.lock (fun () ->
        Option.map ( ! ) (Hashtbl.find_opt t.gauges (key name labels)))

  let quantile_of_hist h q =
    if h.count = 0 then None
    else if h.minv = h.maxv then Some h.minv
    else begin
      let need = Float.max 1.0 (Float.ceil (q *. float_of_int h.count)) in
      let rec go i cum =
        if i > finite_buckets then h.maxv
        else
          let c = h.counts.(i) in
          if c > 0 && float_of_int (cum + c) >= need then begin
            let lo = if i = 0 then 0.0 else bound (i - 1) in
            let hi = if i >= finite_buckets then h.maxv else bound i in
            let frac = (need -. float_of_int cum) /. float_of_int c in
            Float.max h.minv (Float.min h.maxv (lo +. (frac *. (hi -. lo))))
          end
          else go (i + 1) (cum + c)
      in
      Some (go 0 0)
    end

  type hstats = {
    hcount : int;
    hsum : float;
    hmin : float;
    hmax : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  let stats_of_hist h =
    let q p = Option.value (quantile_of_hist h p) ~default:nan in
    {
      hcount = h.count;
      hsum = h.sum;
      hmin = (if h.count = 0 then nan else h.minv);
      hmax = (if h.count = 0 then nan else h.maxv);
      p50 = q 0.5;
      p90 = q 0.9;
      p99 = q 0.99;
    }

  let histogram ?(labels = []) t name =
    Option.map stats_of_hist (Hashtbl.find_opt t.hists (key name labels))

  let quantile ?(labels = []) t name q =
    Option.bind (Hashtbl.find_opt t.hists (key name labels)) (fun h ->
        quantile_of_hist h q)

  (* Non-empty cumulative bucket boundaries: (upper_bound, cumulative) at
     each bucket that received observations — enough to reconstruct the
     distribution without 120 mostly-zero rows per histogram. *)
  let cumulative_buckets h =
    let acc = ref [] and cum = ref 0 in
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          cum := !cum + c;
          let le = if i >= finite_buckets then infinity else bound i in
          acc := (le, !cum) :: !acc
        end)
      h.counts;
    List.rev !acc

  let sorted_bindings tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] (* det-ok: sorted *)
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

  let to_json t =
    let counter ((name, labels), r) =
      Json.Obj
        [ ("name", Json.String name); ("labels", labels_json labels); ("value", Json.Int !r) ]
    in
    let gauge ((name, labels), r) =
      Json.Obj
        [ ("name", Json.String name); ("labels", labels_json labels); ("value", Json.Float !r) ]
    in
    let hist ((name, labels), h) =
      let s = stats_of_hist h in
      Json.Obj
        [
          ("name", Json.String name);
          ("labels", labels_json labels);
          ("count", Json.Int s.hcount);
          ("sum", Json.Float s.hsum);
          ("min", Json.Float s.hmin);
          ("max", Json.Float s.hmax);
          ("p50", Json.Float s.p50);
          ("p90", Json.Float s.p90);
          ("p99", Json.Float s.p99);
          ( "buckets",
            Json.List
              (List.map
                 (fun (le, cum) -> Json.List [ Json.Float le; Json.Int cum ])
                 (cumulative_buckets h)) );
        ]
    in
    Json.Obj
      [
        ("counters", Json.List (List.map counter (sorted_bindings t.counters)));
        ("gauges", Json.List (List.map gauge (sorted_bindings t.gauges)));
        ("histograms", Json.List (List.map hist (sorted_bindings t.hists)));
      ]

  (* --- registry snapshots and round-trip ---------------------------------- *)

  let all_counters t =
    Mutex.protect t.lock (fun () ->
        List.map (fun ((name, labels), r) -> (name, labels, !r)) (sorted_bindings t.counters))

  let all_gauges t =
    Mutex.protect t.lock (fun () ->
        List.map (fun ((name, labels), r) -> (name, labels, !r)) (sorted_bindings t.gauges))

  let all_histograms t =
    Mutex.protect t.lock (fun () ->
        List.map
          (fun ((name, labels), h) -> (name, labels, stats_of_hist h))
          (sorted_bindings t.hists))

  (* Invert the serialisation of [cumulative_buckets]: a bucket bound is
     2^((i-40)/2), so the index is recovered in closed form; the overflow
     bucket serialised as +Inf degrades to JSON null and parses as NaN. *)
  let bucket_of_bound le =
    if Float.is_nan le || le = infinity then finite_buckets
    else begin
      let i = int_of_float (Float.round ((2.0 *. Float.log2 le) +. 40.0)) in
      if
        i >= 0
        && i < finite_buckets
        && Float.abs (bound i -. le) <= 1e-9 *. Float.max 1.0 (Float.abs le)
      then i
      else bucket_of le
    end

  let of_json j =
    let ( let* ) = Result.bind in
    let t = create () in
    let number = function
      | Json.Int i -> Some (float_of_int i)
      | Json.Float f -> Some f
      | Json.Null -> Some nan
      | _ -> None
    in
    let entries section =
      match Json.member section j with
      | Some (Json.List es) -> Ok es
      | None -> Ok []
      | Some _ -> Error (Printf.sprintf "metrics section %S is not a list" section)
    in
    let name_labels e =
      let* name =
        match Json.member "name" e with
        | Some (Json.String s) -> Ok s
        | _ -> Error "metric entry without a name"
      in
      let labels =
        match Json.member "labels" e with
        | Some (Json.Obj fs) ->
            List.filter_map
              (fun (k, v) -> match v with Json.String s -> Some (k, s) | _ -> None)
              fs
        | _ -> []
      in
      Ok (name, labels)
    in
    let each es f = List.fold_left (fun acc e -> let* () = acc in f e) (Ok ()) es in
    let* cs = entries "counters" in
    let* () =
      each cs (fun e ->
          let* name, labels = name_labels e in
          match Json.member "value" e with
          | Some (Json.Int v) ->
              incr t ~by:v ~labels name;
              Ok ()
          | _ -> Error (Printf.sprintf "counter %s has no integer value" name))
    in
    let* gs = entries "gauges" in
    let* () =
      each gs (fun e ->
          let* name, labels = name_labels e in
          match Option.bind (Json.member "value" e) number with
          | Some v ->
              set t ~labels name v;
              Ok ()
          | None -> Error (Printf.sprintf "gauge %s has no numeric value" name))
    in
    let* hs = entries "histograms" in
    let* () =
      each hs (fun e ->
          let* name, labels = name_labels e in
          let num field =
            match Option.bind (Json.member field e) number with
            | Some v -> Ok v
            | None ->
                Error (Printf.sprintf "histogram %s: field %S missing" name field)
          in
          let* count =
            match Json.member "count" e with
            | Some (Json.Int c) -> Ok c
            | _ -> Error (Printf.sprintf "histogram %s: field \"count\" missing" name)
          in
          let* sum = num "sum" in
          let* minv = num "min" in
          let* maxv = num "max" in
          let* buckets =
            match Json.member "buckets" e with
            | Some (Json.List bs) ->
                Result.map List.rev
                  (List.fold_left
                     (fun acc b ->
                       let* acc = acc in
                       match b with
                       | Json.List [ le; Json.Int cum ] -> (
                           match number le with
                           | Some le -> Ok ((le, cum) :: acc)
                           | None ->
                               Error
                                 (Printf.sprintf "histogram %s: malformed bucket bound"
                                    name))
                       | _ -> Error (Printf.sprintf "histogram %s: malformed bucket" name))
                     (Ok []) bs)
            | _ -> Error (Printf.sprintf "histogram %s: missing buckets" name)
          in
          let h =
            {
              count;
              sum;
              minv = (if count = 0 then infinity else minv);
              maxv = (if count = 0 then neg_infinity else maxv);
              counts = Array.make (finite_buckets + 1) 0;
            }
          in
          let prev = ref 0 in
          List.iter
            (fun (le, cum) ->
              let b = bucket_of_bound le in
              h.counts.(b) <- h.counts.(b) + (cum - !prev);
              prev := cum)
            buckets;
          Mutex.protect t.lock (fun () -> Hashtbl.replace t.hists (key name labels) h);
          Ok ())
    in
    Ok t

  (* --- Prometheus text exposition ---------------------------------------- *)

  let sanitize name =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
      name

  let escape_label_value v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let label_text labels =
    match labels with
    | [] -> ""
    | _ ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
               labels)
        ^ "}"

  let prom_float f =
    if Float.is_nan f then "NaN"
    else if f = infinity then "+Inf"
    else if f = neg_infinity then "-Inf"
    else Json.float_repr f

  let to_prometheus ?(namespace = "resbm") t =
    let buf = Buffer.create 4096 in
    let full name = sanitize (namespace ^ "_" ^ name) in
    let typed = Hashtbl.create 16 in
    let type_line name kind =
      if not (Hashtbl.mem typed name) then begin
        Hashtbl.add typed name ();
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
      end
    in
    List.iter
      (fun ((name, labels), r) ->
        let n = full name in
        type_line n "counter";
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" n (label_text labels) !r))
      (sorted_bindings t.counters);
    List.iter
      (fun ((name, labels), r) ->
        let n = full name in
        type_line n "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" n (label_text labels) (prom_float !r)))
      (sorted_bindings t.gauges);
    List.iter
      (fun ((name, labels), h) ->
        let n = full name in
        type_line n "histogram";
        let cum = cumulative_buckets h in
        List.iter
          (fun (le, c) ->
            let ls = labels @ [ ("le", prom_float le) ] in
            Buffer.add_string buf (Printf.sprintf "%s_bucket%s %d\n" n (label_text ls) c))
          cum;
        let needs_inf =
          match List.rev cum with (le, _) :: _ -> le <> infinity | [] -> true
        in
        if needs_inf then begin
          let ls = labels @ [ ("le", "+Inf") ] in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" n (label_text ls) h.count)
        end;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" n (label_text labels) (prom_float h.sum));
        Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" n (label_text labels) h.count))
      (sorted_bindings t.hists);
    Buffer.contents buf

  (* --- folds from the other observability tiers --------------------------- *)

  let region_label r = if r < 0 then "unattributed" else string_of_int r

  (* Fold a flight-recorded trace into per-op-kind and per-region latency
     and noise-headroom distributions. *)
  let of_trace ?into tr =
    let m = match into with Some m -> m | None -> create () in
    List.iter
      (function
        | Trace.Op e ->
            let op = [ ("op", e.Trace.op) ] in
            let region = [ ("region", region_label e.Trace.region) ] in
            incr m ~labels:op "trace_ops_total";
            observe m ~labels:op "op_latency_ms" e.Trace.dur_ms;
            observe m ~labels:region "region_latency_ms" e.Trace.dur_ms;
            observe m ~labels:op "noise_headroom_bits"
              (Trace.headroom_bits e.Trace.noise_after)
        | Trace.Instant i ->
            incr m ~labels:[ ("kind", i.Trace.iname) ] "trace_instants_total")
      (Trace.events tr);
    set m "trace_clock_ms" (Trace.clock_ms tr);
    set m "trace_dropped_events" (float_of_int (Trace.dropped tr));
    m

  (* Fold a compile profile: top-level phase durations become one
     histogram labelled by phase, pipeline counters one counter family. *)
  let of_profile ?into p =
    let m = match into with Some m -> m | None -> create () in
    List.iter
      (fun (s : Profile.span) ->
        if s.Profile.depth = 0 then
          observe m ~labels:[ ("phase", s.Profile.name) ] "compile_phase_ms" s.Profile.dur_ms)
      (Profile.spans p);
    List.iter
      (fun (k, v) -> incr m ~by:v ~labels:[ ("counter", k) ] "pipeline_events_total")
      (Profile.counters p);
    m
end

(* Baseline regression gating: load two BENCH_resbm.json files, align
   rows by (model, manager), compare deterministic metrics exactly and
   wall-clock compile times within a MAD-derived noise band, and emit a
   per-cell verdict.  Deterministic metrics (bootstrap counts, simulated
   latency, node counts, predicted precision) come from the cost model
   and planner, so any drift at all is a real behaviour change; compile
   times are host wall-clock and only drift outside the band matters. *)
(* Generic explanation rendering: hierarchical cost waterfalls and
   structural JSON diffs.  Everything here is presentation-layer — the
   graph-aware logic that produces the rows and digests lives in
   [Resbm.Explain]; this module only folds, sorts, renders and compares,
   so serving/multi-backend reports can reuse it unchanged. *)
module Explain = struct
  (* --- cost waterfall ----------------------------------------------------- *)

  type row = { group : string; bucket : string; label : string; cost : float }

  type leaf = { leaf_label : string; leaf_cost : float }

  type bucket = {
    bucket_label : string;
    bucket_cost : float;
    bucket_count : int;
    leaves : leaf list;  (* top-k by cost; the rest are folded *)
    folded : int;
    folded_cost : float;
  }

  type group = {
    group_label : string;
    group_cost : float;
    group_count : int;
    buckets : bucket list;
  }

  type waterfall = {
    total : float;
    groups : group list;
    shares : (string * float) list;
  }

  let attributed w = List.fold_left (fun acc g -> acc +. g.group_cost) 0.0 w.groups

  (* Deterministic fold: groups and buckets ordered by descending cost
     (label as tie-break), leaves likewise with only the top [top] kept
     individually — but never silently: the fold keeps the remainder as an
     explicit count + cost so the waterfall always sums to its total. *)
  let waterfall ?(top = 5) ?(shares = []) ~total rows =
    let by_cost c1 l1 c2 l2 =
      match compare c2 c1 with 0 -> compare l1 l2 | c -> c
    in
    let group_tbl = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let buckets =
          match Hashtbl.find_opt group_tbl r.group with
          | Some b -> b
          | None ->
              let b = Hashtbl.create 8 in
              Hashtbl.add group_tbl r.group b;
              b
        in
        let prev = Option.value (Hashtbl.find_opt buckets r.bucket) ~default:[] in
        Hashtbl.replace buckets r.bucket ({ leaf_label = r.label; leaf_cost = r.cost } :: prev))
      rows;
    let groups =
      Hashtbl.fold
        (fun glabel buckets acc ->
          let bs =
            Hashtbl.fold
              (fun blabel leaves acc ->
                let leaves =
                  List.sort
                    (fun a b -> by_cost a.leaf_cost a.leaf_label b.leaf_cost b.leaf_label)
                    leaves
                in
                let cost = List.fold_left (fun s l -> s +. l.leaf_cost) 0.0 leaves in
                let count = List.length leaves in
                let shown = List.filteri (fun i _ -> i < top) leaves in
                let folded = count - List.length shown in
                let folded_cost =
                  cost -. List.fold_left (fun s l -> s +. l.leaf_cost) 0.0 shown
                in
                {
                  bucket_label = blabel;
                  bucket_cost = cost;
                  bucket_count = count;
                  leaves = shown;
                  folded;
                  folded_cost;
                }
                :: acc)
              buckets []
          in
          let bs =
            List.sort
              (fun a b -> by_cost a.bucket_cost a.bucket_label b.bucket_cost b.bucket_label)
              bs
          in
          let cost = List.fold_left (fun s b -> s +. b.bucket_cost) 0.0 bs in
          let count = List.fold_left (fun s b -> s + b.bucket_count) 0 bs in
          { group_label = glabel; group_cost = cost; group_count = count; buckets = bs }
          :: acc)
        group_tbl []
    in
    let groups =
      List.sort
        (fun a b -> by_cost a.group_cost a.group_label b.group_cost b.group_label)
        groups
    in
    { total; groups; shares }

  let pct total v = if total <= 0.0 then 0.0 else 100.0 *. v /. total

  let pp ?(title = "cost waterfall") ppf w =
    Format.fprintf ppf "@[<v>%s: %.3f ms total@," title w.total;
    if w.shares <> [] then begin
      Format.fprintf ppf "shares:";
      List.iter
        (fun (name, v) -> Format.fprintf ppf " %s %.1f%%" name (pct w.total v))
        w.shares;
      Format.fprintf ppf "@,"
    end;
    List.iter
      (fun g ->
        Format.fprintf ppf "%-34s %12.3f ms %5.1f%% (%d nodes)@," g.group_label
          g.group_cost (pct w.total g.group_cost) g.group_count;
        List.iter
          (fun b ->
            Format.fprintf ppf "  %-32s %12.3f ms %5.1f%% (%d)@," b.bucket_label
              b.bucket_cost (pct w.total b.bucket_cost) b.bucket_count;
            List.iter
              (fun l ->
                Format.fprintf ppf "    %-30s %12.3f ms %5.1f%%@," l.leaf_label
                  l.leaf_cost (pct w.total l.leaf_cost))
              b.leaves;
            if b.folded > 0 then
              Format.fprintf ppf "    (+%d more)%*s %12.3f ms %5.1f%%@," b.folded
                (max 0 (30 - String.length (Printf.sprintf "(+%d more)" b.folded)))
                "" b.folded_cost (pct w.total b.folded_cost))
          g.buckets)
      w.groups;
    Format.fprintf ppf "attributed: %.3f ms of %.3f ms (%.2f%%)@]" (attributed w)
      w.total
      (pct w.total (attributed w))

  let to_json w =
    let leaf_json l =
      Json.Obj [ ("label", Json.String l.leaf_label); ("cost_ms", Json.Float l.leaf_cost) ]
    in
    let bucket_json b =
      Json.Obj
        [
          ("label", Json.String b.bucket_label);
          ("cost_ms", Json.Float b.bucket_cost);
          ("count", Json.Int b.bucket_count);
          ("top", Json.List (List.map leaf_json b.leaves));
          ("folded", Json.Int b.folded);
          ("folded_cost_ms", Json.Float b.folded_cost);
        ]
    in
    let group_json g =
      Json.Obj
        [
          ("label", Json.String g.group_label);
          ("cost_ms", Json.Float g.group_cost);
          ("count", Json.Int g.group_count);
          ("buckets", Json.List (List.map bucket_json g.buckets));
        ]
    in
    Json.Obj
      [
        ("total_ms", Json.Float w.total);
        ("attributed_ms", Json.Float (attributed w));
        ("shares", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) w.shares));
        ("groups", Json.List (List.map group_json w.groups));
      ]

  (* --- structural JSON diff ------------------------------------------------ *)

  type change = {
    path : string list;
    before : Json.t option;  (* None = added *)
    after : Json.t option;  (* None = removed *)
  }

  let rec json_equal a b =
    match (a, b) with
    | Json.Null, Json.Null -> true
    | Json.Bool x, Json.Bool y -> x = y
    | Json.Int x, Json.Int y -> x = y
    | Json.Float x, Json.Float y -> (Float.is_nan x && Float.is_nan y) || x = y
    | Json.Int x, Json.Float y | Json.Float y, Json.Int x -> float_of_int x = y
    | Json.String x, Json.String y -> x = y
    | Json.List x, Json.List y ->
        List.length x = List.length y && List.for_all2 json_equal x y
    | Json.Obj x, Json.Obj y ->
        let keys o = List.sort compare (List.map fst o) in
        keys x = keys y
        && List.for_all
             (fun (k, v) ->
               match List.assoc_opt k y with Some w -> json_equal v w | None -> false)
             x
    | _ -> false

  (* Objects align by key (order-insensitive — the stability under node
     renumbering comes from keying digests by content hashes), lists by
     index, scalars by value.  Every difference is reported at the deepest
     point where the two sides still align. *)
  let diff_json base cand =
    let changes = ref [] in
    let emit path before after = changes := { path; before; after } :: !changes in
    let rec go path a b =
      match (a, b) with
      | Json.Obj x, Json.Obj y ->
          let keys =
            List.sort_uniq compare (List.map fst x @ List.map fst y)
          in
          List.iter
            (fun k ->
              let path = path @ [ k ] in
              match (List.assoc_opt k x, List.assoc_opt k y) with
              | Some v, Some w -> go path v w
              | Some v, None -> emit path (Some v) None
              | None, Some w -> emit path None (Some w)
              | None, None -> ())
            keys
      | Json.List x, Json.List y when List.length x = List.length y ->
          List.iteri (fun i (v, w) -> go (path @ [ string_of_int i ]) v w)
            (List.combine x y)
      | _ -> if not (json_equal a b) then emit path (Some a) (Some b)
    in
    go [] base cand;
    List.rev !changes

  let path_to_string path = String.concat "/" path

  let change_to_json c =
    Json.Obj
      [
        ("path", Json.String (path_to_string c.path));
        ("before", Option.value c.before ~default:Json.Null);
        ("after", Option.value c.after ~default:Json.Null);
      ]

  let pp_change ppf c =
    let side = function Some j -> Json.to_string j | None -> "(absent)" in
    Format.fprintf ppf "%-40s %s -> %s"
      (path_to_string c.path)
      (side c.before) (side c.after)

  (* A Perfetto-loadable overlay: one instant event per structural change,
     so a plan diff can be dropped on top of an execution timeline and
     scrubbed change by change. *)
  let perfetto_overlay ?(pid = 99) changes =
    let event i c =
      Json.Obj
        [
          ("name", Json.String (path_to_string c.path));
          ("ph", Json.String "i");
          ("ts", Json.Int (i * 10));
          ("pid", Json.Int pid);
          ("tid", Json.Int 1);
          ("s", Json.String "g");
          ( "args",
            Json.Obj
              [
                ("before", Option.value c.before ~default:Json.Null);
                ("after", Option.value c.after ~default:Json.Null);
              ] );
        ]
    in
    Json.Obj
      [
        ("traceEvents", Json.List (List.mapi event changes));
        ("displayTimeUnit", Json.String "ms");
      ]
end

module Bench_diff = struct
  let schema_version = 2

  type row = {
    model : string;
    manager : string;
    metrics : (string * float) list;
    compile : Stat.summary option;
    warm : Stat.summary option;
    digest : Json.t option;
        (* structural plan digest (renumbering-stable; see Resbm.Explain).
           Optional on both sides so old baselines diff cleanly. *)
  }

  type source = {
    version : int;
    git_rev : string;
    trials : int;
    l_max : int;
    rows : row list;
  }

  type verdict = Unchanged | Improved | Regressed | Within_noise | Incomparable

  let verdict_to_string = function
    | Unchanged -> "unchanged"
    | Improved -> "improved"
    | Regressed -> "regressed"
    | Within_noise -> "within-noise"
    | Incomparable -> "incomparable"

  type cell = {
    cmodel : string;
    cmanager : string;
    metric : string;
    base : float;
    cand : float;
    wall_clock : bool;
    informational : bool;  (* reported, never gated *)
    tolerance : float;  (* 0 for exact comparisons *)
    verdict : verdict;
  }

  type outcome = {
    cells : cell list;
    missing : (string * string) list;  (* rows in base absent from candidate *)
    added : (string * string) list;  (* rows in candidate absent from base *)
    plan_drift : ((string * string) * Explain.change list) list;
        (* per (model, manager): structural plan-digest changes, when both
           sides carry a digest.  Non-empty drift accompanies (and gates
           like) a deterministic change — it is the plan-level explanation
           of WHERE a metric regression came from. *)
  }

  (* The deterministic per-manager metrics and their preferred direction. *)
  let deterministic_metrics =
    [
      ("latency_ms", `Lower);
      ("bootstrap_count", `Lower);
      ("executed_rescales", `Lower);
      ("nodes", `Lower);
      ("predicted_precision_bits", `Higher);
    ]

  (* GC cells from Obs.Rt bench sampling: reported for trend-watching but
     never gated — allocation pressure is build- and runtime-sensitive,
     and baselines written before these columns existed simply lack them
     (a missing side yields no cell, not a failure). *)
  let informational_metrics =
    [ "gc_minor_words"; "gc_major_words"; "gc_top_heap_words" ]

  (* --- loading ------------------------------------------------------------ *)

  let number = Stat.number

  let load content =
    let ( let* ) = Result.bind in
    let* json =
      match Json.of_string content with
      | Ok j -> Ok j
      | Error m -> Error ("not valid JSON: " ^ m)
    in
    let* () =
      match Json.member "bench" json with
      | Some (Json.String "resbm") -> Ok ()
      | _ -> Error "not a resbm bench file (missing \"bench\": \"resbm\")"
    in
    let* version =
      match Json.member "schema_version" json with
      | Some (Json.Int v) when v = schema_version -> Ok v
      | Some (Json.Int v) ->
          Error
            (Printf.sprintf
               "schema_version %d is not supported (this build reads version %d); \
                regenerate both files with `bench -- json`"
               v schema_version)
      | Some _ -> Error "schema_version is not an integer"
      | None ->
          Error
            "unversioned bench file (no schema_version field); regenerate it with \
             `bench -- json` before diffing"
    in
    let* l_max =
      match Json.member "l_max" json with
      | Some (Json.Int l) -> Ok l
      | _ -> Error "missing l_max header field"
    in
    let git_rev =
      match Json.member "git_rev" json with Some (Json.String s) -> s | _ -> "unknown"
    in
    let trials =
      match Json.member "trials" json with Some (Json.Int t) -> t | _ -> 1
    in
    let* models =
      match Json.member "models" json with
      | Some (Json.List ms) -> Ok ms
      | _ -> Error "missing models list"
    in
    let* rows =
      List.fold_left
        (fun acc model_json ->
          let* acc = acc in
          let* model =
            match Json.member "model" model_json with
            | Some (Json.String s) -> Ok s
            | _ -> Error "model entry without a name"
          in
          let* managers =
            match Json.member "managers" model_json with
            | Some (Json.List ms) -> Ok ms
            | _ -> Error (Printf.sprintf "model %s has no managers list" model)
          in
          List.fold_left
            (fun acc mgr_json ->
              let* acc = acc in
              let* manager =
                match Json.member "manager" mgr_json with
                | Some (Json.String s) -> Ok s
                | _ -> Error (Printf.sprintf "manager entry of %s without a name" model)
              in
              let metrics =
                List.filter_map
                  (fun name ->
                    Option.bind (Json.member name mgr_json) number
                    |> Option.map (fun v -> (name, v)))
                  (List.map fst deterministic_metrics @ informational_metrics)
              in
              let compile =
                match Json.member "compile_stat" mgr_json with
                | Some j -> Result.to_option (Stat.of_json j)
                | None -> None
              in
              let warm =
                match Json.member "compile_warm_stat" mgr_json with
                | Some j -> Result.to_option (Stat.of_json j)
                | None -> None
              in
              let digest = Json.member "plan_digest" mgr_json in
              Ok ({ model; manager; metrics; compile; warm; digest } :: acc))
            (Ok acc) managers)
        (Ok []) models
    in
    Ok { version; git_rev; trials; l_max; rows = List.rev rows }

  (* --- diffing ------------------------------------------------------------ *)

  let float_equal a b = (Float.is_nan a && Float.is_nan b) || a = b

  let diff ?(noise_mult = 4.0) ?(min_tolerance_ms = 0.5) ?(warm_speedup_min = 5.0)
      ~base ~cand () =
    if base.l_max <> cand.l_max then
      Error
        (Printf.sprintf "l_max differs (%d vs %d): the files measure different sweeps"
           base.l_max cand.l_max)
    else begin
      let key r = (r.model, r.manager) in
      let cand_of k = List.find_opt (fun r -> key r = k) cand.rows in
      let missing =
        List.filter_map
          (fun r -> if cand_of (key r) = None then Some (key r) else None)
          base.rows
      in
      let added =
        List.filter_map
          (fun r ->
            if List.exists (fun b -> key b = key r) base.rows then None else Some (key r))
          cand.rows
      in
      let cells =
        List.concat_map
          (fun b ->
            match cand_of (key b) with
            | None -> []
            | Some c ->
                let det =
                  List.filter_map
                    (fun (metric, direction) ->
                      let bv = List.assoc_opt metric b.metrics
                      and cv = List.assoc_opt metric c.metrics in
                      match (bv, cv) with
                      | None, None -> None
                      | _ ->
                          let bv = Option.value bv ~default:nan
                          and cv = Option.value cv ~default:nan in
                          let verdict =
                            if float_equal bv cv then Unchanged
                            else if Float.is_nan bv || Float.is_nan cv then Incomparable
                            else if
                              match direction with
                              | `Lower -> cv < bv
                              | `Higher -> cv > bv
                            then Improved
                            else Regressed
                          in
                          Some
                            {
                              cmodel = b.model;
                              cmanager = b.manager;
                              metric;
                              base = bv;
                              cand = cv;
                              wall_clock = false;
                              informational = false;
                              tolerance = 0.0;
                              verdict;
                            })
                    deterministic_metrics
                in
                let wall =
                  match (b.compile, c.compile) with
                  | Some sb, Some sc ->
                      let tolerance =
                        Float.max
                          (noise_mult *. (sb.Stat.mad +. sc.Stat.mad))
                          min_tolerance_ms
                      in
                      let d = sc.Stat.median -. sb.Stat.median in
                      let verdict =
                        if d = 0.0 then Unchanged
                        else if Float.abs d <= tolerance then Within_noise
                        else if d < 0.0 then Improved
                        else Regressed
                      in
                      [
                        {
                          cmodel = b.model;
                          cmanager = b.manager;
                          metric = "compile_ms";
                          base = sb.Stat.median;
                          cand = sc.Stat.median;
                          wall_clock = true;
                          informational = false;
                          tolerance;
                          verdict;
                        };
                      ]
                  | _ -> []
                in
                (* Warm (cache-hit) compile wall band, same tolerance rule
                   as the cold band. *)
                let warm_band =
                  match (b.warm, c.warm) with
                  | Some sb, Some sc ->
                      let tolerance =
                        Float.max
                          (noise_mult *. (sb.Stat.mad +. sc.Stat.mad))
                          min_tolerance_ms
                      in
                      let d = sc.Stat.median -. sb.Stat.median in
                      let verdict =
                        if d = 0.0 then Unchanged
                        else if Float.abs d <= tolerance then Within_noise
                        else if d < 0.0 then Improved
                        else Regressed
                      in
                      [
                        {
                          cmodel = b.model;
                          cmanager = b.manager;
                          metric = "compile_warm_ms";
                          base = sb.Stat.median;
                          cand = sc.Stat.median;
                          wall_clock = true;
                          informational = false;
                          tolerance;
                          verdict;
                        };
                      ]
                  | _ -> []
                in
                (* The warm-cache contract gate: the CANDIDATE's cold/warm
                   median ratio must clear [warm_speedup_min] — a cache
                   that stopped hitting shows up here as Regressed even
                   when every absolute timing is within noise.  Not a
                   wall-clock cell: the ratio is self-normalising, so it
                   gates under every fail_on mode. *)
                let speedup =
                  match (c.compile, c.warm) with
                  | Some cold, Some cwarm when cwarm.Stat.median > 0.0 ->
                      let cand_speedup = cold.Stat.median /. cwarm.Stat.median in
                      let base_speedup =
                        match (b.compile, b.warm) with
                        | Some bc, Some bw when bw.Stat.median > 0.0 ->
                            bc.Stat.median /. bw.Stat.median
                        | _ -> nan
                      in
                      [
                        {
                          cmodel = b.model;
                          cmanager = b.manager;
                          metric = "warm_speedup";
                          base = base_speedup;
                          cand = cand_speedup;
                          wall_clock = false;
                          informational = false;
                          tolerance = warm_speedup_min;
                          verdict =
                            (if cand_speedup >= warm_speedup_min then Unchanged
                             else Regressed);
                        };
                      ]
                  | _ -> []
                in
                (* Informational GC cells: only when both sides carry the
                   column, so old baselines diff cleanly against new
                   candidates. *)
                let info =
                  List.filter_map
                    (fun metric ->
                      match
                        ( List.assoc_opt metric b.metrics,
                          List.assoc_opt metric c.metrics )
                      with
                      | Some bv, Some cv ->
                          Some
                            {
                              cmodel = b.model;
                              cmanager = b.manager;
                              metric;
                              base = bv;
                              cand = cv;
                              wall_clock = false;
                              informational = true;
                              tolerance = 0.0;
                              verdict =
                                (if float_equal bv cv then Unchanged
                                 else if Float.is_nan bv || Float.is_nan cv then
                                   Incomparable
                                 else if cv < bv then Improved
                                 else Regressed);
                            }
                      | _ -> None)
                    informational_metrics
                in
                det @ wall @ warm_band @ speedup @ info)
          base.rows
      in
      let plan_drift =
        List.filter_map
          (fun b ->
            match cand_of (key b) with
            | None -> None
            | Some c -> (
                match (b.digest, c.digest) with
                | Some db, Some dc -> (
                    match Explain.diff_json db dc with
                    | [] -> None
                    | changes -> Some (key b, changes))
                | _ -> None))
          base.rows
      in
      Ok { cells; missing; added; plan_drift }
    end

  (* --- gating -------------------------------------------------------------- *)

  let deterministic_changes o =
    List.filter
      (fun c -> (not c.wall_clock) && (not c.informational) && c.verdict <> Unchanged)
      o.cells

  let regressions ?(strict_wallclock = false) o =
    List.filter
      (fun c ->
        match c.verdict with
        | Regressed | Incomparable ->
            (not c.informational) && (strict_wallclock || not c.wall_clock)
        | _ -> false)
      o.cells

  (* 0 = pass, 2 = gate failure.  [`Changed] (the default) treats any
     deterministic drift — improvements included — as a failure: a better
     bootstrap count still invalidates the committed baseline, and the
     baseline refresh must be deliberate. *)
  let exit_code ?(fail_on = `Changed) ?(strict_wallclock = false) o =
    let aligned_bad = o.missing <> [] || o.added <> [] in
    let failed =
      match fail_on with
      | `Never -> false
      | `Regressed -> aligned_bad || regressions ~strict_wallclock o <> []
      | `Changed ->
          aligned_bad
          || deterministic_changes o <> []
          || o.plan_drift <> []
          || (strict_wallclock
             && List.exists (fun c -> c.wall_clock && c.verdict = Regressed) o.cells)
    in
    if failed then 2 else 0

  (* --- reporting ----------------------------------------------------------- *)

  let cell_to_json c =
    Json.Obj
      [
        ("model", Json.String c.cmodel);
        ("manager", Json.String c.cmanager);
        ("metric", Json.String c.metric);
        ("base", Json.Float c.base);
        ("candidate", Json.Float c.cand);
        ("wall_clock", Json.Bool c.wall_clock);
        ("informational", Json.Bool c.informational);
        ("tolerance", Json.Float c.tolerance);
        ("verdict", Json.String (verdict_to_string c.verdict));
      ]

  let outcome_to_json o =
    let count v = List.length (List.filter (fun c -> c.verdict = v) o.cells) in
    let pair_json (m, g) =
      Json.Obj [ ("model", Json.String m); ("manager", Json.String g) ]
    in
    Json.Obj
      [
        ("cells", Json.List (List.map cell_to_json o.cells));
        ("missing", Json.List (List.map pair_json o.missing));
        ("added", Json.List (List.map pair_json o.added));
        ( "plan_drift",
          Json.List
            (List.map
               (fun ((m, g), changes) ->
                 Json.Obj
                   [
                     ("model", Json.String m);
                     ("manager", Json.String g);
                     ( "changes",
                       Json.List (List.map Explain.change_to_json changes) );
                   ])
               o.plan_drift) );
        ( "summary",
          Json.Obj
            [
              ("unchanged", Json.Int (count Unchanged));
              ("improved", Json.Int (count Improved));
              ("regressed", Json.Int (count Regressed));
              ("within_noise", Json.Int (count Within_noise));
              ("incomparable", Json.Int (count Incomparable));
              ("missing", Json.Int (List.length o.missing));
              ("added", Json.Int (List.length o.added));
              ( "plan_drift",
                Json.Int
                  (List.fold_left
                     (fun acc (_, cs) -> acc + List.length cs)
                     0 o.plan_drift) );
            ] );
      ]

  let value_text v =
    if Float.is_nan v then "-"
    else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.3f" v

  let pp_cell ppf c =
    Format.fprintf ppf "%-12s %-12s %-25s %12s -> %-12s %s%s" c.cmodel c.cmanager
      (c.metric
      ^ if c.wall_clock then " (wall)" else if c.informational then " (info)" else "")
      (value_text c.base) (value_text c.cand)
      (verdict_to_string c.verdict)
      (if c.wall_clock && c.tolerance > 0.0 then
         Printf.sprintf " (tolerance %.3f ms)" c.tolerance
       else "")

  let pp_outcome ?(all = false) ppf o =
    let interesting =
      List.filter (fun c -> all || c.verdict <> Unchanged) o.cells
    in
    Format.fprintf ppf "@[<v>";
    if interesting = [] && o.missing = [] && o.added = [] && o.plan_drift = [] then
      Format.fprintf ppf "no changes: %d cells identical or within noise@,"
        (List.length o.cells)
    else begin
      List.iter (fun c -> Format.fprintf ppf "%a@," pp_cell c) interesting;
      List.iter
        (fun (m, g) -> Format.fprintf ppf "%-12s %-12s row missing from candidate@," m g)
        o.missing;
      List.iter
        (fun (m, g) -> Format.fprintf ppf "%-12s %-12s row added in candidate@," m g)
        o.added;
      (* The plan-level explanation of the metric drift above: which
         placements, cut values or levels actually moved. *)
      List.iter
        (fun ((m, g), changes) ->
          Format.fprintf ppf "%-12s %-12s plan drift (%d structural changes):@," m g
            (List.length changes);
          List.iter
            (fun c -> Format.fprintf ppf "  %a@," Explain.pp_change c)
            changes)
        o.plan_drift
    end;
    let count v = List.length (List.filter (fun c -> c.verdict = v) o.cells) in
    Format.fprintf ppf
      "%d cells: %d unchanged, %d improved, %d regressed, %d within-noise, %d \
       incomparable%s%s@]"
      (List.length o.cells) (count Unchanged) (count Improved) (count Regressed)
      (count Within_noise) (count Incomparable)
      (if o.missing <> [] then Printf.sprintf ", %d missing" (List.length o.missing)
       else "")
      (if o.added <> [] then Printf.sprintf ", %d added" (List.length o.added) else "")
end

(* Rule-based health evaluation over a finished run's metrics registry
   and log records: each rule compares one aggregate against a threshold
   and the verdict is healthy iff no rule fails.  Rules that need signals
   the run did not produce (no traced execution, no chaos campaign) stay
   applicable=false and pass vacuously, so one evaluator serves compile,
   trace and chaos flights alike. *)
module Health = struct
  type severity = Pass | Warn | Fail

  let severity_name = function Pass -> "pass" | Warn -> "warn" | Fail -> "fail"

  type thresholds = {
    headroom_floor_bits : float;
    recovery_rate_floor : float;
    slo_attainment_floor : float;
    max_fallbacks : int;
    max_refutations : int;
    gc_major_words_ceiling : float;
  }

  let default_thresholds =
    {
      headroom_floor_bits = 4.0;
      recovery_rate_floor = 0.9;
      slo_attainment_floor = 0.95;
      max_fallbacks = 0;
      max_refutations = 0;
      gc_major_words_ceiling = 2e9;
    }

  type check = {
    rule : string;
    severity : severity;
    applicable : bool;
    value : float;  (* NaN when not applicable *)
    threshold : float;
    detail : string;
  }

  type verdict = { healthy : bool; checks : check list }

  let evaluate ?(thresholds = default_thresholds) ?(records = []) ?bench m =
    let counters = Metrics.all_counters m in
    let gauges = Metrics.all_gauges m in
    let hists = Metrics.all_histograms m in
    let csum name =
      List.fold_left (fun acc (n, _, v) -> if n = name then acc + v else acc) 0 counters
    in
    let gsum name =
      List.fold_left
        (fun acc (n, _, v) -> if n = name then acc +. v else acc)
        0.0 gauges
    in
    let hfold name f init =
      List.fold_left
        (fun acc (n, _, s) -> if n = name && s.Metrics.hcount > 0 then f acc s else acc)
        init hists
    in
    let check rule ~applicable ~warn_only ~ok ~value ~threshold detail =
      let severity =
        if (not applicable) || ok then Pass else if warn_only then Warn else Fail
      in
      { rule; severity; applicable; value; threshold; detail }
    in
    let headroom =
      let v = hfold "noise_headroom_bits" (fun acc s -> Float.min acc s.Metrics.hmin) infinity in
      let applicable = v < infinity in
      check "noise-headroom" ~applicable ~warn_only:false
        ~ok:(v >= thresholds.headroom_floor_bits)
        ~value:(if applicable then v else nan)
        ~threshold:thresholds.headroom_floor_bits
        (if applicable then
           Printf.sprintf "minimum traced noise headroom %.1f bits (floor %.1f)" v
             thresholds.headroom_floor_bits
         else "no traced noise-headroom observations")
    in
    let recovery =
      let faulted = csum "chaos_faulted_total" in
      let recovered = csum "chaos_recovered_total" in
      let applicable = faulted > 0 in
      let rate =
        if applicable then float_of_int recovered /. float_of_int faulted else nan
      in
      check "recovery-rate" ~applicable ~warn_only:false
        ~ok:((not applicable) || rate >= thresholds.recovery_rate_floor)
        ~value:rate ~threshold:thresholds.recovery_rate_floor
        (if applicable then
           Printf.sprintf "%d/%d faulted trials recovered (rate %.3f, floor %.3f)"
             recovered faulted rate thresholds.recovery_rate_floor
         else "no faulted chaos trials")
    in
    let slo =
      (* Serving campaigns fold [serve_admitted_total] /
         [serve_completed_total] into the registry; attainment is the
         fraction of admitted requests completed within their deadline
         (shed requests never count against the SLO — shedding is the
         intended response to overload, missing deadlines is not). *)
      let admitted = csum "serve_admitted_total" in
      let completed = csum "serve_completed_total" in
      let applicable = admitted > 0 in
      let rate =
        if applicable then float_of_int completed /. float_of_int admitted else nan
      in
      check "slo-attainment" ~applicable ~warn_only:false
        ~ok:((not applicable) || rate >= thresholds.slo_attainment_floor)
        ~value:rate ~threshold:thresholds.slo_attainment_floor
        (if applicable then
           Printf.sprintf
             "%d/%d admitted requests completed in SLO (attainment %.3f, floor %.3f)"
             completed admitted rate thresholds.slo_attainment_floor
         else "no admitted serving requests")
    in
    let fallbacks =
      let v = csum "planner_fallbacks_total" in
      check "planner-fallbacks" ~applicable:true ~warn_only:false
        ~ok:(v <= thresholds.max_fallbacks)
        ~value:(float_of_int v)
        ~threshold:(float_of_int thresholds.max_fallbacks)
        (Printf.sprintf "%d planner tier fallbacks (max %d)" v thresholds.max_fallbacks)
    in
    let refutations =
      let metric = csum "plan_refutations_total" + csum "plan_cache_refutations_total" in
      let logged =
        List.length
          (List.filter
             (fun r ->
               r.Log.level = Log.Error
               && (r.Log.event = "certify.refuted" || r.Log.event = "plan_cache.refuted"))
             records)
      in
      let v = max metric logged in
      check "refutations" ~applicable:true ~warn_only:false
        ~ok:(v <= thresholds.max_refutations)
        ~value:(float_of_int v)
        ~threshold:(float_of_int thresholds.max_refutations)
        (Printf.sprintf "%d certificate/plan-cache refutations (max %d)" v
           thresholds.max_refutations)
    in
    let errors =
      let v =
        List.length (List.filter (fun r -> r.Log.level = Log.Error) records)
      in
      check "error-logs" ~applicable:(records <> []) ~warn_only:true ~ok:(v = 0)
        ~value:(float_of_int v) ~threshold:0.0
        (Printf.sprintf "%d error-level log records" v)
    in
    let gc =
      let applicable = List.exists (fun (n, _, _) -> n = "gc_major_words") hists in
      let v = hfold "gc_major_words" (fun acc s -> acc +. s.Metrics.hsum) 0.0 in
      check "gc-pressure" ~applicable ~warn_only:false
        ~ok:(v <= thresholds.gc_major_words_ceiling)
        ~value:(if applicable then v else nan)
        ~threshold:thresholds.gc_major_words_ceiling
        (if applicable then
           Printf.sprintf "%.0f major-heap words promoted (ceiling %.0f)" v
             thresholds.gc_major_words_ceiling
         else "no GC telemetry recorded")
    in
    let rings =
      let v = gsum "trace_dropped_events" +. gsum "log_dropped_records" in
      check "ring-overflow" ~applicable:true ~warn_only:true ~ok:(v = 0.0) ~value:v
        ~threshold:0.0
        (Printf.sprintf "%.0f trace events / log records lost to ring wrap-around" v)
    in
    let wall =
      match bench with
      | None -> []
      | Some (base, cand) -> (
          match Bench_diff.diff ~base ~cand () with
          | Error msg ->
              [
                check "wallclock-band" ~applicable:true ~warn_only:false ~ok:false
                  ~value:nan ~threshold:0.0 ("bench diff failed: " ^ msg);
              ]
          | Ok o ->
              let regs =
                List.filter
                  (fun c ->
                    c.Bench_diff.wall_clock && c.Bench_diff.verdict = Bench_diff.Regressed)
                  o.Bench_diff.cells
              in
              [
                check "wallclock-band" ~applicable:true ~warn_only:false ~ok:(regs = [])
                  ~value:(float_of_int (List.length regs))
                  ~threshold:0.0
                  (if regs = [] then "all wall-clock cells within the noise band"
                   else
                     String.concat "; "
                       (List.map
                          (fun c ->
                            Printf.sprintf "%s/%s %s %.3f -> %.3f (tolerance %.3f ms)"
                              c.Bench_diff.cmodel c.Bench_diff.cmanager
                              c.Bench_diff.metric c.Bench_diff.base c.Bench_diff.cand
                              c.Bench_diff.tolerance)
                          regs));
              ])
    in
    let checks =
      [ headroom; recovery; slo; fallbacks; refutations; errors; gc; rings ] @ wall
    in
    { healthy = not (List.exists (fun c -> c.severity = Fail) checks); checks }

  let exit_code v = if v.healthy then 0 else 2

  let check_to_json c =
    Json.Obj
      [
        ("rule", Json.String c.rule);
        ("severity", Json.String (severity_name c.severity));
        ("applicable", Json.Bool c.applicable);
        ("value", Json.Float c.value);
        ("threshold", Json.Float c.threshold);
        ("detail", Json.String c.detail);
      ]

  let to_json v =
    Json.Obj
      [
        ("healthy", Json.Bool v.healthy);
        ("checks", Json.List (List.map check_to_json v.checks));
      ]

  let pp ppf v =
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun c ->
        Format.fprintf ppf "%-5s %-18s %s%s@,"
          (String.uppercase_ascii (severity_name c.severity))
          c.rule c.detail
          (if c.applicable then "" else " (not applicable)"))
      v.checks;
    Format.fprintf ppf "verdict: %s@]" (if v.healthy then "healthy" else "UNHEALTHY")
end

(* Profile spans in the same Chrome trace-event dialect, so one Perfetto
   timeline can hold the compile pipeline (one pid) next to the simulated
   execution (another). *)
let profile_chrome_events ?(pid = 0) ?(name = "resbm compile") p =
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  meta
  :: List.map
       (fun (s : Profile.span) ->
         Json.Obj
           [
             ("name", Json.String s.name);
             ("cat", Json.String "compile");
             ("ph", Json.String "X");
             ("ts", Json.Float (Trace.usec s.start_ms));
             ("dur", Json.Float (Trace.usec s.dur_ms));
             ("pid", Json.Int pid);
             ("tid", Json.Int 0);
             ("args", Json.Obj [ ("depth", Json.Int s.depth) ]);
           ])
       (Profile.spans p)

let chrome_trace events =
  Json.Obj [ ("traceEvents", Json.List events); ("displayTimeUnit", Json.String "ms") ]

(* Ambient state is domain-local: a freshly spawned worker domain sees
   None for all three handles, so helpers are silent there unless the
   work-pool explicitly re-installs the parent's handles (Par does this
   for metrics, and gives each worker its own profile to merge later).
   Within one domain the save/restore discipline is unchanged. *)
let current_profile : Profile.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get current_profile

let with_profile p f =
  let saved = Domain.DLS.get current_profile in
  Domain.DLS.set current_profile (Some p);
  Fun.protect f ~finally:(fun () -> Domain.DLS.set current_profile saved)

let incr ?by name =
  match current () with Some p -> Profile.incr ?by p name | None -> ()

let observe name v =
  match current () with Some p -> Profile.observe p name v | None -> ()

let span name f = match current () with Some p -> Profile.span p name f | None -> f ()

let current_trace_key : Trace.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current_trace () = Domain.DLS.get current_trace_key

let with_trace tr f =
  let saved = Domain.DLS.get current_trace_key in
  Domain.DLS.set current_trace_key (Some tr);
  Fun.protect f ~finally:(fun () -> Domain.DLS.set current_trace_key saved)

let trace_instant ~name ?node ?detail () =
  match current_trace () with
  | Some tr -> Trace.instant tr ~name ?node ?detail ()
  | None -> ()

let current_metrics_key : Metrics.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_metrics () = Domain.DLS.get current_metrics_key

let with_metrics m f =
  let saved = Domain.DLS.get current_metrics_key in
  Domain.DLS.set current_metrics_key (Some m);
  Fun.protect f ~finally:(fun () -> Domain.DLS.set current_metrics_key saved)

let metric_incr ?by ?labels name =
  match current_metrics () with
  | Some m -> Metrics.incr ?by ?labels m name
  | None -> ()

let metric_observe ?labels name v =
  match current_metrics () with
  | Some m -> Metrics.observe ?labels m name v
  | None -> ()

let metric_set ?labels name v =
  match current_metrics () with
  | Some m -> Metrics.set ?labels m name v
  | None -> ()

(* --- ambient structured logging ------------------------------------------ *)

let current_log_key : Log.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current_log () = Domain.DLS.get current_log_key

let with_log sink f =
  let saved = Domain.DLS.get current_log_key in
  Domain.DLS.set current_log_key (Some sink);
  Fun.protect f ~finally:(fun () -> Domain.DLS.set current_log_key saved)

(* Ambient log context: merged, never replaced — entering a pass inside a
   compile keeps the compile id.  When no sink is installed the context
   is not even read, so un-logged callers pay one option check. *)
type log_ctx = { lc_compile_id : int; lc_pass : string; lc_region : int; lc_node : int }

let no_log_ctx = { lc_compile_id = -1; lc_pass = ""; lc_region = -1; lc_node = -1 }

let current_log_ctx_key : log_ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () -> no_log_ctx)

let with_log_ctx ?compile_id ?pass ?region ?node f =
  match Domain.DLS.get current_log_key with
  | None -> f ()
  | Some _ ->
      let saved = Domain.DLS.get current_log_ctx_key in
      Domain.DLS.set current_log_ctx_key
        {
          lc_compile_id = Option.value compile_id ~default:saved.lc_compile_id;
          lc_pass = Option.value pass ~default:saved.lc_pass;
          lc_region = Option.value region ~default:saved.lc_region;
          lc_node = Option.value node ~default:saved.lc_node;
        };
      Fun.protect f ~finally:(fun () -> Domain.DLS.set current_log_ctx_key saved)

let log ~level ~event ?(msg = "") ?fields () =
  match Domain.DLS.get current_log_key with
  | None -> ()
  | Some sink ->
      let ctx = Domain.DLS.get current_log_ctx_key in
      let sim_ms = Option.map Trace.clock_ms (current_trace ()) in
      Log.record sink ~level ~event ~msg ?sim_ms ~compile_id:ctx.lc_compile_id
        ~pass:ctx.lc_pass ~region:ctx.lc_region ~node:ctx.lc_node ?fields ()

let log_debug ~event ?fields msg = log ~level:Log.Debug ~event ~msg ?fields ()
let log_info ~event ?fields msg = log ~level:Log.Info ~event ~msg ?fields ()
let log_warn ~event ?fields msg = log ~level:Log.Warn ~event ~msg ?fields ()
let log_error ~event ?fields msg = log ~level:Log.Error ~event ~msg ?fields ()

(* --- ambient runtime telemetry ------------------------------------------- *)

let current_rt_key : Rt.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let current_rt () = Domain.DLS.get current_rt_key

let with_rt rt f =
  let saved = Domain.DLS.get current_rt_key in
  Domain.DLS.set current_rt_key (Some rt);
  Fun.protect f ~finally:(fun () -> Domain.DLS.set current_rt_key saved)

(* A profile span that additionally publishes the phase's GC pressure
   into the ambient metrics registry.  The deltas go to Metrics only —
   never to the Profile — so compile reports stay bit-identical whether
   or not GC telemetry is being collected. *)
let gc_span name f =
  match current_metrics () with
  | None -> span name f
  | Some m ->
      let labels = [ ("phase", name) ] in
      let r, d = Rt.gc_sample (fun () -> span name f) in
      Metrics.observe ~labels m "gc_minor_words" d.Rt.minor_words;
      Metrics.observe ~labels m "gc_major_words" d.Rt.major_words;
      Metrics.incr ~by:d.Rt.minor_collections ~labels m "gc_minor_collections_total";
      Metrics.incr ~by:d.Rt.major_collections ~labels m "gc_major_collections_total";
      Metrics.set m "gc_top_heap_words" (float_of_int d.Rt.top_heap_words);
      r
