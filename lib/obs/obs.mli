(** Lightweight observability for the compile pipeline.

    Three primitives — wall-clock {e spans}, monotonic {e counters} and
    float {e series} — collected into a {!Profile.t} and serialised as
    JSON with no external dependencies.  The compiler driver installs a
    profile as the ambient collector for the dynamic extent of one
    compile ({!with_profile}); instrumentation sites deep in the pipeline
    (min-cut engine, planners) record through the module-level
    conveniences, which are no-ops when no profile is installed, so
    un-profiled callers pay only an option check. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialisation.  Floats use the shortest representation that
      round-trips; non-finite floats become [null]. *)

  val pp : Format.formatter -> t -> unit

  val of_string : string -> (t, string) result
  (** Strict parser for the serialisation above (standard JSON; [\uXXXX]
      escapes decode to UTF-8). *)

  val member : string -> t -> t option
  (** [member key (Obj fields)] looks up [key]; [None] on non-objects. *)
end

module Timer : sig
  type t

  val start : unit -> t
  val elapsed_ms : t -> float
end

module Profile : sig
  type span = { name : string; depth : int; start_ms : float; dur_ms : float }
  (** A completed timed section.  [start_ms] is relative to profile
      creation; [depth] is the nesting depth at entry (0 = top level). *)

  type t

  val create : unit -> t

  val span : t -> string -> (unit -> 'a) -> 'a
  (** Time [f], recording a span even when [f] raises.  Nests. *)

  val incr : ?by:int -> t -> string -> unit
  val counter : t -> string -> int
  (** Current value of a counter; 0 when never incremented. *)

  val observe : t -> string -> float -> unit
  (** Append one observation to a named series. *)

  val series : t -> string -> float list
  (** Observations of one series in insertion order; [[]] when absent. *)

  val spans : t -> span list
  (** Completed spans in chronological (start time) order. *)

  val counters : t -> (string * int) list
  (** All counters, sorted by name. *)

  val all_series : t -> (string * float list) list
  (** All series, sorted by name, observations in insertion order. *)

  val to_json : t -> Json.t
  (** [{"spans": [{name, depth, start_ms, dur_ms}],
       "counters": {name: int},
       "series": {name: {count, sum, min, max, values}}}] *)

  val pp : Format.formatter -> t -> unit
  (** Top-level phase durations and counters, one per line. *)
end

(** Runtime execution tracing — a ring-buffered flight recorder of per-op
    CKKS events on a {e simulated} timeline.

    The simulated evaluator ({!Ckks.Evaluator}) records the scheme-state
    facts of every Table 1 operation (level, scale, size, noise
    before/after); the DFG interpreter supplies attribution (node id,
    region id, loop frequency, freq-weighted Table 2 cost) through a
    mutable {!Trace.ctx} installed before each node executes.  The clock
    advances by each op's cost, so exported traces show where the modelled
    latency goes.  When the buffer wraps, the oldest events are dropped —
    the tail of a crashing run (e.g. the Figure 1a [Fhe_error]) always
    survives. *)
module Trace : sig
  type op_event = {
    seq : int;  (** Global event sequence number (0-based). *)
    op : string;  (** Evaluator operation, e.g. ["mul_cc"]. *)
    node : int;  (** DFG node id, [-1] outside an interpreter run. *)
    region : int;  (** Region id, [-1] when unattributed. *)
    freq : int;  (** Loop frequency charged for the node. *)
    level : int;  (** Result level. *)
    scale_bits : int;  (** Result scale, bits. *)
    size : int;  (** Result ciphertext size (3 before relin). *)
    noise_before : float;  (** Worst operand noise (absolute RMS). *)
    noise_after : float;  (** Result noise (absolute RMS). *)
    start_ms : float;  (** Simulated start time. *)
    dur_ms : float;  (** Freq-weighted simulated cost. *)
  }

  type instant = {
    iseq : int;
    iname : string;  (** ["rescale"], ["modswitch"], ["bootstrap"], ["fhe_error"]. *)
    inode : int;
    iregion : int;
    its_ms : float;
    detail : (string * Json.t) list;
  }

  type event = Op of op_event | Instant of instant

  type ctx = { node : int; region : int; freq : int; cost_ms : float }
  (** Attribution installed by the interpreter for the node being executed.
      [cost_ms] (freq-weighted {!Fhe_ir.Latency.node_cost}) overrides the
      evaluator's own per-op cost estimate. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Ring buffer of [capacity] events (default 65536); older events are
      overwritten once full. *)

  val set_ctx : t -> ctx option -> unit

  val record :
    t ->
    op:string ->
    ?cost_ms:float ->
    ?noise_before:float ->
    level:int ->
    scale_bits:int ->
    size:int ->
    noise:float ->
    unit ->
    unit
  (** Record one op event and advance the simulated clock.  [cost_ms] is
      used only when no {!ctx} is installed. *)

  val instant : t -> name:string -> ?node:int -> ?detail:(string * Json.t) list -> unit -> unit
  (** Record an instant marker at the current clock; [node] defaults to the
      ambient {!ctx}'s node. *)

  val events : t -> event list
  (** Surviving events, chronological. *)

  val op_events : t -> op_event list

  val recorded : t -> int
  (** Total events ever recorded, including overwritten ones. *)

  val dropped : t -> int
  (** Events lost to ring-buffer wrap-around. *)

  val clock_ms : t -> float
  (** Current simulated time — equals the accumulated cost of all recorded
      ops. *)

  val headroom_bits : float -> float
  (** [-log2 err] clamped to [[0, 200]]: bits of precision left before the
      absolute error reaches magnitude 1. *)

  val chrome_events : ?pid:int -> ?name:string -> t -> Json.t list
  (** Chrome trace-event objects (Perfetto-loadable): ops as ["X"] duration
      events on per-region threads, [noise_headroom_bits] / [level] /
      [scale_bits] counter tracks, instants as ["i"] markers, plus
      process/thread metadata.  Wrap with {!chrome_trace}. *)

  val event_to_json : event -> Json.t

  val to_jsonl : t -> string list
  (** One compact JSON object per event, chronological. *)
end

val profile_chrome_events : ?pid:int -> ?name:string -> Profile.t -> Json.t list
(** Compile-pipeline spans in the same Chrome trace-event dialect, so
    compile (one pid) and execution (another) land in one Perfetto
    timeline. *)

val chrome_trace : Json.t list -> Json.t
(** Wrap event objects as [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val with_profile : Profile.t -> (unit -> 'a) -> 'a
(** Install [p] as the ambient profile for the extent of the callback
    (restoring the previous one after, also on exceptions). *)

val current : unit -> Profile.t option

val incr : ?by:int -> string -> unit
(** Increment a counter on the ambient profile; no-op when none. *)

val observe : string -> float -> unit
(** Append to a series on the ambient profile; no-op when none. *)

val span : string -> (unit -> 'a) -> 'a
(** Time [f] as a span on the ambient profile; just runs [f] when none. *)

val with_trace : Trace.t -> (unit -> 'a) -> 'a
(** Install [tr] as the ambient trace for the extent of the callback
    (restoring the previous one after, also on exceptions). *)

val current_trace : unit -> Trace.t option
(** The ambient trace, if any.  Instrumentation sites match on this so the
    trace-off path pays exactly one option check and allocates nothing. *)

val trace_instant :
  name:string -> ?node:int -> ?detail:(string * Json.t) list -> unit -> unit
(** Record an instant on the ambient trace; no-op when none. *)
