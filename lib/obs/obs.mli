(** Lightweight observability for the compile pipeline.

    Three primitives — wall-clock {e spans}, monotonic {e counters} and
    float {e series} — collected into a {!Profile.t} and serialised as
    JSON with no external dependencies.  The compiler driver installs a
    profile as the ambient collector for the dynamic extent of one
    compile ({!with_profile}); instrumentation sites deep in the pipeline
    (min-cut engine, planners) record through the module-level
    conveniences, which are no-ops when no profile is installed, so
    un-profiled callers pay only an option check. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialisation.  Floats use the shortest representation that
      round-trips; non-finite floats become [null]. *)

  val pp : Format.formatter -> t -> unit

  val of_string : string -> (t, string) result
  (** Strict parser for the serialisation above (standard JSON; [\uXXXX]
      escapes decode to UTF-8). *)

  val member : string -> t -> t option
  (** [member key (Obj fields)] looks up [key]; [None] on non-objects. *)
end

module Timer : sig
  type t

  val start : unit -> t
  val elapsed_ms : t -> float
end

module Profile : sig
  type span = { name : string; depth : int; start_ms : float; dur_ms : float }
  (** A completed timed section.  [start_ms] is relative to profile
      creation; [depth] is the nesting depth at entry (0 = top level). *)

  type t

  val create : unit -> t

  val span : t -> string -> (unit -> 'a) -> 'a
  (** Time [f], recording a span even when [f] raises.  Nests. *)

  val incr : ?by:int -> t -> string -> unit
  val counter : t -> string -> int
  (** Current value of a counter; 0 when never incremented. *)

  val observe : t -> string -> float -> unit
  (** Append one observation to a named series. *)

  val series : t -> string -> float list
  (** Observations of one series in insertion order; [[]] when absent. *)

  val spans : t -> span list
  (** Completed spans in chronological (start time) order. *)

  val counters : t -> (string * int) list
  (** All counters, sorted by name. *)

  val all_series : t -> (string * float list) list
  (** All series, sorted by name, observations in insertion order. *)

  val to_json : t -> Json.t
  (** [{"spans": [{name, depth, start_ms, dur_ms}],
       "counters": {name: int},
       "series": {name: {count, sum, min, max, values}}}] *)

  val pp : Format.formatter -> t -> unit
  (** Top-level phase durations and counters, one per line. *)

  val merge : into:t -> t -> unit
  (** Fold a worker domain's profile into [into]: spans re-anchored to
      [into]'s epoch, counters and series merged by name.  Only call
      after the worker has joined — neither side may be mutating. *)
end

(** Runtime execution tracing — a ring-buffered flight recorder of per-op
    CKKS events on a {e simulated} timeline.

    The simulated evaluator ({!Ckks.Evaluator}) records the scheme-state
    facts of every Table 1 operation (level, scale, size, noise
    before/after); the DFG interpreter supplies attribution (node id,
    region id, loop frequency, freq-weighted Table 2 cost) through a
    mutable {!Trace.ctx} installed before each node executes.  The clock
    advances by each op's cost, so exported traces show where the modelled
    latency goes.  When the buffer wraps, the oldest events are dropped —
    the tail of a crashing run (e.g. the Figure 1a [Fhe_error]) always
    survives. *)
module Trace : sig
  type op_event = {
    seq : int;  (** Global event sequence number (0-based). *)
    op : string;  (** Evaluator operation, e.g. ["mul_cc"]. *)
    node : int;  (** DFG node id, [-1] outside an interpreter run. *)
    region : int;  (** Region id, [-1] when unattributed. *)
    freq : int;  (** Loop frequency charged for the node. *)
    level : int;  (** Result level. *)
    scale_bits : int;  (** Result scale, bits. *)
    size : int;  (** Result ciphertext size (3 before relin). *)
    noise_before : float;  (** Worst operand noise (absolute RMS). *)
    noise_after : float;  (** Result noise (absolute RMS). *)
    start_ms : float;  (** Simulated start time. *)
    dur_ms : float;  (** Freq-weighted simulated cost. *)
  }

  type instant = {
    iseq : int;
    iname : string;  (** ["rescale"], ["modswitch"], ["bootstrap"], ["fhe_error"]. *)
    inode : int;
    iregion : int;
    its_ms : float;
    detail : (string * Json.t) list;
  }

  type event = Op of op_event | Instant of instant

  type ctx = { node : int; region : int; freq : int; cost_ms : float }
  (** Attribution installed by the interpreter for the node being executed.
      [cost_ms] (freq-weighted {!Fhe_ir.Latency.node_cost}) overrides the
      evaluator's own per-op cost estimate. *)

  type t

  val create : ?capacity:int -> unit -> t
  (** Ring buffer of [capacity] events (default 65536); older events are
      overwritten once full. *)

  val set_ctx : t -> ctx option -> unit

  val record :
    t ->
    op:string ->
    ?cost_ms:float ->
    ?noise_before:float ->
    level:int ->
    scale_bits:int ->
    size:int ->
    noise:float ->
    unit ->
    unit
  (** Record one op event and advance the simulated clock.  [cost_ms] is
      used only when no {!ctx} is installed. *)

  val instant : t -> name:string -> ?node:int -> ?detail:(string * Json.t) list -> unit -> unit
  (** Record an instant marker at the current clock; [node] defaults to the
      ambient {!ctx}'s node. *)

  val events : t -> event list
  (** Surviving events, chronological. *)

  val op_events : t -> op_event list

  val recorded : t -> int
  (** Total events ever recorded, including overwritten ones. *)

  val dropped : t -> int
  (** Events lost to ring-buffer wrap-around. *)

  val clock_ms : t -> float
  (** Current simulated time — equals the accumulated cost of all recorded
      ops. *)

  val advance_clock : t -> float -> unit
  (** Move the simulated clock forward by [ms] without recording an event
      — recovery charges retry backoff this way so subsequent events land
      at the right simulated time. *)

  val headroom_bits : float -> float
  (** [-log2 err] clamped to [[0, 200]]: bits of precision left before the
      absolute error reaches magnitude 1. *)

  val chrome_events : ?pid:int -> ?name:string -> t -> Json.t list
  (** Chrome trace-event objects (Perfetto-loadable): ops as ["X"] duration
      events on per-region threads, [noise_headroom_bits] / [level] /
      [scale_bits] counter tracks, instants as ["i"] markers, plus
      process/thread metadata.  Wrap with {!chrome_trace}. *)

  val event_to_json : event -> Json.t

  val to_jsonl : t -> string list
  (** One compact JSON object per event, chronological. *)
end

(** Multi-trial measurement statistics.  Wall-clock timings are noisy;
    everything here is deterministic given the input sample and the seed
    (the bootstrap confidence interval uses its own splitmix64 stream), so
    two runs over the same data produce identical summaries. *)
module Stat : sig
  val median : float list -> float
  (** Midpoint-averaged median; [nan] on the empty list. *)

  val mean : float list -> float

  val mad : ?center:float -> float list -> float
  (** Median absolute deviation around [center] (default: the median).
      Unscaled — a tolerance band, not a sigma estimate. *)

  type summary = {
    trials : int;  (** Retained measurements (excludes warmup). *)
    warmup : int;  (** Discarded leading runs. *)
    mean : float;
    median : float;
    mad : float;
    min : float;
    max : float;
    ci95 : float * float;  (** Seeded percentile-bootstrap 95% CI of the median. *)
    values : float list;  (** The retained measurements, in run order. *)
  }

  val summarise : ?seed:int -> ?resamples:int -> ?warmup:int -> float list -> summary
  (** Summarise an existing sample.  [resamples] (default 200) bootstrap
      rounds seeded by [seed] (default 0x5EED); [warmup] is recorded in the
      summary but no values are dropped. *)

  val sample :
    ?warmup:int -> ?seed:int -> ?resamples:int -> trials:int -> (unit -> float) -> summary
  (** Run [f] [warmup] (default 1) + [trials] times and summarise the
      values it returns (e.g. a compile's self-reported wall time).
      Warmup runs are discarded.  Raises [Invalid_argument] when
      [trials < 1]. *)

  val time :
    ?warmup:int -> ?seed:int -> ?resamples:int -> trials:int -> (unit -> unit) -> summary
  (** Like {!sample} but measures each call of [f] with {!Timer}. *)

  val to_json : summary -> Json.t
  val of_json : Json.t -> (summary, string) result
end

(** Leveled structured logging — a ring-buffered flight recorder of log
    records, the narrative companion to {!Trace}'s op events.

    Records carry automatic context (compile id, pass, region, node,
    emitting domain) filled in by the ambient helpers ({!with_log},
    {!with_log_ctx}, {!log_info} …), free-form structured fields, and a
    simulated-clock stamp when a trace was ambient at emission time — so
    a record emitted mid-execution lands as an instant on the execution
    timeline, correlated with the op spans around it.  The sink is
    mutex-protected and shared with parallel-planner worker domains the
    same way the metrics registry is. *)
module Log : sig
  type level = Debug | Info | Warn | Error

  val level_name : level -> string
  (** ["debug"], ["info"], ["warn"], ["error"]. *)

  val level_of_name : string -> level option

  type record = {
    lseq : int;  (** Global record sequence number (0-based). *)
    level : level;
    event : string;  (** Stable machine-readable id, e.g. ["plan_cache.hit"]. *)
    msg : string;  (** Human-readable text; [""] when absent. *)
    ts_ms : float;  (** Host wall clock, relative to sink creation. *)
    sim_ms : float option;  (** Simulated trace clock at emission, if traced. *)
    compile_id : int;  (** [-1] outside any compile. *)
    pass : string;  (** [""] when no pass context. *)
    region : int;  (** [-1] when unattributed. *)
    node : int;  (** [-1] when unattributed. *)
    domain : int;  (** Emitting domain id. *)
    fields : (string * Json.t) list;  (** Free-form structured payload. *)
  }

  type t

  val create : ?capacity:int -> ?min_level:level -> unit -> t
  (** Ring buffer of [capacity] records (default 8192); older records are
      overwritten once full.  Records below [min_level] (default
      {!Debug}) are counted in {!filtered} and not stored.  Raises
      [Invalid_argument] when [capacity < 1]. *)

  val record :
    t ->
    level:level ->
    event:string ->
    ?msg:string ->
    ?sim_ms:float ->
    ?compile_id:int ->
    ?pass:string ->
    ?region:int ->
    ?node:int ->
    ?fields:(string * Json.t) list ->
    unit ->
    unit
  (** Append one record.  Thread-safe; prefer the ambient {!log_info} /
      {!log_warn} helpers, which attach context automatically. *)

  val records : t -> record list
  (** Surviving records, chronological. *)

  val recorded : t -> int
  (** Total records ever kept, including overwritten ones. *)

  val dropped : t -> int
  (** Records lost to ring-buffer wrap-around. *)

  val filtered : t -> int
  (** Records rejected below [min_level]. *)

  val record_to_json : record -> Json.t
  val record_of_json : Json.t -> (record, string) result

  val to_jsonl : t -> string list
  (** One compact JSON object per surviving record, chronological.
      Round-trips exactly through {!of_jsonl}. *)

  val of_jsonl : string list -> (record list, string) result
  (** Parse JSONL lines (blank lines skipped). *)

  val chrome_events : ?compile_pid:int -> ?exec_pid:int -> record list -> Json.t list
  (** Records as Perfetto ["i"] instants: a record with [sim_ms] lands on
      the execution process (default pid 1) at its simulated time on its
      region's thread; one without lands on the compile process (default
      pid 0) at its host timestamp.  Wrap with {!chrome_trace}. *)
end

(** Runtime telemetry: GC pressure deltas around a computation, and
    per-worker accounting for the parallel planner's domain pool,
    exported as one Perfetto track per worker domain. *)
module Rt : sig
  type gc_delta = {
    minor_words : float;
    major_words : float;
    minor_collections : int;
    major_collections : int;
    top_heap_words : int;  (** Absolute peak, not a delta. *)
  }

  val gc_sample : (unit -> 'a) -> 'a * gc_delta
  (** Run [f] between two [Gc.quick_stat] snapshots. *)

  type task_span = {
    t_index : int;  (** Task index within the pool run. *)
    t_start_ms : float;  (** Relative to pool start. *)
    t_dur_ms : float;
  }

  type worker = {
    w_id : int;  (** Slot in the pool, 0-based. *)
    w_domain : int;  (** OCaml domain id the worker ran on. *)
    w_tasks : int;
    w_busy_ms : float;
    w_idle_ms : float;  (** Pool wall time not spent inside tasks. *)
    w_queue_wait_ms : float;  (** Spawn-to-first-task latency. *)
    w_spans : task_span list;
  }

  type pool = {
    p_seq : int;
    p_label : string;
    p_jobs : int;
    p_tasks : int;
    p_start_ms : float;  (** Relative to collector creation. *)
    p_wall_ms : float;
    p_workers : worker list;
  }

  type t

  val create : unit -> t

  val now_ms : t -> float
  (** Milliseconds since collector creation. *)

  val record_pool :
    t -> label:string -> jobs:int -> tasks:int -> wall_ms:float -> worker list -> unit
  (** Append one completed pool run; called by {!Resbm.Par} after the
      workers have joined.  Thread-safe. *)

  val pools : t -> pool list
  (** Recorded pool runs, in completion order. *)

  val to_json : t -> Json.t

  val chrome_events : ?pid:int -> ?name:string -> t -> Json.t list
  (** One Perfetto thread per (pool, worker) on its own process (default
      pid 2), task spans as ["X"] events — gaps show idle workers.  [[]]
      when no pools were recorded.  Wrap with {!chrome_trace}. *)
end

(** Aggregate metrics: a registry of counters, gauges and log-bucketed
    histograms with quantile estimation, exposable as Prometheus text or
    JSON.  Histograms are constant space — log2-spaced buckets with
    half-step resolution covering ~1e-6 .. ~5e11 — and quantiles are
    interpolated inside the covering bucket, clamped to the exact observed
    min/max. *)
module Metrics : sig
  type labels = (string * string) list
  (** Label order is irrelevant; keys are canonicalised by sorting. *)

  type t

  val create : unit -> t
  val incr : ?by:int -> ?labels:labels -> t -> string -> unit
  val set : ?labels:labels -> t -> string -> float -> unit
  (** Gauge assignment. *)

  val observe : ?labels:labels -> t -> string -> float -> unit
  (** Record one histogram observation. *)

  val counter_value : ?labels:labels -> t -> string -> int
  (** 0 when never incremented. *)

  val gauge : ?labels:labels -> t -> string -> float option

  type hstats = {
    hcount : int;
    hsum : float;
    hmin : float;
    hmax : float;
    p50 : float;
    p90 : float;
    p99 : float;
  }

  val histogram : ?labels:labels -> t -> string -> hstats option
  (** Summary of one histogram; quantiles are [nan] when empty. *)

  val quantile : ?labels:labels -> t -> string -> float -> float option
  (** [quantile t name q] estimates the [q]-quantile ([0..1]); [None] for
      an unknown or empty histogram. *)

  val of_trace : ?into:t -> Trace.t -> t
  (** Fold a flight-recorded trace into per-op-kind and per-region latency
      and noise-headroom distributions ([trace_ops_total{op}],
      [op_latency_ms{op}], [region_latency_ms{region}],
      [noise_headroom_bits{op}], [trace_instants_total{kind}], plus
      [trace_clock_ms] / [trace_dropped_events] gauges). *)

  val of_profile : ?into:t -> Profile.t -> t
  (** Fold a compile profile: top-level phases into
      [compile_phase_ms{phase}], pipeline counters into
      [pipeline_events_total{counter}]. *)

  val all_counters : t -> (string * labels * int) list
  (** Every counter as (name, labels, value), sorted. *)

  val all_gauges : t -> (string * labels * float) list
  val all_histograms : t -> (string * labels * hstats) list

  val to_json : t -> Json.t
  (** Deterministically ordered; histogram entries carry count/sum/min/max,
      p50/p90/p99 and the non-empty cumulative buckets as [[le, count]]. *)

  val of_json : Json.t -> (t, string) result
  (** Rebuild a registry from its {!to_json} form — bucket indices are
      recovered from the serialised bounds, so
      [to_json (of_json (to_json m))] equals [to_json m].  Missing
      sections are tolerated (they load as empty). *)

  val to_prometheus : ?namespace:string -> t -> string
  (** Prometheus text exposition (default namespace ["resbm"]); metric and
      label names are sanitised, histograms expose [_bucket]/[_sum]/[_count]
      series with cumulative [le] labels ending at [+Inf]. *)
end

(** Generic explanation rendering: hierarchical cost waterfalls with
    deterministic top-k folding, a structural JSON diff, and a Perfetto
    overlay for diffs.  Pure presentation — the graph-aware producers
    (cost attribution, bootstrap rationale, plan digests) live in
    [Resbm.Explain] and feed this module, so any subsystem can reuse the
    same rendering. *)
module Explain : sig
  (** One attributed cost: a leaf at [group] / [bucket] / [label] in the
      hierarchy (e.g. region / op-kind / node). *)
  type row = { group : string; bucket : string; label : string; cost : float }

  type leaf = { leaf_label : string; leaf_cost : float }

  type bucket = {
    bucket_label : string;
    bucket_cost : float;
    bucket_count : int;
    leaves : leaf list;  (** Top-k leaves by cost. *)
    folded : int;  (** Leaves beyond the top-k, kept as a count... *)
    folded_cost : float;  (** ...and their summed cost, so nothing is dropped. *)
  }

  type group = {
    group_label : string;
    group_cost : float;
    group_count : int;
    buckets : bucket list;
  }

  type waterfall = {
    total : float;  (** The reference total costs are shown as a percent of. *)
    groups : group list;
    shares : (string * float) list;  (** Named headline shares (absolute). *)
  }

  val waterfall :
    ?top:int -> ?shares:(string * float) list -> total:float -> row list -> waterfall
  (** Deterministic fold of rows into a waterfall: groups, buckets and
      leaves ordered by descending cost (label as tie-break), the top
      [top] (default 5) leaves of each bucket kept individually and the
      rest folded into an explicit remainder — the waterfall always sums
      to the full attributed cost. *)

  val attributed : waterfall -> float
  (** Sum of all group costs (equals the sum over every leaf + remainder). *)

  val pp : ?title:string -> Format.formatter -> waterfall -> unit
  val to_json : waterfall -> Json.t

  (** One structural difference between two JSON documents. *)
  type change = {
    path : string list;
    before : Json.t option;  (** [None] = added in the candidate. *)
    after : Json.t option;  (** [None] = removed from the base. *)
  }

  val json_equal : Json.t -> Json.t -> bool
  (** Structural equality; [Int]/[Float] compare numerically, NaN equals
      NaN, object key order is irrelevant. *)

  val diff_json : Json.t -> Json.t -> change list
  (** Structural diff: objects align by key (order-insensitive), lists of
      equal length by index, everything else by {!json_equal}.  Empty iff
      the documents are structurally equal. *)

  val path_to_string : string list -> string
  val change_to_json : change -> Json.t
  val pp_change : Format.formatter -> change -> unit

  val perfetto_overlay : ?pid:int -> change list -> Json.t
  (** A Chrome/Perfetto trace with one instant event per change, loadable
      on top of an execution timeline (default pid 99 keeps the overlay on
      its own track). *)
end

(** Baseline regression gating over two bench JSON files: align rows by
    (model, manager), compare deterministic metrics exactly and wall-clock
    compile times within a MAD-derived noise band. *)
module Bench_diff : sig
  val schema_version : int
  (** The bench-file schema this build reads and writes. *)

  type row = {
    model : string;
    manager : string;
    metrics : (string * float) list;  (** Deterministic metric cells. *)
    compile : Stat.summary option;  (** Multi-trial wall-clock compile stats. *)
    warm : Stat.summary option;
        (** Warm (plan-cache hit) compile stats, when the bench recorded
            them ([compile_warm_stat]). *)
    digest : Json.t option;
        (** Structural plan digest ([plan_digest] cell field), when the
            bench recorded one.  Renumbering-stable (see [Resbm.Explain]);
            optional on both sides so old baselines diff cleanly. *)
  }

  type source = {
    version : int;
    git_rev : string;
    trials : int;
    l_max : int;
    rows : row list;
  }

  type verdict = Unchanged | Improved | Regressed | Within_noise | Incomparable

  val verdict_to_string : verdict -> string

  type cell = {
    cmodel : string;
    cmanager : string;
    metric : string;
    base : float;
    cand : float;
    wall_clock : bool;
    informational : bool;
        (** Reported but never gated (the {!informational_metrics} GC
            cells). *)
    tolerance : float;  (** 0 for exact comparisons. *)
    verdict : verdict;
  }

  type outcome = {
    cells : cell list;
    missing : (string * string) list;  (** Rows in base absent from candidate. *)
    added : (string * string) list;  (** Rows in candidate absent from base. *)
    plan_drift : ((string * string) * Explain.change list) list;
        (** Per (model, manager): structural plan-digest changes, computed
            when both sides carry a digest.  The plan-level explanation
            that accompanies a gated metric regression; non-empty drift
            fails the [`Changed] gate like any deterministic change. *)
  }

  val deterministic_metrics : (string * [ `Lower | `Higher ]) list
  (** The compared metrics and which direction counts as an improvement. *)

  val informational_metrics : string list
  (** GC cells sampled by the bench harness ([gc_minor_words],
      [gc_major_words], [gc_top_heap_words]): diffed when both sides
      carry them (missing on either side yields no cell, so old
      baselines diff cleanly), reported with [informational = true], and
      excluded from every gate. *)

  val load : string -> (source, string) result
  (** Parse a bench file's contents.  Refuses unversioned files, wrong
      [schema_version]s, and files that are not resbm bench output, each
      with a distinct diagnostic. *)

  val diff :
    ?noise_mult:float ->
    ?min_tolerance_ms:float ->
    ?warm_speedup_min:float ->
    base:source ->
    cand:source ->
    unit ->
    (outcome, string) result
  (** Compare candidate against base.  Deterministic metrics compare
      exactly (NaN on both sides is unchanged; NaN on one side is
      incomparable); compile medians — cold ([compile_ms]) and warm
      ([compile_warm_ms]) — compare within
      [max (noise_mult * (mad_base + mad_cand)) min_tolerance_ms]
      (defaults 4.0 and 0.5 ms).  When both candidate summaries exist, a
      non-wall-clock [warm_speedup] cell gates the plan-cache contract:
      the candidate's cold/warm median ratio must reach
      [warm_speedup_min] (default 5.0) or the cell is [Regressed].
      [Error] when the files' [l_max] differ. *)

  val deterministic_changes : outcome -> cell list
  val regressions : ?strict_wallclock:bool -> outcome -> cell list

  val exit_code :
    ?fail_on:[ `Changed | `Regressed | `Never ] -> ?strict_wallclock:bool -> outcome -> int
  (** 0 = pass, 2 = gate failure.  [`Changed] (default) fails on any
      deterministic drift — improvements included, since they invalidate
      the committed baseline — and on misaligned rows; [`Regressed] only on
      regressions/incomparable cells and misaligned rows.  Wall-clock cells
      participate only with [strict_wallclock]. *)

  val cell_to_json : cell -> Json.t
  val outcome_to_json : outcome -> Json.t

  val pp_outcome : ?all:bool -> Format.formatter -> outcome -> unit
  (** Changed cells (all cells with [all]) plus a one-line summary. *)
end

(** Rule-based health evaluation over a finished run's metrics registry
    and log records.  Each rule compares one aggregate against a
    threshold; the verdict is healthy iff no rule fails.  Rules whose
    signals the run did not produce (no traced execution, no chaos
    campaign, no GC telemetry) report [applicable = false] and pass
    vacuously, so one evaluator serves compile, trace and chaos flights
    alike.  Surfaced by the [resbm health] subcommand. *)
module Health : sig
  type severity = Pass | Warn | Fail

  val severity_name : severity -> string

  type thresholds = {
    headroom_floor_bits : float;
        (** Minimum traced noise headroom (default 4.0 bits). *)
    recovery_rate_floor : float;
        (** Minimum recovered/faulted chaos-trial ratio (default 0.9). *)
    slo_attainment_floor : float;
        (** Minimum completed/admitted serving-request ratio — requests
            finished within their deadline over requests admitted — read
            from the [serve_completed_total] / [serve_admitted_total]
            counters a serving campaign folds into the registry (default
            0.95; vacuous when nothing was admitted). *)
    max_fallbacks : int;  (** Planner tier fallbacks allowed (default 0). *)
    max_refutations : int;
        (** Certificate / plan-cache refutations allowed (default 0). *)
    gc_major_words_ceiling : float;
        (** Major-heap words promoted across all phases (default 2e9). *)
  }

  val default_thresholds : thresholds

  type check = {
    rule : string;
    severity : severity;
    applicable : bool;
    value : float;  (** NaN when not applicable. *)
    threshold : float;
    detail : string;
  }

  type verdict = { healthy : bool; checks : check list }

  val evaluate :
    ?thresholds:thresholds ->
    ?records:Log.record list ->
    ?bench:Bench_diff.source * Bench_diff.source ->
    Metrics.t ->
    verdict
  (** Run every rule.  [records] feed the refutation and error-log rules;
      [bench] (base, candidate) adds a wall-clock band rule reusing
      {!Bench_diff.diff}.  [Warn]-severity findings (error-level logs,
      ring overflow) never flip the verdict to unhealthy. *)

  val exit_code : verdict -> int
  (** 0 = healthy, 2 = unhealthy. *)

  val check_to_json : check -> Json.t
  val to_json : verdict -> Json.t

  val pp : Format.formatter -> verdict -> unit
  (** One line per check plus the verdict. *)
end

val profile_chrome_events : ?pid:int -> ?name:string -> Profile.t -> Json.t list
(** Compile-pipeline spans in the same Chrome trace-event dialect, so
    compile (one pid) and execution (another) land in one Perfetto
    timeline. *)

val chrome_trace : Json.t list -> Json.t
(** Wrap event objects as [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val with_profile : Profile.t -> (unit -> 'a) -> 'a
(** Install [p] as the ambient profile for the extent of the callback
    (restoring the previous one after, also on exceptions). *)

val current : unit -> Profile.t option

val incr : ?by:int -> string -> unit
(** Increment a counter on the ambient profile; no-op when none. *)

val observe : string -> float -> unit
(** Append to a series on the ambient profile; no-op when none. *)

val span : string -> (unit -> 'a) -> 'a
(** Time [f] as a span on the ambient profile; just runs [f] when none. *)

val with_trace : Trace.t -> (unit -> 'a) -> 'a
(** Install [tr] as the ambient trace for the extent of the callback
    (restoring the previous one after, also on exceptions). *)

val current_trace : unit -> Trace.t option
(** The ambient trace, if any.  Instrumentation sites match on this so the
    trace-off path pays exactly one option check and allocates nothing. *)

val trace_instant :
  name:string -> ?node:int -> ?detail:(string * Json.t) list -> unit -> unit
(** Record an instant on the ambient trace; no-op when none. *)

val with_metrics : Metrics.t -> (unit -> 'a) -> 'a
(** Install [m] as the ambient metrics registry for the extent of the
    callback (restoring the previous one after, also on exceptions).
    Driver and evaluator hot paths publish into it through the
    conveniences below, which cost one option check when none is
    installed. *)

val current_metrics : unit -> Metrics.t option

val metric_incr : ?by:int -> ?labels:Metrics.labels -> string -> unit
(** Increment a counter on the ambient registry; no-op when none. *)

val metric_observe : ?labels:Metrics.labels -> string -> float -> unit
(** Record a histogram observation on the ambient registry; no-op when none. *)

val metric_set : ?labels:Metrics.labels -> string -> float -> unit
(** Set a gauge on the ambient registry; no-op when none. *)

val with_log : Log.t -> (unit -> 'a) -> 'a
(** Install [sink] as the ambient log sink for the extent of the callback
    (restoring the previous one after, also on exceptions).  {!Resbm.Par}
    re-installs the parent's sink in worker domains, like metrics. *)

val current_log : unit -> Log.t option

val with_log_ctx :
  ?compile_id:int -> ?pass:string -> ?region:int -> ?node:int -> (unit -> 'a) -> 'a
(** Attach context to every record emitted inside the callback.  Fields
    merge with the enclosing context (entering a pass keeps the compile
    id); when no sink is installed the callback runs directly and the
    context is never even read. *)

val log :
  level:Log.level ->
  event:string ->
  ?msg:string ->
  ?fields:(string * Json.t) list ->
  unit ->
  unit
(** Emit one record on the ambient sink with the ambient context and — if
    a trace is also ambient — the current simulated clock; no-op when no
    sink is installed. *)

val log_debug : event:string -> ?fields:(string * Json.t) list -> string -> unit
val log_info : event:string -> ?fields:(string * Json.t) list -> string -> unit
val log_warn : event:string -> ?fields:(string * Json.t) list -> string -> unit
val log_error : event:string -> ?fields:(string * Json.t) list -> string -> unit
(** [log_error ~event msg] = [log ~level:Error ~event ~msg ()]. *)

val with_rt : Rt.t -> (unit -> 'a) -> 'a
(** Install [rt] as the ambient runtime-telemetry collector for the
    extent of the callback.  {!Resbm.Par} records one pool entry per
    [tabulate] fan-out into it. *)

val current_rt : unit -> Rt.t option

val gc_span : string -> (unit -> 'a) -> 'a
(** {!span}, plus — when a metrics registry is ambient — the phase's GC
    pressure published as [gc_minor_words{phase}] / [gc_major_words{phase}]
    observations, [gc_minor_collections_total{phase}] /
    [gc_major_collections_total{phase}] counters and a [gc_top_heap_words]
    gauge.  The deltas go to Metrics only, never to the Profile, so
    compile reports stay bit-identical with telemetry off or on. *)
