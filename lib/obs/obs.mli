(** Lightweight observability for the compile pipeline.

    Three primitives — wall-clock {e spans}, monotonic {e counters} and
    float {e series} — collected into a {!Profile.t} and serialised as
    JSON with no external dependencies.  The compiler driver installs a
    profile as the ambient collector for the dynamic extent of one
    compile ({!with_profile}); instrumentation sites deep in the pipeline
    (min-cut engine, planners) record through the module-level
    conveniences, which are no-ops when no profile is installed, so
    un-profiled callers pay only an option check. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact serialisation.  Floats use the shortest representation that
      round-trips; non-finite floats become [null]. *)

  val pp : Format.formatter -> t -> unit

  val of_string : string -> (t, string) result
  (** Strict parser for the serialisation above (standard JSON; [\uXXXX]
      escapes decode to UTF-8). *)

  val member : string -> t -> t option
  (** [member key (Obj fields)] looks up [key]; [None] on non-objects. *)
end

module Timer : sig
  type t

  val start : unit -> t
  val elapsed_ms : t -> float
end

module Profile : sig
  type span = { name : string; depth : int; start_ms : float; dur_ms : float }
  (** A completed timed section.  [start_ms] is relative to profile
      creation; [depth] is the nesting depth at entry (0 = top level). *)

  type t

  val create : unit -> t

  val span : t -> string -> (unit -> 'a) -> 'a
  (** Time [f], recording a span even when [f] raises.  Nests. *)

  val incr : ?by:int -> t -> string -> unit
  val counter : t -> string -> int
  (** Current value of a counter; 0 when never incremented. *)

  val observe : t -> string -> float -> unit
  (** Append one observation to a named series. *)

  val series : t -> string -> float list
  (** Observations of one series in insertion order; [[]] when absent. *)

  val spans : t -> span list
  (** Completed spans in chronological (start time) order. *)

  val counters : t -> (string * int) list
  (** All counters, sorted by name. *)

  val all_series : t -> (string * float list) list
  (** All series, sorted by name, observations in insertion order. *)

  val to_json : t -> Json.t
  (** [{"spans": [{name, depth, start_ms, dur_ms}],
       "counters": {name: int},
       "series": {name: {count, sum, min, max, values}}}] *)

  val pp : Format.formatter -> t -> unit
  (** Top-level phase durations and counters, one per line. *)
end

val with_profile : Profile.t -> (unit -> 'a) -> 'a
(** Install [p] as the ambient profile for the extent of the callback
    (restoring the previous one after, also on exceptions). *)

val current : unit -> Profile.t option

val incr : ?by:int -> string -> unit
(** Increment a counter on the ambient profile; no-op when none. *)

val observe : string -> float -> unit
(** Append to a series on the ambient profile; no-op when none. *)

val span : string -> (unit -> 'a) -> 'a
(** Time [f] as a span on the ambient profile; just runs [f] when none. *)
