(* Obs.Stat and Obs.Metrics: summary-statistics determinism, histogram
   bucket and quantile edge cases, Prometheus exposition, and the JSON
   round-trip through the strict Obs parser. *)
open Test_util

(* --- Stat ----------------------------------------------------------------- *)

let stat_median_mad () =
  checkb "empty median is nan" true (Float.is_nan (Obs.Stat.median []));
  check_float "singleton" 3.0 (Obs.Stat.median [ 3.0 ]);
  check_float "odd count picks the middle" 2.0 (Obs.Stat.median [ 3.0; 1.0; 2.0 ]);
  check_float "even count averages the midpoints" 2.5
    (Obs.Stat.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "mad around the median" 1.0 (Obs.Stat.mad [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  check_float "mad of constants is zero" 0.0 (Obs.Stat.mad [ 7.0; 7.0; 7.0 ]);
  check_float "mad around an explicit center" 2.0
    (Obs.Stat.mad ~center:0.0 [ 1.0; 2.0; 3.0 ])

let stat_determinism () =
  let values = [ 10.0; 11.0; 10.5; 12.0; 10.2 ] in
  let a = Obs.Stat.summarise ~seed:42 values in
  let b = Obs.Stat.summarise ~seed:42 values in
  checkb "same seed reproduces the bootstrap CI" true (a.Obs.Stat.ci95 = b.Obs.Stat.ci95);
  check_float "median" 10.5 a.Obs.Stat.median;
  check_float "min" 10.0 a.Obs.Stat.min;
  check_float "max" 12.0 a.Obs.Stat.max;
  let lo, hi = a.Obs.Stat.ci95 in
  checkb "ci is ordered" true (lo <= hi);
  checkb "ci brackets the median" true (lo <= a.Obs.Stat.median && a.Obs.Stat.median <= hi);
  checkb "ci stays inside the sample range" true (lo >= 10.0 && hi <= 12.0)

let stat_sample_runs () =
  let calls = ref 0 in
  let s =
    Obs.Stat.sample ~warmup:2 ~trials:3 (fun () ->
        incr calls;
        float_of_int !calls)
  in
  checki "warmup + trials calls" 5 !calls;
  checki "trials retained" 3 s.Obs.Stat.trials;
  checki "warmup recorded" 2 s.Obs.Stat.warmup;
  check
    (Alcotest.list (Alcotest.float 0.0))
    "warmup values discarded, run order kept" [ 3.0; 4.0; 5.0 ] s.Obs.Stat.values;
  checkb "trials < 1 rejected" true
    (try
       ignore (Obs.Stat.sample ~trials:0 (fun () -> 0.0));
       false
     with Invalid_argument _ -> true)

let stat_json_roundtrip () =
  let s = Obs.Stat.summarise ~seed:7 [ 1.0; 2.0; 3.0; 4.5 ] in
  (* through the strict parser: to_string then of_string then of_json *)
  let text = Obs.Json.to_string (Obs.Stat.to_json s) in
  match Obs.Json.of_string text with
  | Error m -> Alcotest.failf "summary JSON rejected by the strict parser: %s" m
  | Ok json -> (
      match Obs.Stat.of_json json with
      | Error m -> Alcotest.failf "of_json failed: %s" m
      | Ok s' -> checkb "summary round-trips exactly" true (s = s'))

(* --- Metrics: histograms --------------------------------------------------- *)

let hist_empty_and_unknown () =
  let m = Obs.Metrics.create () in
  checkb "unknown histogram" true (Obs.Metrics.histogram m "h" = None);
  checkb "unknown quantile" true (Obs.Metrics.quantile m "h" 0.5 = None);
  checki "unknown counter reads 0" 0 (Obs.Metrics.counter_value m "c");
  checkb "unknown gauge" true (Obs.Metrics.gauge m "g" = None)

let hist_single_sample () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.observe m "h" 2.5;
  match Obs.Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram vanished"
  | Some h ->
      checki "count" 1 h.Obs.Metrics.hcount;
      check_float "sum" 2.5 h.Obs.Metrics.hsum;
      check_float "min" 2.5 h.Obs.Metrics.hmin;
      check_float "max" 2.5 h.Obs.Metrics.hmax;
      (* with one sample every quantile is that sample, not a bucket bound *)
      check_float "p50 clamps to the sample" 2.5 h.Obs.Metrics.p50;
      check_float "p99 clamps to the sample" 2.5 h.Obs.Metrics.p99

let hist_all_equal () =
  let m = Obs.Metrics.create () in
  for _ = 1 to 100 do
    Obs.Metrics.observe m "h" 0.125
  done;
  match Obs.Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram vanished"
  | Some h ->
      checki "count" 100 h.Obs.Metrics.hcount;
      (* min = max forces exact quantiles whatever the bucket geometry *)
      check_float "p50 exact on a constant stream" 0.125 h.Obs.Metrics.p50;
      check_float "p90 exact on a constant stream" 0.125 h.Obs.Metrics.p90;
      check_float "p99 exact on a constant stream" 0.125 h.Obs.Metrics.p99

let hist_quantiles_ordered () =
  let m = Obs.Metrics.create () in
  for i = 1 to 1000 do
    Obs.Metrics.observe m "h" (float_of_int i)
  done;
  match Obs.Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram vanished"
  | Some h ->
      checkb "p50 <= p90" true (h.Obs.Metrics.p50 <= h.Obs.Metrics.p90);
      checkb "p90 <= p99" true (h.Obs.Metrics.p90 <= h.Obs.Metrics.p99);
      checkb "quantiles inside [min, max]" true
        (h.Obs.Metrics.p50 >= 1.0 && h.Obs.Metrics.p99 <= 1000.0);
      (* half-step log2 buckets: the interpolated median of 1..1000 must
         land within one bucket ratio (sqrt 2) of the true 500.5 *)
      checkb "p50 within one bucket ratio of the truth" true
        (h.Obs.Metrics.p50 >= 500.5 /. sqrt 2.0 && h.Obs.Metrics.p50 <= 500.5 *. sqrt 2.0);
      (match Obs.Metrics.quantile m "h" 0.0 with
      | Some q -> check_float "q=0 clamps to min" 1.0 q
      | None -> Alcotest.fail "q=0 missing");
      (match Obs.Metrics.quantile m "h" 1.0 with
      | Some q -> check_float "q=1 clamps to max" 1000.0 q
      | None -> Alcotest.fail "q=1 missing")

let hist_extreme_values () =
  let m = Obs.Metrics.create () in
  (* below the first finite bound and above the last: both must keep exact
     min/max and count, and quantiles must stay clamped to them *)
  Obs.Metrics.observe m "h" 1e-9;
  Obs.Metrics.observe m "h" 1e13;
  match Obs.Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram vanished"
  | Some h ->
      checki "count" 2 h.Obs.Metrics.hcount;
      check_float "min survives underflow bucket" 1e-9 h.Obs.Metrics.hmin;
      check_float "max survives overflow bucket" 1e13 h.Obs.Metrics.hmax;
      checkb "p99 clamped to observed max" true (h.Obs.Metrics.p99 <= 1e13)

(* --- Metrics: counters, gauges, labels ------------------------------------- *)

let labels_canonicalised () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m ~labels:[ ("a", "1"); ("b", "2") ] "c";
  Obs.Metrics.incr m ~by:4 ~labels:[ ("b", "2"); ("a", "1") ] "c";
  checki "label order is irrelevant" 5
    (Obs.Metrics.counter_value m ~labels:[ ("a", "1"); ("b", "2") ] "c");
  checki "different labels are a different series" 0
    (Obs.Metrics.counter_value m ~labels:[ ("a", "2"); ("b", "2") ] "c");
  Obs.Metrics.set m "g" 1.5;
  Obs.Metrics.set m "g" 2.5;
  checkb "gauge keeps the last assignment" true (Obs.Metrics.gauge m "g" = Some 2.5)

(* --- Prometheus exposition ------------------------------------------------- *)

let prometheus_exposition () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m ~by:3 ~labels:[ ("op", "mul.cc") ] "fhe ops-total";
  Obs.Metrics.set m "clock" 12.5;
  Obs.Metrics.observe m "lat" 1.0;
  Obs.Metrics.observe m "lat" 4.0;
  let text = Obs.Metrics.to_prometheus m in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "metric names are sanitised" true (has "resbm_fhe_ops_total");
  checkb "label values escape dots verbatim" true (has "{op=\"mul.cc\"}");
  checkb "counter TYPE line" true (has "# TYPE resbm_fhe_ops_total counter");
  checkb "gauge TYPE line" true (has "# TYPE resbm_clock gauge");
  checkb "histogram TYPE line" true (has "# TYPE resbm_lat histogram");
  checkb "cumulative buckets end at +Inf" true (has "resbm_lat_bucket{le=\"+Inf\"} 2");
  checkb "histogram sum series" true (has "resbm_lat_sum 5");
  checkb "histogram count series" true (has "resbm_lat_count 2")

(* --- JSON round-trip through the strict parser ----------------------------- *)

let metrics_json_roundtrip () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr m ~by:2 ~labels:[ ("k", "v") ] "c";
  Obs.Metrics.set m "g" 3.25;
  for i = 1 to 10 do
    Obs.Metrics.observe m ~labels:[ ("op", "x") ] "h" (float_of_int i)
  done;
  let text = Obs.Json.to_string (Obs.Metrics.to_json m) in
  match Obs.Json.of_string text with
  | Error e -> Alcotest.failf "metrics JSON rejected by the strict parser: %s" e
  | Ok json ->
      let list_len name =
        match Obs.Json.member name json with
        | Some (Obs.Json.List l) -> List.length l
        | _ -> Alcotest.failf "missing %s list" name
      in
      checki "one counter" 1 (list_len "counters");
      checki "one gauge" 1 (list_len "gauges");
      checki "one histogram" 1 (list_len "histograms")

(* --- Folding a trace ------------------------------------------------------- *)

let of_trace_folds () =
  let tr = Obs.Trace.create () in
  Obs.Trace.set_ctx tr (Some { Obs.Trace.node = 1; region = 0; freq = 1; cost_ms = 2.0 });
  Obs.Trace.record tr ~op:"mul_cc" ~level:8 ~scale_bits:56 ~size:3 ~noise:1e-9 ();
  Obs.Trace.record tr ~op:"mul_cc" ~level:8 ~scale_bits:56 ~size:3 ~noise:1e-9 ();
  Obs.Trace.set_ctx tr (Some { Obs.Trace.node = 2; region = 1; freq = 1; cost_ms = 1.0 });
  Obs.Trace.record tr ~op:"rotate" ~level:8 ~scale_bits:56 ~size:2 ~noise:1e-9 ();
  Obs.Trace.instant tr ~name:"rescale" ();
  let m = Obs.Metrics.of_trace tr in
  checki "per-op totals" 2
    (Obs.Metrics.counter_value m ~labels:[ ("op", "mul_cc") ] "trace_ops_total");
  checki "instants counted by kind" 1
    (Obs.Metrics.counter_value m ~labels:[ ("kind", "rescale") ] "trace_instants_total");
  (match Obs.Metrics.histogram m ~labels:[ ("op", "mul_cc") ] "op_latency_ms" with
  | Some h ->
      checki "latency observations per op" 2 h.Obs.Metrics.hcount;
      check_float "freq-weighted cost recorded" 4.0 h.Obs.Metrics.hsum
  | None -> Alcotest.fail "op_latency_ms{op=mul_cc} missing");
  (match Obs.Metrics.histogram m ~labels:[ ("region", "1") ] "region_latency_ms" with
  | Some h -> checki "region attribution" 1 h.Obs.Metrics.hcount
  | None -> Alcotest.fail "region_latency_ms{region=1} missing");
  checkb "clock gauge" true (Obs.Metrics.gauge m "trace_clock_ms" = Some 5.0)

(* --- ambient registry ------------------------------------------------------ *)

let ambient_install () =
  checkb "no ambient registry outside with_metrics" true (Obs.current_metrics () = None);
  (* conveniences are no-ops when nothing is installed *)
  Obs.metric_incr "x";
  let m = Obs.Metrics.create () in
  let v =
    Obs.with_metrics m (fun () ->
        Obs.metric_incr ~by:2 "x";
        Obs.metric_observe "y" 1.0;
        Obs.metric_set "z" 9.0;
        17)
  in
  checki "with_metrics returns the callback result" 17 v;
  checkb "restored on exit" true (Obs.current_metrics () = None);
  checki "incr landed" 2 (Obs.Metrics.counter_value m "x");
  checkb "observe landed" true (Obs.Metrics.histogram m "y" <> None);
  checkb "set landed" true (Obs.Metrics.gauge m "z" = Some 9.0)

let suite =
  [
    case "stat: median and mad" stat_median_mad;
    case "stat: seeded bootstrap is deterministic" stat_determinism;
    case "stat: sample runs warmup + trials" stat_sample_runs;
    case "stat: summary JSON round-trips" stat_json_roundtrip;
    case "hist: empty and unknown series" hist_empty_and_unknown;
    case "hist: single sample" hist_single_sample;
    case "hist: all-equal stream is exact" hist_all_equal;
    case "hist: quantiles ordered and clamped" hist_quantiles_ordered;
    case "hist: under/overflow keep exact min/max" hist_extreme_values;
    case "labels canonicalised, gauges overwrite" labels_canonicalised;
    case "prometheus exposition" prometheus_exposition;
    case "metrics JSON round-trips strict parser" metrics_json_roundtrip;
    case "of_trace folds ops, regions, instants" of_trace_folds;
    case "ambient registry install/restore" ambient_install;
  ]
