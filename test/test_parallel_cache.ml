(* Domain-parallel planning and the content-addressed plan cache: the Par
   pool's ordering/exception/fuel contracts, bit-identity of plans across
   job counts, warm-cache identity, key sensitivity, the incremental
   region memo, and the on-disk tier. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* Everything a compile promises to reproduce bit-for-bit: the managed
   graph's structural snapshot plus every deterministic report field.
   Wall-clock ([compile_ms]) and the profile are explicitly excluded. *)
let fingerprint ((g : Dfg.t), (r : Resbm.Report.t)) =
  ( Dfg.export g,
    r.Resbm.Report.manager,
    r.Resbm.Report.latency_ms,
    r.Resbm.Report.stats,
    r.Resbm.Report.segments,
    r.Resbm.Report.repair_bootstraps,
    r.Resbm.Report.ms_opt_hoists,
    r.Resbm.Report.region_count,
    Array.to_list r.Resbm.Report.region_of,
    r.Resbm.Report.fallbacks )

(* --- the Par pool -------------------------------------------------------- *)

let par_tabulate_matches_sequential () =
  let f i = (i * 31) mod 17 in
  for jobs = 1 to 5 do
    checkb
      (Printf.sprintf "jobs=%d returns input order" jobs)
      true
      (Resbm.Par.tabulate ~jobs 33 f = Array.init 33 f)
  done;
  checkb "empty input" true (Resbm.Par.tabulate ~jobs:4 0 f = [||]);
  checkb "more jobs than tasks" true (Resbm.Par.tabulate ~jobs:64 3 f = Array.init 3 f);
  checkb "map composes" true
    (Resbm.Par.map ~jobs:3 string_of_int (Array.init 10 Fun.id)
    = Array.init 10 string_of_int)

exception Marker of int

let par_reraises_smallest_index () =
  (* Several tasks fail; the pool must re-raise the failure a sequential
     run would hit first, independent of scheduling. *)
  for _ = 1 to 10 do
    match
      Resbm.Par.tabulate ~jobs:4 50 (fun i ->
          if i mod 7 = 3 then raise (Marker i) else i)
    with
    | _ -> Alcotest.fail "expected Marker"
    | exception Marker i -> checki "smallest failing index wins" 3 i
  done

let par_fuel_accounting_is_exact () =
  (* Racing CAS spends from four domains must account exactly: no spend
     lost, no spend double-counted, failed spends consume nothing. *)
  let m = Obs.Metrics.create () in
  Obs.with_metrics m (fun () ->
      let fuel = Resbm.Fuel.create ~stage:"par" 100 in
      ignore (Resbm.Par.tabulate ~jobs:4 100 (fun _ -> Resbm.Fuel.spend fuel));
      checki "budget fully drained" 0 (Resbm.Fuel.remaining fuel));
  checki "every spend counted exactly once" 100
    (Obs.Metrics.counter_value ~labels:[ ("stage", "par") ] m "planner_fuel_spent_total");
  let m = Obs.Metrics.create () in
  Obs.with_metrics m (fun () ->
      let fuel = Resbm.Fuel.create ~stage:"par" 30 in
      (match Resbm.Par.tabulate ~jobs:4 100 (fun _ -> Resbm.Fuel.spend fuel) with
      | _ -> Alcotest.fail "expected exhaustion"
      | exception Resbm.Fuel.Exhausted stage ->
          check Alcotest.string "stage" "par" stage);
      checki "exhausted at zero" 0 (Resbm.Fuel.remaining fuel));
  checki "successful spends only" 30
    (Obs.Metrics.counter_value ~labels:[ ("stage", "par") ] m "planner_fuel_spent_total");
  checkb "exhaustions counted" true
    (Obs.Metrics.counter_value ~labels:[ ("stage", "par") ] m
       "planner_fuel_exhausted_total"
    >= 1)

(* --- bit-identity across job counts -------------------------------------- *)

let compile_opt ?jobs ?cache mgr p g =
  match Resbm.Variants.compile ?jobs ?cache mgr p g with
  | r -> Some r
  | exception Resbm.Btsmgr.No_plan _ -> None

let jobs_identity_all_managers () =
  (* Every manager, two fixture programs, jobs in {1, 2, 4}: the plan and
     every deterministic report field must be bit-identical. *)
  List.iter
    (fun (p, mk_g, label) ->
      List.iter
        (fun (mgr : Resbm.Variants.manager) ->
          match compile_opt ~jobs:1 mgr p (mk_g ()) with
          | None -> ()
          | Some base ->
              let fp = fingerprint base in
              List.iter
                (fun jobs ->
                  match compile_opt ~jobs mgr p (mk_g ()) with
                  | None ->
                      Alcotest.failf "%s/%s: jobs=%d found no plan" label
                        mgr.Resbm.Variants.name jobs
                  | Some r ->
                      checkb
                        (Printf.sprintf "%s/%s: jobs=%d bit-identical" label
                           mgr.Resbm.Variants.name jobs)
                        true
                        (fingerprint r = fp))
                [ 2; 4 ])
        Resbm.Variants.all)
    [
      (prm, fig3_poly, "fig3");
      (Ckks.Params.fig1, fig1_block, "fig1");
      (prm, fig5_program, "fig5");
    ]

let jobs_identity_random =
  qcheck ~count:40 "random graphs plan bit-identically at any job count"
    (random_dfg_gen ~max_nodes:40 ~max_depth:8)
    (fun params ->
      let mgr =
        let all = Resbm.Variants.all in
        List.nth all (Hashtbl.hash params mod List.length all)
      in
      match compile_opt ~jobs:1 mgr prm (build_random_dfg params) with
      | None -> true
      | Some base ->
          (match compile_opt ~jobs:3 mgr prm (build_random_dfg params) with
          | None -> false
          | Some r -> fingerprint r = fingerprint base))

(* --- warm cache ----------------------------------------------------------- *)

let warm_cache_identity () =
  let cache = Resbm.Plan_cache.create () in
  let planned = ref 0 in
  List.iter
    (fun (mgr : Resbm.Variants.manager) ->
      let g () = fig1_block () in
      match compile_opt ~cache mgr Ckks.Params.fig1 (g ()) with
      | None -> ()
      | Some cold ->
          incr planned;
          let warm = Resbm.Variants.compile ~cache mgr Ckks.Params.fig1 (g ()) in
          checkb
            (mgr.Resbm.Variants.name ^ ": warm compile is bit-identical")
            true
            (fingerprint warm = fingerprint cold))
    Resbm.Variants.all;
  checkb "most managers planned" true (!planned >= 4);
  let s = Resbm.Plan_cache.stats cache in
  checki "one miss per cold attempt" (List.length Resbm.Variants.all)
    s.Resbm.Plan_cache.misses;
  checki "one hit per warm compile" !planned s.Resbm.Plan_cache.hits;
  checki "no disk tier" 0 s.Resbm.Plan_cache.disk_hits

let warm_hit_graph_is_private () =
  (* A cached plan must not alias the stored graph: mutating a warm
     result cannot poison later hits. *)
  let cache = Resbm.Plan_cache.create () in
  let mgr = Resbm.Variants.resbm in
  let cold = Resbm.Variants.compile ~cache mgr prm (fig3_poly ()) in
  let warm1, _ = Resbm.Variants.compile ~cache mgr prm (fig3_poly ()) in
  Dfg.set_outputs warm1 [];
  let warm2 = Resbm.Variants.compile ~cache mgr prm (fig3_poly ()) in
  checkb "second hit unaffected by mutation of the first" true
    (fingerprint warm2 = fingerprint cold)

(* --- key sensitivity ------------------------------------------------------ *)

let key_sensitivity () =
  let mgr = Resbm.Variants.resbm in
  let key ?(m = mgr) ?(p = prm) ?(scan = `Full) g =
    Resbm.Plan_cache.key ~config:m.Resbm.Variants.config ~name:m.Resbm.Variants.name
      ~ms_opt:m.Resbm.Variants.ms_opt ~segment_scan:scan p g
  in
  let k0 = key (fig3_poly ()) in
  check Alcotest.string "stable across rebuilds" k0 (key (fig3_poly ()));
  checki "16 hex digits" 16 (String.length k0);
  checkb "params change the key" true (key ~p:(Ckks.Params.with_l_max prm 9) (fig3_poly ()) <> k0);
  checkb "manager identity changes the key" true
    (key ~m:Resbm.Variants.fhelipe (fig3_poly ()) <> k0);
  checkb "ms_opt configuration changes the key" true
    (key ~m:Resbm.Variants.resbm_max (fig3_poly ()) <> k0);
  checkb "segment scan changes the key" true (key ~scan:`Adjacent (fig3_poly ()) <> k0);
  checkb "a different program changes the key" true (key (fig5_program ()) <> k0);
  (* a structural no-op that touches only derived state must not *)
  let g = fig3_poly () in
  let k1 = key g in
  ignore (Dfg.export g);
  check Alcotest.string "export is observation, not mutation" k1 (key g)

(* --- incremental region memo ---------------------------------------------- *)

(* Layered chain whose prefix is id-identical between the two variants:
   appending a layer must leave the earlier regions' content hashes (and
   so their memoised cuts) untouched. *)
let layered ~layers =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let v = ref x in
  for i = 1 to layers do
    v := Dfg.mul_cc g !v !v;
    v := Dfg.mul_cp g !v (Dfg.const g (Printf.sprintf "w%d" i))
  done;
  Dfg.set_outputs g [ !v ];
  g

let memo_reuses_clean_regions () =
  let cache = Resbm.Plan_cache.create () in
  let mgr = Resbm.Variants.resbm in
  ignore (Resbm.Variants.compile ~cache mgr prm (layered ~layers:3));
  let s1 = Resbm.Plan_cache.stats cache in
  checki "cold compile misses the plan tier" 1 s1.Resbm.Plan_cache.misses;
  checkb "regions were solved and memoised" true (s1.Resbm.Plan_cache.memo_entries > 0);
  (* editing the tail invalidates the full-plan key but not the prefix *)
  ignore (Resbm.Variants.compile ~cache mgr prm (layered ~layers:4));
  let s2 = Resbm.Plan_cache.stats cache in
  checki "edited program misses the plan tier" 2 s2.Resbm.Plan_cache.misses;
  checkb "clean prefix regions replan from the memo" true
    (s2.Resbm.Plan_cache.memo_hits > s1.Resbm.Plan_cache.memo_hits);
  (* and the incremental result is bit-identical to a memo-free compile *)
  let incremental = Resbm.Variants.compile ~cache mgr prm (layered ~layers:4) in
  let scratch = Resbm.Variants.compile mgr prm (layered ~layers:4) in
  checkb "memo-assisted plan equals the from-scratch plan" true
    (fingerprint incremental = fingerprint scratch)

let region_hashes_localise_edits () =
  let r3 = Resbm.Region.build (layered ~layers:3) in
  let r4 = Resbm.Region.build (layered ~layers:4) in
  let h3 = Resbm.Plan_cache.region_hashes prm r3 in
  let h4 = Resbm.Plan_cache.region_hashes prm r4 in
  checkb "partitions are non-trivial" true (Array.length h3 >= 2);
  checkb "first region's content hash survives the tail edit" true
    (Array.length h4 >= Array.length h3 && h3.(0) = h4.(0));
  checkb "params are part of the content" true
    (let h3' = Resbm.Plan_cache.region_hashes (Ckks.Params.with_l_max prm 9) r3 in
     h3'.(0) <> h3.(0))

(* --- on-disk tier ---------------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "resbm_cache" ".d" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let disk_tier_survives_processes () =
  with_temp_dir (fun dir ->
      let mgr = Resbm.Variants.resbm in
      let c1 = Resbm.Plan_cache.create ~dir () in
      let cold = Resbm.Variants.compile ~cache:c1 mgr prm (fig3_poly ()) in
      checkb "entry written through to disk" true
        ((Resbm.Plan_cache.stats c1).Resbm.Plan_cache.disk_entries >= 1);
      (* a fresh cache instance models a new process over the same dir *)
      let c2 = Resbm.Plan_cache.create ~dir () in
      let warm = Resbm.Variants.compile ~cache:c2 mgr prm (fig3_poly ()) in
      let s = Resbm.Plan_cache.stats c2 in
      checki "served from the disk tier" 1 s.Resbm.Plan_cache.disk_hits;
      checkb "disk round-trip is bit-identical" true
        (fingerprint warm = fingerprint cold);
      (* clear drops both tiers *)
      Resbm.Plan_cache.clear c2;
      checki "disk tier emptied" 0
        (Resbm.Plan_cache.stats c2).Resbm.Plan_cache.disk_entries)

let lru_eviction_is_bounded () =
  let cache = Resbm.Plan_cache.create ~capacity:2 () in
  let mgr = Resbm.Variants.resbm in
  List.iter
    (fun l -> ignore (Resbm.Variants.compile ~cache mgr prm (layered ~layers:l)))
    [ 1; 2; 3; 4 ];
  let s = Resbm.Plan_cache.stats cache in
  checki "capacity respected" 2 s.Resbm.Plan_cache.entries;
  checki "evictions counted" 2 s.Resbm.Plan_cache.evictions;
  (* the most recent entry is still warm *)
  ignore (Resbm.Variants.compile ~cache mgr prm (layered ~layers:4));
  checki "newest entry survived" (s.Resbm.Plan_cache.hits + 1)
    (Resbm.Plan_cache.stats cache).Resbm.Plan_cache.hits

let suite =
  [
    case "par: tabulate matches sequential evaluation" par_tabulate_matches_sequential;
    case "par: smallest-index exception wins" par_reraises_smallest_index;
    case "par: fuel accounting is exact across domains" par_fuel_accounting_is_exact;
    case "plans are bit-identical at jobs 1, 2, 4" jobs_identity_all_managers;
    jobs_identity_random;
    case "warm cache compiles are bit-identical" warm_cache_identity;
    case "warm hits hand out private graphs" warm_hit_graph_is_private;
    case "cache key tracks every compile input" key_sensitivity;
    case "memo replans only dirty regions" memo_reuses_clean_regions;
    case "region hashes localise edits" region_hashes_localise_edits;
    case "disk tier round-trips across cache instances" disk_tier_survives_processes;
    case "lru eviction respects capacity" lru_eviction_is_bounded;
  ]
