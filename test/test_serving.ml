(* Slot-batched serving: batcher policies, scheduler invariants, SLO rule. *)
open Test_util

let prm = Ckks.Params.default

(* One plan cache for the whole suite: every campaign compiles the same
   tiny model, so all but the first hit the cache. *)
let cache = Resbm.Plan_cache.create ~capacity:64 ()

let mk_request rid ?(arrival = 0.0) ?(deadline = 1e9) payload =
  { Serving.Batcher.rid; arrival_ms = arrival; deadline_ms = deadline; payload }

let run cfg = Serving.Scheduler.run ~cache cfg

let base_config =
  {
    Serving.Scheduler.default with
    Serving.Scheduler.model = "tiny";
    l_max = 9;
    dim = 16;
    max_batch = 4;
    queue_depth = 16;
  }

(* --- batcher ----------------------------------------------------------- *)

let batcher_capacity () =
  let slots = Ckks.Params.slot_count prm in
  checki "cap bounded by max_batch" 4 (Serving.Batcher.capacity prm ~dim:16 ~max_batch:4);
  checki "cap bounded by slots" (slots / 16)
    (Serving.Batcher.capacity prm ~dim:16 ~max_batch:max_int);
  checki "cap floored at one" 1 (Serving.Batcher.capacity prm ~dim:(2 * slots) ~max_batch:4)

let batcher_pack_roundtrip () =
  let dim = 4 in
  let reqs =
    List.init 3 (fun b ->
        mk_request b (Array.init dim (fun i -> float_of_int ((b * dim) + i) +. 0.5)))
  in
  let packed = Serving.Batcher.pack ~dim ~slots:16 reqs in
  checki "padded to the full width" 16 (Array.length packed);
  check_float "block 1 slot 2 lands at offset 6" 6.5 packed.(6);
  check_float "tail padding is zero" 0.0 packed.(15);
  let ct =
    Ckks.Ciphertext.make ~slots:packed ~scale_bits:56 ~level:2 ~size:2 ~err:1e-12
  in
  let blocks = Serving.Batcher.unpack ~dim ~count:3 ct in
  checki "one block per request" 3 (List.length blocks);
  List.iteri
    (fun b block ->
      let r = List.nth reqs b in
      checkb "unpack returns the packed payload" true (block = r.Serving.Batcher.payload))
    blocks;
  (match Serving.Batcher.pack ~dim ~slots:8 reqs with
  | _ -> Alcotest.fail "expected overflow rejection"
  | exception Invalid_argument _ -> ())

let batcher_decide_policies () =
  let t = Serving.Batcher.create ~capacity:4 ~max_wait_ms:10.0 in
  let payload = [| 0.0 |] in
  let req rid arrival = mk_request rid ~arrival payload in
  (match Serving.Batcher.decide t ~now:0.0 ~next_arrival:None [] with
  | Serving.Batcher.Idle -> ()
  | _ -> Alcotest.fail "empty queue should idle");
  let pending = List.init 5 (fun i -> req i (float_of_int i)) in
  (match Serving.Batcher.decide t ~now:4.0 ~next_arrival:None pending with
  | Serving.Batcher.Dispatch (members, rest) ->
      checki "full batch" 4 (List.length members);
      checki "overflow stays pending" 1 (List.length rest);
      checki "oldest first" 0 (List.hd members).Serving.Batcher.rid;
      checki "newest left behind" 4 (List.hd rest).Serving.Batcher.rid
  | _ -> Alcotest.fail "a full queue should dispatch");
  (match Serving.Batcher.decide t ~now:4.0 ~cap:2 ~next_arrival:None pending with
  | Serving.Batcher.Dispatch (members, rest) ->
      checki "degraded cap shrinks the batch" 2 (List.length members);
      checki "rest kept" 3 (List.length rest)
  | _ -> Alcotest.fail "degraded mode should still dispatch");
  (match Serving.Batcher.decide t ~now:4.0 ~cap:0 ~next_arrival:None pending with
  | Serving.Batcher.Dispatch (members, _) ->
      checki "cap clamps up to one" 1 (List.length members)
  | _ -> Alcotest.fail "cap 0 clamps to 1");
  let one = [ req 0 0.0 ] in
  (match Serving.Batcher.decide t ~now:4.0 ~next_arrival:(Some 7.0) one with
  | Serving.Batcher.Wait_until w -> check_float "wake for the next arrival" 7.0 w
  | _ -> Alcotest.fail "partial batch inside the wait window should wait");
  (match Serving.Batcher.decide t ~now:4.0 ~next_arrival:(Some 20.0) one with
  | Serving.Batcher.Wait_until w -> check_float "wake at the fill deadline" 10.0 w
  | _ -> Alcotest.fail "late arrival should not extend the wait");
  match Serving.Batcher.decide t ~now:10.0 ~next_arrival:(Some 20.0) one with
  | Serving.Batcher.Dispatch (members, rest) ->
      checki "max-wait flushes a partial batch" 1 (List.length members);
      checki "nothing left" 0 (List.length rest)
  | _ -> Alcotest.fail "oldest request past max_wait should dispatch"

(* --- scheduler determinism --------------------------------------------- *)

let det_config =
  {
    base_config with
    Serving.Scheduler.seed = 0xD17E5L;
    arrival = Serving.Scheduler.Poisson 40.0;
    duration_ms = 800.0;
    chaos_rate = 0.1;
  }

let scheduler_is_deterministic () =
  let render r = Obs.Json.to_string (Serving.Scheduler.to_json r) in
  let a = render (run det_config) in
  let b = render (run det_config) in
  check Alcotest.string "byte-identical reports across runs" a b;
  let j1 = render (Serving.Scheduler.run ~jobs:1 ~cache det_config) in
  let j4 = render (Serving.Scheduler.run ~jobs:4 ~cache det_config) in
  check Alcotest.string "byte-identical reports across planner jobs" j1 j4

(* --- conservation: every arrival terminates exactly once ---------------- *)

let check_conservation (r : Serving.Scheduler.report) =
  checki "every arrival reported once" r.Serving.Scheduler.arrivals
    (List.length r.Serving.Scheduler.requests);
  checki "completed + failed + shed = arrivals" r.Serving.Scheduler.arrivals
    (r.Serving.Scheduler.completed + r.Serving.Scheduler.failed + r.Serving.Scheduler.shed);
  let late_sheds =
    match List.assoc_opt "retry_wont_fit" r.Serving.Scheduler.shed_by_reason with
    | Some n -> n
    | None -> 0
  in
  checki "admitted = completed + failed + retry_wont_fit sheds"
    r.Serving.Scheduler.admitted
    (r.Serving.Scheduler.completed + r.Serving.Scheduler.failed + late_sheds);
  checki "shed reasons sum to shed" r.Serving.Scheduler.shed
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Serving.Scheduler.shed_by_reason);
  checki "failure causes sum to failed" r.Serving.Scheduler.failed
    (List.fold_left (fun a (_, n) -> a + n) 0 r.Serving.Scheduler.failed_by_cause);
  List.iteri
    (fun i (req : Serving.Scheduler.request_report) ->
      checki "request ids are dense and ordered" i req.Serving.Scheduler.rid)
    r.Serving.Scheduler.requests

let conservation_under_random_load =
  qcheck ~count:8 "shed + completed + failed = arrivals for random campaigns"
    QCheck2.Gen.(triple (int_bound 0xFFFF) (float_range 5.0 120.0) (float_range 0.0 0.15))
    (fun (seed, rate, chaos) ->
      let cfg =
        {
          base_config with
          Serving.Scheduler.seed = Int64.of_int (seed lor 1);
          arrival = Serving.Scheduler.Poisson rate;
          duration_ms = 700.0;
          chaos_rate = chaos;
        }
      in
      check_conservation (run cfg);
      true)

(* --- deadline vs retry budget ------------------------------------------ *)

(* Two simultaneous arrivals form one full batch; chaos with in-batch
   recovery disabled fails the dispatch, and the SLO (1.5x one clean
   execution) cannot fit the re-run, so both members must be shed as
   retry_wont_fit instead of being retried past their deadline. *)
let retry_that_cannot_fit_is_shed () =
  let replay = Serving.Scheduler.Replay [ 0.0; 1.0 ] in
  let probe =
    {
      base_config with
      Serving.Scheduler.seed = 0xFEEDL;
      arrival = replay;
      duration_ms = 10.0;
      max_batch = 2;
    }
  in
  let est = (run probe).Serving.Scheduler.est_batch_ms in
  checkb "reference run produced a latency estimate" true (est > 0.0);
  let cfg =
    {
      probe with
      Serving.Scheduler.slo_ms = 1.5 *. est;
      chaos_rate = 0.9;
      chaos_budget = 64;
      max_retries = 2;
      recovery =
        { Resilience.Recovery.default with Resilience.Recovery.max_attempts = 0 };
    }
  in
  let r = run cfg in
  check_conservation r;
  checki "both arrivals admitted" 2 r.Serving.Scheduler.admitted;
  checki "one dispatch, no re-dispatch past the deadline" 1
    r.Serving.Scheduler.batches_run;
  checki "nothing completed" 0 r.Serving.Scheduler.completed;
  (match List.assoc_opt "retry_wont_fit" r.Serving.Scheduler.shed_by_reason with
  | Some n -> checki "both members shed immediately" 2 n
  | None -> Alcotest.fail "expected retry_wont_fit sheds");
  List.iter
    (fun (req : Serving.Scheduler.request_report) ->
      checki "each shed request rode exactly one dispatch" 1
        req.Serving.Scheduler.attempts;
      match req.Serving.Scheduler.outcome with
      | Serving.Scheduler.Shed reason ->
          check Alcotest.string "reason" "retry_wont_fit" reason
      | _ -> Alcotest.fail "expected a shed outcome")
    r.Serving.Scheduler.requests

let completions_respect_the_slo () =
  let r = run det_config in
  checkb "campaign completed some requests" true (r.Serving.Scheduler.completed > 0);
  List.iter
    (fun (req : Serving.Scheduler.request_report) ->
      match (req.Serving.Scheduler.outcome, req.Serving.Scheduler.service_ms) with
      | Serving.Scheduler.Completed, Some s ->
          checkb "completed inside the SLO" true (s <= r.Serving.Scheduler.slo_ms +. 1e-9)
      | Serving.Scheduler.Completed, None ->
          Alcotest.fail "completed request without a service latency"
      | _ -> ())
    r.Serving.Scheduler.requests

(* --- per-request recovery accounting ------------------------------------ *)

let recovery_config =
  {
    base_config with
    Serving.Scheduler.seed = 0xACC7L;
    arrival = Serving.Scheduler.Poisson 40.0;
    duration_ms = 1200.0;
    chaos_rate = 0.25;
    chaos_budget = 4;
  }

let recovery_sums_per_request () =
  let r = run recovery_config in
  check_conservation r;
  let batch_total =
    List.fold_left
      (fun acc (b : Serving.Scheduler.batch_report) ->
        List.fold_left
          (fun a (_, v) -> a +. v)
          acc b.Serving.Scheduler.recovery_ms_by_kind)
      0.0 r.Serving.Scheduler.batches
  in
  let request_total =
    List.fold_left
      (fun acc (req : Serving.Scheduler.request_report) ->
        acc +. req.Serving.Scheduler.recovery_ms)
      0.0 r.Serving.Scheduler.requests
  in
  checkb "chaos actually exercised recovery" true (batch_total > 0.0);
  check_float ~eps:1e-6 "per-request recovery sums to the batch totals" batch_total
    request_total;
  let report_total =
    List.fold_left (fun a (_, v) -> a +. v) 0.0 r.Serving.Scheduler.recovery_ms_by_kind
  in
  check_float ~eps:1e-6 "campaign merge preserves the total" batch_total report_total

(* --- metrics + health --------------------------------------------------- *)

let campaign_feeds_metrics () =
  let m = Obs.Metrics.create () in
  let r = Obs.with_metrics m (fun () -> run det_config) in
  checki "admissions counted" r.Serving.Scheduler.admitted
    (Obs.Metrics.counter_value m "serve_admitted_total");
  checki "completions counted" r.Serving.Scheduler.completed
    (Obs.Metrics.counter_value m "serve_completed_total");
  let plain = run det_config in
  check Alcotest.string "report is independent of instrumentation"
    (Obs.Json.to_string (Serving.Scheduler.to_json r))
    (Obs.Json.to_string (Serving.Scheduler.to_json plain))

let find_check rule (v : Obs.Health.verdict) =
  match List.find_opt (fun c -> c.Obs.Health.rule = rule) v.Obs.Health.checks with
  | Some c -> c
  | None -> Alcotest.failf "missing %s check" rule

let slo_rule_reads_serving_counters () =
  let m = Obs.Metrics.create () in
  Obs.with_metrics m (fun () ->
      Obs.metric_incr ~by:10 "serve_admitted_total";
      Obs.metric_incr ~by:8 "serve_completed_total");
  let c = find_check "slo-attainment" (Obs.Health.evaluate m) in
  checkb "applicable once requests were admitted" true c.Obs.Health.applicable;
  check_float "attainment measured" 0.8 c.Obs.Health.value;
  checkb "0.8 fails the default 0.95 floor" true (c.Obs.Health.severity = Obs.Health.Fail);
  let lax =
    { Obs.Health.default_thresholds with Obs.Health.slo_attainment_floor = 0.75 }
  in
  let c = find_check "slo-attainment" (Obs.Health.evaluate ~thresholds:lax m) in
  checkb "passes a lower floor" true (c.Obs.Health.severity = Obs.Health.Pass);
  let idle = find_check "slo-attainment" (Obs.Health.evaluate (Obs.Metrics.create ())) in
  checkb "vacuous with no admissions" false idle.Obs.Health.applicable

let suite =
  [
    case "batcher capacity respects slots and max_batch" batcher_capacity;
    case "pack/unpack round-trips block payloads" batcher_pack_roundtrip;
    case "batch formation policy: full, degraded, max-wait" batcher_decide_policies;
    case "campaign reports are byte-deterministic (runs and jobs)"
      scheduler_is_deterministic;
    conservation_under_random_load;
    case "a retry that cannot fit its deadline is shed immediately"
      retry_that_cannot_fit_is_shed;
    case "completed requests finish inside the SLO" completions_respect_the_slo;
    case "per-request recovery latency sums to batch totals" recovery_sums_per_request;
    case "campaigns feed serve_* metrics without changing the report"
      campaign_feeds_metrics;
    case "health: slo-attainment rule" slo_rule_reads_serving_counters;
  ]
