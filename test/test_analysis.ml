(* The static-analysis subsystem: diagnostics, the pass verifier, the lint
   suite, and verify-each compilation across every bundled model. *)

open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* --- Diag ------------------------------------------------------------------ *)

let diag_pp () =
  let d = Analysis.Diag.error ~node:12 ~hint:"fix it" "scale" "level %d too low" 3 in
  check Alcotest.string "pp" "node 12: scale: level 3 too low"
    (Format.asprintf "%a" Analysis.Diag.pp d);
  check Alcotest.string "pp_verbose"
    "error: node 12: scale: level 3 too low (hint: fix it)"
    (Format.asprintf "%a" Analysis.Diag.pp_verbose d);
  let graph_level = Analysis.Diag.warning "noise-margin" "too noisy" in
  check Alcotest.string "no node prefix" "noise-margin: too noisy"
    (Format.asprintf "%a" Analysis.Diag.pp graph_level)

let diag_sort_and_counts () =
  let ds =
    [
      Analysis.Diag.hint ~node:1 "h" "hint";
      Analysis.Diag.error ~node:9 "e" "err";
      Analysis.Diag.warning ~node:2 "w" "warn";
    ]
  in
  (match Analysis.Diag.sort ds with
  | [ a; b; c ] ->
      checkb "errors first" true (a.Analysis.Diag.severity = Analysis.Diag.Error);
      checkb "then warnings" true (b.Analysis.Diag.severity = Analysis.Diag.Warning);
      checkb "hints last" true (c.Analysis.Diag.severity = Analysis.Diag.Hint)
  | _ -> Alcotest.fail "sort changed the length");
  checki "error count" 1 (Analysis.Diag.count Analysis.Diag.Error ds);
  checkb "has_errors" true (Analysis.Diag.has_errors ds);
  checkb "has_warnings" true (Analysis.Diag.has_warnings ds)

let diag_json () =
  let d = Analysis.Diag.error ~node:3 ~hint:"h" "scale" "msg %d" 7 in
  check Alcotest.string "to_json"
    {|{"rule":"scale","severity":"error","node":3,"message":"msg 7","hint":"h"}|}
    (Obs.Json.to_string (Analysis.Diag.to_json d));
  let bare = Analysis.Diag.hint "r" "m" in
  check Alcotest.string "optional fields omitted"
    {|{"rule":"r","severity":"hint","message":"m"}|}
    (Obs.Json.to_string (Analysis.Diag.to_json bare));
  match Analysis.Diag.list_to_json [ d; bare ] with
  | Obs.Json.Obj fields ->
      checkb "diagnostics field" true (List.mem_assoc "diagnostics" fields);
      checkb "errors count" true (List.assoc "errors" fields = Obs.Json.Int 1);
      checkb "hints count" true (List.assoc "hints" fields = Obs.Json.Int 1)
  | _ -> Alcotest.fail "list_to_json is not an object"

(* --- Verify ---------------------------------------------------------------- *)

let rule_fires rule ds = List.exists (fun d -> d.Analysis.Diag.rule = rule) ds

let verify_clean_managed () =
  let managed, _ = Resbm.Variants.(compile resbm) prm (fig1_block ()) in
  let ds = Analysis.Verify.run prm managed in
  checkb "no errors on a managed graph" false (Analysis.Diag.has_errors ds);
  checkb "no warnings either" false (Analysis.Diag.has_warnings ds)

let verify_unmanaged_scale_errors () =
  (* no rescales: the final AddCC joins 2^168 with 2^112 — Table 1 rejects *)
  let ds = Analysis.Verify.run prm (fig3_poly ()) in
  checkb "scale rule fires" true (rule_fires "scale" ds);
  checkb "errors reported" true (Analysis.Diag.has_errors ds)

let verify_gates_on_wellformed () =
  (* a ciphertext in a plaintext slot: structurally broken, so the strict
     scale propagation must not run (it would fault on the malformed arg) *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cp g x (Dfg.const g "c") in
  Dfg.set_outputs g [ m ];
  Dfg.set_arg g ~user:m ~arg_index:1 x;
  let ds = Analysis.Verify.run prm g in
  checkb "wellformed fires" true (rule_fires "wellformed" ds);
  List.iter
    (fun d -> check Alcotest.string "only wellformed runs" "wellformed" d.Analysis.Diag.rule)
    ds

let verify_bootstrap_target_range () =
  let bad target =
    let g = Dfg.create () in
    let x = Dfg.input g "x" in
    let b = Dfg.bootstrap g ~target_level:target x in
    Dfg.set_outputs g [ b ];
    (* scale:false — the target range is checked even on pre-management
       graphs *)
    Analysis.Verify.run ~scale:false prm g
  in
  checkb "target 0 rejected" true (rule_fires "bootstrap-target" (bad 0));
  checkb "target l_max+1 rejected" true
    (rule_fires "bootstrap-target" (bad (prm.Ckks.Params.l_max + 1)));
  checkb "target 1 fine" false (rule_fires "bootstrap-target" (bad 1))

let regions_view (r : Resbm.Region.t) =
  { Analysis.Verify.region_of = r.Resbm.Region.region_of; count = r.Resbm.Region.count }

let verify_region_invariants_hold () =
  let g = fig1_block () in
  let regioned = Resbm.Region.build g in
  let ds = Analysis.Verify.run ~regions:(regions_view regioned) ~scale:false prm g in
  checkb "pre-plan graph satisfies the region invariants" false
    (Analysis.Diag.has_errors ds)

let verify_region_smo_boundary () =
  (* an SMO smuggled in before planning violates RMR *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.modswitch g x in
  let y = Dfg.mul_cc g m m in
  Dfg.set_outputs g [ y ];
  let regioned = Resbm.Region.build g in
  let ds = Analysis.Verify.run ~regions:(regions_view regioned) ~scale:false prm g in
  checkb "region-smo-boundary fires" true (rule_fires "region-smo-boundary" ds)

let verify_region_cover () =
  let g = fig1_block () in
  let regioned = Resbm.Region.build g in
  let view = regions_view regioned in
  view.Analysis.Verify.region_of.(0) <- view.Analysis.Verify.count + 5;
  let ds = Analysis.Verify.run ~regions:view ~scale:false prm g in
  checkb "region-cover fires" true (rule_fires "region-cover" ds)

(* --- Lint fixtures: one seeded bug per rule -------------------------------- *)

let lint_rules ds = List.map (fun d -> d.Analysis.Diag.rule) ds

let lint_redundant_modswitch_hoist () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rotate g x 1 in
  let m = Dfg.modswitch g r in
  Dfg.set_outputs g [ m ];
  let ds = Analysis.Lint.run ~rules:[ Analysis.Lint.Redundant_modswitch ] prm g in
  checkb "hoistable modswitch flagged" true (List.mem "redundant-modswitch" (lint_rules ds))

let lint_redundant_modswitch_bootstrap () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.modswitch g x in
  let b = Dfg.bootstrap g ~target_level:8 m in
  Dfg.set_outputs g [ b ];
  let ds = Analysis.Lint.run ~rules:[ Analysis.Lint.Redundant_modswitch ] prm g in
  checkb "modswitch into bootstrap flagged" true
    (List.mem "redundant-modswitch" (lint_rules ds))

let lint_rescale_before_bootstrap () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let rs = Dfg.rescale g x in
  let b = Dfg.bootstrap g ~target_level:8 rs in
  Dfg.set_outputs g [ b ];
  let ds = Analysis.Lint.run ~rules:[ Analysis.Lint.Rescale_before_bootstrap ] prm g in
  checkb "wasted rescale flagged" true (List.mem "rescale-before-bootstrap" (lint_rules ds))

let lint_bootstrap_above_minimal () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let b = Dfg.bootstrap g ~target_level:5 x in
  Dfg.set_outputs g [ b ];
  (* the cone after the bootstrap consumes no levels at all: L1 suffices *)
  let ds = Analysis.Lint.run ~rules:[ Analysis.Lint.Bootstrap_above_minimal ] prm g in
  checkb "overshooting bootstrap flagged" true
    (List.mem "bootstrap-above-minimal" (lint_rules ds))

let lint_unused_node () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let _unused = Dfg.input g "y" in
  let out = Dfg.rotate g x 1 in
  Dfg.set_outputs g [ out ];
  let ds = Analysis.Lint.run ~rules:[ Analysis.Lint.Unused_node ] prm g in
  checkb "unused input flagged" true (List.mem "unused-node" (lint_rules ds))

let lint_relin_placement () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc_raw g x x in
  Dfg.set_outputs g [ m ];
  let ds = Analysis.Lint.run ~rules:[ Analysis.Lint.Relin_placement ] prm g in
  checkb "missing relin flagged" true (List.mem "relin-placement" (lint_rules ds))

let lint_noise_margin () =
  let g = fig3_poly () in
  let strict =
    Analysis.Lint.run ~rules:[ Analysis.Lint.Noise_margin ] ~min_precision_bits:1e6 prm g
  in
  checkb "impossible margin flagged" true (List.mem "noise-margin" (lint_rules strict));
  let lax =
    Analysis.Lint.run ~rules:[ Analysis.Lint.Noise_margin ] ~min_precision_bits:(-1e6) prm
      g
  in
  checkb "trivial margin passes" false (List.mem "noise-margin" (lint_rules lax))

let lint_clean_graph_is_quiet () =
  (* a graph with no seeded bug: no rule should fire *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let out = Dfg.rotate g x 1 in
  Dfg.set_outputs g [ out ];
  let ds =
    Analysis.Lint.run
      ~rules:
        [
          Analysis.Lint.Redundant_modswitch;
          Analysis.Lint.Rescale_before_bootstrap;
          Analysis.Lint.Bootstrap_above_minimal;
          Analysis.Lint.Unused_node;
          Analysis.Lint.Relin_placement;
        ]
      prm g
  in
  checki "no findings" 0 (List.length ds)

let lint_rule_ids_roundtrip () =
  List.iter
    (fun r ->
      match Analysis.Lint.of_rule_id (Analysis.Lint.rule_id r) with
      | Some r' -> checkb "roundtrip" true (r = r')
      | None -> Alcotest.fail "rule id does not roundtrip")
    Analysis.Lint.all

(* The source-level determinism lint: unsorted Hashtbl drains in planner
   code break plan reproducibility, so the scanner must flag them —
   except in det.ml (the sorted-drain implementation itself) and on
   lines deliberately marked det-ok. *)
let lint_source_scan () =
  let dir = Filename.temp_file "resbm_lint" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name lines =
    let oc = open_out (Filename.concat dir name) in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      write "bad.ml"
        [
          "let f h = Hashtbl.iter (fun k v -> use k v) h";
          "let g h = Hashtbl.fold (fun k v acc -> k :: acc) h []";
          "let ok h = Hashtbl.iter visit h (* det-ok: singleton table *)";
          "let clean h = Det.iter_sorted visit h";
        ];
      write "det.ml" [ "let iter_sorted f h = Hashtbl.iter f h" ];
      write "notes.txt" [ "Hashtbl.iter in prose is nobody's business" ];
      let diags = Analysis.Lint.scan_planner_sources ~dir in
      checki "two drains flagged" 2 (List.length diags);
      List.iter
        (fun (d : Analysis.Diag.t) ->
          check Alcotest.string "rule id" "unsorted-hashtbl-drain" d.Analysis.Diag.rule;
          checkb "warning severity" true (d.Analysis.Diag.severity = Analysis.Diag.Warning);
          checkb "hint suggests the sorted drain" true (d.Analysis.Diag.hint <> None))
        diags;
      let mentions sub =
        List.exists
          (fun (d : Analysis.Diag.t) ->
            let s = d.Analysis.Diag.message and m = String.length sub in
            let n = String.length s in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            go 0)
          diags
      in
      checkb "iter drain named with its line" true (mentions "bad.ml:1");
      checkb "fold drain named with its line" true (mentions "bad.ml:2");
      checkb "det-ok line suppressed" true (not (mentions "bad.ml:3")));
  checkb "missing directories scan clean" true
    (Analysis.Lint.scan_planner_sources ~dir = [])

(* --- Scale_check const handling (satellite regression) --------------------- *)

(* The same program with the shared constant created first vs last: the
   inferred levels and scales of the ciphertext nodes must not depend on
   node numbering (const scales resolve to the minimum wanted scale, not
   the first consumer in topological order). *)
let const_levels_ignore_numbering () =
  let build const_first =
    let g = Dfg.create () in
    let c = if const_first then Some (Dfg.const g "c") else None in
    let x = Dfg.input g "x" in
    let c = match c with Some c -> c | None -> Dfg.const g "c" in
    let m = Dfg.mul_cc g x x in
    let r = Dfg.rescale g m in
    (* the const is wanted at two different scales: 2^56 (add to x) and
       2^56 after rescale of 2^112 — plus a mul_cp consumer *)
    let a1 = Dfg.add_cp g x c in
    let a2 = Dfg.add_cp g r c in
    let p = Dfg.mul_cp g x c in
    Dfg.set_outputs g [ a1; a2; p ];
    let info = Scale_check.infer prm g in
    List.map
      (fun id -> (info.(id).Scale_check.level, info.(id).Scale_check.scale_bits))
      [ a1; a2; p ]
  in
  check
    Alcotest.(list (pair int int))
    "levels independent of const numbering" (build true) (build false)

let malformed_graph_no_maxint_leak () =
  (* a ciphertext wired into a plaintext slot (possible via set_arg, which
     does not re-typecheck) must not get its level clobbered to the const
     sentinel max_int by the const back-patch *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cp g x (Dfg.const g "c") in
  Dfg.set_outputs g [ m ];
  Dfg.set_arg g ~user:m ~arg_index:1 x;
  let info = Scale_check.infer prm g in
  Array.iter
    (fun i ->
      if i.Scale_check.is_ct then
        checkb "ciphertext level is finite" true (i.Scale_check.level < max_int))
    info

(* --- verify-each over every bundled model ---------------------------------- *)

let all_models = Nn.Model.paper_models @ [ Nn.Model.lenet5; Nn.Model.tiny ]

let verify_each_matrix () =
  List.iter
    (fun model ->
      let lowered = Nn.Lowering.lower model in
      List.iter
        (fun mgr ->
          let label =
            Printf.sprintf "%s/%s" model.Nn.Model.name mgr.Resbm.Variants.name
          in
          let managed, _ =
            try Resbm.Variants.compile ~verify_each:true mgr prm lowered.Nn.Lowering.dfg
            with Resbm.Driver.Verification_failed (pass, ds) ->
              Alcotest.failf "%s: verification failed after %s: %s" label pass
                (Format.asprintf "%a"
                   (Format.pp_print_list Analysis.Diag.pp)
                   (List.filteri (fun i _ -> i < 3) ds))
          in
          let ds = Analysis.Verify.run prm managed in
          checki (label ^ ": zero error diagnostics") 0
            (Analysis.Diag.count Analysis.Diag.Error ds))
        Resbm.Variants.all)
    all_models

let verify_failure_names_the_pass () =
  (* a bootstrap planted in the source graph breaks the RMR pre-plan
     invariant: verify_each must fail fast at region_build *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let b = Dfg.bootstrap g ~target_level:4 x in
  let m = Dfg.mul_cc g b b in
  Dfg.set_outputs g [ m ];
  match Resbm.Driver.compile ~verify_each:true prm g with
  | exception Resbm.Driver.Verification_failed (pass, ds) ->
      check Alcotest.string "offending pass" "region_build" pass;
      checkb "diagnostics attached" true (Analysis.Diag.has_errors ds)
  | _ -> Alcotest.fail "expected Verification_failed"

let random_dfgs_verify_each =
  qcheck ~count:25 "random DFGs compile under verify_each"
    (random_dfg_gen ~max_nodes:40 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      if Dfg.outputs g = [] then true
      else begin
        let managed, _ = Resbm.Variants.(compile ~verify_each:true resbm) prm g in
        not (Analysis.Diag.has_errors (Analysis.Verify.run prm managed))
      end)

let suite =
  [
    case "diag: pretty-printing" diag_pp;
    case "diag: sorting and counting" diag_sort_and_counts;
    case "diag: json encoding" diag_json;
    case "verify: managed graph is clean" verify_clean_managed;
    case "verify: unmanaged graph violates the scale rules" verify_unmanaged_scale_errors;
    case "verify: scale checks gate on well-formedness" verify_gates_on_wellformed;
    case "verify: bootstrap target range" verify_bootstrap_target_range;
    case "verify: region invariants hold pre-plan" verify_region_invariants_hold;
    case "verify: smuggled SMO breaks RMR" verify_region_smo_boundary;
    case "verify: corrupted region cover detected" verify_region_cover;
    case "lint: hoistable modswitch" lint_redundant_modswitch_hoist;
    case "lint: modswitch into bootstrap" lint_redundant_modswitch_bootstrap;
    case "lint: rescale before bootstrap" lint_rescale_before_bootstrap;
    case "lint: bootstrap above minimal" lint_bootstrap_above_minimal;
    case "lint: unused node" lint_unused_node;
    case "lint: relin placement" lint_relin_placement;
    case "lint: noise margin threshold" lint_noise_margin;
    case "lint: clean graph is quiet" lint_clean_graph_is_quiet;
    case "lint: rule ids roundtrip" lint_rule_ids_roundtrip;
    case "lint: source scan flags unsorted hashtbl drains" lint_source_scan;
    case "scale_check: const levels ignore numbering" const_levels_ignore_numbering;
    case "scale_check: no max_int leak on malformed graphs" malformed_graph_no_maxint_leak;
    case "driver: verify-each across all models and managers" verify_each_matrix;
    case "driver: verification failure names the pass" verify_failure_names_the_pass;
    random_dfgs_verify_each;
  ]
