let () =
  Alcotest.run "resbm"
    [
      ("graphlib", Test_graphlib.suite);
      ("obs", Test_obs.suite);
      ("metrics", Test_metrics.suite);
      ("bench-diff", Test_bench_diff.suite);
      ("trace", Test_trace.suite);
      ("ckks", Test_ckks.suite);
      ("exact-ckks", Test_exact_ckks.suite);
      ("ir", Test_ir.suite);
      ("region", Test_region.suite);
      ("placement", Test_placement.suite);
      ("btsmgr", Test_btsmgr.suite);
      ("compile", Test_compile.suite);
      ("passes", Test_passes.suite);
      ("nn", Test_nn.suite);
      ("tooling", Test_tooling.suite);
      ("analysis", Test_analysis.suite);
      ("certify", Test_certify.suite);
      ("frontend", Test_frontend.suite);
      ("waterline", Test_waterline.suite);
      ("coverage", Test_coverage.suite);
      ("resilience", Test_resilience.suite);
      ("serving", Test_serving.suite);
      ("parallel-cache", Test_parallel_cache.suite);
      ("flight", Test_flight.suite);
      ("explain", Test_explain.suite);
    ]
