(* Certified plans: adversarial checks on the min-cut optimality
   certificates, the abstract-interpretation engine behind [resbm
   certify], the shared liveness schedule, fuel calibration, and the
   retry-less chaos mode.

   The corruption tests are the point of the certificate design: a
   checker that only re-runs the planner would agree with any planner
   bug, so instead we hand [Analysis.Certify] certificates with
   deliberately falsified flows, values and cut sides and require a
   refutation naming the violated LP-duality condition. *)

open Test_util

let prm = Ckks.Params.default

module MF = Graphlib.Maxflow

let rules ds = List.map (fun (d : Analysis.Diag.t) -> d.Analysis.Diag.rule) ds
let has_rule r ds = List.mem r (rules ds)

(* s=0 -> {1,2} -> t=3; max flow 4, min cut {0,1} of value 4. *)
let diamond () =
  let net = MF.create 4 in
  MF.add_edge net ~src:0 ~dst:1 ~cap:3.0;
  MF.add_edge net ~src:0 ~dst:2 ~cap:2.0;
  MF.add_edge net ~src:1 ~dst:3 ~cap:2.0;
  MF.add_edge net ~src:2 ~dst:3 ~cap:3.0;
  let cut = MF.min_cut net ~source:0 ~sink:3 in
  (cut, MF.certificate net ~source:0 ~sink:3 cut)

(* A structurally-shared copy with fresh arrays, safe to corrupt. *)
let copy (c : MF.certificate) =
  {
    c with
    MF.cert_source_side = Array.copy c.MF.cert_source_side;
    MF.cert_arcs = Array.copy c.MF.cert_arcs;
  }

let cert_roundtrip () =
  let cut, cert = diamond () in
  check_float ~eps:1e-9 "diamond min cut" 4.0 cut.MF.value;
  let ds = Analysis.Certify.check ~pass:"test" ~value:cut.MF.value cert in
  checkb "clean certificate accepted" true (Analysis.Certify.ok ds);
  checki "no refutations at all" 0 (List.length ds)

let cert_roundtrip_reverse_closed () =
  (* The planner idiom: every finite arc gets an infinite reverse
     companion so the source side is closed under predecessors. *)
  let net = MF.create 4 in
  List.iter
    (fun (u, v, c) -> Resbm.Maxflow_util.add_with_reverse net ~src:u ~dst:v ~cap:c)
    [ (0, 1, 3.0); (0, 2, 2.0); (1, 3, 2.0); (2, 3, 3.0) ];
  let cut = MF.min_cut net ~source:0 ~sink:3 in
  let cert = MF.certificate net ~source:0 ~sink:3 cut in
  checkb "reverse-closed certificate accepted" true
    (Analysis.Certify.ok (Analysis.Certify.check ~value:cut.MF.value cert))

let cert_conservation_violation () =
  let _, cert = diamond () in
  let c = copy cert in
  (* Halve the flow on a saturated source arc: node 1 now emits more
     than it receives. *)
  let i =
    Option.get
      (Array.find_index
         (fun a -> a.MF.fa_src = 0 && a.MF.fa_dst = 1 && a.MF.fa_flow > 0.0)
         c.MF.cert_arcs)
  in
  c.MF.cert_arcs.(i) <-
    { (c.MF.cert_arcs.(i)) with MF.fa_flow = c.MF.cert_arcs.(i).MF.fa_flow /. 2.0 };
  let ds = Analysis.Certify.check c in
  checkb "corrupted flow refuted" false (Analysis.Certify.ok ds);
  checkb "conservation violation named" true (has_rule "cert-conservation" ds)

let cert_unsaturated_cut_edge () =
  let _, cert = diamond () in
  let c = copy cert in
  (* Drain a crossing arc: the cut is no longer saturated, so duality no
     longer proves anything. *)
  let i =
    Option.get
      (Array.find_index
         (fun a ->
           a.MF.fa_cap < infinity
           && c.MF.cert_source_side.(a.MF.fa_src)
           && not c.MF.cert_source_side.(a.MF.fa_dst))
         c.MF.cert_arcs)
  in
  c.MF.cert_arcs.(i) <- { (c.MF.cert_arcs.(i)) with MF.fa_flow = 0.0 };
  let ds = Analysis.Certify.check c in
  checkb "drained cut edge refuted" false (Analysis.Certify.ok ds);
  checkb "unsaturated crossing arc named" true (has_rule "cert-unsaturated" ds)

let cert_inflated_value () =
  let _, cert = diamond () in
  let c = { (copy cert) with MF.cert_value = cert.MF.cert_value +. 1.0 } in
  let ds = Analysis.Certify.check c in
  checkb "inflated value refuted" false (Analysis.Certify.ok ds);
  checkb "flow-value equality violated" true (has_rule "cert-flow-value" ds);
  checkb "duality equality violated" true (has_rule "cert-duality" ds)

let cert_non_minimal_cut () =
  (* 0 -1-> 1 -5-> 2: the only min cut is {0} (value 1).  Claim the
     {0,1} cut (value 5) instead: the flow is real and feasible, but the
     crossing arc is unsaturated — exactly the shape of a planner bug
     that picks a legal-but-suboptimal cut. *)
  let net = MF.create 3 in
  MF.add_edge net ~src:0 ~dst:1 ~cap:1.0;
  MF.add_edge net ~src:1 ~dst:2 ~cap:5.0;
  let cut = MF.min_cut net ~source:0 ~sink:2 in
  let cert = copy (MF.certificate net ~source:0 ~sink:2 cut) in
  cert.MF.cert_source_side.(1) <- true;
  let c = { cert with MF.cert_value = 5.0 } in
  let ds = Analysis.Certify.check c in
  checkb "non-minimal cut refuted" false (Analysis.Certify.ok ds);
  checkb "unsaturated crossing arc named" true (has_rule "cert-unsaturated" ds);
  checkb "claimed value exceeds the flow" true (has_rule "cert-flow-value" ds)

let cert_source_side_corrupted () =
  let _, cert = diamond () in
  let c = copy cert in
  c.MF.cert_source_side.(3) <- true;
  let ds = Analysis.Certify.check c in
  checkb "sink on source side refuted" false (Analysis.Certify.ok ds);
  checkb "terminal placement named" true (has_rule "cert-source-side" ds)

let cert_recorded_value_mismatch () =
  let cut, cert = diamond () in
  let ds = Analysis.Certify.check ~value:(cut.MF.value +. 0.5) cert in
  checkb "placement/certificate disagreement refuted" false (Analysis.Certify.ok ds);
  checkb "cross-check named" true (has_rule "cert-cut-value" ds)

(* Brute-force min cut (as in test_graphlib): enumerate subsets. *)
let brute_force_min_cut edges n ~source ~sink =
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl source) <> 0 && mask land (1 lsl sink) = 0 then begin
      let v =
        List.fold_left
          (fun acc (u, w, c) ->
            if mask land (1 lsl u) <> 0 && mask land (1 lsl w) = 0 then acc +. c else acc)
          0.0 edges
      in
      if v < !best then best := v
    end
  done;
  !best

let cert_accepts_random_cuts =
  qcheck ~count:80 "certify accepts every real min cut on random graphs"
    QCheck2.Gen.(pair (int_range 3 7) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Ckks.Prng.float rng < 0.45 then
            edges := (u, v, float_of_int (1 + Ckks.Prng.int rng ~bound:9)) :: !edges
        done
      done;
      let net = MF.create n in
      List.iter (fun (u, v, c) -> MF.add_edge net ~src:u ~dst:v ~cap:c) !edges;
      let cut = MF.min_cut net ~source:0 ~sink:(n - 1) in
      let cert = MF.certificate net ~source:0 ~sink:(n - 1) cut in
      let expect = brute_force_min_cut !edges n ~source:0 ~sink:(n - 1) in
      Analysis.Certify.ok (Analysis.Certify.check ~value:cut.MF.value cert)
      && Float.abs (cut.MF.value -. expect) < 1e-6)

let cert_accepts_planner_style_cuts =
  qcheck ~count:80 "certify accepts reverse-closed (planner-style) cuts"
    QCheck2.Gen.(pair (int_range 3 7) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      (* Forward DAG arcs only (u < v), each with the infinite reverse
         companion the placements add: max flow stays finite and the cut
         must be closed under predecessors. *)
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          if Ckks.Prng.float rng < 0.5 then
            edges := (u, v, float_of_int (1 + Ckks.Prng.int rng ~bound:9)) :: !edges
        done
      done;
      let net = MF.create n in
      List.iter
        (fun (u, v, c) -> Resbm.Maxflow_util.add_with_reverse net ~src:u ~dst:v ~cap:c)
        !edges;
      let cut = MF.min_cut net ~source:0 ~sink:(n - 1) in
      let cert = MF.certificate net ~source:0 ~sink:(n - 1) cut in
      let all_edges =
        !edges @ List.map (fun (u, v, _) -> (v, u, infinity)) !edges
      in
      let expect = brute_force_min_cut all_edges n ~source:0 ~sink:(n - 1) in
      Analysis.Certify.ok (Analysis.Certify.check ~value:cut.MF.value cert)
      && (cut.MF.value = infinity || Float.abs (cut.MF.value -. expect) < 1e-6))

(* --- Dataflow engine --------------------------------------------------- *)

module Depth_domain = struct
  type t = int

  let bottom = -1
  let equal = Int.equal
  let join = Int.max
  let widen = Int.max
end

module Depth_solver = Analysis.Dataflow.Make (Depth_domain)

let dataflow_forward_depth () =
  let g = fig1_block () in
  let r =
    Depth_solver.solve g
      ~init:(fun _ -> -1)
      ~transfer:(fun (n : Fhe_ir.Dfg.node) ~get _ ->
        if Array.length n.Fhe_ir.Dfg.args = 0 then 0
        else 1 + Array.fold_left (fun acc a -> Int.max acc (get a)) 0 n.Fhe_ir.Dfg.args)
  in
  (* Reference: the same recursion computed directly in topo order. *)
  let expected = Array.make (Fhe_ir.Dfg.node_count g) 0 in
  List.iter
    (fun id ->
      let n = Fhe_ir.Dfg.node g id in
      expected.(id) <-
        (if Array.length n.Fhe_ir.Dfg.args = 0 then 0
         else 1 + Array.fold_left (fun acc a -> Int.max acc expected.(a)) 0 n.Fhe_ir.Dfg.args))
    (Fhe_ir.Dfg.topo_order g);
  Array.iteri
    (fun id d -> checki (Printf.sprintf "node %d depth" id) expected.(id) d)
    r.Depth_solver.output;
  (* A DAG swept in topo order reaches the fixpoint in one visit per
     node — the engine must not revisit. *)
  checki "one visit per node" (Fhe_ir.Dfg.node_count g) r.Depth_solver.steps

let dataflow_backward_height () =
  let g = fig1_block () in
  let outputs = Fhe_ir.Dfg.outputs g in
  let r =
    Depth_solver.solve ~direction:Analysis.Dataflow.Backward g
      ~init:(fun _ -> -1)
      ~transfer:(fun (n : Fhe_ir.Dfg.node) ~get:_ flowed ->
        if List.mem n.Fhe_ir.Dfg.id outputs then 0 else flowed + 1)
  in
  let expected = Array.make (Fhe_ir.Dfg.node_count g) (-1) in
  List.iter
    (fun id ->
      let users = Fhe_ir.Dfg.succs g id in
      expected.(id) <-
        (if List.mem id outputs then 0
         else 1 + List.fold_left (fun acc u -> Int.max acc expected.(u)) (-1) users))
    (List.rev (Fhe_ir.Dfg.topo_order g));
  Array.iteri
    (fun id h -> checki (Printf.sprintf "node %d height" id) expected.(id) h)
    r.Depth_solver.output

(* --- Abstract interpretation on a real managed graph ------------------- *)

let managed_tiny =
  lazy
    (let lowered = Nn.Lowering.lower Nn.Model.tiny in
     Resbm.Driver.compile prm lowered.Nn.Lowering.dfg)

let absint_certifies_managed_tiny () =
  let managed, report = Lazy.force managed_tiny in
  List.iter
    (fun (group, ds) ->
      checkb (group ^ " has no refutation") false (Analysis.Diag.has_errors ds))
    (Resbm.Driver.certify_diags prm managed report)

let absint_interval_contains_concrete () =
  let managed, _ = Lazy.force managed_tiny in
  let r = Analysis.Absint.solve_intervals prm managed in
  let concrete = Fhe_ir.Scale_check.infer prm managed in
  List.iter
    (fun (n : Fhe_ir.Dfg.node) ->
      let id = n.Fhe_ir.Dfg.id in
      let c = concrete.(id) in
      if c.Fhe_ir.Scale_check.is_ct then
        match r.Analysis.Absint.Scale_solver.output.(id) with
        | Analysis.Absint.Bot -> Alcotest.failf "node %d: ciphertext unreached" id
        | Analysis.Absint.Iv v ->
            checkb
              (Printf.sprintf "node %d concrete scale/level inside the interval" id)
              true
              (c.Fhe_ir.Scale_check.scale_bits >= v.Analysis.Absint.s_lo
              && c.Fhe_ir.Scale_check.scale_bits <= v.Analysis.Absint.s_hi
              && c.Fhe_ir.Scale_check.level >= v.Analysis.Absint.l_lo
              && c.Fhe_ir.Scale_check.level <= v.Analysis.Absint.l_hi))
    (Fhe_ir.Dfg.live_nodes managed)

let absint_liveness_below_schedule () =
  let managed, _ = Lazy.force managed_tiny in
  let live = Analysis.Absint.liveness managed in
  let sched = Fhe_ir.Liveness.schedule managed in
  (* Def-use liveness is the declarative lower bound: anything it keeps
     alive before node [id] must be live at [id]'s schedule position. *)
  Array.iteri
    (fun id pos ->
      if pos >= 0 then
        Analysis.Absint.Int_set.iter
          (fun v ->
            checkb
              (Printf.sprintf "value %d live before node %d" v id)
              true
              (Fhe_ir.Liveness.live_at sched ~at:pos v))
          live.Analysis.Absint.live_in.(id))
    sched.Fhe_ir.Liveness.order_index

let liveness_schedule_basics () =
  let g = fig3_poly () in
  let sched = Fhe_ir.Liveness.schedule g in
  let n = Fhe_ir.Dfg.node_count g in
  checki "order covers the graph" n (Array.length sched.Fhe_ir.Liveness.order);
  Array.iteri
    (fun pos id -> checki "order_index inverts order" pos
        sched.Fhe_ir.Liveness.order_index.(id))
    sched.Fhe_ir.Liveness.order;
  (* The single output stays live forever; the input x (node 0) dies
     right after its last consumer's schedule position. *)
  let out = List.hd (Fhe_ir.Dfg.outputs g) in
  checkb "output live at the end" true
    (Fhe_ir.Liveness.live_at sched ~at:(n - 1) out);
  let last_consumer_pos =
    List.fold_left
      (fun acc u -> Int.max acc sched.Fhe_ir.Liveness.order_index.(u))
      (-1) (Fhe_ir.Dfg.succs g 0)
  in
  checki "x's last use is its last consumer's position" last_consumer_pos
    sched.Fhe_ir.Liveness.last_use.(0);
  checkb "x dead past its last consumer" false
    (Fhe_ir.Liveness.live_at sched ~at:(last_consumer_pos + 1) 0);
  checkb "x live at its last consumer" true
    (Fhe_ir.Liveness.live_at sched ~at:last_consumer_pos 0)

(* --- Fuel calibration -------------------------------------------------- *)

let fuel_calibrate () =
  checki "median with no headroom" 30
    (Resbm.Fuel.calibrate ~percentile:0.5 ~headroom:1.0 [ 50; 10; 40; 20; 30 ]);
  let obs = List.init 100 (fun i -> i + 1) in
  checki "p95 of 1..100 with 1.5x headroom" 143 (Resbm.Fuel.calibrate obs);
  checki "p100 picks the max" 100
    (Resbm.Fuel.calibrate ~percentile:1.0 ~headroom:1.0 obs);
  checki "singleton" 15 (Resbm.Fuel.calibrate ~headroom:1.5 [ 10 ]);
  let invalid f = match f () with _ -> false | exception Invalid_argument _ -> true in
  checkb "empty rejected" true (invalid (fun () -> Resbm.Fuel.calibrate []));
  checkb "percentile > 1 rejected" true
    (invalid (fun () -> Resbm.Fuel.calibrate ~percentile:1.5 [ 1 ]));
  checkb "headroom < 1 rejected" true
    (invalid (fun () -> Resbm.Fuel.calibrate ~headroom:0.5 [ 1 ]))

let fuel_calibrate_covers_real_compile () =
  let _, report = Lazy.force managed_tiny in
  let steps = Resbm.Driver.planner_steps report.Resbm.Report.profile in
  checkb "compile spent planner steps" true (steps > 0);
  let budget = Resbm.Driver.calibrated_fuel_steps [ report ] in
  checkb "calibrated budget covers the observed compile" true (budget >= steps)

(* --- Retry-less chaos -------------------------------------------------- *)

let chaos_no_retries () =
  let cfg =
    { Resilience.Chaos.default with Resilience.Chaos.no_retries = true; trials = 12;
      rate = 0.3 }
  in
  let report = Resilience.Chaos.run cfg in
  List.iter
    (fun (m : Resilience.Chaos.model_summary) ->
      checki "no rollback retries" 0 m.Resilience.Chaos.total_retries;
      List.iter
        (fun (kind, _) -> check Alcotest.string "only noise spikes" "noise_spike" kind)
        m.Resilience.Chaos.faults_by_kind;
      checkb "faults were injected" true (m.Resilience.Chaos.injected_faults > 0);
      checkb "panic re-bootstrap path exercised" true
        (m.Resilience.Chaos.total_panic_refreshes > 0))
    report.Resilience.Chaos.models;
  (* Same seed, same campaign: the report stays byte-identical. *)
  let again = Resilience.Chaos.run cfg in
  check Alcotest.string "retry-less campaign is deterministic"
    (Obs.Json.to_string (Resilience.Chaos.to_json report))
    (Obs.Json.to_string (Resilience.Chaos.to_json again))

let suite =
  [
    case "certificate round-trip" cert_roundtrip;
    case "reverse-closed round-trip" cert_roundtrip_reverse_closed;
    case "conservation violation refuted" cert_conservation_violation;
    case "unsaturated cut edge refuted" cert_unsaturated_cut_edge;
    case "inflated value refuted" cert_inflated_value;
    case "non-minimal cut refuted" cert_non_minimal_cut;
    case "corrupted source side refuted" cert_source_side_corrupted;
    case "recorded value mismatch refuted" cert_recorded_value_mismatch;
    cert_accepts_random_cuts;
    cert_accepts_planner_style_cuts;
    case "dataflow forward depth" dataflow_forward_depth;
    case "dataflow backward height" dataflow_backward_height;
    case "certify_diags proves managed tiny" absint_certifies_managed_tiny;
    case "interval abstraction contains concrete scales" absint_interval_contains_concrete;
    case "def-use liveness below the schedule" absint_liveness_below_schedule;
    case "liveness schedule basics" liveness_schedule_basics;
    case "fuel calibration percentiles" fuel_calibrate;
    case "fuel calibration covers a real compile" fuel_calibrate_covers_real_compile;
    case "chaos without retries" chaos_no_retries;
  ]
