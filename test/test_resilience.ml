(* Fault injection, recovery-aware execution, graceful planner degradation. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default
let dim = 4

let mk ?(slots = Array.make dim 0.5) ?(scale = 56) ?(level = 2) ?(size = 2) () =
  Ckks.Ciphertext.make ~slots ~scale_bits:scale ~level ~size ~err:1e-12

let expect_error ~cause ~op f =
  Ckks.Fault.set_site (-1);
  match f () with
  | _ -> Alcotest.failf "expected Fhe_error %s" (Ckks.Evaluator.cause_name cause)
  | exception Ckks.Evaluator.Fhe_error e ->
      check Alcotest.string "cause" (Ckks.Evaluator.cause_name cause)
        (Ckks.Evaluator.cause_name e.Ckks.Evaluator.cause);
      check Alcotest.string "op" op e.Ckks.Evaluator.op;
      checkb "carries a message" true
        (String.length (Ckks.Evaluator.error_message e) > 0);
      checki "unattributed outside the interpreter" (-1) e.Ckks.Evaluator.node;
      e

(* --- structured errors: one fixture per Table 1 constraint path --------- *)

let constraint_fixtures () =
  let ev = Ckks.Evaluator.create ~seed:11L prm in
  let data = Array.make dim 0.25 in
  ignore
    (expect_error ~cause:Ckks.Evaluator.Negative_level ~op:"encrypt" (fun () ->
         Ckks.Evaluator.encrypt ev ~level:(-1) data));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Scale_overflow ~op:"encrypt" (fun () ->
         Ckks.Evaluator.encrypt ev ~level:0 ~scale_bits:120 data));
  let e =
    expect_error ~cause:Ckks.Evaluator.Level_mismatch ~op:"add_cc" (fun () ->
        Ckks.Evaluator.add_cc ev (mk ~level:2 ()) (mk ~level:1 ()))
  in
  checki "level at the raise site" 2 e.Ckks.Evaluator.level;
  checki "scale at the raise site" 56 e.Ckks.Evaluator.scale_bits;
  checkb "constraint errors are not retryable" false (Ckks.Evaluator.transient e);
  ignore
    (expect_error ~cause:Ckks.Evaluator.Scale_mismatch ~op:"add_cc" (fun () ->
         Ckks.Evaluator.add_cc ev (mk ~scale:56 ()) (mk ~scale:58 ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Scale_mismatch ~op:"add_cp" (fun () ->
         Ckks.Evaluator.add_cp ev (mk ~scale:56 ())
           (Ckks.Evaluator.encode ev ~scale_bits:58 data)));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Slot_mismatch ~op:"add_cc" (fun () ->
         Ckks.Evaluator.add_cc ev (mk ()) (mk ~slots:(Array.make (2 * dim) 0.5) ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Level_mismatch ~op:"mul_cc" (fun () ->
         Ckks.Evaluator.mul_cc ev (mk ~level:3 ()) (mk ~level:2 ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Scale_overflow ~op:"mul_cc" (fun () ->
         Ckks.Evaluator.mul_cc ev (mk ~scale:60 ~level:1 ()) (mk ~scale:60 ~level:1 ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Slot_mismatch ~op:"rotate" (fun () ->
         Ckks.Evaluator.rotate ev (mk ~slots:[||] ()) 1));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Size_mismatch ~op:"relin" (fun () ->
         Ckks.Evaluator.relin ev (mk ~size:2 ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Level_underflow ~op:"rescale" (fun () ->
         Ckks.Evaluator.rescale ev (mk ~level:0 ~scale:56 ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Scale_underflow ~op:"rescale" (fun () ->
         Ckks.Evaluator.rescale ev (mk ~level:2 ~scale:100 ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Level_underflow ~op:"modswitch" (fun () ->
         Ckks.Evaluator.modswitch ev (mk ~level:0 ())));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Target_out_of_range ~op:"bootstrap" (fun () ->
         Ckks.Evaluator.bootstrap ev (mk ()) ~target_level:(prm.Ckks.Params.l_max + 1)));
  ignore
    (expect_error ~cause:Ckks.Evaluator.Size_mismatch ~op:"decrypt" (fun () ->
         Ckks.Evaluator.decrypt ev (mk ~size:3 ())))

(* --- every raise path counts fhe_errors_total exactly once -------------- *)

let evaluator_errors_counted_once () =
  let ev = Ckks.Evaluator.create ~seed:12L prm in
  let m = Obs.Metrics.create () in
  Obs.with_metrics m (fun () ->
      match Ckks.Evaluator.add_cc ev (mk ~level:2 ()) (mk ~level:1 ()) with
      | _ -> Alcotest.fail "expected Fhe_error"
      | exception Ckks.Evaluator.Fhe_error _ -> ());
  checki "one count, labelled by cause" 1
    (Obs.Metrics.counter_value ~labels:[ ("cause", "level_mismatch") ] m
       "fhe_errors_total")

let interp_illegal_graph_counted_once () =
  (* fig3 unmanaged: statically illegal (scale mismatch at the final add),
     so the interpreter raises the structured Illegal_graph error through
     the same counted funnel. *)
  let g = fig3_poly () in
  let m = Obs.Metrics.create () in
  let env = { Interp.inputs = [ ("x", input_env ~dim 3L) ]; consts = const_env ~dim } in
  Obs.with_metrics m (fun () ->
      match Interp.run (Ckks.Evaluator.create prm) g env with
      | _ -> Alcotest.fail "expected Fhe_error"
      | exception Ckks.Evaluator.Fhe_error e ->
          check Alcotest.string "cause" "illegal_graph"
            (Ckks.Evaluator.cause_name e.Ckks.Evaluator.cause);
          checkb "names the faulting node" true (e.Ckks.Evaluator.node >= 0));
  checki "one count through the interpreter" 1
    (Obs.Metrics.counter_value ~labels:[ ("cause", "illegal_graph") ] m
       "fhe_errors_total")

let injected_transient_counted_once () =
  let p = Ckks.Params.fig1 in
  let managed, _ = Resbm.Driver.compile p (fig1_block ()) in
  let d = 8 in
  let env = { Interp.inputs = [ ("x", input_env ~dim:d 5L) ]; consts = const_env ~dim:d } in
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 42L;
        rules = [ Ckks.Fault.rule Ckks.Fault.Transient ~prob:1.0 ~mag:0.0 ];
        budget = 1;
      }
  in
  let m = Obs.Metrics.create () in
  Obs.with_metrics m (fun () ->
      Ckks.Fault.with_faults inj (fun () ->
          match Interp.run (Ckks.Evaluator.create p) managed env with
          | _ -> Alcotest.fail "expected the injected transient to escape"
          | exception Ckks.Evaluator.Fhe_error e ->
              checkb "retryable" true (Ckks.Evaluator.transient e);
              checkb "attributed to a node" true (e.Ckks.Evaluator.node >= 0)));
  checki "error counted once" 1
    (Obs.Metrics.counter_value ~labels:[ ("cause", "injected_transient") ] m
       "fhe_errors_total");
  (match Ckks.Fault.injections inj with
  | [ i ] ->
      checki "injection counted once, labelled by kind and op" 1
        (Obs.Metrics.counter_value
           ~labels:[ ("kind", "transient"); ("op", i.Ckks.Fault.inj_op) ]
           m "fhe_faults_total")
  | l -> Alcotest.failf "expected one injection, got %d" (List.length l))

(* --- injector: determinism, budget, targeting, tracing ------------------ *)

let injector_is_deterministic () =
  let p = Ckks.Params.fig1 in
  let managed, report = Resbm.Driver.compile p (fig1_block ()) in
  let d = 8 in
  let env = { Interp.inputs = [ ("x", input_env ~dim:d 5L) ]; consts = const_env ~dim:d } in
  let region_of id =
    let attr = report.Resbm.Report.region_of in
    if id < Array.length attr then attr.(id) else -1
  in
  let plan =
    {
      Ckks.Fault.seed = 7L;
      rules =
        [
          Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:0.05 ~mag:25.0;
          Ckks.Fault.rule Ckks.Fault.Transient ~prob:0.02 ~mag:0.0;
        ];
      budget = 4;
    }
  in
  let campaign () =
    let inj = Ckks.Fault.create plan in
    let ev = Ckks.Evaluator.create ~seed:9L p in
    let result, _ =
      Ckks.Fault.with_faults inj (fun () ->
          Resilience.Recovery.run ~region_of ev managed env)
    in
    ( List.map
        (fun (i : Ckks.Fault.injection) ->
          (i.Ckks.Fault.index, i.Ckks.Fault.inj_op, i.Ckks.Fault.inj_node,
           Ckks.Fault.kind_name i.Ckks.Fault.inj_kind))
        (Ckks.Fault.injections inj),
      List.map (fun (c : Ckks.Ciphertext.t) -> c.Ckks.Ciphertext.slots) result.Interp.outputs )
  in
  let log1, out1 = campaign () in
  let log2, out2 = campaign () in
  checkb "identical injection logs" true (log1 = log2);
  checkb "identical outputs" true (out1 = out2);
  checkb "budget respected" true (List.length log1 <= 4)

let budget_caps_injections () =
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 1L;
        rules = [ Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:1.0 ~mag:10.0 ];
        budget = 2;
      }
  in
  Ckks.Fault.with_faults inj (fun () ->
      let f = Option.get (Ckks.Fault.current ()) in
      checkb "fires" true (Ckks.Fault.draw f ~op:"mul_cc" <> None);
      checkb "fires" true (Ckks.Fault.draw f ~op:"mul_cc" <> None);
      checkb "budget exhausted" true (Ckks.Fault.draw f ~op:"mul_cc" = None));
  checki "two injections" 2 (Ckks.Fault.injected inj)

let rules_filter_by_op_and_node () =
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 1L;
        rules =
          [
            Ckks.Fault.rule ~ops:[ "mul_cc" ] ~nodes:[ 7 ] Ckks.Fault.Scale_drift
              ~prob:1.0 ~mag:3.0;
          ];
        budget = -1;
      }
  in
  Ckks.Fault.with_faults inj (fun () ->
      let f = Option.get (Ckks.Fault.current ()) in
      Ckks.Fault.set_site 3;
      checkb "wrong node" true (Ckks.Fault.draw f ~op:"mul_cc" = None);
      Ckks.Fault.set_site 7;
      checkb "wrong op" true (Ckks.Fault.draw f ~op:"add_cc" = None);
      checkb "matching op and node fires" true (Ckks.Fault.draw f ~op:"mul_cc" <> None);
      Ckks.Fault.set_site (-1));
  match Ckks.Fault.injections inj with
  | [ i ] ->
      checki "attributed node" 7 i.Ckks.Fault.inj_node;
      check Alcotest.string "kind" "scale_drift" (Ckks.Fault.kind_name i.Ckks.Fault.inj_kind)
  | l -> Alcotest.failf "expected one injection, got %d" (List.length l)

let injection_leaves_trace_instant () =
  let p = Ckks.Params.fig1 in
  let managed, _ = Resbm.Driver.compile p (fig1_block ()) in
  let d = 8 in
  let env = { Interp.inputs = [ ("x", input_env ~dim:d 5L) ]; consts = const_env ~dim:d } in
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 2L;
        rules = [ Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:1.0 ~mag:8.0 ];
        budget = 1;
      }
  in
  let tr = Obs.Trace.create () in
  ignore
    (Ckks.Fault.with_faults inj (fun () ->
         Interp.run ~trace:tr (Ckks.Evaluator.create p) managed env));
  let faults =
    List.filter_map
      (function
        | Obs.Trace.Instant i when i.Obs.Trace.iname = "fault" -> Some i | _ -> None)
      (Obs.Trace.events tr)
  in
  checki "one fault instant" 1 (List.length faults);
  let detail = (List.hd faults).Obs.Trace.detail in
  check Alcotest.string "kind in detail" "noise_spike"
    (match List.assoc_opt "kind" detail with
    | Some (Obs.Json.String s) -> s
    | _ -> "?")

(* --- recovery ------------------------------------------------------------ *)

let fig1_compiled () =
  let p = Ckks.Params.fig1 in
  let managed, report = Resbm.Driver.compile p (fig1_block ()) in
  let d = 8 in
  let env = { Interp.inputs = [ ("x", input_env ~dim:d 5L) ]; consts = const_env ~dim:d } in
  let region_of id =
    let attr = report.Resbm.Report.region_of in
    if id < Array.length attr then attr.(id) else -1
  in
  (p, managed, env, region_of)

let max_delta (a : Ckks.Ciphertext.t list) (b : Ckks.Ciphertext.t list) =
  List.fold_left2
    (fun acc (x : Ckks.Ciphertext.t) (y : Ckks.Ciphertext.t) ->
      Array.fold_left Float.max acc
        (Array.mapi
           (fun i v -> Float.abs (v -. y.Ckks.Ciphertext.slots.(i)))
           x.Ckks.Ciphertext.slots))
    0.0 a b

let recovery_survives_transient () =
  let p, managed, env, region_of = fig1_compiled () in
  let reference = Interp.run (Ckks.Evaluator.create ~seed:9L p) managed env in
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 42L;
        rules = [ Ckks.Fault.rule Ckks.Fault.Transient ~prob:1.0 ~mag:0.0 ];
        budget = 1;
      }
  in
  let result, stats =
    Ckks.Fault.with_faults inj (fun () ->
        Resilience.Recovery.run ~region_of (Ckks.Evaluator.create ~seed:9L p) managed env)
  in
  checki "one injection" 1 stats.Resilience.Recovery.injected_faults;
  checkb "retried" true (stats.Resilience.Recovery.retries >= 1);
  checkb "backoff charged" true (stats.Resilience.Recovery.backoff_ms_total > 0.0);
  checkb "recovery latency attributed to transient" true
    (List.mem_assoc "transient" stats.Resilience.Recovery.recovery_ms_by_kind);
  checkb "output within noise of the reference" true
    (max_delta reference.Interp.outputs result.Interp.outputs < 1e-4)

let recovery_survives_noise_spike () =
  let p, managed, env, region_of = fig1_compiled () in
  let reference = Interp.run (Ckks.Evaluator.create ~seed:9L p) managed env in
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 4L;
        rules = [ Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:1.0 ~mag:25.0 ];
        budget = 1;
      }
  in
  let result, stats =
    Ckks.Fault.with_faults inj (fun () ->
        Resilience.Recovery.run ~region_of (Ckks.Evaluator.create ~seed:9L p) managed env)
  in
  checkb "retried" true (stats.Resilience.Recovery.retries >= 1);
  checkb "output within noise of the reference" true
    (max_delta reference.Interp.outputs result.Interp.outputs < 1e-4)

let backoff_is_capped_and_counted () =
  let p, managed, env, region_of = fig1_compiled () in
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 42L;
        rules = [ Ckks.Fault.rule Ckks.Fault.Transient ~prob:1.0 ~mag:0.0 ];
        budget = 3;
      }
  in
  let config =
    {
      Resilience.Recovery.default with
      Resilience.Recovery.max_attempts = 4;
      backoff_ms = 10.0;
      max_backoff_ms = 15.0;
    }
  in
  let m = Obs.Metrics.create () in
  let _, stats =
    Obs.with_metrics m (fun () ->
        Ckks.Fault.with_faults inj (fun () ->
            Resilience.Recovery.run ~config ~region_of
              (Ckks.Evaluator.create ~seed:9L p) managed env))
  in
  checkb "enough rollbacks to hit the cap" true (stats.Resilience.Recovery.retries >= 2);
  checkb "capped backoffs counted" true (stats.Resilience.Recovery.capped_backoffs >= 1);
  checkb "total backoff respects the cap" true
    (stats.Resilience.Recovery.backoff_ms_total
    <= 15.0 *. float_of_int stats.Resilience.Recovery.retries);
  checki "cap hits exported as a metric" stats.Resilience.Recovery.capped_backoffs
    (Obs.Metrics.counter_value m "recovery_backoff_capped_total")

let panic_refresh_when_retries_disabled () =
  let p, managed, env, region_of = fig1_compiled () in
  let reference = Interp.run (Ckks.Evaluator.create ~seed:9L p) managed env in
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 4L;
        rules = [ Ckks.Fault.rule Ckks.Fault.Noise_spike ~prob:1.0 ~mag:25.0 ];
        budget = 1;
      }
  in
  let config = { Resilience.Recovery.default with Resilience.Recovery.max_attempts = 0 } in
  let result, stats =
    Ckks.Fault.with_faults inj (fun () ->
        Resilience.Recovery.run ~config ~region_of (Ckks.Evaluator.create ~seed:9L p)
          managed env)
  in
  checkb "re-bootstrapped in place" true (stats.Resilience.Recovery.panic_refreshes >= 1);
  checki "no retries" 0 stats.Resilience.Recovery.retries;
  (* A refresh resets the noise estimate but cannot undo the spike's slot
     jitter (~2^-5 here), so this degraded-but-alive path is only
     approximately repaired — unlike the rollback path above. *)
  checkb "output bounded by the spike jitter" true
    (max_delta reference.Interp.outputs result.Interp.outputs < 0.05)

let recovery_checkpoints_respect_budget () =
  let p, managed, env, region_of = fig1_compiled () in
  let config =
    {
      Resilience.Recovery.default with
      Resilience.Recovery.checkpoint_budget_bytes = Some 1.0;
    }
  in
  let _, stats =
    Resilience.Recovery.run ~config ~region_of (Ckks.Evaluator.create ~seed:9L p) managed
      env
  in
  checkb "boundary checkpoints taken" true (stats.Resilience.Recovery.checkpoints >= 2);
  checkb "evicted down to the budget" true (stats.Resilience.Recovery.evictions >= 1);
  checkb "peak accounted" true (stats.Resilience.Recovery.checkpoint_bytes_peak > 0.0)

(* A slot flipped ~2^-38 below the noise floor is invisible to every
   magnitude-based validator (level/scale match, the err bump is
   negligible against the 12-bit slack), so only the boundary slot
   checksum can see it.  Before checksums the run "succeeded" with a
   silently wrong output; now it must roll back and replay exactly. *)
let recovery_detects_subfloor_corruption () =
  let p, managed, env, region_of = fig1_compiled () in
  let reference = Interp.run (Ckks.Evaluator.create ~seed:9L p) managed env in
  let out = List.hd (Dfg.outputs managed) in
  let inj =
    Ckks.Fault.create
      {
        Ckks.Fault.seed = 6L;
        rules =
          [
            Ckks.Fault.rule ~nodes:[ out ] Ckks.Fault.Slot_corrupt ~prob:1.0
              ~mag:(-38.0);
          ];
        budget = 1;
      }
  in
  let result, stats =
    Ckks.Fault.with_faults inj (fun () ->
        Resilience.Recovery.run ~region_of (Ckks.Evaluator.create ~seed:9L p) managed env)
  in
  checki "one injection" 1 stats.Resilience.Recovery.injected_faults;
  checkb "checksum caught the sub-floor flip" true
    (stats.Resilience.Recovery.retries >= 1);
  checkb "recovery latency attributed to slot_corrupt" true
    (List.mem_assoc "slot_corrupt" stats.Resilience.Recovery.recovery_ms_by_kind);
  check_float "clean replay is bit-exact" 0.0
    (max_delta reference.Interp.outputs result.Interp.outputs)

(* Value-based checkpoint eviction: a chain with an expensive
   multiplicative prefix followed by a tail of cheap one-rotation regions.
   Under budget pressure the supervisor must keep the checkpoint guarding
   the expensive prefix (its marginal re-execution value is the whole
   prefix) and churn through the cheap tail guards; oldest-first eviction
   would drop the expensive guard almost immediately. *)
let recovery_eviction_keeps_expensive_guard () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let v = ref x in
  for _ = 1 to 5 do
    v := Dfg.mul_cc g !v !v
  done;
  let first_rot = Dfg.rotate g !v 1 in
  v := first_rot;
  for _ = 1 to 7 do
    v := Dfg.rotate g !v 1
  done;
  Dfg.set_outputs g [ !v ];
  let managed, _ = Resbm.Driver.compile prm g in
  (* Execution-order positions: everything before the first rotation is
     the expensive prefix (region 0), then every tail position is its own
     single-node region, so each tail node gets a boundary checkpoint. *)
  let session = Interp.Session.create (Ckks.Evaluator.create ~seed:9L prm) managed in
  let order = Interp.Session.order session in
  let pos_of = Array.make (Dfg.node_count managed) (-1) in
  Array.iteri (fun i id -> pos_of.(id) <- i) order;
  let split = pos_of.(first_rot) in
  checkb "prefix precedes the tail in execution order" true (split > 0);
  let region_of id =
    if id < 0 || id >= Array.length pos_of || pos_of.(id) < 0 then -1
    else if pos_of.(id) < split then 0
    else pos_of.(id) - split + 1
  in
  let env = { Interp.inputs = [ ("x", input_env ~dim 7L) ]; consts = const_env ~dim } in
  (* Size one snapshot from an unconstrained run, then allow ~2.5 of them. *)
  let unconstrained =
    {
      Resilience.Recovery.default with
      Resilience.Recovery.checkpoint_budget_bytes = Some Float.infinity;
    }
  in
  let _, s0 =
    Resilience.Recovery.run ~config:unconstrained ~region_of
      (Ckks.Evaluator.create ~seed:9L prm)
      managed env
  in
  checki "unconstrained run never evicts" 0 s0.Resilience.Recovery.evictions;
  checkb "tail produced several checkpoints" true
    (s0.Resilience.Recovery.checkpoints >= 5);
  let per =
    s0.Resilience.Recovery.checkpoint_bytes_peak
    /. float_of_int s0.Resilience.Recovery.checkpoints
  in
  let tight =
    {
      Resilience.Recovery.default with
      Resilience.Recovery.checkpoint_budget_bytes = Some (2.5 *. per);
    }
  in
  let _, s =
    Resilience.Recovery.run ~config:tight ~region_of
      (Ckks.Evaluator.create ~seed:9L prm)
      managed env
  in
  checkb "budget pressure forced evictions" true (s.Resilience.Recovery.evictions >= 3);
  checkb "kept the expensive-prefix guard" true
    (List.mem split s.Resilience.Recovery.held_checkpoints);
  checkb "churned a cheap tail guard instead" true
    (not (List.mem (split + 1) s.Resilience.Recovery.held_checkpoints))

let recovery_faultoff_identity =
  qcheck ~count:20 "fault-off recovery is bit-identical to Interp.run"
    (random_dfg_gen ~max_nodes:30 ~max_depth:8)
    (fun params ->
      let g = build_random_dfg params in
      match Resbm.Driver.compile prm g with
      | exception Resbm.Btsmgr.No_plan _ -> true
      | managed, report ->
          let input = input_env ~dim 29L in
          let env = { Interp.inputs = [ ("x", input) ]; consts = const_env ~dim } in
          let region_of id =
            let attr = report.Resbm.Report.region_of in
            if id < Array.length attr then attr.(id) else -1
          in
          let r1 = Interp.run (Ckks.Evaluator.create ~seed:77L prm) managed env in
          let r2, stats =
            Resilience.Recovery.run ~region_of
              (Ckks.Evaluator.create ~seed:77L prm)
              managed env
          in
          stats.Resilience.Recovery.retries = 0
          && stats.Resilience.Recovery.panic_refreshes = 0
          && r1.Interp.latency_ms = r2.Interp.latency_ms
          && r1.Interp.op_count = r2.Interp.op_count
          && List.for_all2
               (fun (a : Ckks.Ciphertext.t) (b : Ckks.Ciphertext.t) ->
                 a.Ckks.Ciphertext.slots = b.Ckks.Ciphertext.slots
                 && a.Ckks.Ciphertext.err = b.Ckks.Ciphertext.err
                 && a.Ckks.Ciphertext.level = b.Ckks.Ciphertext.level
                 && a.Ckks.Ciphertext.scale_bits = b.Ckks.Ciphertext.scale_bits)
               r1.Interp.outputs r2.Interp.outputs)

(* --- graceful planner degradation ---------------------------------------- *)

let robust_compile_no_degradation () =
  let g = fig3_poly () in
  let _, report = Resbm.Driver.compile_robust prm g in
  check Alcotest.string "first tier wins" "resbm" report.Resbm.Report.manager;
  checkb "no fallbacks recorded" true (report.Resbm.Report.fallbacks = [])

let robust_compile_degrades_on_fuel () =
  let g = fig3_poly () in
  let m = Obs.Metrics.create () in
  let managed, report =
    Obs.with_metrics m (fun () -> Resbm.Driver.compile_robust ~fuel_steps:1 prm g)
  in
  check Alcotest.string "terminal tier survives" "eager" report.Resbm.Report.manager;
  checki "two recorded downgrades" 2 (List.length report.Resbm.Report.fallbacks);
  List.iter
    (fun (tier, reason) ->
      checkb (tier ^ " reason mentions fuel") true
        (String.length reason >= 4 && String.sub reason 0 4 = "fuel"))
    report.Resbm.Report.fallbacks;
  checki "fallbacks counted per tier" 1
    (Obs.Metrics.counter_value ~labels:[ ("tier", "resbm") ] m "planner_fallbacks_total");
  checki "fallbacks counted per tier" 1
    (Obs.Metrics.counter_value
       ~labels:[ ("tier", "waterline") ]
       m "planner_fallbacks_total");
  (* the degraded plan must still be a legal, runnable program *)
  checkb "eager-tier graph is scale-legal" true
    (Result.is_ok (Scale_check.run prm managed));
  let env = { Interp.inputs = [ ("x", input_env ~dim 3L) ]; consts = const_env ~dim } in
  let result = Interp.run (Ckks.Evaluator.create prm) managed env in
  checkb "eager-tier graph executes" true (result.Interp.op_count > 0)

let fallbacks_render_in_report () =
  let g = fig3_poly () in
  let _, report = Resbm.Driver.compile_robust ~fuel_steps:1 prm g in
  let rendered = Format.asprintf "%a" Resbm.Report.pp report in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  checkb "pp lists the failed tiers" true (contains rendered "degraded");
  checkb "pp names resbm" true (contains rendered "resbm failed");
  match Resbm.Report.to_json report with
  | Obs.Json.Obj fields ->
      (match List.assoc_opt "fallbacks" fields with
      | Some (Obs.Json.List l) -> checki "two JSON fallbacks" 2 (List.length l)
      | _ -> Alcotest.fail "fallbacks missing from report JSON")
  | _ -> Alcotest.fail "report JSON not an object"

let fuel_spend_is_metered () =
  let m = Obs.Metrics.create () in
  Obs.with_metrics m (fun () ->
      let fuel = Resbm.Fuel.create ~stage:"test" 2 in
      Resbm.Fuel.spend fuel;
      Resbm.Fuel.spend fuel;
      (match Resbm.Fuel.spend fuel with
      | _ -> Alcotest.fail "expected exhaustion"
      | exception Resbm.Fuel.Exhausted stage -> check Alcotest.string "stage" "test" stage);
      checki "remaining" 0 (Resbm.Fuel.remaining fuel));
  checki "spend counted" 2
    (Obs.Metrics.counter_value ~labels:[ ("stage", "test") ] m "planner_fuel_spent_total");
  checki "exhaustion counted" 1
    (Obs.Metrics.counter_value
       ~labels:[ ("stage", "test") ]
       m "planner_fuel_exhausted_total")

(* --- chaos campaigns ------------------------------------------------------ *)

let chaos_config =
  {
    Resilience.Chaos.default with
    Resilience.Chaos.trials = 8;
    models = [ "tiny" ];
    l_max = 9;
    dim = 16;
  }

let chaos_campaign_is_deterministic () =
  let r1 = Resilience.Chaos.run chaos_config in
  let r2 = Resilience.Chaos.run chaos_config in
  check Alcotest.string "byte-identical reports"
    (Obs.Json.to_string (Resilience.Chaos.to_json r1))
    (Obs.Json.to_string (Resilience.Chaos.to_json r2))

let chaos_campaign_recovers () =
  let m = Obs.Metrics.create () in
  let r = Resilience.Chaos.run ~metrics:m chaos_config in
  let ms = List.hd r.Resilience.Chaos.models in
  checki "all trials ran" 8 ms.Resilience.Chaos.trials_run;
  checkb "faults were injected" true (ms.Resilience.Chaos.injected_faults > 0);
  checkb "injection-free trials replay the reference exactly" true
    ms.Resilience.Chaos.clean_identical;
  checkb "faulted trials recover" true (r.Resilience.Chaos.overall_recovery_rate >= 0.95);
  checki "trials counted" 8
    (Obs.Metrics.counter_value ~labels:[ ("model", "tiny") ] m "chaos_trials_total");
  (* The report shares the serving recovery-accounting schema at every
     level: trial, model, and campaign JSON all carry a "recovery" object. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let rendered = Obs.Json.to_string (Resilience.Chaos.to_json r) in
  List.iter
    (fun key -> checkb (key ^ " in chaos JSON") true (contains rendered key))
    [ "\"recovery\""; "\"recovery_ms_by_kind\""; "\"backoff_ms_total\""; "\"capped_backoffs\"" ];
  checkb "campaign-level backoff aggregated" true (r.Resilience.Chaos.backoff_ms_total >= 0.0)

let suite =
  [
    case "structured errors: every Table 1 constraint path" constraint_fixtures;
    case "evaluator errors counted exactly once" evaluator_errors_counted_once;
    case "interp illegal-graph errors counted exactly once"
      interp_illegal_graph_counted_once;
    case "injected transients escape plain runs, counted once"
      injected_transient_counted_once;
    case "injector campaigns are deterministic" injector_is_deterministic;
    case "fault budget caps injections" budget_caps_injections;
    case "rules filter by op and node" rules_filter_by_op_and_node;
    case "injections leave fault trace instants" injection_leaves_trace_instant;
    case "recovery survives an injected transient" recovery_survives_transient;
    case "recovery survives a noise spike" recovery_survives_noise_spike;
    case "exponential backoff is capped and counted" backoff_is_capped_and_counted;
    case "panic refresh repairs noise when retries are off"
      panic_refresh_when_retries_disabled;
    case "checkpoint eviction respects the byte budget"
      recovery_checkpoints_respect_budget;
    case "slot checksum detects sub-floor corruption"
      recovery_detects_subfloor_corruption;
    case "eviction keeps the highest-value checkpoint"
      recovery_eviction_keeps_expensive_guard;
    recovery_faultoff_identity;
    case "compile_robust: first tier wins when healthy" robust_compile_no_degradation;
    case "compile_robust: fuel exhaustion degrades to eager"
      robust_compile_degrades_on_fuel;
    case "fallbacks render in pp and JSON" fallbacks_render_in_report;
    case "fuel spend and exhaustion are metered" fuel_spend_is_metered;
    case "chaos campaign is byte-deterministic" chaos_campaign_is_deterministic;
    case "chaos campaign recovers injected faults" chaos_campaign_recovers;
  ]
