(* The flight-deck observability tier: the Log ring buffer (overflow,
   filtering, ambient context, JSONL round-trip), Rt pool telemetry and
   its Perfetto export, Health verdicts and exit codes, gc_span metric
   publication, the stdout-in-lib source lint, the informational GC
   bench columns — and the headline contract that installing all of it
   changes no compile result bit. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* Same deterministic snapshot as test_parallel_cache: everything a
   compile promises to reproduce bit-for-bit. *)
let fingerprint ((g : Dfg.t), (r : Resbm.Report.t)) =
  ( Dfg.export g,
    r.Resbm.Report.manager,
    r.Resbm.Report.latency_ms,
    r.Resbm.Report.stats,
    r.Resbm.Report.segments,
    r.Resbm.Report.repair_bootstraps,
    r.Resbm.Report.ms_opt_hoists,
    r.Resbm.Report.region_count,
    Array.to_list r.Resbm.Report.region_of,
    r.Resbm.Report.fallbacks )

(* --- the log ring --------------------------------------------------------- *)

let ring_overflow_drops_oldest () =
  let sink = Obs.Log.create ~capacity:4 () in
  for i = 0 to 9 do
    Obs.Log.record sink ~level:Obs.Log.Info ~event:(Printf.sprintf "e%d" i) ()
  done;
  checki "every record counted" 10 (Obs.Log.recorded sink);
  checki "overflow counted" 6 (Obs.Log.dropped sink);
  checki "nothing filtered" 0 (Obs.Log.filtered sink);
  let survivors = Obs.Log.records sink in
  checki "capacity survivors" 4 (List.length survivors);
  checkb "newest records survive, chronological" true
    (List.map (fun r -> r.Obs.Log.lseq) survivors = [ 6; 7; 8; 9 ]);
  checkb "events match sequence" true
    (List.map (fun r -> r.Obs.Log.event) survivors = [ "e6"; "e7"; "e8"; "e9" ])

let min_level_filters () =
  let sink = Obs.Log.create ~min_level:Obs.Log.Warn () in
  List.iter
    (fun level -> Obs.Log.record sink ~level ~event:"e" ())
    [ Obs.Log.Debug; Obs.Log.Info; Obs.Log.Warn; Obs.Log.Error ];
  checki "below-threshold records rejected" 2 (Obs.Log.filtered sink);
  checki "warn and error kept" 2 (Obs.Log.recorded sink);
  checkb "kept levels" true
    (List.map (fun r -> r.Obs.Log.level) (Obs.Log.records sink)
    = [ Obs.Log.Warn; Obs.Log.Error ])

let ambient_context_attribution () =
  let sink = Obs.Log.create () in
  Obs.with_log sink (fun () ->
      Obs.log_info ~event:"outer" "before any context";
      Obs.with_log_ctx ~compile_id:7 ~pass:"plan" (fun () ->
          Obs.with_log_ctx ~region:3 ~node:11 (fun () ->
              Obs.log_warn ~event:"inner"
                ~fields:[ ("k", Obs.Json.Int 1) ]
                "nested context")));
  (* outside the callback the sink is gone: emission is a no-op *)
  Obs.log_error ~event:"orphan" "no ambient sink";
  match Obs.Log.records sink with
  | [ outer; inner ] ->
      checki "no context: compile_id unattributed" (-1) outer.Obs.Log.compile_id;
      check Alcotest.string "no context: pass empty" "" outer.Obs.Log.pass;
      checki "nested: compile id from the outer frame" 7 inner.Obs.Log.compile_id;
      check Alcotest.string "nested: pass from the outer frame" "plan"
        inner.Obs.Log.pass;
      checki "nested: region from the inner frame" 3 inner.Obs.Log.region;
      checki "nested: node from the inner frame" 11 inner.Obs.Log.node;
      checki "emitting domain recorded" ((Domain.self () :> int)) inner.Obs.Log.domain;
      checkb "structured fields kept" true
        (inner.Obs.Log.fields = [ ("k", Obs.Json.Int 1) ]);
      checkb "level helper sets the level" true (inner.Obs.Log.level = Obs.Log.Warn)
  | rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let jsonl_round_trip () =
  let sink = Obs.Log.create () in
  Obs.Log.record sink ~level:Obs.Log.Info ~event:"a" ~msg:"plain" ();
  Obs.Log.record sink ~level:Obs.Log.Error ~event:"b" ~sim_ms:12.5 ~compile_id:3
    ~pass:"verify" ~region:1 ~node:42
    ~fields:[ ("ratio", Obs.Json.Float 1.5); ("tag", Obs.Json.String "x\"y") ]
    ();
  let records = Obs.Log.records sink in
  (match Obs.Log.of_jsonl (Obs.Log.to_jsonl sink) with
  | Error m -> Alcotest.failf "of_jsonl failed: %s" m
  | Ok back -> checkb "to_jsonl/of_jsonl is the identity" true (back = records));
  List.iter
    (fun r ->
      match Obs.Log.record_of_json (Obs.Log.record_to_json r) with
      | Error m -> Alcotest.failf "record_of_json failed: %s" m
      | Ok r' -> checkb "record json round-trip" true (r' = r))
    records;
  (* blank lines are tolerated between records *)
  match Obs.Log.of_jsonl ("" :: Obs.Log.to_jsonl sink @ [ "" ]) with
  | Error m -> Alcotest.failf "blank-line of_jsonl failed: %s" m
  | Ok back -> checki "blank lines skipped" 2 (List.length back)

let log_instants_land_on_the_right_process () =
  let sink = Obs.Log.create () in
  Obs.Log.record sink ~level:Obs.Log.Info ~event:"compile.side" ();
  Obs.Log.record sink ~level:Obs.Log.Warn ~event:"exec.side" ~sim_ms:3.0 ~region:2 ();
  match Obs.Log.chrome_events (Obs.Log.records sink) with
  | [ a; b ] ->
      let member k j = Obs.Json.member k j in
      checkb "instant phase" true
        (member "ph" a = Some (Obs.Json.String "i")
        && member "ph" b = Some (Obs.Json.String "i"));
      checkb "untimed record on the compile process" true
        (member "pid" a = Some (Obs.Json.Int 0));
      checkb "timed record on the execution process" true
        (member "pid" b = Some (Obs.Json.Int 1));
      checkb "category encodes the level" true
        (member "cat" a = Some (Obs.Json.String "log.info")
        && member "cat" b = Some (Obs.Json.String "log.warn"))
  | es -> Alcotest.failf "expected 2 instants, got %d" (List.length es)

(* --- telemetry off = bit-identity ----------------------------------------- *)

let flight_off_identity =
  qcheck ~count:30 "full flight instrumentation changes no compile bit"
    (random_dfg_gen ~max_nodes:40 ~max_depth:8)
    (fun params ->
      let mgr =
        let all = Resbm.Variants.all in
        List.nth all (Hashtbl.hash params mod List.length all)
      in
      let compile g =
        match Resbm.Variants.compile ~jobs:2 mgr prm g with
        | r -> Some (fingerprint r)
        | exception Resbm.Btsmgr.No_plan _ -> None
      in
      let plain = compile (build_random_dfg params) in
      let flown =
        Obs.with_log (Obs.Log.create ()) @@ fun () ->
        Obs.with_metrics (Obs.Metrics.create ()) @@ fun () ->
        Obs.with_rt (Obs.Rt.create ()) @@ fun () ->
        compile (build_random_dfg params)
      in
      plain = flown)

(* --- Rt pool telemetry ----------------------------------------------------- *)

let sequential_pool_records_nothing () =
  let rt = Obs.Rt.create () in
  Obs.with_rt rt (fun () -> ignore (Resbm.Par.tabulate ~jobs:1 8 Fun.id));
  checkb "jobs=1 takes the sequential path" true (Obs.Rt.pools rt = []);
  checkb "no pools means no perfetto track" true (Obs.Rt.chrome_events rt = [])

let parallel_pool_accounts_every_task () =
  let rt = Obs.Rt.create () in
  Obs.with_rt rt (fun () ->
      ignore (Resbm.Par.tabulate ~jobs:4 ~label:"flight_test" 33 Fun.id));
  match Obs.Rt.pools rt with
  | [ p ] ->
      check Alcotest.string "label" "flight_test" p.Obs.Rt.p_label;
      checki "jobs" 4 p.Obs.Rt.p_jobs;
      checki "tasks" 33 p.Obs.Rt.p_tasks;
      checki "one worker row per slot" 4 (List.length p.Obs.Rt.p_workers);
      checkb "workers listed in slot order" true
        (List.map (fun w -> w.Obs.Rt.w_id) p.Obs.Rt.p_workers = [ 0; 1; 2; 3 ]);
      checki "per-worker task counts sum to the pool" 33
        (List.fold_left (fun acc w -> acc + w.Obs.Rt.w_tasks) 0 p.Obs.Rt.p_workers);
      let indices =
        List.concat_map
          (fun w -> List.map (fun s -> s.Obs.Rt.t_index) w.Obs.Rt.w_spans)
          p.Obs.Rt.p_workers
      in
      checkb "every task index spanned exactly once" true
        (List.sort compare indices = List.init 33 Fun.id);
      checkb "span counts match task counts" true
        (List.for_all
           (fun w -> List.length w.Obs.Rt.w_spans = w.Obs.Rt.w_tasks)
           p.Obs.Rt.p_workers)
  | ps -> Alcotest.failf "expected 1 pool, got %d" (List.length ps)

let rt_export_is_deterministic () =
  (* Same collector, two exports: the merged per-domain timeline must
     serialise identically — worker rows are already in slot order, so
     the export never depends on drain interleaving. *)
  let rt = Obs.Rt.create () in
  Obs.with_rt rt (fun () ->
      ignore (Resbm.Par.tabulate ~jobs:4 20 Fun.id);
      ignore (Resbm.Par.tabulate ~jobs:2 7 Fun.id));
  checki "both fan-outs recorded" 2 (List.length (Obs.Rt.pools rt));
  let export () = Obs.Json.to_string (Obs.Json.List (Obs.Rt.chrome_events rt)) in
  check Alcotest.string "chrome export is stable" (export ()) (export ());
  check Alcotest.string "json export is stable"
    (Obs.Json.to_string (Obs.Rt.to_json rt))
    (Obs.Json.to_string (Obs.Rt.to_json rt))

let gc_span_publishes_pressure () =
  let m = Obs.Metrics.create () in
  Obs.with_metrics m (fun () ->
      Obs.gc_span "flight_phase" (fun () ->
          ignore (Sys.opaque_identity (Array.init 4096 float_of_int))));
  (match
     Obs.Metrics.histogram ~labels:[ ("phase", "flight_phase") ] m "gc_minor_words"
   with
  | None -> Alcotest.fail "gc_minor_words{flight_phase} not published"
  | Some h -> checkb "one observation, non-negative" true
        (h.Obs.Metrics.hcount = 1 && h.Obs.Metrics.hsum >= 0.0));
  checkb "peak heap gauge set" true (Obs.Metrics.gauge m "gc_top_heap_words" <> None);
  (* without an ambient registry the span publishes nowhere *)
  let m' = Obs.Metrics.create () in
  Obs.gc_span "orphan" (fun () -> ());
  checkb "no ambient registry, no metrics" true (Obs.Metrics.all_histograms m' = [])

let metrics_json_round_trip () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:3 ~labels:[ ("model", "tiny") ] m "chaos_trials_total";
  Obs.Metrics.set m "log_dropped_records" 6.0;
  List.iter
    (Obs.Metrics.observe ~labels:[ ("op", "mul_cc") ] m "noise_headroom_bits")
    [ 5.5; 7.25; 12.0 ];
  let dump m = Obs.Json.to_string (Obs.Metrics.to_json m) in
  match Obs.Metrics.of_json (Obs.Metrics.to_json m) with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok m' -> check Alcotest.string "to_json . of_json . to_json is stable"
        (dump m) (dump m')

(* --- health --------------------------------------------------------------- *)

let find_check rule (v : Obs.Health.verdict) =
  match List.find_opt (fun c -> c.Obs.Health.rule = rule) v.Obs.Health.checks with
  | Some c -> c
  | None -> Alcotest.failf "rule %s missing from the verdict" rule

let health_vacuous_run_is_healthy () =
  let v = Obs.Health.evaluate (Obs.Metrics.create ()) in
  checkb "nothing measured, nothing failed" true v.Obs.Health.healthy;
  checki "exit code" 0 (Obs.Health.exit_code v);
  List.iter
    (fun rule ->
      let c = find_check rule v in
      checkb (rule ^ " inapplicable") false c.Obs.Health.applicable;
      checkb (rule ^ " passes vacuously") true (c.Obs.Health.severity = Obs.Health.Pass))
    [ "noise-headroom"; "recovery-rate"; "gc-pressure" ]

let health_recovery_floor_fails () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.incr ~by:10 ~labels:[ ("model", "tiny") ] m "chaos_faulted_total";
  Obs.Metrics.incr ~by:5 ~labels:[ ("model", "tiny") ] m "chaos_recovered_total";
  let v = Obs.Health.evaluate m in
  let c = find_check "recovery-rate" v in
  checkb "applicable once trials faulted" true c.Obs.Health.applicable;
  check_float "measured rate" 0.5 c.Obs.Health.value;
  checkb "0.5 < 0.9 floor fails" true (c.Obs.Health.severity = Obs.Health.Fail);
  checkb "verdict unhealthy" false v.Obs.Health.healthy;
  checki "exit code" 2 (Obs.Health.exit_code v);
  (* a relaxed floor flips the same registry back to healthy *)
  let relaxed =
    { Obs.Health.default_thresholds with Obs.Health.recovery_rate_floor = 0.4 }
  in
  let v' = Obs.Health.evaluate ~thresholds:relaxed m in
  checkb "relaxed floor passes" true v'.Obs.Health.healthy

let health_warn_rules_never_flip () =
  (* Error-level logs and ring overflow are anomalies worth surfacing but
     not gating: severity Warn, verdict stays healthy. *)
  let m = Obs.Metrics.create () in
  Obs.Metrics.set m "log_dropped_records" 3.0;
  let sink = Obs.Log.create () in
  Obs.with_log sink (fun () -> Obs.log_error ~event:"run.failed" "boom");
  let v = Obs.Health.evaluate ~records:(Obs.Log.records sink) m in
  checkb "error-logs warns" true
    ((find_check "error-logs" v).Obs.Health.severity = Obs.Health.Warn);
  checkb "ring-overflow warns" true
    ((find_check "ring-overflow" v).Obs.Health.severity = Obs.Health.Warn);
  checkb "warn-only rules keep the verdict healthy" true v.Obs.Health.healthy;
  checki "exit code" 0 (Obs.Health.exit_code v)

let health_refutations_fail_from_logs () =
  (* The refutation rule reads both the metrics counters and the log
     stream, so a flight file with records but no counters still gates. *)
  let sink = Obs.Log.create () in
  Obs.with_log sink (fun () ->
      Obs.log_error ~event:"certify.refuted" "certificate mismatch");
  let v =
    Obs.Health.evaluate ~records:(Obs.Log.records sink) (Obs.Metrics.create ())
  in
  let c = find_check "refutations" v in
  checkb "refutation seen through the log stream" true
    (c.Obs.Health.severity = Obs.Health.Fail);
  checkb "verdict unhealthy" false v.Obs.Health.healthy;
  (* and the json export carries the verdict for --json consumers *)
  checkb "json verdict field" true
    (Obs.Json.member "healthy" (Obs.Health.to_json v) = Some (Obs.Json.Bool false))

(* --- stdout-in-lib lint ---------------------------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "resbm_lint" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let lint_flags_raw_stdout () =
  with_temp_dir (fun dir ->
      let lines =
        [
          "let a () = print_endline \"x\"";
          "let b () = print_endline \"y\" (* log-ok: CLI surface *)";
          "let c ppf = Format.pp_print_string ppf \"z\"";
          "let d () = Printf.printf \"%d\" 3";
          "let pretty_print_endline = 1";
        ]
      in
      let oc = open_out (Filename.concat dir "offender.ml") in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      let diags =
        List.filter
          (fun d -> d.Analysis.Diag.rule = "stdout-in-lib")
          (Analysis.Lint.scan_planner_sources ~dir)
      in
      checki "two offenders flagged" 2 (List.length diags);
      let flagged_lines =
        List.map
          (fun d ->
            Scanf.sscanf
              (String.concat ":"
                 (List.tl (String.split_on_char ':' d.Analysis.Diag.message)))
              "%d" Fun.id)
          diags
        |> List.sort compare
      in
      checkb "only the raw print and printf lines flagged" true
        (flagged_lines = [ 1; 4 ]);
      checkb "warning severity" true
        (List.for_all
           (fun d -> d.Analysis.Diag.severity = Analysis.Diag.Warning)
           diags))

(* --- informational bench columns ------------------------------------------- *)

let bench_source ?(latency = 100.0) ?gc_minor () =
  let gc =
    match gc_minor with
    | None -> ""
    | Some w -> Printf.sprintf {|, "gc_minor_words": %f|} w
  in
  Printf.sprintf
    {|{"bench": "resbm", "schema_version": 2, "git_rev": "test", "trials": 1,
       "l_max": 9,
       "models": [{"model": "tiny", "managers": [
         {"manager": "resbm", "latency_ms": %f, "bootstrap_count": 3.0,
          "executed_rescales": 5.0, "nodes": 40.0,
          "predicted_precision_bits": 20.0%s}]}]}|}
    latency gc

let load_source s =
  match Obs.Bench_diff.load s with
  | Ok src -> src
  | Error e -> Alcotest.failf "bench load failed: %s" e

let bench_gc_columns_are_informational () =
  let base = load_source (bench_source ~gc_minor:1000.0 ()) in
  let cand = load_source (bench_source ~gc_minor:5000.0 ()) in
  match Obs.Bench_diff.diff ~base ~cand () with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok o ->
      let gc =
        match
          List.find_opt (fun c -> c.Obs.Bench_diff.metric = "gc_minor_words")
            o.Obs.Bench_diff.cells
        with
        | Some c -> c
        | None -> Alcotest.fail "gc cell missing"
      in
      checkb "reported as informational" true gc.Obs.Bench_diff.informational;
      checkb "5x allocation shows as regressed" true
        (gc.Obs.Bench_diff.verdict = Obs.Bench_diff.Regressed);
      checkb "excluded from deterministic changes" true
        (Obs.Bench_diff.deterministic_changes o = []);
      checkb "excluded from regressions" true (Obs.Bench_diff.regressions o = []);
      checki "never gates" 0 (Obs.Bench_diff.exit_code o)

let bench_missing_gc_column_tolerated () =
  (* An old baseline without the GC columns diffs cleanly against a new
     candidate that has them: no cell, no gate. *)
  let base = load_source (bench_source ()) in
  let cand = load_source (bench_source ~gc_minor:5000.0 ()) in
  (match Obs.Bench_diff.diff ~base ~cand () with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok o ->
      checkb "one-sided column yields no cell" true
        (not
           (List.exists (fun c -> c.Obs.Bench_diff.informational)
              o.Obs.Bench_diff.cells));
      checki "old baseline still passes" 0 (Obs.Bench_diff.exit_code o));
  (* while deterministic drift still gates as before *)
  let faster = load_source (bench_source ~latency:90.0 ()) in
  match Obs.Bench_diff.diff ~base ~cand:faster () with
  | Error e -> Alcotest.failf "diff failed: %s" e
  | Ok o ->
      checkb "deterministic drift detected" true
        (Obs.Bench_diff.deterministic_changes o <> []);
      checki "deterministic drift gates" 2 (Obs.Bench_diff.exit_code o)

let suite =
  [
    case "log ring drops oldest records on overflow" ring_overflow_drops_oldest;
    case "log min-level filtering" min_level_filters;
    case "ambient context attributes records" ambient_context_attribution;
    case "log jsonl round-trip is exact" jsonl_round_trip;
    case "log instants land on the right process" log_instants_land_on_the_right_process;
    flight_off_identity;
    case "rt: sequential pool records nothing" sequential_pool_records_nothing;
    case "rt: parallel pool accounts every task" parallel_pool_accounts_every_task;
    case "rt: perfetto export is deterministic" rt_export_is_deterministic;
    case "gc_span publishes pressure to ambient metrics" gc_span_publishes_pressure;
    case "metrics json round-trip is stable" metrics_json_round_trip;
    case "health: vacuous run is healthy" health_vacuous_run_is_healthy;
    case "health: recovery floor breach fails" health_recovery_floor_fails;
    case "health: warn-only rules never flip the verdict" health_warn_rules_never_flip;
    case "health: refutations gate from the log stream" health_refutations_fail_from_logs;
    case "lint: stdout-in-lib flags raw prints" lint_flags_raw_stdout;
    case "bench: gc columns diff informationally" bench_gc_columns_are_informational;
    case "bench: missing gc columns tolerated" bench_missing_gc_column_tolerated;
  ]
