(* Obs: timers, counters, spans, JSON round-trip, and the compile-pipeline
   profile regression. *)
open Test_util

(* --- Timer -------------------------------------------------------------- *)

let timer_monotone () =
  let t = Obs.Timer.start () in
  let a = Obs.Timer.elapsed_ms t in
  let b = Obs.Timer.elapsed_ms t in
  checkb "non-negative" true (a >= 0.0);
  checkb "monotone" true (b >= a)

(* --- Counters ------------------------------------------------------------ *)

let counter_semantics () =
  let p = Obs.Profile.create () in
  checki "absent counter reads 0" 0 (Obs.Profile.counter p "x");
  Obs.Profile.incr p "x";
  Obs.Profile.incr ~by:41 p "x";
  Obs.Profile.incr p "y";
  checki "accumulates" 42 (Obs.Profile.counter p "x");
  checki "independent" 1 (Obs.Profile.counter p "y");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted listing"
    [ ("x", 42); ("y", 1) ]
    (Obs.Profile.counters p)

let series_semantics () =
  let p = Obs.Profile.create () in
  check (Alcotest.list (Alcotest.float 0.0)) "absent series empty" []
    (Obs.Profile.series p "v");
  Obs.Profile.observe p "v" 1.5;
  Obs.Profile.observe p "v" 2.5;
  check (Alcotest.list (Alcotest.float 0.0)) "insertion order" [ 1.5; 2.5 ]
    (Obs.Profile.series p "v")

(* --- Spans --------------------------------------------------------------- *)

let span_semantics () =
  let p = Obs.Profile.create () in
  let v = Obs.Profile.span p "outer" (fun () -> Obs.Profile.span p "inner" (fun () -> 7)) in
  checki "returns the callback result" 7 v;
  match Obs.Profile.spans p with
  | [ outer; inner ] ->
      check Alcotest.string "outer first (start order)" "outer" outer.Obs.Profile.name;
      checki "outer at depth 0" 0 outer.Obs.Profile.depth;
      check Alcotest.string "inner second" "inner" inner.Obs.Profile.name;
      checki "inner at depth 1" 1 inner.Obs.Profile.depth;
      checkb "inner no longer than outer" true
        (inner.Obs.Profile.dur_ms <= outer.Obs.Profile.dur_ms +. 1e-6);
      checkb "inner starts after outer" true
        (inner.Obs.Profile.start_ms >= outer.Obs.Profile.start_ms)
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let span_records_on_exception () =
  let p = Obs.Profile.create () in
  (try Obs.Profile.span p "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Obs.Profile.spans p with
  | [ s ] ->
      check Alcotest.string "recorded despite raise" "boom" s.Obs.Profile.name;
      checki "depth popped back to 0" 0 s.Obs.Profile.depth
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* --- Ambient profile ------------------------------------------------------ *)

let ambient_noop_and_install () =
  checkb "no ambient profile by default" true (Obs.current () = None);
  (* conveniences must be harmless without a profile *)
  Obs.incr "nope";
  Obs.observe "nope" 1.0;
  checki "span passes through" 3 (Obs.span "s" (fun () -> 3));
  let p = Obs.Profile.create () in
  Obs.with_profile p (fun () ->
      Obs.incr "hit";
      Obs.observe "val" 2.0;
      ignore (Obs.span "timed" (fun () -> ()));
      checkb "installed" true
        (match Obs.current () with Some q -> q == p | None -> false));
  checkb "restored after" true (Obs.current () = None);
  checki "counter recorded" 1 (Obs.Profile.counter p "hit");
  check (Alcotest.list (Alcotest.float 0.0)) "series recorded" [ 2.0 ]
    (Obs.Profile.series p "val");
  checki "span recorded" 1 (List.length (Obs.Profile.spans p))

let ambient_maxflow_counters () =
  let p = Obs.Profile.create () in
  Obs.with_profile p (fun () ->
      let net = Graphlib.Maxflow.create 2 in
      Graphlib.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1.0;
      ignore (Graphlib.Maxflow.max_flow net ~source:0 ~sink:1));
  checki "maxflow.runs" 1 (Obs.Profile.counter p "maxflow.runs");
  checkb "maxflow.bfs_phases nonzero" true (Obs.Profile.counter p "maxflow.bfs_phases" > 0)

(* --- JSON ----------------------------------------------------------------- *)

let json_roundtrip_handwritten () =
  let v =
    Obs.Json.(
      Obj
        [
          ("a", Int 1);
          ("neg", Int (-42));
          ("f", Float 0.1);
          ("whole", Float 7.0);
          ("big", Float 1e22);
          ("list", List [ Null; Bool true; Bool false; String "x\"\\\n\tesc" ]);
          ("empty_obj", Obj []);
          ("empty_list", List []);
          ("nested", Obj [ ("k", List [ Obj [ ("deep", Int 3) ] ]) ]);
        ])
  in
  match Obs.Json.of_string (Obs.Json.to_string v) with
  | Ok v' -> checkb "round-trips exactly" true (v = v')
  | Error m -> Alcotest.fail m

let json_parse_foreign () =
  (* whitespace, \u escapes, and number forms we don't emit ourselves *)
  match Obs.Json.of_string "  { \"k\" : [ 1 , -2.5e1 , \"\\u0041\" , null ] }  " with
  | Ok v ->
      checkb "parsed" true
        (v
        = Obs.Json.Obj
            [ ("k", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float (-25.0); Obs.Json.String "A"; Obs.Json.Null ]) ])
  | Error m -> Alcotest.fail m

let json_rejects_garbage () =
  checkb "trailing garbage" true (Result.is_error (Obs.Json.of_string "{} x"));
  checkb "unterminated string" true (Result.is_error (Obs.Json.of_string "\"abc"));
  checkb "bare word" true (Result.is_error (Obs.Json.of_string "bogus"))

let json_float_roundtrip =
  qcheck ~count:300 "every float round-trips through JSON (or degrades to null)"
    QCheck2.Gen.float
    (fun f ->
      match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
      | Ok (Obs.Json.Float f') -> Float.equal f' f
      | Ok Obs.Json.Null -> Float.is_nan f || Float.abs f = infinity
      | _ -> false)

let json_profile_serialisation () =
  let p = Obs.Profile.create () in
  Obs.Profile.incr ~by:3 p "c";
  Obs.Profile.observe p "s" 1.0;
  Obs.Profile.observe p "s" 3.0;
  ignore (Obs.Profile.span p "phase" (fun () -> ()));
  let json = Obs.Profile.to_json p in
  (match Obs.Json.of_string (Obs.Json.to_string json) with
  | Ok v -> checkb "profile JSON round-trips" true (v = json)
  | Error m -> Alcotest.fail m);
  (match Obs.Json.member "counters" json with
  | Some (Obs.Json.Obj [ ("c", Obs.Json.Int 3) ]) -> ()
  | _ -> Alcotest.fail "counters object malformed");
  match Obs.Json.member "series" json with
  | Some (Obs.Json.Obj [ ("s", series) ]) -> (
      (match Obs.Json.member "count" series with
      | Some (Obs.Json.Int 2) -> ()
      | _ -> Alcotest.fail "series count");
      match Obs.Json.member "sum" series with
      | Some (Obs.Json.Float sum) -> check_float ~eps:1e-9 "series sum" 4.0 sum
      | _ -> Alcotest.fail "series sum")
  | _ -> Alcotest.fail "series object malformed"

(* --- Compile-pipeline profile regression ----------------------------------- *)

let compile_profile_regression () =
  let prm = Ckks.Params.default in
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let _, report = Resbm.Variants.(compile resbm) prm lowered.Nn.Lowering.dfg in
  let p = report.Resbm.Report.profile in
  let top = List.filter (fun s -> s.Obs.Profile.depth = 0) (Obs.Profile.spans p) in
  let names = List.map (fun s -> s.Obs.Profile.name) top in
  List.iter
    (fun phase -> checkb (phase ^ " phase present") true (List.mem phase names))
    [ "region_build"; "plan"; "apply"; "latency"; "stats" ];
  let sum = List.fold_left (fun acc s -> acc +. s.Obs.Profile.dur_ms) 0.0 top in
  checkb "phase durations sum <= compile_ms" true
    (sum <= report.Resbm.Report.compile_ms +. 0.5);
  checkb "maxflow ran" true (Obs.Profile.counter p "maxflow.runs" > 0);
  checkb "bfs phases counted" true (Obs.Profile.counter p "maxflow.bfs_phases" > 0);
  checkb "augmenting paths counted" true (Obs.Profile.counter p "maxflow.aug_paths" > 0);
  checkb "per-region cut values recorded" true (Obs.Profile.series p "smoplc.cut_value" <> []);
  checkb "DP dimensions recorded" true (Obs.Profile.series p "btsmgr.dp_regions" <> []);
  (* the full report serialises and parses back identically *)
  let json = Resbm.Report.to_json report in
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Ok v -> checkb "report JSON round-trips" true (Obs.Json.to_string v = Obs.Json.to_string json)
  | Error m -> Alcotest.fail m

let ms_opt_hoists_reported () =
  (* ReSBM_max runs the modswitch hoist pass; the count must land in the
     report instead of being dropped on the floor. *)
  let prm = Ckks.Params.default in
  let lowered = Nn.Lowering.lower Nn.Model.tiny in
  let _, plain = Resbm.Variants.(compile resbm) prm lowered.Nn.Lowering.dfg in
  checki "ms_opt off reports 0 hoists" 0 plain.Resbm.Report.ms_opt_hoists;
  let _, maxed = Resbm.Variants.(compile resbm_max) prm lowered.Nn.Lowering.dfg in
  checkb "ms_opt hoist count non-negative" true (maxed.Resbm.Report.ms_opt_hoists >= 0);
  checki "hoist count matches profile counter"
    maxed.Resbm.Report.ms_opt_hoists
    (Obs.Profile.counter maxed.Resbm.Report.profile "ms_opt.hoists")

let suite =
  [
    case "timer: monotone" timer_monotone;
    case "counter: semantics" counter_semantics;
    case "series: semantics" series_semantics;
    case "span: nesting and results" span_semantics;
    case "span: recorded on exception" span_records_on_exception;
    case "ambient: no-op without profile, records with one" ambient_noop_and_install;
    case "ambient: maxflow reports counters" ambient_maxflow_counters;
    case "json: handwritten round-trip" json_roundtrip_handwritten;
    case "json: parses foreign input" json_parse_foreign;
    case "json: rejects garbage" json_rejects_garbage;
    json_float_roundtrip;
    case "json: profile serialisation" json_profile_serialisation;
    case "profile: tiny-model compile regression" compile_profile_regression;
    case "profile: ms_opt hoists reported" ms_opt_hoists_reported;
  ]
