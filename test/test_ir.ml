open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* --- Dfg builder and mutation ------------------------------------------ *)

let dfg_builder_basics () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let c = Dfg.const g "c" in
  let m = Dfg.mul_cp g x c in
  let s = Dfg.add_cc g m m in
  Dfg.set_outputs g [ s ];
  checki "nodes" 4 (Dfg.node_count g);
  checkb "valid" true (Dfg.validate g = Ok ());
  check (Alcotest.list Alcotest.int) "preds dedup" [ m ] (Dfg.preds g s);
  check (Alcotest.list Alcotest.int) "succs" [ m ] (Dfg.succs g x |> List.filter (( = ) m))

let dfg_mul_cc_inserts_relin () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.mul_cc g x x in
  checkb "returned node is relin" true ((Dfg.node g r).Dfg.kind = Op.Relin);
  match (Dfg.node g r).Dfg.args with
  | [| m |] -> checkb "arg is mul_cc" true ((Dfg.node g m).Dfg.kind = Op.Mul_cc)
  | _ -> Alcotest.fail "relin arity"

let dfg_type_checks () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let c = Dfg.const g "c" in
  checkb "pt in add_cc" true
    (match Dfg.add_cc g x c with _ -> false | exception Invalid_argument _ -> true);
  checkb "ct in pt slot" true
    (match Dfg.add_cp g x x with _ -> false | exception Invalid_argument _ -> true);
  checkb "rotate of pt" true
    (match Dfg.rotate g c 1 with _ -> false | exception Invalid_argument _ -> true);
  checkb "freq zero" true
    (match Dfg.rotate g ~freq:0 x 1 with _ -> false | exception Invalid_argument _ -> true)

let dfg_insert_after () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r1 = Dfg.rotate g x 1 in
  let r2 = Dfg.rotate g x 2 in
  let n = Dfg.insert_after g ~tail:x ~heads:[ r1 ] Op.Modswitch in
  check (Alcotest.list Alcotest.int) "r1 rewired" [ n ] (Dfg.preds g r1);
  check (Alcotest.list Alcotest.int) "r2 untouched" [ x ] (Dfg.preds g r2);
  checkb "n's arg is x" true ((Dfg.node g n).Dfg.args = [| x |]);
  checkb "valid after surgery" true (Dfg.validate g = Ok ())

let dfg_insert_after_shared () =
  (* one inserted node serves several heads *)
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r1 = Dfg.rotate g x 1 in
  let r2 = Dfg.rotate g x 2 in
  let n = Dfg.insert_after g ~tail:x ~heads:[ r1; r2 ] Op.Rescale in
  check (Alcotest.list Alcotest.int) "r1 via n" [ n ] (Dfg.preds g r1);
  check (Alcotest.list Alcotest.int) "r2 via n" [ n ] (Dfg.preds g r2);
  checki "x has one user" 1 (List.length (Dfg.succs g x))

let dfg_wrap_operand () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let y = Dfg.input g "y" in
  let s = Dfg.add_cc g x y in
  let w = Dfg.wrap_operand g ~user:s ~arg_index:1 Op.Modswitch in
  checkb "arg1 rewired" true ((Dfg.node g s).Dfg.args.(1) = w);
  checkb "arg0 untouched" true ((Dfg.node g s).Dfg.args.(0) = x);
  checkb "valid" true (Dfg.validate g = Ok ())

let dfg_set_arg_and_users () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let y = Dfg.input g "y" in
  let s = Dfg.add_cc g x x in
  Dfg.set_arg g ~user:s ~arg_index:0 y;
  checkb "y now used" true (List.mem s (Dfg.succs g y));
  (* x still used through arg 1 *)
  checkb "x still used" true (List.mem s (Dfg.succs g x));
  Dfg.set_arg g ~user:s ~arg_index:1 y;
  checkb "x fully released" false (List.mem s (Dfg.succs g x))

let dfg_replace_uses_and_kill () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let a = Dfg.rotate g x 1 in
  let b = Dfg.rotate g x 1 in
  let s = Dfg.add_cc g a b in
  Dfg.set_outputs g [ s ];
  Dfg.replace_uses g ~old_id:b ~new_id:a;
  checkb "b unused" true ((Dfg.node g b).Dfg.users = []);
  Dfg.kill g b;
  checkb "b dead" true (Dfg.node g b).Dfg.dead;
  checkb "valid" true (Dfg.validate g = Ok ());
  checki "live nodes" 3 (List.length (Dfg.live_nodes g))

let dfg_kill_guards () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rotate g x 1 in
  Dfg.set_outputs g [ r ];
  checkb "kill used node rejected" true
    (match Dfg.kill g x with _ -> false | exception Invalid_argument _ -> true);
  checkb "kill output rejected" true
    (match Dfg.kill g r with _ -> false | exception Invalid_argument _ -> true)

let dfg_validate_catches_raw_mul () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc_raw g x x in
  let r = Dfg.rotate g m 1 in
  Dfg.set_outputs g [ r ];
  checkb "mul_cc needs relin consumer" true (Dfg.validate g <> Ok ())

let dfg_copy_independent () =
  let g = fig3_poly () in
  let g' = Dfg.copy g in
  let x' = Dfg.input g' "extra" in
  ignore x';
  checkb "copy grew" true (Dfg.node_count g' > Dfg.node_count g);
  checkb "original valid" true (Dfg.validate g = Ok ());
  checkb "copy valid" true (Dfg.validate g' = Ok ())

let dfg_topo_is_topological =
  qcheck ~count:50 "topo order respects def-use"
    (random_dfg_gen ~max_nodes:40 ~max_depth:6)
    (fun params ->
      let g = build_random_dfg params in
      let order = Dfg.topo_order g in
      let pos = Hashtbl.create 64 in
      List.iteri (fun i id -> Hashtbl.add pos id i) order;
      List.for_all
        (fun n ->
          Array.for_all
            (fun a -> Hashtbl.find pos a < Hashtbl.find pos n.Dfg.id)
            n.Dfg.args)
        (Dfg.live_nodes g))

let random_dfgs_valid =
  qcheck ~count:50 "random DFGs are structurally valid"
    (random_dfg_gen ~max_nodes:60 ~max_depth:8)
    (fun params -> Dfg.validate (build_random_dfg params) = Ok ())

(* --- Depth --------------------------------------------------------------- *)

let depth_fig3 () =
  let g = fig3_poly () in
  checki "max depth" 3 (Depth.max_depth g)

let depth_fig1 () = checki "fig1 depth" 6 (Depth.max_depth (fig1_block ()))

let depth_smo_transparent () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc g x x in
  let r = Dfg.rescale g m in
  let b = Dfg.bootstrap g ~target_level:3 r in
  Dfg.set_outputs g [ b ];
  checki "SMOs transparent" 1 (Depth.max_depth g)

(* --- Scale check --------------------------------------------------------- *)

let scale_check_legal_chain () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc g x x in
  let r = Dfg.rescale g m in
  Dfg.set_outputs g [ r ];
  match Scale_check.run prm g with
  | Ok info ->
      checki "mul scale" 112 info.(m - 1).Scale_check.scale_bits;
      (* m is the relin; m-1 the raw mul — both carry the product scale *)
      checki "relin scale" 112 info.(m).Scale_check.scale_bits;
      checki "rescaled scale" 56 info.(r).Scale_check.scale_bits;
      checki "rescaled level" (prm.Ckks.Params.input_level - 1) info.(r).Scale_check.level
  | Error vs ->
      Alcotest.failf "unexpected violations: %a"
        (Format.pp_print_list Scale_check.pp_violation)
        vs

let scale_check_add_scale_mismatch () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cp g x (Dfg.const g "c") in
  let s = Dfg.add_cc g x m in
  Dfg.set_outputs g [ s ];
  checkb "scale mismatch caught" true (Scale_check.run prm g <> Ok [||] && Result.is_error (Scale_check.run prm g))

let scale_check_level_mismatch () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let low = Dfg.modswitch g x in
  let s = Dfg.add_cc g x low in
  Dfg.set_outputs g [ s ];
  checkb "level mismatch caught" true (Result.is_error (Scale_check.run prm g))

let scale_check_capacity_overflow () =
  let g = Dfg.create () in
  let x = Dfg.input g ~level:0 "x" in
  let m = Dfg.mul_cc g x x in
  Dfg.set_outputs g [ m ];
  checkb "overflow caught" true (Result.is_error (Scale_check.run prm g))

let scale_check_fig1a_fails () =
  (* the unmanaged Figure 1a program cannot pass *)
  checkb "unmanaged block rejected" true
    (Result.is_error (Scale_check.run Ckks.Params.fig1 (fig1_block ())))

let scale_check_const_flexible_for_add () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cp g x (Dfg.const g "w") in
  let r = Dfg.rescale g m in
  let s = Dfg.add_cp g r (Dfg.const g "b") in
  Dfg.set_outputs g [ s ];
  match Scale_check.run prm g with
  | Ok info ->
      (* the bias constant adopted the ciphertext's scale *)
      let b_const = (Dfg.node g s).Dfg.args.(1) in
      checki "bias at ct scale" info.(r).Scale_check.scale_bits
        info.(b_const).Scale_check.scale_bits
  | Error _ -> Alcotest.fail "expected legal graph"

let scale_check_const_conflict () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let c = Dfg.const g "shared" in
  (* same constant multiplied (waterline) and added (input scale != q_w
     would conflict) — with default params both resolve to 56, so force a
     conflict via a rescaled value *)
  let m = Dfg.mul_cp g x c in
  let r = Dfg.rescale g m in
  let m2 = Dfg.mul_cp g r c in
  let s = Dfg.add_cp g m2 c in
  Dfg.set_outputs g [ s ];
  (* c used by mul (wants waterline=56) and by add on a 112-bit value *)
  checkb "conflicting constant caught" true (Result.is_error (Scale_check.run prm g))

let scale_check_infer_never_fails =
  qcheck ~count:50 "lenient inference runs on unmanaged graphs"
    (random_dfg_gen ~max_nodes:50 ~max_depth:8)
    (fun params ->
      let g = build_random_dfg params in
      let info = Scale_check.infer prm g in
      Array.length info = Dfg.node_count g)

(* --- Latency ------------------------------------------------------------- *)

let latency_simple () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rotate g x 1 in
  Dfg.set_outputs g [ r ];
  let expect = Ckks.Cost_model.cost Ckks.Cost_model.Rotate ~level:prm.Ckks.Params.input_level in
  check_float ~eps:1e-9 "one rotation" expect (Latency.total prm g)

let latency_freq_weighted () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rotate g ~freq:7 x 1 in
  Dfg.set_outputs g [ r ];
  let unit = Ckks.Cost_model.cost Ckks.Cost_model.Rotate ~level:prm.Ckks.Params.input_level in
  check_float ~eps:1e-9 "freq multiplies" (7.0 *. unit) (Latency.total prm g)

let latency_bootstrap_target_level () =
  let g = Dfg.create () in
  let x = Dfg.input g ~level:1 "x" in
  let b = Dfg.bootstrap g ~target_level:5 x in
  Dfg.set_outputs g [ b ];
  let expect = Ckks.Cost_model.cost Ckks.Cost_model.Bootstrap ~level:5 in
  check_float ~eps:1e-9 "charged at target" expect (Latency.total prm g)

let latency_by_kind_sums () =
  let g = fig3_poly () in
  let parts = Latency.by_kind prm g in
  let total = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 parts in
  check_float ~eps:1e-6 "decomposition sums to total" (Latency.total prm g) total

(* --- Stats ---------------------------------------------------------------- *)

let stats_counts () =
  let g = fig1_block () in
  let s = Stats.collect g in
  checki "mul_cc count" 3 (Option.value (List.assoc_opt Ckks.Cost_model.Mul_cc s.Stats.static_by_op) ~default:0);
  checki "relin count" 3 (Option.value (List.assoc_opt Ckks.Cost_model.Relin s.Stats.static_by_op) ~default:0);
  checki "mul_cp count" 8 (Option.value (List.assoc_opt Ckks.Cost_model.Mul_cp s.Stats.static_by_op) ~default:0);
  checki "depth" 6 s.Stats.max_depth;
  checki "no bootstraps yet" 0 s.Stats.bootstrap_count

let stats_freq_weighted () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rescale g ~freq:5 x in
  Dfg.set_outputs g [ r ];
  let s = Stats.collect g in
  checki "executed rescales" 5 s.Stats.executed_rescales;
  checki "static" 1 (Option.value (List.assoc_opt Ckks.Cost_model.Rescale s.Stats.static_by_op) ~default:0)

let stats_bootstrap_histogram () =
  let g = Dfg.create () in
  let x = Dfg.input g ~level:1 "x" in
  let b1 = Dfg.bootstrap g ~target_level:5 x in
  let b2 = Dfg.bootstrap g ~target_level:5 x in
  let b3 = Dfg.bootstrap g ~target_level:12 x in
  Dfg.set_outputs g [ b1; b2; b3 ];
  let s = Stats.collect g in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "histogram sorted desc" [ (12, 1); (5, 2) ] s.Stats.bootstrap_levels

(* --- Legalize -------------------------------------------------------------- *)

let legalize_level_mismatch () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let low = Dfg.modswitch g (Dfg.modswitch g x) in
  let s = Dfg.add_cc g x low in
  Dfg.set_outputs g [ s ];
  (match Legalize.run prm g with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "legalisation failed");
  checkb "now legal" true (Result.is_ok (Scale_check.run prm g));
  (* two modswitches were inserted on the higher operand *)
  let ms =
    List.length
      (List.filter (fun n -> n.Dfg.kind = Op.Modswitch) (Dfg.live_nodes g))
  in
  checki "4 modswitches total" 4 ms

let legalize_shares_chains () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let low = Dfg.modswitch g x in
  let s1 = Dfg.add_cc g x low in
  let low2 = Dfg.modswitch g low in
  let s2 = Dfg.add_cc g s1 low2 in
  Dfg.set_outputs g [ s2 ];
  (match Legalize.run prm g with Ok _ -> () | Error _ -> Alcotest.fail "legalize");
  checkb "legal" true (Result.is_ok (Scale_check.run prm g))

let legalize_reports_scale_mismatch () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cp g x (Dfg.const g "c") in
  let s = Dfg.add_cc g x m in
  Dfg.set_outputs g [ s ];
  checkb "scale mismatch is not repairable" true (Result.is_error (Legalize.run prm g))

(* --- Interp ----------------------------------------------------------------- *)

let interp_matches_plain () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc g x x in
  let r = Dfg.rescale g m in
  let s = Dfg.add_cc g r r in
  Dfg.set_outputs g [ s ];
  let dim = 8 in
  let input = input_env ~dim 3L in
  let ev = Ckks.Evaluator.create prm in
  let env = { Interp.inputs = [ ("x", input) ]; consts = const_env ~dim } in
  let result = Interp.run ev g env in
  (match result.Interp.outputs with
  | [ out ] ->
      let d = Ckks.Evaluator.decrypt ev out in
      Array.iteri
        (fun i v ->
          let expect = 2.0 *. input.(i) *. input.(i) in
          checkb "close to plain" true (Float.abs (v -. expect) < 1e-5))
        d
  | _ -> Alcotest.fail "one output expected");
  checkb "latency positive" true (result.Interp.latency_ms > 0.0);
  checki "ops counted" 4 result.Interp.op_count

let interp_missing_input () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  Dfg.set_outputs g [ x ];
  let ev = Ckks.Evaluator.create prm in
  checkb "missing input raises" true
    (match Interp.run ev g { Interp.inputs = []; consts = const_env ~dim:4 } with
    | _ -> false
    | exception Interp.Missing_input "x" -> true)

let interp_rejects_illegal () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let low = Dfg.modswitch g x in
  let s = Dfg.add_cc g x low in
  Dfg.set_outputs g [ s ];
  let ev = Ckks.Evaluator.create prm in
  checkb "illegal graph rejected" true
    (match
       Interp.run ev g
         { Interp.inputs = [ ("x", [| 1.0 |]) ]; consts = const_env ~dim:1 }
     with
    | _ -> false
    | exception Ckks.Evaluator.Fhe_error _ -> true)

let interp_latency_equals_static =
  qcheck ~count:20 "interpreted latency equals the static model"
    (random_dfg_gen ~max_nodes:25 ~max_depth:3)
    (fun params ->
      let g = build_random_dfg params in
      (* manage it first so it is legal *)
      match Resbm.Driver.compile prm g with
      | managed, report ->
          let dim = 4 in
          let ev = Ckks.Evaluator.create prm in
          let env =
            { Interp.inputs = [ ("x", input_env ~dim 5L) ]; consts = const_env ~dim }
          in
          let result = Interp.run ev managed env in
          Float.abs (result.Interp.latency_ms -. report.Resbm.Report.latency_ms) < 1e-3
      | exception Resbm.Btsmgr.No_plan _ -> true)

let suite =
  [
    case "dfg: builder basics" dfg_builder_basics;
    case "dfg: mul_cc auto-relin" dfg_mul_cc_inserts_relin;
    case "dfg: ct/pt type checks" dfg_type_checks;
    case "dfg: insert_after rewires selected heads" dfg_insert_after;
    case "dfg: insert_after shares one node" dfg_insert_after_shared;
    case "dfg: wrap_operand" dfg_wrap_operand;
    case "dfg: set_arg maintains users" dfg_set_arg_and_users;
    case "dfg: replace_uses and kill" dfg_replace_uses_and_kill;
    case "dfg: kill guards" dfg_kill_guards;
    case "dfg: validate catches unrelinearised mul" dfg_validate_catches_raw_mul;
    case "dfg: copy is independent" dfg_copy_independent;
    dfg_topo_is_topological;
    random_dfgs_valid;
    case "depth: fig3 polynomial" depth_fig3;
    case "depth: fig1 block" depth_fig1;
    case "depth: SMOs transparent" depth_smo_transparent;
    case "scale_check: legal mul-rescale chain" scale_check_legal_chain;
    case "scale_check: add scale mismatch" scale_check_add_scale_mismatch;
    case "scale_check: add level mismatch" scale_check_level_mismatch;
    case "scale_check: capacity overflow" scale_check_capacity_overflow;
    case "scale_check: unmanaged Figure 1a fails" scale_check_fig1a_fails;
    case "scale_check: flexible constant scales" scale_check_const_flexible_for_add;
    case "scale_check: conflicting constant scales" scale_check_const_conflict;
    scale_check_infer_never_fails;
    case "latency: single op" latency_simple;
    case "latency: freq weighting" latency_freq_weighted;
    case "latency: bootstrap at target level" latency_bootstrap_target_level;
    case "latency: by-kind decomposition" latency_by_kind_sums;
    case "stats: op counts" stats_counts;
    case "stats: freq weighting" stats_freq_weighted;
    case "stats: bootstrap histogram" stats_bootstrap_histogram;
    case "legalize: inserts modswitch chains" legalize_level_mismatch;
    case "legalize: shares chains" legalize_shares_chains;
    case "legalize: scale mismatch unrepairable" legalize_reports_scale_mismatch;
    case "interp: matches plain arithmetic" interp_matches_plain;
    case "interp: missing input" interp_missing_input;
    case "interp: rejects illegal graphs" interp_rejects_illegal;
    interp_latency_equals_static;
  ]
