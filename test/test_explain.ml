(* Resbm.Explain + Obs.Explain: full cost attribution, certificate-derived
   bootstrap rationales, byte-identical rendering across job counts and
   cache temperature, and the renumbering-stability contract of the
   structural plan digest. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

let compile ?jobs ?cache ?(prm = prm) model =
  let lowered = Nn.Lowering.lower model in
  let orig = Dfg.node_count lowered.Nn.Lowering.dfg in
  let managed, report =
    Resbm.Variants.compile ?jobs ?cache Resbm.Variants.resbm prm
      lowered.Nn.Lowering.dfg
  in
  (orig, managed, report)

(* Everything `resbm explain` prints, as one string: waterfall, rationales
   and the digest.  The byte-identity tests compare these directly. *)
let render ?(prm = prm) ~orig managed report =
  let wf = Resbm.Explain.attribution prm ~managed report in
  let rs = Resbm.Explain.rationales prm ~orig_nodes:orig ~managed report in
  Format.asprintf "%a@.%a@.%s"
    (Obs.Explain.pp ~title:"explain")
    wf
    (Format.pp_print_list (Resbm.Explain.pp_rationale managed))
    rs
    (Obs.Json.to_string (Resbm.Explain.digest prm ~managed report))

(* --- cost attribution ------------------------------------------------------- *)

let attribution_is_complete () =
  let _, managed, report = compile Nn.Model.lenet5 in
  let wf = Resbm.Explain.attribution prm ~managed report in
  checkb "total matches the report's latency" true
    (Float.abs (wf.Obs.Explain.total -. report.Resbm.Report.latency_ms) < 1e-6);
  check_float ~eps:1e-6 "every predicted millisecond is attributed"
    wf.Obs.Explain.total
    (Obs.Explain.attributed wf);
  checkb "headline shares are present" true
    (List.map fst wf.Obs.Explain.shares = [ "bootstrap"; "rescale"; "modswitch" ]);
  (* folding never drops cost: each bucket's leaves + remainder = bucket *)
  List.iter
    (fun (g : Obs.Explain.group) ->
      List.iter
        (fun (b : Obs.Explain.bucket) ->
          let leaves =
            List.fold_left
              (fun acc (l : Obs.Explain.leaf) -> acc +. l.Obs.Explain.leaf_cost)
              0.0 b.Obs.Explain.leaves
          in
          checkb "bucket = leaves + folded remainder" true
            (Float.abs ((leaves +. b.Obs.Explain.folded_cost) -. b.Obs.Explain.bucket_cost)
            < 1e-6))
        g.Obs.Explain.buckets)
    wf.Obs.Explain.groups

(* --- bootstrap rationale ---------------------------------------------------- *)

let rationales_carry_certificates () =
  (* resnet20 places a mix of btsplc-cut bootstraps and bootstraps riding
     rescale tips — every one must be pinned by a certificate with a
     counterfactual delta. *)
  let orig, managed, report = compile Nn.Model.resnet20 in
  let rs = Resbm.Explain.rationales prm ~orig_nodes:orig ~managed report in
  let bootstraps =
    List.filter
      (fun (n : Dfg.node) ->
        match n.Dfg.kind with Op.Bootstrap _ -> true | _ -> false)
      (Dfg.live_nodes managed)
  in
  checkb "resnet20 places bootstraps" true (bootstraps <> []);
  checki "one rationale per live bootstrap" (List.length bootstraps) (List.length rs);
  List.iter
    (fun (r : Resbm.Explain.rationale) ->
      checkb "anchored to an original node" true (r.Resbm.Explain.ra_anchor >= 0);
      checkb "pinned by a certificate" true (r.Resbm.Explain.ra_cut_value <> None);
      match r.Resbm.Explain.ra_counterfactual with
      | None -> Alcotest.failf "bootstrap %%%d has no counterfactual" r.Resbm.Explain.ra_bootstrap
      | Some cf ->
          checkb "moving a min-cut placement never gets cheaper" true
            (cf.Resbm.Explain.cf_delta >= 0.0 || cf.Resbm.Explain.cf_value = infinity))
    rs

(* --- byte-identical across jobs and cache temperature ----------------------- *)

let explain_deterministic () =
  let ref_text =
    let orig, managed, report = compile ~jobs:1 Nn.Model.lenet5 in
    render ~orig managed report
  in
  let jobs4 =
    let orig, managed, report = compile ~jobs:4 Nn.Model.lenet5 in
    render ~orig managed report
  in
  check Alcotest.string "jobs 1 vs jobs 4" ref_text jobs4;
  let dir = Filename.temp_file "resbm_explain" "" in
  Sys.remove dir;
  let cache = Resbm.Plan_cache.create ~dir () in
  let cold =
    let orig, managed, report = compile ~cache Nn.Model.lenet5 in
    render ~orig managed report
  in
  let warm =
    let orig, managed, report = compile ~cache Nn.Model.lenet5 in
    render ~orig managed report
  in
  check Alcotest.string "cold vs reference" ref_text cold;
  check Alcotest.string "cold vs warm disk-cache hit" cold warm;
  checkb "the warm compile actually hit the cache" true
    ((Resbm.Plan_cache.stats cache).Resbm.Plan_cache.hits >= 1)

(* --- structural plan digest ------------------------------------------------- *)

let digest_self_diff_is_empty () =
  let _, managed, report = compile Nn.Model.lenet5 in
  let _, managed', report' = compile Nn.Model.lenet5 in
  let d = Resbm.Explain.digest prm ~managed report in
  let d' = Resbm.Explain.digest prm ~managed:managed' report' in
  checkb "two compiles of the same model have no structural diff" true
    (Obs.Explain.diff_json d d' = [])

let digest_detects_change () =
  let _, managed, report = compile Nn.Model.lenet5 in
  let lo = Ckks.Params.with_l_max { prm with Ckks.Params.input_level = 8 } 8 in
  let lowered = Nn.Lowering.lower Nn.Model.lenet5 in
  let managed', report' =
    Resbm.Variants.compile Resbm.Variants.resbm lo lowered.Nn.Lowering.dfg
  in
  let d = Resbm.Explain.digest prm ~managed report in
  let d' = Resbm.Explain.digest lo ~managed:managed' report' in
  checkb "a different plan produces a non-empty diff" true
    (Obs.Explain.diff_json d d' <> [])

(* Renumber a graph: map node i to perm(i), rewriting args and outputs.
   The digest must not see the difference — its keys are content labels,
   not ids. *)
let renumber seed g =
  let nodes, outputs = Dfg.export g in
  let n = Array.length nodes in
  let perm = Array.init n (fun i -> i) in
  let st = Random.State.make [| 0xD16E57; seed |] in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let nodes' = Array.make n nodes.(0) in
  Array.iteri
    (fun i (x : Dfg.exported_node) ->
      nodes'.(perm.(i)) <-
        { x with Dfg.ex_args = Array.map (fun a -> perm.(a)) x.Dfg.ex_args })
    nodes;
  Dfg.import (nodes', List.map (fun o -> perm.(o)) outputs)

let digest_of ?(prm = prm) g =
  let managed, report = Resbm.Variants.compile Resbm.Variants.resbm prm g in
  Resbm.Explain.digest prm ~managed report

let digest_renumbering_invariant =
  let reference = lazy (digest_of (Nn.Lowering.lower Nn.Model.tiny).Nn.Lowering.dfg) in
  qcheck ~count:25 "plan digest is stable under node renumbering"
    QCheck2.Gen.(0 -- 10_000)
    (fun seed ->
      let g = (Nn.Lowering.lower Nn.Model.tiny).Nn.Lowering.dfg in
      let d' = digest_of (renumber seed g) in
      Obs.Explain.diff_json (Lazy.force reference) d' = [])

(* One deep fixed case on a model that actually bootstraps, so placements
   and cut values go through the renumbering check too. *)
let digest_renumbering_with_bootstraps () =
  let lo = Ckks.Params.with_l_max { prm with Ckks.Params.input_level = 8 } 8 in
  let g = (Nn.Lowering.lower Nn.Model.lenet5).Nn.Lowering.dfg in
  let d = digest_of ~prm:lo g in
  let d' = digest_of ~prm:lo (renumber 42 g) in
  checkb "bootstrap-placing plan digest survives renumbering" true
    (Obs.Explain.diff_json d d' = [])

(* --- bench-diff integration ------------------------------------------------- *)

let bench_rows digest =
  [
    {
      Obs.Bench_diff.model = "m";
      manager = "g";
      metrics = [ ("latency_ms", 100.0) ];
      compile = None;
      warm = None;
      digest;
    };
  ]

let bench_src rows =
  {
    Obs.Bench_diff.version = Obs.Bench_diff.schema_version;
    git_rev = "test";
    trials = 1;
    l_max = 16;
    rows;
  }

let bench_diff_carries_plan_drift () =
  let d = Obs.Json.Obj [ ("bootstrap_count", Obs.Json.Int 3) ] in
  let d' = Obs.Json.Obj [ ("bootstrap_count", Obs.Json.Int 4) ] in
  let diff base cand =
    match
      Obs.Bench_diff.diff ~base:(bench_src (bench_rows base))
        ~cand:(bench_src (bench_rows cand)) ()
    with
    | Ok o -> o
    | Error m -> Alcotest.failf "diff failed: %s" m
  in
  let o = diff (Some d) (Some d') in
  checkb "metric-identical rows still report plan drift" true
    (o.Obs.Bench_diff.plan_drift <> []);
  checki "plan drift alone fails the `Changed gate" 2 (Obs.Bench_diff.exit_code o);
  let o = diff (Some d) (Some d) in
  checkb "identical digests: no drift" true (o.Obs.Bench_diff.plan_drift = []);
  checki "and the gate passes" 0 (Obs.Bench_diff.exit_code o);
  (* digest missing on either side (old baseline) never gates *)
  let o = diff None (Some d') in
  checkb "one-sided digests diff cleanly" true (o.Obs.Bench_diff.plan_drift = []);
  checki "old baselines still pass" 0 (Obs.Bench_diff.exit_code o)

let suite =
  [
    case "attribution covers 100% of predicted latency" attribution_is_complete;
    case "every bootstrap carries certificate evidence" rationales_carry_certificates;
    case "explain output is byte-identical across jobs and cache" explain_deterministic;
    case "self plan-diff reports no differences" digest_self_diff_is_empty;
    case "a real plan change is detected" digest_detects_change;
    digest_renumbering_invariant;
    case "renumbering invariance holds with bootstraps placed" digest_renumbering_with_bootstraps;
    case "bench-diff gates on structural plan drift" bench_diff_carries_plan_drift;
  ]
