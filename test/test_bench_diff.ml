(* Obs.Bench_diff: bench-file loading diagnostics, row alignment, verdicts
   for deterministic and wall-clock metrics, NaN semantics, and the gate's
   exit-code contract. *)
open Test_util

let metrics ?(latency = 100.0) ?(bts = 10.0) ?(rescales = 20.0) ?(nodes = 50.0)
    ?(precision = 30.0) () =
  [
    ("latency_ms", latency);
    ("bootstrap_count", bts);
    ("executed_rescales", rescales);
    ("nodes", nodes);
    ("predicted_precision_bits", precision);
  ]

let row ?compile ?warm ?digest model manager metrics =
  { Obs.Bench_diff.model; manager; metrics; compile; warm; digest }

let src ?(l_max = 16) rows =
  {
    Obs.Bench_diff.version = Obs.Bench_diff.schema_version;
    git_rev = "test";
    trials = 3;
    l_max;
    rows;
  }

let diff_ok ?noise_mult ?min_tolerance_ms base cand =
  match Obs.Bench_diff.diff ?noise_mult ?min_tolerance_ms ~base ~cand () with
  | Ok o -> o
  | Error m -> Alcotest.failf "diff failed: %s" m

let verdict_of o metric =
  match
    List.find_opt (fun c -> c.Obs.Bench_diff.metric = metric) o.Obs.Bench_diff.cells
  with
  | Some c -> c.Obs.Bench_diff.verdict
  | None -> Alcotest.failf "no cell for %s" metric

(* --- alignment and verdicts ------------------------------------------------ *)

let identical_passes () =
  let s = src [ row "ResNet20" "ReSBM" (metrics ()) ] in
  let o = diff_ok s s in
  checki "five deterministic cells" 5 (List.length o.Obs.Bench_diff.cells);
  checkb "all unchanged" true
    (List.for_all
       (fun c -> c.Obs.Bench_diff.verdict = Obs.Bench_diff.Unchanged)
       o.Obs.Bench_diff.cells);
  checkb "no drift" true (Obs.Bench_diff.deterministic_changes o = []);
  checki "gate passes" 0 (Obs.Bench_diff.exit_code o)

let direction_semantics () =
  let base = src [ row "m" "g" (metrics ()) ] in
  (* lower-is-better metric moving up regresses *)
  let o = diff_ok base (src [ row "m" "g" (metrics ~latency:120.0 ()) ]) in
  checkb "latency up regresses" true
    (verdict_of o "latency_ms" = Obs.Bench_diff.Regressed);
  checki "regression gates" 2 (Obs.Bench_diff.exit_code o);
  (* lower-is-better metric moving down improves — and still gates under
     the default policy, because it invalidates the committed baseline *)
  let o = diff_ok base (src [ row "m" "g" (metrics ~bts:8.0 ()) ]) in
  checkb "bootstrap count down improves" true
    (verdict_of o "bootstrap_count" = Obs.Bench_diff.Improved);
  checki "improvement still fails `Changed" 2 (Obs.Bench_diff.exit_code o);
  checki "improvement passes `Regressed" 0
    (Obs.Bench_diff.exit_code ~fail_on:`Regressed o);
  checki "`Never always passes" 0 (Obs.Bench_diff.exit_code ~fail_on:`Never o);
  (* higher-is-better direction flips the reading *)
  let o = diff_ok base (src [ row "m" "g" (metrics ~precision:35.0 ()) ]) in
  checkb "precision up improves" true
    (verdict_of o "predicted_precision_bits" = Obs.Bench_diff.Improved);
  let o = diff_ok base (src [ row "m" "g" (metrics ~precision:25.0 ()) ]) in
  checkb "precision down regresses" true
    (verdict_of o "predicted_precision_bits" = Obs.Bench_diff.Regressed)

let misaligned_rows_gate () =
  let base = src [ row "m" "ReSBM" (metrics ()); row "m" "Fhelipe" (metrics ()) ] in
  let cand = src [ row "m" "ReSBM" (metrics ()); row "m2" "ReSBM" (metrics ()) ] in
  let o = diff_ok base cand in
  checkb "dropped manager reported" true
    (o.Obs.Bench_diff.missing = [ ("m", "Fhelipe") ]);
  checkb "new model reported" true (o.Obs.Bench_diff.added = [ ("m2", "ReSBM") ]);
  checki "misalignment fails `Changed" 2 (Obs.Bench_diff.exit_code o);
  checki "misalignment fails `Regressed too" 2
    (Obs.Bench_diff.exit_code ~fail_on:`Regressed o)

let nan_semantics () =
  let base = src [ row "m" "g" (metrics ~precision:nan ()) ] in
  (* NaN on both sides is the same (missing) measurement, not a change *)
  let o = diff_ok base (src [ row "m" "g" (metrics ~precision:nan ()) ]) in
  checkb "nan == nan is unchanged" true
    (verdict_of o "predicted_precision_bits" = Obs.Bench_diff.Unchanged);
  checki "both-nan passes" 0 (Obs.Bench_diff.exit_code o);
  (* a measurement appearing or vanishing is incomparable and gates *)
  let o = diff_ok base (src [ row "m" "g" (metrics ~precision:30.0 ()) ]) in
  checkb "one-sided nan is incomparable" true
    (verdict_of o "predicted_precision_bits" = Obs.Bench_diff.Incomparable);
  checki "incomparable fails `Changed" 2 (Obs.Bench_diff.exit_code o);
  checki "incomparable fails `Regressed" 2
    (Obs.Bench_diff.exit_code ~fail_on:`Regressed o)

(* --- wall-clock tolerance -------------------------------------------------- *)

let wallclock_tolerance () =
  let with_compile values = Obs.Stat.summarise ~seed:1 values in
  let base = src [ row ~compile:(with_compile [ 10.0; 10.0; 10.0 ]) "m" "g" (metrics ()) ] in
  (* zero MAD on both sides leaves the 0.5 ms floor: 10.3 is inside it *)
  let cand = src [ row ~compile:(with_compile [ 10.3; 10.3; 10.3 ]) "m" "g" (metrics ()) ] in
  let o = diff_ok base cand in
  checkb "drift inside the floor is noise" true
    (verdict_of o "compile_ms" = Obs.Bench_diff.Within_noise);
  checki "noise never gates" 0 (Obs.Bench_diff.exit_code o);
  (* 2 ms of drift clears the floor *)
  let cand = src [ row ~compile:(with_compile [ 12.0; 12.0; 12.0 ]) "m" "g" (metrics ()) ] in
  let o = diff_ok base cand in
  checkb "drift beyond tolerance regresses" true
    (verdict_of o "compile_ms" = Obs.Bench_diff.Regressed);
  checki "wall-clock alone never fails the default gate" 0 (Obs.Bench_diff.exit_code o);
  checki "strict wall-clock gates it" 2
    (Obs.Bench_diff.exit_code ~strict_wallclock:true o);
  (* a noisy baseline widens the band: MADs of 1 give 4*(1+1) = 8 ms *)
  let base =
    src [ row ~compile:(with_compile [ 9.0; 10.0; 11.0 ]) "m" "g" (metrics ()) ]
  in
  let cand =
    src [ row ~compile:(with_compile [ 15.0; 16.0; 17.0 ]) "m" "g" (metrics ()) ]
  in
  let o = diff_ok base cand in
  checkb "mad-scaled band absorbs 6 ms on noisy runs" true
    (verdict_of o "compile_ms" = Obs.Bench_diff.Within_noise);
  (* faster candidate is an improvement, not a regression *)
  let cand = src [ row ~compile:(with_compile [ 1.0; 1.0; 1.0 ]) "m" "g" (metrics ()) ] in
  let o = diff_ok base cand in
  checkb "large speed-up is an improvement" true
    (verdict_of o "compile_ms" = Obs.Bench_diff.Improved);
  checki "wall-clock improvement passes even strict" 0
    (Obs.Bench_diff.exit_code ~strict_wallclock:true o)

(* --- loading --------------------------------------------------------------- *)

let bench_file ?(version = Obs.Bench_diff.schema_version) () =
  Printf.sprintf
    {|{"bench": "resbm", "schema_version": %d, "git_rev": "abc", "trials": 3,
       "l_max": 16,
       "models": [{"model": "m",
                   "managers": [{"manager": "g", "latency_ms": 100.0,
                                 "bootstrap_count": 10, "nodes": 50,
                                 "predicted_precision_bits": null}]}]}|}
    version

let load_diagnostics () =
  let err s =
    match Obs.Bench_diff.load s with
    | Error m -> m
    | Ok _ -> Alcotest.fail "load accepted a bad file"
  in
  let starts_with prefix s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  checkb "non-JSON is called out" true (starts_with "not valid JSON" (err "nonsense"));
  checkb "foreign JSON is called out" true
    (starts_with "not a resbm bench file" (err {|{"other": 1}|}));
  checkb "unversioned files are refused" true
    (starts_with "unversioned bench file" (err {|{"bench": "resbm", "l_max": 16}|}));
  checkb "future versions are refused with the version named" true
    (starts_with "schema_version 99 is not supported" (err (bench_file ~version:99 ())))

let load_roundtrip () =
  match Obs.Bench_diff.load (bench_file ()) with
  | Error m -> Alcotest.failf "load failed: %s" m
  | Ok s ->
      checki "version" Obs.Bench_diff.schema_version s.Obs.Bench_diff.version;
      check Alcotest.string "git_rev" "abc" s.Obs.Bench_diff.git_rev;
      checki "one row" 1 (List.length s.Obs.Bench_diff.rows);
      let r = List.hd s.Obs.Bench_diff.rows in
      checkb "int cells read as floats" true
        (List.assoc_opt "bootstrap_count" r.Obs.Bench_diff.metrics = Some 10.0);
      checkb "null cells read as nan" true
        (match List.assoc_opt "predicted_precision_bits" r.Obs.Bench_diff.metrics with
        | Some v -> Float.is_nan v
        | None -> false);
      checkb "absent cells stay absent" true
        (List.assoc_opt "executed_rescales" r.Obs.Bench_diff.metrics = None);
      checkb "no compile stats in this file" true (r.Obs.Bench_diff.compile = None)

let l_max_mismatch () =
  let base = src ~l_max:16 [ row "m" "g" (metrics ()) ] in
  let cand = src ~l_max:12 [ row "m" "g" (metrics ()) ] in
  match Obs.Bench_diff.diff ~base ~cand () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "diff compared files from different sweeps"

(* --- report JSON ----------------------------------------------------------- *)

let outcome_json_roundtrip () =
  let base = src [ row "m" "g" (metrics ()); row "m" "h" (metrics ()) ] in
  let cand = src [ row "m" "g" (metrics ~latency:90.0 ()) ] in
  let o = diff_ok base cand in
  let text = Obs.Json.to_string (Obs.Bench_diff.outcome_to_json o) in
  match Obs.Json.of_string text with
  | Error e -> Alcotest.failf "report rejected by the strict parser: %s" e
  | Ok json ->
      (match Obs.Json.member "summary" json with
      | Some summary ->
          checkb "summary counts improvements" true
            (Obs.Json.member "improved" summary = Some (Obs.Json.Int 1))
      | None -> Alcotest.fail "no summary object");
      (match Obs.Json.member "missing" json with
      | Some (Obs.Json.List [ _ ]) -> ()
      | _ -> Alcotest.fail "missing rows not reported")

let suite =
  [
    case "identical files pass the gate" identical_passes;
    case "verdicts follow each metric's direction" direction_semantics;
    case "missing and added rows always gate" misaligned_rows_gate;
    case "nan cells: equal-missing vs incomparable" nan_semantics;
    case "wall-clock drift uses the mad band" wallclock_tolerance;
    case "load rejects bad files with distinct diagnostics" load_diagnostics;
    case "load reads header, cells, nan and absences" load_roundtrip;
    case "different l_max refuses to diff" l_max_mismatch;
    case "outcome report JSON round-trips" outcome_json_roundtrip;
  ]
