(* Runtime tracing: the flight-recorder ring buffer, evaluator/interp
   instrumentation, Chrome trace-event and JSONL exporters, the Figure 1a
   failure marker, and trace-vs-static noise cross-validation. *)
open Test_util
open Fhe_ir

let prm = Ckks.Params.default

(* --- Ring buffer ---------------------------------------------------------- *)

let record ?(op = "add_cc") ?(cost_ms = 1.0) ?(noise = 1e-10) tr =
  Obs.Trace.record tr ~op ~cost_ms ~level:8 ~scale_bits:56 ~size:2 ~noise ()

let ring_overflow () =
  let tr = Obs.Trace.create ~capacity:4 () in
  for _ = 1 to 10 do
    record tr
  done;
  checki "recorded counts every event" 10 (Obs.Trace.recorded tr);
  checki "dropped = overwritten" 6 (Obs.Trace.dropped tr);
  let seqs = List.map (fun (e : Obs.Trace.op_event) -> e.Obs.Trace.seq) (Obs.Trace.op_events tr) in
  check (Alcotest.list Alcotest.int) "tail survives, chronological" [ 6; 7; 8; 9 ] seqs;
  check_float "clock includes evicted events" 10.0 (Obs.Trace.clock_ms tr)

let ring_under_capacity () =
  let tr = Obs.Trace.create ~capacity:8 () in
  record tr;
  Obs.Trace.instant tr ~name:"rescale" ();
  record tr;
  checki "three events" 3 (Obs.Trace.recorded tr);
  checki "nothing dropped" 0 (Obs.Trace.dropped tr);
  match Obs.Trace.events tr with
  | [ Obs.Trace.Op _; Obs.Trace.Instant i; Obs.Trace.Op b ] ->
      check Alcotest.string "instant name" "rescale" i.Obs.Trace.iname;
      check_float "instant at the clock of its moment" 1.0 i.Obs.Trace.its_ms;
      check_float "second op starts after the first" 1.0 b.Obs.Trace.start_ms
  | _ -> Alcotest.fail "expected op/instant/op"

let ctx_attribution () =
  let tr = Obs.Trace.create () in
  Obs.Trace.set_ctx tr (Some { Obs.Trace.node = 7; region = 3; freq = 4; cost_ms = 2.5 });
  record ~op:"rotate" ~cost_ms:99.0 tr;
  Obs.Trace.set_ctx tr None;
  record ~op:"rotate" tr;
  match Obs.Trace.op_events tr with
  | [ a; b ] ->
      checki "ctx node" 7 a.Obs.Trace.node;
      checki "ctx region" 3 a.Obs.Trace.region;
      checki "ctx freq" 4 a.Obs.Trace.freq;
      check_float "ctx cost overrides the evaluator estimate" 2.5 a.Obs.Trace.dur_ms;
      checki "without ctx: unattributed" (-1) b.Obs.Trace.node;
      check_float "without ctx: the evaluator estimate" 1.0 b.Obs.Trace.dur_ms;
      check_float "ops laid end to end on the simulated clock" 2.5 b.Obs.Trace.start_ms
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let headroom_clamp () =
  check_float "typical" 20.0 (Obs.Trace.headroom_bits (Float.pow 2.0 (-20.0)));
  check_float "noise above 1: no headroom left" 0.0 (Obs.Trace.headroom_bits 2.0);
  check_float "zero noise clamps at 200" 200.0 (Obs.Trace.headroom_bits 0.0)

(* --- Evaluator instrumentation -------------------------------------------- *)

let evaluator_records_ops () =
  let tr = Obs.Trace.create () in
  let ev = Ckks.Evaluator.create prm in
  Obs.with_trace tr (fun () ->
      let ct = Ckks.Evaluator.encrypt ev ~level:8 [| 0.5 |] in
      let m = Ckks.Evaluator.mul_cc ev ct ct in
      let r = Ckks.Evaluator.rescale ev (Ckks.Evaluator.relin ev m) in
      ignore (Ckks.Evaluator.rotate ev r 3));
  let ops = List.map (fun (e : Obs.Trace.op_event) -> e.Obs.Trace.op) (Obs.Trace.op_events tr) in
  check
    (Alcotest.list Alcotest.string)
    "one event per op, execution order"
    [ "encrypt"; "mul_cc"; "relin"; "rescale"; "rotate" ]
    ops;
  (* rescale additionally leaves a level-transition instant *)
  let instants =
    List.filter_map
      (function Obs.Trace.Instant i -> Some i.Obs.Trace.iname | Obs.Trace.Op _ -> None)
      (Obs.Trace.events tr)
  in
  check (Alcotest.list Alcotest.string) "rescale transition marker" [ "rescale" ] instants;
  List.iter
    (fun (e : Obs.Trace.op_event) ->
      checkb (e.Obs.Trace.op ^ " carries its noise") true (e.Obs.Trace.noise_after > 0.0))
    (Obs.Trace.op_events tr)

let evaluator_failure_leaves_instant () =
  let tr = Obs.Trace.create () in
  let ev = Ckks.Evaluator.create prm in
  let raised =
    Obs.with_trace tr (fun () ->
        let ct = Ckks.Evaluator.encrypt ev ~level:8 [| 0.5 |] in
        let low = Ckks.Evaluator.modswitch ev ct in
        match Ckks.Evaluator.add_cc ev ct low with
        | _ -> false
        | exception Ckks.Evaluator.Fhe_error _ -> true)
  in
  checkb "level mismatch raises" true raised;
  match List.rev (Obs.Trace.events tr) with
  | Obs.Trace.Instant i :: _ ->
      check Alcotest.string "final event is the failure marker" "fhe_error" i.Obs.Trace.iname;
      checkb "failure message preserved" true
        (List.mem_assoc "message" i.Obs.Trace.detail)
  | _ -> Alcotest.fail "expected a trailing fhe_error instant"

let trace_off_records_nothing () =
  let tr = Obs.Trace.create () in
  let ev = Ckks.Evaluator.create prm in
  (* No with_trace: the ambient lookup misses and the ops run untraced. *)
  let ct = Ckks.Evaluator.encrypt ev ~level:8 [| 0.5 |] in
  ignore (Ckks.Evaluator.rotate ev ct 1);
  checki "no ambient trace, no events" 0 (Obs.Trace.recorded tr)

(* --- Interp instrumentation ------------------------------------------------ *)

let small_program () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let m = Dfg.mul_cc g x x in
  let r = Dfg.rescale g m in
  let s = Dfg.add_cc g r r in
  Dfg.set_outputs g [ s ];
  g

let interp_event_ordering () =
  let g = small_program () in
  let tr = Obs.Trace.create () in
  let ev = Ckks.Evaluator.create prm in
  let env = { Interp.inputs = [ ("x", input_env ~dim:4 3L) ]; consts = const_env ~dim:4 } in
  let result = Interp.run ~trace:tr ev g env in
  let evs = Obs.Trace.op_events tr in
  check
    (Alcotest.list Alcotest.string)
    "events follow topological execution"
    [ "encrypt"; "mul_cc"; "relin"; "rescale"; "add_cc" ]
    (List.map (fun (e : Obs.Trace.op_event) -> e.Obs.Trace.op) evs);
  List.iter
    (fun (e : Obs.Trace.op_event) -> checkb "every event attributed" true (e.Obs.Trace.node >= 0))
    evs;
  check_float ~eps:1e-6 "simulated clock ends at the interp latency" result.Interp.latency_ms
    (Obs.Trace.clock_ms tr);
  let cost_sum =
    List.fold_left (fun acc c -> acc +. c.Interp.cost_ms) 0.0 result.Interp.node_costs
  in
  check_float ~eps:1e-6 "node_costs sum to the latency" result.Interp.latency_ms cost_sum

let interp_freq_weighting () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let r = Dfg.rotate g ~freq:3 x 1 in
  Dfg.set_outputs g [ r ];
  let tr = Obs.Trace.create () in
  let ev = Ckks.Evaluator.create prm in
  let env = { Interp.inputs = [ ("x", input_env ~dim:4 3L) ]; consts = const_env ~dim:4 } in
  let result = Interp.run ~trace:tr ev g env in
  checki "rolled loop counted freq times" 3 result.Interp.op_count;
  let rotate_cost = Ckks.Cost_model.cost Ckks.Cost_model.Rotate ~level:prm.Ckks.Params.input_level in
  match List.rev (Obs.Trace.op_events tr) with
  | e :: _ ->
      checki "freq recorded on the event" 3 e.Obs.Trace.freq;
      check_float ~eps:1e-6 "duration is freq x Table 2 cost" (3.0 *. rotate_cost)
        e.Obs.Trace.dur_ms;
      check_float ~eps:1e-6 "latency matches" result.Interp.latency_ms (Obs.Trace.clock_ms tr)
  | [] -> Alcotest.fail "expected events"

let interp_trace_off_identical () =
  let g = small_program () in
  let env = { Interp.inputs = [ ("x", input_env ~dim:4 3L) ]; consts = const_env ~dim:4 } in
  let run ?trace () = Interp.run ?trace (Ckks.Evaluator.create prm) g env in
  let plain = run () in
  let tr = Obs.Trace.create () in
  let traced = run ~trace:tr () in
  checkb "tracing recorded events" true (Obs.Trace.recorded tr > 0);
  check_float "same latency" plain.Interp.latency_ms traced.Interp.latency_ms;
  checki "same op count" plain.Interp.op_count traced.Interp.op_count;
  List.iter2
    (fun (a : Ckks.Ciphertext.t) (b : Ckks.Ciphertext.t) ->
      check_float "same output noise (PRNG untouched by tracing)" a.Ckks.Ciphertext.err
        b.Ckks.Ciphertext.err;
      Array.iteri
        (fun i v -> check_float "same output slots" v b.Ckks.Ciphertext.slots.(i))
        a.Ckks.Ciphertext.slots)
    plain.Interp.outputs traced.Interp.outputs

let interp_illegal_leaves_instant () =
  (* The unmanaged Figure 1 block under the Figure 1 parameters: rejected
     statically, and the flight recorder must end with the failure marker
     naming the faulting node. *)
  let g = fig1_block () in
  let p = Ckks.Params.fig1 in
  let tr = Obs.Trace.create () in
  let ev = Ckks.Evaluator.create p in
  let env = { Interp.inputs = [ ("x", input_env ~dim:4 3L) ]; consts = const_env ~dim:4 } in
  let raised =
    match Interp.run ~trace:tr ev g env with
    | _ -> false
    | exception Ckks.Evaluator.Fhe_error _ -> true
  in
  checkb "Figure 1a program rejected" true raised;
  match List.rev (Obs.Trace.events tr) with
  | Obs.Trace.Instant i :: _ ->
      check Alcotest.string "final event" "fhe_error" i.Obs.Trace.iname;
      checkb "names the faulting node" true (i.Obs.Trace.inode >= 0)
  | _ -> Alcotest.fail "expected a trailing fhe_error instant"

let interp_noise_summary () =
  let g = small_program () in
  let env = { Interp.inputs = [ ("x", input_env ~dim:4 3L) ]; consts = const_env ~dim:4 } in
  let result = Interp.run (Ckks.Evaluator.create prm) g env in
  let n = result.Interp.noise in
  checkb "finite min headroom" true (Float.is_finite n.Interp.min_headroom_bits);
  checkb "min node identified" true (n.Interp.min_headroom_node >= 0);
  checkb "headroom positive for a healthy run" true (n.Interp.min_headroom_bits > 0.0);
  check (Alcotest.list (Alcotest.pair Alcotest.int (Alcotest.float 0.0)))
    "no bootstraps in the unmanaged program" [] n.Interp.bootstrap_headroom;
  (match n.Interp.noisiest with
  | (node, bits) :: _ ->
      checki "noisiest list leads with the minimum" n.Interp.min_headroom_node node;
      check_float "and its headroom" n.Interp.min_headroom_bits bits
  | [] -> Alcotest.fail "expected noisiest nodes");
  checkb "noisiest ascending" true
    (let rec sorted = function
       | (_, a) :: ((_, b) :: _ as rest) -> a <= b && sorted rest
       | _ -> true
     in
     sorted n.Interp.noisiest)

(* --- Managed run: bootstraps, regions, cross-validation -------------------- *)

let managed_run () =
  let g = fig1_block () in
  let p = Ckks.Params.fig1 in
  let managed, report = Resbm.Driver.compile p g in
  let tr = Obs.Trace.create () in
  let region_of id =
    let attr = report.Resbm.Report.region_of in
    if id >= 0 && id < Array.length attr then attr.(id) else -1
  in
  let env = { Interp.inputs = [ ("x", input_env ~dim:4 3L) ]; consts = const_env ~dim:4 } in
  let result = Interp.run ~trace:tr ~region_of (Ckks.Evaluator.create p) managed env in
  (tr, report, result)

let managed_regions_attributed () =
  let tr, report, result = managed_run () in
  List.iter
    (fun (c : Interp.node_cost) ->
      checkb "every charged node has a region" true
        (c.Interp.region >= 0 && c.Interp.region < report.Resbm.Report.region_count))
    result.Interp.node_costs;
  (* per-region attribution decomposes the total latency *)
  let by_region = Hashtbl.create 8 in
  List.iter
    (fun (c : Interp.node_cost) ->
      Hashtbl.replace by_region c.Interp.region
        (c.Interp.cost_ms
        +. Option.value (Hashtbl.find_opt by_region c.Interp.region) ~default:0.0))
    result.Interp.node_costs;
  let total = Hashtbl.fold (fun _ v acc -> acc +. v) by_region 0.0 in
  check_float ~eps:1e-6 "region latencies sum to the total" result.Interp.latency_ms total;
  List.iter
    (fun (e : Obs.Trace.op_event) ->
      if e.Obs.Trace.node >= 0 then
        checkb "trace events carry the same attribution" true (e.Obs.Trace.region >= 0))
    (Obs.Trace.op_events tr)

let managed_bootstrap_headroom () =
  let _, report, result = managed_run () in
  checki "one headroom sample per executed bootstrap"
    report.Resbm.Report.stats.Stats.bootstrap_count
    (List.length result.Interp.noise.Interp.bootstrap_headroom);
  List.iter
    (fun (node, bits) ->
      checkb "bootstrap node id valid" true (node >= 0);
      checkb "operand still had budget" true (bits > 0.0))
    result.Interp.noise.Interp.bootstrap_headroom

let trace_cross_validation () =
  let g = fig1_block () in
  let p = Ckks.Params.fig1 in
  let managed, _ = Resbm.Driver.compile p g in
  let tr = Obs.Trace.create () in
  let env = { Interp.inputs = [ ("x", input_env ~dim:4 3L) ]; consts = const_env ~dim:4 } in
  ignore (Interp.run ~trace:tr (Ckks.Evaluator.create p) managed env);
  let static =
    Noise_check.analyse
      ~const_magnitude:(fun name ->
        Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 (const_env ~dim:4 name))
      p managed
  in
  let evs = Obs.Trace.op_events tr in
  check (Alcotest.list Alcotest.string) "traced noise within the static envelope" []
    (List.map
       (fun (m : Noise_check.trace_mismatch) -> m.Noise_check.op)
       (Noise_check.check_trace static evs));
  checkb "an absurd tolerance flags the same events" true
    (Noise_check.check_trace ~tolerance_bits:(-50.0) static evs <> [])

(* --- Exporters -------------------------------------------------------------- *)

let json_field name = function
  | Obs.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let chrome_round_trip () =
  let tr, report, _ = managed_run () in
  let json =
    Obs.chrome_trace
      (Obs.profile_chrome_events ~pid:0 report.Resbm.Report.profile
      @ Obs.Trace.chrome_events ~pid:1 tr)
  in
  match Obs.Json.of_string (Obs.Json.to_string json) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok parsed -> (
      (match json_field "displayTimeUnit" parsed with
      | Some (Obs.Json.String "ms") -> ()
      | _ -> Alcotest.fail "displayTimeUnit ms expected");
      match json_field "traceEvents" parsed with
      | Some (Obs.Json.List events) ->
          let phase e =
            match json_field "ph" e with Some (Obs.Json.String s) -> s | _ -> "?"
          in
          let named e =
            match json_field "name" e with Some (Obs.Json.String s) -> s | _ -> "?"
          in
          let counters =
            List.sort_uniq compare
              (List.filter_map
                 (fun e -> if phase e = "C" then Some (named e) else None)
                 events)
          in
          check
            (Alcotest.list Alcotest.string)
            "noise, level and scale counter tracks"
            [ "level"; "noise_headroom_bits"; "scale_bits" ]
            counters;
          checkb "duration events present" true (List.exists (fun e -> phase e = "X") events);
          checkb "bootstrap instants present" true
            (List.exists (fun e -> phase e = "i" && named e = "bootstrap") events);
          let pids =
            List.sort_uniq compare
              (List.filter_map
                 (fun e ->
                   match json_field "pid" e with Some (Obs.Json.Int p) -> Some p | _ -> None)
                 events)
          in
          check (Alcotest.list Alcotest.int) "compile and execution processes" [ 0; 1 ] pids
      | _ -> Alcotest.fail "traceEvents list expected")

let jsonl_round_trip () =
  let tr, _, _ = managed_run () in
  let lines = Obs.Trace.to_jsonl tr in
  checki "one line per surviving event" (Obs.Trace.recorded tr) (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "unparsable JSONL line: %s" e
      | Ok parsed -> (
          match json_field "type" parsed with
          | Some (Obs.Json.String ("op" | "instant")) -> ()
          | _ -> Alcotest.fail "typed JSONL record expected"))
    lines

let suite =
  [
    case "ring buffer: overflow keeps the tail" ring_overflow;
    case "ring buffer: under capacity" ring_under_capacity;
    case "ctx overrides attribution and cost" ctx_attribution;
    case "headroom bits clamped" headroom_clamp;
    case "evaluator records one event per op" evaluator_records_ops;
    case "evaluator failure leaves fhe_error instant" evaluator_failure_leaves_instant;
    case "no ambient trace, no events" trace_off_records_nothing;
    case "interp: event ordering and attribution" interp_event_ordering;
    case "interp: freq-weighted rolled loops" interp_freq_weighting;
    case "interp: tracing changes no results" interp_trace_off_identical;
    case "interp: Figure 1a failure marker" interp_illegal_leaves_instant;
    case "interp: noise summary" interp_noise_summary;
    case "managed run: region attribution" managed_regions_attributed;
    case "managed run: bootstrap headroom" managed_bootstrap_headroom;
    case "trace vs static noise cross-validation" trace_cross_validation;
    case "Chrome trace export round-trips" chrome_round_trip;
    case "JSONL export round-trips" jsonl_round_trip;
  ]
