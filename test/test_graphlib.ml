open Test_util

(* --- Digraph ----------------------------------------------------------- *)

let digraph_basics () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 4;
  Graphlib.Digraph.add_edge g 0 1;
  Graphlib.Digraph.add_edge g 0 2;
  Graphlib.Digraph.add_edge g 1 3;
  Graphlib.Digraph.add_edge g 2 3;
  checki "nodes" 4 (Graphlib.Digraph.node_count g);
  checki "edges" 4 (Graphlib.Digraph.edge_count g);
  checkb "mem 0->1" true (Graphlib.Digraph.mem_edge g 0 1);
  checkb "no 1->0" false (Graphlib.Digraph.mem_edge g 1 0);
  checki "succs 0" 2 (List.length (Graphlib.Digraph.succs g 0));
  checki "preds 3" 2 (List.length (Graphlib.Digraph.preds g 3));
  checki "out-deg 0" 2 (Graphlib.Digraph.out_degree g 0);
  checki "in-deg 3" 2 (Graphlib.Digraph.in_degree g 3)

let digraph_duplicate_edges () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 2;
  Graphlib.Digraph.add_edge g 0 1;
  Graphlib.Digraph.add_edge g 0 1;
  checki "dedup" 1 (Graphlib.Digraph.edge_count g)

let digraph_self_edge () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 1;
  Alcotest.check_raises "self edge" (Invalid_argument "Digraph.add_edge: self edge")
    (fun () -> Graphlib.Digraph.add_edge g 0 0)

let digraph_out_of_range () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 1;
  checkb "raises" true
    (match Graphlib.Digraph.add_edge g 0 5 with
    | () -> false
    | exception Invalid_argument _ -> true)

let digraph_transpose () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 3;
  Graphlib.Digraph.add_edge g 0 1;
  Graphlib.Digraph.add_edge g 1 2;
  let t = Graphlib.Digraph.transpose g in
  checkb "reversed" true (Graphlib.Digraph.mem_edge t 1 0);
  checkb "reversed 2" true (Graphlib.Digraph.mem_edge t 2 1);
  checki "same node count" 3 (Graphlib.Digraph.node_count t)

let digraph_growth () =
  let g = Graphlib.Digraph.create ~capacity:1 () in
  for _ = 1 to 100 do
    ignore (Graphlib.Digraph.add_node g)
  done;
  for i = 0 to 98 do
    Graphlib.Digraph.add_edge g i (i + 1)
  done;
  checki "nodes" 100 (Graphlib.Digraph.node_count g);
  checki "edges" 99 (Graphlib.Digraph.edge_count g)

(* --- Topo --------------------------------------------------------------- *)

let topo_chain () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 5;
  Graphlib.Digraph.add_edge g 3 1;
  Graphlib.Digraph.add_edge g 1 4;
  Graphlib.Digraph.add_edge g 4 0;
  Graphlib.Digraph.add_edge g 0 2;
  check (Alcotest.list Alcotest.int) "chain order" [ 3; 1; 4; 0; 2 ]
    (Graphlib.Topo.sort g)

let topo_respects_edges () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 6;
  List.iter
    (fun (u, v) -> Graphlib.Digraph.add_edge g u v)
    [ (0, 2); (1, 2); (2, 3); (2, 4); (3, 5); (4, 5) ];
  let order = Graphlib.Topo.sort g in
  let pos = Array.make 6 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Graphlib.Digraph.iter_edges g (fun u v ->
      checkb (Printf.sprintf "%d before %d" u v) true (pos.(u) < pos.(v)))

let topo_cycle () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 3;
  Graphlib.Digraph.add_edge g 0 1;
  Graphlib.Digraph.add_edge g 1 2;
  Graphlib.Digraph.add_edge g 2 0;
  checkb "cycle detected" false (Graphlib.Topo.is_dag g);
  checkb "raises" true
    (match Graphlib.Topo.sort g with
    | _ -> false
    | exception Graphlib.Topo.Cycle _ -> true)

let topo_reverse () =
  let g = Graphlib.Digraph.create () in
  Graphlib.Digraph.add_nodes g 3;
  Graphlib.Digraph.add_edge g 0 1;
  Graphlib.Digraph.add_edge g 1 2;
  check (Alcotest.list Alcotest.int) "reverse" [ 2; 1; 0 ] (Graphlib.Topo.reverse_sort g)

let topo_random_prop =
  qcheck ~count:50 "random DAGs topo-sort correctly"
    QCheck2.Gen.(pair (int_range 2 30) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let g = Graphlib.Digraph.create () in
      Graphlib.Digraph.add_nodes g n;
      (* forward edges only: guaranteed DAG *)
      for _ = 1 to 2 * n do
        let u = Ckks.Prng.int rng ~bound:(n - 1) in
        let v = u + 1 + Ckks.Prng.int rng ~bound:(n - u - 1) in
        Graphlib.Digraph.add_edge g u v
      done;
      let order = Graphlib.Topo.sort g in
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      let ok = ref (List.length order = n) in
      Graphlib.Digraph.iter_edges g (fun u v -> if pos.(u) >= pos.(v) then ok := false);
      !ok)

(* --- Maxflow ------------------------------------------------------------ *)

let maxflow_simple () =
  let net = Graphlib.Maxflow.create 4 in
  Graphlib.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3.0;
  Graphlib.Maxflow.add_edge net ~src:0 ~dst:2 ~cap:2.0;
  Graphlib.Maxflow.add_edge net ~src:1 ~dst:3 ~cap:2.0;
  Graphlib.Maxflow.add_edge net ~src:2 ~dst:3 ~cap:3.0;
  Graphlib.Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1.0;
  check_float ~eps:1e-6 "max flow" 5.0 (Graphlib.Maxflow.max_flow net ~source:0 ~sink:3)

let maxflow_min_cut_value () =
  let net = Graphlib.Maxflow.create 4 in
  Graphlib.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:10.0;
  Graphlib.Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1.5;
  Graphlib.Maxflow.add_edge net ~src:2 ~dst:3 ~cap:10.0;
  let cut = Graphlib.Maxflow.min_cut net ~source:0 ~sink:3 in
  check_float ~eps:1e-6 "bottleneck" 1.5 cut.Graphlib.Maxflow.value;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "cut edge" [ (1, 2) ] cut.Graphlib.Maxflow.edges;
  checkb "source side" true cut.Graphlib.Maxflow.source_side.(1);
  checkb "sink side" false cut.Graphlib.Maxflow.source_side.(2)

let maxflow_infinite_edges () =
  let net = Graphlib.Maxflow.create 4 in
  Graphlib.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:infinity;
  Graphlib.Maxflow.add_edge net ~src:1 ~dst:2 ~cap:4.0;
  Graphlib.Maxflow.add_edge net ~src:2 ~dst:3 ~cap:infinity;
  let cut = Graphlib.Maxflow.min_cut net ~source:0 ~sink:3 in
  check_float ~eps:1e-6 "finite bottleneck" 4.0 cut.Graphlib.Maxflow.value;
  (* infinite edges never appear in the reported cut *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "cut edge" [ (1, 2) ] cut.Graphlib.Maxflow.edges

let maxflow_disconnected () =
  let net = Graphlib.Maxflow.create 3 in
  Graphlib.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5.0;
  check_float ~eps:1e-6 "no path" 0.0 (Graphlib.Maxflow.max_flow net ~source:0 ~sink:2)

let maxflow_negative_cap () =
  let net = Graphlib.Maxflow.create 2 in
  checkb "negative rejected" true
    (match Graphlib.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:(-1.0) with
    | () -> false
    | exception Invalid_argument _ -> true)

(* Brute-force min cut: enumerate subsets containing the source. *)
let brute_force_min_cut edges n ~source ~sink =
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl source) <> 0 && mask land (1 lsl sink) = 0 then begin
      let v =
        List.fold_left
          (fun acc (u, w, c) ->
            if mask land (1 lsl u) <> 0 && mask land (1 lsl w) = 0 then acc +. c else acc)
          0.0 edges
      in
      if v < !best then best := v
    end
  done;
  !best

let maxflow_matches_brute_force =
  qcheck ~count:100 "max-flow equals brute-force min cut"
    QCheck2.Gen.(pair (int_range 3 7) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Ckks.Prng.float rng < 0.45 then
            edges := (u, v, float_of_int (1 + Ckks.Prng.int rng ~bound:9)) :: !edges
        done
      done;
      let net = Graphlib.Maxflow.create n in
      List.iter (fun (u, v, c) -> Graphlib.Maxflow.add_edge net ~src:u ~dst:v ~cap:c) !edges;
      let flow = Graphlib.Maxflow.max_flow net ~source:0 ~sink:(n - 1) in
      let expect = brute_force_min_cut !edges n ~source:0 ~sink:(n - 1) in
      Float.abs (flow -. expect) < 1e-6)

let maxflow_dense_matches_brute_force =
  qcheck ~count:60 "dense random graphs match brute-force cut enumeration"
    QCheck2.Gen.(pair (int_range 4 8) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let edges = ref [] in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v && Ckks.Prng.float rng < 0.9 then
            edges := (u, v, float_of_int (1 + Ckks.Prng.int rng ~bound:9)) :: !edges
        done
      done;
      let net = Graphlib.Maxflow.create n in
      List.iter (fun (u, v, c) -> Graphlib.Maxflow.add_edge net ~src:u ~dst:v ~cap:c) !edges;
      let cut = Graphlib.Maxflow.min_cut net ~source:0 ~sink:(n - 1) in
      let expect = brute_force_min_cut !edges n ~source:0 ~sink:(n - 1) in
      let st = Graphlib.Maxflow.stats net in
      Float.abs (cut.Graphlib.Maxflow.value -. expect) < 1e-6
      && st.Graphlib.Maxflow.arcs = 2 * List.length !edges
      && (expect = 0.0 || st.Graphlib.Maxflow.aug_paths > 0))

let maxflow_wide_star_construction () =
  (* 10k parallel chains s -> i -> t, i.e. 10k edges converging on one
     node.  The old pending representation (List.length + append per
     edge) made building this network quadratic in the node degree; the
     whole construct-and-solve must now stay well under a second. *)
  let k = 10_000 in
  let net = Graphlib.Maxflow.create (k + 2) in
  let s = k and t = k + 1 in
  let timer = Obs.Timer.start () in
  for i = 0 to k - 1 do
    Graphlib.Maxflow.add_edge net ~src:s ~dst:i ~cap:1.0;
    Graphlib.Maxflow.add_edge net ~src:i ~dst:t ~cap:2.0
  done;
  let flow = Graphlib.Maxflow.max_flow net ~source:s ~sink:t in
  check_float ~eps:1e-6 "flow saturates every chain" (float_of_int k) flow;
  let st = Graphlib.Maxflow.stats net in
  checki "arc records" (4 * k) st.Graphlib.Maxflow.arcs;
  checki "nodes" (k + 2) st.Graphlib.Maxflow.nodes;
  checkb "bfs phases counted" true (st.Graphlib.Maxflow.bfs_phases >= 1);
  checkb "augmenting paths counted" true (st.Graphlib.Maxflow.aug_paths >= 1);
  checkb "no quadratic blowup (under 10s)" true (Obs.Timer.elapsed_ms timer < 10_000.0)

let maxflow_stats_counters () =
  let net = Graphlib.Maxflow.create 4 in
  Graphlib.Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3.0;
  Graphlib.Maxflow.add_edge net ~src:0 ~dst:2 ~cap:2.0;
  Graphlib.Maxflow.add_edge net ~src:1 ~dst:3 ~cap:2.0;
  Graphlib.Maxflow.add_edge net ~src:2 ~dst:3 ~cap:3.0;
  Graphlib.Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1.0;
  let st0 = Graphlib.Maxflow.stats net in
  checki "idle bfs phases" 0 st0.Graphlib.Maxflow.bfs_phases;
  checki "idle augmenting paths" 0 st0.Graphlib.Maxflow.aug_paths;
  check_float ~eps:1e-6 "flow unchanged by instrumentation" 5.0
    (Graphlib.Maxflow.max_flow net ~source:0 ~sink:3);
  let st = Graphlib.Maxflow.stats net in
  checki "arc records (fwd + residual)" 10 st.Graphlib.Maxflow.arcs;
  checkb "bfs phases counted" true (st.Graphlib.Maxflow.bfs_phases >= 2);
  checkb "augmenting paths counted" true (st.Graphlib.Maxflow.aug_paths >= 2)

let maxflow_cut_separates =
  qcheck ~count:100 "removing the cut disconnects source from sink"
    QCheck2.Gen.(pair (int_range 3 8) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let edges = ref [] in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          if Ckks.Prng.float rng < 0.5 then
            edges := (u, v, 1.0 +. Ckks.Prng.float rng) :: !edges
        done
      done;
      let net = Graphlib.Maxflow.create n in
      List.iter (fun (u, v, c) -> Graphlib.Maxflow.add_edge net ~src:u ~dst:v ~cap:c) !edges;
      let cut = Graphlib.Maxflow.min_cut net ~source:0 ~sink:(n - 1) in
      let cut_set = cut.Graphlib.Maxflow.edges in
      (* BFS in the graph minus the cut edges *)
      let adj = Array.make n [] in
      List.iter
        (fun (u, v, _) -> if not (List.mem (u, v) cut_set) then adj.(u) <- v :: adj.(u))
        !edges;
      let seen = Array.make n false in
      let rec go u =
        if not seen.(u) then begin
          seen.(u) <- true;
          List.iter go adj.(u)
        end
      in
      go 0;
      not seen.(n - 1))

(* --- Stoer-Wagner ------------------------------------------------------- *)

let stoer_wagner_triangle () =
  let g = Graphlib.Stoer_wagner.create 3 in
  Graphlib.Stoer_wagner.add_edge g 0 1 1.0;
  Graphlib.Stoer_wagner.add_edge g 1 2 1.0;
  Graphlib.Stoer_wagner.add_edge g 0 2 10.0;
  let v, side = Graphlib.Stoer_wagner.min_cut g in
  check_float ~eps:1e-9 "isolate node 1" 2.0 v;
  (* one side must be exactly {1} *)
  let ones = Array.to_list side |> List.filteri (fun i b -> b && i = 1) in
  checkb "side isolates node 1"
    true
    (side.(1) && (not side.(0)) && (not side.(2)) || ((not side.(1)) && side.(0) && side.(2)));
  ignore ones

let stoer_wagner_two_nodes () =
  let g = Graphlib.Stoer_wagner.create 2 in
  Graphlib.Stoer_wagner.add_edge g 0 1 7.5;
  let v, _ = Graphlib.Stoer_wagner.min_cut g in
  check_float ~eps:1e-9 "single edge" 7.5 v

let brute_force_global_cut edges n =
  let best = ref infinity in
  for mask = 1 to (1 lsl n) - 2 do
    let v =
      List.fold_left
        (fun acc (u, w, c) ->
          let su = mask land (1 lsl u) <> 0 and sw = mask land (1 lsl w) <> 0 in
          if su <> sw then acc +. c else acc)
        0.0 edges
    in
    if v < !best then best := v
  done;
  !best

let stoer_wagner_matches_brute_force =
  qcheck ~count:100 "Stoer-Wagner equals brute-force global min cut"
    QCheck2.Gen.(pair (int_range 2 7) (int_bound 100_000))
    (fun (n, seed) ->
      let rng = Ckks.Prng.create (Int64.of_int seed) in
      let edges = ref [] in
      for u = 0 to n - 2 do
        for v = u + 1 to n - 1 do
          (* keep the graph connected: always add the chain edge *)
          if v = u + 1 || Ckks.Prng.float rng < 0.4 then
            edges := (u, v, float_of_int (1 + Ckks.Prng.int rng ~bound:9)) :: !edges
        done
      done;
      let g = Graphlib.Stoer_wagner.create n in
      List.iter (fun (u, v, c) -> Graphlib.Stoer_wagner.add_edge g u v c) !edges;
      let v, _ = Graphlib.Stoer_wagner.min_cut g in
      Float.abs (v -. brute_force_global_cut !edges n) < 1e-6)

let suite =
  [
    case "digraph: basics" digraph_basics;
    case "digraph: duplicate edges ignored" digraph_duplicate_edges;
    case "digraph: self edges rejected" digraph_self_edge;
    case "digraph: out-of-range rejected" digraph_out_of_range;
    case "digraph: transpose" digraph_transpose;
    case "digraph: growth" digraph_growth;
    case "topo: chain" topo_chain;
    case "topo: respects edges" topo_respects_edges;
    case "topo: cycle detection" topo_cycle;
    case "topo: reverse order" topo_reverse;
    topo_random_prop;
    case "maxflow: simple network" maxflow_simple;
    case "maxflow: min-cut value and edges" maxflow_min_cut_value;
    case "maxflow: infinite edges excluded from cut" maxflow_infinite_edges;
    case "maxflow: disconnected" maxflow_disconnected;
    case "maxflow: negative capacity rejected" maxflow_negative_cap;
    maxflow_matches_brute_force;
    maxflow_dense_matches_brute_force;
    case "maxflow: wide star construction (10k edges)" maxflow_wide_star_construction;
    case "maxflow: work counters" maxflow_stats_counters;
    maxflow_cut_separates;
    case "stoer-wagner: triangle" stoer_wagner_triangle;
    case "stoer-wagner: two nodes" stoer_wagner_two_nodes;
    stoer_wagner_matches_brute_force;
  ]
