(* Encrypted inference on ResNet-20 (the paper's smallest evaluation
   model): lower the network to an FHE DFG, compile it with ReSBM under
   the paper's parameters (q = 2^56, l_max = 16), and run simulated
   encrypted inference on the synthetic dataset, reporting the Table 6
   fidelity figures.

   Run with: dune exec examples/resnet_inference.exe *)

let () =
  let prm = Ckks.Params.default in
  let model = Nn.Model.resnet20 in
  Format.printf "=== Encrypted inference: %s under %a ===@.@." model.Nn.Model.name
    Ckks.Params.pp prm;

  let lowered = Nn.Lowering.lower model in
  let g = lowered.Nn.Lowering.dfg in
  Format.printf "lowered to %d DFG nodes, multiplicative depth %d@."
    (List.length (Fhe_ir.Dfg.live_nodes g))
    (Fhe_ir.Depth.max_depth g);

  let managed, report = Resbm.Variants.(compile resbm) prm g in
  let stats = report.Resbm.Report.stats in
  Format.printf "compiled in %.1f ms: %d bootstraps (%s), %d executed rescales@."
    report.Resbm.Report.compile_ms stats.Fhe_ir.Stats.bootstrap_count
    (String.concat ", "
       (List.map
          (fun (l, c) -> Printf.sprintf "%d at L%d" c l)
          stats.Fhe_ir.Stats.bootstrap_levels))
    stats.Fhe_ir.Stats.executed_rescales;
  Format.printf "estimated end-to-end latency: %.1f s of simulated CPU time@."
    (report.Resbm.Report.latency_ms /. 1000.0);

  (* One inference, step by step. *)
  let dim = 64 in
  let image = (Nn.Dataset.images ~dim ~count:1 ()).(0) in
  let ev = Ckks.Evaluator.create prm in
  let scores, latency = Nn.Inference.run_encrypted ev lowered ~managed image in
  let plain = Nn.Inference.run_plain lowered ~dim image in
  let classes = model.Nn.Model.classes in
  Format.printf "@.--- one encrypted inference (%d slots, %d classes)@." dim classes;
  Format.printf "simulated latency: %.1f s, %d homomorphic ops executed@."
    (latency /. 1000.0) (Ckks.Evaluator.op_count ev);
  Format.printf "encrypted class scores:  ";
  for c = 0 to classes - 1 do
    Format.printf "%+.4f " scores.(c)
  done;
  Format.printf "@.plaintext class scores:  ";
  for c = 0 to classes - 1 do
    Format.printf "%+.4f " plain.(c)
  done;
  Format.printf "@.prediction: %d (encrypted) vs %d (plain)@."
    (Nn.Dataset.argmax ~classes scores)
    (Nn.Dataset.argmax ~classes plain);

  (* The Table 6 fidelity experiment on a batch. *)
  Format.printf "@.--- fidelity over the synthetic dataset (Table 6 protocol)@.";
  let fid = Nn.Inference.fidelity ~samples:10 ~dim prm lowered ~managed in
  Format.printf "%a@." Nn.Inference.pp_fidelity fid
