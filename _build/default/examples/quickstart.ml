(* Quickstart: the motivating example of the paper (Figure 1).

   Builds the simplified ResNet block — Conv1, a cubic approximate ReLU,
   Conv2, and a final ciphertext-ciphertext multiplication with the input
   — under the Figure 1 parameters (q = q_w = 2^40, l_max = 3, input at
   level 1 with scale 2^40), then:

   1. shows that the unmanaged program cannot execute (scale overflow and
      scale/level mismatches, Figure 1a);
   2. compiles it with ReSBM and the three manager configurations the
      paper compares against (Figures 1b-1d);
   3. runs the ReSBM-managed program through the simulated RNS-CKKS
      evaluator and checks the result against exact plain arithmetic.

   Run with: dune exec examples/quickstart.exe *)

open Fhe_ir

let build_block () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let conv name v =
    let tap k w =
      let src = if k = 0 then v else Dfg.rotate g v k in
      Dfg.mul_cp g src (Dfg.const g (Printf.sprintf "%s_w%s" name w))
    in
    let t0 = tap 0 "0" and t1 = tap (-1) "1" and t2 = tap 1 "2" in
    Dfg.add_cp g (Dfg.add_cc g (Dfg.add_cc g t0 t1) t2) (Dfg.const g (name ^ "_b"))
  in
  let u = conv "conv1" x in
  (* ReLU ~ c3*u^3 + c1*u *)
  let u2 = Dfg.mul_cc g u u in
  let u3 = Dfg.mul_cc g u2 u in
  let relu =
    Dfg.add_cc g
      (Dfg.mul_cp g u3 (Dfg.const g "c3"))
      (Dfg.mul_cp g u (Dfg.const g "c1"))
  in
  let y = conv "conv2" relu in
  let out = Dfg.mul_cc g y x in
  Dfg.set_outputs g [ out ];
  g

let consts ~dim name =
  let rng = Ckks.Prng.create (Int64.of_int (Hashtbl.hash name)) in
  match name with
  | "c3" -> Array.make dim (-0.5)
  | "c1" -> Array.make dim 0.75
  | _ -> Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-0.3) ~hi:0.3)

let () =
  let prm = Ckks.Params.fig1 in
  let g = build_block () in
  Format.printf "=== The Figure 1 ResNet block under %a ===@.@." Ckks.Params.pp prm;

  (* Figure 1a: without management, the program is not executable. *)
  Format.printf "--- Without scale and bootstrapping management (Figure 1a)@.";
  (match Scale_check.run prm g with
  | Ok _ -> Format.printf "unexpectedly legal?!@."
  | Error violations ->
      Format.printf "the scale checker rejects the program with %d violations, e.g.:@."
        (List.length violations);
      List.iteri
        (fun i v -> if i < 3 then Format.printf "  - %a@." Scale_check.pp_violation v)
        violations);

  (* Region partition (the backbone of Figure 1d). *)
  let regioned = Resbm.Region.build g in
  Format.printf "@.--- Region partition: %d regions for multiplicative depth %d@."
    regioned.Resbm.Region.count (Depth.max_depth g);

  (* Compile under every manager. *)
  Format.printf "@.--- Managed plans (compare with Figures 1b-1d)@.";
  Format.printf "%-12s %12s %6s %-14s %9s %5s@." "manager" "latency(ms)" "bts"
    "bts levels" "rescales" "ms";
  List.iter
    (fun mgr ->
      let managed, report = Resbm.Variants.compile mgr prm g in
      assert (Result.is_ok (Scale_check.run prm managed));
      let stats = report.Resbm.Report.stats in
      Format.printf "%-12s %12.1f %6d %-14s %9d %5d@." mgr.Resbm.Variants.name
        report.Resbm.Report.latency_ms stats.Stats.bootstrap_count
        (String.concat ","
           (List.map (fun (l, c) -> Printf.sprintf "L%d:%d" l c) stats.Stats.bootstrap_levels))
        stats.Stats.executed_rescales stats.Stats.executed_modswitches)
    Resbm.Variants.all;

  (* Execute the ReSBM plan on the simulated evaluator. *)
  Format.printf "@.--- Executing the ReSBM-managed block homomorphically@.";
  let managed, report = Resbm.Variants.(compile resbm) prm g in
  let dim = 16 in
  let rng = Ckks.Prng.create 2024L in
  let input = Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-0.5) ~hi:0.5) in
  let env = { Interp.inputs = [ ("x", input) ]; consts = consts ~dim } in
  let ev = Ckks.Evaluator.create prm in
  let result = Interp.run ev managed env in
  let plain = Nn.Plain_eval.run managed ~input:(fun _ -> input) ~consts:(consts ~dim) in
  (match (result.Interp.outputs, plain) with
  | [ ct ], [ expected ] ->
      let decrypted = Ckks.Evaluator.decrypt ev ct in
      let max_err =
        Array.mapi (fun i v -> Float.abs (v -. expected.(i))) decrypted
        |> Array.fold_left Float.max 0.0
      in
      Format.printf "executed %d homomorphic operations, simulated latency %.1f ms@."
        result.Interp.op_count result.Interp.latency_ms;
      Format.printf "max |encrypted - plain| over %d slots: %.3g@." dim max_err;
      Format.printf "output ciphertext: %a@." Ckks.Ciphertext.pp ct
  | _ -> assert false);
  Format.printf "@.compiled in %.2f ms; bootstrap segments: %s@."
    report.Resbm.Report.compile_ms
    (String.concat " "
       (List.map (fun (s, d) -> Printf.sprintf "[R%d -> R%d]" s d) report.Resbm.Report.segments))
