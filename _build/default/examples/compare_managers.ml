(* Side-by-side comparison of every scale/bootstrapping manager on one
   model — the per-model slice of Figure 6 and Tables 4-5.

   Run with: dune exec examples/compare_managers.exe [model] [l_max]
   where model is one of resnet20/resnet44/resnet110/alexnet/vgg16/
   squeezenet/mobilenet/lenet5/tiny (default resnet20). *)

let () =
  let model_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "resnet20" in
  let l_max =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2)
    else Ckks.Params.default.Ckks.Params.l_max
  in
  let model =
    match Nn.Model.by_name model_name with
    | Some m -> m
    | None ->
        Format.eprintf "unknown model %s@." model_name;
        exit 1
  in
  let prm =
    Ckks.Params.with_l_max
      { Ckks.Params.default with input_level = l_max }
      l_max
  in
  let lowered = Nn.Lowering.lower model in
  let g = lowered.Nn.Lowering.dfg in
  Format.printf "=== %s (depth %d, %d nodes) at l_max = %d ===@.@." model.Nn.Model.name
    (Fhe_ir.Depth.max_depth g)
    (List.length (Fhe_ir.Dfg.live_nodes g))
    l_max;
  Format.printf "%-12s %11s %12s %5s %9s %9s %9s@." "manager" "compile(ms)"
    "latency(ms)" "bts" "rescales" "modswitch" "vs ReSBM";
  let baseline = ref None in
  List.iter
    (fun mgr ->
      match Resbm.Variants.compile mgr prm g with
      | managed, report ->
          (match Fhe_ir.Scale_check.run prm managed with
          | Ok _ -> ()
          | Error _ -> Format.printf "WARNING: %s produced an illegal graph@." mgr.Resbm.Variants.name);
          let stats = report.Resbm.Report.stats in
          if !baseline = None then baseline := Some report.Resbm.Report.latency_ms;
          let rel =
            match !baseline with
            | Some b -> report.Resbm.Report.latency_ms /. b
            | None -> 1.0
          in
          Format.printf "%-12s %11.1f %12.0f %5d %9d %9d %8.2fx@."
            mgr.Resbm.Variants.name report.Resbm.Report.compile_ms
            report.Resbm.Report.latency_ms stats.Fhe_ir.Stats.bootstrap_count
            stats.Fhe_ir.Stats.executed_rescales stats.Fhe_ir.Stats.executed_modswitches rel
      | exception e ->
          Format.printf "%-12s failed: %s@." mgr.Resbm.Variants.name (Printexc.to_string e))
    Resbm.Variants.all;
  Format.printf
    "@.bootstrap level histograms:@.";
  List.iter
    (fun mgr ->
      let _, report = Resbm.Variants.compile mgr prm g in
      Format.printf "  %-12s %s@." mgr.Resbm.Variants.name
        (String.concat " "
           (List.map
              (fun (l, c) -> Printf.sprintf "L%d:%d" l c)
              report.Resbm.Report.stats.Fhe_ir.Stats.bootstrap_levels)))
    Resbm.Variants.figure6
