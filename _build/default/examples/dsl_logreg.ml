(* Privacy-preserving scoring with the expression DSL.

   A bank scores encrypted feature vectors with a logistic-regression
   model: score = sigmoid(w . x + b), with the sigmoid replaced by the
   odd-polynomial approximation sigmoid(t) ~ 0.5 + 0.197 t - 0.004 t^3
   (the classic least-squares fit on [-8, 8], here on [-4, 4] rescaled).
   The program is written in the EVA-style frontend, compiled with ReSBM,
   and executed on the simulated RNS-CKKS evaluator.

   Run with: dune exec examples/dsl_logreg.exe *)

let () =
  let open Fhe_lang.Lang in
  let open Fhe_lang.Lang.Infix in
  let prm = { Ckks.Params.default with input_level = 8 } in

  (* 8-tap dot product against packed weights, then the sigmoid
     approximation on the accumulated score. *)
  let x = input "x" in
  let score = dot x "lr" ~taps:8 ~stride:1 in
  let sigmoid t = (poly_odd t [| 0.197; -0.004 |] *! 1.0) +! 0.5 in
  let out = sigmoid score in
  let g = compile ~outputs:[ out ] in
  Format.printf "=== Encrypted logistic scoring (DSL frontend) ===@.@.";
  Format.printf "program: %d DFG nodes, multiplicative depth %d@."
    (List.length (Fhe_ir.Dfg.live_nodes g))
    (Fhe_ir.Depth.max_depth g);

  let managed, report = Resbm.Driver.compile prm g in
  Format.printf "ReSBM plan: %.1f ms simulated latency, %d bootstraps, %d rescales@."
    report.Resbm.Report.latency_ms
    report.Resbm.Report.stats.Fhe_ir.Stats.bootstrap_count
    report.Resbm.Report.stats.Fhe_ir.Stats.executed_rescales;

  (* predicted output precision from the static noise analysis *)
  let noise = Fhe_ir.Noise_check.analyse prm managed in
  Format.printf "predicted output precision: %.1f bits@."
    noise.Fhe_ir.Noise_check.output_precision_bits;

  (* run a few encrypted scorings *)
  let dim = 16 in
  let rng = Ckks.Prng.create 77L in
  let weights name =
    let wrng = Ckks.Prng.create (Int64.of_int (Hashtbl.hash name)) in
    Array.init dim (fun _ -> Ckks.Prng.uniform wrng ~lo:(-0.25) ~hi:0.25)
  in
  let consts = resolver weights ~dim in
  let ev = Ckks.Evaluator.create prm in
  Format.printf "@.%8s %12s %12s %10s@." "client" "encrypted" "plaintext" "|error|";
  let worst = ref 0.0 in
  for client = 1 to 5 do
    let features = Array.init dim (fun _ -> Ckks.Prng.uniform rng ~lo:(-1.0) ~hi:1.0) in
    let env = { Fhe_ir.Interp.inputs = [ ("x", features) ]; consts } in
    let result = Fhe_ir.Interp.run ev managed env in
    let encrypted =
      match result.Fhe_ir.Interp.outputs with
      | [ ct ] -> (Ckks.Evaluator.decrypt ev ct).(0)
      | _ -> assert false
    in
    let plain =
      match Nn.Plain_eval.run managed ~input:(fun _ -> features) ~consts with
      | [ out ] -> out.(0)
      | _ -> assert false
    in
    let err = Float.abs (encrypted -. plain) in
    worst := Float.max !worst err;
    Format.printf "%8d %12.6f %12.6f %10.2e@." client encrypted plain err
  done;
  Format.printf "@.worst observed error %.2e (prediction valid: %b)@." !worst
    (Fhe_ir.Noise_check.predicts noise ~measured:!worst)
