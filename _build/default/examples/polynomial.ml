(* Polynomial programs: region partitioning (Figure 3) and ReSBM's
   sub-optimality plus its compiler-optimisation repair (Figure 5).

   Run with: dune exec examples/polynomial.exe *)

open Fhe_ir

(* --- Figure 3: a3*x^3 + a1*x --------------------------------------------- *)

let fig3 () =
  let g = Dfg.create () in
  let x = Dfg.input g "x" in
  let x2 = Dfg.mul_cc g x x in
  let x3 = Dfg.mul_cc g x2 x in
  let a3x3 = Dfg.mul_cp g x3 (Dfg.const g "a3") in
  let a1x = Dfg.mul_cp g x (Dfg.const g "a1") in
  let out = Dfg.add_cc g a3x3 a1x in
  Dfg.set_outputs g [ out ];
  (g, a1x)

(* --- Figure 5: y = a3*x^3, z = a4*((a1*x)^2 + y^4) ------------------------ *)

let fig5 () =
  let g = Dfg.create () in
  let x = Dfg.input g ~level:0 "x" in
  let x2 = Dfg.mul_cc g x x in
  let x3 = Dfg.mul_cc g x2 x in
  let y = Dfg.mul_cp g x3 (Dfg.const g "a3") in
  let a1x = Dfg.mul_cp g x (Dfg.const g "a1") in
  let a1x2 = Dfg.mul_cc g a1x a1x in
  let y2 = Dfg.mul_cc g y y in
  let y4 = Dfg.mul_cc g y2 y2 in
  let z = Dfg.mul_cp g (Dfg.add_cc g a1x2 y4) (Dfg.const g "a4") in
  Dfg.set_outputs g [ z ];
  g

let count_bootstraps g =
  List.length
    (List.filter
       (fun n -> match n.Dfg.kind with Op.Bootstrap _ -> true | _ -> false)
       (Dfg.live_nodes g))

let () =
  (* Figure 3 *)
  Format.printf "=== Figure 3: region partition of a3*x^3 + a1*x ===@.@.";
  let g3, a1x = fig3 () in
  let regioned = Resbm.Region.build g3 in
  Format.printf "%a@.@." Resbm.Region.pp regioned;
  Format.printf
    "the off-critical-path multiplication a1*x lives in region %d of %d:@.\
     it sinks next to its use (Figure 3b) and executes at a lower level,@.\
     so the modswitch lands before the multiplication, not after it.@."
    regioned.Resbm.Region.region_of.(a1x)
    (regioned.Resbm.Region.count - 1);

  (* Figure 5 *)
  let prm = { Ckks.Params.fig1 with input_level = 0 } in
  Format.printf "@.=== Figure 5: sub-optimality and its repair ===@.@.";
  let naive = fig5 () in
  let managed_naive, report_naive = Resbm.Driver.compile prm naive in
  Format.printf
    "naive program: %d bootstraps, latency %.1f ms@.\
     (the paper's Figure 5a plan uses 3 bootstraps; ReSBM's grouped cut@.\
     insertion already shares the bootstrap of x across its uses, so the@.\
     Figure 5b optimum of 2 is reached without post-optimisation)@."
    (count_bootstraps managed_naive) report_naive.Resbm.Report.latency_ms;

  (* Pre-optimisation: constant folding + CSE (the paper's suggested fix),
     then recompile. *)
  let optimised = fig5 () in
  let folds = Passes.Const_fold.run optimised in
  let merged = Passes.Cse.run optimised in
  let removed = Passes.Dce.run optimised in
  Format.printf "pre-optimisation: %d constants folded, %d nodes merged, %d removed@."
    folds merged removed;
  let managed_opt, report_opt = Resbm.Driver.compile prm optimised in
  (* Post-optimisation on the managed graph: CSE merges duplicate
     bootstraps of the same value (Figure 5a -> 5b). *)
  let post_merged = Passes.Cse.run managed_opt in
  ignore (Passes.Dce.run managed_opt);
  Format.printf "optimised program: %d bootstraps, latency %.1f ms (%d merged post-CSE)@."
    (count_bootstraps managed_opt)
    (Latency.total prm managed_opt)
    post_merged;
  ignore report_opt;
  Format.printf "naive %.1f ms -> optimised %.1f ms (%.2f%% saved)@."
    report_naive.Resbm.Report.latency_ms
    (Latency.total prm managed_opt)
    (100.0
    *. (1.0 -. (Latency.total prm managed_opt /. report_naive.Resbm.Report.latency_ms)));

  (* Both versions compute the same function. *)
  let dim = 8 in
  let input = Array.init dim (fun i -> 0.1 *. float_of_int (i - 4)) in
  let consts name =
    match name with
    | "a3" -> Array.make dim 0.5
    | "a1" -> Array.make dim 0.3
    | "a4" -> Array.make dim 0.7
    | other -> Passes.Const_fold.resolving (fun _ -> Array.make dim 1.0) other
  in
  let consts = Passes.Const_fold.resolving consts in
  let out_naive = Nn.Plain_eval.run managed_naive ~input:(fun _ -> input) ~consts in
  let out_opt = Nn.Plain_eval.run managed_opt ~input:(fun _ -> input) ~consts in
  match (out_naive, out_opt) with
  | [ a ], [ b ] ->
      let max_diff =
        Array.mapi (fun i v -> Float.abs (v -. b.(i))) a |> Array.fold_left Float.max 0.0
      in
      Format.printf "@.semantic check: max difference between the two versions = %.3g@."
        max_diff
  | _ -> assert false
