examples/dsl_logreg.ml: Array Ckks Fhe_ir Fhe_lang Float Format Hashtbl Int64 List Nn Resbm
