examples/compare_managers.ml: Array Ckks Fhe_ir Format List Nn Printexc Printf Resbm String Sys
