examples/quickstart.ml: Array Ckks Depth Dfg Fhe_ir Float Format Hashtbl Int64 Interp List Nn Printf Resbm Result Scale_check Stats String
