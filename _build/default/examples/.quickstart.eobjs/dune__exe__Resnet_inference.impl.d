examples/resnet_inference.ml: Array Ckks Fhe_ir Format List Nn Printf Resbm String
