examples/compare_managers.mli:
