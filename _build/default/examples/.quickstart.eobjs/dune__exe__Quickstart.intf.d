examples/quickstart.mli:
