examples/polynomial.ml: Array Ckks Dfg Fhe_ir Float Format Latency List Nn Op Passes Resbm
