examples/resnet_inference.mli:
