examples/dsl_logreg.mli:
