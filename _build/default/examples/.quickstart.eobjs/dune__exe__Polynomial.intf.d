examples/polynomial.mli:
