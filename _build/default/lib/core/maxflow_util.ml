let add_with_reverse net ~src ~dst ~cap =
  Graphlib.Maxflow.add_edge net ~src ~dst ~cap;
  if cap < infinity then Graphlib.Maxflow.add_edge net ~src:dst ~dst:src ~cap:infinity
