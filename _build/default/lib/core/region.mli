(** Region-based DFG — [BuildRegionedDFG] of Section 4.1.

    The DFG is partitioned into regions of multiplicative depth exactly
    one: region [i > 0] opens with the multiplications at depth [i];
    region [0] holds the input ciphertexts.  The number of regions is the
    maximum multiplicative depth plus one, and the regions form a linear,
    data-dependent sequence.

    Assignment follows the paper's two traversals: a forward pass places
    every node in the earliest region consistent with its predecessors,
    then a backward pass sinks nodes into the latest region allowed by
    their successors (a node feeding a multiplication of region [j] must
    finish in region [j - 1]; a node feeding a non-multiplication of
    region [j] may sit in region [j] itself).  The backward pass is what
    prefers Figure 3b over Figure 3a: the off-critical-path [a1*x]
    multiplication sinks next to its use and executes at a lower level. *)

type t = private {
  dfg : Fhe_ir.Dfg.t;
  region_of : int array;  (** node id -> region index. *)
  regions : int array array;  (** region index -> member node ids, topo order. *)
  count : int;
}

val build : ?sink:bool -> Fhe_ir.Dfg.t -> t
(** [sink] (default true) enables the backward pass; disabling it keeps
    every node at its forward (earliest) region — the ablation of the
    Figure 3 placement choice.
    @raise Invalid_argument if the DFG fails {!Fhe_ir.Dfg.validate}. *)

val members : t -> int -> int array
(** Node ids of a region, in topological order. *)

val ct_members : t -> int -> int list
(** Ciphertext-producing members only (plaintext constants excluded). *)

val muls : t -> int -> int list
(** Multiplication nodes of a region. *)

val has_mul_cc : t -> int -> bool
val has_mul_cp : t -> int -> bool

val live_out : t -> int -> int list
(** Members with a consumer outside the region or listed as DFG outputs. *)

val pp : Format.formatter -> t -> unit
