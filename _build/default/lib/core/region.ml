open Fhe_ir

type t = {
  dfg : Dfg.t;
  region_of : int array;
  regions : int array array;
  count : int;
}

let build ?(sink = true) dfg =
  (match Dfg.validate dfg with
  | Ok () -> ()
  | Error (msg :: _) -> invalid_arg ("Region.build: " ^ msg)
  | Error [] -> assert false);
  let order = Dfg.topo_order dfg in
  let n = Dfg.node_count dfg in
  let depth = Depth.per_node dfg in
  let region_of = Array.make n 0 in
  (* Forward pass: multiplications anchor at their depth; everything else
     at the latest predecessor's region. *)
  List.iter
    (fun id ->
      let node = Dfg.node dfg id in
      if Op.is_mul node.Dfg.kind then region_of.(id) <- depth.(id)
      else
        region_of.(id) <-
          Array.fold_left (fun acc a -> max acc region_of.(a)) 0 node.Dfg.args)
    order;
  (* Backward pass: sink each node to the latest region its users allow.
     Multiplications of region j consume operands from region j-1 at the
     latest; non-multiplications admit same-region operands. *)
  if sink then
  List.iter
    (fun id ->
      let node = Dfg.node dfg id in
      match node.Dfg.kind with
      | Op.Input _ -> ()
      | _ -> (
          let users = Dfg.succs dfg id in
          match users with
          | [] -> ()
          | _ ->
              let allowance u =
                let r = region_of.(u) in
                if Op.is_mul (Dfg.node dfg u).Dfg.kind then r - 1 else r
              in
              let latest =
                List.fold_left (fun acc u -> min acc (allowance u)) max_int users
              in
              if latest > region_of.(id) then region_of.(id) <- latest))
    (List.rev order);
  let count = 1 + List.fold_left (fun acc id -> max acc region_of.(id)) 0 order in
  let buckets = Array.make count [] in
  List.iter (fun id -> buckets.(region_of.(id)) <- id :: buckets.(region_of.(id))) order;
  let regions = Array.map (fun ids -> Array.of_list (List.rev ids)) buckets in
  { dfg; region_of; regions; count }

let members t r =
  if r < 0 || r >= t.count then invalid_arg "Region.members";
  t.regions.(r)

let ct_members t r =
  Array.to_list (members t r)
  |> List.filter (fun id -> Op.produces_ct (Dfg.node t.dfg id).Dfg.kind)

let muls t r =
  Array.to_list (members t r)
  |> List.filter (fun id -> Op.is_mul (Dfg.node t.dfg id).Dfg.kind)

let has_mul_cc t r =
  List.exists (fun id -> (Dfg.node t.dfg id).Dfg.kind = Op.Mul_cc) (muls t r)

let has_mul_cp t r =
  List.exists (fun id -> (Dfg.node t.dfg id).Dfg.kind = Op.Mul_cp) (muls t r)

let live_out t r =
  let outs = Dfg.outputs t.dfg in
  ct_members t r
  |> List.filter (fun id ->
         List.mem id outs
         || List.exists (fun u -> t.region_of.(u) <> r) (Dfg.succs t.dfg id))

let pp ppf t =
  Format.fprintf ppf "@[<v>regioned dfg: %d regions" t.count;
  for r = 0 to t.count - 1 do
    Format.fprintf ppf "@,  R%d: %s" r
      (String.concat " "
         (List.map
            (fun id -> Printf.sprintf "%%%d:%s" id (Op.name (Dfg.node t.dfg id).Dfg.kind))
            (Array.to_list t.regions.(r))))
  done;
  Format.fprintf ppf "@]"
