(** Compilation report — the measurements behind Tables 3–5 and Figures
    6–7. *)

type t = {
  manager : string;
  compile_ms : float;  (** Wall-clock time of the management passes. *)
  latency_ms : float;  (** Static Table 2 latency of the managed graph. *)
  stats : Fhe_ir.Stats.t;
  segments : (int * int) list;  (** Chosen bootstrap segments. *)
  repair_bootstraps : int;
}

val pp : Format.formatter -> t -> unit
