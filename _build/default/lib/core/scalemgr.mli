(** SCALEMGR — bootstrapping-guided rescaling-region identification
    (Algorithm 3).

    Given a sequence of regions [src, dst] delimited by tentative
    bootstrapping points, SCALEMGR decides which regions rescale.  Scale
    evolution is tracked in bits: a region with ciphertext-ciphertext
    multiplications doubles the live-in scale; one with only
    ciphertext-plaintext multiplications adds the waterline.  A region
    rescales as soon as its post-multiplication scale reaches [q * q_w]
    (the paper's early-rescaling preference: of two placements with equal
    effect on the live-out scale of [dst], the earlier one wins because it
    lets more operations run at a lower level), possibly several times if
    the scale accumulated across multiple regions.

    [lbts] counts the levels consumed in [(src, dst]] — the rescales of
    [src] itself happen before the bootstrap and spend the previous
    segment's budget (Section 4.4). *)

type region_info = {
  entry_scale : int;  (** Live-in scale (bits) of the region. *)
  peak_scale : int;  (** Scale right after the region's multiplications. *)
  out_scale : int;  (** Live-out scale after this region's rescales. *)
  rescales : int;  (** Number of rescale levels consumed in the region. *)
}

type seq_plan = {
  infos : region_info array;  (** Indexed by [r - src] for [r] in [src, dst]. *)
  rescaling : int list;  (** Region indices with at least one rescale. *)
  lbts : int;  (** Levels consumed in [(src, dst]]. *)
}

val plan :
  Region.t ->
  Ckks.Params.t ->
  src:int ->
  dst:int ->
  src_entry_scale:int ->
  bts_at_src:bool ->
  seq_plan
(** [bts_at_src] resets the live-out scale of [src] to [q] (Table 1:
    bootstrapping re-encodes at the scale factor). *)
