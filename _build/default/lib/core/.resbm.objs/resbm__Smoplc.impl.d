lib/core/smoplc.ml: Array Ckks Cut Dfg Fhe_ir Graphlib Hashtbl List Maxflow_util Op Option Region
