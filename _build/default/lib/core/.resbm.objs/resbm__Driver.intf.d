lib/core/driver.mli: Btsmgr Ckks Fhe_ir Report
