lib/core/report.mli: Fhe_ir Format
