lib/core/scalemgr.mli: Ckks Region
