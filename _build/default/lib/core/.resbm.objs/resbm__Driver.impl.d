lib/core/driver.ml: Btsmgr Fhe_ir Passes Plan Region Report Unix
