lib/core/plan.mli: Btsmgr Ckks Fhe_ir Region
