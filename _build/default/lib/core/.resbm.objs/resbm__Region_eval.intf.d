lib/core/region_eval.mli: Ckks Cut Region
