lib/core/btsplc.mli: Ckks Cut Region
