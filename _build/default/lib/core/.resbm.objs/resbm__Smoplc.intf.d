lib/core/smoplc.mli: Ckks Cut Region
