lib/core/btsmgr.ml: Array Ckks Cut Fhe_ir List Printf Region Region_eval Scalemgr
