lib/core/cut.ml: Format List
