lib/core/region_eval.ml: Array Btsplc Ckks Cut Dfg Fhe_ir Format Hashtbl List Op Region Smoplc
