lib/core/cut.mli: Format
