lib/core/plan.ml: Array Btsmgr Ckks Cut Dfg Fhe_ir Format Hashtbl Legalize List Op Option Region Scale_check Sys
