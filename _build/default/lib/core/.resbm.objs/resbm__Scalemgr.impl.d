lib/core/scalemgr.ml: Array Ckks List Region
