lib/core/variants.ml: Btsmgr Driver List Region_eval String
