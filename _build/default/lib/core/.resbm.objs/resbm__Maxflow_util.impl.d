lib/core/maxflow_util.ml: Graphlib
