lib/core/region.mli: Fhe_ir Format
