lib/core/maxflow_util.mli: Graphlib
