lib/core/region.ml: Array Depth Dfg Fhe_ir Format List Op Printf String
