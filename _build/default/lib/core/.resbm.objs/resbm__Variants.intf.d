lib/core/variants.mli: Btsmgr Ckks Fhe_ir Report
