lib/core/btsmgr.mli: Ckks Cut Region Region_eval
