lib/core/report.ml: Fhe_ir Format List Printf String
