(** Shared helper for the placement algorithms: add a finite arc together
    with the infinite reverse arc that keeps the cut's source side closed
    under predecessors (so each path crosses the cut exactly once).
    Infinite arcs get no companion. *)

val add_with_reverse : Graphlib.Maxflow.t -> src:int -> dst:int -> cap:float -> unit
