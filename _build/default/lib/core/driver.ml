let compile ?(config = Btsmgr.resbm_config) ?(name = "ReSBM") ?(ms_opt = false) prm g =
  let t0 = Unix.gettimeofday () in
  let regioned = Region.build g in
  let plan = Btsmgr.plan ~config regioned prm in
  let outcome = Plan.apply regioned prm plan in
  let managed = outcome.Plan.dfg in
  if ms_opt then ignore (Passes.Ms_opt.run prm managed);
  let compile_ms = 1000.0 *. (Unix.gettimeofday () -. t0) in
  let report =
    {
      Report.manager = name;
      compile_ms;
      latency_ms = Fhe_ir.Latency.total prm managed;
      stats = Fhe_ir.Stats.collect managed;
      segments = plan.Btsmgr.segments;
      repair_bootstraps = outcome.Plan.repair_bootstraps;
    }
  in
  (managed, report)
