type t = {
  manager : string;
  compile_ms : float;
  latency_ms : float;
  stats : Fhe_ir.Stats.t;
  segments : (int * int) list;
  repair_bootstraps : int;
}

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: compiled in %.3f ms, estimated latency %.1f ms@,%a@,segments: %s%s@]"
    t.manager t.compile_ms t.latency_ms Fhe_ir.Stats.pp t.stats
    (String.concat " " (List.map (fun (s, d) -> Printf.sprintf "[%d,%d]" s d) t.segments))
    (if t.repair_bootstraps > 0 then
       Printf.sprintf " (+%d repair bootstraps)" t.repair_bootstraps
     else "")
