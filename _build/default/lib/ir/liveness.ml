type report = {
  total_ciphertexts : int;
  peak_live : int;
  peak_bytes : float;
  final_live : int;
}

let ciphertext_bytes prm ~level =
  let n = float_of_int (1 lsl prm.Ckks.Params.log2_degree) in
  2.0 *. float_of_int (level + 1) *. n *. 8.0

let analyse prm g =
  let info = Scale_check.infer prm g in
  let order = Dfg.topo_order g in
  let position = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.add position id i) order;
  let outputs = Dfg.outputs g in
  (* last use per ciphertext value; outputs stay live to the end *)
  let last_use = Hashtbl.create 64 in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      Array.iter
        (fun a -> Hashtbl.replace last_use a (Hashtbl.find position id))
        node.Dfg.args)
    order;
  List.iter (fun o -> Hashtbl.replace last_use o max_int) outputs;
  let live = Hashtbl.create 64 in
  let live_bytes = ref 0.0 and live_count = ref 0 in
  let peak_live = ref 0 and peak_bytes = ref 0.0 and total = ref 0 in
  List.iteri
    (fun pos id ->
      let node = Dfg.node g id in
      if Op.produces_ct node.Dfg.kind then begin
        incr total;
        let bytes = ciphertext_bytes prm ~level:(max info.(id).Scale_check.level 0) in
        Hashtbl.replace live id bytes;
        live_bytes := !live_bytes +. bytes;
        incr live_count;
        if !live_count > !peak_live then peak_live := !live_count;
        if !live_bytes > !peak_bytes then peak_bytes := !live_bytes
      end;
      (* free operands at their last use *)
      List.iter
        (fun a ->
          if Hashtbl.find_opt last_use a = Some pos then
            match Hashtbl.find_opt live a with
            | Some bytes ->
                Hashtbl.remove live a;
                live_bytes := !live_bytes -. bytes;
                decr live_count
            | None -> ())
        (Dfg.preds g id))
    order;
  {
    total_ciphertexts = !total;
    peak_live = !peak_live;
    peak_bytes = !peak_bytes;
    final_live = !live_count;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<h>%d ciphertexts allocated, peak %d live (%.1f MiB working set), %d at exit@]"
    r.total_ciphertexts r.peak_live
    (r.peak_bytes /. 1024.0 /. 1024.0)
    r.final_live
