(** Ciphertext liveness and memory-pressure analysis.

    FHE ciphertexts are large — [2 * (level + 1) * N * 8] bytes in RNS
    form — and the paper's evaluation machine carries 512 GB of RAM for a
    reason.  This analysis walks the schedule (topological order), tracks
    which ciphertexts are live, and reports the peak working set, sizing
    each ciphertext at the level assigned by the scale checker.  It also
    exposes the per-boundary live counts that DaCapo's liveness-based
    bootstrapping keys on. *)

type report = {
  total_ciphertexts : int;  (** Ciphertext values allocated over the run. *)
  peak_live : int;  (** Largest number of simultaneously live ciphertexts. *)
  peak_bytes : float;  (** Working-set size at the peak (bytes). *)
  final_live : int;  (** Live at the end (the program outputs). *)
}

val analyse : Ckks.Params.t -> Dfg.t -> report

val ciphertext_bytes : Ckks.Params.t -> level:int -> float
(** Size of one RNS ciphertext at [level]. *)

val pp : Format.formatter -> report -> unit
