(** Level legalisation.

    After a management plan has inserted rescales and bootstraps, edges
    that cross regions (e.g. residual connections) can connect ciphertexts
    at different levels.  Following the compilers in the paper (the
    modswitch chains visible in Figures 1b–1d), this pass drops the
    higher-level operand of every binary operation down to the lower level
    with [Modswitch] nodes, sharing chains between uses.

    Scale mismatches are not repairable by modswitch and are reported as
    errors. *)

val run : Ckks.Params.t -> Dfg.t -> (unit, Scale_check.violation list) result
(** Mutates the graph in place.  On success the graph passes
    {!Scale_check.run}. *)
