(** Operation statistics of a DFG — the counters behind Tables 4 and 5. *)

type t = {
  nodes : int;  (** Live nodes. *)
  static_by_op : (Ckks.Cost_model.op * int) list;
  executed_by_op : (Ckks.Cost_model.op * int) list;  (** Freq-weighted. *)
  executed_rescales : int;
  executed_modswitches : int;
  bootstrap_count : int;  (** Static number of bootstrap nodes. *)
  bootstrap_levels : (int * int) list;  (** (target level, count), sorted desc. *)
  max_depth : int;
}

val collect : Dfg.t -> t

val executed : t -> Ckks.Cost_model.op -> int

val pp : Format.formatter -> t -> unit
