let per_node g =
  let depth = Array.make (Dfg.node_count g) 0 in
  List.iter
    (fun id ->
      let node = Dfg.node g id in
      let from_args =
        Array.fold_left (fun acc a -> max acc depth.(a)) 0 node.Dfg.args
      in
      depth.(id) <- (if Op.is_mul node.Dfg.kind then from_args + 1 else from_args))
    (Dfg.topo_order g);
  depth

let max_depth g =
  let depth = per_node g in
  List.fold_left (fun acc n -> max acc depth.(n.Dfg.id)) 0 (Dfg.live_nodes g)
