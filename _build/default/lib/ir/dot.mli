(** Graphviz export of FHE data-flow graphs.

    Nodes are labelled with their operation (and frequency when rolled);
    management operations get distinctive shapes/colours so inserted
    rescales, modswitches and bootstraps stand out in a managed graph.  An
    optional [cluster] function groups nodes into subgraphs — pass the
    region assignment to render the paper's region boxes. *)

val to_string :
  ?name:string ->
  ?cluster:(int -> int option) ->
  ?annotate:(int -> string option) ->
  Dfg.t ->
  string
(** [cluster id] returns the cluster index of node [id] (e.g. its region);
    [annotate id] appends an extra label line (e.g. "L3, 2^56"). *)

val write_file :
  ?name:string ->
  ?cluster:(int -> int option) ->
  ?annotate:(int -> string option) ->
  path:string ->
  Dfg.t ->
  unit
