(** DFG interpreter over the simulated CKKS evaluator.

    Runs a (legalised) DFG end to end: inputs are encrypted, constants are
    encoded at the scales resolved by the scale checker, and each node
    executes on {!Ckks.Evaluator}, enforcing every runtime constraint and
    accumulating simulated latency from the Table 2 cost model.

    Nodes with [freq > 1] (rolled loops) execute once as a representative
    iteration; their latency is charged [freq] times, exactly as the
    paper's cost model does for rolled loops. *)

type env = {
  inputs : (string * float array) list;
  consts : string -> float array;  (** Resolver for constant payloads. *)
}

type result = {
  outputs : Ckks.Ciphertext.t list;
  latency_ms : float;  (** Simulated execution latency. *)
  op_count : int;  (** Freq-weighted number of executed FHE operations. *)
}

exception Missing_input of string

val run : Ckks.Evaluator.t -> Dfg.t -> env -> result
(** @raise Ckks.Evaluator.Fhe_error when the program violates a runtime
    constraint (e.g. an unmanaged program as in Figure 1a).
    @raise Missing_input when [env] lacks a named input. *)
