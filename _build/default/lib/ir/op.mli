(** Operation kinds of the FHE data-flow IR.

    The IR mirrors the CKKS-level intermediate representation of ANT-ACE
    that the paper implements ReSBM on: arithmetic, rotation,
    relinearisation, the two SMOs, and bootstrapping.  [Input] produces a
    ciphertext; [Const] produces a plaintext whose encoding scale is
    resolved by the scale checker (waterline for multiplications, the
    consumer's scale for additions — EVA's convention). *)

type kind =
  | Input of { name : string; level : int option; scale_bits : int option }
      (** Fresh ciphertext; [None] fields default to the scheme parameters. *)
  | Const of { name : string }  (** Plaintext operand. *)
  | Add_cc
  | Add_cp  (** args: ciphertext, plaintext. *)
  | Mul_cc  (** Result has size 3; must be consumed by [Relin] only. *)
  | Mul_cp  (** args: ciphertext, plaintext. *)
  | Rotate of int
  | Relin
  | Rescale
  | Modswitch
  | Bootstrap of int  (** Target level. *)

val is_mul : kind -> bool
(** True for [Mul_cc] and [Mul_cp] — the only scale-increasing operations,
    which anchor the region partition. *)

val is_smo : kind -> bool
(** True for [Rescale] and [Modswitch]. *)

val produces_ct : kind -> bool
(** False only for [Const]. *)

val cost_op : kind -> Ckks.Cost_model.op option
(** The Table 2 row charged for this kind ([None] for [Input]/[Const]). *)

val name : kind -> string

val pp : Format.formatter -> kind -> unit
