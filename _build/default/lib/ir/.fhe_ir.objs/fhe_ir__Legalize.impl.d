lib/ir/legalize.ml: Array Dfg Hashtbl List Op Scale_check
