lib/ir/depth.mli: Dfg
