lib/ir/noise_check.mli: Ckks Dfg
