lib/ir/op.mli: Ckks Format
