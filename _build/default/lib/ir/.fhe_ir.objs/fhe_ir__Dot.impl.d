lib/ir/dot.ml: Array Buffer Dfg Fun Hashtbl List Op Option Printf String
