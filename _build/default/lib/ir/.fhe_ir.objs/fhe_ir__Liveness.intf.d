lib/ir/liveness.mli: Ckks Dfg Format
