lib/ir/emit.ml: Array Buffer Dfg Fun Hashtbl List Op Printf Scale_check String
