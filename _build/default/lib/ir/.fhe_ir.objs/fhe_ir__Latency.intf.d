lib/ir/latency.mli: Ckks Dfg Scale_check
