lib/ir/emit.mli: Ckks Dfg
