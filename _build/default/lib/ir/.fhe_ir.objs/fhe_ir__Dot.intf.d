lib/ir/dot.mli: Dfg
