lib/ir/interp.mli: Ckks Dfg
