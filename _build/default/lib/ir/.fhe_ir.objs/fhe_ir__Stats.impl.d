lib/ir/stats.ml: Ckks Depth Dfg Format Hashtbl List Op Option
