lib/ir/depth.ml: Array Dfg List Op
