lib/ir/op.ml: Ckks Format Printf
