lib/ir/scale_check.mli: Ckks Dfg Format
