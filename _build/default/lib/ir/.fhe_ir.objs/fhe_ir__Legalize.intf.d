lib/ir/legalize.mli: Ckks Dfg Scale_check
