lib/ir/scale_check.ml: Array Ckks Dfg Format Hashtbl List Op Option
