lib/ir/latency.ml: Array Ckks Dfg Hashtbl List Op Option Scale_check
