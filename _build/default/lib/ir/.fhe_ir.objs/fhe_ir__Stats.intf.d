lib/ir/stats.mli: Ckks Dfg Format
