lib/ir/noise_check.ml: Array Dfg Float List Op Scale_check
